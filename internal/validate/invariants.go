package validate

import (
	"fmt"
	"math"
	"strings"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// maxRetained caps the violations kept verbatim; further ones are only
// counted, so a systematically broken run cannot exhaust memory.
const maxRetained = 64

// Invariants is a runtime checker wired into one simulation run. Create
// it with Attach before spawning workload processes, drive the engine to
// completion, then call Finish for the verdict.
//
// Checked while the simulation runs:
//
//   - time-monotonic: the engine's dispatch clock never goes backwards.
//   - record-time: every trace record has 0 <= Start <= End.
//   - record-causality: per (rank, layer), POSIX and MPI-IO records do
//     not overlap — each rank issues these ops sequentially, so the next
//     op must start at or after the previous one ended.
//   - op-time: every PFS client op event has 0 <= Start <= End.
//
// Checked at Finish:
//
//   - deadlock-free: no live processes remain after the engine drains.
//   - shutdown-balance: no pending events, empty MDS and OST queues,
//     device utilizations within [0, 1].
//   - write-conservation: bytes written at the PFS client boundary equal
//     bytes arriving at the OSTs (armed only on fault-free runs — lost
//     RPCs legitimately break equality — and catches leaked write-behind
//     buffers, double writes, and striping/accounting bugs).
//   - read-conservation: client-read bytes equal OST-read bytes (armed
//     only on fault-free runs with readahead disabled, since readahead
//     legitimately over-fetches and cache hits under-fetch).
//   - layer-ordering: MPI-IO requested bytes never exceed POSIX bytes,
//     and POSIX bytes never exceed PFS-client bytes (aggregation hole
//     padding and data sieving only ever inflate the lower layer).
//   - stage-conservation / stage-ratio: with storage stages pushed on the
//     provider (ObserveTier arms this too), every logical byte entering a
//     stage is accounted, each stage's physical output feeds the layer
//     below exactly, and logical == physical x ratio within the ceil-per-op
//     rounding slop (1.2%). The tier checks below the stack then run
//     against the innermost stage's physical bytes.
type Invariants struct {
	eng *des.Engine
	fs  *pfs.FS

	lastDispatch des.Time
	dispatches   uint64
	records      uint64
	clientOps    uint64
	ostEvents    uint64

	// Byte tallies per layer boundary.
	mpiioRead, mpiioWrite   int64
	posixRead, posixWrite   int64
	clientRead, clientWrite int64
	ostRead, ostWrite       int64

	// Per-(rank, layer) last record end, for causality.
	lastEnd map[[2]int]des.Time

	vios     []Violation
	dropped  uint64
	finished bool

	// provider, when set via ObserveTier, arms the tier-conservation
	// checks: byte equality is tracked across the storage-tier boundary
	// (POSIX → staging → drain → PFS client) instead of assuming the POSIX
	// layer talks to the PFS client directly.
	provider *storage.Provider

	// ostSkew is a test-only fault: it is added to the observed OST write
	// tally before the conservation check, simulating an accounting bug so
	// tests can prove the checker catches one. Never set outside tests.
	ostSkew int64
}

// Attach installs invariant hooks on the engine, the file system, and the
// collector (col may be nil when no trace-layer checks are wanted). It
// claims the engine trace hook, the PFS op/OST observers, and the
// collector hook; callers needing additional observers should compose
// them around OnRecord with trace.Hooks.
func Attach(e *des.Engine, fs *pfs.FS, col *trace.Collector) *Invariants {
	inv := &Invariants{eng: e, fs: fs, lastEnd: map[[2]int]des.Time{}}
	e.SetTraceHook(inv.onDispatch)
	fs.SetOpObserver(inv.onClientOp)
	fs.SetOSTObserver(inv.onOSTEvent)
	if col != nil {
		col.SetHook(inv.OnRecord)
	}
	return inv
}

// ObserveTier tells the checker which storage provider the workload's
// POSIX environments were minted from, arming the tier-conservation
// checks at Finish: on the burst-buffer tier every POSIX-written byte
// must be absorbed by a buffer and every absorbed byte drained to the
// PFS; on the node-local tier bytes must stay on the scratch devices and
// never reach PFS clients. A nil or direct-tier provider leaves the
// original direct-path checks in force.
func (inv *Invariants) ObserveTier(pr *storage.Provider) { inv.provider = pr }

// violatef records one violation, keeping at most maxRetained verbatim.
func (inv *Invariants) violatef(invariant, format string, args ...interface{}) {
	if len(inv.vios) >= maxRetained {
		inv.dropped++
		return
	}
	inv.vios = append(inv.vios, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// onDispatch checks engine-clock monotonicity on every dispatched event.
func (inv *Invariants) onDispatch(at des.Time, what string) {
	inv.dispatches++
	if at < inv.lastDispatch {
		inv.violatef("time-monotonic", "dispatch %q at %v after %v", what, at, inv.lastDispatch)
	}
	inv.lastDispatch = at
}

// OnRecord checks one trace record; it is installed as the collector hook
// by Attach and exported so callers can recompose it with other hooks via
// trace.Hooks.
func (inv *Invariants) OnRecord(r trace.Record) {
	inv.records++
	if r.Start < 0 || r.End < r.Start {
		inv.violatef("record-time", "rank %d %s %s %q: start %v end %v", r.Rank, r.Layer, r.Op, r.Path, r.Start, r.End)
	}
	switch r.Layer {
	case trace.LayerPOSIX, trace.LayerMPIIO:
		k := [2]int{r.Rank, int(r.Layer)}
		if prev, ok := inv.lastEnd[k]; ok && r.Start < prev {
			inv.violatef("record-causality", "rank %d %s %s %q starts %v before previous op ended %v",
				r.Rank, r.Layer, r.Op, r.Path, r.Start, prev)
		}
		if r.End > inv.lastEnd[k] {
			inv.lastEnd[k] = r.End
		}
	}
	switch {
	case r.Layer == trace.LayerPOSIX && r.Op == "write":
		inv.posixWrite += r.Size
	case r.Layer == trace.LayerPOSIX && r.Op == "read":
		inv.posixRead += r.Size
	// MPI-IO data ops: mpi_file_write, mpi_file_write_at, mpi_file_write_all
	// (collective records carry the rank's own contribution) and the read
	// equivalents. Open/close records carry no payload.
	case r.Layer == trace.LayerMPIIO && strings.HasPrefix(r.Op, "mpi_file_write"):
		inv.mpiioWrite += r.Size
	case r.Layer == trace.LayerMPIIO && strings.HasPrefix(r.Op, "mpi_file_read"):
		inv.mpiioRead += r.Size
	}
}

// onClientOp tallies the PFS-client boundary.
func (inv *Invariants) onClientOp(ev pfs.OpEvent) {
	inv.clientOps++
	if ev.Start < 0 || ev.End < ev.Start {
		inv.violatef("op-time", "client %s %s %q: start %v end %v", ev.Client, ev.Op, ev.Path, ev.Start, ev.End)
	}
	switch ev.Op {
	case "write":
		inv.clientWrite += ev.Size
	case "read":
		inv.clientRead += ev.Size
	}
}

// onOSTEvent tallies the OST boundary.
func (inv *Invariants) onOSTEvent(ev pfs.OSTEvent) {
	inv.ostEvents++
	if ev.Size < 0 {
		inv.violatef("op-time", "ost%d negative access size %d", ev.OST, ev.Size)
	}
	if ev.Write {
		inv.ostWrite += ev.Size
	} else {
		inv.ostRead += ev.Size
	}
}

// faultFree reports whether the run saw no injected faults and no client
// retries/timeouts/degradation — the condition under which byte equality
// across layer boundaries must hold exactly.
func (inv *Invariants) faultFree() bool {
	if len(inv.fs.FaultLog()) != 0 {
		return false
	}
	cs := inv.fs.ClientStatsTotal()
	return cs.Retries == 0 && cs.TimedOutRPCs == 0 && cs.FailedRPCs == 0 && cs.DegradedReads == 0
}

// Finish runs the end-of-simulation checks and returns every violation
// observed during the run. Call it after the engine has drained (for
// workloads driven by iolang.Run, after it returns). Finish is
// idempotent: the shutdown checks run once.
func (inv *Invariants) Finish() []Violation {
	if inv.finished {
		return inv.vios
	}
	inv.finished = true

	if n := inv.eng.LiveProcs(); n != 0 {
		inv.violatef("deadlock-free", "%d live processes after engine drain", n)
	}
	if n := inv.eng.Pending(); n != 0 {
		inv.violatef("shutdown-balance", "%d events still pending", n)
	}
	if md := inv.fs.MDSStats(); md.QueueLen != 0 {
		inv.violatef("shutdown-balance", "MDS queue length %d at shutdown", md.QueueLen)
	}
	for _, st := range inv.fs.OSTStats() {
		if st.QueueLen != 0 {
			inv.violatef("shutdown-balance", "ost%d queue length %d at shutdown", st.ID, st.QueueLen)
		}
		if st.Utilization < 0 || st.Utilization > 1.000001 {
			inv.violatef("shutdown-balance", "ost%d utilization %.6f outside [0, 1]", st.ID, st.Utilization)
		}
		if st.BytesRead < 0 || st.BytesWritten < 0 {
			inv.violatef("shutdown-balance", "ost%d negative byte counters: read %d written %d", st.ID, st.BytesRead, st.BytesWritten)
		}
	}

	ostWrite := inv.ostWrite + inv.ostSkew
	ff := inv.faultFree()
	if ff {
		if inv.clientWrite != ostWrite {
			inv.violatef("write-conservation", "client wrote %d bytes but OSTs received %d (Δ %d; leaked write-behind buffer or accounting bug)",
				inv.clientWrite, ostWrite, inv.clientWrite-ostWrite)
		}
		if inv.fs.Config().ClientReadahead == 0 && inv.clientRead != inv.ostRead {
			inv.violatef("read-conservation", "client read %d bytes but OSTs served %d (Δ %d)",
				inv.clientRead, inv.ostRead, inv.clientRead-inv.ostRead)
		}
		if inv.mpiioWrite > inv.posixWrite {
			inv.violatef("layer-ordering", "MPI-IO wrote %d bytes but POSIX only %d (aggregation must not lose bytes)",
				inv.mpiioWrite, inv.posixWrite)
		}
		if inv.mpiioRead > inv.posixRead {
			inv.violatef("layer-ordering", "MPI-IO read %d bytes but POSIX only %d (sieving must not lose bytes)",
				inv.mpiioRead, inv.posixRead)
		}
		tier := storage.TierDirect
		if inv.provider != nil {
			tier = inv.provider.Tier()
		}
		// Walk the stage stack outermost-first: each stage's logical bytes
		// must match what the layer above produced, and its physical bytes
		// become the expectation for the layer below. The tier checks then
		// run against the innermost stage's physical output instead of the
		// raw POSIX tallies.
		posixWrite, posixRead := inv.posixWrite, inv.posixRead
		checkable := true
		if inv.provider != nil {
			stages := inv.provider.Stages()
			for i := len(stages) - 1; i >= 0; i-- {
				acct, ok := stages[i].(storage.StageAccounting)
				if !ok {
					// An unaccounted stage hides the byte flow below it; the
					// remaining boundary checks would be guesses.
					checkable = false
					break
				}
				st := acct.StageStats()
				if st.LogicalWritten != posixWrite {
					inv.violatef("stage-conservation", "stage %s saw %d logical bytes written but the layer above produced %d (Δ %d)",
						stages[i].Name(), st.LogicalWritten, posixWrite, st.LogicalWritten-posixWrite)
				}
				if st.LogicalRead != posixRead {
					inv.violatef("stage-conservation", "stage %s served %d logical bytes read but the layer above requested %d (Δ %d)",
						stages[i].Name(), st.LogicalRead, posixRead, st.LogicalRead-posixRead)
				}
				if rm, ok := stages[i].(interface{ ModelRatio() float64 }); ok {
					inv.checkStageRatio(stages[i].Name(), st, rm.ModelRatio())
				}
				posixWrite, posixRead = st.PhysicalWritten, st.PhysicalRead
			}
		}
		switch {
		case !checkable:
			// Nothing below the unaccounted stage can be checked.
		case tier == storage.TierBB:
			// Byte conservation across the tier boundary: POSIX → staged →
			// drained → PFS client → OST, with reads split between staging
			// hits and read-through misses.
			var absorbed, drained, used, bufReads, missReads int64
			for _, bb := range inv.provider.Buffers() {
				st := bb.Stats()
				absorbed += st.Absorbed
				drained += st.Drained
				used += st.Used
				bufReads += st.BufReads
				missReads += st.MissReads
			}
			if posixWrite != absorbed {
				inv.violatef("tier-conservation", "POSIX wrote %d bytes but burst buffers absorbed %d (Δ %d)",
					posixWrite, absorbed, posixWrite-absorbed)
			}
			if drained != absorbed {
				inv.violatef("tier-conservation", "burst buffers absorbed %d bytes but drained %d (Δ %d; fault-free drains must conserve bytes)",
					absorbed, drained, absorbed-drained)
			}
			if used != 0 {
				inv.violatef("tier-conservation", "%d bytes still staged at shutdown (finalize must drain the buffers)", used)
			}
			if drained != inv.clientWrite {
				inv.violatef("tier-conservation", "burst buffers drained %d bytes but PFS clients wrote %d (Δ %d)",
					drained, inv.clientWrite, drained-inv.clientWrite)
			}
			if posixRead != bufReads+missReads {
				inv.violatef("tier-conservation", "POSIX read %d bytes but buffers served %d staged + %d read-through",
					posixRead, bufReads, missReads)
			}
			if inv.fs.Config().ClientReadahead == 0 && missReads != inv.clientRead {
				inv.violatef("tier-conservation", "buffers read %d bytes through the PFS but clients recorded %d",
					missReads, inv.clientRead)
			}
		case tier == storage.TierNodeLocal:
			// Scratch traffic must stay on the scratch devices.
			var localRead, localWrite int64
			for _, nl := range inv.provider.Locals() {
				st := nl.Stats()
				localRead += st.BytesRead
				localWrite += st.BytesWritten
			}
			if posixWrite != localWrite {
				inv.violatef("tier-conservation", "POSIX wrote %d bytes but scratch devices received %d (Δ %d)",
					posixWrite, localWrite, posixWrite-localWrite)
			}
			if posixRead != localRead {
				inv.violatef("tier-conservation", "POSIX read %d bytes but scratch devices served %d (Δ %d)",
					posixRead, localRead, posixRead-localRead)
			}
			if inv.clientWrite != 0 || inv.clientRead != 0 {
				inv.violatef("tier-conservation", "node-local tier leaked PFS client traffic: %d written, %d read",
					inv.clientWrite, inv.clientRead)
			}
		default:
			if posixWrite > inv.clientWrite {
				inv.violatef("layer-ordering", "POSIX wrote %d bytes but PFS clients only %d", posixWrite, inv.clientWrite)
			}
			if posixRead > inv.clientRead {
				inv.violatef("layer-ordering", "POSIX read %d bytes but PFS clients only %d", posixRead, inv.clientRead)
			}
		}
	} else {
		// With faults, bytes may legitimately be lost between the client
		// and the OSTs, but never invented.
		if ostWrite > inv.clientWrite {
			inv.violatef("write-conservation", "OSTs received %d bytes but clients only wrote %d", ostWrite, inv.clientWrite)
		}
	}
	if inv.dropped > 0 {
		// Appended directly: the summary line must not itself be dropped.
		inv.vios = append(inv.vios, Violation{
			Invariant: "checker",
			Detail:    fmt.Sprintf("%d further violations dropped (cap %d)", inv.dropped, maxRetained),
		})
	}
	return inv.vios
}

// checkStageRatio verifies the data-reduction identity across one stage
// boundary: logical bytes == physical bytes x configured ratio, within a
// 1.2% relative tolerance plus one ratio's worth of slop per operation
// (the stage forwards ceil(size/ratio), so each op may round up by a
// fraction of a physical byte). Both directions are checked.
func (inv *Invariants) checkStageRatio(name string, st storage.StageStats, ratio float64) {
	check := func(dir string, logical, physical, ops int64) {
		if logical <= 0 {
			return
		}
		slop := 0.012*float64(logical) + ratio*float64(ops)
		if diff := math.Abs(float64(logical) - float64(physical)*ratio); diff > slop {
			inv.violatef("stage-ratio", "stage %s %s %d logical bytes vs %d physical x ratio %.3g = %.0f (Δ %.0f exceeds slop %.0f)",
				name, dir, logical, physical, ratio, float64(physical)*ratio, diff, slop)
		}
	}
	check("wrote", st.LogicalWritten, st.PhysicalWritten, st.WriteOps)
	check("read", st.LogicalRead, st.PhysicalRead, st.ReadOps)
}

// Violations returns what has been recorded so far without running the
// shutdown checks.
func (inv *Invariants) Violations() []Violation { return inv.vios }

// CheckStats reports how much evidence the checker saw; a run that checks
// zero records validates nothing, so callers should surface these counts.
type CheckStats struct {
	Dispatches   uint64
	TraceRecords uint64
	ClientOps    uint64
	OSTEvents    uint64
}

// Stats returns the evidence counters.
func (inv *Invariants) Stats() CheckStats {
	return CheckStats{
		Dispatches:   inv.dispatches,
		TraceRecords: inv.records,
		ClientOps:    inv.clientOps,
		OSTEvents:    inv.ostEvents,
	}
}
