package pioeval_test

import (
	"bytes"
	"os"
	"testing"
	"time"

	"pioeval/internal/campaign"
)

// compressSpec is the data-reduction crossover sweep recorded in
// BENCH_compress.json (testdata/compress.campaign is the cmd/campaign
// form of the same grid): every shipped compressor crossed with a slow
// and a fast OST device on the direct tier.
func compressSpec() campaign.Spec {
	return campaign.Spec{
		Name:          "compress-sweep",
		Workload:      campaign.WorkloadCheckpoint,
		Seed:          99,
		Reps:          3,
		Steps:         6,
		Ranks:         []int{4},
		Devices:       []string{"hdd", "nvme"},
		StripeCounts:  []int{4},
		BlockSizes:    []int64{4 << 20},
		TransferSizes: []int64{1 << 20},
		Compress:      []string{"none", "lz", "deflate", "zfp", "sz"},
	}
}

// TestCompressSpecFileMatchesBench keeps testdata/compress.campaign (the
// reproduction recipe printed in BENCH_compress.json's runbook) in
// lockstep with compressSpec.
func TestCompressSpecFileMatchesBench(t *testing.T) {
	src, err := os.ReadFile("testdata/compress.campaign")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := campaign.ParseSpec(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	for _, pt := range parsed.Expand() {
		a.WriteString(pt.Label() + "\n")
	}
	for _, pt := range compressSpec().Expand() {
		b.WriteString(pt.Label() + "\n")
	}
	if a.String() != b.String() {
		t.Errorf("testdata/compress.campaign expands differently from compressSpec():\nfile:\n%sbench:\n%s", a.String(), b.String())
	}
	if parsed.Seed != compressSpec().Seed || parsed.Reps != compressSpec().Reps || parsed.Steps != compressSpec().Steps {
		t.Errorf("scalar drift: file seed/reps/steps %d/%d/%d, bench %d/%d/%d",
			parsed.Seed, parsed.Reps, parsed.Steps, compressSpec().Seed, compressSpec().Reps, compressSpec().Steps)
	}
}

// crossoverTable runs the sweep and folds it into
// device -> compressor -> effective checkpoint MB/s.
func crossoverTable(tb testing.TB) (*campaign.Report, map[string]map[string]float64) {
	tb.Helper()
	rep, err := campaign.Run(compressSpec(), campaign.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	eff := map[string]map[string]float64{}
	for _, ps := range rep.Points {
		p := ps.Point
		comp := p.Compress
		if comp == "" {
			comp = "none"
		}
		if eff[p.Device] == nil {
			eff[p.Device] = map[string]float64{}
		}
		eff[p.Device][comp] = ps.Metrics["effective_MBps"].Mean
	}
	return rep, eff
}

// TestCompressCrossover is the acceptance check behind BENCH_compress.json:
// the same codec must sit on opposite sides of the cost/benefit line
// depending on the device below. A cheap codec (lz) lifts effective
// checkpoint bandwidth on an HDD-backed store and loses on NVMe; a
// CPU-bound codec (deflate) loses on both.
func TestCompressCrossover(t *testing.T) {
	_, eff := crossoverTable(t)
	hdd, nvme := eff["hdd"], eff["nvme"]
	if hdd["lz"] <= hdd["none"] {
		t.Errorf("lz on hdd: %.1f MB/s does not beat uncompressed %.1f", hdd["lz"], hdd["none"])
	}
	if nvme["lz"] >= nvme["none"] {
		t.Errorf("lz on nvme: %.1f MB/s does not lose to uncompressed %.1f (no crossover)", nvme["lz"], nvme["none"])
	}
	if hdd["deflate"] >= hdd["none"] {
		t.Errorf("deflate on hdd: %.1f MB/s should be CPU-bound below uncompressed %.1f", hdd["deflate"], hdd["none"])
	}
	// Lossy codecs ride their higher ratios past lz on the slow device.
	if hdd["zfp"] <= hdd["none"] {
		t.Errorf("zfp on hdd: %.1f MB/s does not beat uncompressed %.1f", hdd["zfp"], hdd["none"])
	}
}

// BenchmarkCompressSweep runs the 10-point, 30-run crossover sweep and
// reports the headline inversion behind BENCH_compress.json: the lz
// speedup over uncompressed on hdd (>1) and on nvme (<1).
func BenchmarkCompressSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rep, eff := crossoverTable(b)
		wall := time.Since(start)
		hdd, nvme := eff["hdd"], eff["nvme"]
		if hdd["lz"] <= hdd["none"] || nvme["lz"] >= nvme["none"] {
			b.Fatalf("crossover inverted: hdd lz %.1f vs none %.1f, nvme lz %.1f vs none %.1f",
				hdd["lz"], hdd["none"], nvme["lz"], nvme["none"])
		}
		b.ReportMetric(float64(len(rep.Points)), "points")
		b.ReportMetric(float64(len(rep.Runs))/wall.Seconds(), "runs/s")
		b.ReportMetric(hdd["none"], "hdd_raw_MBps")
		b.ReportMetric(hdd["lz"], "hdd_lz_MBps")
		b.ReportMetric(hdd["lz"]/hdd["none"], "hdd_lz_speedup")
		b.ReportMetric(nvme["none"], "nvme_raw_MBps")
		b.ReportMetric(nvme["lz"], "nvme_lz_MBps")
		b.ReportMetric(nvme["lz"]/nvme["none"], "nvme_lz_speedup")
	}
}
