// Command simfs runs an iolang workload script against a configurable
// simulated cluster and prints the server-side view: OST utilization and
// byte counters, MDS operation mix, and optional sampled bandwidth series
// — the storage-system-level monitoring perspective.
//
// With -validate the run self-checks: the full invariant suite from
// internal/validate (time monotonicity, per-rank causality, byte
// conservation across layer boundaries, clean shutdown balance) is armed,
// violations are reported, and the exit status is non-zero on any
// violation. With -oracles the analytic oracle suite runs instead of a
// workload and the exit status reflects the verdict.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/iolang"
	"pioeval/internal/monitor"
	"pioeval/internal/pfs"
	"pioeval/internal/reduce"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
	"pioeval/internal/validate"
	"pioeval/internal/workload"
)

// defaultScenario is the workload -validate runs when no script is given:
// a mixed checkpoint/log pattern touching every layer the checkers watch.
const defaultScenario = `workload "validate-default" {
	ranks 4
	stripe count=4 size=1048576
	write "/ckpt" offset=rank*4194304 size=4194304 chunk=1048576
	barrier
	read "/ckpt" offset=rank*4194304 size=2097152
	fsync "/ckpt"
	loop 2 {
		write "/log" offset=rank*1048576+iter*4194304 size=1048576
	}
	close "/ckpt"
}
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("simfs: ")
	fs := flag.NewFlagSet("simfs", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	sample := fs.Bool("sample", false, "print sampled bandwidth series")
	faultSpec := fs.String("faults", "", "fault campaign, e.g. 'ostcrash:1@100ms; ostrecover:1@700ms; mdsdown@1s; mdsup@1.5s'")
	resilient := fs.Bool("resilient", false, "enable the default client resilience policy (timeouts, retries, degraded reads)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	doValidate := fs.Bool("validate", false, "arm runtime invariant checkers and exit non-zero on any violation (runs a built-in scenario when no script is given)")
	doOracles := fs.Bool("oracles", false, "run the analytic oracle suite instead of a workload; exit non-zero on failure")
	tier := fs.String("tier", "direct", "storage tier for workload ranks: direct, bb (burst-buffer write-back), or nodelocal (per-node scratch)")
	compress := fs.String("compress", "none", "data-reduction stage over the tier: none, lz, deflate, zfp, or sz")
	scaleRanks := fs.Int("ranks", 0, "run the built-in scale checkpoint with this many continuation-form ranks instead of a workload script")
	shards := fs.Int("shards", 1, "partition the scale run into this many engines coupled by a ParallelGroup")
	shardWorkers := fs.Int("shard-workers", 0, "persistent shard workers (0 = all host cores via runtime.NumCPU, 1 = sequential); never affects results")
	workersSweep := fs.Int("workers-sweep", 0, "run the sharded scale config at worker counts 1..N (powers of two), print a speedup/efficiency table, and verify the output is byte-identical across the sweep (0 = off)")
	steps := fs.Int("steps", 1, "checkpoint steps for the scale run")
	bytesPerRank := fs.Int64("bytes-per-rank", 1<<20, "checkpoint bytes per rank per step for the scale run")
	xfer := fs.Int64("xfer", 1<<20, "write chunk size for the scale run")
	ranksPerNode := fs.Int("ranks-per-node", 64, "ranks sharing one compute node (and its NIC) in the scale run")
	_ = fs.Parse(os.Args[1:])

	if *doOracles {
		failed := false
		for _, r := range validate.RunOracles(cluster.Seed) {
			fmt.Println(r)
			if !r.Pass() {
				failed = true
				fmt.Printf("     %s\n", r.Detail)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	if *scaleRanks == 0 && fs.NArg() != 1 && !(*doValidate && fs.NArg() == 0) {
		log.Fatal("usage: simfs [flags] <workload.iol> (the script may be omitted with -validate or -ranks)")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *scaleRanks > 0 {
		sc := scaleOpts{
			ranks: *scaleRanks, shards: *shards, workers: *shardWorkers,
			steps: *steps, bytesPerRank: *bytesPerRank, xfer: *xfer,
			ranksPerNode: *ranksPerNode, validate: *doValidate,
			workersSweep: *workersSweep,
		}
		if sc.workersSweep > 0 {
			if !runWorkersSweep(cluster, sc) {
				os.Exit(1)
			}
			return
		}
		if !runScale(cluster, sc) {
			os.Exit(1)
		}
		return
	}
	src := []byte(defaultScenario)
	if fs.NArg() == 1 {
		var err error
		src, err = os.ReadFile(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	}
	wl, err := iolang.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	if *resilient || *faultSpec != "" {
		cfg.Resilience = pfs.DefaultResilience()
	}

	e := des.NewEngine(cluster.Seed)
	sim := pfs.New(e, cfg)
	var inv *validate.Invariants
	var col *trace.Collector
	if *doValidate {
		col = trace.NewCollector()
		col.SetLimit(1) // records flow through the invariant hook; retention is not needed
		inv = validate.Attach(e, sim, col)
	}
	var sampler *monitor.Sampler
	if *sample {
		sampler = monitor.NewSampler(e, sim, 10*des.Millisecond, des.Hour)
	}
	var campaign *faults.Scheduler
	if *faultSpec != "" {
		c, err := faults.ParseCampaign(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		if campaign, err = faults.Run(e, sim, c); err != nil {
			log.Fatal(err)
		}
	}
	var prov *storage.Provider
	var comp *reduce.Stage
	wantCompress := *compress != "none" && *compress != ""
	if *tier != "direct" && *tier != "" || wantCompress {
		prov, err = storage.NewProvider(e, sim, *tier, storage.ProviderConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if wantCompress {
			comp, err = reduce.New(*compress)
			if err != nil {
				log.Fatal(err)
			}
			prov.Push(comp)
		}
		if inv != nil {
			inv.ObserveTier(prov)
		}
	}
	rep, err := iolang.RunOn(e, sim, wl, col, prov)
	if err != nil {
		log.Fatal(err)
	}
	if sampler != nil {
		sampler.Stop()
	}

	fmt.Printf("workload %q: %d ranks, makespan %v, read %s, wrote %s\n",
		rep.Name, rep.Ranks, rep.Makespan,
		cli.FormatSize(rep.BytesRead), cli.FormatSize(rep.BytesWritten))

	fmt.Println("\nOST counters:")
	fmt.Printf("  %-6s %-8s %12s %12s %8s\n", "ost", "oss", "read", "written", "util")
	for _, st := range sim.OSTStats() {
		fmt.Printf("  ost%-3d %-8s %12s %12s %7.1f%%\n",
			st.ID, st.OSSNode, cli.FormatSize(st.BytesRead), cli.FormatSize(st.BytesWritten), st.Utilization*100)
	}

	md := sim.MDSStats()
	fmt.Printf("\nMDS: %d ops total\n", md.TotalOps)
	ops := make([]string, 0, len(md.Ops))
	for op := range md.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("  %-10s %8d\n", op, md.Ops[op])
	}

	if prov != nil {
		switch prov.Tier() {
		case storage.TierBB:
			fmt.Println("\nburst buffers:")
			for _, bb := range prov.Buffers() {
				st := bb.Stats()
				fmt.Printf("  %-8s absorbed %s, drained %s, peak %s, %d stalls, reads %s staged / %s through\n",
					bb.Node(), cli.FormatSize(st.Absorbed), cli.FormatSize(st.Drained),
					cli.FormatSize(st.PeakUsed), st.Stalls,
					cli.FormatSize(st.BufReads), cli.FormatSize(st.MissReads))
				if st.DrainErrors > 0 {
					fmt.Printf("  %-8s DRAIN ERRORS: %d segments (%s) lost; last: %v\n",
						bb.Node(), st.DrainErrors, cli.FormatSize(st.LostBytes), st.LastDrainError)
				}
				if st.ReadErrors > 0 {
					fmt.Printf("  %-8s READ ERRORS: %d read-through failures; last: %v\n",
						bb.Node(), st.ReadErrors, st.LastReadError)
				}
			}
		case storage.TierNodeLocal:
			fmt.Println("\nnode-local scratch:")
			for _, nl := range prov.Locals() {
				st := nl.Stats()
				fmt.Printf("  %-10s read %s, wrote %s, %d files\n",
					st.Name, cli.FormatSize(st.BytesRead), cli.FormatSize(st.BytesWritten), st.Files)
			}
		}
	}

	if comp != nil {
		st := comp.StageStats()
		fmt.Printf("\ncompression (%s):\n", comp.Name())
		fmt.Printf("  wrote logical %s -> physical %s (ratio %.2f), cpu %.4fs\n",
			cli.FormatSize(st.LogicalWritten), cli.FormatSize(st.PhysicalWritten), st.Ratio(), st.CompressSeconds)
		fmt.Printf("  read  logical %s <- physical %s, cpu %.4fs\n",
			cli.FormatSize(st.LogicalRead), cli.FormatSize(st.PhysicalRead), st.DecompressSeconds)
	}

	if campaign != nil {
		fmt.Println("\nfault campaign:")
		for _, a := range campaign.Log() {
			if a.Err != nil {
				fmt.Printf("  %v (inject error: %v)\n", a.Event, a.Err)
			} else {
				fmt.Printf("  %v\n", a.Event)
			}
		}
		cs := sim.ClientStatsTotal()
		fmt.Printf("resilience: %d retries, %d timed-out RPCs, %d failed RPCs, %d degraded reads (%s missing)\n",
			cs.Retries, cs.TimedOutRPCs, cs.FailedRPCs, cs.DegradedReads, cli.FormatSize(cs.BytesMissing))
	}

	if sampler != nil {
		fmt.Println("\nsampled aggregate bandwidth (MB/s):")
		for _, r := range sampler.DeriveRates() {
			if r.ReadBps == 0 && r.WriteBps == 0 {
				continue
			}
			fmt.Printf("  t=%-12v read %10.1f  write %10.1f  imbalance %.2f\n",
				r.At, r.ReadBps/1e6, r.WriteBps/1e6, r.LoadImbalance)
		}
	}

	if inv != nil {
		vios := inv.Finish()
		st := inv.Stats()
		fmt.Printf("\nvalidation: %d dispatches, %d trace records, %d client ops, %d OST events checked\n",
			st.Dispatches, st.TraceRecords, st.ClientOps, st.OSTEvents)
		if len(vios) == 0 {
			fmt.Println("validation: all invariants held")
		} else {
			for _, v := range vios {
				fmt.Printf("validation: VIOLATION %s\n", v)
			}
			os.Exit(1)
		}
	}
}

// scaleOpts bundles the -ranks scale-mode knobs.
type scaleOpts struct {
	ranks, shards, workers, steps int
	bytesPerRank, xfer            int64
	ranksPerNode                  int
	validate                      bool
	workersSweep                  int
}

// scaleConfig translates the CLI knobs into the workload config.
func (o scaleOpts) scaleConfig() workload.ScaleConfig {
	return workload.ScaleConfig{
		Ranks:        o.ranks,
		BytesPerRank: o.bytesPerRank,
		Steps:        o.steps,
		TransferSize: o.xfer,
		RanksPerNode: o.ranksPerNode,
		// A million per-process files striped wide is not how FPP
		// checkpoints behave: one stripe per file.
		StripeCount: 1,
	}
}

// reportHash is a stable digest of every simulated quantity in a sharded
// report — everything except the host-side Workers knob — used to assert
// byte-identical output across a worker sweep.
func reportHash(rep workload.ShardedReport) uint64 {
	rep.Workers = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", rep)
	return h.Sum64()
}

// runWorkersSweep runs the identical sharded scale config at worker counts
// 1, 2, 4, ... up to o.workersSweep (always including the max), printing a
// wall-clock speedup/parallel-efficiency table and verifying that every
// worker count produces the same simulated output. Returns false when the
// outputs diverge (a determinism bug) or an armed invariant fired.
func runWorkersSweep(cluster cli.ClusterFlags, o scaleOpts) bool {
	if o.shards <= 1 {
		log.Fatal("-workers-sweep needs -shards > 1")
	}
	var counts []int
	for w := 1; w < o.workersSweep; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, o.workersSweep)

	fmt.Printf("workers sweep: %d ranks x %d shards, %d step(s), %s/rank, %d host cores\n",
		o.ranks, o.shards, o.steps, cli.FormatSize(o.bytesPerRank), runtime.NumCPU())
	fmt.Printf("  %-8s %-12s %-9s %-11s %-8s %s\n",
		"workers", "wall", "speedup", "efficiency", "windows", "output-hash")

	ok := true
	var baseWall time.Duration
	var baseHash uint64
	for i, w := range counts {
		oo := o
		oo.workers = w
		rep, invOK, wall := runShardedOnce(cluster, oo)
		hash := reportHash(rep)
		if !invOK {
			ok = false
		}
		if i == 0 {
			baseWall, baseHash = wall, hash
		}
		speedup := float64(baseWall) / float64(wall)
		fmt.Printf("  %-8d %-12v %-9s %-11s %-8d %016x\n",
			w, wall.Round(time.Millisecond),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f%%", 100*speedup/float64(w)),
			rep.Windows, hash)
		if hash != baseHash {
			fmt.Printf("sweep: OUTPUT MISMATCH at workers=%d (hash %016x, want %016x)\n", w, hash, baseHash)
			ok = false
		}
	}
	if ok {
		fmt.Printf("sweep: output byte-identical across workers %v\n", counts)
	}
	return ok
}

// runShardedOnce executes one sharded scale run and reports the workload
// result, whether armed invariants held, and the host wall-clock time.
func runShardedOnce(cluster cli.ClusterFlags, o scaleOpts) (workload.ShardedReport, bool, time.Duration) {
	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	var invs []*validate.Invariants
	shcfg := workload.ShardedConfig{
		Scale: o.scaleConfig(), Shards: o.shards, Workers: o.workers,
		FS: cfg, Seed: cluster.Seed,
	}
	if o.validate {
		shcfg.AttachShard = func(shard int, e *des.Engine, sim *pfs.FS) {
			col := trace.NewCollector()
			col.SetLimit(1)
			invs = append(invs, validate.Attach(e, sim, col))
		}
	}
	wall0 := time.Now()
	rep := workload.RunShardedCheckpoint(shcfg)
	wall := time.Since(wall0)
	ok := true
	for _, inv := range invs {
		for _, v := range inv.Finish() {
			fmt.Printf("validation: VIOLATION %s\n", v)
			ok = false
		}
	}
	return rep, ok, wall
}

// runScale executes the built-in scale checkpoint: a file-per-process
// HACC-IO-like dump where every rank is a continuation-form event process
// (no goroutine per rank), optionally sharded across engines under a
// ParallelGroup. It reports simulated results plus host-side cost — wall
// time, event throughput, and heap bytes per rank. Returns false when an
// armed invariant was violated.
func runScale(cluster cli.ClusterFlags, o scaleOpts) bool {
	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	sc := o.scaleConfig()

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	wall0 := time.Now()

	var invs []*validate.Invariants
	// keepFS pins the simulation state through the post-run heap
	// measurement, so "heap B/rank" reports retained simulator footprint
	// (engine pool, clients, namespace) instead of zero after collection.
	var keepFS []*pfs.FS
	attach := func(e *des.Engine, sim *pfs.FS) {
		col := trace.NewCollector()
		col.SetLimit(1) // records flow through the invariant hook; retention is not needed
		invs = append(invs, validate.Attach(e, sim, col))
	}

	var makespan des.Time
	var totalBytes int64
	var effMBps float64
	var events uint64
	var ioErrors uint64
	if o.shards <= 1 {
		e := des.NewEngine(cluster.Seed)
		sim := pfs.New(e, cfg)
		keepFS = append(keepFS, sim)
		if o.validate {
			attach(e, sim)
		}
		rep := workload.RunScaleCheckpoint(e, sim, sc)
		makespan, totalBytes, effMBps, events, ioErrors =
			rep.Makespan, rep.TotalBytes, rep.EffectiveMBps, rep.Events, rep.IOErrors
	} else {
		shcfg := workload.ShardedConfig{
			Scale: sc, Shards: o.shards, Workers: o.workers,
			FS: cfg, Seed: cluster.Seed,
		}
		shcfg.AttachShard = func(shard int, e *des.Engine, sim *pfs.FS) {
			keepFS = append(keepFS, sim)
			if o.validate {
				attach(e, sim)
			}
		}
		rep := workload.RunShardedCheckpoint(shcfg)
		makespan, totalBytes, effMBps, events, ioErrors =
			rep.Makespan, rep.TotalBytes, rep.EffectiveMBps, rep.Events, rep.IOErrors
		fmt.Printf("sharded: %d shards (workers %d), ranks/shard %v, lookahead %v, %d windows\n",
			rep.Shards, rep.Workers, rep.RanksPerShard, rep.Lookahead, rep.Windows)
	}

	wall := time.Since(wall0)
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	heapPerRank := int64(0)
	if m1.HeapAlloc > m0.HeapAlloc {
		heapPerRank = int64(m1.HeapAlloc-m0.HeapAlloc) / int64(o.ranks)
	}
	runtime.KeepAlive(keepFS)

	nodes := (o.ranks + o.ranksPerNode - 1) / o.ranksPerNode
	fmt.Printf("scale checkpoint: %d ranks (%d nodes x %d), %d step(s), %s/rank\n",
		o.ranks, nodes, o.ranksPerNode, o.steps, cli.FormatSize(o.bytesPerRank))
	fmt.Printf("  simulated: makespan %v, %s checkpointed, effective %.1f MB/s, %d I/O errors\n",
		makespan, cli.FormatSize(totalBytes), effMBps, ioErrors)
	evRate := float64(events) / wall.Seconds()
	fmt.Printf("  host: %d events in %v (%.2fM events/s), heap %d B/rank\n",
		events, wall.Round(time.Millisecond), evRate/1e6, heapPerRank)

	ok := true
	for _, inv := range invs {
		for _, v := range inv.Finish() {
			fmt.Printf("validation: VIOLATION %s\n", v)
			ok = false
		}
	}
	if o.validate {
		var disp, recs, clops, ostev uint64
		for _, inv := range invs {
			st := inv.Stats()
			disp += st.Dispatches
			recs += st.TraceRecords
			clops += st.ClientOps
			ostev += st.OSTEvents
		}
		fmt.Printf("validation: %d dispatches, %d trace records, %d client ops, %d OST events checked\n",
			disp, recs, clops, ostev)
		if ok {
			fmt.Println("validation: all invariants held")
		}
	}
	return ok
}
