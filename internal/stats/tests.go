package stats

import (
	"math"
	"sort"
)

// TTestResult reports a two-sample Welch t-test.
type TTestResult struct {
	T  float64
	DF float64
	// P is the two-sided p-value (normal approximation of the t
	// distribution, adequate for df >= ~30; conservative otherwise).
	P float64
	// Significant reports P < 0.05.
	Significant bool
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(1), DF: na + nb - 2, P: 0, Significant: true}, nil
	}
	t := (ma - mb) / se
	// Welch–Satterthwaite degrees of freedom.
	num := (va/na + vb/nb) * (va/na + vb/nb)
	den := (va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1))
	df := num / den
	p := 2 * (1 - normalCDF(math.Abs(t)))
	return TTestResult{T: t, DF: df, P: p, Significant: p < 0.05}, nil
}

// normalCDF is the standard normal CDF.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// KSResult reports a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	D float64 // max CDF distance
	P float64 // asymptotic p-value
	// Significant reports P < 0.05.
	Significant bool
}

// KSTest compares two samples' distributions.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrInsufficientData
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		if sa[i] <= sb[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	// Asymptotic Kolmogorov distribution.
	ne := na * nb / (na + nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	p := ksProb(lambda)
	return KSResult{D: d, P: p, Significant: p < 0.05}, nil
}

// ksProb evaluates the Kolmogorov Q function.
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// MarkovChain is a first-order discrete Markov model over integer states.
type MarkovChain struct {
	n      int
	counts [][]float64
}

// NewMarkovChain creates a chain with n states.
func NewMarkovChain(n int) *MarkovChain {
	m := &MarkovChain{n: n, counts: make([][]float64, n)}
	for i := range m.counts {
		m.counts[i] = make([]float64, n)
	}
	return m
}

// FitMarkov builds a chain from a state sequence with n states.
func FitMarkov(seq []int, n int) *MarkovChain {
	m := NewMarkovChain(n)
	for i := 1; i < len(seq); i++ {
		m.Observe(seq[i-1], seq[i])
	}
	return m
}

// Observe records a transition.
func (m *MarkovChain) Observe(from, to int) {
	if from >= 0 && from < m.n && to >= 0 && to < m.n {
		m.counts[from][to]++
	}
}

// Prob returns P(to | from).
func (m *MarkovChain) Prob(from, to int) float64 {
	if from < 0 || from >= m.n || to < 0 || to >= m.n {
		return 0
	}
	var row float64
	for _, c := range m.counts[from] {
		row += c
	}
	if row == 0 {
		return 0
	}
	return m.counts[from][to] / row
}

// Predict returns the most likely next state after from (-1 if the state
// was never observed).
func (m *MarkovChain) Predict(from int) int {
	if from < 0 || from >= m.n {
		return -1
	}
	best, bestC := -1, 0.0
	for to, c := range m.counts[from] {
		if c > bestC {
			best, bestC = to, c
		}
	}
	return best
}

// Stationary estimates the stationary distribution by power iteration.
func (m *MarkovChain) Stationary(iters int) []float64 {
	pi := make([]float64, m.n)
	for i := range pi {
		pi[i] = 1 / float64(m.n)
	}
	next := make([]float64, m.n)
	for it := 0; it < iters; it++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < m.n; i++ {
			for j := 0; j < m.n; j++ {
				next[j] += pi[i] * m.Prob(i, j)
			}
		}
		var s float64
		for _, v := range next {
			s += v
		}
		if s == 0 {
			return pi
		}
		for j := range next {
			next[j] /= s
		}
		pi, next = next, pi
	}
	return pi
}
