package netsim

import (
	"testing"
	"testing/quick"

	"pioeval/internal/des"
)

func twoNodeFabric(cfg Config, seed int64) (*des.Engine, *Fabric) {
	e := des.NewEngine(seed)
	f := NewFabric(e, cfg)
	f.AddNode("a")
	f.AddNode("b")
	return e, f
}

func TestTransferTimeBasic(t *testing.T) {
	cfg := Config{Name: "t", Latency: 10 * des.Microsecond, LinkBandwidth: 1 * GBps}
	e, f := twoNodeFabric(cfg, 1)
	var done des.Time
	e.Spawn("x", func(p *des.Proc) {
		f.Transfer(p, "a", "b", 1_000_000) // 1 MB at 1 GB/s = 1 ms
		done = p.Now()
	})
	e.Run(des.MaxTime)
	want := 10*des.Microsecond + 1*des.Millisecond
	if done != want {
		t.Fatalf("transfer completed at %v, want %v", done, want)
	}
	if f.BytesMoved() != 1_000_000 || f.Messages() != 1 {
		t.Errorf("stats = %d bytes %d msgs", f.BytesMoved(), f.Messages())
	}
}

func TestTransferContentionOnSenderLink(t *testing.T) {
	cfg := Config{Name: "t", Latency: 0, LinkBandwidth: 1 * GBps}
	e := des.NewEngine(1)
	f := NewFabric(e, cfg)
	f.AddNode("a")
	f.AddNode("b")
	f.AddNode("c")
	var ends []des.Time
	for _, dst := range []string{"b", "c"} {
		dst := dst
		e.Spawn("x", func(p *des.Proc) {
			f.Transfer(p, "a", dst, 1_000_000)
			ends = append(ends, p.Now())
		})
	}
	e.Run(des.MaxTime)
	// Both share a's injection link: second finishes at 2ms.
	if ends[0] != 1*des.Millisecond || ends[1] != 2*des.Millisecond {
		t.Fatalf("ends = %v, want [1ms 2ms]", ends)
	}
}

func TestBackplaneCap(t *testing.T) {
	cfg := Config{
		Name: "t", Latency: 0,
		LinkBandwidth:      10 * GBps,
		BackplaneBandwidth: 1 * GBps,
		BackplaneChannels:  1,
	}
	e := des.NewEngine(1)
	f := NewFabric(e, cfg)
	f.AddNode("a")
	f.AddNode("b")
	f.AddNode("c")
	f.AddNode("d")
	var ends []des.Time
	pairs := [][2]string{{"a", "b"}, {"c", "d"}}
	for _, pr := range pairs {
		pr := pr
		e.Spawn("x", func(p *des.Proc) {
			f.Transfer(p, pr[0], pr[1], 1_000_000)
			ends = append(ends, p.Now())
		})
	}
	e.Run(des.MaxTime)
	// Disjoint links but shared backplane at 1GB/s: serialized, 1ms each.
	if ends[1] != 2*des.Millisecond {
		t.Fatalf("second transfer ended at %v, want 2ms (backplane serialization)", ends[1])
	}
}

func TestLoopback(t *testing.T) {
	cfg := Config{Name: "t", Latency: 10 * des.Microsecond, LinkBandwidth: 1 * GBps}
	e, f := twoNodeFabric(cfg, 1)
	var done des.Time
	e.Spawn("x", func(p *des.Proc) {
		f.Transfer(p, "a", "a", 1<<30)
		done = p.Now()
	})
	e.Run(des.MaxTime)
	if done != 5*des.Microsecond {
		t.Fatalf("loopback took %v, want half latency", done)
	}
}

func TestMTUPipelineStillMovesAllBytes(t *testing.T) {
	cfg := Config{Name: "t", Latency: 1 * des.Microsecond, LinkBandwidth: 1 * GBps, MTU: 64 << 10}
	e, f := twoNodeFabric(cfg, 1)
	var done des.Time
	e.Spawn("x", func(p *des.Proc) {
		f.Transfer(p, "a", "b", 1_000_000)
		done = p.Now()
	})
	e.Run(des.MaxTime)
	// Serialization dominates: ~1ms regardless of chunking.
	lo, hi := 1*des.Millisecond, 1*des.Millisecond+100*des.Microsecond
	if done < lo || done > hi {
		t.Fatalf("chunked transfer took %v, want within [%v, %v]", done, lo, hi)
	}
}

func TestPresets(t *testing.T) {
	ib, eth := InfiniBandLike(), EthernetLike()
	if ib.LinkBandwidth <= eth.LinkBandwidth {
		t.Error("IB should be faster than Ethernet")
	}
	if ib.Latency >= eth.Latency {
		t.Error("IB should have lower latency than Ethernet")
	}
}

func TestUnknownNodePanics(t *testing.T) {
	e, f := twoNodeFabric(Config{Name: "t", LinkBandwidth: GBps}, 1)
	e.Spawn("x", func(p *des.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("transfer to unknown node should panic")
			}
		}()
		f.Transfer(p, "a", "nope", 10)
	})
	e.Run(des.MaxTime)
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode should panic")
		}
	}()
	e := des.NewEngine(1)
	f := NewFabric(e, Config{Name: "t"})
	f.AddNode("a")
	f.AddNode("a")
}

// Property: transfer duration is monotonically non-decreasing in size.
func TestPropTransferMonotonic(t *testing.T) {
	f := func(s1, s2 uint32) bool {
		a, b := int64(s1%(1<<24)), int64(s2%(1<<24))
		if a > b {
			a, b = b, a
		}
		dur := func(size int64) des.Time {
			e, fb := twoNodeFabric(Config{Name: "t", Latency: des.Microsecond, LinkBandwidth: GBps}, 1)
			var d des.Time
			e.Spawn("x", func(p *des.Proc) {
				fb.Transfer(p, "a", "b", size)
				d = p.Now()
			})
			e.Run(des.MaxTime)
			return d
		}
		return dur(a) <= dur(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
