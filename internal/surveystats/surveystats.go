// Package surveystats builds and analyzes a simulated IO500 submission
// corpus. The IO500 "Treasure Trove" papers mine the public submission
// list for cross-site structure — score distributions, metric
// correlations, and which phase holds each submission back. This package
// reproduces that methodology over a synthetic corpus: it sweeps the
// composite suite across a device × tier × rank-count grid (one
// simulated "site" per point, seeded independently) and then runs the
// same three analyses over the resulting score table.
package surveystats

import (
	"fmt"
	"sort"

	"pioeval/internal/campaign"
	"pioeval/internal/io500"
	"pioeval/internal/stats"
)

// Grid describes the survey sweep: the cross product of devices, tiers,
// and rank counts, each point running one full composite suite.
type Grid struct {
	Devices []string `json:"devices"`
	Tiers   []string `json:"tiers"`
	Ranks   []int    `json:"ranks"`
	// Compress sweeps the data-reduction stage ("" or "none" =
	// uncompressed). Empty means the single uncompressed point, which
	// leaves the grid's point list — and every point's derived seed —
	// identical to a pre-axis grid, so recorded corpora stay valid.
	Compress []string `json:"compress,omitempty"`
	// Base supplies the suite sizing (block/xfer/file counts); its
	// Ranks/Device/Tier/Seed fields are overwritten per grid point.
	Base io500.Config `json:"base"`
	// Seed is the survey master seed; point i runs with
	// campaign.RunSeed(Seed, i) so each simulated site is independent
	// but the whole corpus is reproducible.
	Seed int64 `json:"seed"`
	// Workers bounds corpus-build parallelism (0 = GOMAXPROCS). Each
	// point's suite runs its steps serially so the outer pool is the
	// only parallelism; results are indexed, so output is byte-identical
	// at any worker count.
	Workers int `json:"-"`
}

// Points expands the grid cross product in deterministic order:
// device-major, then tier, then ranks, then compressor.
func (g Grid) Points() []io500.Config {
	comps := g.Compress
	if len(comps) == 0 {
		comps = []string{""}
	}
	var out []io500.Config
	i := 0
	for _, dev := range g.Devices {
		for _, tier := range g.Tiers {
			for _, r := range g.Ranks {
				for _, comp := range comps {
					if comp == "none" {
						comp = ""
					}
					cfg := g.Base
					cfg.Device = dev
					cfg.Tier = tier
					cfg.Ranks = r
					cfg.Compress = comp
					cfg.Seed = campaign.RunSeed(g.Seed, i)
					cfg.Workers = 1
					out = append(out, cfg)
					i++
				}
			}
		}
	}
	return out
}

// Validate rejects empty grid axes and invalid base sizing.
func (g Grid) Validate() error {
	if len(g.Devices) == 0 || len(g.Tiers) == 0 || len(g.Ranks) == 0 {
		return fmt.Errorf("surveystats: grid needs at least one device, tier, and rank count")
	}
	pts := g.Points()
	for _, p := range pts {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("surveystats: grid point invalid: %w", err)
		}
	}
	return nil
}

// Corpus is the simulated submission list: one suite result per grid
// point, in grid order.
type Corpus struct {
	Grid        Grid            `json:"grid"`
	Submissions []*io500.Result `json:"submissions"`
}

// BuildCorpus runs the composite suite at every grid point. Point
// results land at their grid index, so the corpus is identical at any
// worker count.
func BuildCorpus(g Grid) (*Corpus, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	pts := g.Points()
	subs := make([]*io500.Result, len(pts))
	errs := make([]error, len(pts))
	pr := campaign.Pool(len(pts), campaign.Options{Workers: g.Workers}, func(i int) {
		subs[i], errs[i] = io500.Run(pts[i])
	})
	for _, p := range pr.Panicked {
		return nil, fmt.Errorf("surveystats: point %d panicked: %s", p.Index, p.Value)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("surveystats: point %d: %w", i, err)
		}
	}
	return &Corpus{Grid: g, Submissions: subs}, nil
}

// MetricNames lists the analyzed metrics in reporting order: the twelve
// scored phases, then the two sub-scores and the total.
func MetricNames() []string {
	out := append([]string{}, io500.PhaseOrder...)
	return append(out, "bw_score", "md_score", "score")
}

// metricValue extracts one named metric from a submission.
func metricValue(r *io500.Result, name string) float64 {
	switch name {
	case "bw_score":
		return r.BWScore
	case "md_score":
		return r.MDScore
	case "score":
		return r.Score
	}
	return r.Phase(name).Value
}

// MetricSummary pairs a metric name with its corpus-wide distribution.
type MetricSummary struct {
	Metric string `json:"metric"`
	stats.Summary
}

// Bottleneck is the per-submission attribution verdict: the phase whose
// lift to the corpus median would raise this submission's total score
// the most.
type Bottleneck struct {
	Index    int     `json:"index"`
	Device   string  `json:"device"`
	Tier     string  `json:"tier"`
	Compress string  `json:"compress,omitempty"`
	Ranks    int     `json:"ranks"`
	Score    float64 `json:"score"`
	// Phase is the attributed bottleneck ("" when the submission is at
	// or above the corpus median in every phase).
	Phase string `json:"phase"`
	// Lifted is the total score after raising Phase to its corpus
	// median; Gain = Lifted - Score.
	Lifted float64 `json:"lifted_score"`
	Gain   float64 `json:"gain"`
}

// Analysis is the Treasure-Trove-style corpus report.
type Analysis struct {
	N int `json:"n"`
	// Metrics holds each metric's distribution (percentiles, CV) over
	// the corpus, in MetricNames order.
	Metrics []MetricSummary `json:"metrics"`
	// Pearson and Spearman are correlation matrices over MetricNames;
	// entry [i][j] correlates metric i with metric j across submissions.
	Pearson  [][]float64 `json:"pearson"`
	Spearman [][]float64 `json:"spearman"`
	// Bottlenecks attributes each submission's limiting phase.
	Bottlenecks []Bottleneck `json:"bottlenecks"`
	// BottleneckCounts tallies attributed phases, descending by count
	// (ties broken by name) — the corpus-wide "what holds sites back".
	BottleneckCounts []PhaseCount `json:"bottleneck_counts"`
}

// PhaseCount is one row of the bottleneck tally.
type PhaseCount struct {
	Phase string `json:"phase"`
	Count int    `json:"count"`
}

// Analyze computes score distributions, metric correlation matrices,
// and per-submission bottleneck attribution over the corpus.
func Analyze(c *Corpus) (*Analysis, error) {
	if len(c.Submissions) == 0 {
		return nil, fmt.Errorf("surveystats: empty corpus")
	}
	names := MetricNames()
	cols := make(map[string][]float64, len(names))
	for _, n := range names {
		col := make([]float64, len(c.Submissions))
		for i, s := range c.Submissions {
			col[i] = metricValue(s, n)
		}
		cols[n] = col
	}

	a := &Analysis{N: len(c.Submissions)}
	for _, n := range names {
		a.Metrics = append(a.Metrics, MetricSummary{Metric: n, Summary: stats.Summarize(cols[n])})
	}

	a.Pearson = make([][]float64, len(names))
	a.Spearman = make([][]float64, len(names))
	for i, ni := range names {
		a.Pearson[i] = make([]float64, len(names))
		a.Spearman[i] = make([]float64, len(names))
		for j, nj := range names {
			// Degenerate columns (zero variance) correlate as 0 by
			// convention rather than failing the whole analysis.
			if r, err := stats.Pearson(cols[ni], cols[nj]); err == nil {
				a.Pearson[i][j] = r
			}
			if r, err := stats.Spearman(cols[ni], cols[nj]); err == nil {
				a.Spearman[i][j] = r
			}
		}
	}

	medians := make(map[string]float64, len(io500.PhaseOrder))
	for _, n := range io500.PhaseOrder {
		medians[n] = stats.Quantile(cols[n], 0.5)
	}
	counts := map[string]int{}
	for i, s := range c.Submissions {
		b := attribute(s, medians)
		b.Index = i
		b.Device = s.Config.Device
		b.Tier = s.Config.Tier
		b.Compress = s.Config.Compress
		b.Ranks = s.Config.Ranks
		a.Bottlenecks = append(a.Bottlenecks, b)
		if b.Phase != "" {
			counts[b.Phase]++
		}
	}
	for ph, n := range counts {
		a.BottleneckCounts = append(a.BottleneckCounts, PhaseCount{Phase: ph, Count: n})
	}
	sort.Slice(a.BottleneckCounts, func(i, j int) bool {
		ci, cj := a.BottleneckCounts[i], a.BottleneckCounts[j]
		if ci.Count != cj.Count {
			return ci.Count > cj.Count
		}
		return ci.Phase < cj.Phase
	})
	return a, nil
}

// attribute finds the phase whose lift to the corpus median raises the
// submission's total score the most: a counterfactual replay of the
// IO500 scoring rule, not a heuristic. Submissions already at or above
// the median everywhere attribute to no phase.
func attribute(s *io500.Result, medians map[string]float64) Bottleneck {
	base := s.Values()
	b := Bottleneck{Score: s.Score, Lifted: s.Score}
	for _, ph := range io500.PhaseOrder {
		med := medians[ph]
		if base[ph] >= med {
			continue
		}
		lifted := make(map[string]float64, len(base))
		for k, v := range base {
			lifted[k] = v
		}
		lifted[ph] = med
		_, _, total := io500.Score(lifted)
		if gain := total - s.Score; gain > b.Gain {
			b.Phase, b.Lifted, b.Gain = ph, total, gain
		}
	}
	return b
}
