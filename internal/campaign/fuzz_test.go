package campaign

import "testing"

// maxFuzzPoints bounds grid expansion during fuzzing: the cartesian
// product of fuzzer-supplied axes can be astronomically large, and Expand
// materializes it.
const maxFuzzPoints = 10_000

// FuzzSpecParse fuzzes the campaign spec grammar: parsing must never
// panic, and any spec that parses and validates must expand to a
// well-formed grid (sequential point IDs, every axis value concrete).
func FuzzSpecParse(f *testing.F) {
	for _, s := range []string{
		"campaign \"t\" {\n}\n",
		"campaign \"t\" {\n\tseed 7\n\treps 2\n\tranks 2, 4\n\tdevice hdd, ssd\n}\n",
		"campaign \"t\" {\n\tworkload checkpoint\n\tburst-buffer false, true\n\tblock-size 1MB\n}\n",
		"campaign \"t\" {\n\ttransfer-size 256KB, 1MB # comment\n\tfaults \"\", \"ostcrash:1@5ms\"\n}\n",
		"campaign \"t\" {\n\tworkload checkpoint\n\ttier direct, bb, nodelocal\n\tblock-size 1MB\n}\n",
		"campaign \"t\" {\n\ttier warp\n}\n",
		"campaign \"t\" {\n\tcompress none, lz, deflate\n\tdevice hdd, nvme\n}\n",
		"campaign \"t\" {\n\tworkload checkpoint\n\tcompress sz\n\ttier bb\n\tblock-size 4MB\n}\n",
		"campaign \"t\" {\n\ttier warp\n\tcompress brotli\n}\n",
		"campaign \"broken\" {",
		"campaign \"t\" {\n\tranks 0\n}\n",
		"not a campaign",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSpec(src)
		if err != nil {
			return
		}
		s = s.withDefaults()
		if err := s.Validate(); err != nil {
			return
		}
		n := len(s.Ranks) * len(s.Devices) * len(s.StripeCounts) * len(s.StripeSizes) *
			len(s.BlockSizes) * len(s.TransferSizes) * len(s.Patterns) * len(s.Collective) *
			len(s.BurstBuffer) * len(s.Tiers) * len(s.Compress) * len(s.Faults)
		if n <= 0 || n > maxFuzzPoints {
			return
		}
		points := s.Expand()
		if len(points) != n {
			t.Fatalf("Expand returned %d points, axes multiply to %d", len(points), n)
		}
		for i, p := range points {
			if p.ID != i {
				t.Fatalf("point %d has ID %d; IDs must be sequential", i, p.ID)
			}
			if p.Ranks <= 0 || p.StripeCount <= 0 || p.StripeSize <= 0 {
				t.Fatalf("validated spec expanded to a degenerate point: %+v", p)
			}
		}
	})
}
