package io500

import (
	"encoding/json"
	"fmt"
	"io"

	"pioeval/internal/cli"
)

// WriteText renders the result as an IO500-list-style text table: one
// [RESULT] line per phase in reporting order, then the [SCORE] line with
// both sub-scores and the total. Output is deterministic per Result.
func (r *Result) WriteText(w io.Writer) error {
	cfg := r.Config
	if _, err := fmt.Fprintf(w, "IO500-style composite suite (simulated cluster)\n"); err != nil {
		return err
	}
	comp := ""
	if cfg.Compress != "" {
		comp = " compress=" + cfg.Compress
	}
	fmt.Fprintf(w, "  config: ranks=%d device=%s tier=%s%s stripe=%dx%s seed=%d\n",
		cfg.Ranks, cfg.Device, cfg.Tier, comp, cfg.StripeCount, cli.FormatSize(cfg.StripeSize), cfg.Seed)
	fmt.Fprintf(w, "  sizing: easy-block=%s easy-xfer=%s hard-xfer=%dB hard-ops=%d easy-files=%d hard-files=%d hard-bytes=%dB\n",
		cli.FormatSize(cfg.EasyBlock), cli.FormatSize(cfg.EasyXfer), cfg.HardXfer,
		cfg.HardOps, cfg.EasyFiles, cfg.HardFiles, cfg.HardFileBytes)
	for _, p := range r.Phases {
		unit := "kIOPS"
		if p.Kind == KindBW {
			unit = "GiB/s"
		}
		extra := ""
		if p.Name == Find {
			extra = fmt.Sprintf(" : found %d", p.Found)
		}
		fmt.Fprintf(w, "[RESULT] %20s %15.6f %s : time %.6f seconds%s\n",
			p.Name, p.Value, unit, p.Seconds, extra)
	}
	fmt.Fprintf(w, "[SCORE ] Bandwidth %.6f GiB/s : IOPS %.6f kIOPS : TOTAL %.6f\n",
		r.BWScore, r.MDScore, r.Score)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "validation: VIOLATION %s\n", v)
	}
	if r.Config.Check && len(r.Violations) == 0 {
		fmt.Fprintln(w, "validation: all invariants held")
	}
	return nil
}

// WriteJSON serializes the result (config, per-phase metrics, scores,
// violations) as indented JSON — the BENCH_io500.json suite record.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
