package des

import (
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"
)

// ParallelGroup executes several independent engines (logical partitions,
// "shards") concurrently under conservative synchronization — the classic
// CMB-style parallel-discrete-event contract: cross-partition interactions
// must carry at least one link lookahead of latency, so no cross event can
// land inside the window that emits it. Results are bit-identical to a
// sequential execution at any worker count.
//
// The coupling layer is built for throughput:
//
//   - Persistent workers, epoch barrier. Shards are pinned to long-lived
//     workers for the duration of a Run; each window ("epoch") costs one
//     channel wake per worker and one atomic countdown, not a goroutine
//     spawn and a sync.WaitGroup.
//   - Sharded mailboxes. Send appends to a per-(sender, destination) lane
//     owned by the sender's worker — no global mutex, no allocation in
//     steady state. Lanes are flushed between epochs and merged
//     per-destination in deterministic (at, from, seq) order on reusable
//     scratch buffers.
//   - Per-link lookahead. SetLookahead(from, to, la) gives each directed
//     link its own lookahead (SetNoLink removes a link entirely), and each
//     shard advances to its own safe time — min over in-links of the
//     source's next-event lower bound plus the link lookahead — instead of
//     a single global earliest+lookahead window. Sparse topologies get
//     fewer, larger windows, and shards unreachable from the rest of the
//     group run free of the barrier.
//   - Cached next-event times. The per-epoch scan reads cached bounds
//     refreshed only for shards that executed or received messages; idle
//     engines are not re-queried every window.
type ParallelGroup struct {
	engines []*Engine
	n       int
	defLA   Time
	workers int

	// la is the n×n per-link lookahead matrix in row-major [from*n+to]
	// order; noLink marks an absent link. inLinks caches, per destination,
	// the links that constrain its safe time (rebuilt on topology change).
	la      []Time
	inLinks [][]inLink
	linksOK bool

	// lanes[from*n+to] buffers cross events; a lane is written only by the
	// worker executing shard `from` (or by the caller between Runs) and
	// drained only by the coordinator between epochs, so no lock is needed.
	// laneSeq[from] orders a sender's messages; per-sender sequences make
	// the (at, from, seq) merge key deterministic at any worker count.
	lanes   [][]crossEvent
	laneSeq []uint64

	// pend[to] holds flushed-but-undeliverable cross events per
	// destination; pendMin[to] caches the earliest pending timestamp.
	// scratch is the reusable per-delivery merge buffer.
	pend    [][]crossEvent
	pendMin []Time
	scratch []crossEvent

	// locNext caches each engine's next-event time (MaxTime when idle);
	// next and winEnd are the per-epoch work bound and window end.
	locNext []Time
	next    []Time
	winEnd  []Time

	windows uint64

	// Worker pool, live only inside Run: startCh wakes each worker for one
	// epoch, remaining counts unfinished participants, doneCh signals the
	// coordinator, panics carries a recovered per-slot panic out of the
	// pool so Run can rethrow it after the barrier.
	startCh   []chan struct{}
	doneCh    chan struct{}
	remaining atomic.Int32
	panics    []any
}

// inLink is one directed link constraining a destination's safe time.
type inLink struct {
	src int32
	la  Time
}

// noLink marks an absent link in the lookahead matrix.
const noLink Time = MaxTime

// crossEvent is a pending cross-partition event.
type crossEvent struct {
	at   Time
	from int32
	seq  uint64
	fn   func()
}

// NewParallelGroup couples engines with the given default lookahead (> 0)
// on every directed link, including self-links. Use SetLookahead /
// SetNoLink to refine the topology.
func NewParallelGroup(lookahead Time, engines ...*Engine) *ParallelGroup {
	if lookahead <= 0 {
		panic("des: parallel lookahead must be positive")
	}
	if len(engines) == 0 {
		panic("des: parallel group needs at least one engine")
	}
	n := len(engines)
	g := &ParallelGroup{
		engines: engines,
		n:       n,
		defLA:   lookahead,
		la:      make([]Time, n*n),
		lanes:   make([][]crossEvent, n*n),
		laneSeq: make([]uint64, n),
		pend:    make([][]crossEvent, n),
		pendMin: make([]Time, n),
		locNext: make([]Time, n),
		next:    make([]Time, n),
		winEnd:  make([]Time, n),
	}
	for i := range g.la {
		g.la[i] = lookahead
	}
	for i := range g.pendMin {
		g.pendMin[i] = MaxTime
	}
	return g
}

// Engine returns partition i's engine.
func (g *ParallelGroup) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the group's default link lookahead.
func (g *ParallelGroup) Lookahead() Time { return g.defLA }

// Windows reports how many lookahead windows (epochs) Run has executed;
// scale tooling uses it to show how coarsely the group synchronizes.
func (g *ParallelGroup) Windows() uint64 { return g.windows }

// SetLookahead sets the lookahead of the directed link from → to (la > 0).
// A larger per-link lookahead widens every window the destination can be
// granted; Send on the link requires delay >= la.
func (g *ParallelGroup) SetLookahead(from, to int, la Time) {
	if la <= 0 {
		panic("des: per-link lookahead must be positive")
	}
	g.checkPair(from, to)
	g.la[from*g.n+to] = la
	g.linksOK = false
}

// SetNoLink declares that partition `from` never sends to partition `to`
// (including from == to, which drops the default self-link). The link
// stops constraining the destination's safe time — a shard with no
// in-links runs ahead without any barrier — and Send on it panics.
func (g *ParallelGroup) SetNoLink(from, to int) {
	g.checkPair(from, to)
	g.la[from*g.n+to] = noLink
	g.linksOK = false
}

func (g *ParallelGroup) checkPair(from, to int) {
	if to < 0 || to >= g.n || from < 0 || from >= g.n {
		panic("des: cross-partition index out of range")
	}
}

// SetWorkers bounds how many OS workers execute shards within an epoch:
// 1 runs shards sequentially in index order on the caller, n <= 0 (the
// default) uses min(len(engines), runtime.NumCPU()), and explicit values
// are capped at the shard count. Shards are pinned round-robin to workers
// for a whole Run. The choice never affects results — epochs are
// barrier-synchronized and shards within an epoch are independent — so any
// worker count must produce identical output; tests and the -race sweep
// smoke rely on that.
func (g *ParallelGroup) SetWorkers(n int) { g.workers = n }

// Workers reports the worker count a Run would use right now: the
// SetWorkers value resolved against the host core count and the shard
// count. Reports quote this rather than the raw configuration knob.
func (g *ParallelGroup) Workers() int { return g.effectiveWorkers() }

func (g *ParallelGroup) effectiveWorkers() int {
	w := g.workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > g.n {
		w = g.n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Send schedules fn to run on partition `to` after delay `delay` measured
// from partition `from`'s current time. The delay must be at least the
// link's lookahead — that is what makes conservative windowed execution
// correct — and the link must exist. Call it from code executing on
// partition `from` (event handlers and processes of that engine, or any
// code while the group is not running); the lane it appends to is owned by
// the sender's worker, which is what makes the path lock- and
// allocation-free in steady state.
func (g *ParallelGroup) Send(from, to int, delay Time, fn func()) {
	g.checkPair(from, to)
	la := g.la[from*g.n+to]
	if la == noLink {
		panic(fmt.Sprintf("des: cross-partition send %d->%d on a link declared absent (SetNoLink)", from, to))
	}
	if delay < la {
		panic(fmt.Sprintf("des: cross-partition delay %v below link lookahead %v", delay, la))
	}
	lane := &g.lanes[from*g.n+to]
	*lane = append(*lane, crossEvent{
		at:   g.engines[from].Now() + delay,
		from: int32(from),
		seq:  g.laneSeq[from],
		fn:   fn,
	})
	g.laneSeq[from]++
}

// rebuildLinks recomputes the per-destination in-link lists from the
// lookahead matrix.
func (g *ParallelGroup) rebuildLinks() {
	if g.linksOK {
		return
	}
	if g.inLinks == nil {
		g.inLinks = make([][]inLink, g.n)
	}
	for to := 0; to < g.n; to++ {
		links := g.inLinks[to][:0]
		for from := 0; from < g.n; from++ {
			if la := g.la[from*g.n+to]; la != noLink {
				links = append(links, inLink{src: int32(from), la: la})
			}
		}
		g.inLinks[to] = links
	}
	g.linksOK = true
}

// flushLanes moves every buffered cross event into its destination's
// pending list, maintaining pendMin. Runs on the coordinator between
// epochs, when all lanes are quiescent.
func (g *ParallelGroup) flushLanes() {
	for i := range g.lanes {
		lane := g.lanes[i]
		if len(lane) == 0 {
			continue
		}
		to := i % g.n
		g.pend[to] = append(g.pend[to], lane...)
		for k := range lane {
			if lane[k].at < g.pendMin[to] {
				g.pendMin[to] = lane[k].at
			}
		}
		g.lanes[i] = lane[:0]
	}
}

// deliver schedules destination d's due cross events (at <= winEnd[d]) in
// deterministic (at, from, seq) order, compacting the pending list in
// place and reusing the group scratch buffer: zero steady-state
// allocations.
func (g *ParallelGroup) deliver(d int) {
	pend := g.pend[d]
	scratch := g.scratch[:0]
	keep := pend[:0]
	we := g.winEnd[d]
	newMin := MaxTime
	for i := range pend {
		if pend[i].at <= we {
			scratch = append(scratch, pend[i])
		} else {
			if pend[i].at < newMin {
				newMin = pend[i].at
			}
			keep = append(keep, pend[i])
		}
	}
	g.pend[d] = keep
	g.pendMin[d] = newMin
	slices.SortFunc(scratch, func(a, b crossEvent) int {
		switch {
		case a.at != b.at:
			if a.at < b.at {
				return -1
			}
			return 1
		case a.from != b.from:
			return int(a.from) - int(b.from)
		case a.seq < b.seq:
			return -1
		default:
			return 1
		}
	})
	e := g.engines[d]
	for i := range scratch {
		e.schedule(scratch[i].at, scratch[i].fn, nil)
		scratch[i].fn = nil
	}
	if len(scratch) > 0 && scratch[0].at < g.locNext[d] {
		g.locNext[d] = scratch[0].at
	}
	g.scratch = scratch[:0]
}

// satAdd is a+b saturating at MaxTime (both operands non-negative).
func satAdd(a, b Time) Time {
	if s := a + b; s >= a {
		return s
	}
	return MaxTime
}

// cacheNext refreshes shard s's next-event cache from its engine.
func (g *ParallelGroup) cacheNext(s int) {
	if at, ok := g.engines[s].NextEventTime(); ok {
		g.locNext[s] = at
	} else {
		g.locNext[s] = MaxTime
	}
}

// runShard executes one shard's window: run to the window end, refresh the
// next-event cache, and keep the clock in step (never advancing to an
// unbounded window end, so a free-running shard's clock rests on its last
// event).
func (g *ParallelGroup) runShard(s int) {
	we := g.winEnd[s]
	e := g.engines[s]
	if g.locNext[s] <= we {
		e.Run(we)
		g.cacheNext(s)
	}
	if we < MaxTime {
		e.AdvanceTo(we)
	}
}

// runSpan executes every shard pinned to the given worker slot, capturing
// a panic so the epoch barrier still completes; Run rethrows it.
func (g *ParallelGroup) runSpan(slot, stride int) {
	defer func() {
		if r := recover(); r != nil {
			g.panics[slot] = r
		}
	}()
	for s := slot; s < g.n; s += stride {
		g.runShard(s)
	}
}

// workerLoop is one persistent pool worker: each receive is one epoch.
func (g *ParallelGroup) workerLoop(slot, stride int) {
	for range g.startCh[slot] {
		g.runSpan(slot, stride)
		if g.remaining.Add(-1) == 0 {
			g.doneCh <- struct{}{}
		}
	}
}

// startPool launches w-1 persistent workers (the coordinator itself takes
// the last slot) and stopPool shuts them down; both bracket one Run.
func (g *ParallelGroup) startPool(w int) {
	g.startCh = make([]chan struct{}, w-1)
	g.doneCh = make(chan struct{}, 1)
	g.panics = make([]any, w)
	for slot := range g.startCh {
		g.startCh[slot] = make(chan struct{}, 1)
		go g.workerLoop(slot, w)
	}
}

func (g *ParallelGroup) stopPool() {
	for _, ch := range g.startCh {
		close(ch)
	}
	g.startCh = nil
	g.doneCh = nil
	g.panics = nil
}

// Run executes all partitions until no events remain anywhere or the
// horizon is reached, and returns the latest partition clock. Each
// iteration is one epoch: flush send lanes, bound every shard's safe time
// from its in-links, deliver due cross events, then execute all shards —
// pinned to persistent workers — up to their window ends.
func (g *ParallelGroup) Run(horizon Time) Time {
	n := g.n
	g.rebuildLinks()
	for s := 0; s < n; s++ {
		g.cacheNext(s)
	}
	w := g.effectiveWorkers()
	if w > 1 {
		g.startPool(w)
		defer g.stopPool()
	}
	for {
		g.flushLanes()
		minNext := MaxTime
		for s := 0; s < n; s++ {
			nx := g.locNext[s]
			if g.pendMin[s] < nx {
				nx = g.pendMin[s]
			}
			g.next[s] = nx
			if nx < minNext {
				minNext = nx
			}
		}
		if minNext == MaxTime || minNext > horizon {
			break
		}

		// Safe time per destination: min over in-links of the source's
		// next-work bound plus the link lookahead. Any message a source can
		// still emit on a link lands at or beyond that bound, so the
		// destination may execute everything up to it. A destination with
		// no (live) in-links is unconstrained and runs to the horizon.
		for d := 0; d < n; d++ {
			safe := MaxTime
			for _, l := range g.inLinks[d] {
				if src := g.next[l.src]; src != MaxTime {
					if b := satAdd(src, l.la); b < safe {
						safe = b
					}
				}
			}
			if safe > horizon {
				safe = horizon
			}
			g.winEnd[d] = safe
		}
		for d := 0; d < n; d++ {
			if g.pendMin[d] <= g.winEnd[d] {
				g.deliver(d)
			}
		}
		g.windows++

		if w == 1 {
			for s := 0; s < n; s++ {
				g.runShard(s)
			}
		} else {
			g.remaining.Store(int32(w))
			for _, ch := range g.startCh {
				ch <- struct{}{}
			}
			g.runSpan(w-1, w)
			if g.remaining.Add(-1) != 0 {
				<-g.doneCh
			}
			for slot, p := range g.panics {
				if p != nil {
					g.panics[slot] = nil
					panic(p)
				}
			}
		}
	}
	var last Time
	for _, e := range g.engines {
		if e.Now() > last {
			last = e.Now()
		}
	}
	return last
}
