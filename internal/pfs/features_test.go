package pfs

import (
	"errors"
	"testing"

	"pioeval/internal/des"
)

func TestReadaheadSpeedsUpInterleavedSequentialStreams(t *testing.T) {
	// The realistic readahead win: two clients stream different files on
	// the same HDD OST. Small interleaved reads seek on every access;
	// readahead turns them into few large requests.
	total := int64(8 << 20)
	blk := int64(64 << 10)
	run := func(ra int64) des.Time {
		cfg := DefaultConfig() // HDD
		cfg.NumIONodes = 0
		cfg.NumOSS = 1
		cfg.OSTsPerOSS = 1
		cfg.ClientReadahead = ra
		e := des.NewEngine(42)
		fs := New(e, cfg)
		for i := 0; i < 2; i++ {
			i := i
			c := fs.NewClient(clientName(i))
			e.Spawn("rd", func(p *des.Proc) {
				path := "/f" + string(rune('0'+i))
				h, _ := c.Create(p, path, 1, 1<<20)
				h.Write(p, 0, total)
				for off := int64(0); off < total; off += blk {
					h.Read(p, off, blk)
				}
				h.Close(p)
			})
		}
		end := e.Run(des.MaxTime)
		if e.LiveProcs() != 0 {
			t.Fatal("deadlock")
		}
		return end
	}
	plain, ahead := run(0), run(4<<20)
	if ahead >= plain {
		t.Fatalf("readahead (%v) should beat plain (%v) on interleaved streams", ahead, plain)
	}
	if speedup := float64(plain) / float64(ahead); speedup < 2 {
		t.Errorf("readahead speedup = %.1fx, want >= 2x", speedup)
	}
}

func TestReadaheadHurtsRandomReads(t *testing.T) {
	total := int64(16 << 20)
	blk := int64(64 << 10)
	run := func(ra int64) des.Time {
		cfg := DefaultConfig()
		cfg.NumIONodes = 0
		cfg.ClientReadahead = ra
		var d des.Time
		runClient(t, cfg, func(p *des.Proc, c *Client) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			h.Write(p, 0, total)
			rng := p.Engine().RNG().Stream("rnd")
			s := p.Now()
			for i := 0; i < 64; i++ {
				h.Read(p, rng.Int63n(total-blk), blk)
			}
			d = p.Now() - s
			h.Close(p)
		})
		return d
	}
	if plain, ahead := run(0), run(4<<20); ahead <= plain {
		t.Errorf("readahead should amplify random reads: plain %v, ahead %v", plain, ahead)
	}
}

func TestWriteInvalidatesReadahead(t *testing.T) {
	cfg := fastConfig()
	cfg.ClientReadahead = 8 << 20
	var hitTime, missTime des.Time
	runClient(t, cfg, func(p *des.Proc, c *Client) {
		h, _ := c.Create(p, "/f", 1, 1<<20)
		h.Write(p, 0, 4<<20)
		h.Read(p, 0, 64<<10) // fetches window
		s := p.Now()
		h.Read(p, 64<<10, 64<<10) // hit: free
		hitTime = p.Now() - s
		h.Write(p, 0, 4096) // invalidates
		s = p.Now()
		h.Read(p, 128<<10, 64<<10) // miss again
		missTime = p.Now() - s
		h.Close(p)
	})
	if hitTime != 0 {
		t.Errorf("cache hit cost %v, want 0", hitTime)
	}
	if missTime == 0 {
		t.Error("post-write read should miss")
	}
}

func TestStragglerOSTDominatesStripedWrite(t *testing.T) {
	duration := func(straggler bool) des.Time {
		cfg := fastConfig()
		e := des.NewEngine(13)
		fs := New(e, cfg)
		if straggler {
			fs.InjectOSTSlowdown(0, 10)
		}
		c := fs.NewClient("c0")
		var d des.Time
		e.Spawn("w", func(p *des.Proc) {
			h, _ := c.Create(p, "/f", 8, 1<<20)
			s := p.Now()
			h.Write(p, 0, 32<<20)
			d = p.Now() - s
			h.Close(p)
		})
		e.Run(des.MaxTime)
		return d
	}
	healthy, degraded := duration(false), duration(true)
	if degraded <= healthy {
		t.Fatalf("straggler write (%v) should be slower than healthy (%v)", degraded, healthy)
	}
	// One slow OST out of 8 gates the whole striped write (tail latency).
	if ratio := float64(degraded) / float64(healthy); ratio < 3 {
		t.Errorf("straggler impact = %.1fx, want >= 3x (stripe-wide stall)", ratio)
	}
}

func TestStragglerVisibleInServerStats(t *testing.T) {
	cfg := fastConfig()
	e := des.NewEngine(13)
	fs := New(e, cfg)
	fs.InjectOSTSlowdown(2, 20)
	c := fs.NewClient("c0")
	e.Spawn("w", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 8, 1<<20)
		h.Write(p, 0, 32<<20)
		h.Close(p)
	})
	e.Run(des.MaxTime)
	stats := fs.OSTStats()
	// The degraded OST shows the highest utilization (it is busy longest).
	best, bestU := -1, 0.0
	for _, st := range stats {
		if st.Utilization > bestU {
			best, bestU = st.ID, st.Utilization
		}
	}
	if best != 2 {
		t.Errorf("most-utilized OST = %d, want the degraded one (2)", best)
	}
	// Restoring speed works.
	fs.InjectOSTSlowdown(2, 1)
}

func TestInjectSlowdownValidation(t *testing.T) {
	e := des.NewEngine(1)
	fs := New(e, fastConfig())
	if err := fs.InjectOSTSlowdown(99, 2); !errors.Is(err, ErrNoSuchOST) {
		t.Errorf("bad OST id: err = %v, want ErrNoSuchOST", err)
	}
	if err := fs.InjectOSTSlowdown(-1, 2); !errors.Is(err, ErrNoSuchOST) {
		t.Errorf("negative OST id: err = %v, want ErrNoSuchOST", err)
	}
	if err := fs.InjectOSTSlowdown(0, 0); !errors.Is(err, ErrBadSlowdown) {
		t.Errorf("zero factor: err = %v, want ErrBadSlowdown", err)
	}
	if err := fs.InjectOSTSlowdown(0, -3); !errors.Is(err, ErrBadSlowdown) {
		t.Errorf("negative factor: err = %v, want ErrBadSlowdown", err)
	}
	if err := fs.InjectOSTSlowdown(0, 4); err != nil {
		t.Errorf("valid slowdown: err = %v", err)
	}
	if err := fs.InjectOSTSlowdown(0, 1); err != nil {
		t.Errorf("restore to nominal: err = %v", err)
	}
}

func TestClientStatsCounters(t *testing.T) {
	cfg := fastConfig()
	e := des.NewEngine(14)
	fs := New(e, cfg)
	c := fs.NewClient("c0")
	e.Spawn("w", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 1, 1<<20)
		h.Write(p, 0, 2<<20)
		h.Read(p, 0, 1<<20)
		h.Close(p)
		_, _ = c.Stat(p, "/f")
	})
	e.Run(des.MaxTime)
	st := c.Stats()
	if st.WriteRPCs == 0 || st.ReadRPCs == 0 {
		t.Fatalf("rpc counts = %+v", st)
	}
	// Create + setsize(s) + stat + close-path metadata.
	if st.MetaRPCs < 3 {
		t.Errorf("meta rpcs = %d", st.MetaRPCs)
	}
	if st.BytesSent < 2<<20 {
		t.Errorf("bytes sent = %d, want >= write payload", st.BytesSent)
	}
	if st.BytesRecv < 1<<20 {
		t.Errorf("bytes recv = %d, want >= read payload", st.BytesRecv)
	}
}
