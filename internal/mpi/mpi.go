// Package mpi simulates an MPI runtime on top of the discrete-event engine:
// ranks are simulated processes, point-to-point messages pay a latency +
// bandwidth (alpha-beta) cost, and collectives use logarithmic cost models.
// It is the middleware under the simulated MPI-IO layer (internal/mpiio)
// and the vehicle for all multi-rank workloads.
package mpi

import (
	"fmt"

	"pioeval/internal/des"
)

// Options configures the communication cost model.
type Options struct {
	// Alpha is the per-message latency.
	Alpha des.Time
	// BetaBps is the per-rank link bandwidth in bytes/second.
	BetaBps float64
	// EagerLimit is unused by the cost model but kept for reporting; all
	// sends are eager.
	EagerLimit int64
}

// DefaultOptions returns an InfiniBand-like cost model: 1.5us latency,
// 10 GB/s bandwidth.
func DefaultOptions() Options {
	return Options{Alpha: 1500 * des.Nanosecond, BetaBps: 10e9, EagerLimit: 64 << 10}
}

// xferCost returns alpha + size/beta.
func (o Options) xferCost(size int64) des.Time {
	t := o.Alpha
	if o.BetaBps > 0 {
		t += des.Time(float64(size) / o.BetaBps * float64(des.Second))
	}
	return t
}

// World is an MPI communicator: a fixed set of ranks on one engine.
type World struct {
	eng  *des.Engine
	size int
	opts Options

	queues map[chanKey]*des.Queue[Message]

	// Barrier state.
	barGen    int
	barCount  int
	barSignal *des.Signal

	// Statistics.
	msgs      uint64
	bytesSent int64
}

type chanKey struct {
	src, dst, tag int
}

// Message is a received point-to-point message.
type Message struct {
	Src  int
	Tag  int
	Size int64
}

// NewWorld creates a communicator with size ranks.
func NewWorld(e *des.Engine, size int, opts Options) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	return &World{
		eng:       e,
		size:      size,
		opts:      opts,
		queues:    make(map[chanKey]*des.Queue[Message]),
		barSignal: des.NewSignal(e),
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Engine returns the simulation engine.
func (w *World) Engine() *des.Engine { return w.eng }

// Options returns the cost-model options.
func (w *World) Options() Options { return w.opts }

// Messages reports total point-to-point messages sent.
func (w *World) Messages() uint64 { return w.msgs }

// BytesSent reports total point-to-point payload bytes.
func (w *World) BytesSent() int64 { return w.bytesSent }

// Spawn launches fn once per rank as simulated processes. Call once; then
// run the engine.
func (w *World) Spawn(fn func(r *Rank)) {
	for i := 0; i < w.size; i++ {
		i := i
		w.eng.Spawn(fmt.Sprintf("rank%d", i), func(p *des.Proc) {
			fn(&Rank{w: w, id: i, p: p})
		})
	}
}

func (w *World) queue(k chanKey) *des.Queue[Message] {
	q, ok := w.queues[k]
	if !ok {
		q = des.NewQueue[Message](w.eng, fmt.Sprintf("mpi.%d.%d.%d", k.src, k.dst, k.tag))
		w.queues[k] = q
	}
	return q
}

// Rank is one MPI process: the pairing of a rank id with its simulated
// process. All methods must be called from the rank's own process.
type Rank struct {
	w  *World
	id int
	p  *des.Proc
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.w.size }

// Proc returns the underlying simulated process.
func (r *Rank) Proc() *des.Proc { return r.p }

// Now returns the current simulated time.
func (r *Rank) Now() des.Time { return r.p.Now() }

// Compute advances simulated time by d (models computation).
func (r *Rank) Compute(d des.Time) { r.p.Wait(d) }

// Send transmits size bytes to dst with tag; the sender blocks for the
// transfer cost (eager protocol), after which the message is available at
// the destination.
func (r *Rank) Send(dst, tag int, size int64) {
	if dst < 0 || dst >= r.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	r.p.Wait(r.w.opts.xferCost(size))
	r.w.msgs++
	r.w.bytesSent += size
	r.w.queue(chanKey{r.id, dst, tag}).Put(Message{Src: r.id, Tag: tag, Size: size})
}

// Recv blocks until a message with the given source and tag arrives.
func (r *Rank) Recv(src, tag int) Message {
	if src < 0 || src >= r.w.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	return r.w.queue(chanKey{src, r.id, tag}).Get(r.p)
}

// Sendrecv exchanges messages with a partner without deadlocking: the send
// completes, then the receive blocks.
func (r *Rank) Sendrecv(dst, sendTag int, size int64, src, recvTag int) Message {
	r.Send(dst, sendTag, size)
	return r.Recv(src, recvTag)
}

// Barrier synchronizes all ranks; the cost model adds a log2(P) latency
// term to the release.
func (r *Rank) Barrier() {
	w := r.w
	w.barCount++
	if w.barCount == w.size {
		w.barCount = 0
		w.barGen++
		// Dissemination barrier cost: ceil(log2 P) rounds of alpha.
		r.p.Wait(w.opts.Alpha * des.Time(ceilLog2(w.size)))
		w.barSignal.Fire()
		return
	}
	gen := w.barGen
	for w.barGen == gen {
		w.barSignal.Wait(r.p)
	}
}

// Bcast models a binomial-tree broadcast of size bytes from root. Every
// rank blocks for the modeled completion cost; no payload is exchanged.
func (r *Rank) Bcast(root int, size int64) {
	rounds := ceilLog2(r.w.size)
	r.p.Wait(des.Time(rounds) * r.w.opts.xferCost(size))
	r.Barrier()
}

// Allreduce models a recursive-doubling allreduce over size bytes.
func (r *Rank) Allreduce(size int64) {
	rounds := ceilLog2(r.w.size)
	r.p.Wait(des.Time(rounds) * r.w.opts.xferCost(size))
	r.Barrier()
}

// Allgather models gathering size bytes from every rank to every rank
// (ring algorithm: P-1 steps of size bytes).
func (r *Rank) Allgather(size int64) {
	steps := r.w.size - 1
	if steps > 0 {
		r.p.Wait(des.Time(steps) * r.w.opts.xferCost(size))
	}
	r.Barrier()
}

// Alltoall models a pairwise exchange of size bytes with every other rank.
func (r *Rank) Alltoall(size int64) {
	steps := r.w.size - 1
	if steps > 0 {
		r.p.Wait(des.Time(steps) * r.w.opts.xferCost(size))
	}
	r.Barrier()
}

// Reduce models a binomial-tree reduction to root.
func (r *Rank) Reduce(root int, size int64) {
	rounds := ceilLog2(r.w.size)
	r.p.Wait(des.Time(rounds) * r.w.opts.xferCost(size))
	r.Barrier()
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	l, v := 0, 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}
