// Package reduce models application-side data reduction as a storage
// pipeline stage. Following Huebl et al.'s scalability analysis of data
// reduction in HPC ("On the Scalability of Data Reduction Techniques in
// Current and Upcoming HPC Systems"), a compressor is characterized by an
// achieved ratio and a per-rank throughput curve: compressing trades CPU
// seconds per logical byte for fewer physical bytes on the wire and the
// device below. Whether that trade pays depends on the tier underneath —
// the same compressor that hides an HDD's bandwidth wall is pure overhead
// in front of an NVMe array — which is exactly the crossover the campaign
// `compress` axis sweeps.
//
// Stage implements storage.Stage, so a compressor stacks over any tier:
// compress(bb(direct)), compress(nodelocal). Writes charge compression
// CPU time to the calling rank, then forward ceil(size/ratio) physical
// bytes below; reads fetch the shrunken extent and charge decompression
// time. Logical-vs-physical accounting is exposed through
// storage.StageAccounting for the validate conservation oracles.
package reduce

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pioeval/internal/des"
	"pioeval/internal/storage"
)

// Model is one compressor's cost curve: the achieved reduction ratio and
// the per-rank throughputs that convert bytes into simulated CPU seconds.
type Model struct {
	// Name identifies the model ("lz", "deflate", "zfp", "sz").
	Name string
	// Lossy marks error-bounded (lossy) compressors; ErrorBound is the
	// configured point-wise bound (0 for lossless).
	Lossy      bool
	ErrorBound float64
	// Ratio is the modeled reduction factor: logical bytes / physical
	// bytes. Must be >= 1.
	Ratio float64
	// CompressMBps / DecompressMBps are per-rank throughputs over logical
	// bytes (MB = 1e6 bytes).
	CompressMBps   float64
	DecompressMBps float64
	// RampBytes is the per-call overhead expressed as extra bytes charged
	// at the throughput above — small transfers pay proportionally more,
	// matching the per-block setup cost real codecs exhibit.
	RampBytes int64
}

// presets are the shipped compressor models. Ratios and throughputs are
// in the range reported by Huebl et al. for lossless byte-oriented codecs
// (lz-family, deflate) and error-bounded lossy ones (zfp, sz) on
// scientific checkpoint data. The spread is deliberate: "lz" beats a
// shared HDD but loses to NVMe, while "deflate" is CPU-bound enough to
// lose even on HDD — both sides of the crossover are representable.
var presets = map[string]Model{
	"lz":      {Name: "lz", Ratio: 2.1, CompressMBps: 750, DecompressMBps: 1500, RampBytes: 4096},
	"deflate": {Name: "deflate", Ratio: 3.2, CompressMBps: 140, DecompressMBps: 500, RampBytes: 16384},
	"zfp":     {Name: "zfp", Lossy: true, ErrorBound: 1e-3, Ratio: 6, CompressMBps: 450, DecompressMBps: 900, RampBytes: 8192},
	"sz":      {Name: "sz", Lossy: true, ErrorBound: 1e-4, Ratio: 12, CompressMBps: 220, DecompressMBps: 550, RampBytes: 32768},
}

// Lookup returns the preset model for name.
func Lookup(name string) (Model, bool) {
	m, ok := presets[name]
	return m, ok
}

// Names lists the preset compressor names, sorted.
func Names() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New builds a stage from a preset name. Unknown names are rejected with
// the valid set in the message, mirroring storage.NewProvider's tier
// error.
func New(name string) (*Stage, error) {
	m, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("reduce: unknown compressor %q (want one of %v)", name, Names())
	}
	return NewStage(m), nil
}

// NewStage builds a stage from an explicit model (for tests and custom
// curves). Ratio and throughputs are clamped to sane minimums.
func NewStage(m Model) *Stage {
	if m.Ratio < 1 {
		m.Ratio = 1
	}
	if m.CompressMBps <= 0 {
		m.CompressMBps = 1
	}
	if m.DecompressMBps <= 0 {
		m.DecompressMBps = 1
	}
	if m.RampBytes < 0 {
		m.RampBytes = 0
	}
	return &Stage{m: m}
}

// Stage is one compressor instance shared by every node's wrapped target
// within a run; it aggregates whole-run logical/physical accounting.
// It implements storage.Stage and storage.StageAccounting.
type Stage struct {
	m Model

	mu sync.Mutex
	st storage.StageStats
}

// Name returns the compressor name.
func (s *Stage) Name() string { return s.m.Name }

// Model returns the stage's cost curve.
func (s *Stage) Model() Model { return s.m }

// ModelRatio returns the configured reduction ratio; the validate
// invariants use it for the logical == physical x ratio oracle.
func (s *Stage) ModelRatio() float64 { return s.m.Ratio }

// Wrap returns the compressed view over the target below for one node.
func (s *Stage) Wrap(node string, t storage.Target) storage.Target {
	return &target{s: s, inner: t}
}

// Flush is a no-op: the stage compresses synchronously on the write path
// and buffers nothing.
func (s *Stage) Flush(p *des.Proc) error { return nil }

// StageStats returns the accumulated logical-vs-physical accounting.
func (s *Stage) StageStats() storage.StageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// physOff maps a logical byte position to its physical position:
// ceil(x/ratio). The map is monotone, so disjoint logical extents stay
// disjoint and contiguous logical extents stay exactly contiguous —
// sequential writes above the stage remain sequential on the device
// below (no spurious seeks from rounding overlaps).
func (s *Stage) physOff(x int64) int64 {
	if x <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(x) / s.m.Ratio))
}

// physExtent maps a logical [off, off+size) extent to the physical
// extent forwarded below. A non-empty transfer is never shrunk below one
// physical byte.
func (s *Stage) physExtent(off, size int64) (physOff, physSize int64) {
	if size <= 0 {
		return s.physOff(off), 0
	}
	lo, hi := s.physOff(off), s.physOff(off+size)
	n := hi - lo
	if n < 1 {
		n = 1
	}
	return lo, n
}

// cpuTime converts a logical byte count plus the per-call ramp into
// simulated seconds at the given throughput.
func cpuTime(size, ramp int64, mbps float64) des.Time {
	return des.FromSeconds(float64(size+ramp) / (mbps * 1e6))
}

// target is the per-node compressed view: namespace ops pass through
// untouched, data paths shrink, and Stat scales sizes back up so the
// layers above see logical geometry.
type target struct {
	s     *Stage
	inner storage.Target
}

func (t *target) Create(p *des.Proc, path string, stripeCount int, stripeSize int64) (storage.Handle, error) {
	h, err := t.inner.Create(p, path, stripeCount, stripeSize)
	if err != nil {
		return nil, err
	}
	return &handle{s: t.s, inner: h}, nil
}

func (t *target) Open(p *des.Proc, path string) (storage.Handle, error) {
	h, err := t.inner.Open(p, path)
	if err != nil {
		return nil, err
	}
	return &handle{s: t.s, inner: h}, nil
}

// Stat scales the physical size below back to logical bytes. The write
// path maps a logical end position to ceil(end/ratio), so
// physical*ratio >= logical always holds and size-threshold predicates
// above the stage (e.g. the io500 find phase) keep working.
func (t *target) Stat(p *des.Proc, path string) (storage.FileInfo, error) {
	st, err := t.inner.Stat(p, path)
	if err != nil {
		return st, err
	}
	st.Size = int64(float64(st.Size) * t.s.m.Ratio)
	return st, nil
}

func (t *target) Mkdir(p *des.Proc, path string) error  { return t.inner.Mkdir(p, path) }
func (t *target) Rmdir(p *des.Proc, path string) error  { return t.inner.Rmdir(p, path) }
func (t *target) Unlink(p *des.Proc, path string) error { return t.inner.Unlink(p, path) }
func (t *target) Readdir(p *des.Proc, path string) ([]string, error) {
	return t.inner.Readdir(p, path)
}

// handle compresses the data path of one open file: Write charges
// compression CPU to the calling rank, then forwards the shrunken extent;
// Read fetches the shrunken extent and charges decompression CPU.
// Metadata (Fsync, Close, Path) passes through.
type handle struct {
	s     *Stage
	inner storage.Handle
}

func (h *handle) Path() string { return h.inner.Path() }

func (h *handle) Write(p *des.Proc, off, size int64) error {
	s := h.s
	ct := cpuTime(size, s.m.RampBytes, s.m.CompressMBps)
	p.Wait(ct)
	physOff, phys := s.physExtent(off, size)
	if err := h.inner.Write(p, physOff, phys); err != nil {
		return err
	}
	s.mu.Lock()
	s.st.LogicalWritten += size
	s.st.PhysicalWritten += phys
	s.st.WriteOps++
	s.st.CompressSeconds += ct.Seconds()
	s.mu.Unlock()
	return nil
}

func (h *handle) Read(p *des.Proc, off, size int64) error {
	s := h.s
	physOff, phys := s.physExtent(off, size)
	if err := h.inner.Read(p, physOff, phys); err != nil {
		return err
	}
	dt := cpuTime(size, s.m.RampBytes, s.m.DecompressMBps)
	p.Wait(dt)
	s.mu.Lock()
	s.st.LogicalRead += size
	s.st.PhysicalRead += phys
	s.st.ReadOps++
	s.st.DecompressSeconds += dt.Seconds()
	s.mu.Unlock()
	return nil
}

func (h *handle) Fsync(p *des.Proc) error { return h.inner.Fsync(p) }
func (h *handle) Close(p *des.Proc) error { return h.inner.Close(p) }
