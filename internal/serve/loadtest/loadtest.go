// Package loadtest is the in-repo load generator for the siod daemon: it
// hammers a running server with concurrent campaign submissions mixed
// with hostile traffic — poison (invalid) specs, oversized grids,
// slow-loris bodies, and mid-flight disconnects — then scrapes /metrics
// and asserts the daemon degraded gracefully: every admitted job
// accounted (enqueued == completed + dropped + cancelled), queue and
// inflight gauges back to zero, no goroutine pile-up.
//
// cmd/siod -loadtest is the CLI front end; the serve package's tests
// drive it in-process against a real listener.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"pioeval/internal/serve"
)

// Config shapes one load run. Zero "Every" fields disable that traffic
// class; EveryN = 3 means requests 0, 3, 6, ... of that class.
type Config struct {
	// Target is the daemon's base URL, e.g. http://127.0.0.1:9090.
	Target string
	// Requests is the total submissions (default 200).
	Requests int
	// Concurrency is the number of in-flight clients (default 32).
	Concurrency int
	// UniqueSpecs is how many distinct specs the run rotates through
	// (default 16): Requests/UniqueSpecs submissions share each spec, so
	// single-flight and the result cache are exercised by construction.
	UniqueSpecs int
	// PoisonEvery injects an unparseable/invalid spec every Nth request.
	PoisonEvery int
	// OversizeEvery injects a spec over the admission limits every Nth.
	OversizeEvery int
	// DisconnectEvery abandons the request mid-flight every Nth.
	DisconnectEvery int
	// SlowLorisEvery opens a raw connection that dribbles the body and
	// stalls every Nth request; the server's read timeouts must shed it.
	SlowLorisEvery int
	// ClientIDs spreads requests over this many X-Client-ID identities
	// (default Concurrency) so the token bucket sees distinct clients.
	ClientIDs int
	// RequestTimeout bounds one submission round trip (default 60s).
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.UniqueSpecs <= 0 {
		c.UniqueSpecs = 16
	}
	if c.ClientIDs <= 0 {
		c.ClientIDs = c.Concurrency
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	return c
}

// Result aggregates one load run.
type Result struct {
	Sent            int           `json:"sent"`
	StatusCounts    map[int]int   `json:"status_counts"`
	CacheHits       int           `json:"cache_hits"`          // responses marked X-Cache: hit
	Shared          int           `json:"singleflight_shared"` // responses marked X-Singleflight: shared
	Disconnects     int           `json:"disconnects"`
	SlowLoris       int           `json:"slow_loris"`
	TransportErrors int           `json:"transport_errors"`
	P50             time.Duration `json:"p50_ns"`
	P95             time.Duration `json:"p95_ns"`
	Max             time.Duration `json:"max_ns"`
	Elapsed         time.Duration `json:"elapsed_ns"`
}

// OK is the count of 200 responses.
func (r *Result) OK() int { return r.StatusCounts[http.StatusOK] }

// Summary renders the run for humans.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent %d in %v (%.0f req/s)\n", r.Sent, r.Elapsed.Round(time.Millisecond),
		float64(r.Sent)/r.Elapsed.Seconds())
	codes := make([]int, 0, len(r.StatusCounts))
	for c := range r.StatusCounts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  HTTP %d: %d\n", c, r.StatusCounts[c])
	}
	fmt.Fprintf(&b, "  cache hits: %d, singleflight shared: %d\n", r.CacheHits, r.Shared)
	fmt.Fprintf(&b, "  disconnects: %d, slow-loris: %d, transport errors: %d\n",
		r.Disconnects, r.SlowLoris, r.TransportErrors)
	fmt.Fprintf(&b, "  latency p50 %v, p95 %v, max %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	return b.String()
}

// specFor renders the i-th request's spec. Requests with the same
// i%UniqueSpecs submit byte-identical specs (same seed), so concurrent
// duplicates must single-flight and later ones must hit the cache.
func specFor(cfg Config, i int) string {
	return fmt.Sprintf(`
campaign "loadtest" {
    workload ior
    seed %d
    ranks 2
    device hdd
    stripe-count 1
    block-size 1MB
    transfer-size 256KB
}
`, 1000+i%cfg.UniqueSpecs)
}

// poisonSpec fails validation (unknown workload) — the daemon must shed
// it with 400, never crash or account it as work.
const poisonSpec = `
campaign "poison" {
    workload definitely-not-a-workload
}
`

// oversizeSpec expands past any sane MaxRuns admission limit.
const oversizeSpec = `
campaign "oversize" {
    workload ior
    reps 100
    ranks 1, 2, 3, 4, 5, 6, 7, 8
    device hdd, ssd, nvme
    stripe-count 1, 2, 4, 8
    transfer-size 64KB, 256KB, 1MB
}
`

func hits(every, i int) bool { return every > 0 && i%every == 0 }

// Run executes the load profile against cfg.Target and aggregates the
// outcome. It returns an error only for setup problems; per-request
// failures are data, not errors.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	base, err := url.Parse(cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("loadtest: bad target: %w", err)
	}
	submitURL := base.JoinPath("/v1/campaigns").String()
	client := &http.Client{
		Timeout: cfg.RequestTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		},
	}
	defer client.CloseIdleConnections()

	res := &Result{StatusCounts: map[int]int{}}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	idx := make(chan int)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				kind, status, cached, shared, lat, terr := doRequest(cfg, client, base, submitURL, i)
				mu.Lock()
				res.Sent++
				switch kind {
				case kindDisconnect:
					res.Disconnects++
				case kindSlowLoris:
					res.SlowLoris++
				default:
					if terr {
						res.TransportErrors++
					} else {
						res.StatusCounts[status]++
						latencies = append(latencies, lat)
						if cached {
							res.CacheHits++
						}
						if shared {
							res.Shared++
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	res.Elapsed = time.Since(start)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		res.P50 = latencies[(len(latencies)-1)/2]
		res.P95 = latencies[(len(latencies)-1)*95/100]
		res.Max = latencies[len(latencies)-1]
	}
	return res, nil
}

type requestKind int

const (
	kindNormal requestKind = iota
	kindDisconnect
	kindSlowLoris
)

// doRequest issues the i-th request per the traffic mix. Moduli are
// checked most-hostile-first so one index belongs to exactly one class.
func doRequest(cfg Config, client *http.Client, base *url.URL, submitURL string, i int) (kind requestKind, status int, cached, shared bool, lat time.Duration, transportErr bool) {
	switch {
	case hits(cfg.SlowLorisEvery, i+1):
		slowLoris(base)
		return kindSlowLoris, 0, false, false, 0, false
	case hits(cfg.DisconnectEvery, i+1):
		disconnect(client, submitURL, specFor(cfg, i), clientHeader(cfg, i))
		return kindDisconnect, 0, false, false, 0, false
	}
	spec := specFor(cfg, i)
	if hits(cfg.PoisonEvery, i+1) {
		spec = poisonSpec
	} else if hits(cfg.OversizeEvery, i+1) {
		spec = oversizeSpec
	}
	start := time.Now()
	req, err := http.NewRequest(http.MethodPost, submitURL, strings.NewReader(spec))
	if err != nil {
		return kindNormal, 0, false, false, 0, true
	}
	req.Header.Set("X-Client-ID", clientHeader(cfg, i))
	resp, err := client.Do(req)
	if err != nil {
		return kindNormal, 0, false, false, 0, true
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return kindNormal, resp.StatusCode,
		resp.Header.Get("X-Cache") == "hit",
		resp.Header.Get("X-Singleflight") == "shared",
		time.Since(start), false
}

func clientHeader(cfg Config, i int) string {
	return fmt.Sprintf("lt-client-%d", i%cfg.ClientIDs)
}

// disconnect submits a real spec, then abandons the request almost
// immediately — the mid-flight-disconnect traffic class. The daemon must
// detach the waiter and cancel the job once every client is gone.
func disconnect(client *http.Client, submitURL, spec, id string) {
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, submitURL, strings.NewReader(spec))
	if err != nil {
		cancel()
		return
	}
	req.Header.Set("X-Client-ID", id)
	done := make(chan struct{})
	go func() {
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(done)
	}()
	time.Sleep(time.Millisecond)
	cancel()
	<-done
}

// slowLoris opens a raw connection, sends headers promising a body, then
// dribbles a few bytes and stalls well past any sane server read
// timeout. A robust server sheds the connection instead of pinning a
// handler goroutine forever.
func slowLoris(base *url.URL) {
	conn, err := net.DialTimeout("tcp", base.Host, 5*time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/campaigns HTTP/1.1\r\nHost: %s\r\nContent-Type: text/plain\r\nContent-Length: 100000\r\n\r\n", base.Host)
	for i := 0; i < 50; i++ {
		if _, err := conn.Write([]byte("x")); err != nil {
			return // server shed us — the desired outcome
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// FetchMetrics scrapes the daemon's /metrics snapshot.
func FetchMetrics(target string) (serve.Snapshot, error) {
	var s serve.Snapshot
	base, err := url.Parse(target)
	if err != nil {
		return s, err
	}
	resp, err := http.Get(base.JoinPath("/metrics").String())
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return s, err
	}
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("loadtest: /metrics returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return s, json.Unmarshal(body, &s)
}

// WaitIdle polls /metrics until the daemon is quiescent (empty queue,
// nothing in flight) — abandoned jobs may still be resolving when the
// load run returns — then hands the settled snapshot to the caller for
// the accounting check.
func WaitIdle(target string, timeout time.Duration) (serve.Snapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		s, err := FetchMetrics(target)
		if err == nil && s.QueueDepth == 0 && s.Inflight == 0 {
			return s, nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("loadtest: daemon not idle after %v (queue_depth=%d inflight=%d)",
					timeout, s.QueueDepth, s.Inflight)
			}
			return s, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// CheckAccounting verifies the dropped-work identity on a settled
// snapshot: enqueued == completed + dropped + cancelled and both gauges
// zero. This is the load test's pass/fail line.
func CheckAccounting(s serve.Snapshot) error { return s.AccountingError() }
