package profile

import (
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/trace"
	"pioeval/internal/workload"
)

func TestTimelineBinning(t *testing.T) {
	tl := NewTimeline(100)
	tl.IngestAll([]trace.Record{
		rec(0, "write", "/f", 0, 1000, 0, 50),
		rec(0, "write", "/f", 1000, 2000, 50, 150), // bin 1
		rec(0, "read", "/f", 0, 500, 150, 250),     // bin 2
		rec(0, "open", "/f", 0, 0, 250, 260),       // bin 2
	})
	bins := tl.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].WriteBytes != 1000 || bins[1].WriteBytes != 2000 {
		t.Errorf("write bins = %+v", bins[:2])
	}
	if bins[2].ReadBytes != 500 || bins[2].MetaOps != 1 {
		t.Errorf("bin 2 = %+v", bins[2])
	}
	if bins[1].Start != 100 {
		t.Errorf("bin start = %v", bins[1].Start)
	}
	if tl.PeakWriteBin() != 1 {
		t.Errorf("peak = %d", tl.PeakWriteBin())
	}
}

func TestTimelineLayerFilter(t *testing.T) {
	tl := NewTimeline(100)
	r := rec(0, "write", "/f", 0, 100, 0, 10)
	r.Layer = trace.LayerMPIIO
	tl.Ingest(r)
	if len(tl.Bins()) != 0 {
		t.Error("wrong-layer record binned")
	}
}

func TestTimelineBurstiness(t *testing.T) {
	smooth := NewTimeline(100)
	bursty := NewTimeline(100)
	for i := int64(0); i < 10; i++ {
		smooth.Ingest(rec(0, "write", "/f", i*100, 100, i*100, i*100+10))
	}
	// One bin holds almost everything.
	bursty.Ingest(rec(0, "write", "/f", 0, 10000, 0, 10))
	bursty.Ingest(rec(0, "write", "/f", 10000, 100, 500, 510))
	if s := smooth.Burstiness(); s != 1 {
		t.Errorf("smooth burstiness = %v", s)
	}
	if b := bursty.Burstiness(); b < 1.5 {
		t.Errorf("bursty burstiness = %v", b)
	}
	if NewTimeline(0).Burstiness() != 0 {
		t.Error("empty burstiness")
	}
	if NewTimeline(100).PeakWriteBin() != -1 {
		t.Error("empty peak bin")
	}
}

func TestTimelineDefaultBinWidth(t *testing.T) {
	tl := NewTimeline(0)
	if tl.BinWidth() != des.Millisecond {
		t.Errorf("default bin width = %v", tl.BinWidth())
	}
}

func TestHooksComposeProfilerAndTimeline(t *testing.T) {
	col := trace.NewCollector()
	p := New()
	tl := NewTimeline(100)
	col.SetHook(trace.Hooks(p.Ingest, tl.Ingest))
	col.Emit(rec(0, "write", "/f", 0, 4096, 0, 10))
	if len(p.PerRank()) != 1 {
		t.Error("profiler missed hooked record")
	}
	if len(tl.Bins()) != 1 {
		t.Error("timeline missed hooked record")
	}
}

func TestBaselinePercentiles(t *testing.T) {
	b := NewBaseline()
	if b.Percentile("bw", 100) != -1 {
		t.Error("no-history percentile")
	}
	for i := 1; i <= 100; i++ {
		b.Record("bw", float64(i))
	}
	if b.Runs("bw") != 100 {
		t.Errorf("runs = %d", b.Runs("bw"))
	}
	if p := b.Percentile("bw", 50); p < 0.45 || p > 0.55 {
		t.Errorf("P(50) = %v", p)
	}
	if p := b.Percentile("bw", 1000); p != 1 {
		t.Errorf("P(max) = %v", p)
	}
	if q := b.Quantile("bw", 0.5); q < 45 || q > 55 {
		t.Errorf("median = %v", q)
	}
}

func TestBaselineAssess(t *testing.T) {
	b := NewBaseline()
	if b.Assess("bw", 1, 0.1, 0.9) != NoHistory {
		t.Error("empty history assess")
	}
	for i := 0; i < 50; i++ {
		b.Record("bw", 500+float64(i%10)) // bandwidth ~500-509
	}
	if a := b.Assess("bw", 505, 0.1, 0.9); a != Typical {
		t.Errorf("typical run = %v", a)
	}
	if a := b.Assess("bw", 100, 0.1, 0.9); a != Low {
		t.Errorf("regressed run = %v", a)
	}
	if a := b.Assess("bw", 900, 0.1, 0.9); a != High {
		t.Errorf("anomalously fast run = %v", a)
	}
	if Low.String() != "low" || NoHistory.String() != "no-history" || Typical.String() != "typical" || High.String() != "high" {
		t.Error("assessment names")
	}
}

func TestBaselineDetectsSimulatedRegression(t *testing.T) {
	// Run the same IOR config repeatedly to build history, then degrade
	// an OST and confirm the new run assesses Low — the UMAMI use case.
	runBW := func(seed int64, straggle bool) float64 {
		e := des.NewEngine(seed)
		cfg := pfs.DefaultConfig()
		cfg.NumIONodes = 0
		fs := pfs.New(e, cfg)
		if straggle {
			fs.InjectOSTSlowdown(0, 6)
		}
		h := workload.NewHarness(e, fs, 4, "um", nil)
		rep := workload.RunIOR(h, workload.IORConfig{Ranks: 4, BlockSize: 8 << 20, TransferSize: 1 << 20})
		return rep.WriteMBps
	}
	b := NewBaseline()
	for s := int64(0); s < 8; s++ {
		b.Record("ior.write", runBW(100+s, false))
	}
	degraded := runBW(200, true)
	if a := b.Assess("ior.write", degraded, 0.1, 0.9); a != Low {
		t.Errorf("degraded run assessed %v (bw %.1f), want low", a, degraded)
	}
}
