package campaign

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"pioeval/internal/blockdev"
	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/pfs"
	"pioeval/internal/reduce"
	"pioeval/internal/storage"
	"pioeval/internal/workload"
)

// Progress reports pool advancement to an observer; Done counts completed
// runs out of Total, and ETA extrapolates the remaining wall-clock time
// from the observed completion rate.
type Progress struct {
	Done, Total int
	Elapsed     time.Duration
	ETA         time.Duration
}

// Options configures campaign execution. The zero value sizes the pool to
// GOMAXPROCS and reports no progress.
type Options struct {
	// Workers bounds simultaneous simulations; <= 0 selects GOMAXPROCS.
	Workers int
	// OnProgress, when non-nil, is invoked (serialized) after every
	// completed run. Progress observation is wall-clock dependent and must
	// therefore never feed into the Report.
	OnProgress func(Progress)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PoolPanic records one pool index whose fn panicked. The pool recovers
// worker panics so a single poisoned item cannot take down the whole
// sweep — a prerequisite for long-running servers that feed untrusted
// specs through the pool.
type PoolPanic struct {
	Index int
	Value string
	Stack string
}

// PoolResult reports how a pool invocation ended: how many fn calls
// returned normally, which panicked (in index order), and whether the
// context was cancelled before every index ran.
type PoolResult struct {
	Completed int
	Panicked  []PoolPanic
	// Err is the context error when the pool stopped early, nil on a full
	// sweep. Indices neither completed nor panicked were never started.
	Err error
}

// Pool runs fn(i) for every i in [0, n) on a bounded worker pool. fn must
// write its result into caller-owned storage indexed by i; the pool
// imposes no ordering, so determinism comes from indexing, never from
// completion order. Pool is the generic substrate under Run and is
// exported for callers with non-grid sweeps (cmd/evalcycle's device-pair
// sweep uses it directly).
func Pool(n int, opt Options, fn func(i int)) PoolResult {
	return PoolContext(context.Background(), n, opt, fn)
}

// PoolContext is Pool with cancellation: when ctx is cancelled the pool
// stops handing out new indices, waits for in-flight fn calls to return,
// and reports the context error in the result. fn itself is not
// interrupted — cancellation granularity is one fn call.
func PoolContext(ctx context.Context, n int, opt Options, fn func(i int)) PoolResult {
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	var res PoolResult
	if workers <= 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				res.Err = err
				return res
			}
			res.record(safeCall(fn, i))
			notifyProgress(opt, i+1, n, start)
		}
		return res
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	start := time.Now()
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain without running; the feeder is stopping
				}
				p := safeCall(fn, i)
				mu.Lock()
				res.record(p)
				done++
				notifyProgress(opt, done, n, start)
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		res.Err = err
	}
	// Workers record in completion order; panics must surface in a stable
	// order regardless of scheduling.
	sort.Slice(res.Panicked, func(a, b int) bool { return res.Panicked[a].Index < res.Panicked[b].Index })
	return res
}

// safeCall runs fn(i), converting a panic into a PoolPanic instead of
// unwinding the worker goroutine.
func safeCall(fn func(int), i int) (p *PoolPanic) {
	defer func() {
		if r := recover(); r != nil {
			p = &PoolPanic{Index: i, Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	fn(i)
	return nil
}

func (r *PoolResult) record(p *PoolPanic) {
	if p == nil {
		r.Completed++
	} else {
		r.Panicked = append(r.Panicked, *p)
	}
}

func notifyProgress(opt Options, done, total int, start time.Time) {
	if opt.OnProgress == nil {
		return
	}
	p := Progress{Done: done, Total: total, Elapsed: time.Since(start)}
	if done > 0 && done < total {
		p.ETA = time.Duration(float64(p.Elapsed) / float64(done) * float64(total-done))
	}
	opt.OnProgress(p)
}

// RunResult is one simulation's outcome. Metrics keys are stable
// per-workload names (write_MBps, makespan_ms, ...); encoding/json sorts
// map keys, so serialization is deterministic.
type RunResult struct {
	Point   int                `json:"point"`
	Rep     int                `json:"rep"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics"`
}

// Run expands spec, executes every (point, repetition) pair on the worker
// pool, and returns the aggregated report. The report is bit-identical
// for a given spec regardless of opt.Workers.
func Run(spec Spec, opt Options) (*Report, error) {
	return RunContext(context.Background(), spec, opt)
}

// simulateFn is the per-run simulation entry point; tests swap it to
// inject deterministic poison (panics, slow runs) without standing up a
// full cluster.
var simulateFn = simulate

// RunContext is Run with cancellation and per-run fault isolation. When
// ctx is cancelled mid-grid, the already-completed runs are aggregated
// into a partial Report with the Cancelled marker set and a nil error —
// never a panic or a hang. A run that panics (a poisoned grid point) is
// recovered and recorded as a typed JobError in the Report; the rest of
// the grid still runs. Cancellation granularity is one simulation run:
// an in-flight run finishes before its worker stops.
func RunContext(ctx context.Context, spec Spec, opt Options) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	points := spec.Expand()
	total := len(points) * spec.Reps
	runs := make([]RunResult, total)
	// Run headers (point, rep, seed) depend only on the spec; prefill them
	// so a partial report still lists every planned run deterministically,
	// with nil Metrics marking the ones that never executed.
	for i := range runs {
		runs[i] = RunResult{Point: points[i/spec.Reps].ID, Rep: i % spec.Reps, Seed: RunSeed(spec.Seed, i)}
	}
	pr := PoolContext(ctx, total, opt, func(i int) {
		runs[i].Metrics = simulateFn(spec, points[i/spec.Reps], runs[i].Seed)
	})
	rep := aggregate(spec, points, runs)
	rep.Cancelled = pr.Err != nil
	for _, p := range pr.Panicked {
		rep.Errors = append(rep.Errors, JobError{
			Run:   p.Index,
			Point: points[p.Index/spec.Reps].ID,
			Rep:   p.Index % spec.Reps,
			Msg:   p.Value,
		})
	}
	return rep, nil
}

// ClusterConfig builds the PFS deployment for one grid point: the default
// Figure-1 cluster with a flat network, the point's device model and
// stripe geometry, and — whenever faults are injected — the default
// client resilience policy, so faulted runs measure degradation rather
// than immediate failure. Exported so other grid-shaped harnesses (the
// internal/validate property generator) map Points to clusters the same
// way campaigns do.
func ClusterConfig(p Point) pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = p.StripeCount
	cfg.DefaultStripeSize = p.StripeSize
	switch p.Device {
	case "ssd":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	case "nvme":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultNVMe() }
	default:
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultHDD() }
	}
	if p.Faults != "" {
		cfg.Resilience = pfs.DefaultResilience()
	}
	return cfg
}

// simulate executes one run: a fresh engine and cluster, the point's
// fault campaign (if any), and the spec's workload, reduced to a flat
// metric map.
func simulate(spec Spec, p Point, seed int64) map[string]float64 {
	e := des.NewEngine(seed)
	fs := pfs.New(e, ClusterConfig(p))
	if p.Faults != "" {
		c, err := faults.ParseCampaign(p.Faults)
		if err != nil {
			panic(fmt.Sprintf("campaign: unvalidated fault spec %q: %v", p.Faults, err))
		}
		if _, err := faults.Run(e, fs, c); err != nil {
			panic(fmt.Sprintf("campaign: fault campaign %q: %v", p.Faults, err))
		}
	}
	pr, err := storage.NewProvider(e, fs, p.Tier, storage.ProviderConfig{})
	if err != nil {
		panic(fmt.Sprintf("campaign: unvalidated tier %q: %v", p.Tier, err))
	}
	var comp *reduce.Stage
	if p.Compress != "" {
		comp, err = reduce.New(p.Compress)
		if err != nil {
			panic(fmt.Sprintf("campaign: unvalidated compressor %q: %v", p.Compress, err))
		}
		pr.Push(comp)
	}
	h := workload.NewHarnessOn(e, fs, p.Ranks, "camp", nil, pr)
	var m map[string]float64
	switch spec.Workload {
	case WorkloadCheckpoint:
		m = simulateCheckpoint(e, fs, h, spec, p)
	default:
		m = simulateIOR(h, p)
	}
	st := fs.ClientStatsTotal()
	m["retries"] = float64(st.Retries)
	m["timed_out_rpcs"] = float64(st.TimedOutRPCs)
	m["failed_rpcs"] = float64(st.FailedRPCs)
	for _, bb := range pr.Buffers() {
		bst := bb.Stats()
		m["bb_stalls"] += float64(bst.Stalls)
		m["bb_drain_errors"] += float64(bst.DrainErrors)
		if mb := float64(bst.PeakUsed) / 1e6; mb > m["bb_peak_used_MB"] {
			m["bb_peak_used_MB"] = mb
		}
	}
	if comp != nil {
		cst := comp.StageStats()
		m["compress_ratio"] = cst.Ratio()
		m["compress_cpu_s"] = cst.CompressSeconds + cst.DecompressSeconds
		if cpu := cst.CompressSeconds + cst.DecompressSeconds; cpu > 0 {
			m["compress_MBps"] = float64(cst.LogicalWritten+cst.LogicalRead) / 1e6 / cpu
		}
	}
	return m
}

func simulateIOR(h *workload.Harness, p Point) map[string]float64 {
	var pat workload.Pattern
	switch p.Pattern {
	case "strided":
		pat = workload.Strided
	case "random":
		pat = workload.Random
	default:
		pat = workload.Sequential
	}
	rep := workload.RunIOR(h, workload.IORConfig{
		Ranks:        p.Ranks,
		BlockSize:    p.BlockSize,
		TransferSize: p.TransferSize,
		SharedFile:   true,
		Pattern:      pat,
		ReadBack:     true,
		Collective:   p.Collective,
		StripeCount:  p.StripeCount,
		StripeSize:   p.StripeSize,
	})
	return map[string]float64{
		"write_MBps":  rep.WriteMBps,
		"read_MBps":   rep.ReadMBps,
		"makespan_ms": rep.Makespan.Seconds() * 1e3,
	}
}

func simulateCheckpoint(e *des.Engine, fs *pfs.FS, h *workload.Harness, spec Spec, p Point) map[string]float64 {
	var bb *burstbuffer.Buffer
	if p.BurstBuffer {
		bb = burstbuffer.New(e, fs, "bb0", burstbuffer.DefaultConfig())
	}
	rep := workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks:        p.Ranks,
		BytesPerRank: p.BlockSize,
		Steps:        spec.Steps,
		ComputeTime:  stepDuration,
		TransferSize: p.TransferSize,
		ReuseFile:    true,
		Buffer:       bb,
	})
	worst := des.Time(0)
	for _, d := range rep.StepIOTime {
		if d > worst {
			worst = d
		}
	}
	return map[string]float64{
		"effective_MBps": rep.EffectiveMBps,
		"makespan_ms":    rep.Makespan.Seconds() * 1e3,
		"io_fraction":    rep.IOFraction,
		"io_errors":      float64(rep.IOErrors),
		"worst_step_ms":  worst.Seconds() * 1e3,
	}
}
