package pfs

import (
	"fmt"

	"pioeval/internal/des"
)

// This file is the continuation-form (goroutine-free) port of the client
// hot paths: every method is the E-suffixed analogue of the blocking form
// in client.go, with identical cost model, retry policy, statistics, and
// observer events. The blocking forms remain the reference semantics; any
// behavioural change must land in both. The port covers the data-plane
// ops a rank's checkpoint/read loop issues (create, open, write, read,
// fsync, close) plus the meta/data RPC machinery beneath them; rarely-hot
// namespace ops (mkdir, readdir, unlink, stat) stay goroutine-only.

// toServerE is the continuation form of toServer.
func (c *Client) toServerE(ep *des.EventProc, server string, size int64, k func()) {
	if c.ionode != "" {
		c.fs.compute.TransferE(ep, c.node, c.ionode, size, func() {
			c.fs.storage.TransferE(ep, c.ionode, server, size, k)
		})
	} else {
		c.fs.compute.TransferE(ep, c.node, server, size, k)
	}
}

// fromServerE is the continuation form of fromServer.
func (c *Client) fromServerE(ep *des.EventProc, server string, size int64, k func()) {
	if c.ionode != "" {
		c.fs.storage.TransferE(ep, server, c.ionode, size, func() {
			c.fs.compute.TransferE(ep, c.ionode, c.node, size, k)
		})
	} else {
		c.fs.compute.TransferE(ep, server, c.node, size, k)
	}
}

// metaRPCE is the continuation form of metaRPC: one metadata round trip
// under the resilience policy, retrying with backoff until the budget is
// exhausted; the final error is handed to k.
func (c *Client) metaRPCE(ep *des.EventProc, op MetaOp, fn func() error, k func(error)) {
	c.metaAttemptE(ep, op, fn, 0, k)
}

func (c *Client) metaAttemptE(ep *des.EventProc, op MetaOp, fn func() error, attempt int, k func(error)) {
	pol := c.fs.cfg.Resilience
	c.stats.MetaRPCs++
	c.stats.BytesSent += metaReqSize
	c.toServerE(ep, c.fs.mds.node, metaReqSize, func() {
		settle := func(err error) {
			if err == nil || !retryable(err) {
				k(err)
				return
			}
			if attempt >= pol.MaxRetries {
				c.stats.FailedRPCs++
				k(err)
				return
			}
			c.stats.Retries++
			ep.Wait(pol.backoff(c.fs.eng, attempt), func() {
				c.metaAttemptE(ep, op, fn, attempt+1, k)
			})
		}
		if c.fs.mds.down {
			// No response: the RPC dies on the simulated timeout.
			timedOut := func() {
				c.stats.TimedOutRPCs++
				settle(ErrMDSUnavailable)
			}
			if pol.RPCTimeout > 0 {
				ep.Wait(pol.RPCTimeout, timedOut)
			} else {
				timedOut()
			}
			return
		}
		c.fs.mdsExecE(ep, op, fn, func(err error) {
			c.stats.BytesRecv += metaRespSize
			c.fromServerE(ep, c.fs.mds.node, metaRespSize, func() { settle(err) })
		})
	})
}

// CreateE is the continuation form of Create: the new handle (or error)
// is handed to k.
func (c *Client) CreateE(ep *des.EventProc, path string, stripeCount int, stripeSize int64, k func(*Handle, error)) {
	path, perr := cleanPath(path)
	if perr != nil {
		k(nil, perr)
		return
	}
	start := ep.Now()
	var layout Layout
	c.metaRPCE(ep, OpCreate, func() error {
		ino := c.fs.mds.inodes
		if _, dup := ino[path]; dup {
			return ErrExist
		}
		par, ok := ino[parentOf(path)]
		if !ok {
			return ErrNotExist
		}
		if !par.isDir {
			return ErrNotDir
		}
		layout = c.fs.allocateLayout(stripeCount, stripeSize)
		ino[path] = &inode{path: path, layout: layout, ctime: ep.Now(), mtime: ep.Now()}
		par.children[path] = true
		return nil
	}, func(err error) {
		c.fs.observe(OpEvent{Client: c.node, Op: "create", Path: path, Start: start, End: ep.Now()})
		if err != nil {
			k(nil, err)
			return
		}
		k(&Handle{c: c, path: path, layout: layout}, nil)
	})
}

// OpenE is the continuation form of Open.
func (c *Client) OpenE(ep *des.EventProc, path string, k func(*Handle, error)) {
	path, perr := cleanPath(path)
	if perr != nil {
		k(nil, perr)
		return
	}
	start := ep.Now()
	var layout Layout
	c.metaRPCE(ep, OpOpen, func() error {
		n, ok := c.fs.mds.inodes[path]
		if !ok {
			return ErrNotExist
		}
		if n.isDir {
			return ErrIsDir
		}
		layout = n.layout
		return nil
	}, func(err error) {
		c.fs.observe(OpEvent{Client: c.node, Op: "open", Path: path, Start: start, End: ep.Now()})
		if err != nil {
			k(nil, err)
			return
		}
		k(&Handle{c: c, path: path, layout: layout}, nil)
	})
}

// dataRPCE is the continuation form of dataRPC: one OST-directed transfer
// under the resilience policy.
func (c *Client) dataRPCE(ep *des.EventProc, o *ost, obj string, objOff, size int64, write bool, k func(error)) {
	c.dataAttemptE(ep, o, obj, objOff, size, write, 0, k)
}

func (c *Client) dataAttemptE(ep *des.EventProc, o *ost, obj string, objOff, size int64, write bool, attempt int, k func(error)) {
	pol := c.fs.cfg.Resilience
	c.tryDataRPCE(ep, o, obj, objOff, size, write, func(err error) {
		if err == nil || !retryable(err) {
			k(err)
			return
		}
		if attempt >= pol.MaxRetries {
			c.stats.FailedRPCs++
			k(err)
			return
		}
		c.stats.Retries++
		ep.Wait(pol.backoff(c.fs.eng, attempt), func() {
			c.dataAttemptE(ep, o, obj, objOff, size, write, attempt+1, k)
		})
	})
}

// tryDataRPCE is the continuation form of tryDataRPC: a single attempt.
func (c *Client) tryDataRPCE(ep *des.EventProc, o *ost, obj string, objOff, size int64, write bool, k func(error)) {
	fs := c.fs
	served := func() {
		if o.down {
			timedOut := func() {
				c.stats.TimedOutRPCs++
				k(fmt.Errorf("%w: ost%d", ErrOSTDown, o.id))
			}
			if pol := fs.cfg.Resilience; pol.RPCTimeout > 0 {
				ep.Wait(pol.RPCTimeout, timedOut)
			} else {
				timedOut()
			}
			return
		}
		if r := fs.transientRate; r > 0 && fs.eng.RNG().Stream("pfs.transient").Float64() < r {
			c.stats.BytesRecv += dataReqSize
			c.fromServerE(ep, o.ossNode, dataReqSize, func() { // error reply
				k(fmt.Errorf("%w: ost%d %s@%d+%d", ErrIO, o.id, obj, objOff, size))
			})
			return
		}
		o.accessE(ep, obj, objOff, size, write, func() {
			if fs.ostObserver != nil {
				fs.ostObserver(OSTEvent{OST: o.id, Size: size, Write: write, At: ep.Now()})
			}
			if write {
				c.stats.BytesRecv += dataReqSize
				c.fromServerE(ep, o.ossNode, dataReqSize, func() { k(nil) }) // ack
			} else {
				c.stats.BytesRecv += size
				c.fromServerE(ep, o.ossNode, size, func() { k(nil) })
			}
		})
	}
	if write {
		c.stats.WriteRPCs++
		c.stats.BytesSent += size
		c.toServerE(ep, o.ossNode, size, served)
	} else {
		c.stats.ReadRPCs++
		c.stats.BytesSent += dataReqSize
		c.toServerE(ep, o.ossNode, dataReqSize, served)
	}
}

// doIOE is the continuation form of doIO: the chunks of one request run
// in parallel across OSTs as spawned event procs — O(one pooled event +
// small struct) each instead of a goroutine — joined on a WaitGroup, and
// the aggregated error is handed to k.
func (h *Handle) doIOE(ep *des.EventProc, chunks []chunk, write bool, k func(error)) {
	fs := h.c.fs
	var rpcs []chunk
	for _, ch := range chunks {
		for ch.size > 0 {
			n := ch.size
			if n > fs.cfg.MaxRPCSize {
				n = fs.cfg.MaxRPCSize
			}
			rpc := ch
			rpc.size = n
			rpcs = append(rpcs, rpc)
			ch.objOff += n
			ch.size -= n
		}
	}
	errs := make([]error, len(rpcs))
	wg := des.NewWaitGroup(ep.Engine())
	for i, rpc := range rpcs {
		i, rpc := i, rpc
		wg.Add(1)
		ep.Engine().SpawnEvent("rpc", func(q *des.EventProc) {
			o := fs.osts[h.layout.OSTs[rpc.ostIdx]]
			obj := fmt.Sprintf("%s#%d", h.path, rpc.ostIdx)
			h.c.dataRPCE(q, o, obj, rpc.objOff, rpc.size, write, func(err error) {
				errs[i] = err
				wg.Done()
			})
		})
	}
	wg.WaitE(ep, func() {
		var firstErr error
		var requested, missing int64
		for i, err := range errs {
			requested += rpcs[i].size
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				missing += rpcs[i].size
			}
		}
		if firstErr == nil {
			k(nil)
			return
		}
		if !write && fs.cfg.Resilience.DegradedReads {
			h.c.stats.DegradedReads++
			h.c.stats.BytesMissing += missing
			k(&DegradedReadError{Path: h.path, Requested: requested, Missing: missing, Cause: firstErr})
			return
		}
		k(firstErr)
	})
}

// updateSizeE is the continuation form of updateSize.
func (h *Handle) updateSizeE(ep *des.EventProc, end int64, k func(error)) {
	h.c.metaRPCE(ep, OpSetSize, func() error {
		n, ok := h.c.fs.mds.inodes[h.path]
		if !ok {
			return ErrNotExist
		}
		if end > n.size {
			n.size = end
		}
		n.mtime = ep.Now()
		return nil
	}, k)
}

// WriteE is the continuation form of Write, including the write-behind
// buffer: buffered writes complete synchronously and deferred flush
// errors surface on the triggering WriteE, FsyncE, or CloseE.
func (h *Handle) WriteE(ep *des.EventProc, off, size int64, k func(error)) {
	if h.closed {
		k(fmt.Errorf("%w: write %s", ErrClosedHandle, h.path))
		return
	}
	if size <= 0 {
		k(nil)
		return
	}
	start := ep.Now()
	h.raValid = false // writes invalidate the readahead window
	done := func(err error) {
		h.c.fs.observe(OpEvent{Client: h.c.node, Op: "write", Path: h.path, Offset: off, Size: size, Start: start, End: ep.Now()})
		k(err)
	}
	if h.c.wbCapacity > 0 {
		h.appendDirty(off, size)
		h.c.wbDirty += size
		if h.c.wbDirty >= h.c.wbCapacity {
			h.flushE(ep, done)
			return
		}
		done(nil)
		return
	}
	h.doIOE(ep, stripeChunks(h.layout, off, size), true, func(err error) {
		if err != nil {
			done(err)
			return
		}
		h.updateSizeE(ep, off+size, done)
	})
}

// flushE is the continuation form of flush.
func (h *Handle) flushE(ep *des.EventProc, k func(error)) {
	if len(h.dirty) == 0 {
		k(nil)
		return
	}
	var chunks []chunk
	var maxEnd int64
	var total int64
	for _, ex := range h.dirty {
		chunks = append(chunks, stripeChunks(h.layout, ex.off, ex.size)...)
		if end := ex.off + ex.size; end > maxEnd {
			maxEnd = end
		}
		total += ex.size
	}
	h.dirty = nil
	h.c.wbDirty -= total
	h.doIOE(ep, chunks, true, func(err error) {
		if err != nil {
			k(err)
			return
		}
		h.updateSizeE(ep, maxEnd, k)
	})
}

// ReadE is the continuation form of Read, including the readahead window.
func (h *Handle) ReadE(ep *des.EventProc, off, size int64, k func(error)) {
	if h.closed {
		k(fmt.Errorf("%w: read %s", ErrClosedHandle, h.path))
		return
	}
	if size <= 0 {
		k(nil)
		return
	}
	start := ep.Now()
	done := func(err error) {
		h.c.fs.observe(OpEvent{Client: h.c.node, Op: "read", Path: h.path, Offset: off, Size: size, Start: start, End: ep.Now()})
		k(err)
	}
	ra := h.c.fs.cfg.ClientReadahead
	switch {
	case ra > 0 && h.raValid && off >= h.raStart && off+size <= h.raEnd:
		// Cache hit: served from client memory at zero simulated cost.
		done(nil)
	case ra > 0:
		fetch := size + ra
		h.doIOE(ep, stripeChunks(h.layout, off, fetch), false, func(err error) {
			if err == nil {
				h.raStart, h.raEnd, h.raValid = off, off+fetch, true
			}
			done(err)
		})
	default:
		h.doIOE(ep, stripeChunks(h.layout, off, size), false, done)
	}
}

// FsyncE is the continuation form of Fsync.
func (h *Handle) FsyncE(ep *des.EventProc, k func(error)) {
	start := ep.Now()
	h.flushE(ep, func(err error) {
		h.c.fs.observe(OpEvent{Client: h.c.node, Op: "fsync", Path: h.path, Start: start, End: ep.Now()})
		k(err)
	})
}

// CloseE is the continuation form of Close.
func (h *Handle) CloseE(ep *des.EventProc, k func(error)) {
	if h.closed {
		k(nil)
		return
	}
	start := ep.Now()
	h.flushE(ep, func(err error) {
		h.closed = true
		h.c.fs.observe(OpEvent{Client: h.c.node, Op: "close", Path: h.path, Start: start, End: ep.Now()})
		k(err)
	})
}
