package pfs

import (
	"fmt"

	"pioeval/internal/des"
)

// metaReqSize / metaRespSize are the wire sizes of metadata RPCs.
const (
	metaReqSize  = 256
	metaRespSize = 256
	dataReqSize  = 512 // read request / write ack header
)

// OpEvent describes one completed client operation; installed observers
// (tracers, profilers) receive every event.
type OpEvent struct {
	Client string
	Op     string
	Path   string
	Offset int64
	Size   int64
	Start  des.Time
	End    des.Time
}

// SetOpObserver installs fn to receive every client operation event.
// Pass nil to disable. Only one observer is supported; compose externally.
func (fs *FS) SetOpObserver(fn func(OpEvent)) { fs.observer = fn }

func (fs *FS) observe(ev OpEvent) {
	if fs.observer != nil {
		fs.observer(ev)
	}
}

// OSTEvent describes one payload arrival at (write) or departure from
// (read) an object storage target: the bytes that actually reached the
// backing device, after any client-side buffering, striping, RPC
// splitting, and fault handling. Failed or timed-out RPCs emit no event.
// The byte-conservation invariant checkers (internal/validate) compare
// these against the client-side OpEvent view.
type OSTEvent struct {
	OST   int
	Size  int64
	Write bool
	At    des.Time
}

// SetOSTObserver installs fn to receive every successful OST data access.
// Pass nil to disable. Only one observer is supported; compose externally.
func (fs *FS) SetOSTObserver(fn func(OSTEvent)) { fs.ostObserver = fn }

// Client is a compute-node-resident file-system client. Each client is
// bound to a compute-fabric node and routed through one I/O node.
type Client struct {
	fs     *FS
	node   string
	ionode string // empty in flat-network mode

	// Write-behind buffer state (shared across the client's handles).
	wbCapacity int64
	wbDirty    int64

	// Client-side counters (the "client-side hardware statistics" of
	// §IV-A2): RPC counts and wire bytes as the compute node sees them.
	stats ClientStats
}

// ClientStats captures the client-side view of I/O traffic and of the
// resilience policy's work: attempts beyond the first (Retries), attempts
// abandoned on timeout (TimedOutRPCs), RPCs that exhausted their retry
// budget (FailedRPCs), and reads completed in degraded mode with the
// bytes they could not deliver.
type ClientStats struct {
	MetaRPCs  uint64
	ReadRPCs  uint64
	WriteRPCs uint64
	BytesSent int64 // payload leaving the client NIC
	BytesRecv int64 // payload arriving at the client NIC

	Retries       uint64
	TimedOutRPCs  uint64
	FailedRPCs    uint64
	DegradedReads uint64
	BytesMissing  int64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats { return c.stats }

// NewClient registers a new client on compute node nodeName.
func (fs *FS) NewClient(nodeName string) *Client {
	fs.compute.AddNode(nodeName)
	return fs.newClientOn(nodeName)
}

// NewClientAt registers a client on compute node nodeName, creating the
// node on first use and sharing it afterwards: clients on the same node
// contend for the same NIC injection/ejection links, the way multiple
// ranks per compute node do on a real machine. Scale runs use this to
// keep per-rank fabric state sublinear in rank count.
func (fs *FS) NewClientAt(nodeName string) *Client {
	if !fs.compute.HasNode(nodeName) {
		fs.compute.AddNode(nodeName)
	}
	return fs.newClientOn(nodeName)
}

func (fs *FS) newClientOn(nodeName string) *Client {
	c := &Client{fs: fs, node: nodeName, wbCapacity: fs.cfg.ClientWriteBehind}
	if len(fs.ionodes) > 0 {
		c.ionode = fs.ionodes[fs.nextION%len(fs.ionodes)]
		fs.nextION++
	}
	fs.clientList = append(fs.clientList, c)
	return c
}

// Node returns the client's compute-fabric node name.
func (c *Client) Node() string { return c.node }

// IONode returns the I/O node this client routes through ("" in flat mode).
func (c *Client) IONode() string { return c.ionode }

// toServer moves size bytes from the client to a server node, crossing the
// I/O-forwarding tier when present.
func (c *Client) toServer(p *des.Proc, server string, size int64) {
	if c.ionode != "" {
		c.fs.compute.Transfer(p, c.node, c.ionode, size)
		c.fs.storage.Transfer(p, c.ionode, server, size)
	} else {
		c.fs.compute.Transfer(p, c.node, server, size)
	}
}

// fromServer moves size bytes from a server node back to the client.
func (c *Client) fromServer(p *des.Proc, server string, size int64) {
	if c.ionode != "" {
		c.fs.storage.Transfer(p, server, c.ionode, size)
		c.fs.compute.Transfer(p, c.ionode, c.node, size)
	} else {
		c.fs.compute.Transfer(p, server, c.node, size)
	}
}

// metaRPC performs one metadata operation round trip under the resilience
// policy: an unavailable MDS leaves the request unanswered, the client
// times out and retries with exponential backoff until the policy's
// budget is exhausted. Namespace errors (ErrExist, ...) are final and
// never retried — the operation did run, it just failed.
func (c *Client) metaRPC(p *des.Proc, op MetaOp, fn func() error) error {
	pol := c.fs.cfg.Resilience
	for attempt := 0; ; attempt++ {
		c.stats.MetaRPCs++
		c.stats.BytesSent += metaReqSize
		c.toServer(p, c.fs.mds.node, metaReqSize)
		var err error
		if c.fs.mds.down {
			// No response: the RPC dies on the simulated timeout.
			if pol.RPCTimeout > 0 {
				p.Wait(pol.RPCTimeout)
			}
			c.stats.TimedOutRPCs++
			err = ErrMDSUnavailable
		} else {
			err = c.fs.mdsExec(p, op, fn)
			c.stats.BytesRecv += metaRespSize
			c.fromServer(p, c.fs.mds.node, metaRespSize)
		}
		if err == nil || !retryable(err) {
			return err
		}
		if attempt >= pol.MaxRetries {
			c.stats.FailedRPCs++
			return err
		}
		c.stats.Retries++
		p.Wait(pol.backoff(c.fs.eng, attempt))
	}
}

// Mkdir creates a directory.
func (c *Client) Mkdir(p *des.Proc, path string) error {
	path, perr := cleanPath(path)
	if perr != nil {
		return perr
	}
	start := p.Now()
	err := c.metaRPC(p, OpMkdir, func() error {
		ino := c.fs.mds.inodes
		if _, dup := ino[path]; dup {
			return ErrExist
		}
		par, ok := ino[parentOf(path)]
		if !ok {
			return ErrNotExist
		}
		if !par.isDir {
			return ErrNotDir
		}
		ino[path] = &inode{path: path, isDir: true, children: map[string]bool{}, ctime: p.Now(), mtime: p.Now()}
		par.children[path] = true
		return nil
	})
	c.fs.observe(OpEvent{Client: c.node, Op: "mkdir", Path: path, Start: start, End: p.Now()})
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(p *des.Proc, path string) error {
	path, perr := cleanPath(path)
	if perr != nil {
		return perr
	}
	start := p.Now()
	err := c.metaRPC(p, OpRmdir, func() error {
		ino := c.fs.mds.inodes
		n, ok := ino[path]
		if !ok {
			return ErrNotExist
		}
		if !n.isDir {
			return ErrNotDir
		}
		if len(n.children) > 0 {
			return ErrNotEmpty
		}
		if path == "/" {
			return ErrNotEmpty
		}
		delete(ino, path)
		delete(ino[parentOf(path)].children, path)
		return nil
	})
	c.fs.observe(OpEvent{Client: c.node, Op: "rmdir", Path: path, Start: start, End: p.Now()})
	return err
}

// Stat returns file metadata.
func (c *Client) Stat(p *des.Proc, path string) (FileInfo, error) {
	path, perr := cleanPath(path)
	if perr != nil {
		return FileInfo{}, perr
	}
	start := p.Now()
	var fi FileInfo
	err := c.metaRPC(p, OpStat, func() error {
		n, ok := c.fs.mds.inodes[path]
		if !ok {
			return ErrNotExist
		}
		fi = FileInfo{Path: n.path, IsDir: n.isDir, Size: n.size, Layout: n.layout, CTime: n.ctime, MTime: n.mtime}
		return nil
	})
	c.fs.observe(OpEvent{Client: c.node, Op: "stat", Path: path, Start: start, End: p.Now()})
	return fi, err
}

// Readdir lists the names in a directory.
func (c *Client) Readdir(p *des.Proc, path string) ([]string, error) {
	path, perr := cleanPath(path)
	if perr != nil {
		return nil, perr
	}
	start := p.Now()
	var names []string
	err := c.metaRPC(p, OpReaddir, func() error {
		n, ok := c.fs.mds.inodes[path]
		if !ok {
			return ErrNotExist
		}
		if !n.isDir {
			return ErrNotDir
		}
		for child := range n.children {
			names = append(names, child)
		}
		return nil
	})
	if err == nil && len(names) > 0 {
		// Pay for the directory payload: ~64 bytes per entry.
		c.fromServer(p, c.fs.mds.node, int64(len(names))*64)
	}
	c.fs.observe(OpEvent{Client: c.node, Op: "readdir", Path: path, Size: int64(len(names)), Start: start, End: p.Now()})
	return names, err
}

// Unlink removes a file.
func (c *Client) Unlink(p *des.Proc, path string) error {
	path, perr := cleanPath(path)
	if perr != nil {
		return perr
	}
	start := p.Now()
	err := c.metaRPC(p, OpUnlink, func() error {
		ino := c.fs.mds.inodes
		n, ok := ino[path]
		if !ok {
			return ErrNotExist
		}
		if n.isDir {
			return ErrIsDir
		}
		delete(ino, path)
		delete(ino[parentOf(path)].children, path)
		return nil
	})
	c.fs.observe(OpEvent{Client: c.node, Op: "unlink", Path: path, Start: start, End: p.Now()})
	return err
}

// Handle is an open file.
type Handle struct {
	c      *Client
	path   string
	layout Layout
	closed bool

	// write-behind dirty extents, coalesced on append
	dirty []extent

	// readahead window already fetched from the servers
	raStart, raEnd int64
	raValid        bool
}

type extent struct{ off, size int64 }

// Create makes a new file with the given striping (0 values select the
// file-system defaults) and returns an open handle.
func (c *Client) Create(p *des.Proc, path string, stripeCount int, stripeSize int64) (*Handle, error) {
	path, perr := cleanPath(path)
	if perr != nil {
		return nil, perr
	}
	start := p.Now()
	var layout Layout
	err := c.metaRPC(p, OpCreate, func() error {
		ino := c.fs.mds.inodes
		if _, dup := ino[path]; dup {
			return ErrExist
		}
		par, ok := ino[parentOf(path)]
		if !ok {
			return ErrNotExist
		}
		if !par.isDir {
			return ErrNotDir
		}
		layout = c.fs.allocateLayout(stripeCount, stripeSize)
		ino[path] = &inode{path: path, layout: layout, ctime: p.Now(), mtime: p.Now()}
		par.children[path] = true
		return nil
	})
	c.fs.observe(OpEvent{Client: c.node, Op: "create", Path: path, Start: start, End: p.Now()})
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, path: path, layout: layout}, nil
}

// Open opens an existing file.
func (c *Client) Open(p *des.Proc, path string) (*Handle, error) {
	path, perr := cleanPath(path)
	if perr != nil {
		return nil, perr
	}
	start := p.Now()
	var layout Layout
	err := c.metaRPC(p, OpOpen, func() error {
		n, ok := c.fs.mds.inodes[path]
		if !ok {
			return ErrNotExist
		}
		if n.isDir {
			return ErrIsDir
		}
		layout = n.layout
		return nil
	})
	c.fs.observe(OpEvent{Client: c.node, Op: "open", Path: path, Start: start, End: p.Now()})
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, path: path, layout: layout}, nil
}

// Path returns the file path.
func (h *Handle) Path() string { return h.path }

// Layout returns the file's stripe layout.
func (h *Handle) Layout() Layout { return h.layout }

// chunk is one OST-directed piece of a striped request.
type chunk struct {
	ostIdx  int   // index into layout.OSTs
	objOff  int64 // offset within the object
	size    int64
	fileOff int64
}

// stripeChunks splits a byte range [off, off+size) over the layout.
func stripeChunks(l Layout, off, size int64) []chunk {
	var out []chunk
	for size > 0 {
		stripe := off / l.StripeSize
		within := off % l.StripeSize
		n := l.StripeSize - within
		if n > size {
			n = size
		}
		ostIdx := int(stripe % int64(l.StripeCount))
		objOff := (stripe/int64(l.StripeCount))*l.StripeSize + within
		out = append(out, chunk{ostIdx: ostIdx, objOff: objOff, size: n, fileOff: off})
		off += n
		size -= n
	}
	return out
}

// dataRPC performs one OST-directed transfer under the resilience policy:
// bounded retries with exponential backoff + jitter around single
// attempts. Non-retryable errors and exhausted budgets surface to doIO.
func (c *Client) dataRPC(q *des.Proc, o *ost, obj string, objOff, size int64, write bool) error {
	pol := c.fs.cfg.Resilience
	for attempt := 0; ; attempt++ {
		err := c.tryDataRPC(q, o, obj, objOff, size, write)
		if err == nil || !retryable(err) {
			return err
		}
		if attempt >= pol.MaxRetries {
			c.stats.FailedRPCs++
			return err
		}
		c.stats.Retries++
		q.Wait(pol.backoff(c.fs.eng, attempt))
	}
}

// tryDataRPC is a single attempt: pay the request's network cost, then
// either service it at the OST or observe the failure mode — a crashed
// target never answers (timeout), and injected transient faults fail the
// request server-side with an error reply.
func (c *Client) tryDataRPC(q *des.Proc, o *ost, obj string, objOff, size int64, write bool) error {
	fs := c.fs
	if write {
		c.stats.WriteRPCs++
		c.stats.BytesSent += size
		c.toServer(q, o.ossNode, size)
	} else {
		c.stats.ReadRPCs++
		c.stats.BytesSent += dataReqSize
		c.toServer(q, o.ossNode, dataReqSize)
	}
	if o.down {
		if pol := fs.cfg.Resilience; pol.RPCTimeout > 0 {
			q.Wait(pol.RPCTimeout)
		}
		c.stats.TimedOutRPCs++
		return fmt.Errorf("%w: ost%d", ErrOSTDown, o.id)
	}
	if r := fs.transientRate; r > 0 && fs.eng.RNG().Stream("pfs.transient").Float64() < r {
		c.stats.BytesRecv += dataReqSize
		c.fromServer(q, o.ossNode, dataReqSize) // error reply
		return fmt.Errorf("%w: ost%d %s@%d+%d", ErrIO, o.id, obj, objOff, size)
	}
	o.access(q, obj, objOff, size, write)
	if fs.ostObserver != nil {
		fs.ostObserver(OSTEvent{OST: o.id, Size: size, Write: write, At: q.Now()})
	}
	if write {
		c.stats.BytesRecv += dataReqSize
		c.fromServer(q, o.ossNode, dataReqSize) // ack
	} else {
		c.stats.BytesRecv += size
		c.fromServer(q, o.ossNode, size)
	}
	return nil
}

// doIO executes the chunks of one request in parallel across OSTs,
// splitting chunks larger than MaxRPCSize, and blocks until all complete.
// On failure it returns the first (launch-order) error; for reads under a
// DegradedReads policy the healthy stripes still complete and the miss is
// reported as a *DegradedReadError with partial-data accounting.
func (h *Handle) doIO(p *des.Proc, chunks []chunk, write bool) error {
	fs := h.c.fs
	var rpcs []chunk
	for _, ch := range chunks {
		for ch.size > 0 {
			n := ch.size
			if n > fs.cfg.MaxRPCSize {
				n = fs.cfg.MaxRPCSize
			}
			rpc := ch
			rpc.size = n
			rpcs = append(rpcs, rpc)
			ch.objOff += n
			ch.size -= n
		}
	}
	errs := make([]error, len(rpcs))
	wg := des.NewWaitGroup(p.Engine())
	for i, rpc := range rpcs {
		i, rpc := i, rpc
		wg.Add(1)
		p.Engine().Spawn("rpc", func(q *des.Proc) {
			defer wg.Done()
			o := fs.osts[h.layout.OSTs[rpc.ostIdx]]
			obj := fmt.Sprintf("%s#%d", h.path, rpc.ostIdx)
			errs[i] = h.c.dataRPC(q, o, obj, rpc.objOff, rpc.size, write)
		})
	}
	wg.Wait(p)
	var firstErr error
	var requested, missing int64
	for i, err := range errs {
		requested += rpcs[i].size
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			missing += rpcs[i].size
		}
	}
	if firstErr == nil {
		return nil
	}
	if !write && fs.cfg.Resilience.DegradedReads {
		h.c.stats.DegradedReads++
		h.c.stats.BytesMissing += missing
		return &DegradedReadError{Path: h.path, Requested: requested, Missing: missing, Cause: firstErr}
	}
	return firstErr
}

// updateSize grows the file size at the MDS (a size RPC, as Lustre clients
// batch; modeled as one metadata op).
func (h *Handle) updateSize(p *des.Proc, end int64) error {
	return h.c.metaRPC(p, OpSetSize, func() error {
		n, ok := h.c.fs.mds.inodes[h.path]
		if !ok {
			return ErrNotExist
		}
		if end > n.size {
			n.size = end
		}
		n.mtime = p.Now()
		return nil
	})
}

// Write writes size bytes at offset off, blocking in simulated time. With
// write-behind enabled, data may be buffered and flushed later; errors
// from a deferred flush surface on the Write, Fsync, or Close that
// triggers it. A closed handle returns ErrClosedHandle.
func (h *Handle) Write(p *des.Proc, off, size int64) error {
	if h.closed {
		return fmt.Errorf("%w: write %s", ErrClosedHandle, h.path)
	}
	if size <= 0 {
		return nil
	}
	start := p.Now()
	h.raValid = false // writes invalidate the readahead window
	var err error
	if h.c.wbCapacity > 0 {
		h.appendDirty(off, size)
		h.c.wbDirty += size
		if h.c.wbDirty >= h.c.wbCapacity {
			err = h.flush(p)
		}
	} else {
		err = h.doIO(p, stripeChunks(h.layout, off, size), true)
		if err == nil {
			err = h.updateSize(p, off+size)
		}
	}
	h.c.fs.observe(OpEvent{Client: h.c.node, Op: "write", Path: h.path, Offset: off, Size: size, Start: start, End: p.Now()})
	return err
}

// appendDirty records a dirty extent, coalescing with the previous one when
// contiguous.
func (h *Handle) appendDirty(off, size int64) {
	if n := len(h.dirty); n > 0 {
		last := &h.dirty[n-1]
		if last.off+last.size == off {
			last.size += size
			return
		}
	}
	h.dirty = append(h.dirty, extent{off, size})
}

// flush writes out all dirty extents. Buffered data is dropped whether or
// not the writeback succeeds — on failure it is lost, as with a real
// client cache, and the error surfaces to the caller.
func (h *Handle) flush(p *des.Proc) error {
	if len(h.dirty) == 0 {
		return nil
	}
	var chunks []chunk
	var maxEnd int64
	var total int64
	for _, ex := range h.dirty {
		chunks = append(chunks, stripeChunks(h.layout, ex.off, ex.size)...)
		if end := ex.off + ex.size; end > maxEnd {
			maxEnd = end
		}
		total += ex.size
	}
	h.dirty = nil
	h.c.wbDirty -= total
	if err := h.doIO(p, chunks, true); err != nil {
		return err
	}
	return h.updateSize(p, maxEnd)
}

// Read reads size bytes at offset off, blocking in simulated time. With
// readahead enabled, misses fetch an extended window and later reads
// within the window are served from client memory. Under a DegradedReads
// policy, a read spanning a crashed OST returns *DegradedReadError after
// fetching the reachable stripes; a closed handle returns ErrClosedHandle.
func (h *Handle) Read(p *des.Proc, off, size int64) error {
	if h.closed {
		return fmt.Errorf("%w: read %s", ErrClosedHandle, h.path)
	}
	if size <= 0 {
		return nil
	}
	start := p.Now()
	ra := h.c.fs.cfg.ClientReadahead
	var err error
	switch {
	case ra > 0 && h.raValid && off >= h.raStart && off+size <= h.raEnd:
		// Cache hit: served from client memory at zero simulated cost.
	case ra > 0:
		fetch := size + ra
		err = h.doIO(p, stripeChunks(h.layout, off, fetch), false)
		if err == nil {
			h.raStart, h.raEnd, h.raValid = off, off+fetch, true
		}
	default:
		err = h.doIO(p, stripeChunks(h.layout, off, size), false)
	}
	h.c.fs.observe(OpEvent{Client: h.c.node, Op: "read", Path: h.path, Offset: off, Size: size, Start: start, End: p.Now()})
	return err
}

// Fsync flushes buffered writes.
func (h *Handle) Fsync(p *des.Proc) error {
	start := p.Now()
	err := h.flush(p)
	h.c.fs.observe(OpEvent{Client: h.c.node, Op: "fsync", Path: h.path, Start: start, End: p.Now()})
	return err
}

// Close flushes and closes the handle. The handle is closed even when the
// final flush fails; the flush error is returned.
func (h *Handle) Close(p *des.Proc) error {
	if h.closed {
		return nil
	}
	start := p.Now()
	err := h.flush(p)
	h.closed = true
	h.c.fs.observe(OpEvent{Client: h.c.node, Op: "close", Path: h.path, Start: start, End: p.Now()})
	return err
}
