package posixio

import (
	"errors"
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// newEnv builds an engine + FS + traced env and returns them.
func newEnv(seed int64) (*des.Engine, *Env, *trace.Collector) {
	e := des.NewEngine(seed)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	fs := pfs.New(e, cfg)
	col := trace.NewCollector()
	env := NewEnv(storage.Direct(fs.NewClient("c0")), 0, col)
	return e, env, col
}

func run(t *testing.T, e *des.Engine, fn func(p *des.Proc)) {
	t.Helper()
	e.Spawn("t", fn)
	e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		t.Fatal("deadlock")
	}
}

func TestOpenCreateWriteReadClose(t *testing.T) {
	e, env, col := newEnv(1)
	run(t, e, func(p *des.Proc) {
		fd, err := env.Open(p, "/f", OCreate|ORdwr)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if n, err := env.Write(p, fd, 4096); n != 4096 || err != nil {
			t.Fatalf("write = %d, %v", n, err)
		}
		if n, err := env.Write(p, fd, 4096); n != 4096 || err != nil {
			t.Fatalf("write2 = %d, %v", n, err)
		}
		// Position advanced: file is 8 KB.
		fi, err := env.Stat(p, "/f")
		if err != nil || fi.Size != 8192 {
			t.Fatalf("size = %d, %v", fi.Size, err)
		}
		if _, err := env.Lseek(p, fd, 0, SeekSet); err != nil {
			t.Fatal(err)
		}
		if n, err := env.Read(p, fd, 8192); n != 8192 || err != nil {
			t.Fatalf("read = %d, %v", n, err)
		}
		if err := env.Close(p, fd); err != nil {
			t.Fatal(err)
		}
		if env.OpenFDs() != 0 {
			t.Errorf("fd leak: %d", env.OpenFDs())
		}
	})
	// Trace should contain POSIX-layer records in order.
	var ops []string
	for _, r := range col.Records() {
		if r.Layer != trace.LayerPOSIX {
			t.Errorf("unexpected layer %v", r.Layer)
		}
		ops = append(ops, r.Op)
	}
	want := []string{"open", "write", "write", "stat", "lseek", "read", "close"}
	if len(ops) != len(want) {
		t.Fatalf("trace ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("trace ops = %v, want %v", ops, want)
		}
	}
}

func TestOpenFlags(t *testing.T) {
	e, env, _ := newEnv(1)
	run(t, e, func(p *des.Proc) {
		fd, err := env.Open(p, "/f", OCreate)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		_, _ = env.Write(p, fd, 100)
		_ = env.Close(p, fd)

		// O_CREAT on existing file opens it.
		fd2, err := env.Open(p, "/f", OCreate)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		_ = env.Close(p, fd2)

		// O_CREAT|O_EXCL on existing file fails.
		if _, err := env.Open(p, "/f", OCreate|OExcl); !errors.Is(err, pfs.ErrExist) {
			t.Errorf("excl reopen = %v, want ErrExist", err)
		}

		// Plain open of missing file fails.
		if _, err := env.Open(p, "/missing", ORdonly); !errors.Is(err, pfs.ErrNotExist) {
			t.Errorf("open missing = %v", err)
		}

		// O_APPEND starts at EOF.
		fd3, err := env.Open(p, "/f", OAppend)
		if err != nil {
			t.Fatal(err)
		}
		pos, _ := env.Lseek(p, fd3, 0, SeekCur)
		if pos != 100 {
			t.Errorf("append pos = %d, want 100", pos)
		}
		_ = env.Close(p, fd3)
	})
}

func TestLseekWhence(t *testing.T) {
	e, env, _ := newEnv(1)
	run(t, e, func(p *des.Proc) {
		fd, _ := env.Open(p, "/f", OCreate)
		_, _ = env.Write(p, fd, 1000)
		if pos, _ := env.Lseek(p, fd, 10, SeekSet); pos != 10 {
			t.Errorf("SeekSet = %d", pos)
		}
		if pos, _ := env.Lseek(p, fd, 5, SeekCur); pos != 15 {
			t.Errorf("SeekCur = %d", pos)
		}
		if pos, _ := env.Lseek(p, fd, -100, SeekEnd); pos != 900 {
			t.Errorf("SeekEnd = %d", pos)
		}
		if pos, _ := env.Lseek(p, fd, -5000, SeekSet); pos != 0 {
			t.Errorf("negative clamp = %d", pos)
		}
		if _, err := env.Lseek(p, fd, 0, 99); err == nil {
			t.Error("bad whence should error")
		}
		_ = env.Close(p, fd)
	})
}

func TestBadFD(t *testing.T) {
	e, env, _ := newEnv(1)
	run(t, e, func(p *des.Proc) {
		if _, err := env.Write(p, 99, 10); !errors.Is(err, ErrBadFD) {
			t.Errorf("write bad fd = %v", err)
		}
		if _, err := env.Read(p, 99, 10); !errors.Is(err, ErrBadFD) {
			t.Errorf("read bad fd = %v", err)
		}
		if err := env.Close(p, 99); !errors.Is(err, ErrBadFD) {
			t.Errorf("close bad fd = %v", err)
		}
		if err := env.Fsync(p, 99); !errors.Is(err, ErrBadFD) {
			t.Errorf("fsync bad fd = %v", err)
		}
	})
}

func TestDirOpsTraced(t *testing.T) {
	e, env, col := newEnv(1)
	run(t, e, func(p *des.Proc) {
		if err := env.Mkdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
		fd, _ := env.Open(p, "/d/f", OCreate)
		_ = env.Close(p, fd)
		names, err := env.Readdir(p, "/d")
		if err != nil || len(names) != 1 {
			t.Fatalf("readdir = %v, %v", names, err)
		}
		if err := env.Unlink(p, "/d/f"); err != nil {
			t.Fatal(err)
		}
		if err := env.Rmdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
	})
	sum := trace.Summarize(col.Records())
	if sum.MetaOps < 5 {
		t.Errorf("expected >=5 metadata records, got %d", sum.MetaOps)
	}
}

func TestStripeHintsApplied(t *testing.T) {
	e, env, _ := newEnv(1)
	env.StripeCount = 2
	env.StripeSize = 4096
	run(t, e, func(p *des.Proc) {
		fd, err := env.Open(p, "/f", OCreate)
		if err != nil {
			t.Fatal(err)
		}
		_ = env.Close(p, fd)
		fi, _ := env.Stat(p, "/f")
		if fi.Layout.StripeCount != 2 || fi.Layout.StripeSize != 4096 {
			t.Errorf("layout = %+v", fi.Layout)
		}
	})
}

func TestPwritePreadDoNotMovePosition(t *testing.T) {
	e, env, _ := newEnv(1)
	run(t, e, func(p *des.Proc) {
		fd, _ := env.Open(p, "/f", OCreate)
		_, _ = env.Pwrite(p, fd, 1<<20, 4096)
		if pos, _ := env.Lseek(p, fd, 0, SeekCur); pos != 0 {
			t.Errorf("pos after pwrite = %d, want 0", pos)
		}
		_, _ = env.Pread(p, fd, 0, 4096)
		if pos, _ := env.Lseek(p, fd, 0, SeekCur); pos != 0 {
			t.Errorf("pos after pread = %d, want 0", pos)
		}
		_ = env.Close(p, fd)
	})
}
