// Package posixio exposes a POSIX-like file API (descriptors, open flags,
// positional and streaming reads/writes) on top of a pluggable storage
// target. It is the "POSIX I/O" layer of the paper's Figure 2: MPI-IO
// sits above it, a storage.Target (direct PFS, burst-buffer tier, or
// node-local scratch) below it, and tracers interpose here to capture
// POSIX-level records.
package posixio

import (
	"errors"
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// Open flags (subset of POSIX).
const (
	ORdonly = 0
	OWronly = 1 << iota
	ORdwr
	OCreate
	OExcl
	OAppend
)

// ErrBadFD is returned for operations on unknown descriptors.
var ErrBadFD = errors.New("posixio: bad file descriptor")

// Env is one simulated process's POSIX environment: a descriptor table
// bound to a storage target. Create one Env per rank.
type Env struct {
	target storage.Target
	rank   int
	col    *trace.Collector

	// StripeCount and StripeSize apply to files created through this Env
	// (0 selects file-system defaults).
	StripeCount int
	StripeSize  int64

	fds    map[int]*fdState
	nextFD int
}

type fdState struct {
	h      storage.Handle
	pos    int64
	append bool
	size   int64 // local size mirror for append/seek-end
}

// NewEnv creates a POSIX environment for rank on target t, tracing into col
// (nil disables tracing).
func NewEnv(t storage.Target, rank int, col *trace.Collector) *Env {
	return &Env{target: t, rank: rank, col: col, fds: make(map[int]*fdState), nextFD: 3}
}

// Target returns the underlying storage target.
func (e *Env) Target() storage.Target { return e.target }

func (e *Env) emit(p *des.Proc, op, path string, off, size int64, start des.Time) {
	e.col.Emit(trace.Record{
		Rank: e.rank, Layer: trace.LayerPOSIX, Op: op, Path: path,
		Offset: off, Size: size, Start: start, End: p.Now(),
	})
}

// Open opens path with flags and returns a descriptor.
func (e *Env) Open(p *des.Proc, path string, flags int) (int, error) {
	start := p.Now()
	var h storage.Handle
	var err error
	var size int64
	if flags&OCreate != 0 {
		h, err = e.target.Create(p, path, e.StripeCount, e.StripeSize)
		if errors.Is(err, storage.ErrExist) && flags&OExcl == 0 {
			h, err = e.target.Open(p, path)
			if err == nil {
				if fi, serr := e.target.Stat(p, path); serr == nil {
					size = fi.Size
				}
			}
		}
	} else {
		h, err = e.target.Open(p, path)
		if err == nil {
			if fi, serr := e.target.Stat(p, path); serr == nil {
				size = fi.Size
			}
		}
	}
	e.emit(p, "open", path, 0, 0, start)
	if err != nil {
		return -1, err
	}
	fd := e.nextFD
	e.nextFD++
	e.fds[fd] = &fdState{h: h, append: flags&OAppend != 0, size: size}
	if flags&OAppend != 0 {
		e.fds[fd].pos = size
	}
	return fd, nil
}

func (e *Env) fd(fd int) (*fdState, error) {
	st, ok := e.fds[fd]
	if !ok {
		return nil, ErrBadFD
	}
	return st, nil
}

// Write writes size bytes at the current position, advancing it.
func (e *Env) Write(p *des.Proc, fd int, size int64) (int64, error) {
	st, err := e.fd(fd)
	if err != nil {
		return 0, err
	}
	n, err := e.Pwrite(p, fd, st.pos, size)
	st.pos += n
	return n, err
}

// Pwrite writes size bytes at offset off without moving the position.
func (e *Env) Pwrite(p *des.Proc, fd int, off, size int64) (int64, error) {
	st, err := e.fd(fd)
	if err != nil {
		return 0, err
	}
	start := p.Now()
	werr := st.h.Write(p, off, size)
	if end := off + size; end > st.size {
		st.size = end
	}
	e.emit(p, "write", st.h.Path(), off, size, start)
	if werr != nil {
		return 0, werr
	}
	return size, nil
}

// Read reads size bytes at the current position, advancing it.
func (e *Env) Read(p *des.Proc, fd int, size int64) (int64, error) {
	st, err := e.fd(fd)
	if err != nil {
		return 0, err
	}
	n, err := e.Pread(p, fd, st.pos, size)
	st.pos += n
	return n, err
}

// Pread reads size bytes at offset off without moving the position.
func (e *Env) Pread(p *des.Proc, fd int, off, size int64) (int64, error) {
	st, err := e.fd(fd)
	if err != nil {
		return 0, err
	}
	start := p.Now()
	rerr := st.h.Read(p, off, size)
	e.emit(p, "read", st.h.Path(), off, size, start)
	if rerr != nil {
		// Degraded-mode reads deliver the reachable bytes; report the
		// short count alongside the error, like a POSIX partial read.
		var deg *storage.DegradedReadError
		if errors.As(rerr, &deg) {
			n := size - deg.Missing
			if n < 0 {
				n = 0
			}
			return n, rerr
		}
		return 0, rerr
	}
	return size, nil
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions the descriptor and returns the new position. Like
// every other Env operation it is traced (a zero-size record at the new
// offset) so replay and analysis see the seek pattern, even though a seek
// costs no simulated time.
func (e *Env) Lseek(p *des.Proc, fd int, off int64, whence int) (int64, error) {
	st, err := e.fd(fd)
	if err != nil {
		return 0, err
	}
	start := p.Now()
	pos := st.pos
	switch whence {
	case SeekSet:
		pos = off
	case SeekCur:
		pos += off
	case SeekEnd:
		pos = st.size + off
	default:
		return 0, fmt.Errorf("posixio: bad whence %d", whence)
	}
	if pos < 0 {
		pos = 0
	}
	st.pos = pos
	e.emit(p, "lseek", st.h.Path(), pos, 0, start)
	return pos, nil
}

// Fsync flushes buffered writes for fd.
func (e *Env) Fsync(p *des.Proc, fd int) error {
	st, err := e.fd(fd)
	if err != nil {
		return err
	}
	start := p.Now()
	serr := st.h.Fsync(p)
	e.emit(p, "fsync", st.h.Path(), 0, 0, start)
	return serr
}

// Close closes fd.
func (e *Env) Close(p *des.Proc, fd int) error {
	st, err := e.fd(fd)
	if err != nil {
		return err
	}
	start := p.Now()
	cerr := st.h.Close(p)
	delete(e.fds, fd)
	e.emit(p, "close", st.h.Path(), 0, 0, start)
	return cerr
}

// Stat returns file metadata.
func (e *Env) Stat(p *des.Proc, path string) (storage.FileInfo, error) {
	start := p.Now()
	fi, err := e.target.Stat(p, path)
	e.emit(p, "stat", path, 0, 0, start)
	return fi, err
}

// Mkdir creates a directory.
func (e *Env) Mkdir(p *des.Proc, path string) error {
	start := p.Now()
	err := e.target.Mkdir(p, path)
	e.emit(p, "mkdir", path, 0, 0, start)
	return err
}

// Rmdir removes an empty directory.
func (e *Env) Rmdir(p *des.Proc, path string) error {
	start := p.Now()
	err := e.target.Rmdir(p, path)
	e.emit(p, "rmdir", path, 0, 0, start)
	return err
}

// Unlink removes a file.
func (e *Env) Unlink(p *des.Proc, path string) error {
	start := p.Now()
	err := e.target.Unlink(p, path)
	e.emit(p, "unlink", path, 0, 0, start)
	return err
}

// Readdir lists directory entries.
func (e *Env) Readdir(p *des.Proc, path string) ([]string, error) {
	start := p.Now()
	names, err := e.target.Readdir(p, path)
	e.emit(p, "readdir", path, 0, int64(len(names)), start)
	return names, err
}

// OpenFDs reports the number of open descriptors (for leak tests).
func (e *Env) OpenFDs() int { return len(e.fds) }
