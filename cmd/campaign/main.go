// Command campaign runs a parameter-sweep experiment campaign: it expands
// a declarative spec (see internal/campaign.ParseSpec for the format) into
// a cartesian grid of simulation runs, executes them in parallel with live
// progress and ETA on stderr, and emits per-point distribution summaries
// as a table (stdout), JSON (the repository's BENCH_*.json perf-trajectory
// format), and CSV.
//
// With no spec file argument it runs the built-in baseline grid — the
// 48-point sweep recorded in BENCH_campaign.json:
//
//	campaign -json BENCH_campaign.json
//	campaign -workers 8 -reps 5 sweep.campaign
//	campaign -points sweep.campaign          # list the grid, run nothing
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"text/tabwriter"

	"pioeval/internal/campaign"
)

// defaultSpec is the built-in baseline grid: 48 points spanning device
// models, stripe counts, transfer sizes, and access patterns at two rank
// counts, three repetitions each.
const defaultSpec = `
campaign "baseline-grid" {
    workload ior
    seed 42
    reps 3
    ranks 2, 4
    device hdd, ssd, nvme
    stripe-count 1, 4
    block-size 4MB
    transfer-size 256KB, 1MB
    pattern sequential, random
}
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	// First SIGINT/SIGTERM cancels the grid gracefully: the runs that
	// already finished are aggregated and emitted as a partial report
	// before exiting non-zero. A second signal kills the process the
	// default way (NotifyContext unregisters after cancelling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags come from args,
// all output goes to the supplied writers, and failures return as errors
// instead of exiting. The golden test drives it with a bytes.Buffer.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "simultaneous simulations (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", -1, "override the spec's campaign seed (-1 = keep)")
	reps := fs.Int("reps", 0, "override the spec's repetitions (0 = keep)")
	jsonOut := fs.String("json", "", "write the aggregated report as JSON to this file (- for stdout)")
	csvOut := fs.String("csv", "", "write per-point summaries as CSV to this file (- for stdout)")
	listOnly := fs.Bool("points", false, "print the expanded grid and exit without running")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	src := defaultSpec
	if fs.NArg() == 1 {
		b, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(b)
	} else if fs.NArg() > 1 {
		return fmt.Errorf("at most one spec file argument")
	}
	spec, err := campaign.ParseSpec(src)
	if err != nil {
		return err
	}
	if *seed >= 0 {
		spec.Seed = *seed
	}
	if *reps > 0 {
		spec.Reps = *reps
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	points := spec.Expand()
	if *listOnly {
		for _, p := range points {
			fmt.Fprintf(stdout, "point %3d: %s\n", p.ID, p.Label())
		}
		fmt.Fprintf(stdout, "%d points x %d reps = %d runs\n", len(points), max(spec.Reps, 1), len(points)*max(spec.Reps, 1))
		return nil
	}

	opt := campaign.Options{Workers: *workers}
	if !*quiet {
		opt.OnProgress = func(p campaign.Progress) {
			fmt.Fprintf(stderr, "\rrun %d/%d (%.0f%%) elapsed %v eta %v    ",
				p.Done, p.Total, 100*float64(p.Done)/float64(p.Total),
				p.Elapsed.Round(10_000_000), p.ETA.Round(10_000_000))
			if p.Done == p.Total {
				fmt.Fprintln(stderr)
			}
		}
	}
	rep, err := campaign.RunContext(ctx, spec, opt)
	if err != nil {
		return err
	}
	if rep.Cancelled {
		fmt.Fprintf(stderr, "interrupted: emitting partial results (%d/%d runs)\n",
			rep.CompletedRuns(), len(rep.Runs))
	}
	for _, je := range rep.Errors {
		fmt.Fprintf(stderr, "run %d (point %d, rep %d) panicked: %s\n", je.Run, je.Point, je.Rep, je.Msg)
	}

	printSummary(stdout, rep)
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, stdout, rep.WriteJSON); err != nil {
			return err
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, stdout, rep.WriteCSV); err != nil {
			return err
		}
	}
	// The partial aggregate has been flushed whole — no truncated files —
	// but an interrupted campaign is still a failed campaign.
	if rep.Cancelled {
		return fmt.Errorf("interrupted after %d/%d runs; partial results emitted", rep.CompletedRuns(), len(rep.Runs))
	}
	return nil
}

// printSummary renders the per-point table: every metric's mean with its
// 95% bootstrap CI.
func printSummary(w io.Writer, rep *campaign.Report) {
	metrics := rep.MetricNames()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "point\tconfiguration\tmetric\tmean\t95%% CI\tp95\n")
	for _, ps := range rep.Points {
		for _, m := range metrics {
			d, ok := ps.Metrics[m]
			if !ok {
				continue
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.4g\t[%.4g, %.4g]\t%.4g\n",
				ps.Point.ID, ps.Point.Label(), m, d.Mean, d.CILo, d.CIHi, d.P95)
		}
	}
	tw.Flush()
}

func writeTo(path string, stdout io.Writer, write func(w io.Writer) error) error {
	if path == "-" {
		return write(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
