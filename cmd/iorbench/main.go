// Command iorbench runs the IOR-like parameterized bulk-I/O benchmark on a
// simulated parallel file system and prints an IOR-style summary.
//
// Example:
//
//	iorbench -ranks 8 -block 16MB -transfer 1MB -shared -pattern strided -read
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iorbench: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags come from args,
// all output goes to the supplied writers, and failures return as errors
// instead of exiting. The golden test drives it with a bytes.Buffer.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("iorbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	ranks := fs.Int("ranks", 4, "MPI ranks")
	blockStr := fs.String("block", "16MB", "per-rank block size per segment")
	transferStr := fs.String("transfer", "1MB", "transfer size per I/O call")
	segments := fs.Int("segments", 1, "segments")
	shared := fs.Bool("shared", false, "one shared file instead of file-per-process")
	patternStr := fs.String("pattern", "sequential", "access pattern: sequential, strided, random")
	readBack := fs.Bool("read", false, "add a read-back phase")
	collective := fs.Bool("collective", false, "use two-phase collective MPI-IO (shared file only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := cluster.Config()
	if err != nil {
		return err
	}
	block, err := cli.ParseSize(*blockStr)
	if err != nil {
		return err
	}
	transfer, err := cli.ParseSize(*transferStr)
	if err != nil {
		return err
	}
	var pattern workload.Pattern
	switch *patternStr {
	case "sequential":
		pattern = workload.Sequential
	case "strided":
		pattern = workload.Strided
	case "random":
		pattern = workload.Random
	default:
		return fmt.Errorf("unknown pattern %q", *patternStr)
	}

	e := des.NewEngine(cluster.Seed)
	h := workload.NewHarness(e, pfs.New(e, cfg), *ranks, "cn", nil)
	rep := workload.RunIOR(h, workload.IORConfig{
		Ranks: *ranks, BlockSize: block, TransferSize: transfer,
		Segments: *segments, SharedFile: *shared, Pattern: pattern,
		ReadBack: *readBack, Collective: *collective,
	})

	fmt.Fprintf(stdout, "IOR-like benchmark on simulated cluster (%d OSS x %d OST, %s)\n",
		cfg.NumOSS, cfg.OSTsPerOSS, cluster.Device)
	fmt.Fprintf(stdout, "  ranks=%d block=%s transfer=%s segments=%d shared=%v pattern=%s collective=%v\n",
		*ranks, cli.FormatSize(block), cli.FormatSize(transfer), *segments, *shared, pattern, *collective)
	fmt.Fprintf(stdout, "  total data: %s\n", cli.FormatSize(rep.TotalBytes))
	fmt.Fprintf(stdout, "  write: %10.2f MB/s  (%v)\n", rep.WriteMBps, rep.WriteTime)
	if *readBack {
		fmt.Fprintf(stdout, "  read:  %10.2f MB/s  (%v)\n", rep.ReadMBps, rep.ReadTime)
	}
	fmt.Fprintf(stdout, "  makespan: %v\n", rep.Makespan)
	return nil
}
