// Command io500 runs the IO500-style composite benchmark suite on a
// simulated cluster: the standard twelve scored phases (ior-easy,
// ior-hard, mdtest-easy, mdtest-hard, find) over a chosen storage tier,
// reported as an IO500-list-style table or JSON with geometric-mean
// bandwidth/metadata sub-scores.
//
// With -survey it instead sweeps the suite across a device x tier x
// rank-count grid — a simulated submission corpus — and reports
// Treasure-Trove-style statistics: per-metric distributions, metric
// correlation matrices, and per-submission bottleneck attribution.
//
// Examples:
//
//	io500 -ranks 8 -device ssd -tier bb -validate
//	io500 -survey -devices hdd,ssd,nvme -tiers direct,bb,nodelocal -rank-counts 2,4,8 -json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"pioeval/internal/cli"
	"pioeval/internal/io500"
	"pioeval/internal/surveystats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("io500: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags come from args,
// all output goes to the supplied writers, and failures — including
// armed-invariant violations under -validate — return as errors instead
// of exiting. The golden and equivalence tests drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("io500", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ranks := fs.Int("ranks", 4, "MPI ranks")
	device := fs.String("device", "hdd", "OST device model: hdd, ssd, nvme")
	tier := fs.String("tier", "direct", "storage tier: direct, bb, nodelocal")
	compress := fs.String("compress", "none", "data-reduction stage over the tier: none, lz, deflate, zfp, sz")
	stripeCnt := fs.Int("stripe-count", 4, "stripe count")
	stripeStr := fs.String("stripe-size", "1MB", "stripe size")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "concurrent benchmark steps (0 = GOMAXPROCS); results identical at any value")
	validate := fs.Bool("validate", false, "arm runtime invariant checkers; exit non-zero on any violation")
	checkWorkers := fs.Int("check-workers", 0, "self-check: also run at this worker count and fail unless output is byte-identical")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")

	easyBlockStr := fs.String("easy-block", "16MB", "ior-easy per-rank bytes")
	easyXferStr := fs.String("easy-xfer", "1MB", "ior-easy transfer size")
	hardXfer := fs.Int64("hard-xfer", 47008, "ior-hard transfer size in bytes")
	hardOps := fs.Int("hard-ops", 64, "ior-hard transfers per rank")
	easyFiles := fs.Int("easy-files", 64, "mdtest-easy files per rank")
	hardFiles := fs.Int("hard-files", 32, "mdtest-hard files per rank")
	hardBytes := fs.Int64("hard-bytes", 3901, "mdtest-hard per-file payload bytes")

	survey := fs.Bool("survey", false, "sweep a device x tier x rank-count grid and analyze the submission corpus")
	devicesStr := fs.String("devices", "hdd,ssd,nvme", "survey: comma-separated device models")
	tiersStr := fs.String("tiers", "direct,bb,nodelocal", "survey: comma-separated storage tiers")
	rankCountsStr := fs.String("rank-counts", "2,4,8", "survey: comma-separated rank counts")
	compressorsStr := fs.String("compressors", "none", "survey: comma-separated data-reduction stages (none, lz, deflate, zfp, sz)")
	csvPath := fs.String("csv", "", "survey: also write the submission table as CSV to this path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	easyBlock, err := cli.ParseSize(*easyBlockStr)
	if err != nil {
		return err
	}
	easyXfer, err := cli.ParseSize(*easyXferStr)
	if err != nil {
		return err
	}
	stripeSize, err := cli.ParseSize(*stripeStr)
	if err != nil {
		return err
	}
	cfg := io500.Config{
		Ranks: *ranks, Device: *device, Tier: *tier, Compress: *compress,
		StripeCount: *stripeCnt, StripeSize: stripeSize,
		Seed: *seed, Workers: *workers, Check: *validate,
		EasyBlock: easyBlock, EasyXfer: easyXfer,
		HardXfer: *hardXfer, HardOps: *hardOps,
		EasyFiles: *easyFiles, HardFiles: *hardFiles, HardFileBytes: *hardBytes,
	}

	if *survey {
		return runSurvey(cfg, *devicesStr, *tiersStr, *rankCountsStr, *compressorsStr, *seed, *jsonOut, *csvPath, stdout)
	}
	return runSuite(cfg, *jsonOut, *checkWorkers, stdout)
}

// runSuite executes one composite suite, optionally self-checking
// worker-count determinism, and fails on armed-invariant violations.
func runSuite(cfg io500.Config, jsonOut bool, checkWorkers int, stdout io.Writer) error {
	res, err := io500.Run(cfg)
	if err != nil {
		return err
	}
	if checkWorkers > 0 {
		alt := cfg
		alt.Workers = checkWorkers
		res2, err := io500.Run(alt)
		if err != nil {
			return fmt.Errorf("check-workers rerun: %w", err)
		}
		a, b := new(strings.Builder), new(strings.Builder)
		if err := res.WriteJSON(a); err != nil {
			return err
		}
		if err := res2.WriteJSON(b); err != nil {
			return err
		}
		if a.String() != b.String() {
			return fmt.Errorf("determinism self-check failed: output differs between workers=%d and workers=%d", cfg.Workers, checkWorkers)
		}
	}
	if jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := res.WriteText(stdout); err != nil {
		return err
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("%d invariant violation(s)", len(res.Violations))
	}
	return nil
}

// runSurvey builds the submission corpus over the requested grid and
// emits the analysis (text or JSON), plus the CSV table if asked.
func runSurvey(base io500.Config, devices, tiers, rankCounts, compressors string, seed int64, jsonOut bool, csvPath string, stdout io.Writer) error {
	rc, err := parseInts(rankCounts)
	if err != nil {
		return fmt.Errorf("rank-counts: %w", err)
	}
	// A pure-default compressor list stays off the grid entirely, so the
	// point expansion (and every derived seed) matches pre-axis surveys.
	comps := splitList(compressors)
	if len(comps) == 1 && (comps[0] == "none" || comps[0] == "") {
		comps = nil
	}
	base.Compress = ""
	g := surveystats.Grid{
		Devices:  splitList(devices),
		Tiers:    splitList(tiers),
		Ranks:    rc,
		Compress: comps,
		Base:     base,
		Seed:     seed,
		Workers:  base.Workers,
	}
	corpus, err := surveystats.BuildCorpus(g)
	if err != nil {
		return err
	}
	analysis, err := surveystats.Analyze(corpus)
	if err != nil {
		return err
	}
	rep := &surveystats.Report{Corpus: corpus, Analysis: analysis}
	if jsonOut {
		if err := rep.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := rep.WriteText(stdout); err != nil {
		return err
	}
	switch csvPath {
	case "":
	case "-":
		if err := rep.WriteCSV(stdout); err != nil {
			return err
		}
	default:
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := rep.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// splitList splits a comma-separated list, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}
