package core

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/profile"
	"pioeval/internal/replay"
	"pioeval/internal/skeleton"
	"pioeval/internal/stats"
	"pioeval/internal/trace"
)

// CycleConfig describes one run of the iterative evaluation cycle.
type CycleConfig struct {
	Seed int64
	// Baseline is the measurement deployment (phase 1 runs here).
	Baseline pfs.Config
	// Target is the deployment whose performance the model must predict
	// (phase 3 simulates here).
	Target pfs.Config
	// Source provides the workload.
	Source Source
	// MaxIterations bounds the feedback loop (default 3).
	MaxIterations int
	// Tolerance is the relative makespan-prediction error at which the
	// loop declares convergence (default 0.25).
	Tolerance float64
}

// Iteration reports one trip around the loop.
type Iteration struct {
	Index             int
	PredictedMakespan des.Time
	MeasuredMakespan  des.Time
	RelError          float64
	TrainingSamples   int
}

// CycleResult aggregates the three phases' artifacts.
type CycleResult struct {
	// Phase 1: measurement & statistics collection.
	TraceRecords     int
	ReadWriteRatio   float64
	SeqFraction      float64
	DominantSize     string
	BaselineMakespan des.Time

	// Phase 2: modeling & prediction.
	SkeletonRatio float64
	ReadFit       stats.LinearFit
	WriteFit      stats.LinearFit

	// Phase 3: simulation + feedback.
	Iterations []Iteration
	Converged  bool
}

// opSample is one (size -> latency) observation.
type opSample struct {
	size    float64
	latency float64
}

// RunCycle executes the full Figure-4 loop:
//
//  1. Measure: replay the source workload on the baseline deployment with
//     tracing and Darshan-like profiling attached.
//  2. Model: characterize the workload, build a skeleton, and fit
//     latency-vs-size regressions from the measured records.
//  3. Simulate: predict the workload's makespan on the target deployment
//     from the model, then actually simulate it; the new measurements feed
//     back into the model and the loop repeats until the prediction error
//     falls below tolerance.
func RunCycle(cfg CycleConfig) (*CycleResult, error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 3
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.25
	}
	res := &CycleResult{}

	ops, err := cfg.Source.Ops()
	if err != nil {
		return nil, err
	}

	// ---- Phase 1: measurement & statistics collection ----
	col := trace.NewCollector()
	prof := profile.New()
	prof.Attach(col)
	eBase := des.NewEngine(cfg.Seed)
	fsBase := pfs.New(eBase, cfg.Baseline)
	baseRes, err := replayTraced(eBase, fsBase, ops, col)
	if err != nil {
		return nil, fmt.Errorf("core: baseline measurement: %w", err)
	}
	res.BaselineMakespan = baseRes.Makespan
	res.TraceRecords = col.Len()
	res.ReadWriteRatio = prof.ReadWriteRatio()
	res.SeqFraction = prof.SequentialFraction()
	res.DominantSize = prof.DominantAccessSize()

	// ---- Phase 2: modeling & prediction ----
	var ratioSum float64
	for _, rankOps := range ops {
		prog := skeleton.Fold(opsToTokens(rankOps))
		ratioSum += prog.CompressionRatio()
	}
	res.SkeletonRatio = ratioSum / float64(len(ops))

	reads, writes := harvestSamples(col.Records())

	// ---- Phase 3: simulation with feedback ----
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		res.ReadFit = fitSamples(reads)
		res.WriteFit = fitSamples(writes)
		predicted := predictMakespan(ops, res.ReadFit, res.WriteFit)

		eT := des.NewEngine(cfg.Seed + int64(iter) + 1)
		fsT := pfs.New(eT, cfg.Target)
		colT := trace.NewCollector()
		targetRes, err := replayTraced(eT, fsT, ops, colT)
		if err != nil {
			return nil, fmt.Errorf("core: target simulation: %w", err)
		}
		relErr := relError(predicted, targetRes.Makespan)
		res.Iterations = append(res.Iterations, Iteration{
			Index:             iter,
			PredictedMakespan: predicted,
			MeasuredMakespan:  targetRes.Makespan,
			RelError:          relErr,
			TrainingSamples:   len(reads) + len(writes),
		})
		if relErr <= cfg.Tolerance {
			res.Converged = true
			break
		}
		// Feedback: fold the target measurements into the training set.
		r2, w2 := harvestSamples(colT.Records())
		reads, writes = r2, w2 // target data supersedes baseline data
	}
	return res, nil
}

// replayTraced replays ops with a traced POSIX environment.
func replayTraced(e *des.Engine, fs *pfs.FS, ops [][]skeleton.ConcreteOp, col *trace.Collector) (replay.Result, error) {
	return replay.RunTraced(e, fs, ops, replay.Options{Timed: true}, col)
}

// harvestSamples extracts (size, latency) pairs per op kind from POSIX
// records.
func harvestSamples(recs []trace.Record) (reads, writes []opSample) {
	for _, r := range recs {
		if r.Layer != trace.LayerPOSIX {
			continue
		}
		s := opSample{size: float64(r.Size), latency: float64(r.Duration())}
		switch r.Op {
		case "read":
			reads = append(reads, s)
		case "write":
			writes = append(writes, s)
		}
	}
	return reads, writes
}

// fitSamples fits latency = a + b*size.
func fitSamples(samples []opSample) stats.LinearFit {
	if len(samples) < 2 {
		return stats.LinearFit{}
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i], ys[i] = s.size, s.latency
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		// Degenerate sizes: fall back to mean latency.
		return stats.LinearFit{Intercept: stats.Mean(ys)}
	}
	return fit
}

// predictMakespan estimates the workload makespan as the max over ranks of
// summed predicted op latencies plus think time.
func predictMakespan(ops [][]skeleton.ConcreteOp, readFit, writeFit stats.LinearFit) des.Time {
	var makespan des.Time
	for _, rankOps := range ops {
		var t float64
		for _, op := range rankOps {
			t += float64(op.Think)
			switch op.Op {
			case "read":
				t += clampNonNeg(readFit.Predict(float64(op.Size)))
			case "write":
				t += clampNonNeg(writeFit.Predict(float64(op.Size)))
			}
		}
		if d := des.Time(t); d > makespan {
			makespan = d
		}
	}
	return makespan
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func relError(pred, meas des.Time) float64 {
	if meas == 0 {
		return 0
	}
	d := float64(pred - meas)
	if d < 0 {
		d = -d
	}
	return d / float64(meas)
}
