package pioeval_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/monitor"
	"pioeval/internal/pfs"
	"pioeval/internal/predict"
	"pioeval/internal/replay"
	"pioeval/internal/skeleton"
	"pioeval/internal/stats"
	"pioeval/internal/trace"
	"pioeval/internal/workload"
)

// BenchmarkClaimReadWriteShift reproduces the §V finding (Patel et al.,
// SC'19): as emerging workloads (DL training, analytics) join traditional
// checkpoint jobs, the storage system stops being write-dominated.
// Reported: read fraction of bytes moved at 0%, 50%, 100% emerging share.
func BenchmarkClaimReadWriteShift(b *testing.B) {
	readFraction := func(emergingShare float64) float64 {
		e := des.NewEngine(201)
		fs := pfs.New(e, ssdCluster())
		nJobs := 4
		nEmerging := int(emergingShare * float64(nJobs))
		for j := 0; j < nJobs; j++ {
			if j < nEmerging {
				h := workload.NewHarness(e, fs, 2, fmt.Sprintf("dl%d", j), nil)
				workload.RunDL(h, workload.DLConfig{
					Workers: 2, Samples: 256, SampleSize: 64 << 10,
					SamplesPerFile: 64, Epochs: 3, Shuffle: true,
					Path: fmt.Sprintf("/ds%d", j),
				})
			} else {
				h := workload.NewHarness(e, fs, 2, fmt.Sprintf("ck%d", j), nil)
				workload.RunCheckpoint(h, workload.CheckpointConfig{
					Ranks: 2, BytesPerRank: 16 << 20, Steps: 3,
					Path: fmt.Sprintf("/ck%d", j),
				})
			}
		}
		r, w := fs.TotalBytes()
		if r+w == 0 {
			return 0
		}
		return float64(r) / float64(r+w)
	}
	for i := 0; i < b.N; i++ {
		f0 := readFraction(0)
		f50 := readFraction(0.5)
		f100 := readFraction(1)
		if !(f0 < f50 && f50 < f100) {
			b.Fatalf("read fraction not increasing with emerging share: %.2f %.2f %.2f", f0, f50, f100)
		}
		if f0 > 0.1 {
			b.Fatalf("pure checkpoint should be write-dominated, read frac %.2f", f0)
		}
		if f100 < 0.5 {
			b.Fatalf("pure DL should be read-dominated, read frac %.2f", f100)
		}
		b.ReportMetric(f0, "readfrac_0pct")
		b.ReportMetric(f50, "readfrac_50pct")
		b.ReportMetric(f100, "readfrac_100pct")
	}
}

// BenchmarkClaimDLRandomSmall reproduces §V-B (Chowdhury et al.): DL
// training's randomly shuffled small reads achieve a fraction of the
// bandwidth the same PFS delivers for large sequential I/O. Reported:
// sequential MB/s, shuffled-DL MB/s, gap factor.
func BenchmarkClaimDLRandomSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eSeq := des.NewEngine(202)
		hSeq := workload.NewHarness(eSeq, pfs.New(eSeq, hddCluster()), 4, "ior", nil)
		ior := workload.RunIOR(hSeq, workload.IORConfig{
			Ranks: 4, BlockSize: 16 << 20, TransferSize: 4 << 20,
			SharedFile: false, ReadBack: true, StripeCount: 1, StripeSize: 1 << 20,
		})

		eDL := des.NewEngine(202)
		hDL := workload.NewHarness(eDL, pfs.New(eDL, hddCluster()), 4, "dl", nil)
		dl := workload.RunDL(hDL, workload.DLConfig{
			Workers: 4, Samples: 512, SampleSize: 128 << 10,
			SamplesPerFile: 128, Epochs: 1, Shuffle: true,
		})

		gap := ior.ReadMBps / dl.ReadMBps
		if gap <= 2 {
			b.Fatalf("DL random small reads should be >2x slower: seq %.1f vs dl %.1f MB/s", ior.ReadMBps, dl.ReadMBps)
		}
		b.ReportMetric(ior.ReadMBps, "seq_MB/s")
		b.ReportMetric(dl.ReadMBps, "dl_MB/s")
		b.ReportMetric(gap, "gap_x")
	}
}

// BenchmarkClaimWorkflowMetadata reproduces §V-C: data-intensive workflows
// are metadata-intensive and small-transaction compared to bulk-synchronous
// checkpoints. Reported: MDS ops per MB for each.
func BenchmarkClaimWorkflowMetadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eW := des.NewEngine(203)
		fsW := pfs.New(eW, ssdCluster())
		wf := workload.RunWorkflow(eW, fsW, workload.ChainWorkflow(8, 8, 256<<10), nil)

		eC := des.NewEngine(203)
		fsC := pfs.New(eC, ssdCluster())
		h := workload.NewHarness(eC, fsC, 4, "ck", nil)
		before := fsC.MDSStats().TotalOps
		ck := workload.RunCheckpoint(h, workload.CheckpointConfig{Ranks: 4, BytesPerRank: 16 << 20, Steps: 2})
		ckOps := fsC.MDSStats().TotalOps - before
		ckPerMB := float64(ckOps) / (float64(ck.TotalBytes) / 1e6)

		if wf.MetaOpsPerMB <= 3*ckPerMB {
			b.Fatalf("workflow %.2f ops/MB should dwarf checkpoint %.2f ops/MB", wf.MetaOpsPerMB, ckPerMB)
		}
		b.ReportMetric(wf.MetaOpsPerMB, "wf_ops/MB")
		b.ReportMetric(ckPerMB, "ckpt_ops/MB")
		b.ReportMetric(wf.MetaOpsPerMB/ckPerMB, "ratio_x")
	}
}

// accessTimeDataset runs single-rank sequential reads of a fixed volume at
// varying transfer sizes on the HDD cluster and returns (transferSize) ->
// total read time samples — the file-access-time prediction problem of
// Schmid & Kunkel. The response is nonlinear in transfer size
// (ops * latency + volume/bandwidth ~ a/s + b).
func accessTimeDataset(sizes []int64, volume int64) ([][]float64, []float64) {
	var X [][]float64
	var y []float64
	for _, ts := range sizes {
		e := des.NewEngine(204)
		fs := pfs.New(e, hddCluster())
		c := fs.NewClient("cn0")
		var dur des.Time
		ts := ts
		e.Spawn("app", func(p *des.Proc) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			h.Write(p, 0, volume)
			start := p.Now()
			for off := int64(0); off < volume; off += ts {
				h.Read(p, off, ts)
			}
			dur = p.Now() - start
			h.Close(p)
		})
		e.Run(des.MaxTime)
		X = append(X, []float64{float64(ts)})
		y = append(y, dur.Seconds()*1e3) // ms
	}
	return X, y
}

// BenchmarkClaimNNvsLinear reproduces §IV-B2 (Schmid & Kunkel): a neural
// network predicts file access times with lower error than a linear model.
// Reported: NN MAE, linear MAE, improvement factor.
func BenchmarkClaimNNvsLinear(b *testing.B) {
	var trainSizes, testSizes []int64
	for s := int64(16 << 10); s <= 4<<20; s = s * 5 / 4 {
		trainSizes = append(trainSizes, s)
		testSizes = append(testSizes, s*9/8)
	}
	Xtr, ytr := accessTimeDataset(trainSizes, 16<<20)
	Xte, yte := accessTimeDataset(testSizes, 16<<20)
	for i := 0; i < b.N; i++ {
		nn := predict.NewNN(1, predict.DefaultNNConfig())
		if err := nn.Train(Xtr, ytr); err != nil {
			b.Fatal(err)
		}
		lin, err := stats.MultipleRegression(Xtr, ytr)
		if err != nil {
			b.Fatal(err)
		}
		nnMAE := predict.MAE(nn.Predict, Xte, yte)
		linMAE := predict.MAE(lin.Predict, Xte, yte)
		if nnMAE >= linMAE {
			b.Fatalf("NN MAE %.3f should beat linear %.3f on the nonlinear access-time surface", nnMAE, linMAE)
		}
		b.ReportMetric(nnMAE, "nn_mae_ms")
		b.ReportMetric(linMAE, "lin_mae_ms")
		b.ReportMetric(linMAE/nnMAE, "improvement_x")
	}
}

// iorTimeDataset sweeps IOR parameters (ranks, transfer size, pattern,
// shared file) on the simulator and returns feature vectors with the
// resulting write times — the multi-feature performance-prediction problem
// of Sun et al.
func iorTimeDataset(seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	var X [][]float64
	var y []float64
	for n := 0; n < 48; n++ {
		ranks := 2 << rng.Intn(3)                // 2, 4, 8
		ts := int64(64<<10) << rng.Intn(5)       // 64K .. 1M
		pattern := workload.Pattern(rng.Intn(2)) // sequential or strided
		shared := rng.Intn(2) == 1
		e := des.NewEngine(205)
		h := workload.NewHarness(e, pfs.New(e, hddCluster()), ranks, fmt.Sprintf("sw%d", n), nil)
		rep := workload.RunIOR(h, workload.IORConfig{
			Ranks: ranks, BlockSize: 4 << 20, TransferSize: ts,
			Pattern: pattern, SharedFile: shared,
		})
		X = append(X, []float64{float64(ranks), float64(ts), float64(pattern), boolTo(shared)})
		y = append(y, rep.WriteTime.Seconds()*1e3)
	}
	return X, y
}

func boolTo(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkClaimRandomForest reproduces §IV-B2 (Sun et al.): a random
// forest predicts I/O time across inputs and scales better than a linear
// model. Reported: RF MAE, linear MAE, improvement factor.
func BenchmarkClaimRandomForest(b *testing.B) {
	Xtr, ytr := iorTimeDataset(1)
	Xte, yte := iorTimeDataset(2)
	for i := 0; i < b.N; i++ {
		rf, err := predict.TrainForest(Xtr, ytr, predict.DefaultForestConfig())
		if err != nil {
			b.Fatal(err)
		}
		lin, err := stats.MultipleRegression(Xtr, ytr)
		if err != nil {
			b.Fatal(err)
		}
		rfMAE := predict.MAE(rf.Predict, Xte, yte)
		linMAE := predict.MAE(lin.Predict, Xte, yte)
		if rfMAE >= linMAE {
			b.Fatalf("RF MAE %.3f should beat linear %.3f", rfMAE, linMAE)
		}
		b.ReportMetric(rfMAE, "rf_mae_ms")
		b.ReportMetric(linMAE, "lin_mae_ms")
		b.ReportMetric(linMAE/rfMAE, "improvement_x")
	}
}

// checkpointTraceRecords records a looped checkpoint workload and returns
// its POSIX trace.
func checkpointTraceRecords(ranks, steps int) []trace.Record {
	e := des.NewEngine(206)
	fs := pfs.New(e, ssdCluster())
	col := trace.NewCollector()
	h := workload.NewHarness(e, fs, ranks, "tr", col)
	workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks: ranks, BytesPerRank: 4 << 20, Steps: steps, TransferSize: 1 << 20,
		ReuseFile: true,
	})
	return col.Records()
}

// BenchmarkClaimTraceCompression reproduces §IV-B3 (Hao et al.): suffix-
// structure-guided folding compresses looped traces by an order of
// magnitude, and the generated skeleton replays the same I/O. Reported:
// compression ratio, replay byte fidelity.
func BenchmarkClaimTraceCompression(b *testing.B) {
	recs := checkpointTraceRecords(4, 16)
	for i := 0; i < b.N; i++ {
		rankOps := replay.FromTrace(recs)
		var ratioSum float64
		var origBytes, skelBytes int64
		folded := make([][]skeleton.ConcreteOp, len(rankOps))
		for r, ops := range rankOps {
			toks := skeleton.TokenizeQ(filterRank(recs, r), 0)
			prog := skeleton.Fold(toks)
			ratioSum += prog.CompressionRatio()
			folded[r] = prog.Ops()
			for _, op := range ops {
				if op.Op == "write" {
					origBytes += op.Size
				}
			}
			for _, op := range folded[r] {
				if op.Op == "write" {
					skelBytes += op.Size
				}
			}
		}
		ratio := ratioSum / float64(len(rankOps))
		if ratio < 5 {
			b.Fatalf("compression ratio %.1f, want >= 5 on a 16-step loop", ratio)
		}
		if skelBytes != origBytes {
			b.Fatalf("skeleton bytes %d != original %d", skelBytes, origBytes)
		}
		// The longest repeated phrase should span at least one loop body.
		syms := skeleton.TokensToSymbols(skeleton.TokenizeQ(filterRank(recs, 0), 0))
		_, lrs := skeleton.LongestRepeat(syms)
		b.ReportMetric(ratio, "compression_x")
		b.ReportMetric(float64(lrs), "longest_repeat")
		b.ReportMetric(1.0, "byte_fidelity")
	}
}

func filterRank(recs []trace.Record, rank int) []trace.Record {
	return trace.ByRank(recs, rank)
}

// BenchmarkClaimExtrapolation reproduces §IV-A1 (ScalaIOExtrap): a trace
// recorded at 4 ranks extrapolates to 16 ranks; the extrapolated replay's
// makespan tracks a direct 16-rank run. Reported: ratio.
func BenchmarkClaimExtrapolation(b *testing.B) {
	record := func(ranks int) ([]trace.Record, des.Time) {
		e := des.NewEngine(207)
		fs := pfs.New(e, ssdCluster())
		col := trace.NewCollector()
		h := workload.NewHarness(e, fs, ranks, "xp", col)
		rep := workload.RunCheckpoint(h, workload.CheckpointConfig{
			Ranks: ranks, BytesPerRank: 4 << 20, Steps: 4,
			SharedFile: true, ComputeTime: 10 * des.Millisecond,
		})
		return col.Records(), rep.Makespan
	}
	smallRecs, _ := record(4)
	_, directMakespan := record(16)
	for i := 0; i < b.N; i++ {
		small := replay.FromTrace(smallRecs)
		big, err := replay.Extrapolate(small, 16)
		if err != nil {
			b.Fatal(err)
		}
		e := des.NewEngine(208)
		res, err := replay.Run(e, pfs.New(e, ssdCluster()), big, replay.Options{Timed: true})
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(res.Makespan) / float64(directMakespan)
		if ratio < 0.5 || ratio > 2 {
			b.Fatalf("extrapolated/direct makespan ratio %.2f outside [0.5, 2]", ratio)
		}
		b.ReportMetric(res.Makespan.Seconds()*1e3, "extrap_ms")
		b.ReportMetric(directMakespan.Seconds()*1e3, "direct_ms")
		b.ReportMetric(ratio, "ratio")
	}
}

// BenchmarkClaimCollectiveIO reproduces §IV-C / C8: two-phase collective
// MPI-IO beats independent I/O on fine-grained strided shared-file access,
// and the advantage shrinks as transfers grow. Reported: speedup at 16KB
// and at 1MB transfers.
func BenchmarkClaimCollectiveIO(b *testing.B) {
	speedup := func(transfer int64) float64 {
		run := func(collective bool) float64 {
			e := des.NewEngine(209)
			h := workload.NewHarness(e, pfs.New(e, hddCluster()), 8, "c8", nil)
			rep := workload.RunIOR(h, workload.IORConfig{
				Ranks: 8, BlockSize: 2 << 20, TransferSize: transfer,
				SharedFile: true, Pattern: workload.Strided, Collective: collective,
			})
			return rep.WriteMBps
		}
		return run(true) / run(false)
	}
	for i := 0; i < b.N; i++ {
		small := speedup(16 << 10)
		large := speedup(1 << 20)
		if small <= 1 {
			b.Fatalf("collective should win at 16KB transfers, speedup %.2f", small)
		}
		if small <= large {
			b.Fatalf("collective advantage should shrink with transfer size: %.2f vs %.2f", small, large)
		}
		b.ReportMetric(small, "speedup_16KB")
		b.ReportMetric(large, "speedup_1MB")
	}
}

// BenchmarkClaimComputeStorageGap reproduces the §I/§VI premise: as compute
// gets faster while storage stays fixed, the I/O fraction of runtime grows.
// Reported: I/O fraction at 1x, 4x, 16x compute speed.
func BenchmarkClaimComputeStorageGap(b *testing.B) {
	ioFraction := func(computeSpeedup int) float64 {
		e := des.NewEngine(210)
		h := workload.NewHarness(e, pfs.New(e, hddCluster()), 4, "gap", nil)
		rep := workload.RunCheckpoint(h, workload.CheckpointConfig{
			Ranks: 4, BytesPerRank: 8 << 20, Steps: 3,
			ComputeTime: 400 * des.Millisecond / des.Time(computeSpeedup),
		})
		return rep.IOFraction
	}
	for i := 0; i < b.N; i++ {
		f1, f4, f16 := ioFraction(1), ioFraction(4), ioFraction(16)
		if !(f1 < f4 && f4 < f16) {
			b.Fatalf("I/O fraction should grow with compute speed: %.3f %.3f %.3f", f1, f4, f16)
		}
		b.ReportMetric(f1, "iofrac_1x")
		b.ReportMetric(f4, "iofrac_4x")
		b.ReportMetric(f16, "iofrac_16x")
	}
}

// BenchmarkClaimEndToEndCorrelation reproduces §IV-A2/C10: joining job-level
// activity with server-side sampled rates identifies interfering job pairs.
// Reported: interferences found among concurrent vs disjoint pairs.
func BenchmarkClaimEndToEndCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := des.NewEngine(211)
		fs := pfs.New(e, hddCluster())
		sampler := monitor.NewSampler(e, fs, 5*des.Millisecond, 10*des.Second)
		var jobs []monitor.JobActivity
		// Jobs A and B run concurrently; job C runs after both.
		runJob := func(name string, delay des.Time) {
			c := fs.NewClient("cn" + name)
			e.SpawnAt(delay, name, func(p *des.Proc) {
				start := p.Now()
				h, _ := c.Create(p, "/"+name, 0, 0)
				for k := int64(0); k < 24; k++ {
					h.Write(p, k*(1<<20), 1<<20)
				}
				h.Close(p)
				jobs = append(jobs, monitor.JobActivity{JobID: name, Start: start, End: p.Now()})
			})
		}
		runJob("A", 0)
		runJob("B", 0)
		runJob("C", 2*des.Second)
		e.Run(des.MaxTime)
		sampler.Stop()
		inter := monitor.Correlate(jobs, sampler.DeriveRates(), 0.5)
		if len(inter) != 1 {
			b.Fatalf("expected exactly the A-B interference, got %+v", inter)
		}
		b.ReportMetric(float64(len(inter)), "pairs_found")
		b.ReportMetric(inter[0].PeakUtil, "peak_util")
	}
}
