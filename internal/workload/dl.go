package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/posixio"
)

// DLConfig models a DLIO-like deep-learning training input pipeline: a
// dataset of samples packed into files, read in randomly shuffled
// mini-batches by parallel workers each epoch — the §V-B access pattern
// (highly random small reads) that stresses PFSs built for large
// sequential I/O.
type DLConfig struct {
	Workers        int
	Samples        int   // total dataset samples
	SampleSize     int64 // bytes per sample
	SamplesPerFile int
	BatchSize      int
	Epochs         int
	Shuffle        bool
	// ComputePerBatch models the training step after each batch is read.
	ComputePerBatch des.Time
	Path            string
}

func (c DLConfig) withDefaults() DLConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Samples <= 0 {
		c.Samples = 1024
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 128 << 10
	}
	if c.SamplesPerFile <= 0 {
		c.SamplesPerFile = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Path == "" {
		c.Path = "/dataset"
	}
	return c
}

// DLReport summarizes the training-I/O run.
type DLReport struct {
	Config        DLConfig
	GenTime       des.Time // dataset generation (write) time
	EpochTime     []des.Time
	SamplesPerSec float64 // steady-state read throughput in samples/s
	ReadMBps      float64
	TotalRead     int64
	Makespan      des.Time
}

// RunDL generates the dataset, then trains for the configured epochs.
func RunDL(h *Harness, cfg DLConfig) DLReport {
	cfg = cfg.withDefaults()
	rep := DLReport{Config: cfg, EpochTime: make([]des.Time, cfg.Epochs)}
	numFiles := (cfg.Samples + cfg.SamplesPerFile - 1) / cfg.SamplesPerFile
	fileOf := func(sample int) (string, int64) {
		f := sample / cfg.SamplesPerFile
		idx := sample % cfg.SamplesPerFile
		return fmt.Sprintf("%s/file%d", cfg.Path, f), int64(idx) * cfg.SampleSize
	}

	var genEnd des.Time
	epochStart := make([]des.Time, cfg.Epochs)
	end := h.Run(func(r *mpi.Rank, env *posixio.Env) {
		p := r.Proc()
		// Dataset generation: workers write disjoint files sequentially.
		if r.ID() == 0 {
			_ = env.Mkdir(p, cfg.Path)
		}
		r.Barrier()
		for f := r.ID(); f < numFiles; f += r.Size() {
			samples := cfg.SamplesPerFile
			if f == numFiles-1 {
				if rem := cfg.Samples % cfg.SamplesPerFile; rem != 0 {
					samples = rem
				}
			}
			fd, _ := env.Open(p, fmt.Sprintf("%s/file%d", cfg.Path, f), posixio.OCreate)
			_, _ = env.Pwrite(p, fd, 0, int64(samples)*cfg.SampleSize)
			_ = env.Close(p, fd)
		}
		r.Barrier()
		if r.ID() == 0 {
			genEnd = r.Now()
		}

		// Training epochs.
		rng := h.Eng.RNG().Stream("dl.shuffle")
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			if r.ID() == 0 {
				epochStart[epoch] = r.Now()
			}
			// Sample order: with shuffling, an epoch-global shuffled
			// order with workers striding through it (distributed
			// sampler). Without shuffling, each worker reads a
			// contiguous shard sequentially — how sharded loaders
			// behave when shuffling is off.
			order := make([]int, cfg.Samples)
			for i := range order {
				order[i] = i
			}
			var mine []int
			if cfg.Shuffle {
				rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
				for i := r.ID(); i < len(order); i += r.Size() {
					mine = append(mine, order[i])
				}
			} else {
				per := (cfg.Samples + r.Size() - 1) / r.Size()
				lo := r.ID() * per
				hi := lo + per
				if hi > cfg.Samples {
					hi = cfg.Samples
				}
				mine = order[lo:hi]
			}
			fds := map[string]int{}
			batchCount := 0
			for _, sample := range mine {
				path, off := fileOf(sample)
				fd, ok := fds[path]
				if !ok {
					fd, _ = env.Open(p, path, 0)
					fds[path] = fd
				}
				_, _ = env.Pread(p, fd, off, cfg.SampleSize)
				rep.TotalRead += cfg.SampleSize
				batchCount++
				if batchCount%cfg.BatchSize == 0 && cfg.ComputePerBatch > 0 {
					r.Compute(cfg.ComputePerBatch)
				}
			}
			for _, fd := range fds {
				_ = env.Close(p, fd)
			}
			r.Barrier()
			if r.ID() == 0 {
				rep.EpochTime[epoch] = r.Now() - epochStart[epoch]
			}
		}
	})
	rep.Makespan = end
	rep.GenTime = genEnd
	var trainTime des.Time
	for _, d := range rep.EpochTime {
		trainTime += d
	}
	if trainTime > 0 {
		rep.SamplesPerSec = float64(cfg.Samples*cfg.Epochs) / trainTime.Seconds()
		rep.ReadMBps = bwMBps(rep.TotalRead, trainTime)
	}
	return rep
}
