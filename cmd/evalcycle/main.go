// Command evalcycle runs the paper's Figure-4 iterative evaluation loop:
// measure a workload on a baseline cluster, model it, predict and simulate
// a target cluster, and feed measurements back until the prediction
// converges.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pioeval/internal/blockdev"
	"pioeval/internal/core"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
)

const defaultScript = `
workload "default" {
    ranks 4
    loop 6 {
        compute 4ms
        write "/out" offset=rank*16MB size=4MB chunk=1MB
        read "/out" offset=rank*16MB size=1MB chunk=256KB
    }
}
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalcycle: ")
	fs := flag.NewFlagSet("evalcycle", flag.ExitOnError)
	baseDev := fs.String("baseline", "ssd", "baseline OST device: hdd, ssd, nvme")
	targetDev := fs.String("target", "hdd", "target OST device: hdd, ssd, nvme")
	iters := fs.Int("iterations", 4, "max feedback iterations")
	tol := fs.Float64("tolerance", 0.25, "relative error tolerance")
	seed := fs.Int64("seed", 42, "simulation seed")
	_ = fs.Parse(os.Args[1:])

	script := defaultScript
	if fs.NArg() == 1 {
		b, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		script = string(b)
	}
	wl, err := iolang.Parse(script)
	if err != nil {
		log.Fatal(err)
	}

	mkCfg := func(dev string) pfs.Config {
		cfg := pfs.DefaultConfig()
		cfg.NumIONodes = 0
		switch dev {
		case "hdd":
			cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultHDD() }
		case "ssd":
			cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
		case "nvme":
			cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultNVMe() }
		default:
			log.Fatalf("unknown device %q", dev)
		}
		return cfg
	}

	res, err := core.RunCycle(core.CycleConfig{
		Seed:          *seed,
		Baseline:      mkCfg(*baseDev),
		Target:        mkCfg(*targetDev),
		Source:        core.SyntheticSource{Workload: wl},
		MaxIterations: *iters,
		Tolerance:     *tol,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Phase 1 (measurement, %s baseline): %d trace records, makespan %v\n",
		*baseDev, res.TraceRecords, res.BaselineMakespan)
	fmt.Printf("  characterization: rw-ratio %.2f, seq-fraction %.2f, dominant access %s\n",
		res.ReadWriteRatio, res.SeqFraction, res.DominantSize)
	fmt.Printf("Phase 2 (modeling): skeleton compression %.1fx, write fit latency(ns) = %.3g + %.3g*size\n",
		res.SkeletonRatio, res.WriteFit.Intercept, res.WriteFit.Slope)
	fmt.Printf("Phase 3 (simulation of %s target, with feedback):\n", *targetDev)
	for _, it := range res.Iterations {
		fmt.Printf("  iter %d: predicted %v, measured %v, rel.err %.3f (%d training samples)\n",
			it.Index, it.PredictedMakespan, it.MeasuredMakespan, it.RelError, it.TrainingSamples)
	}
	if res.Converged {
		fmt.Printf("converged within tolerance %.2f\n", *tol)
	} else {
		fmt.Printf("did not converge within %d iterations\n", *iters)
	}
}
