package pioeval_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestPackageDocComments enforces the documentation bar the repository
// holds itself to: every internal/ package carries a package doc comment
// (role, key types, consumers — see internal/trace or internal/des for
// the style).
func TestPackageDocComments(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("expected the full internal/ tree, found %d packages", len(dirs))
	}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package "+name) {
					documented = true
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package doc comment", name, dir)
			}
		}
	}
}

// mdLink matches inline markdown links and captures the destination.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve checks that every intra-repository link in the
// top-level documentation resolves to an existing file or directory, so
// the README's architecture map and the EXPERIMENTS runbook can't rot
// silently.
func TestMarkdownLinksResolve(t *testing.T) {
	for _, doc := range []string{"README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md"} {
		b, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			dest := m[1]
			if strings.HasPrefix(dest, "http://") || strings.HasPrefix(dest, "https://") ||
				strings.HasPrefix(dest, "mailto:") || strings.HasPrefix(dest, "#") {
				continue
			}
			dest, _, _ = strings.Cut(dest, "#") // drop anchors
			if dest == "" {
				continue
			}
			if _, err := os.Stat(dest); err != nil {
				t.Errorf("%s: broken intra-repo link %q", doc, m[1])
			}
		}
	}
}
