package validate

import (
	"strings"
	"testing"

	"pioeval/internal/campaign"
	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/mpiio"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// TestInvariantsCleanRun runs a full mixed workload through the iolang
// interpreter with every checker armed and expects zero violations plus
// evidence that all hook points actually fired.
func TestInvariantsCleanRun(t *testing.T) {
	const src = `workload "clean" {
	ranks 4
	stripe count=2 size=65536
	write "/a" offset=rank*262144 size=262144 chunk=65536
	barrier
	read "/a" offset=rank*262144 size=131072
	fsync "/a"
	loop 3 {
		write "/b" offset=rank*65536+iter*262144 size=65536
	}
	stat "/a"
	close "/a"
}`
	res := RunSource(11, campaign.Point{Ranks: 4, Device: "ssd", StripeCount: 2, StripeSize: 65536}, src)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %s", v)
	}
	st := res.Stats
	if st.Dispatches == 0 || st.TraceRecords == 0 || st.ClientOps == 0 || st.OSTEvents == 0 {
		t.Fatalf("checker saw no evidence on some hook: %+v", st)
	}
}

// TestInvariantsCatchInjectedSkew proves the conservation checker catches
// an accounting bug, injected through the test-only skew hook.
func TestInvariantsCatchInjectedSkew(t *testing.T) {
	e := des.NewEngine(3)
	fs := pfs.New(e, pfs.DefaultConfig())
	inv := Attach(e, fs, nil)
	inv.ostSkew = 4096 // the deliberate bug: OSTs "receive" 4 KiB extra
	c := fs.NewClient("cn0")
	e.Spawn("w", func(p *des.Proc) {
		h, err := c.Create(p, "/f", 0, 0)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := h.Write(p, 0, 1<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := h.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	e.Run(des.MaxTime)
	vios := inv.Finish()
	if !hasInvariant(vios, "write-conservation") {
		t.Fatalf("injected 4096-byte skew not caught; violations: %v", vios)
	}
}

// TestInvariantsCatchLeakedWriteBehind exercises a realistic conservation
// bug: with write-behind enabled, a handle abandoned without Fsync/Close
// leaves dirty bytes that never reach an OST. The client-boundary tally
// must disagree with the OST tally.
func TestInvariantsCatchLeakedWriteBehind(t *testing.T) {
	cfg := pfs.DefaultConfig()
	cfg.ClientWriteBehind = 8 << 20
	e := des.NewEngine(5)
	fs := pfs.New(e, cfg)
	inv := Attach(e, fs, nil)
	c := fs.NewClient("cn0")
	e.Spawn("leaker", func(p *des.Proc) {
		h, err := c.Create(p, "/leak", 0, 0)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := h.Write(p, 0, 1<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		// No Fsync, no Close: the dirty megabyte is lost.
	})
	e.Run(des.MaxTime)
	vios := inv.Finish()
	if !hasInvariant(vios, "write-conservation") {
		t.Fatalf("leaked write-behind buffer not caught; violations: %v", vios)
	}
}

// TestInvariantsMPIIOLayerTallies runs a collective MPI-IO workload with
// the collector hooked up and checks the MPI-IO and POSIX byte tallies:
// both layers must be populated and ordered (hole-free extents make the
// volumes equal here).
func TestInvariantsMPIIOLayerTallies(t *testing.T) {
	const (
		ranks = 4
		slice = int64(64 << 10)
		n     = 8
	)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	e := des.NewEngine(7)
	fs := pfs.New(e, cfg)
	col := trace.NewCollector()
	inv := Attach(e, fs, col)
	w := mpi.NewWorld(e, ranks, mpi.DefaultOptions())
	envs := make([]*posixio.Env, ranks)
	for i := range envs {
		envs[i] = posixio.NewEnv(storage.Direct(fs.NewClient("cn"+string(rune('0'+i)))), i, col)
	}
	f := mpiio.NewFile(w, envs, "/coll", mpiio.Hints{CollNodes: 2}, col)
	w.Spawn(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		exts := make([]mpiio.Extent, n)
		for j := 0; j < n; j++ {
			exts[j] = mpiio.Extent{Off: int64(j)*ranks*slice + int64(r.ID())*slice, Size: slice}
		}
		if err := f.WriteExtentsAll(r, exts); err != nil {
			t.Errorf("collective write: %v", err)
		}
		if err := f.Close(r); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	e.Run(des.MaxTime)
	for _, v := range inv.Finish() {
		t.Errorf("unexpected violation: %s", v)
	}
	want := int64(ranks) * int64(n) * slice
	if inv.mpiioWrite != want {
		t.Errorf("MPI-IO write tally = %d, want %d", inv.mpiioWrite, want)
	}
	if inv.posixWrite != want {
		t.Errorf("POSIX write tally = %d, want %d (hole-free extents aggregate exactly)", inv.posixWrite, want)
	}
	if inv.clientWrite != want || inv.ostWrite != want {
		t.Errorf("client/OST tallies = %d/%d, want %d", inv.clientWrite, inv.ostWrite, want)
	}
}

// TestInvariantsFaultedRunNotArmed checks that injected faults disarm the
// strict equality checks (lost RPC bytes are legitimate) while the
// no-invented-bytes direction still holds.
func TestInvariantsFaultedRunNotArmed(t *testing.T) {
	cfg := pfs.DefaultConfig()
	cfg.Resilience = pfs.DefaultResilience()
	e := des.NewEngine(9)
	fs := pfs.New(e, cfg)
	inv := Attach(e, fs, nil)
	fs.SetTransientErrorRate(0.5)
	c := fs.NewClient("cn0")
	e.Spawn("w", func(p *des.Proc) {
		h, err := c.Create(p, "/f", 0, 0)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		for off := int64(0); off < 4<<20; off += 1 << 20 {
			_ = h.Write(p, off, 1<<20) // failures are the point
		}
		_ = h.Close(p)
	})
	e.Run(des.MaxTime)
	for _, v := range inv.Finish() {
		t.Errorf("faulted run must not trip conservation: %s", v)
	}
}

// TestInvariantsRecordChecks feeds hand-built records through OnRecord to
// pin the per-record rules.
func TestInvariantsRecordChecks(t *testing.T) {
	inv := &Invariants{lastEnd: map[[2]int]des.Time{}}
	inv.OnRecord(trace.Record{Layer: trace.LayerPOSIX, Rank: 0, Op: "write", Size: 10, Start: 5, End: 9})
	if len(inv.Violations()) != 0 {
		t.Fatalf("valid record flagged: %v", inv.Violations())
	}
	inv.OnRecord(trace.Record{Layer: trace.LayerPOSIX, Rank: 0, Op: "write", Size: 10, Start: 10, End: 8})
	if !hasInvariant(inv.Violations(), "record-time") {
		t.Errorf("End < Start not flagged")
	}
	inv = &Invariants{lastEnd: map[[2]int]des.Time{}}
	inv.OnRecord(trace.Record{Layer: trace.LayerPOSIX, Rank: 1, Op: "read", Size: 4, Start: 0, End: 100})
	inv.OnRecord(trace.Record{Layer: trace.LayerPOSIX, Rank: 1, Op: "read", Size: 4, Start: 50, End: 120})
	if !hasInvariant(inv.Violations(), "record-causality") {
		t.Errorf("overlapping same-rank records not flagged")
	}
	// A different rank at the same times is fine.
	inv.OnRecord(trace.Record{Layer: trace.LayerPOSIX, Rank: 2, Op: "read", Size: 4, Start: 50, End: 120})
	if n := len(inv.Violations()); n != 1 {
		t.Errorf("cross-rank concurrency flagged: %v", inv.Violations())
	}
}

// TestInvariantsMonotonicityCheck drives onDispatch directly.
func TestInvariantsMonotonicityCheck(t *testing.T) {
	inv := &Invariants{lastEnd: map[[2]int]des.Time{}}
	inv.onDispatch(10, "a")
	inv.onDispatch(10, "b")
	inv.onDispatch(5, "c")
	if !hasInvariant(inv.Violations(), "time-monotonic") {
		t.Fatalf("clock regression not flagged")
	}
}

// TestInvariantsViolationCap checks the retention cap and the summary line.
func TestInvariantsViolationCap(t *testing.T) {
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.DefaultConfig())
	inv := Attach(e, fs, nil)
	for i := 0; i < maxRetained+40; i++ {
		inv.violatef("record-time", "synthetic %d", i)
	}
	vios := inv.Finish()
	var summary bool
	for _, v := range vios {
		if v.Invariant == "checker" && strings.Contains(v.Detail, "dropped") {
			summary = true
		}
	}
	if len(vios) > maxRetained+2 {
		t.Errorf("retained %d violations, cap is %d", len(vios), maxRetained)
	}
	if !summary {
		t.Errorf("missing dropped-violations summary line: %v", vios)
	}
}

// TestInvariantsFinishIdempotent pins that Finish runs shutdown checks once.
func TestInvariantsFinishIdempotent(t *testing.T) {
	e := des.NewEngine(1)
	fs := pfs.New(e, pfs.DefaultConfig())
	inv := Attach(e, fs, nil)
	inv.ostSkew = 1
	a := len(inv.Finish())
	b := len(inv.Finish())
	if a != b {
		t.Fatalf("Finish not idempotent: %d then %d violations", a, b)
	}
}

func hasInvariant(vios []Violation, name string) bool {
	for _, v := range vios {
		if v.Invariant == name {
			return true
		}
	}
	return false
}
