package validate

import (
	"fmt"
	"math/rand"
	"strings"

	"pioeval/internal/campaign"
	"pioeval/internal/des"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/trace"
)

// GStmt is one generated workload statement. It mirrors the iolang
// statement forms the generator emits and is kept structured (rather than
// as source text) so the shrinker can apply semantic reductions.
type GStmt struct {
	// Kind is one of: write, read, fsync, close, stat, barrier, compute,
	// loop.
	Kind string
	// File indexes the flat file namespace ("/p<File>") for I/O ops.
	File int
	// Off/RankStride/IterStride render as offset=Off+rank*RankStride+
	// iter*IterStride (omitting zero terms).
	Off, RankStride, IterStride int64
	// Size and optional Chunk for read/write.
	Size, Chunk int64
	// Dur is the compute duration in simulated nanoseconds.
	Dur int64
	// Count and Body describe a loop.
	Count int
	Body  []GStmt
}

// Case is one generated scenario: an engine seed, a cluster shape (mapped
// to a deployment via campaign.ClusterConfig, exactly as campaign grids
// are), and a generated iolang program.
type Case struct {
	Seed  int64
	Point campaign.Point
	Body  []GStmt
}

// Source renders the case's program as iolang source. Rendering is the
// contract between the structured form and reproduction: a regression test
// replays the rendered text through RunSource.
func (c Case) Source() string {
	var b strings.Builder
	b.WriteString("workload \"prop\" {\n")
	fmt.Fprintf(&b, "\tranks %d\n", c.Point.Ranks)
	fmt.Fprintf(&b, "\tstripe count=%d size=%d\n", c.Point.StripeCount, c.Point.StripeSize)
	renderBody(&b, c.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func renderBody(b *strings.Builder, body []GStmt, depth int) {
	indent := strings.Repeat("\t", depth)
	for _, s := range body {
		switch s.Kind {
		case "barrier":
			fmt.Fprintf(b, "%sbarrier\n", indent)
		case "compute":
			fmt.Fprintf(b, "%scompute %d\n", indent, s.Dur)
		case "loop":
			fmt.Fprintf(b, "%sloop %d {\n", indent, s.Count)
			renderBody(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		case "read", "write":
			fmt.Fprintf(b, "%s%s \"/p%d\" offset=%s size=%d", indent, s.Kind, s.File, renderOffset(s), s.Size)
			if s.Chunk > 0 {
				fmt.Fprintf(b, " chunk=%d", s.Chunk)
			}
			b.WriteByte('\n')
		default: // fsync, close, stat
			fmt.Fprintf(b, "%s%s \"/p%d\"\n", indent, s.Kind, s.File)
		}
	}
}

func renderOffset(s GStmt) string {
	terms := []string{fmt.Sprintf("%d", s.Off)}
	if s.RankStride > 0 {
		terms = append(terms, fmt.Sprintf("rank*%d", s.RankStride))
	}
	if s.IterStride > 0 {
		terms = append(terms, fmt.Sprintf("iter*%d", s.IterStride))
	}
	return strings.Join(terms, "+")
}

// genSizes is the transfer-size menu; stripe sizes use the tail (>= 64 KiB).
var genSizes = []int64{4 << 10, 64 << 10, 256 << 10, 1 << 20}

var genDevices = []string{"hdd", "ssd", "nvme"}

// GenCase deterministically generates a scenario from seed: a cluster
// shape drawn from the campaign axes and an SPMD iolang program (identical
// text per rank, so literal loop bounds and barrier counts always match
// across ranks and generated programs cannot deadlock by construction).
func GenCase(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	p := campaign.Point{
		Ranks:       1 + rng.Intn(4),
		Device:      genDevices[rng.Intn(len(genDevices))],
		StripeCount: 1 + rng.Intn(4),
		StripeSize:  genSizes[1+rng.Intn(len(genSizes)-1)],
	}
	files := 1 + rng.Intn(3)
	return Case{
		Seed:  seed,
		Point: p,
		Body:  genBody(rng, 3+rng.Intn(6), 0, files),
	}
}

func genBody(rng *rand.Rand, n, depth, files int) []GStmt {
	body := make([]GStmt, 0, n)
	for i := 0; i < n; i++ {
		body = append(body, genStmt(rng, depth, files))
	}
	return body
}

func genStmt(rng *rand.Rand, depth, files int) GStmt {
	k := rng.Intn(100)
	switch {
	case k < 35:
		return genIO(rng, "write", files)
	case k < 55:
		return genIO(rng, "read", files)
	case k < 65:
		return GStmt{Kind: "barrier"}
	case k < 75:
		return GStmt{Kind: "compute", Dur: int64(rng.Intn(5)) * 100_000}
	case k < 83:
		return GStmt{Kind: "fsync", File: rng.Intn(files)}
	case k < 88:
		return GStmt{Kind: "close", File: rng.Intn(files)}
	case k < 93:
		return GStmt{Kind: "stat", File: rng.Intn(files)}
	default:
		if depth >= 2 {
			return genIO(rng, "write", files)
		}
		return GStmt{
			Kind:  "loop",
			Count: 1 + rng.Intn(3),
			Body:  genBody(rng, 1+rng.Intn(3), depth+1, files),
		}
	}
}

func genIO(rng *rand.Rand, kind string, files int) GStmt {
	size := genSizes[rng.Intn(len(genSizes))]
	s := GStmt{
		Kind: kind,
		File: rng.Intn(files),
		Off:  int64(rng.Intn(4)) * size,
		Size: size,
	}
	if rng.Intn(2) == 0 {
		s.RankStride = size
	}
	if rng.Intn(3) == 0 {
		s.IterStride = size
	}
	if rng.Intn(4) == 0 {
		s.Chunk = size / 4
	}
	return s
}

// CaseResult is the outcome of running one case with invariants attached.
type CaseResult struct {
	Report     iolang.Report
	Err        error
	Violations []Violation
	Stats      CheckStats
}

// OK reports whether the run completed without error or violation.
func (r CaseResult) OK() bool { return r.Err == nil && len(r.Violations) == 0 }

// RunCase runs the case's rendered program. See RunSource.
func RunCase(c Case) CaseResult { return RunSource(c.Seed, c.Point, c.Source()) }

// RunSource runs an iolang program on the cluster described by p (via
// campaign.ClusterConfig) with the full invariant checker attached, and
// returns the verdict. Regression tests emitted by Failure.Regression call
// this directly with the shrunk program text.
func RunSource(seed int64, p campaign.Point, src string) CaseResult {
	w, err := iolang.Parse(src)
	if err != nil {
		return CaseResult{Err: fmt.Errorf("validate: generated program does not parse: %w", err)}
	}
	e := des.NewEngine(seed)
	fs := pfs.New(e, campaign.ClusterConfig(p))
	col := trace.NewCollector()
	col.SetLimit(1) // records flow through the invariant hook; retention is not needed
	inv := Attach(e, fs, col)
	rep, rerr := iolang.Run(e, fs, w, col)
	return CaseResult{Report: rep, Err: rerr, Violations: inv.Finish(), Stats: inv.Stats()}
}

// Judge decides whether a case reproduces the failure being shrunk; it
// must return true for failing cases. Tests substitute synthetic judges to
// exercise the shrinker without a real simulator defect.
type Judge func(Case) bool

// DefaultJudge fails a case on any runtime error or invariant violation.
func DefaultJudge(c Case) bool { return !RunCase(c).OK() }

// shrinkBudget caps judge invocations per Shrink call; shrinking is
// best-effort and must terminate even on pathological judges.
const shrinkBudget = 400

// Shrink greedily minimizes a failing case: it repeatedly tries semantic
// reductions (drop a statement, unroll a loop, reduce ranks/stripes/sizes,
// simplify the device) and keeps any candidate the judge still fails,
// restarting until a fixed point or the judge budget runs out. The result
// is a locally minimal reproducer — no single reduction can shrink it
// further — suitable for a regression test.
func Shrink(c Case, judge Judge) Case {
	if judge == nil {
		judge = DefaultJudge
	}
	budget := shrinkBudget
	for improved := true; improved && budget > 0; {
		improved = false
		for _, cand := range shrinkCandidates(c) {
			if budget <= 0 {
				break
			}
			budget--
			if judge(cand) {
				c = cand
				improved = true
				break
			}
		}
	}
	return c
}

// shrinkCandidates enumerates one-step reductions, most aggressive first.
func shrinkCandidates(c Case) []Case {
	var out []Case
	for _, nb := range bodyVariants(c.Body) {
		v := c
		v.Body = nb
		out = append(out, v)
	}
	if c.Point.Ranks > 1 {
		v := c
		v.Point.Ranks = 1
		out = append(out, v)
	}
	if c.Point.StripeCount > 1 {
		v := c
		v.Point.StripeCount = 1
		out = append(out, v)
	}
	if c.Point.Device != "hdd" {
		v := c
		v.Point.Device = "hdd"
		out = append(out, v)
	}
	return out
}

// bodyVariants returns the statement-level reductions of a body: each
// single-statement removal, loop unrolls and count reductions, halved
// sizes and durations, and zeroed offsets/strides/chunks. Variants share
// unmodified sub-slices; nothing is mutated in place.
func bodyVariants(b []GStmt) [][]GStmt {
	var out [][]GStmt
	for i := range b {
		removed := make([]GStmt, 0, len(b)-1)
		removed = append(removed, b[:i]...)
		removed = append(removed, b[i+1:]...)
		out = append(out, removed)
	}
	for i, s := range b {
		var vars []GStmt
		switch s.Kind {
		case "loop":
			unrolled := make([]GStmt, 0, len(b)-1+len(s.Body))
			unrolled = append(unrolled, b[:i]...)
			unrolled = append(unrolled, s.Body...)
			unrolled = append(unrolled, b[i+1:]...)
			out = append(out, unrolled)
			if s.Count > 1 {
				v := s
				v.Count = 1
				vars = append(vars, v)
			}
			for _, inner := range bodyVariants(s.Body) {
				v := s
				v.Body = inner
				vars = append(vars, v)
			}
		case "read", "write":
			if s.Size > 1 {
				v := s
				v.Size /= 2
				vars = append(vars, v)
			}
			for _, f := range []struct {
				get func(*GStmt) *int64
			}{
				{func(g *GStmt) *int64 { return &g.Off }},
				{func(g *GStmt) *int64 { return &g.RankStride }},
				{func(g *GStmt) *int64 { return &g.IterStride }},
				{func(g *GStmt) *int64 { return &g.Chunk }},
			} {
				v := s
				if p := f.get(&v); *p != 0 {
					*p = 0
					vars = append(vars, v)
				}
			}
		case "compute":
			if s.Dur > 0 {
				v := s
				v.Dur /= 2
				vars = append(vars, v)
			}
		}
		for _, v := range vars {
			nb := make([]GStmt, len(b))
			copy(nb, b)
			nb[i] = v
			out = append(out, nb)
		}
	}
	return out
}

// Failure is one property-harness failure, already shrunk.
type Failure struct {
	// Index is the case's position in the run; CaseSeed its derived seed.
	Index    int
	CaseSeed int64
	// Shrunk is the minimized case and Result its (failing) outcome.
	Shrunk Case
	Result CaseResult
}

// Regression renders the failure as a ready-to-commit Go test that replays
// the shrunk program through RunSource and fails on any violation.
func (f Failure) Regression() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// TestPropRegression_%d reproduces a property-harness failure\n", f.CaseSeed)
	fmt.Fprintf(&b, "// (case %d, seed %d). Generated by validate.Failure.Regression.\n", f.Index, f.CaseSeed)
	fmt.Fprintf(&b, "func TestPropRegression_%d(t *testing.T) {\n", f.CaseSeed)
	p := f.Shrunk.Point
	fmt.Fprintf(&b, "\tp := campaign.Point{Ranks: %d, Device: %q, StripeCount: %d, StripeSize: %d}\n",
		p.Ranks, p.Device, p.StripeCount, p.StripeSize)
	fmt.Fprintf(&b, "\tres := validate.RunSource(%d, p, `%s`)\n", f.Shrunk.Seed, f.Shrunk.Source())
	b.WriteString("\tif res.Err != nil {\n\t\tt.Fatalf(\"run: %v\", res.Err)\n\t}\n")
	b.WriteString("\tfor _, v := range res.Violations {\n\t\tt.Errorf(\"%s\", v)\n\t}\n")
	b.WriteString("}\n")
	return b.String()
}

// PropertyReport summarizes one property-harness run.
type PropertyReport struct {
	Seed     int64
	Cases    int
	Failures []Failure
}

// RunProperty generates and runs n cases derived from the base seed (case
// seeds come from campaign.RunSeed, the same SplitMix64 derivation
// campaigns use), shrinking every failure. The report is deterministic:
// the same seed and n always produce the same cases, verdicts, and shrunk
// reproducers.
func RunProperty(seed int64, n int) PropertyReport {
	rep := PropertyReport{Seed: seed, Cases: n}
	for i := 0; i < n; i++ {
		cs := campaign.RunSeed(seed, i)
		c := GenCase(cs)
		if !DefaultJudge(c) {
			continue
		}
		sc := Shrink(c, DefaultJudge)
		rep.Failures = append(rep.Failures, Failure{
			Index:    i,
			CaseSeed: cs,
			Shrunk:   sc,
			Result:   RunCase(sc),
		})
	}
	return rep
}
