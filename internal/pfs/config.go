// Package pfs simulates a Lustre-like center-wide parallel file system: a
// metadata server (MDS), object storage servers (OSS) each hosting object
// storage targets (OST), RAID-0 file striping, and client read/write paths
// that traverse the compute fabric, the I/O-node tier, and the storage
// fabric — the topology of Figure 1 of the paper.
//
// The file system tracks no data payloads, only extents and timing: it is a
// performance model, not a data store. Namespace state (directories, file
// sizes, stripe layouts) is fully maintained so that metadata-intensive
// workloads (mdtest-like, workflows) exercise a real namespace.
package pfs

import (
	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/netsim"
)

// Config describes a file-system deployment.
type Config struct {
	// NumOSS is the number of object storage servers.
	NumOSS int
	// OSTsPerOSS is the number of storage targets attached to each OSS.
	OSTsPerOSS int
	// OSTDevice constructs the device model backing each OST.
	// Nil defaults to blockdev.DefaultHDD.
	OSTDevice func() blockdev.Model
	// OSTQueueDepth is the per-OST concurrent request depth.
	OSTQueueDepth int

	// MDSThreads is the MDS service concurrency.
	MDSThreads int
	// MDSOpCost is the CPU service time per metadata operation.
	MDSOpCost des.Time

	// DefaultStripeCount and DefaultStripeSize apply to files created
	// without an explicit layout.
	DefaultStripeCount int
	DefaultStripeSize  int64

	// Layout selects how OSTs are chosen for new files: classic
	// round-robin, or least-loaded (iez-style contention-aware
	// allocation using current per-OST byte counters).
	Layout LayoutPolicy

	// NumIONodes is the size of the I/O-forwarding tier between the
	// compute fabric and the storage fabric (Figure 1). Zero disables
	// forwarding: clients talk to servers directly on the compute fabric.
	NumIONodes int

	// ComputeFabric and StorageFabric configure the two networks. The
	// zero value selects the presets from the paper's Figure 1
	// (InfiniBand-like and 10GbE-like respectively).
	ComputeFabric netsim.Config
	StorageFabric netsim.Config

	// MaxRPCSize splits bulk transfers into RPC-sized chunks.
	MaxRPCSize int64

	// ClientWriteBehind enables a client-side write-back buffer of the
	// given capacity in bytes (0 disables). Dirty data is flushed when
	// the buffer fills and on Fsync/Close.
	ClientWriteBehind int64

	// ClientReadahead enables client-side readahead: on a cache miss the
	// client fetches the requested bytes plus this many extra bytes, and
	// serves subsequent reads inside the prefetched window for free.
	// Sequential streams benefit; random access suffers amplification —
	// both behaviours are real. 0 disables.
	ClientReadahead int64

	// Resilience configures client-side fault handling (timeouts, retry
	// with backoff, degraded reads). The zero value fails fast with no
	// retries — see ResiliencePolicy and DefaultResilience.
	Resilience ResiliencePolicy
}

// DefaultConfig returns a small but representative deployment: 4 OSS x 2
// OST (HDD), 1 MDS with 8 threads, 1 MB stripes over 4 OSTs, 2 I/O nodes.
func DefaultConfig() Config {
	return Config{
		NumOSS:             4,
		OSTsPerOSS:         2,
		OSTQueueDepth:      4,
		MDSThreads:         8,
		MDSOpCost:          30 * des.Microsecond,
		DefaultStripeCount: 4,
		DefaultStripeSize:  1 << 20,
		NumIONodes:         2,
		ComputeFabric:      netsim.InfiniBandLike(),
		StorageFabric:      netsim.EthernetLike(),
		MaxRPCSize:         4 << 20,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.NumOSS <= 0 {
		c.NumOSS = 1
	}
	if c.OSTsPerOSS <= 0 {
		c.OSTsPerOSS = 1
	}
	if c.OSTDevice == nil {
		c.OSTDevice = func() blockdev.Model { return blockdev.DefaultHDD() }
	}
	if c.OSTQueueDepth <= 0 {
		c.OSTQueueDepth = 1
	}
	if c.MDSThreads <= 0 {
		c.MDSThreads = 1
	}
	if c.MDSOpCost <= 0 {
		c.MDSOpCost = 30 * des.Microsecond
	}
	if c.DefaultStripeCount <= 0 {
		c.DefaultStripeCount = 1
	}
	if c.DefaultStripeSize <= 0 {
		c.DefaultStripeSize = 1 << 20
	}
	if c.ComputeFabric.Name == "" {
		c.ComputeFabric = netsim.InfiniBandLike()
	}
	if c.StorageFabric.Name == "" {
		c.StorageFabric = netsim.EthernetLike()
	}
	if c.MaxRPCSize <= 0 {
		c.MaxRPCSize = 4 << 20
	}
	return c
}
