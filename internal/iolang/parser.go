package iolang

import "fmt"

// Expr is an integer expression over literals and the variables rank/iter.
type Expr interface {
	Eval(rank, iter int) int64
}

type litExpr int64

func (l litExpr) Eval(int, int) int64 { return int64(l) }

type varExpr string // "rank" or "iter"

func (v varExpr) Eval(rank, iter int) int64 {
	if v == "rank" {
		return int64(rank)
	}
	return int64(iter)
}

type binExpr struct {
	op   byte // '*' or '+'
	l, r Expr
}

func (b binExpr) Eval(rank, iter int) int64 {
	lv, rv := b.l.Eval(rank, iter), b.r.Eval(rank, iter)
	if b.op == '*' {
		return lv * rv
	}
	return lv + rv
}

// Stmt is one workload statement.
type Stmt struct {
	// Kind is one of: compute, barrier, open, close, read, write, fsync,
	// stat, mkdir, unlink, loop.
	Kind string
	Path string // with ${rank}/${iter} placeholders
	// Named arguments (offset, size, chunk) and the compute duration.
	Offset Expr
	Size   Expr
	Chunk  Expr
	Dur    Expr
	Create bool
	// Loop fields.
	Count int
	Body  []Stmt
}

// Workload is a parsed script.
type Workload struct {
	Name        string
	Ranks       int
	StripeCount int
	StripeSize  int64
	Body        []Stmt
}

// Parse compiles a script into a Workload.
func Parse(src string) (*Workload, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	w, err := p.workload()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input after workload block")
	}
	return w, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("iolang:%d: %s (at %s)", p.peek().line, fmt.Sprintf(format, args...), p.peek())
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.peek().kind != kind {
		return token{}, p.errf("expected %s", what)
	}
	return p.next(), nil
}

func (p *parser) expectIdent(word string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != word {
		return p.errf("expected %q", word)
	}
	p.next()
	return nil
}

func (p *parser) workload() (*Workload, error) {
	if err := p.expectIdent("workload"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString, "workload name string")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	w := &Workload{Name: name.text, Ranks: 1}
	for p.peek().kind != tokRBrace {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected statement")
		}
		switch t.text {
		case "ranks":
			p.next()
			n, err := p.expect(tokNumber, "rank count")
			if err != nil {
				return nil, err
			}
			w.Ranks = int(n.num)
		case "stripe":
			p.next()
			seen := false
			for p.peek().kind == tokIdent && (p.peek().text == "count" || p.peek().text == "size") {
				key := p.next().text
				seen = true
				if _, err := p.expect(tokEquals, "="); err != nil {
					return nil, err
				}
				v, err := p.expect(tokNumber, "stripe value")
				if err != nil {
					return nil, err
				}
				if key == "count" {
					w.StripeCount = int(v.num)
				} else {
					w.StripeSize = v.num
				}
			}
			if !seen {
				return nil, p.errf("stripe needs count= or size=")
			}
		default:
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			w.Body = append(w.Body, s)
		}
	}
	p.next() // }
	if w.Ranks <= 0 {
		return nil, fmt.Errorf("iolang: workload %q has no ranks", w.Name)
	}
	return w, nil
}

func (p *parser) stmt() (Stmt, error) {
	t, err := p.expect(tokIdent, "statement keyword")
	if err != nil {
		return Stmt{}, err
	}
	switch t.text {
	case "barrier":
		return Stmt{Kind: "barrier"}, nil
	case "compute":
		d, err := p.expr()
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: "compute", Dur: d}, nil
	case "loop":
		n, err := p.expect(tokNumber, "loop count")
		if err != nil {
			return Stmt{}, err
		}
		if _, err := p.expect(tokLBrace, "{"); err != nil {
			return Stmt{}, err
		}
		s := Stmt{Kind: "loop", Count: int(n.num)}
		for p.peek().kind != tokRBrace {
			inner, err := p.stmt()
			if err != nil {
				return Stmt{}, err
			}
			s.Body = append(s.Body, inner)
		}
		p.next()
		return s, nil
	case "open", "close", "fsync", "stat", "mkdir", "rmdir", "readdir", "unlink", "read", "write":
		path, err := p.expect(tokString, "path string")
		if err != nil {
			return Stmt{}, err
		}
		s := Stmt{Kind: t.text, Path: path.text}
		for p.peek().kind == tokIdent {
			key := p.peek().text
			switch key {
			case "create":
				p.next()
				s.Create = true
				continue
			case "offset", "size", "chunk":
				p.next()
				if _, err := p.expect(tokEquals, "="); err != nil {
					return Stmt{}, err
				}
				e, err := p.expr()
				if err != nil {
					return Stmt{}, err
				}
				switch key {
				case "offset":
					s.Offset = e
				case "size":
					s.Size = e
				case "chunk":
					s.Chunk = e
				}
			default:
				// Next statement keyword; stop consuming arguments.
				return p.finishIO(s)
			}
		}
		return p.finishIO(s)
	default:
		return Stmt{}, p.errf("unknown statement %q", t.text)
	}
}

// finishIO validates data-op arguments.
func (p *parser) finishIO(s Stmt) (Stmt, error) {
	if s.Kind == "read" || s.Kind == "write" {
		if s.Size == nil {
			return Stmt{}, fmt.Errorf("iolang: %s %q needs size=", s.Kind, s.Path)
		}
		if s.Offset == nil {
			s.Offset = litExpr(0)
		}
	}
	return s, nil
}

// expr parses sums of products: term (* term)* (+ ...)*.
func (p *parser) expr() (Expr, error) {
	left, err := p.product()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPlus {
		p.next()
		right, err := p.product()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: '+', l: left, r: right}
	}
	return left, nil
}

func (p *parser) product() (Expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokStar {
		p.next()
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: '*', l: left, r: right}
	}
	return left, nil
}

func (p *parser) term() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return litExpr(t.num), nil
	case t.kind == tokIdent && (t.text == "rank" || t.text == "iter"):
		p.next()
		return varExpr(t.text), nil
	default:
		return nil, p.errf("expected number, rank, or iter")
	}
}
