package skeleton

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"pioeval/internal/des"
	"pioeval/internal/trace"
)

// checkpointTrace builds a POSIX trace of a classic checkpoint loop:
// open, (write x writesPerOpen), close — repeated rounds times.
func checkpointTrace(rounds, writesPerOpen int, blk int64) []trace.Record {
	var recs []trace.Record
	var t des.Time
	var off int64
	for r := 0; r < rounds; r++ {
		recs = append(recs, trace.Record{Layer: trace.LayerPOSIX, Op: "open", Path: "/ckpt", Start: t, End: t + 10})
		t += 10
		for w := 0; w < writesPerOpen; w++ {
			recs = append(recs, trace.Record{
				Layer: trace.LayerPOSIX, Op: "write", Path: "/ckpt",
				Offset: off, Size: blk, Start: t, End: t + 100,
			})
			off += blk
			t += 100
		}
		recs = append(recs, trace.Record{Layer: trace.LayerPOSIX, Op: "close", Path: "/ckpt", Start: t, End: t + 10})
		t += 10
	}
	return recs
}

func TestTokenizeGapEncoding(t *testing.T) {
	recs := []trace.Record{
		{Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Offset: 1000, Size: 100, Start: 0, End: 1},
		{Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Offset: 1100, Size: 100, Start: 1, End: 2},
		{Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Offset: 1300, Size: 100, Start: 2, End: 3},
	}
	toks := Tokenize(recs)
	if !toks[0].First || toks[0].Abs != 1000 {
		t.Errorf("first token = %+v", toks[0])
	}
	if toks[1].First || toks[1].Gap != 0 {
		t.Errorf("consecutive token gap = %+v", toks[1])
	}
	if toks[2].Gap != 100 {
		t.Errorf("strided token gap = %d, want 100", toks[2].Gap)
	}
}

func TestTokenizeSkipsNonPosix(t *testing.T) {
	recs := []trace.Record{
		{Layer: trace.LayerMPIIO, Op: "mpi_file_write", Path: "/f", Size: 10},
		{Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Size: 10},
	}
	if got := len(Tokenize(recs)); got != 1 {
		t.Fatalf("tokens = %d, want 1", got)
	}
}

func TestDetokenizeRoundTrip(t *testing.T) {
	recs := checkpointTrace(3, 4, 4096)
	toks := Tokenize(recs)
	ops := Detokenize(toks)
	j := 0
	for _, r := range recs {
		op := ops[j]
		if op.Op != r.Op || op.Path != r.Path {
			t.Fatalf("op %d = %+v vs rec %+v", j, op, r)
		}
		if (r.Op == "read" || r.Op == "write") && op.Offset != r.Offset {
			t.Fatalf("offset %d = %d, want %d", j, op.Offset, r.Offset)
		}
		j++
	}
}

func TestFoldCompressesCheckpointLoop(t *testing.T) {
	recs := checkpointTrace(32, 8, 1<<20)
	toks := Tokenize(recs)
	prog := Fold(toks)
	if got := prog.CompressionRatio(); got < 10 {
		t.Errorf("compression ratio = %.1f, want >= 10 on a regular loop", got)
	}
	// Round trip must be exact.
	if !reflect.DeepEqual(prog.Expand(), toks) {
		t.Fatal("fold/expand mismatch")
	}
	// Offsets must reconstruct exactly.
	ops := prog.Ops()
	want := Detokenize(toks)
	if !reflect.DeepEqual(ops, want) {
		t.Fatal("op reconstruction mismatch")
	}
}

func TestFoldDetectsNestedLoops(t *testing.T) {
	// Pattern: (a b b) x4 — outer loop with inner repeat.
	mk := func(op string) Token { return Token{Op: op, Path: "/f"} }
	var toks []Token
	for i := 0; i < 4; i++ {
		toks = append(toks, mk("a"), mk("b"), mk("b"))
	}
	prog := Fold(toks)
	if len(prog.Nodes) != 1 || !prog.Nodes[0].IsLoop() || prog.Nodes[0].Count != 4 {
		t.Fatalf("outer structure = %+v", prog.Nodes)
	}
	body := prog.Nodes[0].Body
	// Body should be a + loop(2){b}.
	if len(body) != 2 || body[0].IsLoop() || !body[1].IsLoop() || body[1].Count != 2 {
		t.Fatalf("inner structure wrong: %+v", body)
	}
	if !reflect.DeepEqual(prog.Expand(), toks) {
		t.Fatal("nested expand mismatch")
	}
}

func TestFoldIrregularSequenceUnchanged(t *testing.T) {
	var toks []Token
	for i := 0; i < 10; i++ {
		toks = append(toks, Token{Op: "write", Path: "/f", Size: int64(i * 7)})
	}
	prog := Fold(toks)
	if prog.Size() != 10 {
		t.Errorf("irregular sequence folded to %d nodes", prog.Size())
	}
	if r := prog.CompressionRatio(); r != 1 {
		t.Errorf("ratio = %v", r)
	}
}

// Property: Fold round-trips arbitrary token streams.
func TestPropFoldRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		toks := make([]Token, len(raw))
		ops := []string{"read", "write", "open", "close"}
		for i, v := range raw {
			toks[i] = Token{Op: ops[v%4], Path: "/f", Size: int64(v % 3)}
		}
		got := Fold(toks).Expand()
		if len(toks) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, toks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSuffixArrayBasic(t *testing.T) {
	// "banana" as ints: b=1 a=0 n=2.
	seq := []int{1, 0, 2, 0, 2, 0}
	sa := SuffixArray(seq)
	want := []int{5, 3, 1, 0, 4, 2}
	if !reflect.DeepEqual(sa, want) {
		t.Fatalf("sa = %v, want %v", sa, want)
	}
	lcp := LCPArray(seq, sa)
	// lcp[1] = lcp(suffix5="a", suffix3="ana") = 1.
	if lcp[1] != 1 || lcp[2] != 3 {
		t.Errorf("lcp = %v", lcp)
	}
}

func TestLongestRepeat(t *testing.T) {
	seq := []int{7, 1, 2, 3, 9, 1, 2, 3, 8}
	start, length := LongestRepeat(seq)
	if length != 3 {
		t.Fatalf("repeat length = %d, want 3", length)
	}
	if !(seq[start] == 1 && seq[start+1] == 2 && seq[start+2] == 3) {
		t.Errorf("repeat start = %d", start)
	}
	if _, l := LongestRepeat([]int{1}); l != 0 {
		t.Error("singleton repeat")
	}
	if _, l := LongestRepeat(nil); l != 0 {
		t.Error("empty repeat")
	}
}

// Property: every suffix array is a permutation and sorted.
func TestPropSuffixArraySorted(t *testing.T) {
	less := func(seq []int, a, b int) bool {
		for a < len(seq) && b < len(seq) {
			if seq[a] != seq[b] {
				return seq[a] < seq[b]
			}
			a++
			b++
		}
		return a == len(seq) && b != len(seq)
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]int, len(raw))
		for i, v := range raw {
			seq[i] = int(v % 4)
		}
		sa := SuffixArray(seq)
		seen := map[int]bool{}
		for _, s := range sa {
			if s < 0 || s >= len(seq) || seen[s] {
				return false
			}
			seen[s] = true
		}
		for i := 1; i < len(sa); i++ {
			if less(seq, sa[i], sa[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTokensToSymbols(t *testing.T) {
	toks := []Token{
		{Op: "a"}, {Op: "b"}, {Op: "a"},
	}
	syms := TokensToSymbols(toks)
	if syms[0] != syms[2] || syms[0] == syms[1] {
		t.Errorf("symbols = %v", syms)
	}
}

func TestRenderGo(t *testing.T) {
	recs := checkpointTrace(4, 2, 4096)
	prog := Fold(Tokenize(recs))
	src := prog.RenderGo("replayCkpt")
	for _, want := range []string{"func replayCkpt", "for i0 :=", "env.Pwrite", "env.Open", "env.Close"} {
		if !strings.Contains(src, want) {
			t.Errorf("rendered source missing %q:\n%s", want, src)
		}
	}
}

func TestThinkTimeQuantization(t *testing.T) {
	recs := []trace.Record{
		{Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Size: 10, Start: 0, End: 10},
		{Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Offset: 10, Size: 10,
			Start: 10 + 150*des.Microsecond, End: 10 + 151*des.Microsecond},
	}
	toks := Tokenize(recs)
	if toks[1].Think != 100*des.Microsecond {
		t.Errorf("think = %v, want 100us (quantized)", toks[1].Think)
	}
}
