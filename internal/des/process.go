package des

import "fmt"

// Proc is a simulated process: a goroutine that advances only when the
// engine resumes it. All blocking primitives (Wait, Resource.Acquire,
// Queue.Get, Signal.Wait) must be called from the process's own goroutine.
type Proc struct {
	eng    *Engine
	pid    int
	name   string
	resume chan struct{}
	done   bool
}

// Spawn starts fn as a new simulated process at the current time.
// The name appears in deadlock diagnostics.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, pid: e.nextPID, name: name, resume: make(chan struct{})}
	e.nextPID++
	e.procs++
	e.schedule(e.now, func() { p.start(fn) }, nil)
	return p
}

// SpawnAt starts fn as a new simulated process after delay d.
func (e *Engine) SpawnAt(d Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, pid: e.nextPID, name: name, resume: make(chan struct{})}
	e.nextPID++
	e.procs++
	e.schedule(e.now+d, func() { p.start(fn) }, nil)
	return p
}

func (p *Proc) start(fn func(p *Proc)) {
	go func() {
		defer func() {
			p.done = true
			p.eng.procs--
			// Return control to the engine loop.
			p.eng.yield <- struct{}{}
		}()
		fn(p)
	}()
	<-p.eng.yield // wait until the process blocks or finishes
}

// block suspends the process goroutine, returning control to the engine.
// It resumes when something calls p.wake (via a scheduled event).
func (p *Proc) block() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// wakeAt schedules the process to continue at time at. The wake is a
// proc-carrying pooled event — no closure, no allocation — that the engine
// loop dispatches as a direct goroutine handoff.
func (p *Proc) wakeAt(at Time) {
	p.eng.schedule(at, nil, p)
}

// wakeNow schedules the process to continue at the current time (after
// currently dispatching event completes).
func (p *Proc) wakeNow() { p.wakeAt(p.eng.now) }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// PID returns the unique process id.
func (p *Proc) PID() int { return p.pid }

// Wait advances simulated time by d for this process.
func (p *Proc) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative wait %v in proc %s", d, p.name))
	}
	p.wakeAt(p.eng.now + d)
	p.block()
}

// WaitUntil advances simulated time to absolute time at (no-op if at is in
// the past).
func (p *Proc) WaitUntil(at Time) {
	if at <= p.eng.now {
		return
	}
	p.wakeAt(at)
	p.block()
}

// Signal is a broadcast condition: processes wait on it and a later Fire
// releases all current waiters. A Signal can be reused after firing.
// Waiters of both execution forms share one list and are released in
// strict arrival order.
type Signal struct {
	eng     *Engine
	waiters []waiter
}

// NewSignal creates a Signal bound to engine e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait blocks the calling process until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, waiter{p: p})
	p.block()
}

// WaitE is the continuation form of Wait: k runs when the next Fire
// releases the signal.
func (s *Signal) WaitE(ep *EventProc, k func()) {
	ep.arm(k)
	s.waiters = append(s.waiters, waiter{ep: ep})
}

// Fire releases all processes currently waiting on the signal.
// Safe to call from process or event context.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w.wake()
	}
}

// NumWaiters reports how many processes are blocked on the signal.
func (s *Signal) NumWaiters() int { return len(s.waiters) }

// WaitGroup counts down to zero and then releases waiters, mirroring
// sync.WaitGroup for simulated processes.
type WaitGroup struct {
	eng   *Engine
	n     int
	doneS *Signal
}

// NewWaitGroup creates a WaitGroup bound to engine e.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{eng: e, doneS: NewSignal(e)} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("des: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.doneS.Fire()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks the calling process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.doneS.Wait(p)
	}
}

// WaitE is the continuation form of Wait: k runs once the counter reaches
// zero, synchronously when it already is (matching Wait's no-yield fast
// path), re-checking across Fires exactly like the goroutine form's loop.
func (wg *WaitGroup) WaitE(ep *EventProc, k func()) {
	if wg.n == 0 {
		k()
		return
	}
	wg.doneS.WaitE(ep, func() { wg.WaitE(ep, k) })
}
