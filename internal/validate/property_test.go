package validate

import (
	"reflect"
	"strings"
	"testing"

	"pioeval/internal/campaign"
	"pioeval/internal/iolang"
)

// TestGenCaseDeterministic pins that generation is a pure function of the
// seed, down to the rendered source.
func TestGenCaseDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		seed := campaign.RunSeed(1234, i)
		a, b := GenCase(seed), GenCase(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: non-deterministic case", seed)
		}
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: non-deterministic rendering", seed)
		}
	}
}

// TestGenCaseParses pins the generator/grammar contract: every generated
// program must be valid iolang with the case's cluster shape.
func TestGenCaseParses(t *testing.T) {
	for i := 0; i < 50; i++ {
		c := GenCase(campaign.RunSeed(7, i))
		w, err := iolang.Parse(c.Source())
		if err != nil {
			t.Fatalf("case %d does not parse: %v\n%s", i, err, c.Source())
		}
		if w.Ranks != c.Point.Ranks || w.StripeCount != c.Point.StripeCount || w.StripeSize != c.Point.StripeSize {
			t.Fatalf("case %d: header mismatch: %+v vs %+v", i, w, c.Point)
		}
	}
}

// TestRunPropertyCleanAndDeterministic runs the harness twice on the
// current simulator: it must find no failures (the simulator satisfies its
// own invariants) and produce bit-identical reports.
func TestRunPropertyCleanAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("property run is seconds-long; skipped with -short")
	}
	const n = 12
	a := RunProperty(99, n)
	for _, f := range a.Failures {
		t.Errorf("case %d (seed %d) failed:\n%s\nerr=%v violations=%v",
			f.Index, f.CaseSeed, f.Shrunk.Source(), f.Result.Err, f.Result.Violations)
	}
	b := RunProperty(99, n)
	if len(a.Failures) != len(b.Failures) {
		t.Fatalf("non-deterministic failure count: %d vs %d", len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if !reflect.DeepEqual(a.Failures[i].Shrunk, b.Failures[i].Shrunk) {
			t.Errorf("failure %d shrinks differently across runs", i)
		}
	}
}

// TestShrinkMinimizes drives the shrinker with a synthetic judge (the
// "bug" is any write to file 1) and checks the result is the locally
// minimal reproducer: one statement, one rank, one stripe, hdd, size 1.
func TestShrinkMinimizes(t *testing.T) {
	c := Case{
		Seed: 17,
		Point: campaign.Point{
			Ranks: 4, Device: "nvme", StripeCount: 3, StripeSize: 1 << 20,
		},
		Body: []GStmt{
			{Kind: "compute", Dur: 500_000},
			{Kind: "write", File: 0, Off: 1 << 20, Size: 256 << 10, RankStride: 64 << 10},
			{Kind: "barrier"},
			{Kind: "loop", Count: 3, Body: []GStmt{
				{Kind: "write", File: 1, Off: 2 << 20, Size: 1 << 20, IterStride: 4096, Chunk: 65536},
				{Kind: "fsync", File: 1},
			}},
			{Kind: "read", File: 0, Off: 0, Size: 64 << 10},
		},
	}
	judge := func(c Case) bool {
		var hasW1 func([]GStmt) bool
		hasW1 = func(b []GStmt) bool {
			for _, s := range b {
				if s.Kind == "write" && s.File == 1 {
					return true
				}
				if s.Kind == "loop" && hasW1(s.Body) {
					return true
				}
			}
			return false
		}
		return hasW1(c.Body)
	}
	if !judge(c) {
		t.Fatal("synthetic case must fail the synthetic judge")
	}
	s := Shrink(c, judge)
	if len(s.Body) != 1 {
		t.Fatalf("shrunk to %d statements, want 1:\n%s", len(s.Body), s.Source())
	}
	g := s.Body[0]
	if g.Kind != "write" || g.File != 1 {
		t.Fatalf("shrunk statement is %+v, want the write to file 1", g)
	}
	if g.Size != 1 || g.Off != 0 || g.IterStride != 0 || g.Chunk != 0 {
		t.Errorf("statement arguments not minimized: %+v", g)
	}
	if s.Point.Ranks != 1 || s.Point.StripeCount != 1 || s.Point.Device != "hdd" {
		t.Errorf("cluster shape not minimized: %+v", s.Point)
	}
}

// TestShrinkKeepsFailing pins the shrinker's core contract: whatever it
// returns still fails the judge.
func TestShrinkKeepsFailing(t *testing.T) {
	c := GenCase(campaign.RunSeed(3, 1))
	judge := func(c Case) bool { return len(c.Body) >= 1 }
	s := Shrink(c, judge)
	if !judge(s) {
		t.Fatalf("shrunk case no longer fails the judge: %+v", s)
	}
	if len(s.Body) != 1 {
		t.Fatalf("shrunk to %d statements, want exactly the minimum 1", len(s.Body))
	}
}

// TestRegressionRendering checks the emitted regression test is
// self-contained, replayable text.
func TestRegressionRendering(t *testing.T) {
	f := Failure{
		Index:    3,
		CaseSeed: 555,
		Shrunk: Case{
			Seed:  555,
			Point: campaign.Point{Ranks: 1, Device: "hdd", StripeCount: 1, StripeSize: 65536},
			Body:  []GStmt{{Kind: "write", File: 0, Size: 4096}},
		},
	}
	src := f.Regression()
	for _, want := range []string{
		"func TestPropRegression_555(t *testing.T)",
		"validate.RunSource(555, p, `workload \"prop\" {",
		"write \"/p0\" offset=0 size=4096",
		"campaign.Point{Ranks: 1, Device: \"hdd\", StripeCount: 1, StripeSize: 65536}",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("regression text missing %q:\n%s", want, src)
		}
	}
}

// TestRunSourceRejectsBadProgram pins the parse-failure path.
func TestRunSourceRejectsBadProgram(t *testing.T) {
	res := RunSource(1, campaign.Point{Ranks: 1, StripeCount: 1, StripeSize: 65536}, "workload {")
	if res.Err == nil {
		t.Fatal("invalid program must surface an error")
	}
}
