package mpi

import (
	"testing"
	"testing/quick"

	"pioeval/internal/des"
)

// runWorld spawns fn on a fresh world and runs to completion, failing on
// simulated deadlock.
func runWorld(t *testing.T, size int, opts Options, fn func(r *Rank)) (*World, des.Time) {
	t.Helper()
	e := des.NewEngine(1)
	w := NewWorld(e, size, opts)
	w.Spawn(fn)
	end := e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		t.Fatalf("MPI deadlock: %d live ranks", e.LiveProcs())
	}
	return w, end
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSendRecv(t *testing.T) {
	opts := Options{Alpha: 1000, BetaBps: 1e9}
	var recvAt des.Time
	var msg Message
	runWorld(t, 2, opts, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, 1000) // 1us alpha + 1us transfer
		} else {
			msg = r.Recv(0, 7)
			recvAt = r.Now()
		}
	})
	if msg.Src != 0 || msg.Tag != 7 || msg.Size != 1000 {
		t.Fatalf("msg = %+v", msg)
	}
	if recvAt != 2000 {
		t.Fatalf("recv at %v, want 2000ns", recvAt)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	var recvAt des.Time
	runWorld(t, 2, Options{Alpha: 10}, func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(5000)
			r.Send(1, 0, 0)
		} else {
			r.Recv(0, 0)
			recvAt = r.Now()
		}
	})
	if recvAt != 5010 {
		t.Fatalf("recv at %v, want 5010", recvAt)
	}
}

func TestMessageTagIsolation(t *testing.T) {
	// Messages with different tags do not cross.
	var first Message
	runWorld(t, 2, Options{}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, 111)
			r.Send(1, 2, 222)
		} else {
			first = r.Recv(0, 2) // explicitly take tag 2 first
			_ = r.Recv(0, 1)
		}
	})
	if first.Size != 222 {
		t.Fatalf("tag-2 recv got size %d", first.Size)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var after []des.Time
	runWorld(t, 4, Options{Alpha: 100}, func(r *Rank) {
		r.Compute(des.Time(r.ID()) * 1000) // ranks arrive staggered
		r.Barrier()
		after = append(after, r.Now())
	})
	if len(after) != 4 {
		t.Fatalf("%d ranks passed barrier", len(after))
	}
	for _, ts := range after {
		if ts < 3000 {
			t.Fatalf("rank released at %v before last arrival (3000)", ts)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	counts := make([]int, 3)
	runWorld(t, 3, Options{}, func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Compute(des.Time(r.ID()+1) * 100)
			r.Barrier()
			counts[r.ID()]++
		}
	})
	for i, c := range counts {
		if c != 5 {
			t.Fatalf("rank %d passed %d barriers, want 5", i, c)
		}
	}
}

func TestCollectivesScaleWithLogP(t *testing.T) {
	dur := func(p int) des.Time {
		_, end := runWorld(t, p, Options{Alpha: 1000, BetaBps: 1e9}, func(r *Rank) {
			r.Allreduce(8)
		})
		return end
	}
	d2, d16 := dur(2), dur(16)
	if d16 <= d2 {
		t.Fatalf("16-rank allreduce (%v) should cost more than 2-rank (%v)", d16, d2)
	}
	// log2(16)/log2(2) = 4: expect roughly 4x, certainly < 10x.
	if ratio := float64(d16) / float64(d2); ratio > 10 {
		t.Errorf("allreduce scaling ratio = %.1f, want ~4", ratio)
	}
}

func TestAllgatherScalesWithP(t *testing.T) {
	dur := func(p int) des.Time {
		_, end := runWorld(t, p, Options{Alpha: 1000, BetaBps: 1e9}, func(r *Rank) {
			r.Allgather(1 << 10)
		})
		return end
	}
	if dur(8) <= dur(2) {
		t.Error("allgather should scale with P")
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// Ring shift: every rank sendrecvs with neighbors.
	runWorld(t, 8, Options{Alpha: 10}, func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		m := r.Sendrecv(next, 0, 64, prev, 0)
		if m.Src != prev {
			t.Errorf("rank %d got msg from %d, want %d", r.ID(), m.Src, prev)
		}
	})
}

func TestWorldStats(t *testing.T) {
	w, _ := runWorld(t, 2, Options{}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 100)
			r.Send(1, 0, 200)
		} else {
			r.Recv(0, 0)
			r.Recv(0, 0)
		}
	})
	if w.Messages() != 2 || w.BytesSent() != 300 {
		t.Fatalf("stats = %d msgs %d bytes", w.Messages(), w.BytesSent())
	}
}

func TestInvalidRankPanics(t *testing.T) {
	runWorld(t, 2, Options{}, func(r *Rank) {
		if r.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("send to invalid rank should panic")
				}
			}()
			r.Send(5, 0, 0)
		}
	})
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size 0 world should panic")
		}
	}()
	NewWorld(des.NewEngine(1), 0, Options{})
}

// Property: a token passed around a ring visits every rank exactly once and
// total time equals size * per-hop cost.
func TestPropRingTokenTime(t *testing.T) {
	f := func(sz uint8, alpha uint16) bool {
		p := int(sz%6) + 2
		a := des.Time(alpha%1000) + 1
		e := des.NewEngine(1)
		w := NewWorld(e, p, Options{Alpha: a})
		visits := 0
		w.Spawn(func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1%p, 0, 0)
				r.Recv(p-1, 0)
				visits++
			} else {
				r.Recv(r.ID()-1, 0)
				visits++
				r.Send((r.ID()+1)%p, 0, 0)
			}
		})
		end := e.Run(des.MaxTime)
		if e.LiveProcs() != 0 {
			return false
		}
		return visits == p && end == des.Time(p)*a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBcastReduceAlltoallComplete(t *testing.T) {
	// Smoke coverage for the remaining collectives: they must complete,
	// synchronize all ranks, and cost more at larger payloads.
	dur := func(size int64) des.Time {
		_, end := runWorld(t, 8, Options{Alpha: 1000, BetaBps: 1e9}, func(r *Rank) {
			r.Bcast(0, size)
			r.Reduce(0, size)
			r.Alltoall(size)
		})
		return end
	}
	small, large := dur(1<<10), dur(1<<20)
	if large <= small {
		t.Fatalf("1MB collectives (%v) should cost more than 1KB (%v)", large, small)
	}
}

func TestComputeAdvancesOnlyCaller(t *testing.T) {
	var times [2]des.Time
	runWorld(t, 2, Options{}, func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(5 * des.Millisecond)
		}
		times[r.ID()] = r.Now()
	})
	if times[0] != 5*des.Millisecond || times[1] != 0 {
		t.Fatalf("times = %v", times)
	}
}
