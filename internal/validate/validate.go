// Package validate is the simulator's validation subsystem — the checks
// that tie DES results back to known-correct behaviour, in the spirit of
// the paper's Figure-4 evaluation cycle. It has three layers:
//
//   - Analytic oracles (oracle.go): configurations simple enough that the
//     expected result has a closed form — a single sequential stream
//     bottlenecked by the slowest pipeline stage, independent ranks on
//     disjoint OSTs scaling linearly, two-phase collective aggregation
//     conserving volume exactly, burst-buffer drain time — compared
//     against simulated results within declared tolerance bands.
//
//   - Runtime invariant checkers (invariants.go): hooks on the engine
//     dispatch path, the trace collector, and the PFS client/OST
//     observers that assert simulated-time monotonicity, per-rank record
//     causality, byte conservation across layer boundaries, and clean
//     resource balance at shutdown. Attach them to any scenario; tests
//     and `simfs -validate` run every workload self-checking.
//
//   - A property-based harness (property.go): deterministically generates
//     random cluster shapes (reusing internal/campaign grid machinery)
//     and iolang programs from a seed, runs them with invariants on, and
//     shrinks any failure to a minimal reproducing case rendered as a
//     ready-to-commit regression test.
package validate

import "fmt"

// Violation is one failed invariant or check.
type Violation struct {
	// Invariant names the violated rule (e.g. "write-conservation",
	// "time-monotonic", "shutdown-balance").
	Invariant string
	// Detail describes the observed inconsistency.
	Detail string
}

// String renders the violation for reports and test logs.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
}
