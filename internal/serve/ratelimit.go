package serve

import (
	"sync"
	"time"
)

// maxBuckets bounds the per-client table; past it, full (stale) buckets
// are pruned so a client-ID-spraying attacker cannot grow the map
// without bound.
const maxBuckets = 4096

// rateLimiter is a per-client token bucket: each client refills at rate
// tokens/second up to burst, and every submission costs one token. It is
// the first admission stage, so an abusive client is shed before it can
// touch the queue or the cache.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time // injectable clock for tests
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token for client id. When the bucket is empty it
// returns false plus the wait until one token will have refilled — the
// Retry-After the handler sends with the 429.
func (l *rateLimiter) allow(id string) (bool, time.Duration) {
	if l.rate <= 0 { // unlimited
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[id]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.prune()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[id] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// prune drops buckets that have refilled to burst — clients idle long
// enough that forgetting them is behavior-neutral. Called with mu held.
func (l *rateLimiter) prune() {
	now := l.now()
	for id, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, id)
		}
	}
}
