package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/posixio"
)

// MDTestConfig mirrors the mdtest parameter space: per-rank file
// create/stat/remove in private directories.
type MDTestConfig struct {
	Ranks        int
	FilesPerRank int
	// WriteBytes, when > 0, writes that many bytes into each created file
	// (mdtest -w).
	WriteBytes int64
	// Depth nests each rank's files under a directory chain of this depth
	// (mdtest -z), adding per-level mkdir/rmdir load.
	Depth    int
	BasePath string
}

func (c MDTestConfig) withDefaults() MDTestConfig {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.FilesPerRank <= 0 {
		c.FilesPerRank = 64
	}
	if c.BasePath == "" {
		c.BasePath = "/mdtest"
	}
	return c
}

// MDTestReport mirrors mdtest's ops/sec summary.
type MDTestReport struct {
	Config      MDTestConfig
	CreateTime  des.Time
	StatTime    des.Time
	RemoveTime  des.Time
	CreatesPerS float64
	StatsPerS   float64
	RemovesPerS float64
	TotalFiles  int
	Makespan    des.Time
}

// RunMDTest executes the metadata-stress workload.
func RunMDTest(h *Harness, cfg MDTestConfig) MDTestReport {
	cfg = cfg.withDefaults()
	rep := MDTestReport{Config: cfg, TotalFiles: cfg.Ranks * cfg.FilesPerRank}
	var cStart, cEnd, sStart, sEnd, rStart, rEnd des.Time

	end := h.Run(func(r *mpi.Rank, env *posixio.Env) {
		p := r.Proc()
		dir := fmt.Sprintf("%s/rank%d", cfg.BasePath, r.ID())
		if r.ID() == 0 {
			_ = env.Mkdir(p, cfg.BasePath)
		}
		r.Barrier()
		_ = env.Mkdir(p, dir)
		// Optional nested tree (mdtest -z).
		var levels []string
		for d := 0; d < cfg.Depth; d++ {
			dir = fmt.Sprintf("%s/d%d", dir, d)
			_ = env.Mkdir(p, dir)
			levels = append(levels, dir)
		}

		// Create phase.
		r.Barrier()
		if r.ID() == 0 {
			cStart = r.Now()
		}
		for i := 0; i < cfg.FilesPerRank; i++ {
			path := fmt.Sprintf("%s/f%d", dir, i)
			fd, err := env.Open(p, path, posixio.OCreate|posixio.OExcl)
			if err != nil {
				continue
			}
			if cfg.WriteBytes > 0 {
				_, _ = env.Write(p, fd, cfg.WriteBytes)
			}
			_ = env.Close(p, fd)
		}
		r.Barrier()
		if r.ID() == 0 {
			cEnd = r.Now()
			sStart = cEnd
		}

		// Stat phase.
		for i := 0; i < cfg.FilesPerRank; i++ {
			_, _ = env.Stat(p, fmt.Sprintf("%s/f%d", dir, i))
		}
		r.Barrier()
		if r.ID() == 0 {
			sEnd = r.Now()
			rStart = sEnd
		}

		// Remove phase.
		for i := 0; i < cfg.FilesPerRank; i++ {
			_ = env.Unlink(p, fmt.Sprintf("%s/f%d", dir, i))
		}
		for d := len(levels) - 1; d >= 0; d-- {
			_ = env.Rmdir(p, levels[d])
		}
		_ = env.Rmdir(p, fmt.Sprintf("%s/rank%d", cfg.BasePath, r.ID()))
		r.Barrier()
		if r.ID() == 0 {
			rEnd = r.Now()
		}
	})
	rep.Makespan = end
	rep.CreateTime = cEnd - cStart
	rep.StatTime = sEnd - sStart
	rep.RemoveTime = rEnd - rStart
	rep.CreatesPerS = opsPerSec(rep.TotalFiles, rep.CreateTime)
	rep.StatsPerS = opsPerSec(rep.TotalFiles, rep.StatTime)
	rep.RemovesPerS = opsPerSec(rep.TotalFiles, rep.RemoveTime)
	return rep
}
