// DL training I/O: the §V-B scenario. A DLIO-like training job reads a
// dataset in randomly shuffled mini-batches; the same volume is then read
// sequentially for contrast, showing why PFSs tuned for large sequential
// I/O struggle with deep-learning input pipelines.
//
//	go run ./examples/dltraining
package main

import (
	"fmt"
	"log"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

func run(shuffle bool) workload.DLReport {
	engine := des.NewEngine(7)
	cfg := pfs.DefaultConfig() // HDD OSTs: the paper's pain point
	cfg.NumIONodes = 0
	// Stripe count 1 keeps each dataset file on one OST, so each worker's
	// unshuffled shard is a clean sequential stream at the device.
	cfg.DefaultStripeCount = 1
	fsim := pfs.New(engine, cfg)
	h := workload.NewHarness(engine, fsim, 4, "worker", nil)
	return workload.RunDL(h, workload.DLConfig{
		Workers:         4,
		Samples:         2048,
		SampleSize:      128 << 10,
		SamplesPerFile:  256,
		BatchSize:       32,
		Epochs:          2,
		Shuffle:         shuffle,
		ComputePerBatch: des.Millisecond,
	})
}

func main() {
	log.SetFlags(0)
	fmt.Println("DLIO-like training I/O on an HDD-backed parallel file system")
	fmt.Println("dataset: 2048 samples x 128KB in 8 files, 4 workers, 2 epochs")
	fmt.Println()

	seq := run(false)
	shuf := run(true)

	fmt.Printf("%-22s %12s %14s\n", "input pipeline", "MB/s", "samples/s")
	fmt.Printf("%-22s %12.1f %14.0f\n", "in-order (no shuffle)", seq.ReadMBps, seq.SamplesPerSec)
	fmt.Printf("%-22s %12.1f %14.0f\n", "shuffled (real DL)", shuf.ReadMBps, shuf.SamplesPerSec)
	fmt.Printf("\nshuffling costs %.1fx in read bandwidth — the random small-read\n",
		seq.ReadMBps/shuf.ReadMBps)
	fmt.Println("pressure that §V-B says parallel file systems were not designed for.")
	for i, d := range shuf.EpochTime {
		fmt.Printf("  shuffled epoch %d: %v\n", i, d)
	}
}
