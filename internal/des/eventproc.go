package des

import "fmt"

// EventProc is the continuation (goroutine-free) execution form of a
// simulated process. Where a Proc is a goroutine that blocks on simulation
// primitives, an EventProc is a handle whose blocking points are
// continuation callbacks dispatched directly from the event loop: no
// goroutine, no stack, no channel rendezvous. A blocked EventProc costs
// one pooled event (or one waiter-FIFO slot) plus the continuation it
// carries, so simulations with hundreds of thousands to millions of
// mostly-blocked entities stay cheap where one goroutine per entity would
// not.
//
// The two forms interoperate on the same Engine and the same primitives:
// Queue, Resource, Signal, and WaitGroup each have a blocking method for
// Procs (Get, Acquire, Wait) and a continuation method for EventProcs
// (GetE, AcquireE, WaitE), and waiters of both forms share one FIFO, so
// wake order is strict arrival order regardless of form.
//
// Determinism rules (see DESIGN.md "Execution forms"):
//
//   - One thread of control: an EventProc may have at most one pending
//     blocking point. Registering a second before the first fires panics.
//     Fork by spawning more EventProcs and joining on a WaitGroup.
//   - Ready paths run synchronously: a continuation primitive whose
//     condition already holds (queue non-empty, resource free, WaitGroup
//     at zero) invokes the continuation inline without yielding — exactly
//     as the goroutine form returns without blocking — so both forms
//     observe the same event interleavings.
//   - An EventProc ends when a continuation step returns without
//     registering a new blocking point. It counts toward
//     Engine.LiveProcs until then, so deadlock detection covers both
//     forms.
type EventProc struct {
	eng  *Engine
	pid  int
	name string

	// k is the pending continuation; it is dispatched either by an
	// ep-carrying pooled event (Wait) or by a waiter-FIFO wake
	// (Queue/Resource/Signal), whichever blocking point armed it.
	k     func()
	armed bool
	live  bool
}

// SpawnEvent starts fn as a new continuation-form process at the current
// time. fn runs as the first continuation step; the process lives until a
// step returns without blocking.
func (e *Engine) SpawnEvent(name string, fn func(ep *EventProc)) *EventProc {
	return e.SpawnEventAt(0, name, fn)
}

// SpawnEventAt starts fn as a new continuation-form process after delay d.
func (e *Engine) SpawnEventAt(d Time, name string, fn func(ep *EventProc)) *EventProc {
	if d < 0 {
		panic(fmt.Sprintf("des: negative spawn delay %v for event proc %s", d, name))
	}
	ep := &EventProc{eng: e, pid: e.nextPID, name: name, live: true}
	e.nextPID++
	e.procs++
	ep.k = func() { fn(ep) }
	e.scheduleEP(e.now+d, ep)
	return ep
}

// enter runs the pending continuation as one step. If the step returns
// without arming a new blocking point, the process has finished.
func (ep *EventProc) enter() {
	k := ep.k
	ep.k = nil
	ep.armed = false
	k()
	if !ep.armed && ep.live {
		ep.live = false
		ep.eng.procs--
	}
}

// arm registers k as the continuation for the blocking point being
// installed. Exactly one blocking point may be pending per step.
func (ep *EventProc) arm(k func()) {
	if ep.armed {
		panic(fmt.Sprintf("des: event proc %s blocked twice in one step", ep.name))
	}
	if !ep.live {
		panic(fmt.Sprintf("des: blocking call on finished event proc %s", ep.name))
	}
	ep.armed = true
	ep.k = k
}

// wakeNow schedules the armed continuation to run at the current time,
// after the currently dispatching event completes. Used by the waiter
// FIFOs; the continuation was stored by arm.
func (ep *EventProc) wakeNow() { ep.eng.scheduleEP(ep.eng.now, ep) }

// Wait schedules k to run after simulated delay d — the continuation
// analogue of Proc.Wait. The wake is an ep-carrying pooled event: no
// closure is scheduled and steady-state waits allocate nothing.
func (ep *EventProc) Wait(d Time, k func()) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative wait %v in event proc %s", d, ep.name))
	}
	ep.arm(k)
	ep.eng.scheduleEP(ep.eng.now+d, ep)
}

// WaitUntil schedules k at absolute time at, running it synchronously if
// at is not in the future (matching Proc.WaitUntil's no-yield fast path).
func (ep *EventProc) WaitUntil(at Time, k func()) {
	if at <= ep.eng.now {
		k()
		return
	}
	ep.arm(k)
	ep.eng.scheduleEP(at, ep)
}

// Engine returns the engine this process runs on.
func (ep *EventProc) Engine() *Engine { return ep.eng }

// Now returns the current simulated time.
func (ep *EventProc) Now() Time { return ep.eng.now }

// Name returns the process name given at SpawnEvent.
func (ep *EventProc) Name() string { return ep.name }

// PID returns the unique process id (shared sequence with goroutine Procs).
func (ep *EventProc) PID() int { return ep.pid }
