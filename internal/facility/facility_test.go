package facility

import (
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

func cluster() pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return cfg
}

func TestFacilityRunsAllJobs(t *testing.T) {
	res, err := Run(Config{
		Seed: 1, Cluster: cluster(), Jobs: 10,
		Mix: map[JobKind]float64{Checkpoint: 1, DLTraining: 1, Analytics: 1, MetaHeavy: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 10 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	seen := map[JobKind]bool{}
	for _, j := range res.Jobs {
		if j.End <= j.Start {
			t.Errorf("job %s has empty interval", j.ID)
		}
		if j.Start < j.Submit {
			t.Errorf("job %s started before submission", j.ID)
		}
		if j.BytesRead+j.BytesWritten == 0 {
			t.Errorf("job %s moved no data", j.ID)
		}
		seen[j.Kind] = true
	}
	if len(seen) < 3 {
		t.Errorf("kinds seen = %v, want variety", seen)
	}
	if res.MDSOps == 0 || res.Makespan <= 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("scheduler utilization = %v", res.Utilization)
	}
	if len(res.Rates) == 0 {
		t.Error("no monitor rates")
	}
}

func TestFacilityMixShiftsReadFraction(t *testing.T) {
	// The §V / C1 claim at facility scale.
	frac := func(mix map[JobKind]float64) float64 {
		res, err := Run(Config{Seed: 2, Cluster: cluster(), Jobs: 8, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		return res.ReadFraction
	}
	writeHeavy := frac(map[JobKind]float64{Checkpoint: 1})
	readHeavy := frac(map[JobKind]float64{DLTraining: 1})
	if writeHeavy >= 0.2 {
		t.Errorf("checkpoint facility read fraction = %.2f", writeHeavy)
	}
	if readHeavy <= 0.5 {
		t.Errorf("DL facility read fraction = %.2f", readHeavy)
	}
}

func TestFacilityDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{Seed: 3, Cluster: cluster(), Jobs: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.ReadFraction != b.ReadFraction || a.MDSOps != b.MDSOps {
		t.Fatalf("nondeterministic facility: %+v vs %+v", a, b)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestKindReadFractions(t *testing.T) {
	res, err := Run(Config{
		Seed: 4, Cluster: cluster(), Jobs: 12,
		Mix: map[JobKind]float64{Checkpoint: 1, DLTraining: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := KindReadFractions(res.Jobs)
	if ck, ok := fr[Checkpoint]; ok && ck > 0.1 {
		t.Errorf("checkpoint read fraction = %.2f", ck)
	}
	if dl, ok := fr[DLTraining]; ok && dl < 0.5 {
		t.Errorf("DL read fraction = %.2f", dl)
	}
}

func TestFacilityInterferenceUnderPressure(t *testing.T) {
	// Slow HDD cluster + rapid arrivals: overlapping jobs must be flagged.
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0 // HDD OSTs
	res, err := Run(Config{
		Seed: 5, Cluster: cfg, Jobs: 6,
		MeanInterarrival: 5 * des.Millisecond,
		Mix:              map[JobKind]float64{Checkpoint: 1},
		JobScale:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Interferences) == 0 {
		t.Error("no interference detected under heavy concurrent load")
	}
}

func TestJobKindString(t *testing.T) {
	if Checkpoint.String() != "checkpoint" || MetaHeavy.String() != "metaheavy" {
		t.Error("kind names")
	}
}
