package profile

import (
	"testing"

	"pioeval/internal/trace"
)

// TestBaselineEmptyHistory pins the sentinel behavior of an empty
// baseline: Percentile reports -1 (not 0, which is a legitimate
// percentile), Runs reports 0, and Assess declines to judge.
func TestBaselineEmptyHistory(t *testing.T) {
	b := NewBaseline()
	if got := b.Percentile("bw", 100); got != -1 {
		t.Errorf("Percentile on empty history = %v, want -1", got)
	}
	if got := b.Runs("bw"); got != 0 {
		t.Errorf("Runs on empty history = %d, want 0", got)
	}
	if got := b.Assess("bw", 100, 0.1, 0.9); got != NoHistory {
		t.Errorf("Assess on empty history = %v, want NoHistory", got)
	}
}

// TestBaselineSingleSample covers the one-observation corner: every
// quantile collapses to that observation, Assess still refuses (one point
// is not a distribution), and the percentile is a step function around it.
func TestBaselineSingleSample(t *testing.T) {
	b := NewBaseline()
	b.Record("bw", 50)
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := b.Quantile("bw", q); got != 50 {
			t.Errorf("Quantile(%v) with one sample = %v, want 50", q, got)
		}
	}
	if got := b.Assess("bw", 999, 0.1, 0.9); got != NoHistory {
		t.Errorf("Assess with one sample = %v, want NoHistory", got)
	}
	if got := b.Percentile("bw", 49); got != 0 {
		t.Errorf("Percentile below the only sample = %v, want 0", got)
	}
	if got := b.Percentile("bw", 50); got != 1 {
		t.Errorf("Percentile at the only sample = %v, want 1", got)
	}
}

// TestBaselineAssessBand checks the two-sided classification on a real
// spread, including exact-boundary values (inclusive on both ends).
func TestBaselineAssessBand(t *testing.T) {
	b := NewBaseline()
	for i := 1; i <= 10; i++ {
		b.Record("bw", float64(i*10))
	}
	cases := []struct {
		value float64
		want  Assessment
	}{
		{5, Low},
		{55, Typical},
		{10, Low},
		{500, High},
		{100, High},
	}
	for _, c := range cases {
		if got := b.Assess("bw", c.value, 0.25, 0.75); got != c.want {
			t.Errorf("Assess(%v) = %v, want %v", c.value, got, c.want)
		}
	}
}

// TestDXTZeroOpFile pins DXT semantics for files that are opened and
// closed but never read or written: the per-file counters exist (metadata
// activity is real), but the extended trace stays empty — DXT records
// data operations only.
func TestDXTZeroOpFile(t *testing.T) {
	p := New()
	p.EnableDXT()
	recs := []trace.Record{
		{Layer: trace.LayerPOSIX, Rank: 0, Path: "/meta-only", Op: "open", Start: 0, End: 10},
		{Layer: trace.LayerPOSIX, Rank: 0, Path: "/meta-only", Op: "stat", Start: 10, End: 20},
		{Layer: trace.LayerPOSIX, Rank: 0, Path: "/meta-only", Op: "close", Start: 20, End: 30},
	}
	p.IngestAll(recs)
	if got := p.DXT(); len(got) != 0 {
		t.Fatalf("DXT on a zero-op file has %d records, want 0", len(got))
	}
	files := p.PerFile()
	if len(files) != 1 {
		t.Fatalf("PerFile returned %d entries, want 1", len(files))
	}
	fc := files[0]
	if fc.Opens != 1 || fc.Closes != 1 || fc.Stats2 != 1 {
		t.Errorf("metadata counters = opens %d closes %d stats %d, want 1/1/1", fc.Opens, fc.Closes, fc.Stats2)
	}
	if fc.Reads != 0 || fc.Writes != 0 || fc.BytesRead != 0 || fc.BytesWritten != 0 {
		t.Errorf("zero-op file has data counters: %+v", fc)
	}

	// A data op on another file still lands in DXT: the filter is per
	// operation, not per profiler.
	p.Ingest(trace.Record{Layer: trace.LayerPOSIX, Rank: 0, Path: "/data", Op: "write", Size: 4096, Start: 30, End: 40})
	if got := p.DXT(); len(got) != 1 {
		t.Fatalf("DXT after one write has %d records, want 1", len(got))
	}
}

// TestTimelineEmpty pins the no-activity sentinels: no bins, peak bin -1,
// burstiness 0.
func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline(0) // also covers the bin-width default
	if got := tl.BinWidth(); got <= 0 {
		t.Fatalf("default bin width = %v, want positive", got)
	}
	if got := len(tl.Bins()); got != 0 {
		t.Errorf("empty timeline has %d bins, want 0", got)
	}
	if got := tl.PeakWriteBin(); got != -1 {
		t.Errorf("PeakWriteBin on empty timeline = %d, want -1", got)
	}
	if got := tl.Burstiness(); got != 0 {
		t.Errorf("Burstiness on empty timeline = %v, want 0", got)
	}
}

// TestTimelineMetaOnly covers a timeline that saw records but no writes:
// bins exist, yet the write-centric summaries still report their
// sentinels.
func TestTimelineMetaOnly(t *testing.T) {
	tl := NewTimeline(100)
	tl.IngestAll([]trace.Record{
		{Layer: trace.LayerPOSIX, Op: "open", Start: 0, End: 50},
		{Layer: trace.LayerPOSIX, Op: "read", Size: 4096, Start: 50, End: 150},
	})
	if got := len(tl.Bins()); got != 2 {
		t.Fatalf("timeline has %d bins, want 2", got)
	}
	if got := tl.PeakWriteBin(); got != -1 {
		t.Errorf("PeakWriteBin with no writes = %d, want -1", got)
	}
	if got := tl.Burstiness(); got != 0 {
		t.Errorf("Burstiness with no writes = %v, want 0", got)
	}
	if b := tl.Bins()[1]; b.ReadOps != 1 || b.ReadBytes != 4096 {
		t.Errorf("read landed wrong: %+v", b)
	}
}
