package cli

import "testing"

// FuzzParseSize fuzzes the size grammar: parsing must never panic, and
// any value that parses must round-trip through FormatSize, which renders
// exactly for suffix-divisible values.
func FuzzParseSize(f *testing.F) {
	for _, s := range []string{
		"0", "1", "1024", "4KB", "1MB", "2GB", "64 MB", " 7 ", "-1", "-4KB",
		"1B", "b", "KB", "9223372036854775807", "999999999999GB", "1.5MB", "0x10",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSize(s)
		if err != nil {
			return
		}
		back, err := ParseSize(FormatSize(v))
		if err != nil {
			t.Fatalf("FormatSize(%d) = %q does not re-parse: %v", v, FormatSize(v), err)
		}
		if back != v {
			t.Fatalf("round trip %q -> %d -> %q -> %d", s, v, FormatSize(v), back)
		}
	})
}

// FuzzParseDuration fuzzes the duration grammar for panics only; the
// accepted language is checked by the table tests.
func FuzzParseDuration(f *testing.F) {
	for _, s := range []string{"0", "5ms", "1.5s", "100us", "7ns", "-3ms", "1h", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = ParseDuration(s)
	})
}
