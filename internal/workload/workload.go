// Package workload implements the synthetic and application workload
// generators the paper's taxonomy names: IOR-like parameterized bulk I/O,
// mdtest-like metadata stress, HACC-IO-like checkpoint phases, DLIO-like
// deep-learning training input pipelines, analytics scan/shuffle patterns,
// and data-intensive workflow DAGs. Every generator runs against the
// simulated file system and reports the metrics the corresponding real
// benchmark prints.
package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/trace"
)

// Harness bundles the per-rank environments a generator needs.
type Harness struct {
	Eng   *des.Engine
	FS    *pfs.FS
	World *mpi.World
	Envs  []*posixio.Env
	Col   *trace.Collector
}

// NewHarness creates ranks clients named <prefix>N with a shared collector
// (col may be nil to disable tracing).
func NewHarness(e *des.Engine, fs *pfs.FS, ranks int, prefix string, col *trace.Collector) *Harness {
	h := &Harness{
		Eng: e, FS: fs,
		World: mpi.NewWorld(e, ranks, mpi.DefaultOptions()),
		Col:   col,
	}
	for i := 0; i < ranks; i++ {
		h.Envs = append(h.Envs, posixio.NewEnv(fs.NewClient(fmt.Sprintf("%s%d", prefix, i)), i, col))
	}
	return h
}

// Run spawns fn per rank and drives the engine to completion, returning
// the makespan. It panics on simulated deadlock, which always indicates a
// generator bug.
func (h *Harness) Run(fn func(r *mpi.Rank, env *posixio.Env)) des.Time {
	h.World.Spawn(func(r *mpi.Rank) { fn(r, h.Envs[r.ID()]) })
	end := h.Eng.Run(des.MaxTime)
	if h.Eng.LiveProcs() != 0 {
		panic(fmt.Sprintf("workload: deadlock with %d live procs", h.Eng.LiveProcs()))
	}
	return end
}

// bwMBps converts bytes over a duration to MB/s.
func bwMBps(bytes int64, d des.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// opsPerSec converts an op count over a duration to ops/s.
func opsPerSec(n int, d des.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
