package serve

import (
	"fmt"
	"testing"
	"time"

	"pioeval/internal/campaign"
)

// TestRateLimiterBucket drives the token bucket on an injected clock:
// burst spends down, refill restores, and the Retry-After hint is the
// actual wait until one token exists.
func TestRateLimiterBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(2, 3) // 2 tokens/s, burst 3
	l.now = func() time.Time { return now }
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.allow("a")
	if ok {
		t.Fatal("4th immediate request allowed past burst")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("Retry-After hint %v, want (0, 500ms]-ish for rate 2/s", wait)
	}
	// An unrelated client has its own bucket.
	if ok, _ := l.allow("b"); !ok {
		t.Fatal("fresh client rejected")
	}
	// Refill: 1s at 2/s restores 2 tokens.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("post-refill request %d rejected", i)
		}
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("3rd post-refill request allowed, only 2 tokens refilled")
	}
}

// TestRateLimiterPrune: the bucket table stays bounded under a
// client-ID-spraying load.
func TestRateLimiterPrune(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(100, 10)
	l.now = func() time.Time { return now }
	for i := 0; i < 3*maxBuckets; i++ {
		l.allow(fmt.Sprintf("spray-%d", i))
		now = now.Add(time.Millisecond) // everyone refills to burst quickly
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxBuckets+1 {
		t.Fatalf("bucket table grew to %d entries, bound is %d", n, maxBuckets)
	}
}

// TestResultCacheLRU: bounded size, recency-ordered eviction.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if _, ok := c.get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("3"))
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently-used entry a evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
	// Disabled cache never stores.
	d := newResultCache(-1)
	d.put("x", []byte("1"))
	if _, ok := d.get("x"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

// TestSpecKeyCanonicalization: two spellings of the same campaign — one
// relying on defaults, one writing them out — share a key; a different
// campaign does not.
func TestSpecKeyCanonicalization(t *testing.T) {
	implicit := campaign.Spec{Name: "x", Seed: 42}
	explicit := campaign.Spec{
		Name: "x", Workload: "ior", Seed: 42, Reps: 1, Steps: 4,
		Ranks: []int{4}, Devices: []string{"hdd"},
		StripeCounts: []int{4}, StripeSizes: []int64{1 << 20},
		BlockSizes: []int64{16 << 20}, TransferSizes: []int64{1 << 20},
		Patterns: []string{"sequential"}, Collective: []bool{false},
		BurstBuffer: []bool{false}, Tiers: []string{""}, Faults: []string{""},
		Compress: []string{""},
	}
	if specKey(implicit) != specKey(explicit) {
		t.Fatal("defaulted and spelled-out forms of the same spec hash differently")
	}
	// The axis spellings "direct" and "none" canonicalize to "", so they
	// must not mint a second cache entry for the same campaign.
	spelled := implicit
	spelled.Tiers = []string{"direct"}
	spelled.Compress = []string{"none"}
	if specKey(implicit) != specKey(spelled) {
		t.Fatal("tier=direct/compress=none spellings hash differently from defaults")
	}
	other := implicit
	other.Seed = 43
	if specKey(implicit) == specKey(other) {
		t.Fatal("different seeds hash identically")
	}
	compressed := implicit
	compressed.Compress = []string{"lz"}
	if specKey(implicit) == specKey(compressed) {
		t.Fatal("compressed and uncompressed campaigns hash identically")
	}
}

// TestMetricsAccounting: the identity check accepts balanced books and
// rejects an unaccounted job or a stuck gauge.
func TestMetricsAccounting(t *testing.T) {
	var m Metrics
	for i := 0; i < 5; i++ {
		m.add(&m.enqueued)
	}
	m.add(&m.completed)
	m.add(&m.completed)
	m.add(&m.dropped)
	m.add(&m.cancelled)
	if err := m.Snapshot().AccountingError(); err == nil {
		t.Fatal("unbalanced books (5 != 2+1+1) passed the accounting check")
	}
	m.add(&m.completed)
	if err := m.Snapshot().AccountingError(); err != nil {
		t.Fatalf("balanced books failed: %v", err)
	}
	m.gauge(&m.queueDepth, 1)
	if err := m.Snapshot().AccountingError(); err == nil {
		t.Fatal("non-zero queue gauge passed the quiescence check")
	}
	m.gauge(&m.queueDepth, -1)
}

// TestMetricsP95: the latency window reports a sane p95.
func TestMetricsP95(t *testing.T) {
	var m Metrics
	for i := 1; i <= 100; i++ {
		m.recordLatency(time.Duration(i) * time.Millisecond)
	}
	p95 := m.Snapshot().P95JobLatencyMs
	if p95 < 90 || p95 > 100 {
		t.Fatalf("p95 over 1..100ms = %vms", p95)
	}
	// Overflow the window; old samples fall out.
	for i := 0; i < latencyWindow; i++ {
		m.recordLatency(time.Millisecond)
	}
	if p95 := m.Snapshot().P95JobLatencyMs; p95 != 1 {
		t.Fatalf("p95 after window turnover = %vms, want 1", p95)
	}
}
