package workload

import (
	"fmt"
	"strings"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/posixio"
)

// MDTest phase names, in the canonical execution order. Create always
// runs (the later phases need the files to exist); the rest are
// individually selectable, mirroring mdtest's -C/-T/-E/-r phase flags.
const (
	MDPhaseCreate = "create"
	MDPhaseStat   = "stat"
	MDPhaseRead   = "read"
	MDPhaseDelete = "delete"
)

// mdPhaseOrder is the canonical phase sequence.
var mdPhaseOrder = []string{MDPhaseCreate, MDPhaseStat, MDPhaseRead, MDPhaseDelete}

// ParseMDPhases parses a comma-separated phase list ("create,stat,delete")
// into the canonical order, rejecting unknown names and duplicates. The
// create phase is mandatory: every other phase operates on the files it
// made. An empty string selects the default set (create, stat, delete).
func ParseMDPhases(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return []string{MDPhaseCreate, MDPhaseStat, MDPhaseDelete}, nil
	}
	want := map[string]bool{}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		switch f {
		case MDPhaseCreate, MDPhaseStat, MDPhaseRead, MDPhaseDelete:
			if want[f] {
				return nil, fmt.Errorf("workload: duplicate mdtest phase %q", f)
			}
			want[f] = true
		default:
			return nil, fmt.Errorf("workload: unknown mdtest phase %q (want create, stat, read, or delete)", f)
		}
	}
	if !want[MDPhaseCreate] {
		return nil, fmt.Errorf("workload: mdtest phase list must include create (the other phases operate on its files)")
	}
	var out []string
	for _, p := range mdPhaseOrder {
		if want[p] {
			out = append(out, p)
		}
	}
	return out, nil
}

// MDTestConfig mirrors the mdtest parameter space: per-rank file
// create/stat/read/delete in private directories.
type MDTestConfig struct {
	Ranks        int
	FilesPerRank int
	// WriteBytes, when > 0, writes that many bytes into each created file
	// (mdtest -w); the read phase reads the same amount back (mdtest -e).
	WriteBytes int64
	// Depth nests each rank's files under a directory chain of this depth
	// (mdtest -z), adding per-level mkdir/rmdir load.
	Depth    int
	BasePath string
	// Phases selects which timed phases run, in canonical order
	// (create, stat, read, delete). Empty selects create, stat, delete —
	// the historical default. Create always runs even if omitted.
	Phases []string
}

func (c MDTestConfig) withDefaults() MDTestConfig {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.FilesPerRank <= 0 {
		c.FilesPerRank = 64
	}
	if c.BasePath == "" {
		c.BasePath = "/mdtest"
	}
	if len(c.Phases) == 0 {
		c.Phases = []string{MDPhaseCreate, MDPhaseStat, MDPhaseDelete}
	}
	return c
}

// has reports whether the phase list includes name.
func (c MDTestConfig) has(name string) bool {
	for _, p := range c.Phases {
		if p == name {
			return true
		}
	}
	return false
}

// MDTestReport mirrors mdtest's ops/sec summary. Phases that did not run
// report zero time and rate.
type MDTestReport struct {
	Config      MDTestConfig
	CreateTime  des.Time
	StatTime    des.Time
	ReadTime    des.Time
	RemoveTime  des.Time
	CreatesPerS float64
	StatsPerS   float64
	ReadsPerS   float64
	RemovesPerS float64
	TotalFiles  int
	Makespan    des.Time
}

// PhaseRate returns the ops/sec for a named phase (zero when it did not
// run), letting composite harnesses iterate phases uniformly.
func (r MDTestReport) PhaseRate(name string) float64 {
	switch name {
	case MDPhaseCreate:
		return r.CreatesPerS
	case MDPhaseStat:
		return r.StatsPerS
	case MDPhaseRead:
		return r.ReadsPerS
	case MDPhaseDelete:
		return r.RemovesPerS
	}
	return 0
}

// PhaseTime returns the simulated duration of a named phase.
func (r MDTestReport) PhaseTime(name string) des.Time {
	switch name {
	case MDPhaseCreate:
		return r.CreateTime
	case MDPhaseStat:
		return r.StatTime
	case MDPhaseRead:
		return r.ReadTime
	case MDPhaseDelete:
		return r.RemoveTime
	}
	return 0
}

// RunMDTest executes the metadata-stress workload: every enabled phase
// runs barrier-bracketed in canonical order over the same per-rank file
// population.
func RunMDTest(h *Harness, cfg MDTestConfig) MDTestReport {
	cfg = cfg.withDefaults()
	rep := MDTestReport{Config: cfg, TotalFiles: cfg.Ranks * cfg.FilesPerRank}
	var cStart, cEnd, sStart, sEnd, rdStart, rdEnd, rStart, rEnd des.Time

	end := h.Run(func(r *mpi.Rank, env *posixio.Env) {
		p := r.Proc()
		dir := fmt.Sprintf("%s/rank%d", cfg.BasePath, r.ID())
		// Every rank attempts the base mkdir: on a shared namespace the
		// first one wins (the rest get ErrExist), and on private node-local
		// namespaces each rank must create its own copy.
		_ = env.Mkdir(p, cfg.BasePath)
		r.Barrier()
		_ = env.Mkdir(p, dir)
		// Optional nested tree (mdtest -z).
		var levels []string
		for d := 0; d < cfg.Depth; d++ {
			dir = fmt.Sprintf("%s/d%d", dir, d)
			_ = env.Mkdir(p, dir)
			levels = append(levels, dir)
		}

		// Create phase (always runs; later phases need the files).
		r.Barrier()
		if r.ID() == 0 {
			cStart = r.Now()
		}
		for i := 0; i < cfg.FilesPerRank; i++ {
			path := fmt.Sprintf("%s/f%d", dir, i)
			fd, err := env.Open(p, path, posixio.OCreate|posixio.OExcl)
			if err != nil {
				continue
			}
			if cfg.WriteBytes > 0 {
				_, _ = env.Write(p, fd, cfg.WriteBytes)
				// mdtest -w syncs payloads before close; on write-back
				// tiers this also keeps the later delete phase from
				// unlinking files whose data is still staged.
				_ = env.Fsync(p, fd)
			}
			_ = env.Close(p, fd)
		}
		r.Barrier()
		prevEnd := des.Time(0)
		if r.ID() == 0 {
			cEnd = r.Now()
			prevEnd = cEnd
		}

		// Stat phase.
		if cfg.has(MDPhaseStat) {
			if r.ID() == 0 {
				sStart = prevEnd
			}
			for i := 0; i < cfg.FilesPerRank; i++ {
				_, _ = env.Stat(p, fmt.Sprintf("%s/f%d", dir, i))
			}
			r.Barrier()
			if r.ID() == 0 {
				sEnd = r.Now()
				prevEnd = sEnd
			}
		}

		// Read phase: open each file, read its payload back, close.
		if cfg.has(MDPhaseRead) {
			if r.ID() == 0 {
				rdStart = prevEnd
			}
			for i := 0; i < cfg.FilesPerRank; i++ {
				fd, err := env.Open(p, fmt.Sprintf("%s/f%d", dir, i), 0)
				if err != nil {
					continue
				}
				if cfg.WriteBytes > 0 {
					_, _ = env.Read(p, fd, cfg.WriteBytes)
				}
				_ = env.Close(p, fd)
			}
			r.Barrier()
			if r.ID() == 0 {
				rdEnd = r.Now()
				prevEnd = rdEnd
			}
		}

		// Delete phase (file unlinks plus directory teardown).
		if cfg.has(MDPhaseDelete) {
			if r.ID() == 0 {
				rStart = prevEnd
			}
			for i := 0; i < cfg.FilesPerRank; i++ {
				_ = env.Unlink(p, fmt.Sprintf("%s/f%d", dir, i))
			}
			for d := len(levels) - 1; d >= 0; d-- {
				_ = env.Rmdir(p, levels[d])
			}
			_ = env.Rmdir(p, fmt.Sprintf("%s/rank%d", cfg.BasePath, r.ID()))
			r.Barrier()
			if r.ID() == 0 {
				rEnd = r.Now()
			}
		}
	})
	rep.Makespan = end
	rep.CreateTime = cEnd - cStart
	rep.CreatesPerS = opsPerSec(rep.TotalFiles, rep.CreateTime)
	if cfg.has(MDPhaseStat) {
		rep.StatTime = sEnd - sStart
		rep.StatsPerS = opsPerSec(rep.TotalFiles, rep.StatTime)
	}
	if cfg.has(MDPhaseRead) {
		rep.ReadTime = rdEnd - rdStart
		rep.ReadsPerS = opsPerSec(rep.TotalFiles, rep.ReadTime)
	}
	if cfg.has(MDPhaseDelete) {
		rep.RemoveTime = rEnd - rStart
		rep.RemovesPerS = opsPerSec(rep.TotalFiles, rep.RemoveTime)
	}
	return rep
}
