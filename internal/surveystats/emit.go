package surveystats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Report bundles the corpus and its analysis for single-document JSON
// emission — the BENCH_io500.json survey record.
type Report struct {
	Corpus   *Corpus   `json:"corpus"`
	Analysis *Analysis `json:"analysis"`
}

// WriteJSON emits the full survey report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits the submission table: one row per suite run with its
// configuration, every metric, and the attributed bottleneck phase.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := MetricNames()
	header := append([]string{"index", "device", "tier", "compress", "ranks", "seed"}, names...)
	header = append(header, "bottleneck", "bottleneck_gain")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, s := range r.Corpus.Submissions {
		row := []string{
			strconv.Itoa(i), s.Config.Device, s.Config.Tier, s.Config.Compress,
			strconv.Itoa(s.Config.Ranks), strconv.FormatInt(s.Config.Seed, 10),
		}
		for _, n := range names {
			row = append(row, strconv.FormatFloat(metricValue(s, n), 'g', 9, 64))
		}
		b := r.Analysis.Bottlenecks[i]
		row = append(row, b.Phase, strconv.FormatFloat(b.Gain, 'g', 9, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders the analysis for humans: the distribution table,
// the phase-vs-total-score correlation column, and the bottleneck tally.
func (r *Report) WriteText(w io.Writer) error {
	a := r.Analysis
	dims := fmt.Sprintf("%d devices x %d tiers x %d rank counts",
		len(r.Corpus.Grid.Devices), len(r.Corpus.Grid.Tiers), len(r.Corpus.Grid.Ranks))
	if n := len(r.Corpus.Grid.Compress); n > 1 {
		dims += fmt.Sprintf(" x %d compressors", n)
	}
	if _, err := fmt.Fprintf(w, "IO500 submission-corpus survey: %d submissions (%s)\n", a.N, dims); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-22s %12s %12s %12s %12s %8s\n", "metric", "median", "p25", "p95", "max", "CV")
	for _, m := range a.Metrics {
		fmt.Fprintf(w, "%-22s %12.4f %12.4f %12.4f %12.4f %8.3f\n",
			m.Metric, m.Median, m.P25, m.P95, m.Max, m.CV)
	}

	names := MetricNames()
	scoreIdx := len(names) - 1
	fmt.Fprintf(w, "\ncorrelation with total score (across submissions):\n")
	fmt.Fprintf(w, "%-22s %10s %10s\n", "metric", "pearson", "spearman")
	for i, n := range names[:scoreIdx] {
		fmt.Fprintf(w, "%-22s %10.3f %10.3f\n", n, a.Pearson[i][scoreIdx], a.Spearman[i][scoreIdx])
	}

	fmt.Fprintf(w, "\nbottleneck attribution (phase whose lift to corpus median gains the most score):\n")
	if len(a.BottleneckCounts) == 0 {
		fmt.Fprintln(w, "  (no submission below corpus median in any phase)")
	}
	for _, pc := range a.BottleneckCounts {
		fmt.Fprintf(w, "  %-22s %3d submissions\n", pc.Phase, pc.Count)
	}
	return nil
}
