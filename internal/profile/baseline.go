package profile

import (
	"sort"

	"pioeval/internal/stats"
)

// Baseline places a run's metrics in the context of historical runs — the
// UMAMI idea (Lockwood et al.): a bandwidth number means little in
// isolation, but its percentile against the site's history flags
// regressions and anomalies.
type Baseline struct {
	history map[string][]float64
}

// NewBaseline creates an empty history.
func NewBaseline() *Baseline {
	return &Baseline{history: map[string][]float64{}}
}

// Record adds one historical observation of a metric.
func (b *Baseline) Record(metric string, value float64) {
	b.history[metric] = append(b.history[metric], value)
}

// Runs returns the number of recorded observations for metric.
func (b *Baseline) Runs(metric string) int { return len(b.history[metric]) }

// Percentile returns the fraction of historical values <= value, in [0,1];
// -1 when the metric has no history.
func (b *Baseline) Percentile(metric string, value float64) float64 {
	h := b.history[metric]
	if len(h) == 0 {
		return -1
	}
	return stats.NewECDF(h).At(value)
}

// Quantile returns the q-quantile of the metric's history.
func (b *Baseline) Quantile(metric string, q float64) float64 {
	return stats.Quantile(b.history[metric], q)
}

// Assessment classifies a new observation against history.
type Assessment int

// Assessment values.
const (
	NoHistory Assessment = iota
	Typical              // within [loQ, hiQ] quantiles
	Low                  // below loQ — e.g. a bandwidth regression
	High                 // above hiQ
)

// String returns the assessment name.
func (a Assessment) String() string {
	switch a {
	case Typical:
		return "typical"
	case Low:
		return "low"
	case High:
		return "high"
	}
	return "no-history"
}

// Assess classifies value against the metric's history using the given
// quantile band (e.g. 0.1, 0.9).
func (b *Baseline) Assess(metric string, value, loQ, hiQ float64) Assessment {
	h := b.history[metric]
	if len(h) < 2 {
		return NoHistory
	}
	sorted := append([]float64(nil), h...)
	sort.Float64s(sorted)
	if value < stats.Quantile(sorted, loQ) {
		return Low
	}
	if value > stats.Quantile(sorted, hiQ) {
		return High
	}
	return Typical
}
