// Package replay implements trace replay and rank extrapolation in the
// style of ScalaIOTrace/ScalaIOExtrap: POSIX traces (or skeleton programs)
// are replayed against any simulated file-system deployment, either as fast
// as possible or preserving inter-operation compute time; and traces
// recorded at a small rank count are extrapolated to larger counts by
// fitting per-op affine offset patterns and rank-templated file names.
package replay

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/skeleton"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// Errors returned by extrapolation.
var (
	ErrNotSPMD      = errors.New("replay: ranks have differing op streams; cannot extrapolate")
	ErrNoRanks      = errors.New("replay: no ranks in trace")
	ErrNotUniformOp = errors.New("replay: op kinds differ across ranks at same index")
)

// FromTrace groups POSIX-layer records into per-rank concrete op streams
// with inter-op think times, ready for replay or extrapolation.
func FromTrace(recs []trace.Record) [][]skeleton.ConcreteOp {
	byRank := map[int][]trace.Record{}
	for _, r := range recs {
		if r.Layer == trace.LayerPOSIX {
			byRank[r.Rank] = append(byRank[r.Rank], r)
		}
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	out := make([][]skeleton.ConcreteOp, 0, len(ranks))
	for _, rank := range ranks {
		rs := byRank[rank]
		ops := make([]skeleton.ConcreteOp, 0, len(rs))
		var lastEnd des.Time
		for _, r := range rs {
			think := r.Start - lastEnd
			if think < 0 {
				think = 0
			}
			ops = append(ops, skeleton.ConcreteOp{
				Op: r.Op, Path: r.Path, Offset: r.Offset, Size: r.Size, Think: think,
			})
			lastEnd = r.End
		}
		out = append(out, ops)
	}
	return out
}

// Options controls replay behaviour.
type Options struct {
	// Timed preserves each op's recorded pre-op compute time; false
	// replays as fast as possible (I/O time only).
	Timed bool
	// ThinkScale multiplies recorded compute gaps when Timed is set
	// (hfplayer-style replay acceleration/deceleration). 0 means 1.0.
	ThinkScale float64
	// StripeCount/StripeSize apply to files the replayer creates.
	StripeCount int
	StripeSize  int64
}

// scaledThink applies ThinkScale to a recorded gap.
func (o Options) scaledThink(t des.Time) des.Time {
	if o.ThinkScale == 0 || o.ThinkScale == 1 {
		return t
	}
	return des.Time(float64(t) * o.ThinkScale)
}

// Result summarizes a replay.
type Result struct {
	Makespan     des.Time
	PerRank      []des.Time
	BytesRead    int64
	BytesWritten int64
	Ops          int
}

// Bandwidth returns total bytes moved per second of makespan.
func (r Result) Bandwidth() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWritten) / r.Makespan.Seconds()
}

// Run replays per-rank op streams against fs, one simulated client per
// rank, and runs the engine to completion. The engine must be fresh or
// otherwise idle; Run drives it.
func Run(e *des.Engine, fs *pfs.FS, rankOps [][]skeleton.ConcreteOp, opts Options) (Result, error) {
	return RunTraced(e, fs, rankOps, opts, nil)
}

// RunTraced is Run with a trace collector attached to every replay client,
// so the replayed execution can itself be measured (the re-measurement leg
// of the evaluation cycle).
func RunTraced(e *des.Engine, fs *pfs.FS, rankOps [][]skeleton.ConcreteOp, opts Options, col *trace.Collector) (Result, error) {
	if len(rankOps) == 0 {
		return Result{}, ErrNoRanks
	}
	res := Result{PerRank: make([]des.Time, len(rankOps))}
	for rank, ops := range rankOps {
		rank, ops := rank, ops
		env := posixio.NewEnv(storage.Direct(fs.NewClient(fmt.Sprintf("replay%d", rank))), rank, col)
		env.StripeCount = opts.StripeCount
		env.StripeSize = opts.StripeSize
		e.Spawn(fmt.Sprintf("replay.rank%d", rank), func(p *des.Proc) {
			start := p.Now()
			fds := map[string]int{}
			fd := func(path string) int {
				if f, ok := fds[path]; ok {
					return f
				}
				f, err := env.Open(p, path, posixio.OCreate)
				if err != nil {
					f = -1
				}
				fds[path] = f
				return f
			}
			for _, op := range ops {
				if opts.Timed && op.Think > 0 {
					p.Wait(opts.scaledThink(op.Think))
				}
				switch op.Op {
				case "open":
					fd(op.Path)
				case "close":
					if f, ok := fds[op.Path]; ok && f >= 0 {
						_ = env.Close(p, f)
						delete(fds, op.Path)
					}
				case "read":
					if f := fd(op.Path); f >= 0 {
						_, _ = env.Pread(p, f, op.Offset, op.Size)
						res.BytesRead += op.Size
					}
				case "write":
					if f := fd(op.Path); f >= 0 {
						_, _ = env.Pwrite(p, f, op.Offset, op.Size)
						res.BytesWritten += op.Size
					}
				case "fsync":
					if f, ok := fds[op.Path]; ok && f >= 0 {
						_ = env.Fsync(p, f)
					}
				case "stat":
					_, _ = env.Stat(p, op.Path)
				case "mkdir":
					_ = env.Mkdir(p, op.Path)
				case "unlink":
					_ = env.Unlink(p, op.Path)
				}
				res.Ops++
			}
			for path, f := range fds {
				if f >= 0 {
					_ = env.Close(p, f)
				}
				delete(fds, path)
			}
			res.PerRank[rank] = p.Now() - start
		})
	}
	e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		return res, fmt.Errorf("replay: deadlock with %d live procs", e.LiveProcs())
	}
	for _, d := range res.PerRank {
		if d > res.Makespan {
			res.Makespan = d
		}
	}
	return res, nil
}

// Extrapolate scales an SPMD per-rank op stream from len(rankOps) ranks to
// newRanks by fitting, at each op index, an affine offset pattern
// offset(r) = base + stride*r and a rank-templated path. It requires at
// least 2 source ranks with identical op streams (op kind, size).
func Extrapolate(rankOps [][]skeleton.ConcreteOp, newRanks int) ([][]skeleton.ConcreteOp, error) {
	p := len(rankOps)
	if p == 0 {
		return nil, ErrNoRanks
	}
	if p < 2 {
		return nil, ErrNotSPMD
	}
	nops := len(rankOps[0])
	for _, ops := range rankOps {
		if len(ops) != nops {
			return nil, ErrNotSPMD
		}
	}
	out := make([][]skeleton.ConcreteOp, newRanks)
	for r := range out {
		out[r] = make([]skeleton.ConcreteOp, nops)
	}
	for i := 0; i < nops; i++ {
		// Verify uniform op kind and size, affine offsets.
		kind, size := rankOps[0][i].Op, rankOps[0][i].Size
		think := rankOps[0][i].Think
		for r := 1; r < p; r++ {
			if rankOps[r][i].Op != kind {
				return nil, ErrNotUniformOp
			}
			if rankOps[r][i].Size != size {
				return nil, fmt.Errorf("replay: op %d size differs across ranks", i)
			}
		}
		base := rankOps[0][i].Offset
		stride := rankOps[1][i].Offset - base
		for r := 2; r < p; r++ {
			if rankOps[r][i].Offset != base+int64(r)*stride {
				return nil, fmt.Errorf("replay: op %d offsets not affine in rank", i)
			}
		}
		pathOf, err := pathTemplate(rankOps, i)
		if err != nil {
			return nil, err
		}
		for r := 0; r < newRanks; r++ {
			out[r][i] = skeleton.ConcreteOp{
				Op:     kind,
				Path:   pathOf(r),
				Offset: base + int64(r)*stride,
				Size:   size,
				Think:  think,
			}
		}
	}
	return out, nil
}

// pathTemplate returns a function mapping rank to path for op index i:
// either all ranks share one path, or paths embed the rank number between a
// common prefix and suffix (file-per-process).
func pathTemplate(rankOps [][]skeleton.ConcreteOp, i int) (func(int) string, error) {
	p0 := rankOps[0][i].Path
	shared := true
	for r := 1; r < len(rankOps); r++ {
		if rankOps[r][i].Path != p0 {
			shared = false
			break
		}
	}
	if shared {
		return func(int) string { return p0 }, nil
	}
	// File-per-process: find prefix/suffix such that path(r) = prefix +
	// itoa(r) + suffix for every source rank.
	r0 := strconv.Itoa(0)
	for idx := strings.Index(p0, r0); idx >= 0; idx = indexFrom(p0, r0, idx+1) {
		prefix, suffix := p0[:idx], p0[idx+len(r0):]
		ok := true
		for r := 1; r < len(rankOps); r++ {
			if rankOps[r][i].Path != prefix+strconv.Itoa(r)+suffix {
				ok = false
				break
			}
		}
		if ok {
			return func(r int) string { return prefix + strconv.Itoa(r) + suffix }, nil
		}
	}
	return nil, fmt.Errorf("replay: op %d paths not rank-templated (%q ...)", i, p0)
}

func indexFrom(s, sub string, from int) int {
	if from >= len(s) {
		return -1
	}
	i := strings.Index(s[from:], sub)
	if i < 0 {
		return -1
	}
	return from + i
}
