// Package monitor implements storage-system-level monitoring: a periodic
// server-side statistics sampler (per-OST and MDS load, the data center
// operators collect), an FSMonitor-style metadata event stream, and an
// end-to-end correlator that joins client-side job activity with
// server-side load to find interfering jobs — the three side channels the
// paper's §IV-A2 lists beyond profiles and traces.
package monitor

import (
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/sched"
)

// Sample is one server-side statistics snapshot.
type Sample struct {
	At   des.Time
	OSTs []pfs.OSTStats
	MDS  pfs.MDSStats
}

// Sampler periodically snapshots server counters, like a site telemetry
// collector polling /proc on the storage servers.
type Sampler struct {
	fs       *pfs.FS
	interval des.Time
	samples  []Sample
	stopped  bool
}

// NewSampler starts a sampler on fs with the given interval, sampling until
// simulated time `until` (inclusive) or until Stop is called. A sampler
// must be bounded — an unbounded periodic process would keep the event
// queue alive forever.
func NewSampler(e *des.Engine, fs *pfs.FS, interval, until des.Time) *Sampler {
	if interval <= 0 {
		panic("monitor: non-positive sampling interval")
	}
	s := &Sampler{fs: fs, interval: interval}
	e.Spawn("monitor.sampler", func(p *des.Proc) {
		for !s.stopped && p.Now() <= until {
			s.samples = append(s.samples, Sample{At: p.Now(), OSTs: fs.OSTStats(), MDS: fs.MDSStats()})
			p.Wait(interval)
		}
	})
	return s
}

// Stop ends sampling after the current interval.
func (s *Sampler) Stop() { s.stopped = true }

// Samples returns the collected snapshots.
func (s *Sampler) Samples() []Sample { return s.samples }

// Rates holds per-interval deltas derived from two adjacent samples.
type Rates struct {
	At            des.Time
	Interval      des.Time
	ReadBps       float64 // aggregate OST read bandwidth
	WriteBps      float64 // aggregate OST write bandwidth
	MDSOpsPerSec  float64
	MaxOSTUtil    float64 // highest per-OST utilization in the window
	LoadImbalance float64 // max/mean OST bytes moved this interval (1 = perfect)
}

// DeriveRates converts the sample series into per-interval rates.
func (s *Sampler) DeriveRates() []Rates {
	var out []Rates
	for i := 1; i < len(s.samples); i++ {
		prev, cur := s.samples[i-1], s.samples[i]
		dt := cur.At - prev.At
		if dt <= 0 {
			continue
		}
		secs := dt.Seconds()
		var dRead, dWrite int64
		var perOST []float64
		maxUtil := 0.0
		for j := range cur.OSTs {
			r := cur.OSTs[j].BytesRead - prev.OSTs[j].BytesRead
			w := cur.OSTs[j].BytesWritten - prev.OSTs[j].BytesWritten
			dRead += r
			dWrite += w
			perOST = append(perOST, float64(r+w))
			if u := cur.OSTs[j].Utilization; u > maxUtil {
				maxUtil = u
			}
		}
		var maxB, sumB float64
		for _, b := range perOST {
			if b > maxB {
				maxB = b
			}
			sumB += b
		}
		imb := 1.0
		if sumB > 0 && len(perOST) > 0 {
			mean := sumB / float64(len(perOST))
			imb = maxB / mean
		}
		out = append(out, Rates{
			At:            cur.At,
			Interval:      dt,
			ReadBps:       float64(dRead) / secs,
			WriteBps:      float64(dWrite) / secs,
			MDSOpsPerSec:  float64(cur.MDS.TotalOps-prev.MDS.TotalOps) / secs,
			MaxOSTUtil:    maxUtil,
			LoadImbalance: imb,
		})
	}
	return out
}

// FSEvent is an FSMonitor-style metadata event.
type FSEvent struct {
	At     des.Time
	Op     string // create, unlink, mkdir, rmdir
	Path   string
	Client string
}

// FSWatcher collects namespace-changing events from the file system.
// Install it with Watch; it composes with any existing observer.
type FSWatcher struct {
	events []FSEvent
}

// Watch installs the watcher on fs, chaining any previously installed
// observer.
func Watch(fs *pfs.FS) *FSWatcher {
	w := &FSWatcher{}
	fs.SetOpObserver(func(ev pfs.OpEvent) {
		switch ev.Op {
		case "create", "unlink", "mkdir", "rmdir":
			w.events = append(w.events, FSEvent{At: ev.End, Op: ev.Op, Path: ev.Path, Client: ev.Client})
		}
	})
	return w
}

// Events returns the collected metadata events.
func (w *FSWatcher) Events() []FSEvent { return w.events }

// CountByOp returns event counts keyed by operation.
func (w *FSWatcher) CountByOp() map[string]int {
	out := map[string]int{}
	for _, ev := range w.events {
		out[ev.Op]++
	}
	return out
}

// JobActivity describes one job's I/O interval for correlation.
type JobActivity struct {
	JobID   string
	Start   des.Time
	End     des.Time
	Bytes   int64 // bytes the job moved (from its client-side profile)
	MetaOps uint64
}

// FromSchedLog converts workload-manager job records into correlation
// inputs — the "workload manager logs" side channel of §IV-A2.
func FromSchedLog(log []sched.Record) []JobActivity {
	out := make([]JobActivity, len(log))
	for i, r := range log {
		out[i] = JobActivity{JobID: r.ID, Start: r.Start, End: r.End}
	}
	return out
}

// Interference is a pair of jobs whose I/O intervals overlap while the
// storage system was near saturation.
type Interference struct {
	A, B    string
	Overlap des.Time
	// PeakUtil is the highest OST utilization observed during the overlap.
	PeakUtil float64
}

// Correlate joins job activity windows against server rates and reports job
// pairs that overlapped while any OST exceeded utilThreshold — the
// end-to-end analysis the paper's §IV-A2 calls for.
func Correlate(jobs []JobActivity, rates []Rates, utilThreshold float64) []Interference {
	var out []Interference
	for i := 0; i < len(jobs); i++ {
		for j := i + 1; j < len(jobs); j++ {
			a, b := jobs[i], jobs[j]
			lo, hi := maxT(a.Start, b.Start), minT(a.End, b.End)
			if hi <= lo {
				continue
			}
			peak := 0.0
			for _, rt := range rates {
				if rt.At >= lo && rt.At <= hi && rt.MaxOSTUtil > peak {
					peak = rt.MaxOSTUtil
				}
			}
			if peak >= utilThreshold {
				out = append(out, Interference{A: a.JobID, B: b.JobID, Overlap: hi - lo, PeakUtil: peak})
			}
		}
	}
	return out
}

func maxT(a, b des.Time) des.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b des.Time) des.Time {
	if a < b {
		return a
	}
	return b
}
