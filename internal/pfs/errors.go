package pfs

import (
	"errors"
	"fmt"
)

// Fault-path errors. Server-side failures surface to clients as typed
// errors so that the resilience policy (retry / backoff / degraded mode)
// and callers can classify them with errors.Is.
var (
	// ErrNoSuchOST reports an OST id outside the deployment.
	ErrNoSuchOST = errors.New("pfs: no such OST")
	// ErrClosedHandle reports I/O on a closed file handle.
	ErrClosedHandle = errors.New("pfs: operation on closed handle")
	// ErrOSTDown reports a request to a crashed object storage target.
	ErrOSTDown = errors.New("pfs: OST down")
	// ErrMDSUnavailable reports a metadata request during an MDS outage.
	ErrMDSUnavailable = errors.New("pfs: MDS unavailable")
	// ErrTimeout reports an RPC abandoned after the simulated timeout.
	ErrTimeout = errors.New("pfs: request timed out")
	// ErrIO reports a transient per-request I/O failure (injected).
	ErrIO = errors.New("pfs: transient I/O error")
	// ErrBadSlowdown reports an invalid slowdown/degradation factor.
	ErrBadSlowdown = errors.New("pfs: slowdown factor must be >= 1")
)

// retryable reports whether the resilience policy may retry after err:
// only transient transport/server failures qualify, never namespace errors
// (ErrExist, ErrNotExist, ...) whose side effects are final.
func retryable(err error) bool {
	return errors.Is(err, ErrOSTDown) ||
		errors.Is(err, ErrMDSUnavailable) ||
		errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrIO)
}

// DegradedReadError reports a read completed in degraded mode: the stripes
// on healthy OSTs were read, but Missing bytes lived on unreachable
// targets. It unwraps to the underlying fault (usually ErrOSTDown) so
// errors.Is classification still works.
type DegradedReadError struct {
	Path      string
	Requested int64
	Missing   int64
	Cause     error
}

// Error implements error.
func (e *DegradedReadError) Error() string {
	return fmt.Sprintf("pfs: degraded read of %s: %d of %d bytes unavailable: %v",
		e.Path, e.Missing, e.Requested, e.Cause)
}

// Unwrap exposes the underlying fault.
func (e *DegradedReadError) Unwrap() error { return e.Cause }
