package cli

import (
	"flag"
	"testing"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"0":     0,
		"1024":  1024,
		"4KB":   4 << 10,
		"16MB":  16 << 20,
		"2GB":   2 << 30,
		"100B":  100,
		" 8MB ": 8 << 20,
		"3kb":   3 << 10,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "MB", "1.5MB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) should error", bad)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int64]string{
		100:     "100B",
		4 << 10: "4KB",
		3 << 20: "3MB",
		2 << 30: "2GB",
		1500:    "1500B",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestClusterFlagsConfig(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var c ClusterFlags
	c.Register(fs)
	if err := fs.Parse([]string{"-oss", "8", "-device", "nvme", "-stripe-size", "4MB"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := c.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumOSS != 8 || cfg.DefaultStripeSize != 4<<20 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.OSTDevice == nil || cfg.OSTDevice().Name() != "ssd" { // NVMe uses the SSD model type
		t.Errorf("device model = %v", cfg.OSTDevice().Name())
	}

	c.Device = "floppy"
	if _, err := c.Config(); err == nil {
		t.Error("unknown device should error")
	}
	c.Device = "hdd"
	c.StripeSize = "garbage"
	if _, err := c.Config(); err == nil {
		t.Error("bad stripe size should error")
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]int64{
		"100ns": 100,
		"5us":   5000,
		"2ms":   2e6,
		"1.5s":  1.5e9,
		"3":     3e9,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || int64(got) != want {
			t.Errorf("ParseDuration(%q) = %d, %v; want %d", in, int64(got), err, want)
		}
	}
	for _, bad := range []string{"", "fast", "5parsecs"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) should error", bad)
		}
	}
}
