package pfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/netsim"
)

// Namespace errors.
var (
	ErrNotExist = errors.New("pfs: no such file or directory")
	ErrExist    = errors.New("pfs: file exists")
	ErrIsDir    = errors.New("pfs: is a directory")
	ErrNotDir   = errors.New("pfs: not a directory")
	ErrNotEmpty = errors.New("pfs: directory not empty")
)

// MetaOp enumerates metadata operation kinds for MDS accounting.
type MetaOp int

// Metadata operation kinds.
const (
	OpLookup MetaOp = iota
	OpCreate
	OpOpen
	OpStat
	OpUnlink
	OpMkdir
	OpRmdir
	OpReaddir
	OpSetSize
	numMetaOps
)

var metaOpNames = [...]string{"lookup", "create", "open", "stat", "unlink", "mkdir", "rmdir", "readdir", "setsize"}

// String returns the operation name.
func (op MetaOp) String() string {
	if op >= 0 && int(op) < len(metaOpNames) {
		return metaOpNames[op]
	}
	return fmt.Sprintf("metaop(%d)", int(op))
}

// Layout is a file's striping configuration.
type Layout struct {
	StripeSize  int64
	StripeCount int
	OSTs        []int // OST indices, len == StripeCount
}

// inode is a namespace entry.
type inode struct {
	path     string
	isDir    bool
	size     int64
	layout   Layout
	children map[string]bool // for directories
	ctime    des.Time
	mtime    des.Time
}

// FileInfo is the result of Stat.
type FileInfo struct {
	Path   string
	IsDir  bool
	Size   int64
	Layout Layout
	CTime  des.Time
	MTime  des.Time
}

// mds is the metadata server: a namespace behind a thread-pool resource.
type mds struct {
	node    string
	threads *des.Resource
	opCost  des.Time
	inodes  map[string]*inode
	ops     [numMetaOps]uint64
	busy    des.Time
	down    bool // unavailability window (fault injection)
}

// FS is a simulated parallel file system instance.
type FS struct {
	eng     *des.Engine
	cfg     Config
	compute *netsim.Fabric
	storage *netsim.Fabric // nil when NumIONodes == 0 (flat network)
	mds     *mds
	osts    []*ost
	ionodes []string
	nextION int
	nextOST int // round-robin base for layout allocation

	clientList []*Client

	// Fault-injection state (see resilience.go).
	transientRate float64
	faultLog      []FaultRecord

	observer    func(OpEvent)
	ostObserver func(OSTEvent)
}

// New builds a file system on engine e from cfg. The root directory "/"
// exists; everything else must be created through a Client.
func New(e *des.Engine, cfg Config) *FS {
	cfg = cfg.withDefaults()
	fs := &FS{eng: e, cfg: cfg}

	fs.compute = netsim.NewFabric(e, cfg.ComputeFabric)
	if cfg.NumIONodes > 0 {
		fs.storage = netsim.NewFabric(e, cfg.StorageFabric)
		for i := 0; i < cfg.NumIONodes; i++ {
			name := fmt.Sprintf("ionode%d", i)
			fs.compute.AddNode(name)
			fs.storage.AddNode(name)
			fs.ionodes = append(fs.ionodes, name)
		}
	}

	serverFabric := fs.serverFabric()
	serverFabric.AddNode("mds")
	fs.mds = &mds{
		node:    "mds",
		threads: des.NewResource(e, "mds.threads", cfg.MDSThreads),
		opCost:  cfg.MDSOpCost,
		inodes:  map[string]*inode{"/": {path: "/", isDir: true, children: map[string]bool{}}},
	}

	id := 0
	for oss := 0; oss < cfg.NumOSS; oss++ {
		node := fmt.Sprintf("oss%d", oss)
		serverFabric.AddNode(node)
		for t := 0; t < cfg.OSTsPerOSS; t++ {
			dev := blockdev.NewDevice(e, fmt.Sprintf("ost%d", id), cfg.OSTDevice(), cfg.OSTQueueDepth)
			fs.osts = append(fs.osts, newOST(id, node, dev))
			id++
		}
	}
	return fs
}

// serverFabric returns the fabric on which servers live: the storage fabric
// when an I/O-node tier exists, otherwise the compute fabric.
func (fs *FS) serverFabric() *netsim.Fabric {
	if fs.storage != nil {
		return fs.storage
	}
	return fs.compute
}

// Engine returns the simulation engine.
func (fs *FS) Engine() *des.Engine { return fs.eng }

// Config returns the (defaulted) configuration.
func (fs *FS) Config() Config { return fs.cfg }

// NumOSTs returns the number of object storage targets.
func (fs *FS) NumOSTs() int { return len(fs.osts) }

// cleanPath normalizes a path to slash-separated absolute form.
func cleanPath(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", fmt.Errorf("pfs: path %q must be absolute", path)
	}
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, s := range parts {
		switch s {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	return "/" + strings.Join(out, "/"), nil
}

func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// mdsExec runs one metadata operation at the MDS in simulated time: the
// caller has already paid the network cost; this pays queueing + CPU and
// then applies fn to the namespace.
func (fs *FS) mdsExec(p *des.Proc, op MetaOp, fn func() error) error {
	m := fs.mds
	m.threads.Acquire(p)
	p.Wait(m.opCost)
	m.threads.Release()
	m.ops[op]++
	m.busy += m.opCost
	return fn()
}

// mdsExecE is the continuation form of mdsExec: queueing + CPU on the
// calling EventProc, then fn applied to the namespace and its error handed
// to k.
func (fs *FS) mdsExecE(ep *des.EventProc, op MetaOp, fn func() error, k func(error)) {
	m := fs.mds
	m.threads.AcquireE(ep, func() {
		ep.Wait(m.opCost, func() {
			m.threads.Release()
			m.ops[op]++
			m.busy += m.opCost
			k(fn())
		})
	})
}

// LayoutPolicy selects the OST allocation strategy for new files.
type LayoutPolicy int

// Layout policies.
const (
	// RoundRobin cycles through OSTs in index order (Lustre default).
	RoundRobin LayoutPolicy = iota
	// LeastLoaded picks the OSTs with the fewest bytes written so far —
	// a contention-aware allocator in the spirit of iez (Wadhwa et al.).
	LeastLoaded
)

// String returns the policy name.
func (p LayoutPolicy) String() string {
	if p == LeastLoaded {
		return "least-loaded"
	}
	return "round-robin"
}

// allocateLayout picks OSTs for a new file per the configured policy.
func (fs *FS) allocateLayout(stripeCount int, stripeSize int64) Layout {
	if stripeCount <= 0 {
		stripeCount = fs.cfg.DefaultStripeCount
	}
	if stripeCount > len(fs.osts) {
		stripeCount = len(fs.osts)
	}
	if stripeSize <= 0 {
		stripeSize = fs.cfg.DefaultStripeSize
	}
	l := Layout{StripeSize: stripeSize, StripeCount: stripeCount}
	switch fs.cfg.Layout {
	case LeastLoaded:
		idx := make([]int, len(fs.osts))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			la := fs.osts[idx[a]].dev.Stats().BytesWritten
			lb := fs.osts[idx[b]].dev.Stats().BytesWritten
			if la != lb {
				return la < lb
			}
			return idx[a] < idx[b]
		})
		l.OSTs = append(l.OSTs, idx[:stripeCount]...)
	default:
		for i := 0; i < stripeCount; i++ {
			l.OSTs = append(l.OSTs, (fs.nextOST+i)%len(fs.osts))
		}
		fs.nextOST = (fs.nextOST + stripeCount) % len(fs.osts)
	}
	return l
}

// MDSStats is a snapshot of metadata-server counters.
type MDSStats struct {
	Ops      map[string]uint64
	TotalOps uint64
	BusyTime des.Time
	QueueLen int
}

// MDSStats returns a snapshot of MDS counters.
func (fs *FS) MDSStats() MDSStats {
	s := MDSStats{Ops: make(map[string]uint64), QueueLen: fs.mds.threads.QueueLen(), BusyTime: fs.mds.busy}
	for op := MetaOp(0); op < numMetaOps; op++ {
		n := fs.mds.ops[op]
		if n > 0 {
			s.Ops[op.String()] = n
		}
		s.TotalOps += n
	}
	return s
}

// OSTStats returns per-OST snapshots, ordered by OST index.
func (fs *FS) OSTStats() []OSTStats {
	out := make([]OSTStats, len(fs.osts))
	for i, o := range fs.osts {
		out[i] = o.stats()
	}
	return out
}

// InjectOSTSlowdown degrades OST id by the given factor (failure /
// straggler injection, >= 1; 1 restores nominal speed). It returns
// ErrNoSuchOST for an unknown id and ErrBadSlowdown for factor < 1.
func (fs *FS) InjectOSTSlowdown(id int, factor float64) error {
	if id < 0 || id >= len(fs.osts) {
		return fmt.Errorf("%w: %d", ErrNoSuchOST, id)
	}
	if factor < 1 {
		return fmt.Errorf("%w: got %g for ost%d", ErrBadSlowdown, factor, id)
	}
	if err := fs.osts[id].dev.SetSlowdown(factor); err != nil {
		return fmt.Errorf("pfs: ost%d: %w", id, err)
	}
	fs.recordFault("ost-slowdown", id, factor)
	return nil
}

// TotalBytes sums read and written bytes over all OSTs.
func (fs *FS) TotalBytes() (read, written int64) {
	for _, o := range fs.osts {
		st := o.dev.Stats()
		read += st.BytesRead
		written += st.BytesWritten
	}
	return read, written
}

// Paths returns all namespace paths in sorted order (for tests and tools).
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.mds.inodes))
	for p := range fs.mds.inodes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
