package stats

// Autocorrelation returns the sample autocorrelation of xs at the given
// lag (1 at lag 0; 0 for degenerate inputs).
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// DetectPeriod finds the dominant period of a series by scanning
// autocorrelation peaks over lags [minLag, maxLag]. It returns the lag with
// the highest autocorrelation that is also a local maximum, and that
// correlation value; period 0 means no significant periodicity (peak below
// threshold). This is the classic I/O-periodicity analysis of §IV-B1
// applied to sampled bandwidth series.
func DetectPeriod(xs []float64, minLag, maxLag int, threshold float64) (period int, strength float64) {
	if minLag < 1 {
		minLag = 1
	}
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	best, bestR := 0, threshold
	for lag := minLag; lag <= maxLag; lag++ {
		r := Autocorrelation(xs, lag)
		if r <= bestR {
			continue
		}
		// Require a local maximum to avoid picking the decaying shoulder
		// of lag ~ 0.
		prev, next := Autocorrelation(xs, lag-1), 0.0
		if lag+1 <= maxLag {
			next = Autocorrelation(xs, lag+1)
		}
		if r >= prev && r >= next {
			best, bestR = lag, r
		}
	}
	if best == 0 {
		return 0, 0
	}
	return best, bestR
}
