package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden outputs")

// checkGolden compares got against the named testdata file byte for byte,
// rewriting it under -update-golden, and reports the first diverging line
// on mismatch.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("output diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("output length differs: got %d lines, want %d", len(gl), len(wl))
}

// TestGoldenDefault pins the default-flag output byte for byte — the
// exact text a user sees running iorbench with no arguments. The
// simulation promises per-seed determinism; this is the end-to-end check
// of that promise plus the formatting layer. Regenerate deliberately with
//
//	go test ./cmd/iorbench -update-golden
func TestGoldenDefault(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if errb.Len() != 0 {
		t.Errorf("run wrote to stderr: %q", errb.String())
	}
	checkGolden(t, "testdata/default_golden.txt", out.String())
}

// TestGoldenSharedStridedRead pins a loaded configuration: shared file,
// strided pattern, collective I/O, read-back phase.
func TestGoldenSharedStridedRead(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-ranks", "8", "-block", "1MB", "-transfer", "64KB",
		"-shared", "-pattern", "strided", "-collective", "-read", "-device", "ssd"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "testdata/shared_strided_golden.txt", out.String())
}

// TestRunStableAcrossRuns guards the golden files themselves: two
// in-process runs must already agree, so a future divergence against
// testdata is a determinism break, not flakiness.
func TestRunStableAcrossRuns(t *testing.T) {
	once := func() string {
		var out, errb bytes.Buffer
		if err := run([]string{"-read"}, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if once() != once() {
		t.Fatal("same-flag iorbench runs diverge")
	}
}

// TestBadFlagsError covers rejection paths through run.
func TestBadFlagsError(t *testing.T) {
	for _, args := range [][]string{
		{"-pattern", "zigzag"},
		{"-block", "huge"},
		{"-device", "tape"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
