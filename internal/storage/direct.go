package storage

import (
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// DirectPFS routes every operation straight to the parallel file system
// through one pfs.Client — the pre-seam data path, preserved bit for bit
// (the simfs golden transcript gates this). It is a pure adapter: no
// state, no extra simulated time, no reordering.
type DirectPFS struct{ c *pfs.Client }

// Direct wraps an existing PFS client as a Target.
func Direct(c *pfs.Client) *DirectPFS { return &DirectPFS{c: c} }

// Client returns the wrapped PFS client, for callers that need the
// client-side statistics or node identity.
func (d *DirectPFS) Client() *pfs.Client { return d.c }

// Create creates path on the PFS and returns its handle.
func (d *DirectPFS) Create(p *des.Proc, path string, stripeCount int, stripeSize int64) (Handle, error) {
	h, err := d.c.Create(p, path, stripeCount, stripeSize)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Open opens path on the PFS.
func (d *DirectPFS) Open(p *des.Proc, path string) (Handle, error) {
	h, err := d.c.Open(p, path)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Stat returns PFS file metadata.
func (d *DirectPFS) Stat(p *des.Proc, path string) (FileInfo, error) {
	return d.c.Stat(p, path)
}

// Mkdir creates a directory on the PFS.
func (d *DirectPFS) Mkdir(p *des.Proc, path string) error { return d.c.Mkdir(p, path) }

// Rmdir removes an empty PFS directory.
func (d *DirectPFS) Rmdir(p *des.Proc, path string) error { return d.c.Rmdir(p, path) }

// Unlink removes a PFS file.
func (d *DirectPFS) Unlink(p *des.Proc, path string) error { return d.c.Unlink(p, path) }

// Readdir lists a PFS directory.
func (d *DirectPFS) Readdir(p *des.Proc, path string) ([]string, error) {
	return d.c.Readdir(p, path)
}
