package faults_test

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/faults"
)

// ExampleParseCampaign parses the compact scripted-campaign syntax the
// --faults command-line flag and the campaign runner's faults axis accept.
func ExampleParseCampaign() {
	c, err := faults.ParseCampaign("ostcrash:1@100ms; slowdown:3x10@2s; mdsdown@1s")
	if err != nil {
		panic(err)
	}
	for _, ev := range c.Events {
		fmt.Println(ev)
	}
	// Output:
	// 100ms ost-crash ost1
	// 2s ost-slowdown ost3 x10
	// 1s mds-down
}

// printTarget implements faults.Target by announcing each injection; the
// real target in every experiment is the simulated parallel file system.
type printTarget struct{ eng *des.Engine }

func (t printTarget) NumOSTs() int { return 4 }
func (t printTarget) CrashOST(id int) error {
	fmt.Printf("%v: crash ost%d\n", t.eng.Now(), id)
	return nil
}
func (t printTarget) RecoverOST(id int) error {
	fmt.Printf("%v: recover ost%d\n", t.eng.Now(), id)
	return nil
}
func (t printTarget) InjectOSTSlowdown(id int, factor float64) error { return nil }
func (t printTarget) SetMDSAvailable(up bool)                        {}
func (t printTarget) SetTransientErrorRate(rate float64) error       { return nil }
func (t printTarget) SetLinkDegradation(factor float64) error        { return nil }

// ExampleRun schedules a scripted campaign on a seeded engine: events fire
// at their simulated times, and the scheduler's log records each applied
// event for determinism checks.
func ExampleRun() {
	e := des.NewEngine(1)
	sched, err := faults.Run(e, printTarget{e}, faults.Campaign{Events: []faults.Event{
		{At: 100 * des.Millisecond, Kind: faults.OSTCrash, OST: 1},
		{At: 400 * des.Millisecond, Kind: faults.OSTRecover, OST: 1},
	}})
	if err != nil {
		panic(err)
	}
	e.Run(des.MaxTime)
	fmt.Printf("%d events applied, %d errors\n", len(sched.Log()), len(sched.Errs()))
	// Output:
	// 100ms: crash ost1
	// 400ms: recover ost1
	// 2 events applied, 0 errors
}
