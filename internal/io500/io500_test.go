package io500

import (
	"bytes"
	"testing"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

// tinyConfig is a suite configuration small enough for unit tests.
func tinyConfig() Config {
	return Config{
		Ranks: 2, Device: "hdd", Seed: 42, Workers: 1,
		EasyBlock: 1 << 20, EasyXfer: 256 << 10,
		HardXfer: 47008, HardOps: 4,
		EasyFiles: 8, HardFiles: 4,
	}
}

// standaloneCluster replicates exactly how cmd/iorbench and
// cmd/mdtestbench build their cluster: cli.ClusterFlags at default flag
// values, the given device and seed.
func standaloneCluster(t *testing.T, device string, seed int64) pfs.Config {
	t.Helper()
	cf := cli.ClusterFlags{
		OSS: 4, OSTsPerOSS: 2, Device: device, MDSThreads: 8,
		IONodes: 0, StripeCnt: 4, StripeSize: "1MB", Seed: seed,
	}
	cfg, err := cf.Config()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestIorEasyMatchesStandaloneIorbench pins the cross-command equivalence
// the suite promises: the ior-easy phase pair must reproduce a standalone
// cmd/iorbench run at the same configuration bit-for-bit — same simulated
// phase durations, same byte counts, and the phase value derived from
// them by the suite's own GiB/s formula.
func TestIorEasyMatchesStandaloneIorbench(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Standalone side, constructed exactly as cmd/iorbench main does.
	e := des.NewEngine(cfg.Seed)
	h := workload.NewHarness(e, pfs.New(e, standaloneCluster(t, cfg.Device, cfg.Seed)), cfg.Ranks, "cn", nil)
	rep := workload.RunIOR(h, workload.IORConfig{
		Ranks: cfg.Ranks, BlockSize: cfg.EasyBlock, TransferSize: cfg.EasyXfer,
		Segments: 1, SharedFile: false, Pattern: workload.Sequential,
		ReadBack: true, Collective: false,
	})

	w := res.Phase(IorEasyWrite)
	r := res.Phase(IorEasyRead)
	if w.Bytes != rep.TotalBytes || r.Bytes != rep.TotalBytes {
		t.Fatalf("byte mismatch: suite write=%d read=%d standalone=%d", w.Bytes, r.Bytes, rep.TotalBytes)
	}
	if w.Seconds != rep.WriteTime.Seconds() {
		t.Fatalf("ior-easy-write time diverges: suite %.9fs standalone %.9fs", w.Seconds, rep.WriteTime.Seconds())
	}
	if r.Seconds != rep.ReadTime.Seconds() {
		t.Fatalf("ior-easy-read time diverges: suite %.9fs standalone %.9fs", r.Seconds, rep.ReadTime.Seconds())
	}
	if want := gibPerS(rep.TotalBytes, rep.WriteTime); w.Value != want {
		t.Fatalf("ior-easy-write value %.9f, want %.9f", w.Value, want)
	}
	if want := gibPerS(rep.TotalBytes, rep.ReadTime); r.Value != want {
		t.Fatalf("ior-easy-read value %.9f, want %.9f", r.Value, want)
	}
}

// TestMdtestEasyMatchesStandaloneMdtestbench pins the metadata side of
// the equivalence layer: the mdtest-easy phases must reproduce a
// standalone cmd/mdtestbench run (default create,stat,delete phase set)
// at the same configuration.
func TestMdtestEasyMatchesStandaloneMdtestbench(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Standalone side, constructed exactly as cmd/mdtestbench main does.
	e := des.NewEngine(cfg.Seed)
	h := workload.NewHarness(e, pfs.New(e, standaloneCluster(t, cfg.Device, cfg.Seed)), cfg.Ranks, "cn", nil)
	phases, err := workload.ParseMDPhases("")
	if err != nil {
		t.Fatal(err)
	}
	rep := workload.RunMDTest(h, workload.MDTestConfig{
		Ranks: cfg.Ranks, FilesPerRank: cfg.EasyFiles, Phases: phases,
	})

	checks := []struct {
		phase string
		time  des.Time
	}{
		{MdtestEasyWrite, rep.CreateTime},
		{MdtestEasyStat, rep.StatTime},
		{MdtestEasyDelete, rep.RemoveTime},
	}
	for _, c := range checks {
		p := res.Phase(c.phase)
		if p.Seconds != c.time.Seconds() {
			t.Fatalf("%s time diverges: suite %.9fs standalone %.9fs", c.phase, p.Seconds, c.time.Seconds())
		}
		if p.Ops != int64(rep.TotalFiles) {
			t.Fatalf("%s ops %d, want %d", c.phase, p.Ops, rep.TotalFiles)
		}
		if want := kiops(int64(rep.TotalFiles), c.time); p.Value != want {
			t.Fatalf("%s value %.9f, want %.9f", c.phase, p.Value, want)
		}
	}
}

// TestSuiteDeterministicAcrossWorkers: the full suite must render — text
// and JSON — byte-identically at any worker count.
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		cfg := tinyConfig()
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := render(1)
	for _, w := range []int{2, 5} {
		if got := render(w); got != base {
			t.Fatalf("suite output differs between workers=1 and workers=%d", w)
		}
	}
}

// TestSuiteStablePerSeed: same seed twice → identical result; a different
// seed still yields a complete, scored suite.
func TestSuiteStablePerSeed(t *testing.T) {
	run := func(seed int64) *Result {
		cfg := tinyConfig()
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("same-seed suite runs diverge")
	}
	if c := run(8); c.Score <= 0 {
		t.Fatalf("seed 8 suite score %.6f, want > 0", c.Score)
	}
}

// TestSuiteAllTiersValidate runs the suite over every storage tier with
// the invariant checkers armed: all phases must complete, the score must
// be positive, and no invariant may trip.
func TestSuiteAllTiersValidate(t *testing.T) {
	for _, tier := range []string{"direct", "bb", "nodelocal"} {
		t.Run(tier, func(t *testing.T) {
			cfg := tinyConfig()
			cfg.Tier = tier
			cfg.Check = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if len(res.Phases) != len(PhaseOrder) {
				t.Fatalf("got %d phases, want %d", len(res.Phases), len(PhaseOrder))
			}
			for i, p := range res.Phases {
				if p.Name != PhaseOrder[i] {
					t.Fatalf("phase %d is %s, want %s", i, p.Name, PhaseOrder[i])
				}
				if p.Value <= 0 {
					t.Errorf("phase %s value %.6f, want > 0", p.Name, p.Value)
				}
			}
			if res.Score <= 0 {
				t.Errorf("score %.6f, want > 0", res.Score)
			}
		})
	}
}

// TestCheckDoesNotChangeResults: arming the invariant checkers is pure
// observation — phase values and scores must match the unchecked run.
func TestCheckDoesNotChangeResults(t *testing.T) {
	plain := tinyConfig()
	checked := tinyConfig()
	checked.Check = true
	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(checked)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Fatalf("phase %s differs with checking armed: %+v vs %+v",
				a.Phases[i].Name, a.Phases[i], b.Phases[i])
		}
	}
	if a.Score != b.Score {
		t.Fatalf("score differs with checking armed: %.9f vs %.9f", a.Score, b.Score)
	}
}

// TestScoreGeometry pins the scoring rule: uniform values yield that
// value as every score, and a single dead phase zeroes its class and the
// total.
func TestScoreGeometry(t *testing.T) {
	vals := map[string]float64{}
	for _, n := range PhaseOrder {
		vals[n] = 2.0
	}
	bw, md, total := Score(vals)
	if bw != 2.0 || md != 2.0 || total != 2.0 {
		t.Fatalf("uniform 2.0 scores = (%.6f, %.6f, %.6f), want all 2.0", bw, md, total)
	}
	vals[Find] = 0
	bw, md, total = Score(vals)
	if bw != 2.0 {
		t.Fatalf("bw score %.6f after zeroing a md phase, want 2.0", bw)
	}
	if md != 0 || total != 0 {
		t.Fatalf("md/total = (%.6f, %.6f) with a dead phase, want zeros", md, total)
	}
}

// TestPhaseKindSplit: four bandwidth phases, eight metadata phases.
func TestPhaseKindSplit(t *testing.T) {
	var nbw, nmd int
	for _, n := range PhaseOrder {
		switch PhaseKind(n) {
		case KindBW:
			nbw++
		case KindMD:
			nmd++
		}
	}
	if nbw != 4 || nmd != 8 {
		t.Fatalf("phase split bw=%d md=%d, want 4 and 8", nbw, nmd)
	}
}

// TestFindCountsHardFiles: the find phase must locate exactly the
// mdtest-hard-sized files on the direct tier (payloads are visible to
// stat immediately).
func TestFindCountsHardFiles(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Phase(Find)
	wantFound := int64(cfg.Ranks * cfg.HardFiles)
	if f.Found != wantFound {
		t.Fatalf("find matched %d files, want %d", f.Found, wantFound)
	}
	// Ops: per rank, 2 readdirs + one stat per entry.
	wantOps := int64(cfg.Ranks * (2 + cfg.EasyFiles + cfg.HardFiles))
	if f.Ops != wantOps {
		t.Fatalf("find performed %d ops, want %d", f.Ops, wantOps)
	}
}

// TestConfigValidate covers rejection paths.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Device: "tape"},
		{Tier: "cloud"},
		{EasyBlock: 1 << 10, EasyXfer: 1 << 20},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated, want error", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
