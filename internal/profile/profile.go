// Package profile implements Darshan-style I/O characterization: compact
// per-(rank,file) counters — operation counts, byte totals, access-size
// histograms, sequential/consecutive access detection — plus a DXT-style
// extended trace mode that retains per-operation records. Profiles are the
// cheap, always-on complement to full tracing (internal/trace) and feed the
// workload-generation and modeling phases.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pioeval/internal/des"
	"pioeval/internal/trace"
)

// Histogram bucket upper bounds (bytes); the last bucket is unbounded.
var bucketBounds = []int64{100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 4 << 20, 10 << 20, 100 << 20}

// NumBuckets is the number of access-size histogram buckets.
const NumBuckets = 9

// BucketLabel returns a human-readable label for bucket i.
func BucketLabel(i int) string {
	labels := []string{"0-100", "100-1K", "1K-10K", "10K-100K", "100K-1M", "1M-4M", "4M-10M", "10M-100M", "100M+"}
	if i >= 0 && i < len(labels) {
		return labels[i]
	}
	return "?"
}

// bucketOf maps a size to its histogram bucket.
func bucketOf(size int64) int {
	for i, b := range bucketBounds {
		if size <= b {
			return i
		}
	}
	return NumBuckets - 1
}

// FileCounters is the Darshan-like counter set for one (rank, file) pair.
type FileCounters struct {
	Rank int
	Path string

	Opens, Closes, Stats2, Fsyncs uint64
	Reads, Writes                 uint64
	BytesRead, BytesWritten       int64
	MaxReadSize, MaxWriteSize     int64

	// Access pattern counters: consecutive = offset equals previous end;
	// sequential = offset at or beyond previous end.
	ConsecReads, ConsecWrites uint64
	SeqReads, SeqWrites       uint64

	// ReadHist and WriteHist are access-size histograms.
	ReadHist  [NumBuckets]uint64
	WriteHist [NumBuckets]uint64

	// Timing.
	FirstOp   des.Time
	LastOp    des.Time
	ReadTime  des.Time
	WriteTime des.Time
	MetaTime  des.Time

	lastReadEnd  int64
	lastWriteEnd int64
	sawOp        bool
}

// Profiler accumulates counters from trace records. Attach it live with
// Attach, or feed it after a run with IngestAll.
type Profiler struct {
	// Layer selects which stack layer to characterize (default POSIX,
	// matching Darshan's primary instrumentation point).
	Layer trace.Layer

	counters map[ckey]*FileCounters

	// DXT extended tracing.
	dxtEnabled bool
	dxt        []trace.Record
}

type ckey struct {
	rank int
	path string
}

// New returns a profiler characterizing the POSIX layer.
func New() *Profiler {
	return &Profiler{Layer: trace.LayerPOSIX, counters: make(map[ckey]*FileCounters)}
}

// EnableDXT turns on per-operation extended tracing (Darshan DXT).
func (p *Profiler) EnableDXT() { p.dxtEnabled = true }

// DXT returns the extended trace records collected so far.
func (p *Profiler) DXT() []trace.Record { return p.dxt }

// Attach registers the profiler as the collector's live hook.
func (p *Profiler) Attach(col *trace.Collector) {
	col.SetHook(p.Ingest)
}

// Ingest processes one trace record.
func (p *Profiler) Ingest(r trace.Record) {
	if r.Layer != p.Layer {
		return
	}
	k := ckey{r.Rank, r.Path}
	c := p.counters[k]
	if c == nil {
		c = &FileCounters{Rank: r.Rank, Path: r.Path}
		p.counters[k] = c
	}
	if !c.sawOp || r.Start < c.FirstOp {
		c.FirstOp = r.Start
	}
	if r.End > c.LastOp {
		c.LastOp = r.End
	}
	c.sawOp = true
	switch r.Op {
	case "read":
		c.Reads++
		c.BytesRead += r.Size
		if r.Size > c.MaxReadSize {
			c.MaxReadSize = r.Size
		}
		c.ReadHist[bucketOf(r.Size)]++
		if r.Offset == c.lastReadEnd && c.Reads > 1 {
			c.ConsecReads++
		}
		if r.Offset >= c.lastReadEnd && c.Reads > 1 {
			c.SeqReads++
		}
		c.lastReadEnd = r.Offset + r.Size
		c.ReadTime += r.Duration()
	case "write":
		c.Writes++
		c.BytesWritten += r.Size
		if r.Size > c.MaxWriteSize {
			c.MaxWriteSize = r.Size
		}
		c.WriteHist[bucketOf(r.Size)]++
		if r.Offset == c.lastWriteEnd && c.Writes > 1 {
			c.ConsecWrites++
		}
		if r.Offset >= c.lastWriteEnd && c.Writes > 1 {
			c.SeqWrites++
		}
		c.lastWriteEnd = r.Offset + r.Size
		c.WriteTime += r.Duration()
	case "open":
		c.Opens++
		c.MetaTime += r.Duration()
	case "close":
		c.Closes++
		c.MetaTime += r.Duration()
	case "stat":
		c.Stats2++
		c.MetaTime += r.Duration()
	case "fsync":
		c.Fsyncs++
		c.MetaTime += r.Duration()
	default:
		c.MetaTime += r.Duration()
	}
	if p.dxtEnabled && (r.Op == "read" || r.Op == "write") {
		p.dxt = append(p.dxt, r)
	}
}

// IngestAll processes a batch of records.
func (p *Profiler) IngestAll(recs []trace.Record) {
	for _, r := range recs {
		p.Ingest(r)
	}
}

// PerRank returns all per-(rank,file) counters, sorted by (path, rank).
func (p *Profiler) PerRank() []*FileCounters {
	out := make([]*FileCounters, 0, len(p.counters))
	for _, c := range p.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// PerFile reduces counters across ranks (Darshan's shared-file reduction),
// returning one aggregate per path sorted by path.
func (p *Profiler) PerFile() []*FileCounters {
	agg := map[string]*FileCounters{}
	for _, c := range p.counters {
		a := agg[c.Path]
		if a == nil {
			a = &FileCounters{Rank: -1, Path: c.Path, FirstOp: c.FirstOp, LastOp: c.LastOp}
			agg[c.Path] = a
		}
		a.Opens += c.Opens
		a.Closes += c.Closes
		a.Stats2 += c.Stats2
		a.Fsyncs += c.Fsyncs
		a.Reads += c.Reads
		a.Writes += c.Writes
		a.BytesRead += c.BytesRead
		a.BytesWritten += c.BytesWritten
		a.ConsecReads += c.ConsecReads
		a.ConsecWrites += c.ConsecWrites
		a.SeqReads += c.SeqReads
		a.SeqWrites += c.SeqWrites
		a.ReadTime += c.ReadTime
		a.WriteTime += c.WriteTime
		a.MetaTime += c.MetaTime
		if c.MaxReadSize > a.MaxReadSize {
			a.MaxReadSize = c.MaxReadSize
		}
		if c.MaxWriteSize > a.MaxWriteSize {
			a.MaxWriteSize = c.MaxWriteSize
		}
		if c.FirstOp < a.FirstOp {
			a.FirstOp = c.FirstOp
		}
		if c.LastOp > a.LastOp {
			a.LastOp = c.LastOp
		}
		for i := 0; i < NumBuckets; i++ {
			a.ReadHist[i] += c.ReadHist[i]
			a.WriteHist[i] += c.WriteHist[i]
		}
	}
	out := make([]*FileCounters, 0, len(agg))
	for _, a := range agg {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ReadWriteRatio returns bytesRead / (bytesRead + bytesWritten) over all
// counters; 0 when no data moved.
func (p *Profiler) ReadWriteRatio() float64 {
	var r, w int64
	for _, c := range p.counters {
		r += c.BytesRead
		w += c.BytesWritten
	}
	if r+w == 0 {
		return 0
	}
	return float64(r) / float64(r+w)
}

// SequentialFraction returns the fraction of read+write ops that were
// sequential (offset at or past the previous end).
func (p *Profiler) SequentialFraction() float64 {
	var seq, ops uint64
	for _, c := range p.counters {
		seq += c.SeqReads + c.SeqWrites
		// First op per stream has no predecessor; exclude it.
		if c.Reads > 0 {
			ops += c.Reads - 1
		}
		if c.Writes > 0 {
			ops += c.Writes - 1
		}
	}
	if ops == 0 {
		return 0
	}
	return float64(seq) / float64(ops)
}

// DominantAccessSize returns the histogram bucket label holding the most
// operations across reads and writes.
func (p *Profiler) DominantAccessSize() string {
	var hist [NumBuckets]uint64
	for _, c := range p.counters {
		for i := 0; i < NumBuckets; i++ {
			hist[i] += c.ReadHist[i] + c.WriteHist[i]
		}
	}
	best, bestN := 0, uint64(0)
	for i, n := range hist {
		if n > bestN {
			best, bestN = i, n
		}
	}
	if bestN == 0 {
		return "none"
	}
	return BucketLabel(best)
}

// WriteReport emits a human-readable per-file report.
func (p *Profiler) WriteReport(w io.Writer) error {
	files := p.PerFile()
	var b strings.Builder
	fmt.Fprintf(&b, "# I/O characterization: %d files, rw-ratio %.2f, seq-fraction %.2f, dominant size %s\n",
		len(files), p.ReadWriteRatio(), p.SequentialFraction(), p.DominantAccessSize())
	for _, f := range files {
		fmt.Fprintf(&b, "%-30s reads=%-6d writes=%-6d bytesR=%-10d bytesW=%-10d seqR=%d seqW=%d opens=%d\n",
			f.Path, f.Reads, f.Writes, f.BytesRead, f.BytesWritten, f.SeqReads, f.SeqWrites, f.Opens)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON emits the per-file reduction as JSON.
func (p *Profiler) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(p.PerFile())
}

// ReadJSON parses a per-file profile written by WriteJSON.
func ReadJSON(r io.Reader) ([]*FileCounters, error) {
	var out []*FileCounters
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
