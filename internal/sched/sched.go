// Package sched simulates a cluster workload manager (Slurm-like): jobs
// with submit times, node counts, and walltimes are scheduled onto a fixed
// node pool under FCFS or EASY-backfill policies, producing the job logs
// that the paper's §IV-A2 lists as a monitoring side channel and that the
// modeling phase consumes alongside traces and server statistics.
package sched

import (
	"fmt"
	"sort"

	"pioeval/internal/des"
)

// Policy selects the scheduling algorithm.
type Policy int

// Scheduling policies.
const (
	FCFS Policy = iota
	EASYBackfill
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case EASYBackfill:
		return "easy-backfill"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Job is one batch job submission.
type Job struct {
	ID     string
	Submit des.Time
	Nodes  int
	// Walltime is the requested time limit (used for backfill decisions).
	Walltime des.Time
	// Runtime is the actual execution time (<= Walltime in practice).
	Runtime des.Time
}

// Record is one line of the resulting job log.
type Record struct {
	Job
	Start des.Time
	End   des.Time
}

// Wait returns the job's queue wait time.
func (r Record) Wait() des.Time { return r.Start - r.Submit }

// Simulate schedules jobs onto a pool of totalNodes nodes under the policy
// and returns the job log sorted by start time. It panics if any job
// requests more nodes than the pool has.
func Simulate(jobs []Job, totalNodes int, policy Policy) []Record {
	if totalNodes <= 0 {
		panic("sched: non-positive node pool")
	}
	for _, j := range jobs {
		if j.Nodes <= 0 || j.Nodes > totalNodes {
			panic(fmt.Sprintf("sched: job %s requests %d of %d nodes", j.ID, j.Nodes, totalNodes))
		}
		if j.Runtime <= 0 {
			panic(fmt.Sprintf("sched: job %s has non-positive runtime", j.ID))
		}
	}

	pending := make([]Job, len(jobs))
	copy(pending, jobs)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Submit < pending[j].Submit })

	type running struct {
		end   des.Time
		nodes int
	}
	var (
		now     des.Time
		free    = totalNodes
		queue   []Job
		active  []running
		log     []Record
		nextArr = 0
	)

	finishUpTo := func(t des.Time) {
		// Release nodes from jobs completing at or before t.
		kept := active[:0]
		for _, r := range active {
			if r.end <= t {
				free += r.nodes
			} else {
				kept = append(kept, r)
			}
		}
		active = kept
	}

	start := func(j Job) {
		free -= j.Nodes
		active = append(active, running{end: now + j.Runtime, nodes: j.Nodes})
		log = append(log, Record{Job: j, Start: now, End: now + j.Runtime})
	}

	// shadowTime computes when the head job could start, given currently
	// running jobs, and the nodes spare at that moment beyond the head's
	// need.
	shadow := func(head Job) (des.Time, int) {
		ends := make([]running, len(active))
		copy(ends, active)
		sort.Slice(ends, func(i, j int) bool { return ends[i].end < ends[j].end })
		avail := free
		for _, r := range ends {
			if avail >= head.Nodes {
				break
			}
			avail += r.nodes
			if avail >= head.Nodes {
				// Head starts when this job ends.
				spare := avail - head.Nodes
				return r.end, spare
			}
		}
		return now, avail - head.Nodes // head fits now (shouldn't happen here)
	}

	schedule := func() {
		// FCFS phase: start queue head(s) while they fit.
		for len(queue) > 0 && queue[0].Nodes <= free {
			start(queue[0])
			queue = queue[1:]
		}
		if policy != EASYBackfill || len(queue) == 0 {
			return
		}
		// EASY phase: head blocked. Backfill jobs that fit now and do not
		// delay the head's reservation.
		head := queue[0]
		shadowT, spare := shadow(head)
		kept := queue[:1]
		for _, j := range queue[1:] {
			fitsNow := j.Nodes <= free
			noDelay := now+j.Walltime <= shadowT || j.Nodes <= spare
			if fitsNow && noDelay {
				start(j)
				if j.Nodes <= spare {
					spare -= j.Nodes
				}
			} else {
				kept = append(kept, j)
			}
		}
		queue = kept
	}

	for nextArr < len(pending) || len(queue) > 0 || len(active) > 0 {
		// Next event time: earliest of next arrival and next completion.
		next := des.MaxTime
		if nextArr < len(pending) && pending[nextArr].Submit < next {
			next = pending[nextArr].Submit
		}
		for _, r := range active {
			if r.end < next {
				next = r.end
			}
		}
		if next == des.MaxTime {
			panic("sched: stuck with a non-empty queue and no events")
		}
		now = next
		finishUpTo(now)
		for nextArr < len(pending) && pending[nextArr].Submit <= now {
			queue = append(queue, pending[nextArr])
			nextArr++
		}
		schedule()
	}

	sort.SliceStable(log, func(i, j int) bool { return log[i].Start < log[j].Start })
	return log
}

// Makespan returns the time the last job finishes.
func Makespan(log []Record) des.Time {
	var m des.Time
	for _, r := range log {
		if r.End > m {
			m = r.End
		}
	}
	return m
}

// AvgWait returns the mean queue wait.
func AvgWait(log []Record) des.Time {
	if len(log) == 0 {
		return 0
	}
	var sum des.Time
	for _, r := range log {
		sum += r.Wait()
	}
	return sum / des.Time(len(log))
}

// Utilization returns node-seconds used divided by node-seconds available
// over the makespan.
func Utilization(log []Record, totalNodes int) float64 {
	ms := Makespan(log)
	if ms == 0 || totalNodes == 0 {
		return 0
	}
	var used float64
	for _, r := range log {
		used += float64(r.Nodes) * float64(r.End-r.Start)
	}
	return used / (float64(totalNodes) * float64(ms))
}
