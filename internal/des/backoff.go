package des

// ExpBackoff computes the delay before retry attempt (0-based): base
// doubled per attempt, capped at max (0 = uncapped), plus a uniform
// jitter of up to jitterFrac times the backoff drawn from the named RNG
// stream. With a seeded StreamRNG the sequence is fully deterministic, so
// retry timelines replay exactly across runs — the property resilience
// experiments depend on.
func ExpBackoff(r *StreamRNG, stream string, base, max Time, attempt int, jitterFrac float64) Time {
	if base <= 0 {
		base = Millisecond
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if max > 0 && d >= max {
			d = max
			break
		}
	}
	if max > 0 && d > max {
		d = max
	}
	if jitterFrac > 0 {
		d += Time(r.Stream(stream).Float64() * jitterFrac * float64(d))
	}
	return d
}
