// Command iorbench runs the IOR-like parameterized bulk-I/O benchmark on a
// simulated parallel file system and prints an IOR-style summary.
//
// Example:
//
//	iorbench -ranks 8 -block 16MB -transfer 1MB -shared -pattern strided -read
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iorbench: ")
	fs := flag.NewFlagSet("iorbench", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	ranks := fs.Int("ranks", 4, "MPI ranks")
	blockStr := fs.String("block", "16MB", "per-rank block size per segment")
	transferStr := fs.String("transfer", "1MB", "transfer size per I/O call")
	segments := fs.Int("segments", 1, "segments")
	shared := fs.Bool("shared", false, "one shared file instead of file-per-process")
	patternStr := fs.String("pattern", "sequential", "access pattern: sequential, strided, random")
	readBack := fs.Bool("read", false, "add a read-back phase")
	collective := fs.Bool("collective", false, "use two-phase collective MPI-IO (shared file only)")
	_ = fs.Parse(os.Args[1:])

	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	block, err := cli.ParseSize(*blockStr)
	if err != nil {
		log.Fatal(err)
	}
	transfer, err := cli.ParseSize(*transferStr)
	if err != nil {
		log.Fatal(err)
	}
	var pattern workload.Pattern
	switch *patternStr {
	case "sequential":
		pattern = workload.Sequential
	case "strided":
		pattern = workload.Strided
	case "random":
		pattern = workload.Random
	default:
		log.Fatalf("unknown pattern %q", *patternStr)
	}

	e := des.NewEngine(cluster.Seed)
	h := workload.NewHarness(e, pfs.New(e, cfg), *ranks, "cn", nil)
	rep := workload.RunIOR(h, workload.IORConfig{
		Ranks: *ranks, BlockSize: block, TransferSize: transfer,
		Segments: *segments, SharedFile: *shared, Pattern: pattern,
		ReadBack: *readBack, Collective: *collective,
	})

	fmt.Printf("IOR-like benchmark on simulated cluster (%d OSS x %d OST, %s)\n",
		cfg.NumOSS, cfg.OSTsPerOSS, *&cluster.Device)
	fmt.Printf("  ranks=%d block=%s transfer=%s segments=%d shared=%v pattern=%s collective=%v\n",
		*ranks, cli.FormatSize(block), cli.FormatSize(transfer), *segments, *shared, pattern, *collective)
	fmt.Printf("  total data: %s\n", cli.FormatSize(rep.TotalBytes))
	fmt.Printf("  write: %10.2f MB/s  (%v)\n", rep.WriteMBps, rep.WriteTime)
	if *readBack {
		fmt.Printf("  read:  %10.2f MB/s  (%v)\n", rep.ReadMBps, rep.ReadTime)
	}
	fmt.Printf("  makespan: %v\n", rep.Makespan)
}
