package workload

import (
	"errors"
	"fmt"

	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/posixio"
	"pioeval/internal/storage"
)

// CheckpointConfig models a HACC-IO-like bulk-synchronous checkpoint
// cycle: compute for a while, then every rank dumps its particle state.
type CheckpointConfig struct {
	Ranks        int
	BytesPerRank int64
	Steps        int
	ComputeTime  des.Time // per step, before the checkpoint
	TransferSize int64
	SharedFile   bool
	// ReuseFile overwrites the same checkpoint file every step (in-place
	// checkpointing) instead of writing a new file per step.
	ReuseFile bool
	Path      string
	// Buffer, when non-nil, routes checkpoint writes through a burst
	// buffer instead of directly to the PFS (the Figure-1 experiment).
	Buffer *burstbuffer.Buffer
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.BytesPerRank <= 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.Steps <= 0 {
		c.Steps = 4
	}
	if c.TransferSize <= 0 {
		c.TransferSize = 4 << 20
	}
	if c.Path == "" {
		c.Path = "/ckpt"
	}
	return c
}

// CheckpointReport summarizes the run.
type CheckpointReport struct {
	Config CheckpointConfig
	// StepIOTime is the application-perceived checkpoint duration of each
	// step (max over ranks).
	StepIOTime []des.Time
	// EffectiveMBps is total checkpoint bytes / total perceived I/O time.
	EffectiveMBps float64
	TotalBytes    int64
	Makespan      des.Time
	// IOFraction is perceived I/O time / (I/O + compute) per rank, averaged.
	IOFraction float64
	// IOErrors counts failed checkpoint operations (open, write, fsync,
	// close) across all ranks and steps — nonzero under fault injection
	// when the resilience budget is exhausted.
	IOErrors uint64
	// StepIOErrors breaks IOErrors down per step, aligning failure bursts
	// with the StepIOTime series.
	StepIOErrors []uint64
}

// RunCheckpoint executes the checkpoint workload.
func RunCheckpoint(h *Harness, cfg CheckpointConfig) CheckpointReport {
	cfg = cfg.withDefaults()
	rep := CheckpointReport{
		Config:       cfg,
		StepIOTime:   make([]des.Time, cfg.Steps),
		StepIOErrors: make([]uint64, cfg.Steps),
	}
	rep.TotalBytes = cfg.BytesPerRank * int64(cfg.Ranks) * int64(cfg.Steps)
	stepStart := make([]des.Time, cfg.Steps)
	var ioTimeSum des.Time

	// On the burst-buffer tier an fsync means "wait for the full drain" —
	// checkpoint apps on a staging tier rely on the asynchronous drain for
	// durability instead of syncing every step, so skip the per-step fsync
	// and let the harness's finalize pay the drain tail once at the end.
	tieredBB := cfg.Buffer == nil && h.Provider != nil && h.Provider.Tier() == storage.TierBB

	end := h.Run(func(r *mpi.Rank, env *posixio.Env) {
		p := r.Proc()
		for step := 0; step < cfg.Steps; step++ {
			if cfg.ComputeTime > 0 {
				r.Compute(cfg.ComputeTime)
			}
			r.Barrier()
			if r.ID() == 0 {
				stepStart[step] = r.Now()
			}
			t0 := r.Now()
			path := cfg.Path
			if !cfg.ReuseFile {
				path = fmt.Sprintf("%s.step%d", cfg.Path, step)
			}
			if !cfg.SharedFile {
				path = fmt.Sprintf("%s.%d", path, r.ID())
			}
			base := int64(0)
			if cfg.SharedFile {
				base = int64(r.ID()) * cfg.BytesPerRank
			}
			if cfg.Buffer != nil {
				for off := int64(0); off < cfg.BytesPerRank; off += cfg.TransferSize {
					n := cfg.TransferSize
					if off+n > cfg.BytesPerRank {
						n = cfg.BytesPerRank - off
					}
					cfg.Buffer.Write(p, path, base+off, n)
				}
			} else {
				fd, err := env.Open(p, path, posixio.OCreate)
				if err != nil {
					rep.StepIOErrors[step]++
				} else {
					for off := int64(0); off < cfg.BytesPerRank; off += cfg.TransferSize {
						n := cfg.TransferSize
						if off+n > cfg.BytesPerRank {
							n = cfg.BytesPerRank - off
						}
						if _, werr := env.Pwrite(p, fd, base+off, n); werr != nil {
							rep.StepIOErrors[step]++
						}
					}
					if !tieredBB {
						if err := env.Fsync(p, fd); err != nil {
							rep.StepIOErrors[step]++
						}
					}
					if err := env.Close(p, fd); err != nil {
						rep.StepIOErrors[step]++
					}
				}
			}
			ioTimeSum += r.Now() - t0
			r.Barrier()
			if r.ID() == 0 {
				rep.StepIOTime[step] = r.Now() - stepStart[step]
			}
		}
		// Drain the burst buffer after the last step so the simulation
		// terminates cleanly; the drain is not part of perceived I/O time.
		if cfg.Buffer != nil {
			r.Barrier()
			if r.ID() == 0 {
				cfg.Buffer.WaitDrained(p)
				cfg.Buffer.Shutdown()
			}
		}
	})
	rep.Makespan = end
	// Burst-buffer drain failures detected at finalize are checkpoint bytes
	// that never reached the PFS: charge them to the last step.
	if h.FinalizeErr != nil {
		var de *burstbuffer.DrainError
		if errors.As(h.FinalizeErr, &de) {
			rep.StepIOErrors[cfg.Steps-1] += de.Segments
		} else {
			rep.StepIOErrors[cfg.Steps-1]++
		}
	}
	for _, n := range rep.StepIOErrors {
		rep.IOErrors += n
	}
	var totalIO des.Time
	for _, d := range rep.StepIOTime {
		totalIO += d
	}
	rep.EffectiveMBps = bwMBps(rep.TotalBytes, totalIO)
	perRankTotal := des.Time(cfg.Steps) * cfg.ComputeTime * des.Time(cfg.Ranks)
	if denom := ioTimeSum + perRankTotal; denom > 0 {
		rep.IOFraction = float64(ioTimeSum) / float64(denom)
	}
	return rep
}
