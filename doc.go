// Package pioeval is a parallel I/O evaluation toolkit: an executable
// reproduction of "Parallel I/O Evaluation Techniques and Emerging HPC
// Workloads: A Perspective" (Neuwirth & Paul, IEEE CLUSTER 2021).
//
// The paper surveys the large-scale I/O evaluation process; this module
// implements every system that process involves, on top of a deterministic
// discrete-event simulator:
//
//   - the simulated HPC I/O stack: network fabrics (internal/netsim),
//     storage devices (internal/blockdev), a Lustre-like parallel file
//     system (internal/pfs), an I/O-node burst-buffer tier
//     (internal/burstbuffer), MPI (internal/mpi), POSIX
//     (internal/posixio), MPI-IO with two-phase collective buffering
//     (internal/mpiio), and an HDF5-like library (internal/hdf);
//   - measurement & statistics collection: multi-level tracing
//     (internal/trace), Darshan-like characterization (internal/profile),
//     server-side monitoring and end-to-end correlation
//     (internal/monitor), and a workload manager (internal/sched);
//   - modeling & prediction: statistics (internal/stats), ML predictors
//     (internal/predict), skeleton/benchmark generation
//     (internal/skeleton), and trace replay with rank extrapolation
//     (internal/replay);
//   - workload generation: IOR/mdtest/HACC/DLIO/analytics/workflow
//     generators (internal/workload) and a CODES-like DSL
//     (internal/iolang);
//   - the paper's contribution as code: the iterative evaluation cycle
//     and the IOWA-style source/consumer abstraction (internal/core), and
//     the survey corpus behind Figure 3 (internal/corpus).
//
// The benchmarks in this directory regenerate every figure and
// quantitative claim of the paper; see DESIGN.md and EXPERIMENTS.md.
package pioeval
