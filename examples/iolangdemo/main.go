// The workload DSL end to end: parse a CODES-style script, run it three
// ways — interpreted against the live simulator, compiled to an op stream
// and replayed, and compiled + skeletonized — and show all three agree.
//
//	go run ./examples/iolangdemo
package main

import (
	"fmt"
	"log"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/replay"
	"pioeval/internal/skeleton"
)

const script = `
# Stencil code: compute, checkpoint, occasionally read a restart slice.
workload "stencil" {
    ranks 4
    stripe count=4 size=1MB
    mkdir "/run"
    loop 6 {
        compute 15ms
        barrier
        write "/run/state" offset=rank*8MB size=8MB chunk=2MB
        barrier
        read "/run/state" offset=rank*8MB size=1MB
    }
}
`

func cluster() pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return cfg
}

func main() {
	log.SetFlags(0)
	wl, err := iolang.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed workload %q: %d ranks\n\n", wl.Name, wl.Ranks)

	// 1. Interpret directly (execution-driven, with barriers).
	e1 := des.NewEngine(1)
	rep, err := iolang.Run(e1, pfs.New(e1, cluster()), wl, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreted: wrote %d MB, read %d MB, makespan %v\n",
		rep.BytesWritten>>20, rep.BytesRead>>20, rep.Makespan)

	// 2. Compile to per-rank op streams and replay (trace-driven).
	ops := iolang.Compile(wl)
	e2 := des.NewEngine(1)
	res, err := replay.Run(e2, pfs.New(e2, cluster()), ops, replay.Options{Timed: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled+replayed: wrote %d MB, makespan %v (no barriers: per-rank streams)\n",
		res.BytesWritten>>20, res.Makespan)

	// 3. Skeletonize rank 0's compiled stream: the loop structure is
	// recovered automatically.
	toks := make([]skeleton.Token, 0)
	lastEnd := map[string]int64{}
	for _, op := range ops[0] {
		tok := skeleton.Token{Op: op.Op, Path: op.Path, Size: op.Size, Think: op.Think}
		if op.Op == "read" || op.Op == "write" {
			if prev, ok := lastEnd[op.Path]; ok {
				tok.Gap = op.Offset - prev
			} else {
				tok.First = true
				tok.Abs = op.Offset
			}
			lastEnd[op.Path] = op.Offset + op.Size
		}
		toks = append(toks, tok)
	}
	prog := skeleton.Fold(toks)
	fmt.Printf("skeleton: %d ops folded to %d nodes (%.1fx)\n",
		len(toks), prog.Size(), prog.CompressionRatio())
	fmt.Println("\ngenerated benchmark source (rank 0):")
	fmt.Println(prog.RenderGo("stencilRank0"))
}
