package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden outputs")

// checkGolden compares got against the named testdata file byte for byte,
// rewriting it under -update-golden, and reports the first diverging line
// on mismatch.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("output diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("output length differs: got %d lines, want %d", len(gl), len(wl))
}

// TestGoldenCycle pins the three-phase evaluation-cycle report for the
// built-in workload at a fixed seed, byte for byte: characterization
// numbers, model fit coefficients, and the per-iteration prediction
// errors. Regenerate deliberately with
//
//	go test ./cmd/evalcycle -update-golden
func TestGoldenCycle(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-seed", "7", "-iterations", "3"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "testdata/cycle_golden.txt", out.String())
}

// TestGoldenCycleStableAcrossRuns guards the golden file itself: two
// in-process runs must already agree, so a future divergence against
// testdata is a determinism break, not flakiness.
func TestGoldenCycleStableAcrossRuns(t *testing.T) {
	runOnce := func() string {
		var out, errb bytes.Buffer
		if err := run(context.Background(), []string{"-seed", "7", "-iterations", "3"}, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if runOnce() != runOnce() {
		t.Fatal("same-seed evalcycle output differs between in-process runs")
	}
}

// TestBadDeviceErrors checks that an unknown device name surfaces as an
// error from run rather than an exit.
func TestBadDeviceErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", "tape"}, &out, &errb); err == nil {
		t.Fatal("run succeeded with an unknown baseline device")
	}
	if err := run(context.Background(), []string{"-sweep", "hdd,tape"}, &out, &errb); err == nil {
		t.Fatal("run succeeded with an unknown sweep device")
	}
}
