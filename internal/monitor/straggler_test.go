package monitor

import (
	"testing"

	"pioeval/internal/pfs"
)

// TestIdentifyStragglerEdges pins the identification rule on constructed
// sample series: only the final sample matters, strict comparison means a
// tie keeps the lowest OST ID, and "nothing busy" is distinct from
// "nothing sampled" only in how it is reached — both report -1.
func TestIdentifyStragglerEdges(t *testing.T) {
	mk := func(utils ...float64) Sample {
		s := Sample{}
		for i, u := range utils {
			s.OSTs = append(s.OSTs, pfs.OSTStats{ID: i, Utilization: u})
		}
		return s
	}
	cases := []struct {
		name    string
		samples []Sample
		want    int
	}{
		{"no samples", nil, -1},
		{"empty sample", []Sample{{}}, -1},
		{"all idle", []Sample{mk(0, 0, 0)}, -1},
		{"clear straggler", []Sample{mk(0.2, 0.9, 0.3)}, 1},
		{"exact tie keeps lowest ID", []Sample{mk(0.5, 0.9, 0.9, 0.1)}, 1},
		{"all tied keeps lowest ID", []Sample{mk(0.7, 0.7, 0.7)}, 0},
		{"only last sample counts", []Sample{mk(0.1, 0.9), mk(0.9, 0.1)}, 0},
	}
	for _, c := range cases {
		if got := IdentifyStraggler(c.samples); got != c.want {
			t.Errorf("%s: IdentifyStraggler = %d, want %d", c.name, got, c.want)
		}
	}
}
