package pfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/netsim"
)

// fastConfig returns a deployment with SSD OSTs and no I/O-node tier, for
// quick deterministic tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return cfg
}

// runClient builds an FS, spawns fn as a single client process, runs the
// simulation to completion, and fails the test on simulated deadlock.
func runClient(t *testing.T, cfg Config, fn func(p *des.Proc, c *Client)) (*FS, des.Time) {
	t.Helper()
	e := des.NewEngine(42)
	fs := New(e, cfg)
	c := fs.NewClient("client0")
	e.Spawn("client0", func(p *des.Proc) { fn(p, c) })
	end := e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		t.Fatalf("simulated deadlock: %d live procs", e.LiveProcs())
	}
	return fs, end
}

func TestCleanPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/", "/"},
		{"/a/b", "/a/b"},
		{"/a//b/", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/../b", "/b"},
		{"/../..", "/"},
	}
	for _, c := range cases {
		got, err := cleanPath(c.in)
		if err != nil || got != c.want {
			t.Errorf("cleanPath(%q) = %q,%v want %q", c.in, got, err, c.want)
		}
	}
	if _, err := cleanPath("relative"); err == nil {
		t.Error("relative path should error")
	}
	if _, err := cleanPath(""); err == nil {
		t.Error("empty path should error")
	}
}

func TestNamespaceLifecycle(t *testing.T) {
	runClient(t, fastConfig(), func(p *des.Proc, c *Client) {
		if err := c.Mkdir(p, "/data"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := c.Mkdir(p, "/data"); !errors.Is(err, ErrExist) {
			t.Fatalf("duplicate mkdir err = %v, want ErrExist", err)
		}
		if err := c.Mkdir(p, "/nope/sub"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("orphan mkdir err = %v, want ErrNotExist", err)
		}
		h, err := c.Create(p, "/data/f1", 0, 0)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		h.Close(p)
		fi, err := c.Stat(p, "/data/f1")
		if err != nil || fi.IsDir {
			t.Fatalf("stat: %+v %v", fi, err)
		}
		names, err := c.Readdir(p, "/data")
		if err != nil || len(names) != 1 {
			t.Fatalf("readdir = %v, %v", names, err)
		}
		if err := c.Rmdir(p, "/data"); !errors.Is(err, ErrNotEmpty) {
			t.Fatalf("rmdir non-empty err = %v", err)
		}
		if err := c.Unlink(p, "/data/f1"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if err := c.Rmdir(p, "/data"); err != nil {
			t.Fatalf("rmdir: %v", err)
		}
		if _, err := c.Stat(p, "/data"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("stat after rmdir err = %v", err)
		}
	})
}

func TestCreateOpenErrors(t *testing.T) {
	runClient(t, fastConfig(), func(p *des.Proc, c *Client) {
		if _, err := c.Open(p, "/missing"); !errors.Is(err, ErrNotExist) {
			t.Errorf("open missing = %v", err)
		}
		if _, err := c.Open(p, "/"); !errors.Is(err, ErrIsDir) {
			t.Errorf("open dir = %v", err)
		}
		h, err := c.Create(p, "/f", 0, 0)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		h.Close(p)
		if _, err := c.Create(p, "/f", 0, 0); !errors.Is(err, ErrExist) {
			t.Errorf("duplicate create = %v", err)
		}
		if err := c.Unlink(p, "/"); !errors.Is(err, ErrIsDir) {
			t.Errorf("unlink dir = %v", err)
		}
	})
}

func TestStripeChunks(t *testing.T) {
	l := Layout{StripeSize: 100, StripeCount: 4, OSTs: []int{0, 1, 2, 3}}
	// One full stripe row plus part of the next.
	chunks := stripeChunks(l, 50, 500)
	var total int64
	for _, ch := range chunks {
		total += ch.size
		if ch.size <= 0 || ch.size > 100 {
			t.Fatalf("bad chunk size %d", ch.size)
		}
	}
	if total != 500 {
		t.Fatalf("chunks cover %d bytes, want 500", total)
	}
	// First chunk: offset 50 in stripe 0 -> ostIdx 0, objOff 50, size 50.
	if chunks[0].ostIdx != 0 || chunks[0].objOff != 50 || chunks[0].size != 50 {
		t.Errorf("first chunk = %+v", chunks[0])
	}
	// Last chunk is [500,550): stripe 5 -> ostIdx 1, second row (objOff 100).
	last := chunks[len(chunks)-1]
	if last.ostIdx != 1 || last.objOff != 100 || last.size != 50 {
		t.Errorf("last chunk = %+v", last)
	}
}

// Property: stripeChunks covers the byte range exactly, in order, without
// overlap, for any layout and range.
func TestPropStripeChunksCoverage(t *testing.T) {
	f := func(ss uint16, sc uint8, off uint32, size uint32) bool {
		l := Layout{
			StripeSize:  int64(ss%4096) + 1,
			StripeCount: int(sc%8) + 1,
		}
		for i := 0; i < l.StripeCount; i++ {
			l.OSTs = append(l.OSTs, i)
		}
		o, s := int64(off%(1<<20)), int64(size%(1<<20))+1
		chunks := stripeChunks(l, o, s)
		cursor := o
		for _, ch := range chunks {
			if ch.fileOff != cursor {
				return false
			}
			if ch.size <= 0 || ch.size > l.StripeSize {
				return false
			}
			// Verify the stripe math: fileOff's stripe must map to ostIdx.
			stripe := ch.fileOff / l.StripeSize
			if int(stripe%int64(l.StripeCount)) != ch.ostIdx {
				return false
			}
			cursor += ch.size
		}
		return cursor == o+s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteReadUpdatesSizeAndOSTs(t *testing.T) {
	cfg := fastConfig()
	var fs *FS
	fs, _ = runClient(t, cfg, func(p *des.Proc, c *Client) {
		h, err := c.Create(p, "/f", 4, 1<<20)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		h.Write(p, 0, 8<<20) // 8 MB over 4 OSTs
		fi, err := c.Stat(p, "/f")
		if err != nil || fi.Size != 8<<20 {
			t.Fatalf("size = %d, want 8MB (%v)", fi.Size, err)
		}
		h.Read(p, 0, 8<<20)
		h.Close(p)
	})
	read, written := fs.TotalBytes()
	if written != 8<<20 || read != 8<<20 {
		t.Fatalf("OST bytes = r%d w%d, want 8MB each", read, written)
	}
	// Striping balance: each of the 4 used OSTs got 2 MB.
	busy := 0
	for _, st := range fs.OSTStats() {
		if st.BytesWritten > 0 {
			busy++
			if st.BytesWritten != 2<<20 {
				t.Errorf("OST %d wrote %d, want 2MB", st.ID, st.BytesWritten)
			}
		}
	}
	if busy != 4 {
		t.Fatalf("%d OSTs used, want 4", busy)
	}
}

func TestStripingSpeedsUpLargeIO(t *testing.T) {
	duration := func(stripes int) des.Time {
		cfg := fastConfig()
		var start, end des.Time
		runClient(t, cfg, func(p *des.Proc, c *Client) {
			h, _ := c.Create(p, "/f", stripes, 1<<20)
			start = p.Now()
			h.Write(p, 0, 64<<20)
			end = p.Now()
			h.Close(p)
		})
		return end - start
	}
	one, eight := duration(1), duration(8)
	if eight >= one {
		t.Fatalf("8-stripe write (%v) should beat 1-stripe (%v)", eight, one)
	}
	speedup := float64(one) / float64(eight)
	if speedup < 2 {
		t.Errorf("striping speedup = %.2fx, want >= 2x", speedup)
	}
}

func TestMDSContention(t *testing.T) {
	// Many clients hammering metadata: MDS with 1 thread vs 8 threads.
	makespan := func(threads int) des.Time {
		cfg := fastConfig()
		cfg.MDSThreads = threads
		e := des.NewEngine(7)
		fs := New(e, cfg)
		for i := 0; i < 16; i++ {
			c := fs.NewClient(clientName(i))
			e.Spawn("c", func(p *des.Proc) {
				for j := 0; j < 20; j++ {
					_, _ = c.Stat(p, "/")
				}
			})
		}
		return e.Run(des.MaxTime)
	}
	if m1, m8 := makespan(1), makespan(8); m8 >= m1 {
		t.Fatalf("8-thread MDS (%v) should beat 1-thread (%v)", m8, m1)
	}
}

func clientName(i int) string {
	return "client" + string(rune('A'+i))
}

func TestWriteBehindAbsorbsSmallWrites(t *testing.T) {
	// With write-behind, many small writes coalesce into fewer larger
	// device requests and finish sooner.
	run := func(wb int64) (des.Time, uint64) {
		cfg := fastConfig()
		cfg.ClientWriteBehind = wb
		var end des.Time
		fs, _ := runClient(t, cfg, func(p *des.Proc, c *Client) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			for i := int64(0); i < 256; i++ {
				h.Write(p, i*4096, 4096)
			}
			h.Close(p)
			end = p.Now()
		})
		var ops uint64
		for _, st := range fs.OSTStats() {
			ops += st.WriteOps
		}
		return end, ops
	}
	endNo, opsNo := run(0)
	endWB, opsWB := run(8 << 20)
	if opsWB >= opsNo {
		t.Fatalf("write-behind ops = %d, want < %d", opsWB, opsNo)
	}
	if endWB >= endNo {
		t.Fatalf("write-behind makespan %v, want < %v", endWB, endNo)
	}
	// All bytes must still land on the OSTs after Close.
	_, w := func() (int64, int64) {
		cfg := fastConfig()
		cfg.ClientWriteBehind = 8 << 20
		fs, _ := runClient(t, cfg, func(p *des.Proc, c *Client) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			for i := int64(0); i < 256; i++ {
				h.Write(p, i*4096, 4096)
			}
			h.Close(p)
		})
		return fs.TotalBytes()
	}()
	if w != 256*4096 {
		t.Fatalf("flushed bytes = %d, want %d", w, 256*4096)
	}
}

func TestIONodeTierRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	cfg.NumIONodes = 2
	e := des.NewEngine(1)
	fs := New(e, cfg)
	c0 := fs.NewClient("c0")
	c1 := fs.NewClient("c1")
	c2 := fs.NewClient("c2")
	if c0.IONode() == "" || c1.IONode() == "" {
		t.Fatal("clients should be routed through I/O nodes")
	}
	if c0.IONode() == c1.IONode() {
		t.Error("round-robin should spread clients over I/O nodes")
	}
	if c0.IONode() != c2.IONode() {
		t.Error("round-robin should wrap")
	}
	e.Spawn("w", func(p *des.Proc) {
		h, err := c0.Create(p, "/f", 0, 0)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		h.Write(p, 0, 1<<20)
		h.Close(p)
	})
	e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		t.Fatal("deadlock through I/O-node tier")
	}
	if _, w := fs.TotalBytes(); w != 1<<20 {
		t.Fatalf("bytes written through tier = %d", w)
	}
}

func TestMDSStatsCounting(t *testing.T) {
	fs, _ := runClient(t, fastConfig(), func(p *des.Proc, c *Client) {
		_ = c.Mkdir(p, "/d")
		h, _ := c.Create(p, "/d/f", 0, 0)
		h.Write(p, 0, 1024)
		h.Close(p)
		_, _ = c.Stat(p, "/d/f")
		_, _ = c.Stat(p, "/d/f")
	})
	st := fs.MDSStats()
	if st.Ops["mkdir"] != 1 || st.Ops["create"] != 1 || st.Ops["stat"] != 2 {
		t.Errorf("MDS ops = %v", st.Ops)
	}
	if st.Ops["setsize"] == 0 {
		t.Error("write should trigger a setsize op")
	}
	if st.TotalOps < 5 {
		t.Errorf("TotalOps = %d", st.TotalOps)
	}
}

func TestOpObserver(t *testing.T) {
	cfg := fastConfig()
	e := des.NewEngine(1)
	fs := New(e, cfg)
	var events []OpEvent
	fs.SetOpObserver(func(ev OpEvent) { events = append(events, ev) })
	c := fs.NewClient("c0")
	e.Spawn("w", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 0, 0)
		h.Write(p, 0, 4096)
		h.Read(p, 0, 4096)
		h.Close(p)
	})
	e.Run(des.MaxTime)
	var ops []string
	for _, ev := range events {
		ops = append(ops, ev.Op)
		if ev.End < ev.Start {
			t.Errorf("event %s end < start", ev.Op)
		}
	}
	want := []string{"create", "write", "read", "close"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestHDDRandomVsSequentialReads(t *testing.T) {
	// On HDD OSTs, random small reads are much slower than one big
	// sequential read of the same volume — the §V-B premise.
	cfg := DefaultConfig()
	cfg.NumIONodes = 0
	total := int64(16 << 20)
	blk := int64(64 << 10)
	seqT := func() des.Time {
		var d des.Time
		runClient(t, cfg, func(p *des.Proc, c *Client) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			h.Write(p, 0, total)
			s := p.Now()
			h.Read(p, 0, total)
			d = p.Now() - s
			h.Close(p)
		})
		return d
	}()
	rndT := func() des.Time {
		var d des.Time
		runClient(t, cfg, func(p *des.Proc, c *Client) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			h.Write(p, 0, total)
			rng := p.Engine().RNG().Stream("rnd")
			s := p.Now()
			for i := int64(0); i < total/blk; i++ {
				off := rng.Int63n(total - blk)
				h.Read(p, off, blk)
			}
			d = p.Now() - s
			h.Close(p)
		})
		return d
	}()
	if rndT <= seqT {
		t.Fatalf("random reads (%v) should be slower than sequential (%v)", rndT, seqT)
	}
	if ratio := float64(rndT) / float64(seqT); ratio < 3 {
		t.Errorf("random/sequential = %.1fx, want >= 3x on HDD", ratio)
	}
}

func TestLayoutAllocationRoundRobin(t *testing.T) {
	cfg := fastConfig() // 8 OSTs
	e := des.NewEngine(1)
	fs := New(e, cfg)
	l1 := fs.allocateLayout(4, 1<<20)
	l2 := fs.allocateLayout(4, 1<<20)
	if l1.OSTs[0] == l2.OSTs[0] {
		t.Errorf("consecutive allocations start on same OST: %v %v", l1.OSTs, l2.OSTs)
	}
	l3 := fs.allocateLayout(100, 0) // clamped to NumOSTs
	if len(l3.OSTs) != fs.NumOSTs() {
		t.Errorf("stripe count not clamped: %d", len(l3.OSTs))
	}
	if l3.StripeSize != cfg.DefaultStripeSize {
		t.Errorf("stripe size default not applied")
	}
}

func TestFlatVsTieredNetworkPath(t *testing.T) {
	// The I/O-forwarding tier adds hops; same bytes, longer path.
	dur := func(ionodes int) des.Time {
		cfg := DefaultConfig()
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
		cfg.NumIONodes = ionodes
		var d des.Time
		runClient(t, cfg, func(p *des.Proc, c *Client) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			s := p.Now()
			h.Write(p, 0, 4<<20)
			d = p.Now() - s
			h.Close(p)
		})
		return d
	}
	if flat, tiered := dur(0), dur(2); tiered <= flat {
		t.Errorf("tiered path (%v) should cost more than flat (%v)", tiered, flat)
	}
}

func TestConfigDefaults(t *testing.T) {
	var zero Config
	c := zero.withDefaults()
	if c.NumOSS < 1 || c.OSTsPerOSS < 1 || c.MDSThreads < 1 ||
		c.DefaultStripeCount < 1 || c.DefaultStripeSize <= 0 || c.MaxRPCSize <= 0 {
		t.Errorf("withDefaults left invalid fields: %+v", c)
	}
	if c.OSTDevice == nil {
		t.Error("OSTDevice default missing")
	}
	if c.ComputeFabric.Name == "" || c.StorageFabric.Name == "" {
		t.Error("fabric defaults missing")
	}
	if (netsim.Config{}) == c.ComputeFabric {
		t.Error("compute fabric should be populated")
	}
}

func TestLeastLoadedLayoutReducesImbalance(t *testing.T) {
	// Skewed file sizes on stripe-count-1 files: round-robin assigns by
	// arrival order regardless of load; least-loaded steers new files to
	// cold OSTs.
	imbalance := func(policy LayoutPolicy) float64 {
		cfg := fastConfig()
		cfg.Layout = policy
		var fs *FS
		fs, _ = runClient(t, cfg, func(p *des.Proc, c *Client) {
			// File sizes skew: every 8th file is huge.
			for i := 0; i < 32; i++ {
				size := int64(256 << 10)
				if i%8 == 0 {
					size = 16 << 20
				}
				h, err := c.Create(p, fmt.Sprintf("/f%d", i), 1, 1<<20)
				if err != nil {
					t.Fatalf("create: %v", err)
				}
				h.Write(p, 0, size)
				h.Close(p)
			}
		})
		var max, sum float64
		n := 0
		for _, st := range fs.OSTStats() {
			b := float64(st.BytesWritten)
			if b > max {
				max = b
			}
			sum += b
			n++
		}
		return max / (sum / float64(n))
	}
	rr, ll := imbalance(RoundRobin), imbalance(LeastLoaded)
	if ll >= rr {
		t.Fatalf("least-loaded imbalance %.2f should beat round-robin %.2f", ll, rr)
	}
}

func TestLayoutPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" {
		t.Error("policy names")
	}
}
