package workload

import (
	"reflect"
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// TestScaleFormEquivalence checks that the continuation-form checkpoint
// reproduces the goroutine-form checkpoint exactly on a fault-free run:
// same makespan, same per-step I/O times, same bytes on the OSTs. The two
// forms share every cost model and differ only in how ranks suspend, so
// any divergence is a porting bug.
func TestScaleFormEquivalence(t *testing.T) {
	run := func(continuation bool) (des.Time, []des.Time, int64) {
		e := des.NewEngine(1)
		fs := pfs.New(e, pfs.DefaultConfig())
		if continuation {
			rep := RunScaleCheckpoint(e, fs, ScaleConfig{
				Ranks: 8, BytesPerRank: 2 << 20, Steps: 3,
				ComputeTime: des.Millisecond, TransferSize: 1 << 20,
				NodePrefix: "ckpt",
			})
			_, written := fs.TotalBytes()
			return rep.Makespan, rep.StepIOTime, written
		}
		h := NewHarness(e, fs, 8, "ckpt", nil)
		rep := RunCheckpoint(h, CheckpointConfig{
			Ranks: 8, BytesPerRank: 2 << 20, Steps: 3,
			ComputeTime: des.Millisecond, TransferSize: 1 << 20,
		})
		_, written := fs.TotalBytes()
		return rep.Makespan, rep.StepIOTime, written
	}

	gm, gs, gb := run(false)
	cm, cs, cb := run(true)
	if gm != cm {
		t.Errorf("makespan: goroutine %v, continuation %v", gm, cm)
	}
	if !reflect.DeepEqual(gs, cs) {
		t.Errorf("step I/O times: goroutine %v, continuation %v", gs, cs)
	}
	if gb != cb {
		t.Errorf("bytes written: goroutine %d, continuation %d", gb, cb)
	}
	if gb != 8*(2<<20)*3 {
		t.Errorf("bytes written = %d, want %d", gb, 8*(2<<20)*3)
	}
}

// TestScaleCheckpointDeterminism checks that repeated continuation-form
// runs are bit-identical.
func TestScaleCheckpointDeterminism(t *testing.T) {
	run := func() ScaleReport {
		e := des.NewEngine(7)
		fs := pfs.New(e, pfs.DefaultConfig())
		return RunScaleCheckpoint(e, fs, ScaleConfig{
			Ranks: 16, BytesPerRank: 1 << 20, Steps: 2,
			TransferSize: 256 << 10, RanksPerNode: 4, StripeCount: 1,
		})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic scale run:\n%+v\n%+v", a, b)
	}
}

// TestShardedWorkersInvariance checks the ParallelGroup contract end to
// end: a sharded checkpoint produces byte-identical output whether the
// shards execute sequentially (Workers 1), on fewer pool workers than
// shards (mixed pinning), on one worker per shard, or at the
// host-dependent default. The -race CI sweep smoke runs the same shape.
func TestShardedWorkersInvariance(t *testing.T) {
	run := func(workers int) ShardedReport {
		rep := RunShardedCheckpoint(ShardedConfig{
			Scale: ScaleConfig{
				Ranks: 12, BytesPerRank: 1 << 20, Steps: 2,
				ComputeTime: des.Millisecond, TransferSize: 512 << 10,
				RanksPerNode: 2, StripeCount: 1,
			},
			Shards:  3,
			Workers: workers,
			Seed:    42,
		})
		rep.Workers = 0 // normalize the one intentionally-differing knob
		return rep
	}
	seq := run(1)
	for _, workers := range []int{2, 3, 0} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Errorf("sharded run differs between Workers=1 and Workers=%d:\nseq: %+v\npar: %+v", workers, seq, par)
		}
	}
	if seq.IOErrors != 0 {
		t.Errorf("unexpected I/O errors: %d", seq.IOErrors)
	}
	if seq.Windows == 0 {
		t.Error("report should count ParallelGroup windows")
	}
	var ranks int
	for _, n := range seq.RanksPerShard {
		ranks += n
	}
	if ranks != 12 {
		t.Errorf("ranks across shards = %d, want 12", ranks)
	}
}

// TestShardedBytesConserved checks that every checkpoint byte lands on
// some shard's OSTs.
func TestShardedBytesConserved(t *testing.T) {
	var shardFS []*pfs.FS
	RunShardedCheckpoint(ShardedConfig{
		Scale: ScaleConfig{
			Ranks: 8, BytesPerRank: 1 << 20, Steps: 2,
			TransferSize: 512 << 10, StripeCount: 1,
		},
		Shards: 2,
		AttachShard: func(shard int, e *des.Engine, fs *pfs.FS) {
			shardFS = append(shardFS, fs)
		},
	})
	var written int64
	for _, fs := range shardFS {
		_, w := fs.TotalBytes()
		written += w
	}
	if want := int64(8 * (1 << 20) * 2); written != want {
		t.Errorf("bytes written across shards = %d, want %d", written, want)
	}
}
