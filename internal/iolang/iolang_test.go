package iolang

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/replay"
	"pioeval/internal/trace"
)

const checkpointScript = `
# HACC-like checkpoint workload
workload "checkpoint" {
    ranks 4
    stripe count=4 size=1MB
    loop 3 {
        compute 10ms
        barrier
        write "/ckpt.${iter}" offset=rank*4MB size=4MB chunk=1MB
        barrier
    }
}
`

func ssdFS(e *des.Engine) *pfs.FS {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return pfs.New(e, cfg)
}

func TestLexUnits(t *testing.T) {
	toks, err := lex("4MB 100ms 42 7KB 1s 3us 9ns 2GB 5B")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4 << 20, 100e6, 42, 7 << 10, 1e9, 3e3, 9, 2 << 30, 5}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].num != w {
			t.Errorf("token %d = %v, want %d", i, toks[i], w)
		}
	}
	if _, err := lex("5XB"); err == nil {
		t.Error("unknown unit should error")
	}
	if _, err := lex(`"unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := lex("$"); err == nil {
		t.Error("stray char should error")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("ranks 4 # the rank count\nbarrier")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // ranks, 4, barrier, EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[2].line != 2 {
		t.Errorf("line tracking: %d", toks[2].line)
	}
}

func TestParseCheckpoint(t *testing.T) {
	w, err := Parse(checkpointScript)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "checkpoint" || w.Ranks != 4 {
		t.Fatalf("header = %+v", w)
	}
	if w.StripeCount != 4 || w.StripeSize != 1<<20 {
		t.Fatalf("stripe = %d/%d", w.StripeCount, w.StripeSize)
	}
	if len(w.Body) != 1 || w.Body[0].Kind != "loop" || w.Body[0].Count != 3 {
		t.Fatalf("body = %+v", w.Body)
	}
	inner := w.Body[0].Body
	if len(inner) != 4 {
		t.Fatalf("loop body = %d stmts", len(inner))
	}
	wr := inner[2]
	if wr.Kind != "write" || wr.Path != "/ckpt.${iter}" {
		t.Fatalf("write stmt = %+v", wr)
	}
	if got := wr.Offset.Eval(3, 0); got != 3*4<<20 {
		t.Errorf("offset(rank=3) = %d", got)
	}
	if got := wr.Size.Eval(0, 0); got != 4<<20 {
		t.Errorf("size = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`workload "x" { ranks 0 }`,
		`workload "x" { bogus }`,
		`workload "x" { write "/f" }`, // missing size
		`workload "x" { loop 2 { barrier }`,
		`workload "x" { stripe count=1 } extra`,
		`workload "x" { compute }`,
		`workload "x" { stripe bogus=1 }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	w, err := Parse(`workload "x" { ranks 2 write "/f" offset=rank*2+1 size=1KB }`)
	if err != nil {
		t.Fatal(err)
	}
	// rank*2+1 with rank=1 → 3 (product binds tighter than sum).
	if got := w.Body[0].Offset.Eval(1, 0); got != 3 {
		t.Errorf("offset eval = %d, want 3", got)
	}
}

func TestSubstitute(t *testing.T) {
	if got := substitute("/a/${rank}/${iter}.dat", 3, 7); got != "/a/3/7.dat" {
		t.Errorf("substitute = %q", got)
	}
}

func TestInterpretCheckpoint(t *testing.T) {
	w, err := Parse(checkpointScript)
	if err != nil {
		t.Fatal(err)
	}
	e := des.NewEngine(61)
	fs := ssdFS(e)
	col := trace.NewCollector()
	rep, err := Run(e, fs, w, col)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(3 * 4 * 4 << 20)
	if rep.BytesWritten != want {
		t.Fatalf("bytes written = %d, want %d", rep.BytesWritten, want)
	}
	_, fsW := fs.TotalBytes()
	if fsW != want {
		t.Fatalf("FS bytes = %d", fsW)
	}
	// Compute phases make makespan at least 30ms.
	if rep.Makespan < 30*des.Millisecond {
		t.Errorf("makespan = %v", rep.Makespan)
	}
	// Trace captured the POSIX ops.
	if len(trace.ByLayer(col.Records(), trace.LayerPOSIX)) == 0 {
		t.Error("no trace records")
	}
	// Three per-iteration files exist.
	files := 0
	for _, p := range fs.Paths() {
		if strings.HasPrefix(p, "/ckpt.") {
			files++
		}
	}
	if files != 3 {
		t.Errorf("checkpoint files = %d", files)
	}
}

func TestInterpretMetadataScript(t *testing.T) {
	src := `
workload "meta" {
    ranks 2
    mkdir "/dir${rank}"
    loop 4 {
        open "/dir${rank}/f${iter}" create
        write "/dir${rank}/f${iter}" size=1KB
        close "/dir${rank}/f${iter}"
        stat "/dir${rank}/f${iter}"
        unlink "/dir${rank}/f${iter}"
    }
}
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e := des.NewEngine(62)
	fs := ssdFS(e)
	rep, err := Run(e, fs, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := fs.MDSStats()
	if st.Ops["create"] != 8 || st.Ops["unlink"] != 8 || st.Ops["mkdir"] != 2 {
		t.Errorf("MDS ops = %v", st.Ops)
	}
	if rep.BytesWritten != 8<<10 {
		t.Errorf("bytes = %d", rep.BytesWritten)
	}
}

func TestCompileMatchesInterpretation(t *testing.T) {
	w, err := Parse(checkpointScript)
	if err != nil {
		t.Fatal(err)
	}
	ops := Compile(w)
	if len(ops) != 4 {
		t.Fatalf("ranks = %d", len(ops))
	}
	// Each rank: 3 iterations x 4 chunks of 1MB = 12 writes.
	var writes int
	var bytes int64
	for _, op := range ops[0] {
		if op.Op == "write" {
			writes++
			bytes += op.Size
		}
	}
	if writes != 12 || bytes != 12<<20 {
		t.Fatalf("rank-0 writes = %d, bytes = %d", writes, bytes)
	}
	// Think time from compute statements lands on the next op.
	if ops[0][0].Think != 10*des.Millisecond {
		t.Errorf("first op think = %v", ops[0][0].Think)
	}
	// Compiled ops replay to the same byte volume.
	e := des.NewEngine(63)
	fs := ssdFS(e)
	res, err := replay.Run(e, fs, ops, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != 3*4*4<<20 {
		t.Fatalf("replayed bytes = %d", res.BytesWritten)
	}
}

// Property: Parse never panics on arbitrary input — it returns an error or
// a valid workload.
func TestPropParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse panicked on %q: %v", raw, r)
			}
		}()
		w, err := Parse(string(raw))
		return err != nil || w != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: for any parseable loop-free script built from fragments,
// Compile's total write bytes equal Run's.
func TestPropCompileRunByteAgreement(t *testing.T) {
	f := func(nRaw, szRaw uint8) bool {
		ranks := int(nRaw%4) + 1
		size := (int64(szRaw%16) + 1) * 64 << 10
		src := fmt.Sprintf(`workload "p" { ranks %d loop 2 { write "/f" offset=rank*4MB size=%d } }`, ranks, size)
		w, err := Parse(src)
		if err != nil {
			return false
		}
		var compiled int64
		for _, ops := range Compile(w) {
			for _, op := range ops {
				if op.Op == "write" {
					compiled += op.Size
				}
			}
		}
		e := des.NewEngine(64)
		rep, err := Run(e, ssdFS(e), w, nil)
		if err != nil {
			return false
		}
		return compiled == rep.BytesWritten
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReaddirRmdirStatements(t *testing.T) {
	src := `
workload "dirs" {
    ranks 1
    mkdir "/d"
    open "/d/f" create
    close "/d/f"
    readdir "/d"
    unlink "/d/f"
    rmdir "/d"
}
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e := des.NewEngine(65)
	fs := ssdFS(e)
	if _, err := Run(e, fs, w, nil); err != nil {
		t.Fatal(err)
	}
	st := fs.MDSStats()
	if st.Ops["readdir"] != 1 || st.Ops["rmdir"] != 1 {
		t.Errorf("MDS ops = %v", st.Ops)
	}
	// Namespace clean afterwards.
	if n := len(fs.Paths()); n != 1 {
		t.Errorf("paths = %v", fs.Paths())
	}
	// Compile maps readdir to a stat op.
	ops := Compile(w)
	var stats int
	for _, op := range ops[0] {
		if op.Op == "stat" {
			stats++
		}
	}
	if stats != 1 {
		t.Errorf("compiled stats = %d", stats)
	}
}
