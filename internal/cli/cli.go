// Package cli holds the flag plumbing and value parsing shared by the
// command-line tools in cmd/: ClusterFlags registers the common
// simulated-cluster flags (-oss, -device, -stripe-count, ...) and converts
// them to a pfs.Config, and ParseSize/ParseDuration accept the human
// size ("1MB", "256KB") and time ("100ms", "2s") literals used uniformly
// across flags, the iolang workload language, and campaign spec files.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// ClusterFlags collects the common simulated-cluster flags.
type ClusterFlags struct {
	OSS        int
	OSTsPerOSS int
	Device     string
	MDSThreads int
	IONodes    int
	StripeCnt  int
	StripeSize string
	Seed       int64
}

// Register installs the cluster flags on fs.
func (c *ClusterFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&c.OSS, "oss", 4, "number of object storage servers")
	fs.IntVar(&c.OSTsPerOSS, "osts-per-oss", 2, "OSTs per OSS")
	fs.StringVar(&c.Device, "device", "hdd", "OST device model: hdd, ssd, nvme")
	fs.IntVar(&c.MDSThreads, "mds-threads", 8, "MDS service threads")
	fs.IntVar(&c.IONodes, "ionodes", 0, "I/O forwarding nodes (0 = flat network)")
	fs.IntVar(&c.StripeCnt, "stripe-count", 4, "default stripe count")
	fs.StringVar(&c.StripeSize, "stripe-size", "1MB", "default stripe size")
	fs.Int64Var(&c.Seed, "seed", 42, "simulation seed")
}

// Config converts the flags to a pfs.Config.
func (c *ClusterFlags) Config() (pfs.Config, error) {
	cfg := pfs.DefaultConfig()
	cfg.NumOSS = c.OSS
	cfg.OSTsPerOSS = c.OSTsPerOSS
	cfg.MDSThreads = c.MDSThreads
	cfg.NumIONodes = c.IONodes
	cfg.DefaultStripeCount = c.StripeCnt
	ss, err := ParseSize(c.StripeSize)
	if err != nil {
		return cfg, err
	}
	cfg.DefaultStripeSize = ss
	switch strings.ToLower(c.Device) {
	case "hdd":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultHDD() }
	case "ssd":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	case "nvme":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultNVMe() }
	default:
		return cfg, fmt.Errorf("unknown device model %q", c.Device)
	}
	return cfg, nil
}

// ParseSize parses a byte size with optional B/KB/MB/GB suffix.
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "GB"):
		mult, s = 1<<30, s[:len(s)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, s = 1<<10, s[:len(s)-2]
	case strings.HasSuffix(upper, "B"):
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

// FormatSize renders a byte count human-readably.
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatTime renders simulated time.
func FormatTime(t des.Time) string { return t.String() }

// ParseDuration parses a simulated duration with ns/us/ms/s suffix
// (bare numbers are seconds).
func ParseDuration(s string) (des.Time, error) {
	s = strings.TrimSpace(s)
	var v float64
	var unit string
	if _, err := fmt.Sscanf(s, "%g%s", &v, &unit); err != nil {
		if _, err2 := fmt.Sscanf(s, "%g", &v); err2 != nil {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		unit = "s"
	}
	switch unit {
	case "ns":
		return des.Time(v), nil
	case "us":
		return des.Time(v * float64(des.Microsecond)), nil
	case "ms":
		return des.Time(v * float64(des.Millisecond)), nil
	case "s":
		return des.Time(v * float64(des.Second)), nil
	}
	return 0, fmt.Errorf("bad duration unit %q in %q", unit, s)
}
