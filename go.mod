module pioeval

go 1.22
