// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is process-oriented: simulated entities run as goroutines that
// block on simulation primitives (Wait, Acquire, Get). The engine executes
// exactly one process at a time and advances a virtual clock between events,
// so simulations are fully deterministic for a given seed and are not
// affected by wall-clock scheduling.
//
// The package is the substrate for every simulator in this repository: the
// network fabric, the parallel file system, the MPI runtime, and the burst
// buffer are all built from des processes and resources.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts floating-point seconds into simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled occurrence in virtual time.
type event struct {
	at   Time
	seq  uint64 // tie-breaker for determinism: FIFO among simultaneous events
	fire func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine drives a single simulation. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// Process scheduling: the engine hands control to one process goroutine
	// at a time and waits for it to yield back.
	yield chan struct{}

	running   bool
	stopped   bool
	procs     int // live process count, for leak detection
	nextPID   int
	rng       *StreamRNG
	tracehook func(at Time, what string)
}

// NewEngine returns an engine with its clock at zero and an attached
// deterministic RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   NewStreamRNG(seed),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic stream RNG.
func (e *Engine) RNG() *StreamRNG { return e.rng }

// SetTraceHook installs fn to be called on every event dispatch; used by
// tests and debug tooling. Pass nil to disable.
func (e *Engine) SetTraceHook(fn func(at Time, what string)) { e.tracehook = fn }

// schedule enqueues fn to run at absolute time at. It returns the event so
// callers can cancel it.
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: at=%v now=%v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fire: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run after delay d. Callback-style scheduling; most
// code should prefer processes (Spawn) instead.
func (e *Engine) After(d Time, fn func()) {
	e.schedule(e.now+d, fn)
}

// AfterCancel schedules fn after delay d and returns a cancel function
// (idempotent; a no-op once the event has fired). Timeout modeling.
func (e *Engine) AfterCancel(d Time, fn func()) (cancel func()) {
	ev := e.schedule(e.now+d, fn)
	return func() { ev.canceled = true }
}

// Run executes events until the event queue empties or until the clock
// exceeds horizon (use MaxTime for no limit). It returns the final time.
func (e *Engine) Run(horizon Time) Time {
	if e.running {
		panic("des: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		if ev.at > horizon {
			// Put it back for a future Run call and stop.
			heap.Push(&e.events, ev)
			e.now = horizon
			return e.now
		}
		e.now = ev.at
		if e.tracehook != nil {
			e.tracehook(e.now, "event")
		}
		ev.fire()
	}
	return e.now
}

// NextEventTime returns the timestamp of the earliest pending event.
func (e *Engine) NextEventTime() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].canceled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// AdvanceTo moves the clock forward to t without executing anything; used
// by the parallel runner to keep idle partitions in step. It panics if t
// precedes a pending event.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		return
	}
	if at, ok := e.NextEventTime(); ok && at < t {
		panic(fmt.Sprintf("des: AdvanceTo(%v) would skip event at %v", t, at))
	}
	e.now = t
}

// Pending reports the number of scheduled (non-canceled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// LiveProcs reports the number of spawned processes that have not finished.
// A non-zero value after Run returns with an empty queue indicates processes
// blocked forever (deadlock in the simulated system).
func (e *Engine) LiveProcs() int { return e.procs }
