package workload

import (
	"strings"
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/trace"
)

func ssdFS(e *des.Engine) *pfs.FS {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return pfs.New(e, cfg)
}

func hddFS(e *des.Engine) *pfs.FS {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	return pfs.New(e, cfg)
}

func TestIORSequentialWrite(t *testing.T) {
	e := des.NewEngine(41)
	fs := ssdFS(e)
	h := NewHarness(e, fs, 4, "cn", nil)
	rep := RunIOR(h, IORConfig{Ranks: 4, BlockSize: 8 << 20, TransferSize: 1 << 20, SharedFile: true, ReadBack: true})
	if rep.TotalBytes != 32<<20 {
		t.Fatalf("total bytes = %d", rep.TotalBytes)
	}
	if rep.WriteMBps <= 0 || rep.ReadMBps <= 0 {
		t.Fatalf("bandwidths = w%.1f r%.1f", rep.WriteMBps, rep.ReadMBps)
	}
	_, w := fs.TotalBytes()
	if w != 32<<20 {
		t.Fatalf("FS wrote %d, want %d", w, 32<<20)
	}
}

func TestIORFilePerProcessVsShared(t *testing.T) {
	run := func(shared bool) IORReport {
		e := des.NewEngine(42)
		h := NewHarness(e, ssdFS(e), 4, "cn", nil)
		return RunIOR(h, IORConfig{Ranks: 4, BlockSize: 4 << 20, SharedFile: shared})
	}
	fpp, sh := run(false), run(true)
	if fpp.TotalBytes != sh.TotalBytes {
		t.Fatal("byte volumes differ")
	}
	// Both must complete; bandwidths positive.
	if fpp.WriteMBps <= 0 || sh.WriteMBps <= 0 {
		t.Fatal("bandwidth")
	}
}

func TestIORRandomSlowerThanSequentialOnHDD(t *testing.T) {
	run := func(pat Pattern) IORReport {
		e := des.NewEngine(43)
		h := NewHarness(e, hddFS(e), 4, "cn", nil)
		// Stripe count 1 gives each rank's file a dedicated OST, so the
		// device-level pattern reflects the application pattern.
		return RunIOR(h, IORConfig{
			Ranks: 4, BlockSize: 8 << 20, TransferSize: 64 << 10,
			Pattern: pat, SharedFile: false, ReadBack: true,
			StripeCount: 1, StripeSize: 1 << 20,
		})
	}
	seq, rnd := run(Sequential), run(Random)
	if rnd.ReadMBps >= seq.ReadMBps {
		t.Fatalf("random read %.1f MB/s should be slower than sequential %.1f MB/s",
			rnd.ReadMBps, seq.ReadMBps)
	}
}

func TestIORCollectiveOnStridedSmall(t *testing.T) {
	run := func(collective bool) IORReport {
		e := des.NewEngine(44)
		h := NewHarness(e, hddFS(e), 8, "cn", nil)
		return RunIOR(h, IORConfig{
			Ranks: 8, BlockSize: 1 << 20, TransferSize: 16 << 10,
			SharedFile: true, Pattern: Strided, Collective: collective,
		})
	}
	ind, coll := run(false), run(true)
	if coll.WriteMBps <= ind.WriteMBps {
		t.Fatalf("collective %.1f MB/s should beat independent %.1f MB/s on strided small transfers",
			coll.WriteMBps, ind.WriteMBps)
	}
}

func TestIORPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || Strided.String() != "strided" || Random.String() != "random" {
		t.Error("pattern names")
	}
}

func TestMDTestPhases(t *testing.T) {
	e := des.NewEngine(45)
	fs := ssdFS(e)
	h := NewHarness(e, fs, 4, "cn", nil)
	rep := RunMDTest(h, MDTestConfig{Ranks: 4, FilesPerRank: 32})
	if rep.TotalFiles != 128 {
		t.Fatalf("total files = %d", rep.TotalFiles)
	}
	if rep.CreatesPerS <= 0 || rep.StatsPerS <= 0 || rep.RemovesPerS <= 0 {
		t.Fatalf("rates = %+v", rep)
	}
	// Stats are cheaper than creates at the MDS in our model? Both cost
	// one op; creates also pay namespace insert — same service time, so
	// rates should be within an order of magnitude.
	if rep.StatsPerS < rep.CreatesPerS/10 {
		t.Errorf("stat rate %.0f unexpectedly below create rate %.0f", rep.StatsPerS, rep.CreatesPerS)
	}
	// Namespace must be clean afterwards.
	if n := len(fs.Paths()); n != 2 { // "/" and "/mdtest"
		t.Errorf("leftover namespace entries: %v", fs.Paths())
	}
	st := fs.MDSStats()
	if st.Ops["create"] < 128 || st.Ops["unlink"] < 128 {
		t.Errorf("MDS ops = %v", st.Ops)
	}
}

func TestMDTestScalesWithMDSThreads(t *testing.T) {
	run := func(threads int) MDTestReport {
		e := des.NewEngine(46)
		cfg := pfs.DefaultConfig()
		cfg.NumIONodes = 0
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
		cfg.MDSThreads = threads
		fs := pfs.New(e, cfg)
		h := NewHarness(e, fs, 8, "cn", nil)
		return RunMDTest(h, MDTestConfig{Ranks: 8, FilesPerRank: 32})
	}
	one, eight := run(1), run(8)
	if eight.CreatesPerS <= one.CreatesPerS {
		t.Errorf("8-thread MDS creates %.0f/s should beat 1-thread %.0f/s",
			eight.CreatesPerS, one.CreatesPerS)
	}
}

func TestCheckpointDirectVsBurstBuffer(t *testing.T) {
	// Figure-1 experiment shape at workload level: the burst buffer
	// shortens the application-perceived checkpoint time.
	direct := func() CheckpointReport {
		e := des.NewEngine(47)
		h := NewHarness(e, hddFS(e), 4, "cn", nil)
		return RunCheckpoint(h, CheckpointConfig{Ranks: 4, BytesPerRank: 8 << 20, Steps: 3, ComputeTime: 50 * des.Millisecond})
	}()
	if direct.TotalBytes != 3*4*8<<20 {
		t.Fatalf("bytes = %d", direct.TotalBytes)
	}
	for i, d := range direct.StepIOTime {
		if d <= 0 {
			t.Fatalf("step %d time = %v", i, d)
		}
	}
	if direct.EffectiveMBps <= 0 || direct.IOFraction <= 0 || direct.IOFraction >= 1 {
		t.Fatalf("report = %+v", direct)
	}
}

func TestDLRandomReadsSlower(t *testing.T) {
	// The C2 shape: shuffled small reads achieve lower bandwidth than
	// unshuffled (sequential within files) epochs on HDD-backed storage.
	run := func(shuffle bool) DLReport {
		e := des.NewEngine(48)
		h := NewHarness(e, hddFS(e), 4, "cn", nil)
		return RunDL(h, DLConfig{
			Workers: 4, Samples: 512, SampleSize: 128 << 10,
			SamplesPerFile: 128, BatchSize: 32, Epochs: 1, Shuffle: shuffle,
		})
	}
	seq, shuf := run(false), run(true)
	if seq.TotalRead != shuf.TotalRead {
		t.Fatalf("read volumes differ: %d vs %d", seq.TotalRead, shuf.TotalRead)
	}
	if shuf.ReadMBps >= seq.ReadMBps {
		t.Fatalf("shuffled %.1f MB/s should be slower than in-order %.1f MB/s",
			shuf.ReadMBps, seq.ReadMBps)
	}
	if shuf.SamplesPerSec <= 0 {
		t.Error("samples/sec")
	}
}

func TestDLReadsAreReadDominated(t *testing.T) {
	e := des.NewEngine(49)
	fs := ssdFS(e)
	col := trace.NewCollector()
	h := NewHarness(e, fs, 2, "cn", col)
	RunDL(h, DLConfig{Workers: 2, Samples: 256, SamplesPerFile: 64, Epochs: 2, Shuffle: true})
	sum := trace.Summarize(trace.ByLayer(col.Records(), trace.LayerPOSIX))
	// 2 epochs of reads vs 1 generation write: read-dominated.
	if sum.BytesRead <= sum.BytesWritten {
		t.Fatalf("DL should be read-dominated: r%d w%d", sum.BytesRead, sum.BytesWritten)
	}
}

func TestAnalyticsPipeline(t *testing.T) {
	e := des.NewEngine(50)
	fs := ssdFS(e)
	h := NewHarness(e, fs, 4, "cn", nil)
	rep := RunAnalytics(h, AnalyticsConfig{Workers: 4, PartitionSize: 16 << 20, ShuffleFiles: 8, ShuffleSize: 64 << 10})
	if rep.ScanTime <= 0 || rep.ShuffleTime <= 0 || rep.ReduceTime <= 0 {
		t.Fatalf("phase times = %+v", rep)
	}
	if rep.BytesRead < 4*16<<20 {
		t.Errorf("scan bytes = %d", rep.BytesRead)
	}
	if rep.BytesWrit != 4*8*64<<10 {
		t.Errorf("shuffle bytes = %d", rep.BytesWrit)
	}
}

func TestWorkflowChainOrdering(t *testing.T) {
	e := des.NewEngine(51)
	fs := ssdFS(e)
	cfg := ChainWorkflow(5, 4, 1<<20)
	rep := RunWorkflow(e, fs, cfg, nil)
	if rep.TasksRun != 5 {
		t.Fatalf("tasks run = %d, want 5", rep.TasksRun)
	}
	// Stage outputs must all exist except none removed: 5 stages x 4 files.
	paths := fs.Paths()
	found := 0
	for _, p := range paths {
		if len(p) > 4 && p[:4] == "/wf/" {
			found++
		}
	}
	if found != 20 {
		t.Errorf("workflow outputs = %d, want 20", found)
	}
	if rep.MetaOpsPerMB <= 0 {
		t.Error("metadata intensity should be positive")
	}
}

func TestWorkflowDiamondParallelism(t *testing.T) {
	e := des.NewEngine(52)
	fs := ssdFS(e)
	rep := RunWorkflow(e, fs, DiamondWorkflow(4, 8<<20), nil)
	if rep.TasksRun != 6 {
		t.Fatalf("tasks = %d, want 6", rep.TasksRun)
	}
	if rep.BytesRead == 0 || rep.BytesWrit == 0 {
		t.Fatal("no data moved")
	}
}

func TestWorkflowIsMetadataIntensiveVsBulkIO(t *testing.T) {
	// The C3 shape: per megabyte moved, workflows consume far more MDS
	// operations than a bulk checkpoint.
	eW := des.NewEngine(53)
	fsW := ssdFS(eW)
	wf := RunWorkflow(eW, fsW, ChainWorkflow(8, 8, 256<<10), nil)

	eC := des.NewEngine(54)
	fsC := ssdFS(eC)
	h := NewHarness(eC, fsC, 4, "cn", nil)
	before := fsC.MDSStats().TotalOps
	ck := RunCheckpoint(h, CheckpointConfig{Ranks: 4, BytesPerRank: 16 << 20, Steps: 2})
	ckMeta := fsC.MDSStats().TotalOps - before
	ckMetaPerMB := float64(ckMeta) / (float64(ck.TotalBytes) / 1e6)

	if wf.MetaOpsPerMB <= ckMetaPerMB*3 {
		t.Fatalf("workflow metadata intensity %.2f ops/MB should dwarf checkpoint %.2f ops/MB",
			wf.MetaOpsPerMB, ckMetaPerMB)
	}
}

func TestMDTestDepthAddsDirOps(t *testing.T) {
	run := func(depth int) (MDTestReport, uint64) {
		e := des.NewEngine(55)
		fs := ssdFS(e)
		h := NewHarness(e, fs, 2, "cn", nil)
		rep := RunMDTest(h, MDTestConfig{Ranks: 2, FilesPerRank: 8, Depth: depth})
		return rep, fs.MDSStats().Ops["mkdir"]
	}
	_, flatMkdirs := run(0)
	repDeep, deepMkdirs := run(3)
	if deepMkdirs != flatMkdirs+2*3 {
		t.Errorf("mkdirs = %d, want %d", deepMkdirs, flatMkdirs+6)
	}
	if repDeep.TotalFiles != 16 {
		t.Errorf("files = %d", repDeep.TotalFiles)
	}
}

func TestBTIOCollectiveAndIndependent(t *testing.T) {
	run := func(collective bool) BTIOReport {
		e := des.NewEngine(56)
		fs := ssdFS(e)
		h := NewHarness(e, fs, 4, "bt", nil)
		rep := RunBTIO(h, BTIOConfig{
			Ranks: 4, Dims: [3]int64{32, 16, 16}, Steps: 3, Collective: collective,
		})
		_, w := fs.TotalBytes()
		// All cell bytes must reach the OSTs (plus HDF metadata); the
		// collective path may round up slightly over coalesced holes.
		if w < rep.TotalBytes {
			t.Fatalf("OST bytes %d < payload %d", w, rep.TotalBytes)
		}
		return rep
	}
	coll := run(true)
	ind := run(false)
	want := int64(32*16*16) * 40 * 3
	if coll.TotalBytes != want || ind.TotalBytes != want {
		t.Fatalf("payload = %d/%d, want %d", coll.TotalBytes, ind.TotalBytes, want)
	}
	if coll.WriteMBps <= 0 || ind.WriteMBps <= 0 {
		t.Fatal("bandwidths")
	}
	for _, d := range coll.StepTime {
		if d <= 0 {
			t.Fatal("step time")
		}
	}
}

func TestBTIODefaults(t *testing.T) {
	cfg := BTIOConfig{}.withDefaults()
	if cfg.Ranks <= 0 || cfg.ElemSize != 40 || cfg.Dims[0] == 0 || cfg.Steps <= 0 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Dim 0 clamps up to rank count.
	c2 := BTIOConfig{Ranks: 64, Dims: [3]int64{8, 8, 8}}.withDefaults()
	if c2.Dims[0] < 64 {
		t.Errorf("dim0 = %d", c2.Dims[0])
	}
}

func TestParseMDPhases(t *testing.T) {
	// Empty string selects the historical default set.
	def, err := ParseMDPhases("")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(def, ","), "create,stat,delete"; got != want {
		t.Fatalf("default phases = %s, want %s", got, want)
	}
	// Any selection comes back in canonical order regardless of input order.
	all, err := ParseMDPhases("delete,read,create,stat")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(all, ","), "create,stat,read,delete"; got != want {
		t.Fatalf("phases = %s, want %s", got, want)
	}
	for _, bad := range []string{"stat,delete", "create,create", "create,fsck"} {
		if _, err := ParseMDPhases(bad); err == nil {
			t.Errorf("ParseMDPhases(%q) accepted, want error", bad)
		}
	}
}

func TestMDTestSelectablePhases(t *testing.T) {
	run := func(phases string) MDTestReport {
		e := des.NewEngine(47)
		h := NewHarness(e, ssdFS(e), 4, "cn", nil)
		sel, err := ParseMDPhases(phases)
		if err != nil {
			t.Fatal(err)
		}
		return RunMDTest(h, MDTestConfig{
			Ranks: 4, FilesPerRank: 16, WriteBytes: 3901, Phases: sel,
		})
	}

	// All four phases: every rate positive, read back the written payload.
	full := run("create,stat,read,delete")
	for _, ph := range []string{MDPhaseCreate, MDPhaseStat, MDPhaseRead, MDPhaseDelete} {
		if full.PhaseRate(ph) <= 0 {
			t.Errorf("phase %s rate %.1f, want > 0", ph, full.PhaseRate(ph))
		}
		if full.PhaseTime(ph) <= 0 {
			t.Errorf("phase %s time %v, want > 0", ph, full.PhaseTime(ph))
		}
	}

	// Omitted phases report zero time and rate.
	partial := run("create,delete")
	for _, ph := range []string{MDPhaseStat, MDPhaseRead} {
		if partial.PhaseRate(ph) != 0 || partial.PhaseTime(ph) != 0 {
			t.Errorf("skipped phase %s reported time %v rate %.1f, want zeros",
				ph, partial.PhaseTime(ph), partial.PhaseRate(ph))
		}
	}

	// The read phase costs simulated time: adding it lengthens the
	// makespan of an otherwise identical run.
	withRead := run("create,read,delete")
	if withRead.Makespan <= partial.Makespan {
		t.Errorf("makespan with read %v should exceed without %v",
			withRead.Makespan, partial.Makespan)
	}

	// Rate definition check: ops/sec = total files / phase seconds.
	if got, want := full.PhaseRate(MDPhaseRead), float64(full.TotalFiles)/full.ReadTime.Seconds(); got != want {
		t.Errorf("read rate %.6f, want %.6f", got, want)
	}
}

func TestMDTestPhaseHelpersUnknownName(t *testing.T) {
	var rep MDTestReport
	if rep.PhaseRate("fsck") != 0 || rep.PhaseTime("fsck") != 0 {
		t.Error("unknown phase name should report zeros")
	}
}
