package campaign

import (
	"sort"

	"pioeval/internal/stats"
)

// Dist summarizes one metric's distribution over a point's repetitions.
type Dist struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	StdDev float64 `json:"stddev"`
	// CILo/CIHi is the 95% bootstrap confidence interval for the mean.
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
}

// PointSummary is one grid point with its aggregated metric distributions.
type PointSummary struct {
	Point   Point           `json:"point"`
	Metrics map[string]Dist `json:"metrics"`
}

// JobError is one run whose simulation panicked; RunContext recovers the
// panic in the pool worker and records it here instead of letting one
// poisoned grid point take down the whole campaign.
type JobError struct {
	Run   int    `json:"run"`
	Point int    `json:"point"`
	Rep   int    `json:"rep"`
	Msg   string `json:"msg"`
}

// Report is the aggregated outcome of a campaign: the echoed spec scalars,
// every per-run result (the raw trajectory), and per-point distribution
// summaries. Everything in a Report derives from simulated time and the
// campaign seed — never from wall clocks — so its JSON form is
// byte-identical across runs and worker counts. The omitempty tail fields
// only appear on degraded campaigns (cancelled mid-grid or with poisoned
// runs), so clean reports keep their historical byte-identical encoding.
type Report struct {
	Name     string         `json:"name"`
	Workload string         `json:"workload"`
	Seed     int64          `json:"seed"`
	Reps     int            `json:"reps"`
	Points   []PointSummary `json:"points"`
	Runs     []RunResult    `json:"runs"`
	// Cancelled marks a partial report: the context was cancelled before
	// every planned run executed. Runs with nil Metrics never ran.
	Cancelled bool `json:"cancelled,omitempty"`
	// Errors lists runs that panicked (recovered per-run, see RunContext).
	Errors []JobError `json:"errors,omitempty"`
}

// CompletedRuns counts runs that actually executed — on a clean campaign
// this equals len(Runs); on a cancelled or partially-poisoned one it is
// smaller.
func (r *Report) CompletedRuns() int {
	n := 0
	for i := range r.Runs {
		if r.Runs[i].Metrics != nil {
			n++
		}
	}
	return n
}

// bootstrapResamples balances CI stability against campaign-aggregation
// cost; 200 resamples bounds the CI quantile error well below the
// simulator's own run-to-run variation.
const bootstrapResamples = 200

// aggregate groups runs by point and summarizes each metric.
func aggregate(spec Spec, points []Point, runs []RunResult) *Report {
	rep := &Report{
		Name:     spec.Name,
		Workload: spec.Workload,
		Seed:     spec.Seed,
		Reps:     spec.Reps,
		Runs:     runs,
	}
	for _, p := range points {
		samples := map[string][]float64{}
		for i := p.ID * spec.Reps; i < (p.ID+1)*spec.Reps; i++ {
			for k, v := range runs[i].Metrics {
				samples[k] = append(samples[k], v)
			}
		}
		ms := make(map[string]Dist, len(samples))
		for k, xs := range samples {
			s := stats.Summarize(xs)
			// The CI seed mixes the point ID so each point resamples an
			// independent, reproducible index stream.
			ci := stats.BootstrapCI(xs, bootstrapResamples, 0.95, RunSeed(spec.Seed, -1-p.ID))
			ms[k] = Dist{
				N: s.N, Mean: s.Mean, Median: s.Median, P95: s.P95,
				StdDev: s.StdDev, CILo: ci.Lo, CIHi: ci.Hi,
			}
		}
		rep.Points = append(rep.Points, PointSummary{Point: p, Metrics: ms})
	}
	return rep
}

// MetricNames returns the sorted union of metric names across all points,
// the stable column order for tabular output.
func (r *Report) MetricNames() []string {
	seen := map[string]bool{}
	for _, ps := range r.Points {
		for k := range ps.Metrics {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
