// Command facility simulates a whole computing facility: a scheduled job
// stream with a mixed workload executing over the shared parallel file
// system, analyzed the way storage-system-level studies do — read/write
// mix, scheduler utilization, and interference, all from generated logs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pioeval/internal/cli"
	"pioeval/internal/facility"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("facility: ")
	fs := flag.NewFlagSet("facility", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	jobs := fs.Int("jobs", 16, "jobs submitted")
	nodes := fs.Int("nodes", 16, "compute node pool")
	emerging := fs.Float64("emerging", 0.5, "fraction of emerging (DL/analytics) jobs [0,1]")
	scale := fs.Int64("scale", 1, "per-job I/O volume multiplier")
	_ = fs.Parse(os.Args[1:])

	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	trad := 1 - *emerging
	res, err := facility.Run(facility.Config{
		Seed: cluster.Seed, Cluster: cfg, Jobs: *jobs, Nodes: *nodes,
		JobScale: *scale,
		Mix: map[facility.JobKind]float64{
			facility.Checkpoint: trad,
			facility.DLTraining: *emerging * 0.5,
			facility.Analytics:  *emerging * 0.3,
			facility.MetaHeavy:  *emerging * 0.2,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("facility run: %d jobs on %d nodes, %.0f%% emerging workloads\n",
		*jobs, *nodes, *emerging*100)
	fmt.Printf("  makespan %v, scheduler utilization %.1f%%\n", res.Makespan, res.Utilization*100)
	fmt.Printf("  storage mix: %.1f%% of bytes were reads (write-dominated: %v)\n",
		res.ReadFraction*100, res.ReadFraction < 0.5)
	fmt.Printf("  MDS operations: %d\n", res.MDSOps)
	fmt.Println("\nper-kind read fractions:")
	for kind, frac := range facility.KindReadFractions(res.Jobs) {
		fmt.Printf("  %-12s %.2f\n", kind, frac)
	}
	fmt.Println("\njob log:")
	for _, j := range res.Jobs {
		fmt.Printf("  %-8s %-11s start %-12v end %-12v r %s w %s\n",
			j.ID, j.Kind, j.Start, j.End,
			cli.FormatSize(j.BytesRead), cli.FormatSize(j.BytesWritten))
	}
	if len(res.Interferences) > 0 {
		fmt.Println("\ninterfering job pairs (overlap under high OST load):")
		for _, in := range res.Interferences {
			fmt.Printf("  %s <-> %s (overlap %v, peak util %.2f)\n", in.A, in.B, in.Overlap, in.PeakUtil)
		}
	}
}
