package blockdev

import (
	"testing"
	"testing/quick"

	"pioeval/internal/des"
)

func TestHDDSequentialVsRandom(t *testing.T) {
	m := DefaultHDD()
	seq := ServiceTime(m, Request{Offset: 4096, Size: 4096}, 4096)
	rnd := ServiceTime(m, Request{Offset: 1 << 30, Size: 4096}, 4096)
	if seq >= rnd {
		t.Fatalf("sequential (%v) should be faster than random (%v)", seq, rnd)
	}
	if rnd-seq != m.SeekTime+m.RotationalLat {
		t.Errorf("random penalty = %v, want seek+rot = %v", rnd-seq, m.SeekTime+m.RotationalLat)
	}
}

func TestSSDReadWriteAsymmetry(t *testing.T) {
	m := DefaultSSD()
	r := ServiceTime(m, Request{Size: 1 << 20}, 0)
	w := ServiceTime(m, Request{Size: 1 << 20, Write: true}, 0)
	if w <= 0 || r <= 0 {
		t.Fatal("service times must be positive")
	}
	// Write bandwidth is lower, so large writes are slower despite the
	// smaller fixed latency.
	if w <= r {
		t.Errorf("1MB write (%v) should be slower than read (%v)", w, r)
	}
}

func TestNVMeFasterThanSSD(t *testing.T) {
	ssd, nvme := DefaultSSD(), DefaultNVMe()
	req := Request{Size: 1 << 20}
	if ServiceTime(nvme, req, 0) >= ServiceTime(ssd, req, 0) {
		t.Error("NVMe should be faster than SATA SSD")
	}
}

func TestDeviceQueueing(t *testing.T) {
	e := des.NewEngine(1)
	// Deterministic model: 10us per request regardless of shape.
	m := &SSDModel{ReadLatency: 10 * des.Microsecond, WriteLatency: 10 * des.Microsecond, ReadBps: 1e18, WriteBps: 1e18}
	d := NewDevice(e, "d0", m, 1)
	var ends []des.Time
	for i := 0; i < 3; i++ {
		e.Spawn("u", func(p *des.Proc) {
			d.Access(p, Request{Offset: 0, Size: 1})
			ends = append(ends, p.Now())
		})
	}
	e.Run(des.MaxTime)
	want := []des.Time{10 * des.Microsecond, 20 * des.Microsecond, 30 * des.Microsecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	st := d.Stats()
	if st.Reads != 3 || st.BytesRead != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeviceQueueDepthParallelism(t *testing.T) {
	e := des.NewEngine(1)
	m := &SSDModel{ReadLatency: 10 * des.Microsecond, ReadBps: 1e18, WriteBps: 1e18}
	d := NewDevice(e, "d0", m, 4)
	var last des.Time
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *des.Proc) {
			d.Access(p, Request{Size: 1})
			last = p.Now()
		})
	}
	e.Run(des.MaxTime)
	if last != 10*des.Microsecond {
		t.Fatalf("4 parallel ops on depth-4 device finished at %v, want 10us", last)
	}
}

func TestDeviceStatsCounters(t *testing.T) {
	e := des.NewEngine(1)
	d := NewDevice(e, "d0", DefaultSSD(), 1)
	e.Spawn("u", func(p *des.Proc) {
		d.Access(p, Request{Size: 100, Write: true})
		d.Access(p, Request{Offset: 100, Size: 200, Write: true})
		d.Access(p, Request{Size: 300})
	})
	e.Run(des.MaxTime)
	st := d.Stats()
	if st.Writes != 2 || st.BytesWritten != 300 {
		t.Errorf("writes=%d bytesWritten=%d, want 2/300", st.Writes, st.BytesWritten)
	}
	if st.Reads != 1 || st.BytesRead != 300 {
		t.Errorf("reads=%d bytesRead=%d, want 1/300", st.Reads, st.BytesRead)
	}
}

func TestBadRequestPanics(t *testing.T) {
	e := des.NewEngine(1)
	d := NewDevice(e, "d0", DefaultSSD(), 1)
	e.Spawn("u", func(p *des.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative size should panic")
			}
		}()
		d.Access(p, Request{Size: -1})
	})
	e.Run(des.MaxTime)
}

func TestSetSlowdownValidation(t *testing.T) {
	e := des.NewEngine(1)
	d := NewDevice(e, "d0", DefaultSSD(), 1)
	for _, bad := range []float64{0, -1, 0.5} {
		if err := d.SetSlowdown(bad); err == nil {
			t.Errorf("SetSlowdown(%g) should fail", bad)
		}
	}
	if got := d.Slowdown(); got != 1 {
		t.Errorf("rejected factors must not stick: slowdown = %g, want 1", got)
	}
	if err := d.SetSlowdown(3); err != nil {
		t.Fatalf("SetSlowdown(3): %v", err)
	}
	if got := d.Slowdown(); got != 3 {
		t.Errorf("slowdown = %g, want 3", got)
	}
	if err := d.SetSlowdown(1); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

func TestSlowdownScalesServiceTime(t *testing.T) {
	run := func(factor float64) des.Time {
		e := des.NewEngine(1)
		m := &SSDModel{ReadLatency: 10 * des.Microsecond, ReadBps: 1e18, WriteBps: 1e18}
		d := NewDevice(e, "d0", m, 1)
		if err := d.SetSlowdown(factor); err != nil {
			t.Fatal(err)
		}
		e.Spawn("u", func(p *des.Proc) { d.Access(p, Request{Size: 1}) })
		return e.Run(des.MaxTime)
	}
	if base, slow := run(1), run(5); slow != 5*base {
		t.Errorf("slowdown 5x: %v vs base %v", slow, base)
	}
}

// Property: HDD service time is non-decreasing in request size for fixed
// alignment.
func TestPropHDDMonotonicInSize(t *testing.T) {
	m := DefaultHDD()
	f := func(a, b uint32) bool {
		x, y := int64(a%(1<<26)), int64(b%(1<<26))
		if x > y {
			x, y = y, x
		}
		return ServiceTime(m, Request{Offset: 0, Size: x}, 0) <= ServiceTime(m, Request{Offset: 0, Size: y}, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: device busy time never exceeds elapsed time * queue depth.
func TestPropBusyBounded(t *testing.T) {
	f := func(n uint8, depth uint8) bool {
		ops := int(n%20) + 1
		qd := int(depth%4) + 1
		e := des.NewEngine(11)
		d := NewDevice(e, "d", DefaultSSD(), qd)
		for i := 0; i < ops; i++ {
			e.Spawn("u", func(p *des.Proc) {
				sz := int64(e.RNG().Stream("sz").Intn(1<<20) + 1)
				d.Access(p, Request{Size: sz, Write: e.RNG().Stream("w").Intn(2) == 0})
			})
		}
		end := e.Run(des.MaxTime)
		return d.Stats().BusyTime <= end*des.Time(qd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
