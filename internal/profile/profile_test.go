package profile

import (
	"bytes"
	"strings"
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/trace"
)

func rec(rank int, op, path string, off, size, start, end int64) trace.Record {
	return trace.Record{
		Rank: rank, Layer: trace.LayerPOSIX, Op: op, Path: path,
		Offset: off, Size: size, Start: des.Time(start), End: des.Time(end),
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{
		0:        0,
		100:      0,
		101:      1,
		1024:     1,
		10 << 10: 2,
		1 << 20:  4,
		5 << 20:  6,
		1 << 30:  8,
	}
	for size, want := range cases {
		if got := bucketOf(size); got != want {
			t.Errorf("bucketOf(%d) = %d (%s), want %d (%s)", size, got, BucketLabel(got), want, BucketLabel(want))
		}
	}
	if BucketLabel(99) != "?" {
		t.Error("out-of-range label")
	}
}

func TestCountersBasic(t *testing.T) {
	p := New()
	p.IngestAll([]trace.Record{
		rec(0, "open", "/f", 0, 0, 0, 10),
		rec(0, "write", "/f", 0, 1000, 10, 20),
		rec(0, "write", "/f", 1000, 1000, 20, 30), // consecutive
		rec(0, "write", "/f", 5000, 1000, 30, 40), // sequential (gap)
		rec(0, "write", "/f", 100, 1000, 40, 50),  // backward: neither
		rec(0, "read", "/f", 0, 500, 50, 60),
		rec(0, "fsync", "/f", 0, 0, 60, 65),
		rec(0, "close", "/f", 0, 0, 65, 70),
	})
	cs := p.PerRank()
	if len(cs) != 1 {
		t.Fatalf("counters = %d", len(cs))
	}
	c := cs[0]
	if c.Writes != 4 || c.BytesWritten != 4000 {
		t.Errorf("writes=%d bytes=%d", c.Writes, c.BytesWritten)
	}
	if c.ConsecWrites != 1 {
		t.Errorf("consec writes = %d, want 1", c.ConsecWrites)
	}
	if c.SeqWrites != 2 { // consecutive counts as sequential too
		t.Errorf("seq writes = %d, want 2", c.SeqWrites)
	}
	if c.Reads != 1 || c.BytesRead != 500 {
		t.Errorf("reads=%d bytesRead=%d", c.Reads, c.BytesRead)
	}
	if c.Opens != 1 || c.Closes != 1 || c.Fsyncs != 1 {
		t.Errorf("meta = %+v", c)
	}
	if c.FirstOp != 0 || c.LastOp != 70 {
		t.Errorf("first/last = %v/%v", c.FirstOp, c.LastOp)
	}
	if c.MaxWriteSize != 1000 {
		t.Errorf("maxWrite = %d", c.MaxWriteSize)
	}
	if c.WriteTime != 40 || c.ReadTime != 10 || c.MetaTime != 20 {
		t.Errorf("times = w%v r%v m%v", c.WriteTime, c.ReadTime, c.MetaTime)
	}
}

func TestLayerFiltering(t *testing.T) {
	p := New()
	r := rec(0, "write", "/f", 0, 100, 0, 1)
	r.Layer = trace.LayerMPIIO
	p.Ingest(r)
	if len(p.PerRank()) != 0 {
		t.Error("MPI-IO record should be ignored by POSIX profiler")
	}
	p.Layer = trace.LayerMPIIO
	p.Ingest(r)
	if len(p.PerRank()) != 1 {
		t.Error("record at configured layer should count")
	}
}

func TestSharedFileReduction(t *testing.T) {
	p := New()
	for rank := 0; rank < 4; rank++ {
		p.Ingest(rec(rank, "write", "/shared", int64(rank)*100, 100, int64(rank), int64(rank)+1))
	}
	p.Ingest(rec(0, "write", "/private", 0, 50, 10, 11))
	files := p.PerFile()
	if len(files) != 2 {
		t.Fatalf("files = %d", len(files))
	}
	// Sorted by path: /private then /shared.
	if files[0].Path != "/private" || files[1].Path != "/shared" {
		t.Fatalf("order = %s, %s", files[0].Path, files[1].Path)
	}
	sh := files[1]
	if sh.Writes != 4 || sh.BytesWritten != 400 {
		t.Errorf("shared = %+v", sh)
	}
	if sh.Rank != -1 {
		t.Errorf("reduced rank = %d, want -1", sh.Rank)
	}
	if sh.FirstOp != 0 || sh.LastOp != 4 {
		t.Errorf("reduced window = %v..%v", sh.FirstOp, sh.LastOp)
	}
}

func TestReadWriteRatio(t *testing.T) {
	p := New()
	p.Ingest(rec(0, "read", "/f", 0, 300, 0, 1))
	p.Ingest(rec(0, "write", "/f", 0, 100, 1, 2))
	if got := p.ReadWriteRatio(); got != 0.75 {
		t.Errorf("ratio = %v, want 0.75", got)
	}
	empty := New()
	if empty.ReadWriteRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestSequentialFraction(t *testing.T) {
	p := New()
	// 3 writes: 2 have predecessors, both sequential.
	p.Ingest(rec(0, "write", "/f", 0, 100, 0, 1))
	p.Ingest(rec(0, "write", "/f", 100, 100, 1, 2))
	p.Ingest(rec(0, "write", "/f", 500, 100, 2, 3))
	if got := p.SequentialFraction(); got != 1.0 {
		t.Errorf("seq fraction = %v, want 1.0", got)
	}
	// Add a random-access reader: 4 reads, 3 with predecessors, 0 seq.
	p.Ingest(rec(1, "read", "/f", 900, 10, 3, 4))
	p.Ingest(rec(1, "read", "/f", 100, 10, 4, 5))
	p.Ingest(rec(1, "read", "/f", 50, 10, 5, 6))
	p.Ingest(rec(1, "read", "/f", 20, 10, 6, 7))
	got := p.SequentialFraction()
	if got <= 0.3 || got >= 0.5 { // 2 of 5 streams-with-predecessor ops
		t.Errorf("mixed seq fraction = %v, want 0.4", got)
	}
}

func TestDominantAccessSize(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.Ingest(rec(0, "read", "/f", int64(i)*4096, 4096, int64(i), int64(i)+1))
	}
	p.Ingest(rec(0, "write", "/f", 0, 10<<20, 100, 101))
	if got := p.DominantAccessSize(); got != "1K-10K" {
		t.Errorf("dominant = %q, want 1K-10K", got)
	}
	if New().DominantAccessSize() != "none" {
		t.Error("empty profiler dominant size")
	}
}

func TestDXTMode(t *testing.T) {
	p := New()
	p.EnableDXT()
	p.Ingest(rec(0, "open", "/f", 0, 0, 0, 1))
	p.Ingest(rec(0, "write", "/f", 0, 100, 1, 2))
	p.Ingest(rec(0, "read", "/f", 0, 100, 2, 3))
	dxt := p.DXT()
	if len(dxt) != 2 {
		t.Fatalf("DXT records = %d, want 2 (data ops only)", len(dxt))
	}
	if dxt[0].Op != "write" || dxt[1].Op != "read" {
		t.Errorf("DXT ops = %v %v", dxt[0].Op, dxt[1].Op)
	}
}

func TestAttachLiveHook(t *testing.T) {
	col := trace.NewCollector()
	p := New()
	p.Attach(col)
	col.Emit(rec(0, "write", "/f", 0, 128, 0, 1))
	if len(p.PerRank()) != 1 {
		t.Fatal("live hook did not ingest")
	}
}

func TestReportAndJSON(t *testing.T) {
	p := New()
	p.Ingest(rec(0, "write", "/data/x", 0, 1<<20, 0, 10))
	p.Ingest(rec(1, "read", "/data/x", 0, 1<<20, 10, 20))
	var txt bytes.Buffer
	if err := p.WriteReport(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "/data/x") {
		t.Error("report missing file path")
	}
	var js bytes.Buffer
	if err := p.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	files, err := ReadJSON(&js)
	if err != nil || len(files) != 1 {
		t.Fatalf("ReadJSON = %v, %v", files, err)
	}
	if files[0].BytesWritten != 1<<20 || files[0].BytesRead != 1<<20 {
		t.Errorf("round trip = %+v", files[0])
	}
}

func TestHistogramAccumulation(t *testing.T) {
	p := New()
	sizes := []int64{50, 500, 5000, 50000, 500000, 2 << 20}
	for i, s := range sizes {
		p.Ingest(rec(0, "write", "/f", int64(i)*(10<<20), s, int64(i), int64(i)+1))
	}
	c := p.PerRank()[0]
	for i := 0; i < 6; i++ {
		if c.WriteHist[i] != 1 {
			t.Errorf("bucket %d (%s) = %d, want 1", i, BucketLabel(i), c.WriteHist[i])
		}
	}
}
