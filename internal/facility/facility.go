// Package facility simulates a whole computing facility over time: a job
// stream with stochastic arrivals and a configurable workload mix is
// scheduled onto a node pool by the workload manager, executed against the
// shared parallel file system, and observed by the server-side monitor.
// This is the "I/O behavior of the storage system as a whole" perspective
// of §IV-B1 (Gunasekaran et al., Lockwood et al.'s year-in-the-life, Patel
// et al.) in miniature: the same analyses — read/write mix, utilization,
// interference — run on the generated logs.
package facility

import (
	"fmt"
	"sort"

	"pioeval/internal/des"
	"pioeval/internal/monitor"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/sched"
	"pioeval/internal/storage"
)

// JobKind classifies facility jobs.
type JobKind int

// Facility job kinds.
const (
	Checkpoint JobKind = iota // traditional write-heavy simulation
	DLTraining                // read-heavy shuffled training
	Analytics                 // scan + small shuffle files
	MetaHeavy                 // workflow-like metadata churn
	numKinds
)

var kindNames = [...]string{"checkpoint", "dltraining", "analytics", "metaheavy"}

// String returns the kind name.
func (k JobKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config describes a facility run.
type Config struct {
	Seed    int64
	Cluster pfs.Config
	// Nodes is the compute pool the workload manager schedules onto.
	Nodes int
	// Jobs is the number of jobs submitted.
	Jobs int
	// MeanInterarrival spaces job submissions (exponential).
	MeanInterarrival des.Time
	// Mix weights each job kind (normalized internally). Empty = uniform
	// over Checkpoint and DLTraining.
	Mix map[JobKind]float64
	// SampleInterval drives the server-side monitor.
	SampleInterval des.Time
	// JobScale multiplies per-job I/O volume (1 = default sizes).
	JobScale int64
	// InterferenceUtil is the OST utilization above which overlapping
	// jobs count as interfering (default 0.6).
	InterferenceUtil float64
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Jobs <= 0 {
		c.Jobs = 12
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 50 * des.Millisecond
	}
	if len(c.Mix) == 0 {
		c.Mix = map[JobKind]float64{Checkpoint: 0.5, DLTraining: 0.5}
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 10 * des.Millisecond
	}
	if c.JobScale <= 0 {
		c.JobScale = 1
	}
	if c.InterferenceUtil <= 0 {
		c.InterferenceUtil = 0.6
	}
	return c
}

// JobResult records one executed job.
type JobResult struct {
	ID           string
	Kind         JobKind
	Nodes        int
	Submit       des.Time
	Start        des.Time
	End          des.Time
	BytesRead    int64
	BytesWritten int64
}

// Result aggregates a facility run.
type Result struct {
	Jobs  []JobResult
	Rates []monitor.Rates
	// ReadFraction is bytes read / total bytes at the OSTs.
	ReadFraction float64
	// Interferences are job pairs that overlapped under high OST load.
	Interferences []monitor.Interference
	MDSOps        uint64
	Makespan      des.Time
	Utilization   float64 // scheduler node-pool utilization
}

// Run executes the facility simulation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	e := des.NewEngine(cfg.Seed)
	fs := pfs.New(e, cfg.Cluster)
	rng := e.RNG()

	// 1. Generate the job stream.
	kinds := make([]JobKind, 0, int(numKinds))
	weights := make([]float64, 0, int(numKinds))
	var totalW float64
	for k := JobKind(0); k < numKinds; k++ {
		if w := cfg.Mix[k]; w > 0 {
			kinds = append(kinds, k)
			weights = append(weights, w)
			totalW += w
		}
	}
	pick := func() JobKind {
		u := rng.Stream("mix").Float64() * totalW
		for i, w := range weights {
			if u < w {
				return kinds[i]
			}
			u -= w
		}
		return kinds[len(kinds)-1]
	}

	type plan struct {
		job  sched.Job
		kind JobKind
	}
	var plans []plan
	var t des.Time
	for i := 0; i < cfg.Jobs; i++ {
		t += rng.Exponential("arrival", cfg.MeanInterarrival)
		kind := pick()
		nodes := 1 + rng.Stream("nodes").Intn(cfg.Nodes/2)
		// Walltime estimate: generous bound; actual runtime emerges from
		// the I/O simulation, so for the scheduler we use a fixed slot.
		wall := 2 * des.Second
		plans = append(plans, plan{
			job: sched.Job{
				ID: fmt.Sprintf("job%03d", i), Submit: t, Nodes: nodes,
				Walltime: wall, Runtime: wall,
			},
			kind: kind,
		})
	}

	// 2. Let the workload manager place the jobs.
	jobs := make([]sched.Job, len(plans))
	for i, p := range plans {
		jobs[i] = p.job
	}
	log := sched.Simulate(jobs, cfg.Nodes, sched.EASYBackfill)
	startOf := map[string]des.Time{}
	for _, r := range log {
		startOf[r.ID] = r.Start
	}

	// 3. Execute each job's I/O against the shared file system at its
	// scheduled start time.
	res := &Result{}
	results := make([]JobResult, len(plans))
	for i, p := range plans {
		i, p := i, p
		start := startOf[p.job.ID]
		env := posixio.NewEnv(storage.Direct(fs.NewClient("fac-"+p.job.ID)), i, nil)
		e.SpawnAt(start, p.job.ID, func(proc *des.Proc) {
			jr := JobResult{
				ID: p.job.ID, Kind: p.kind, Nodes: p.job.Nodes,
				Submit: p.job.Submit, Start: proc.Now(),
			}
			runJobBody(proc, env, p.kind, p.job.ID, cfg.JobScale, &jr)
			jr.End = proc.Now()
			results[i] = jr
		})
	}

	// 4. Monitor throughout.
	horizon := sched.Makespan(log) + 10*des.Second
	sampler := monitor.NewSampler(e, fs, cfg.SampleInterval, horizon)
	e.Run(des.MaxTime)
	sampler.Stop()
	if e.LiveProcs() != 0 {
		return nil, fmt.Errorf("facility: deadlock with %d live procs", e.LiveProcs())
	}

	// 5. Analyze.
	res.Jobs = results
	sort.Slice(res.Jobs, func(a, b int) bool { return res.Jobs[a].Start < res.Jobs[b].Start })
	res.Rates = sampler.DeriveRates()
	read, written := fs.TotalBytes()
	if read+written > 0 {
		res.ReadFraction = float64(read) / float64(read+written)
	}
	var acts []monitor.JobActivity
	for _, j := range res.Jobs {
		acts = append(acts, monitor.JobActivity{
			JobID: j.ID, Start: j.Start, End: j.End,
			Bytes: j.BytesRead + j.BytesWritten,
		})
	}
	res.Interferences = monitor.Correlate(acts, res.Rates, cfg.InterferenceUtil)
	res.MDSOps = fs.MDSStats().TotalOps
	res.Makespan = e.Now()
	res.Utilization = sched.Utilization(log, cfg.Nodes)
	return res, nil
}

// runJobBody executes one job's I/O pattern. These are deliberately small
// single-client analogs of the full generators in internal/workload — the
// facility cares about the aggregate server-side picture, not per-job
// fidelity.
func runJobBody(p *des.Proc, env *posixio.Env, kind JobKind, id string, scale int64, jr *JobResult) {
	base := "/" + id
	switch kind {
	case Checkpoint:
		fd, err := env.Open(p, base+".ckpt", posixio.OCreate)
		if err != nil {
			return
		}
		for step := int64(0); step < 3; step++ {
			p.Wait(20 * des.Millisecond) // compute
			for off := int64(0); off < 8<<20*scale; off += 2 << 20 {
				n, _ := env.Pwrite(p, fd, off, 2<<20)
				jr.BytesWritten += n
			}
		}
		_ = env.Close(p, fd)
	case DLTraining:
		fd, err := env.Open(p, base+".data", posixio.OCreate)
		if err != nil {
			return
		}
		total := 8 << 20 * scale
		n, _ := env.Pwrite(p, fd, 0, total)
		jr.BytesWritten += n
		rng := p.Engine().RNG().Stream("dl." + id)
		for i := int64(0); i < 3*total/(128<<10); i++ {
			off := rng.Int63n(total - 128<<10)
			r, _ := env.Pread(p, fd, off, 128<<10)
			jr.BytesRead += r
		}
		_ = env.Close(p, fd)
	case Analytics:
		fd, err := env.Open(p, base+".part", posixio.OCreate)
		if err != nil {
			return
		}
		total := 16 << 20 * scale
		n, _ := env.Pwrite(p, fd, 0, total)
		jr.BytesWritten += n
		for off := int64(0); off < total; off += 4 << 20 {
			r, _ := env.Pread(p, fd, off, 4<<20)
			jr.BytesRead += r
		}
		_ = env.Close(p, fd)
		for b := 0; b < 8; b++ {
			sfd, err := env.Open(p, fmt.Sprintf("%s.shuf%d", base, b), posixio.OCreate)
			if err != nil {
				continue
			}
			w, _ := env.Pwrite(p, sfd, 0, 64<<10)
			jr.BytesWritten += w
			_ = env.Close(p, sfd)
		}
	case MetaHeavy:
		_ = env.Mkdir(p, base)
		for i := 0; i < int(16*scale); i++ {
			path := fmt.Sprintf("%s/t%d", base, i)
			fd, err := env.Open(p, path, posixio.OCreate)
			if err != nil {
				continue
			}
			w, _ := env.Pwrite(p, fd, 0, 32<<10)
			jr.BytesWritten += w
			_ = env.Close(p, fd)
			_, _ = env.Stat(p, path)
		}
	}
}

// KindReadFractions summarizes per-kind read fractions from job results.
func KindReadFractions(jobs []JobResult) map[JobKind]float64 {
	type agg struct{ r, w int64 }
	sums := map[JobKind]*agg{}
	for _, j := range jobs {
		a := sums[j.Kind]
		if a == nil {
			a = &agg{}
			sums[j.Kind] = a
		}
		a.r += j.BytesRead
		a.w += j.BytesWritten
	}
	out := map[JobKind]float64{}
	for k, a := range sums {
		if a.r+a.w > 0 {
			out[k] = float64(a.r) / float64(a.r+a.w)
		}
	}
	return out
}
