// Command siod is the simulation-as-a-service daemon: it serves the
// campaign runner over HTTP/JSON with production robustness — a bounded
// job queue with explicit backpressure (429 + Retry-After + a
// dropped-work counter instead of unbounded buffering), per-client
// token-bucket rate limits, a max-in-flight admission gate, per-job
// deadlines with context cancellation, a canonical-spec result cache
// with single-flight deduplication, and graceful drain on SIGTERM.
//
//	siod -addr :9090                      # serve
//	curl -X POST --data-binary @sweep.campaign localhost:9090/v1/campaigns
//	curl localhost:9090/metrics           # accounting, cache hit rate, p95
//	siod -loadtest -target http://localhost:9090 -n 2000 -c 128 -check
//
// The -loadtest mode is the in-repo load generator
// (internal/serve/loadtest): it mixes valid submissions with poison
// specs, oversized grids, slow-loris bodies, and mid-flight disconnects,
// then (-check) waits for quiescence and fails unless the daemon's
// /metrics satisfy enqueued == completed + dropped + cancelled exactly.
//
// On SIGTERM/SIGINT the daemon stops admitting (503 on new submissions),
// lets in-flight jobs finish within -drain, cancels the stragglers, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pioeval/internal/serve"
	"pioeval/internal/serve/loadtest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("siod: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags come from args,
// output goes to the writers, and — in serve mode — the bound address is
// reported on ready (for tests and scripts that picked port 0) and the
// process drains on SIGTERM/SIGINT or when stop is closed.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("siod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	// Serve mode.
	addr := fs.String("addr", "127.0.0.1:9090", "listen address")
	queueCap := fs.Int("queue", 64, "bounded job-queue capacity")
	workers := fs.Int("workers", 0, "queue consumers (0 = GOMAXPROCS)")
	campWorkers := fs.Int("campaign-workers", 1, "worker-pool width inside one campaign run")
	enqTimeout := fs.Duration("enqueue-timeout", 100*time.Millisecond, "max wait for a queue slot before dropping with 429")
	jobTimeout := fs.Duration("job-timeout", 30*time.Second, "per-job deadline")
	drain := fs.Duration("drain", 10*time.Second, "graceful-drain budget on shutdown")
	rate := fs.Float64("rate", 50, "per-client token-bucket refill rate, tokens/s (negative = unlimited)")
	burst := fs.Int("burst", 100, "per-client token-bucket burst")
	maxInflight := fs.Int("max-inflight", 0, "admission gate: max queued+running jobs (0 = 4x queue)")
	maxRuns := fs.Int("max-runs", 512, "admission limit on one spec's expanded run count")
	maxRanks := fs.Int("max-ranks", 64, "admission limit on a spec's largest rank count")
	cacheEntries := fs.Int("cache", 1024, "result-cache entries (negative = disabled)")
	// Load-test mode.
	lt := fs.Bool("loadtest", false, "run as the load-test client instead of serving")
	target := fs.String("target", "http://127.0.0.1:9090", "loadtest: daemon base URL")
	n := fs.Int("n", 200, "loadtest: total submissions")
	conc := fs.Int("c", 32, "loadtest: concurrent clients")
	unique := fs.Int("unique", 16, "loadtest: distinct specs rotated through")
	poisonEvery := fs.Int("poison-every", 0, "loadtest: invalid spec every Nth request")
	oversizeEvery := fs.Int("oversize-every", 0, "loadtest: over-limit spec every Nth request")
	disconnectEvery := fs.Int("disconnect-every", 0, "loadtest: mid-flight disconnect every Nth request")
	slowLorisEvery := fs.Int("slowloris-every", 0, "loadtest: slow-loris connection every Nth request")
	check := fs.Bool("check", false, "loadtest: wait for quiescence and fail on accounting mismatch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *lt {
		return runLoadtest(stdout, loadtest.Config{
			Target:          *target,
			Requests:        *n,
			Concurrency:     *conc,
			UniqueSpecs:     *unique,
			PoisonEvery:     *poisonEvery,
			OversizeEvery:   *oversizeEvery,
			DisconnectEvery: *disconnectEvery,
			SlowLorisEvery:  *slowLorisEvery,
		}, *check)
	}

	srv := serve.New(serve.Config{
		QueueCap:        *queueCap,
		Workers:         *workers,
		CampaignWorkers: *campWorkers,
		EnqueueTimeout:  *enqTimeout,
		JobTimeout:      *jobTimeout,
		Rate:            *rate,
		Burst:           *burst,
		MaxInflight:     *maxInflight,
		MaxRuns:         *maxRuns,
		MaxRanks:        *maxRanks,
		CacheEntries:    *cacheEntries,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.Mux(),
		// Slow-loris defense: a client gets this long to deliver headers
		// and body; stalling connections are shed, not accumulated.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// Responses are synchronous with job execution, so the write
		// window must cover a full job plus queueing slack.
		WriteTimeout: *jobTimeout + *enqTimeout + 10*time.Second,
		IdleTimeout:  60 * time.Second,
	}
	fmt.Fprintf(stdout, "siod listening on %s (queue %d, job timeout %v, drain %v)\n",
		ln.Addr(), *queueCap, *jobTimeout, *drain)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		return err // listener failed before any shutdown request
	case s := <-sig:
		fmt.Fprintf(stdout, "siod: %v: draining (budget %v)\n", s, *drain)
	case <-stop:
		fmt.Fprintf(stdout, "siod: stop requested: draining (budget %v)\n", *drain)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Budget exhausted: stragglers were cancelled, which is a clean
		// (accounted) outcome, not a failure.
		fmt.Fprintf(stdout, "siod: drain budget exhausted, cancelled stragglers\n")
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		httpSrv.Close()
	}
	<-errCh // Serve has returned
	fmt.Fprintf(stdout, "siod: drained, exiting\n")
	return nil
}

func runLoadtest(stdout io.Writer, cfg loadtest.Config, check bool) error {
	res, err := loadtest.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Summary())
	if !check {
		return nil
	}
	snap, err := loadtest.WaitIdle(cfg.Target, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "metrics after quiescence: enqueued=%d completed=%d dropped=%d cancelled=%d cache_hit_rate=%.2f singleflight_shared=%d p95_job_ms=%.1f\n",
		snap.Enqueued, snap.Completed, snap.Dropped, snap.Cancelled,
		snap.CacheHitRate, snap.SingleflightShared, snap.P95JobLatencyMs)
	if err := loadtest.CheckAccounting(snap); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "accounting check passed: enqueued == completed + dropped + cancelled")
	return nil
}
