package storage

import (
	"errors"
	"fmt"
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

func newCluster(seed int64) (*des.Engine, *pfs.FS) {
	e := des.NewEngine(seed)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return e, pfs.New(e, cfg)
}

// TestDirectEquivalence proves the DirectPFS adapter is a zero-cost seam:
// the same op sequence through the raw client and through the adapter
// produces identical simulated times and byte counters.
func TestDirectEquivalence(t *testing.T) {
	type outcome struct {
		end         des.Time
		read, wrote int64
	}
	run := func(throughSeam bool) outcome {
		e, fs := newCluster(7)
		c := fs.NewClient("cn0")
		e.Spawn("app", func(p *des.Proc) {
			if throughSeam {
				d := Direct(c)
				h, err := d.Create(p, "/f", 2, 1<<20)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				for off := int64(0); off < 8<<20; off += 1 << 20 {
					_ = h.Write(p, off, 1<<20)
				}
				_ = h.Fsync(p)
				_ = h.Read(p, 0, 4<<20)
				_ = h.Close(p)
				_, _ = d.Stat(p, "/f")
				_ = d.Mkdir(p, "/d")
				_, _ = d.Readdir(p, "/")
			} else {
				h, err := c.Create(p, "/f", 2, 1<<20)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				for off := int64(0); off < 8<<20; off += 1 << 20 {
					_ = h.Write(p, off, 1<<20)
				}
				_ = h.Fsync(p)
				_ = h.Read(p, 0, 4<<20)
				_ = h.Close(p)
				_, _ = c.Stat(p, "/f")
				_ = c.Mkdir(p, "/d")
				_, _ = c.Readdir(p, "/")
			}
		})
		e.Run(des.MaxTime)
		r, w := fs.TotalBytes()
		return outcome{end: e.Now(), read: r, wrote: w}
	}
	raw, seam := run(false), run(true)
	if raw != seam {
		t.Fatalf("direct seam diverged: raw %+v, seam %+v", raw, seam)
	}
}

// TestDirectErrorsStayTyped checks that the adapter preserves error
// identity — errors.Is against the re-exported sentinels must keep
// working through the seam.
func TestDirectErrorsStayTyped(t *testing.T) {
	e, fs := newCluster(1)
	d := Direct(fs.NewClient("cn0"))
	e.Spawn("app", func(p *des.Proc) {
		if _, err := d.Open(p, "/missing"); !errors.Is(err, ErrNotExist) {
			t.Errorf("open missing = %v, want ErrNotExist", err)
		}
		if _, err := d.Open(p, "/missing"); !errors.Is(err, pfs.ErrNotExist) {
			t.Errorf("alias identity lost: %v", err)
		}
		if _, err := d.Create(p, "/f", 0, 0); err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := d.Create(p, "/f", 0, 0); !errors.Is(err, ErrExist) {
			t.Errorf("dup create = %v, want ErrExist", err)
		}
		// Failed Create/Open must return a nil interface, not a non-nil
		// interface wrapping a nil pointer.
		if h, err := d.Open(p, "/missing"); err != nil && h != nil {
			t.Errorf("failed open returned non-nil handle %#v", h)
		}
	})
	e.Run(des.MaxTime)
}

// TestNodeLocalNamespace exercises the private scratch namespace: POSIX
// error semantics without any MDS traffic.
func TestNodeLocalNamespace(t *testing.T) {
	e, fs := newCluster(1)
	nl := NewNodeLocal(e, "cn0", blockdev.DefaultNVMe(), 8)
	e.Spawn("app", func(p *des.Proc) {
		if err := nl.Mkdir(p, "/d"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		h, err := nl.Create(p, "/d/f", 2, 1<<20)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := nl.Create(p, "/d/f", 0, 0); !errors.Is(err, ErrExist) {
			t.Errorf("dup create = %v", err)
		}
		if err := h.Write(p, 0, 4<<20); err != nil {
			t.Fatalf("write: %v", err)
		}
		fi, err := nl.Stat(p, "/d/f")
		if err != nil || fi.Size != 4<<20 {
			t.Fatalf("stat = %+v, %v", fi, err)
		}
		if fi.Layout.StripeCount != 2 || fi.Layout.StripeSize != 1<<20 {
			t.Errorf("stripe hints not recorded: %+v", fi.Layout)
		}
		if err := h.Read(p, 0, 1<<20); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := h.Close(p); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := h.Write(p, 0, 1); !errors.Is(err, ErrClosedHandle) {
			t.Errorf("write after close = %v", err)
		}
		if _, err := nl.Open(p, "/d"); !errors.Is(err, ErrIsDir) {
			t.Errorf("open dir = %v", err)
		}
		if err := nl.Rmdir(p, "/d"); !errors.Is(err, ErrNotEmpty) {
			t.Errorf("rmdir non-empty = %v", err)
		}
		names, err := nl.Readdir(p, "/d")
		if err != nil || len(names) != 1 || names[0] != "f" {
			t.Fatalf("readdir = %v, %v", names, err)
		}
		if err := nl.Unlink(p, "/d/f"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if err := nl.Rmdir(p, "/d"); err != nil {
			t.Fatalf("rmdir: %v", err)
		}
		if _, err := nl.Open(p, "/d/f"); !errors.Is(err, ErrNotExist) {
			t.Errorf("open unlinked = %v", err)
		}
		if _, err := nl.Create(p, "/nodir/f", 0, 0); !errors.Is(err, ErrNotExist) {
			t.Errorf("create under missing dir = %v", err)
		}
	})
	e.Run(des.MaxTime)
	st := nl.Stats()
	if st.BytesWritten != 4<<20 || st.BytesRead != 1<<20 {
		t.Errorf("stats = %+v", st)
	}
	// The scratch tier never talks to the MDS.
	if md := fs.MDSStats(); md.TotalOps != 0 {
		t.Errorf("node-local tier issued %d MDS ops", md.TotalOps)
	}
}

// TestNodeLocalMetadataIsFree: namespace operations on the scratch tier
// cost zero simulated time (no MDS round-trips).
func TestNodeLocalMetadataIsFree(t *testing.T) {
	e, _ := newCluster(1)
	nl := NewNodeLocal(e, "cn0", blockdev.DefaultNVMe(), 8)
	e.Spawn("app", func(p *des.Proc) {
		start := p.Now()
		_ = nl.Mkdir(p, "/d")
		h, _ := nl.Create(p, "/d/f", 0, 0)
		_, _ = nl.Stat(p, "/d/f")
		_, _ = nl.Readdir(p, "/d")
		_ = h.Fsync(p)
		_ = h.Close(p)
		if p.Now() != start {
			t.Errorf("metadata ops cost %v, want 0", p.Now()-start)
		}
	})
	e.Run(des.MaxTime)
}

func TestProviderRejectsUnknownTier(t *testing.T) {
	e, fs := newCluster(1)
	if _, err := NewProvider(e, fs, "warp", ProviderConfig{}); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

func TestProviderEmptyTierIsDirect(t *testing.T) {
	e, fs := newCluster(1)
	pr, err := NewProvider(e, fs, "", ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Tier() != TierDirect {
		t.Fatalf("tier = %q", pr.Tier())
	}
	if _, ok := pr.Target("cn0").(*DirectPFS); !ok {
		t.Fatalf("target is %T, want *DirectPFS", pr.Target("cn0"))
	}
	if pr.NeedsFinalize() {
		t.Error("direct tier should not need finalize")
	}
}

// TestProviderSharesBufferPerIONode: on a flat network every client routes
// through one shared buffer; finalize is required once a buffer exists.
func TestProviderSharesBufferPerIONode(t *testing.T) {
	e, fs := newCluster(1)
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a := pr.Target("cn0").(*TieredBB)
	b := pr.Target("cn1").(*TieredBB)
	if a.Buffer() != b.Buffer() {
		t.Error("flat network should share one buffer")
	}
	if len(pr.Buffers()) != 1 {
		t.Errorf("buffers = %d, want 1", len(pr.Buffers()))
	}
	if !pr.NeedsFinalize() {
		t.Error("bb tier with buffers must need finalize")
	}
}

// TestTieredWriteReadDrain drives the tiered target end to end: staged
// writes, fsync-as-drain, staged reads, and PFS-visible bytes afterwards.
func TestTieredWriteReadDrain(t *testing.T) {
	e, fs := newCluster(3)
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := pr.Target("cn0")
	e.Spawn("app", func(p *des.Proc) {
		h, err := tgt.Create(p, "/ckpt", 0, 0)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		for off := int64(0); off < 8<<20; off += 1 << 20 {
			if err := h.Write(p, off, 1<<20); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		if err := h.Fsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if err := h.Read(p, 0, 1<<20); err != nil {
			t.Errorf("read: %v", err)
		}
		if err := h.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	e.Run(des.MaxTime)
	st := pr.Buffers()[0].Stats()
	if st.Absorbed != 8<<20 || st.Drained != 8<<20 || st.Used != 0 {
		t.Fatalf("buffer stats = %+v", st)
	}
	if _, w := fs.TotalBytes(); w != 8<<20 {
		t.Fatalf("PFS bytes = %d, want 8MB", w)
	}
	if st.DrainErrors != 0 || st.LastDrainError != nil {
		t.Errorf("unexpected drain errors: %+v", st)
	}
}

// TestProviderFinalizeStopsWorkers: after Finalize the drain workers have
// exited, so the engine reports no live processes.
func TestProviderFinalizeStopsWorkers(t *testing.T) {
	e, fs := newCluster(3)
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := pr.Target("cn0")
	e.Spawn("app", func(p *des.Proc) {
		h, _ := tgt.Create(p, "/f", 0, 0)
		_ = h.Write(p, 0, 1<<20)
		_ = h.Close(p)
		if err := pr.Finalize(p); err != nil {
			t.Errorf("finalize: %v", err)
		}
	})
	e.Run(des.MaxTime)
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("%d live procs after finalize", n)
	}
}

// TestNodeLocalTargetsArePrivate: each node gets its own namespace; the
// same path on two targets is two files.
func TestNodeLocalTargetsArePrivate(t *testing.T) {
	e, fs := newCluster(1)
	pr, err := NewProvider(e, fs, TierNodeLocal, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t0, t1 := pr.Target("cn0"), pr.Target("cn1")
	e.Spawn("app", func(p *des.Proc) {
		if _, err := t0.Create(p, "/f", 0, 0); err != nil {
			t.Errorf("cn0 create: %v", err)
		}
		if _, err := t1.Create(p, "/f", 0, 0); err != nil {
			t.Errorf("cn1 create (private namespace): %v", err)
		}
		if _, err := t1.Open(p, "/g"); !errors.Is(err, ErrNotExist) {
			t.Errorf("cross-node visibility: %v", err)
		}
	})
	e.Run(des.MaxTime)
	if got := len(pr.Locals()); got != 2 {
		t.Fatalf("locals = %d, want 2", got)
	}
	for i, nl := range pr.Locals() {
		if st := nl.Stats(); st.Files != 1 {
			t.Errorf("node %d files = %d, want 1", i, st.Files)
		}
	}
}

// TestProviderDeterministicBufferNames: buffer names derive from I/O-node
// identity, not creation timing.
func TestProviderDeterministicBufferNames(t *testing.T) {
	e := des.NewEngine(1)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 2
	fs := pfs.New(e, cfg)
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		pr.Target(fmt.Sprintf("cn%d", i))
	}
	if got := len(pr.Buffers()); got != 2 {
		t.Fatalf("buffers = %d, want one per I/O node", got)
	}
	seen := map[string]bool{}
	for _, bb := range pr.Buffers() {
		seen[bb.Node()] = true
	}
	if len(seen) != 2 {
		t.Errorf("buffer names collide: %v", seen)
	}
}
