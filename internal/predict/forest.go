package predict

import (
	"math"
	"math/rand"
	"sort"
)

// TreeConfig configures CART regression trees.
type TreeConfig struct {
	MaxDepth    int
	MinLeafSize int
	// FeatureSubset, when > 0, limits each split to a random subset of
	// features (used by random forests).
	FeatureSubset int
}

// DefaultTreeConfig returns depth-12 trees with 2-sample leaves.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 12, MinLeafSize: 2}
}

// treeNode is one node of a regression tree.
type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	value   float64 // leaf prediction
	leaf    bool
}

// Tree is a CART regression tree.
type Tree struct {
	cfg  TreeConfig
	root *treeNode
}

// TrainTree fits a CART regression tree on (X, y).
func TrainTree(X [][]float64, y []float64, cfg TreeConfig) (*Tree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrBadInput
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeafSize <= 0 {
		cfg.MinLeafSize = 1
	}
	t := &Tree{cfg: cfg}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0, nil)
	return t, nil
}

func meanAt(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseAt(y []float64, idx []int) float64 {
	m := meanAt(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

// build recursively grows the tree. rng selects feature subsets (nil = all
// features, for plain CART).
func (t *Tree) build(X [][]float64, y []float64, idx []int, depth int, rng *rand.Rand) *treeNode {
	if depth >= t.cfg.MaxDepth || len(idx) <= t.cfg.MinLeafSize {
		return &treeNode{leaf: true, value: meanAt(y, idx)}
	}
	nf := len(X[0])
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if rng != nil && t.cfg.FeatureSubset > 0 && t.cfg.FeatureSubset < nf {
		rng.Shuffle(nf, func(a, b int) { features[a], features[b] = features[b], features[a] })
		features = features[:t.cfg.FeatureSubset]
	}

	baseSSE := sseAt(y, idx)
	if baseSSE == 0 {
		return &treeNode{leaf: true, value: meanAt(y, idx)}
	}
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	sortedIdx := make([]int, len(idx))
	for _, f := range features {
		copy(sortedIdx, idx)
		sort.Slice(sortedIdx, func(a, b int) bool { return X[sortedIdx[a]][f] < X[sortedIdx[b]][f] })
		// Incremental SSE scan over split positions.
		var lSum, lSq float64
		var rSum, rSq float64
		for _, i := range sortedIdx {
			rSum += y[i]
			rSq += y[i] * y[i]
		}
		nL := 0
		nR := len(sortedIdx)
		for k := 0; k < len(sortedIdx)-1; k++ {
			i := sortedIdx[k]
			lSum += y[i]
			lSq += y[i] * y[i]
			rSum -= y[i]
			rSq -= y[i] * y[i]
			nL++
			nR--
			if X[sortedIdx[k]][f] == X[sortedIdx[k+1]][f] {
				continue // can't split between equal values
			}
			if nL < t.cfg.MinLeafSize || nR < t.cfg.MinLeafSize {
				continue
			}
			sse := (lSq - lSum*lSum/float64(nL)) + (rSq - rSum*rSum/float64(nR))
			if gain := baseSSE - sse; gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (X[sortedIdx[k]][f] + X[sortedIdx[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: meanAt(y, idx)}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &treeNode{leaf: true, value: meanAt(y, idx)}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    t.build(X, y, li, depth+1, rng),
		right:   t.build(X, y, ri, depth+1, rng),
	}
}

// Predict evaluates the tree at x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree height (for tests).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// ForestConfig configures a random forest.
type ForestConfig struct {
	Trees int
	Tree  TreeConfig
	Seed  int64
}

// DefaultForestConfig returns a 50-tree forest with sqrt-feature splits.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 50, Tree: DefaultTreeConfig(), Seed: 1}
}

// Forest is a bagged random-forest regressor.
type Forest struct {
	trees []*Tree
}

// TrainForest fits a random forest with bootstrap sampling and per-split
// random feature subsets.
func TrainForest(X [][]float64, y []float64, cfg ForestConfig) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrBadInput
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	tcfg := cfg.Tree
	if tcfg.MaxDepth <= 0 {
		tcfg = DefaultTreeConfig()
	}
	if tcfg.FeatureSubset <= 0 {
		tcfg.FeatureSubset = int(math.Ceil(math.Sqrt(float64(len(X[0])))))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{}
	n := len(X)
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tr := &Tree{cfg: tcfg}
		tr.root = tr.build(X, y, idx, 0, rng)
		f.trees = append(f.trees, tr)
	}
	return f, nil
}

// Predict averages the trees' predictions at x.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// KNN is a k-nearest-neighbor regression baseline.
type KNN struct {
	k int
	X [][]float64
	y []float64
}

// NewKNN builds a kNN regressor over the training set.
func NewKNN(k int, X [][]float64, y []float64) (*KNN, error) {
	if len(X) == 0 || len(X) != len(y) || k <= 0 {
		return nil, ErrBadInput
	}
	return &KNN{k: k, X: X, y: y}, nil
}

// Predict averages the k nearest neighbors' targets (Euclidean distance).
func (m *KNN) Predict(x []float64) float64 {
	type cand struct {
		d float64
		y float64
	}
	cands := make([]cand, len(m.X))
	for i, row := range m.X {
		var d float64
		for j := range row {
			diff := row[j] - x[j]
			d += diff * diff
		}
		cands[i] = cand{d, m.y[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	k := m.k
	if k > len(cands) {
		k = len(cands)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += cands[i].y
	}
	return s / float64(k)
}
