package des

// procFIFO is a ring-buffered FIFO of blocked processes, shared by queue
// getters and resource wait lists. Unlike a head-sliced `[]*Proc`, popped
// slots are cleared, so finished processes never linger reachable in the
// backing array, and the ring is reused without further allocation.
type procFIFO struct {
	buf  []*Proc
	head int
	n    int
}

func (f *procFIFO) push(p *Proc) {
	if f.n == len(f.buf) {
		nb := make([]*Proc, max(8, 2*len(f.buf)))
		for i := 0; i < f.n; i++ {
			nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
		}
		f.buf = nb
		f.head = 0
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = p
	f.n++
}

// pop removes and returns the longest-waiting process, or nil when empty.
func (f *procFIFO) pop() *Proc {
	if f.n == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return p
}

func (f *procFIFO) len() int { return f.n }

// Queue is an unbounded FIFO message store for inter-process communication
// in simulated time: Put never blocks, Get blocks until an item is present.
// It is the building block for MPI point-to-point channels and server
// request queues. Items live in a power-of-two ring buffer, so the
// steady-state Put/Get cycle moves typed values without boxing and without
// allocation, and popped slots are zeroed so the queue never retains
// references to delivered messages.
type Queue[T any] struct {
	eng  *Engine
	name string

	buf  []T // power-of-two ring
	head int
	n    int

	getters procFIFO

	puts    uint64
	peakLen int
}

// NewQueue creates an empty queue bound to engine e.
func NewQueue[T any](e *Engine, name string) *Queue[T] {
	return &Queue[T]{eng: e, name: name}
}

// Put appends an item and wakes one waiting getter, if any.
// Safe to call from process or event context.
func (q *Queue[T]) Put(v T) {
	if q.n == len(q.buf) {
		nb := make([]T, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
	q.puts++
	if q.n > q.peakLen {
		q.peakLen = q.n
	}
	if g := q.getters.pop(); g != nil {
		g.wakeNow()
	}
}

// Get removes and returns the oldest item, blocking until one is available.
func (q *Queue[T]) Get(p *Proc) T {
	for q.n == 0 {
		q.getters.push(p)
		p.block()
	}
	return q.take()
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.take(), true
}

func (q *Queue[T]) take() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // do not retain delivered items
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// PeakLen reports the maximum observed queue length.
func (q *Queue[T]) PeakLen() int { return q.peakLen }

// Puts reports the total number of items ever enqueued.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }
