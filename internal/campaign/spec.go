package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"pioeval/internal/cli"
)

// ParseSpec parses the campaign spec text format, a block syntax in the
// style of the iolang workload DSL: a `campaign "name" { ... }` block
// whose lines each set one scalar (`seed`, `reps`, `steps`, `workload`)
// or one axis as a comma-separated value list. Sizes accept the usual
// B/KB/MB/GB suffixes (via internal/cli), and fault specs are quoted
// strings in the internal/faults scripted-campaign syntax:
//
//	campaign "stripe-sweep" {
//	    workload ior
//	    seed 42
//	    reps 3
//	    ranks 2, 4
//	    device hdd, ssd
//	    stripe-count 1, 4
//	    transfer-size 256KB, 1MB
//	    pattern sequential, random
//	    collective false, true
//	    faults "", "ostcrash:1@5ms; ostrecover:1@40ms"
//	}
//
// Lines may carry trailing `#` comments. Unset keys take the Spec
// defaults.
func ParseSpec(src string) (Spec, error) {
	var s Spec
	lines := strings.Split(src, "\n")
	inBlock := false
	closed := false
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		errf := func(format string, args ...interface{}) (Spec, error) {
			return Spec{}, fmt.Errorf("campaign spec:%d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		if !inBlock {
			rest, ok := strings.CutPrefix(line, "campaign")
			if !ok {
				return errf("expected `campaign \"name\" {`, got %q", line)
			}
			rest = strings.TrimSpace(rest)
			rest, ok = strings.CutSuffix(rest, "{")
			if !ok {
				return errf("campaign header must end with `{`")
			}
			name, err := unquote(strings.TrimSpace(rest))
			if err != nil {
				return errf("bad campaign name: %v", err)
			}
			s.Name = name
			inBlock = true
			continue
		}
		if line == "}" {
			closed = true
			inBlock = false
			continue
		}
		if closed {
			return errf("trailing input after campaign block")
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return errf("key %q needs a value", key)
		}
		if err := s.set(key, splitList(rest)); err != nil {
			return errf("%v", err)
		}
	}
	if !closed {
		return Spec{}, fmt.Errorf("campaign spec: missing `campaign \"name\" { ... }` block")
	}
	return s, nil
}

// set assigns one parsed key's values onto the spec.
func (s *Spec) set(key string, vals []string) error {
	scalar := func() (string, error) {
		if len(vals) != 1 {
			return "", fmt.Errorf("key %q takes exactly one value", key)
		}
		return vals[0], nil
	}
	var err error
	switch key {
	case "workload":
		s.Workload, err = scalar()
	case "seed":
		v, serr := scalar()
		if serr != nil {
			return serr
		}
		s.Seed, err = strconv.ParseInt(v, 10, 64)
	case "reps":
		v, serr := scalar()
		if serr != nil {
			return serr
		}
		s.Reps, err = strconv.Atoi(v)
	case "steps":
		v, serr := scalar()
		if serr != nil {
			return serr
		}
		s.Steps, err = strconv.Atoi(v)
	case "ranks":
		s.Ranks, err = parseInts(vals)
	case "device":
		s.Devices = vals
	case "stripe-count":
		s.StripeCounts, err = parseInts(vals)
	case "stripe-size":
		s.StripeSizes, err = parseSizes(vals)
	case "block-size":
		s.BlockSizes, err = parseSizes(vals)
	case "transfer-size":
		s.TransferSizes, err = parseSizes(vals)
	case "pattern":
		s.Patterns = vals
	case "collective":
		s.Collective, err = parseBools(vals)
	case "burstbuffer":
		s.BurstBuffer, err = parseBools(vals)
	case "tier":
		s.Tiers = vals
	case "compress":
		s.Compress = vals
	case "faults":
		for _, v := range vals {
			f, qerr := unquote(v)
			if qerr != nil {
				return fmt.Errorf("faults values must be quoted strings: %v", qerr)
			}
			s.Faults = append(s.Faults, f)
		}
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return err
}

func parseInts(vals []string) ([]int, error) {
	out := make([]int, len(vals))
	for i, v := range vals {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", v)
		}
		out[i] = n
	}
	return out, nil
}

func parseSizes(vals []string) ([]int64, error) {
	out := make([]int64, len(vals))
	for i, v := range vals {
		n, err := cli.ParseSize(v)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func parseBools(vals []string) ([]bool, error) {
	out := make([]bool, len(vals))
	for i, v := range vals {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, fmt.Errorf("bad boolean %q", v)
		}
		out[i] = b
	}
	return out, nil
}

// splitList splits a comma-separated value list, honoring double quotes
// (fault specs contain commas-free but space-laden terms; quoting keeps
// the grammar uniform).
func splitList(s string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	for _, r := range s {
		switch {
		case r == '"':
			inQ = !inQ
			cur.WriteRune(r)
		case r == ',' && !inQ:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	out = append(out, strings.TrimSpace(cur.String()))
	return out
}

func stripComment(line string) string {
	inQ := false
	for i, r := range line {
		switch {
		case r == '"':
			inQ = !inQ
		case r == '#' && !inQ:
			return line[:i]
		}
	}
	return line
}

func unquote(s string) (string, error) {
	if len(s) < 2 || !strings.HasPrefix(s, `"`) || !strings.HasSuffix(s, `"`) {
		return "", fmt.Errorf("expected a double-quoted string, got %q", s)
	}
	return s[1 : len(s)-1], nil
}
