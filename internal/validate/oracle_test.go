package validate

import (
	"math"
	"strings"
	"testing"
)

// TestOracleSuite runs every analytic oracle and requires the simulator to
// land inside each declared tolerance band. A failure here means the DES
// has drifted from its own model parameters.
func TestOracleSuite(t *testing.T) {
	for _, r := range RunOracles(42) {
		if !r.Pass() {
			t.Errorf("%s\n  detail: %s", r, r.Detail)
			continue
		}
		t.Logf("%s", r)
	}
}

// TestOracleDeterministic pins that the oracle suite is seed-deterministic
// (the fault-free scenarios use no randomness, so any seed gives identical
// numbers).
func TestOracleDeterministic(t *testing.T) {
	a, b := RunOracles(1), RunOracles(99)
	if len(a) != len(b) {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Simulated != b[i].Simulated || a[i].Expected != b[i].Expected {
			t.Errorf("%s: seed-dependent result: %.6g/%.6g vs %.6g/%.6g",
				a[i].Name, a[i].Simulated, a[i].Expected, b[i].Simulated, b[i].Expected)
		}
	}
}

// TestOracleCollectiveExact pins the zero-tolerance oracle: collective
// aggregation must conserve volume to the byte.
func TestOracleCollectiveExact(t *testing.T) {
	r := OracleCollectiveVolume(7)
	if r.Tol != 0 {
		t.Fatalf("collective oracle tolerance = %v, want exact", r.Tol)
	}
	if r.Simulated != r.Expected {
		t.Fatalf("collective volume %g != requested %g", r.Simulated, r.Expected)
	}
}

// TestOracleResultVerdicts covers the result arithmetic edge cases.
func TestOracleResultVerdicts(t *testing.T) {
	cases := []struct {
		name string
		r    OracleResult
		pass bool
		err  float64
	}{
		{"within", OracleResult{Expected: 100, Simulated: 104, Tol: 0.05}, true, 0.04},
		{"outside", OracleResult{Expected: 100, Simulated: 110, Tol: 0.05}, false, 0.10},
		{"exact-zero-tol", OracleResult{Expected: 50, Simulated: 50, Tol: 0}, true, 0},
		{"both-zero", OracleResult{Expected: 0, Simulated: 0, Tol: 0}, true, 0},
		{"zero-expected", OracleResult{Expected: 0, Simulated: 1, Tol: 0.5}, false, math.Inf(1)},
	}
	for _, c := range cases {
		if got := c.r.Pass(); got != c.pass {
			t.Errorf("%s: Pass() = %v, want %v", c.name, got, c.pass)
		}
		if got := c.r.RelError(); math.Abs(got-c.err) > 1e-12 && !(math.IsInf(got, 1) && math.IsInf(c.err, 1)) {
			t.Errorf("%s: RelError() = %v, want %v", c.name, got, c.err)
		}
	}
	if s := (OracleResult{Name: "x", Expected: 1, Simulated: 2, Tol: 0.1}).String(); !strings.HasPrefix(s, "FAIL") {
		t.Errorf("failing result renders %q, want FAIL prefix", s)
	}
}
