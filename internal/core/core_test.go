package core

import (
	"errors"
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/profile"
	"pioeval/internal/skeleton"
	"pioeval/internal/trace"
)

func ssdConfig() pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return cfg
}

func hddConfig() pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	return cfg
}

const script = `
workload "cycle" {
    ranks 4
    loop 4 {
        compute 5ms
        write "/out" offset=rank*8MB size=2MB chunk=1MB
        write "/log${rank}" offset=iter*64KB size=64KB
    }
}
`

func mustParse(t *testing.T) *iolang.Workload {
	t.Helper()
	w, err := iolang.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSyntheticSource(t *testing.T) {
	src := SyntheticSource{Workload: mustParse(t)}
	if src.Name() != "synthetic" {
		t.Error("name")
	}
	ops, err := src.Ops()
	if err != nil || len(ops) != 4 {
		t.Fatalf("ops = %d ranks, %v", len(ops), err)
	}
	if _, err := (SyntheticSource{}).Ops(); !errors.Is(err, ErrEmptySource) {
		t.Error("nil workload should error")
	}
}

func TestTraceSource(t *testing.T) {
	recs := []trace.Record{
		{Rank: 0, Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Size: 100, Start: 0, End: 10},
		{Rank: 1, Layer: trace.LayerPOSIX, Op: "write", Path: "/f", Offset: 100, Size: 100, Start: 0, End: 10},
	}
	src := TraceSource{Records: recs}
	ops, err := src.Ops()
	if err != nil || len(ops) != 2 {
		t.Fatalf("ops = %v, %v", ops, err)
	}
	if _, err := (TraceSource{}).Ops(); !errors.Is(err, ErrEmptySource) {
		t.Error("empty trace should error")
	}
}

func TestProfileSourceReproducesCounters(t *testing.T) {
	// Build a profile by hand: 10 sequential 4K writes, 5 random 1M reads.
	fc := &profile.FileCounters{Path: "/data", Writes: 10, SeqWrites: 9, Reads: 5}
	fc.WriteHist[2] = 10 // 1K-10K bucket
	fc.ReadHist[4] = 5   // 100K-1M bucket
	src := ProfileSource{Files: []*profile.FileCounters{fc}}
	ops, err := src.Ops()
	if err != nil {
		t.Fatal(err)
	}
	var writes, reads int
	for _, op := range ops[0] {
		switch op.Op {
		case "write":
			writes++
		case "read":
			reads++
		}
	}
	if writes != 10 || reads != 5 {
		t.Fatalf("synthesized %d writes %d reads", writes, reads)
	}
	// Re-profile the synthesized stream: counts must match.
	p2 := profile.New()
	for _, op := range ops[0] {
		p2.Ingest(trace.Record{Rank: 0, Layer: trace.LayerPOSIX, Op: op.Op, Path: op.Path, Offset: op.Offset, Size: op.Size})
	}
	got := p2.PerFile()[0]
	if got.Writes != 10 || got.Reads != 5 {
		t.Fatalf("re-profiled = %d writes %d reads", got.Writes, got.Reads)
	}
	if _, err := (ProfileSource{}).Ops(); !errors.Is(err, ErrEmptySource) {
		t.Error("empty profile should error")
	}
}

func TestProfileSourceSequentialFraction(t *testing.T) {
	mk := func(seq uint64) float64 {
		fc := &profile.FileCounters{Path: "/d", Writes: 20, SeqWrites: seq}
		fc.WriteHist[2] = 20
		src := ProfileSource{Files: []*profile.FileCounters{fc}}
		ops, err := src.Ops()
		if err != nil {
			t.Fatal(err)
		}
		p := profile.New()
		for _, op := range ops[0] {
			p.Ingest(trace.Record{Layer: trace.LayerPOSIX, Op: op.Op, Path: op.Path, Offset: op.Offset, Size: op.Size})
		}
		return p.SequentialFraction()
	}
	seqy, randy := mk(19), mk(2)
	if seqy < 0.9 {
		t.Errorf("sequential synthesis fraction = %.2f", seqy)
	}
	if randy > 0.5 {
		t.Errorf("random synthesis fraction = %.2f", randy)
	}
}

func TestConsumersMoveSameBytes(t *testing.T) {
	src := SyntheticSource{Workload: mustParse(t)}
	ops, _ := src.Ops()
	want := int64(4 * 4 * (2<<20 + 64<<10))

	e1 := des.NewEngine(71)
	r1, err := ReplayConsumer{}.Consume(e1, pfs.New(e1, ssdConfig()), ops)
	if err != nil || r1.BytesWritten != want {
		t.Fatalf("replay consumer = %+v, %v", r1, err)
	}

	var ratio float64
	e2 := des.NewEngine(72)
	sk := SkeletonConsumer{MeanCompressionRatio: &ratio}
	r2, err := sk.Consume(e2, pfs.New(e2, ssdConfig()), ops)
	if err != nil || r2.BytesWritten != want {
		t.Fatalf("skeleton consumer = %+v, %v", r2, err)
	}
	if ratio <= 1 {
		t.Errorf("skeleton compression ratio = %.2f, want > 1 on a loopy workload", ratio)
	}
}

func TestRunCycleConvergesViaFeedback(t *testing.T) {
	res, err := RunCycle(CycleConfig{
		Seed:          73,
		Baseline:      ssdConfig(), // measured on SSD
		Target:        hddConfig(), // predicted for HDD
		Source:        SyntheticSource{Workload: mustParse(t)},
		MaxIterations: 4,
		Tolerance:     0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceRecords == 0 {
		t.Error("phase 1 produced no trace")
	}
	if res.ReadWriteRatio != 0 { // write-only workload
		t.Errorf("rw ratio = %v", res.ReadWriteRatio)
	}
	if res.SkeletonRatio <= 1 {
		t.Errorf("skeleton ratio = %v", res.SkeletonRatio)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations")
	}
	first := res.Iterations[0]
	last := res.Iterations[len(res.Iterations)-1]
	// The baseline-trained model mispredicts the HDD target; feedback
	// must shrink the error.
	if len(res.Iterations) > 1 && last.RelError >= first.RelError {
		t.Errorf("feedback did not reduce error: first %.3f last %.3f", first.RelError, last.RelError)
	}
	if !res.Converged {
		t.Errorf("cycle did not converge: %+v", res.Iterations)
	}
	if res.WriteFit.Slope <= 0 {
		t.Errorf("write fit slope = %v, want positive (latency grows with size)", res.WriteFit.Slope)
	}
}

func TestRunCycleSameClusterConvergesImmediately(t *testing.T) {
	res, err := RunCycle(CycleConfig{
		Seed:      74,
		Baseline:  ssdConfig(),
		Target:    ssdConfig(),
		Source:    SyntheticSource{Workload: mustParse(t)},
		Tolerance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("same-cluster prediction should converge: %+v", res.Iterations)
	}
	if res.Iterations[0].RelError > 0.5 {
		t.Errorf("first-shot error = %.3f", res.Iterations[0].RelError)
	}
}

func TestRunCyclePropagatesSourceError(t *testing.T) {
	_, err := RunCycle(CycleConfig{Source: TraceSource{}})
	if !errors.Is(err, ErrEmptySource) {
		t.Errorf("err = %v", err)
	}
}

func TestOpsToTokensRoundTrip(t *testing.T) {
	src := SyntheticSource{Workload: mustParse(t)}
	ops, _ := src.Ops()
	toks := opsToTokens(ops[0])
	back := skeletonDetok(toks)
	if len(back) != len(ops[0]) {
		t.Fatalf("lengths differ: %d vs %d", len(back), len(ops[0]))
	}
	for i := range back {
		if back[i].Op != ops[0][i].Op || back[i].Offset != ops[0][i].Offset || back[i].Size != ops[0][i].Size {
			t.Fatalf("op %d: %+v vs %+v", i, back[i], ops[0][i])
		}
	}
}

// skeletonDetok is a test shim over skeleton.Detokenize.
func skeletonDetok(toks []skeleton.Token) []skeleton.ConcreteOp {
	return skeleton.Detokenize(toks)
}
