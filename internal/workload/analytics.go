package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/posixio"
)

// AnalyticsConfig models a Spark-like scan/shuffle/reduce stage pipeline:
// a map phase of large sequential partition scans, a shuffle phase of many
// small intermediate files (the metadata- and small-I/O-heavy part that
// distinguishes analytics from simulation I/O), and a reduce phase reading
// them back.
type AnalyticsConfig struct {
	Workers       int
	PartitionSize int64 // input partition per worker
	ScanChunk     int64
	ShuffleFiles  int   // intermediate files per worker pair bucket
	ShuffleSize   int64 // bytes per intermediate file
	Path          string
}

func (c AnalyticsConfig) withDefaults() AnalyticsConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.PartitionSize <= 0 {
		c.PartitionSize = 64 << 20
	}
	if c.ScanChunk <= 0 {
		c.ScanChunk = 8 << 20
	}
	if c.ShuffleFiles <= 0 {
		c.ShuffleFiles = 16
	}
	if c.ShuffleSize <= 0 {
		c.ShuffleSize = 64 << 10
	}
	if c.Path == "" {
		c.Path = "/analytics"
	}
	return c
}

// AnalyticsReport summarizes the pipeline.
type AnalyticsReport struct {
	Config      AnalyticsConfig
	ScanTime    des.Time
	ShuffleTime des.Time
	ReduceTime  des.Time
	BytesRead   int64
	BytesWrit   int64
	MetaOps     int
	Makespan    des.Time
}

// RunAnalytics executes the scan/shuffle/reduce pipeline.
func RunAnalytics(h *Harness, cfg AnalyticsConfig) AnalyticsReport {
	cfg = cfg.withDefaults()
	rep := AnalyticsReport{Config: cfg}
	var scanEnd, shufEnd des.Time

	end := h.Run(func(r *mpi.Rank, env *posixio.Env) {
		p := r.Proc()
		if r.ID() == 0 {
			_ = env.Mkdir(p, cfg.Path)
			_ = env.Mkdir(p, cfg.Path+"/input")
			_ = env.Mkdir(p, cfg.Path+"/shuffle")
			rep.MetaOps += 3
		}
		r.Barrier()

		// Stage the input partition (not timed as scan).
		in := fmt.Sprintf("%s/input/part%d", cfg.Path, r.ID())
		fd, _ := env.Open(p, in, posixio.OCreate)
		_, _ = env.Pwrite(p, fd, 0, cfg.PartitionSize)
		_ = env.Close(p, fd)
		r.Barrier()

		// Map phase: sequential scan.
		t0 := r.Now()
		fd, _ = env.Open(p, in, 0)
		for off := int64(0); off < cfg.PartitionSize; off += cfg.ScanChunk {
			n := cfg.ScanChunk
			if off+n > cfg.PartitionSize {
				n = cfg.PartitionSize - off
			}
			_, _ = env.Pread(p, fd, off, n)
			rep.BytesRead += n
		}
		_ = env.Close(p, fd)
		r.Barrier()
		if r.ID() == 0 {
			scanEnd = r.Now() - t0
		}

		// Shuffle phase: many small intermediate files.
		t1 := r.Now()
		for b := 0; b < cfg.ShuffleFiles; b++ {
			path := fmt.Sprintf("%s/shuffle/w%d.b%d", cfg.Path, r.ID(), b)
			sfd, _ := env.Open(p, path, posixio.OCreate)
			_, _ = env.Pwrite(p, sfd, 0, cfg.ShuffleSize)
			_ = env.Close(p, sfd)
			rep.BytesWrit += cfg.ShuffleSize
			rep.MetaOps += 3 // open/create + close + later unlink
		}
		r.Barrier()
		if r.ID() == 0 {
			shufEnd = r.Now() - t1
		}

		// Reduce phase: each worker reads its bucket from every worker.
		t2 := r.Now()
		myBucket := r.ID() % cfg.ShuffleFiles
		for w := 0; w < r.Size(); w++ {
			path := fmt.Sprintf("%s/shuffle/w%d.b%d", cfg.Path, w, myBucket)
			if _, err := env.Stat(p, path); err != nil {
				continue
			}
			sfd, err := env.Open(p, path, 0)
			if err != nil {
				continue
			}
			_, _ = env.Pread(p, sfd, 0, cfg.ShuffleSize)
			rep.BytesRead += cfg.ShuffleSize
			_ = env.Close(p, sfd)
		}
		r.Barrier()
		if r.ID() == 0 {
			rep.ReduceTime = r.Now() - t2
		}
	})
	rep.Makespan = end
	rep.ScanTime = scanEnd
	rep.ShuffleTime = shufEnd
	return rep
}
