package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// latencyWindow bounds the sliding sample set behind the p95 estimate;
// 1024 completed jobs is plenty of resolution for an operational gauge
// without unbounded growth.
const latencyWindow = 1024

// Metrics is the daemon's introspection state. Every admitted job is
// accounted against exactly one terminal counter, so the identity
//
//	enqueued == completed + dropped + cancelled
//
// holds at every quiescent point (queue empty, nothing in flight); the
// load-test client asserts it after a run. Counters only ever increase;
// QueueDepth and Inflight are gauges.
type Metrics struct {
	mu sync.Mutex

	enqueued  uint64 // jobs that passed admission and attempted the queue
	completed uint64 // jobs whose simulation ran to an outcome
	dropped   uint64 // jobs shed at the queue (enqueue deadline expired)
	cancelled uint64 // jobs cancelled (deadline, drain, all clients gone)

	cacheHits     uint64
	cacheMisses   uint64
	sharedFlights uint64 // submissions served by attaching to an identical in-flight job

	rejectedRateLimit uint64 // 429 at the token bucket
	rejectedBusy      uint64 // 503 at the admission gate (max in-flight)
	rejectedDraining  uint64 // 503 while draining
	rejectedInvalid   uint64 // 400 parse/validate failures
	rejectedTooLarge  uint64 // 413 body or grid over the admission limits

	jobPanics uint64 // runner panics recovered by the worker (defense in depth)

	queueDepth int64
	inflight   int64

	latencies [latencyWindow]time.Duration
	latN      int // total recorded; ring index = latN % latencyWindow
}

func (m *Metrics) add(c *uint64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

func (m *Metrics) gauge(g *int64, delta int64) {
	m.mu.Lock()
	*g += delta
	m.mu.Unlock()
}

func (m *Metrics) recordLatency(d time.Duration) {
	m.mu.Lock()
	m.latencies[m.latN%latencyWindow] = d
	m.latN++
	m.mu.Unlock()
}

// Snapshot is the wire form of Metrics, served as JSON on /metrics.
type Snapshot struct {
	Enqueued  uint64 `json:"enqueued"`
	Completed uint64 `json:"completed"`
	Dropped   uint64 `json:"dropped"`
	Cancelled uint64 `json:"cancelled"`

	QueueDepth int64 `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`

	CacheHits          uint64  `json:"cache_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
	SingleflightShared uint64  `json:"singleflight_shared"`

	RejectedRateLimit uint64 `json:"rejected_ratelimit"`
	RejectedBusy      uint64 `json:"rejected_busy"`
	RejectedDraining  uint64 `json:"rejected_draining"`
	RejectedInvalid   uint64 `json:"rejected_invalid"`
	RejectedTooLarge  uint64 `json:"rejected_too_large"`

	JobPanics uint64 `json:"job_panics"`

	P95JobLatencyMs float64 `json:"p95_job_latency_ms"`
	Goroutines      int     `json:"goroutines"`
}

// Snapshot captures a consistent view of every counter plus derived
// gauges (cache hit rate, p95 job latency, live goroutine count).
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Enqueued: m.enqueued, Completed: m.completed, Dropped: m.dropped, Cancelled: m.cancelled,
		QueueDepth: m.queueDepth, Inflight: m.inflight,
		CacheHits: m.cacheHits, CacheMisses: m.cacheMisses, SingleflightShared: m.sharedFlights,
		RejectedRateLimit: m.rejectedRateLimit, RejectedBusy: m.rejectedBusy,
		RejectedDraining: m.rejectedDraining, RejectedInvalid: m.rejectedInvalid,
		RejectedTooLarge: m.rejectedTooLarge,
		JobPanics:        m.jobPanics,
	}
	n := m.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, m.latencies[:n])
		sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
		s.P95JobLatencyMs = float64(window[(n-1)*95/100]) / float64(time.Millisecond)
	}
	m.mu.Unlock()
	if tot := s.CacheHits + s.CacheMisses; tot > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(tot)
	}
	s.Goroutines = runtime.NumGoroutine()
	return s
}

// AccountingError describes a violated metrics invariant; nil means the
// snapshot is internally consistent. Only meaningful at quiescence —
// while jobs are in flight, enqueued legitimately runs ahead of the
// terminal counters.
func (s Snapshot) AccountingError() error {
	if s.Enqueued != s.Completed+s.Dropped+s.Cancelled {
		return &accountingError{s}
	}
	if s.QueueDepth != 0 || s.Inflight != 0 {
		return &accountingError{s}
	}
	return nil
}

type accountingError struct{ s Snapshot }

func (e *accountingError) Error() string {
	return fmt.Sprintf("serve: dropped-work accounting mismatch: enqueued=%d != completed=%d + dropped=%d + cancelled=%d (queue_depth=%d inflight=%d)",
		e.s.Enqueued, e.s.Completed, e.s.Dropped, e.s.Cancelled, e.s.QueueDepth, e.s.Inflight)
}
