// Command simfs runs an iolang workload script against a configurable
// simulated cluster and prints the server-side view: OST utilization and
// byte counters, MDS operation mix, and optional sampled bandwidth series
// — the storage-system-level monitoring perspective.
//
// With -validate the run self-checks: the full invariant suite from
// internal/validate (time monotonicity, per-rank causality, byte
// conservation across layer boundaries, clean shutdown balance) is armed,
// violations are reported, and the exit status is non-zero on any
// violation. With -oracles the analytic oracle suite runs instead of a
// workload and the exit status reflects the verdict.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/iolang"
	"pioeval/internal/monitor"
	"pioeval/internal/pfs"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
	"pioeval/internal/validate"
)

// defaultScenario is the workload -validate runs when no script is given:
// a mixed checkpoint/log pattern touching every layer the checkers watch.
const defaultScenario = `workload "validate-default" {
	ranks 4
	stripe count=4 size=1048576
	write "/ckpt" offset=rank*4194304 size=4194304 chunk=1048576
	barrier
	read "/ckpt" offset=rank*4194304 size=2097152
	fsync "/ckpt"
	loop 2 {
		write "/log" offset=rank*1048576+iter*4194304 size=1048576
	}
	close "/ckpt"
}
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("simfs: ")
	fs := flag.NewFlagSet("simfs", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	sample := fs.Bool("sample", false, "print sampled bandwidth series")
	faultSpec := fs.String("faults", "", "fault campaign, e.g. 'ostcrash:1@100ms; ostrecover:1@700ms; mdsdown@1s; mdsup@1.5s'")
	resilient := fs.Bool("resilient", false, "enable the default client resilience policy (timeouts, retries, degraded reads)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	doValidate := fs.Bool("validate", false, "arm runtime invariant checkers and exit non-zero on any violation (runs a built-in scenario when no script is given)")
	doOracles := fs.Bool("oracles", false, "run the analytic oracle suite instead of a workload; exit non-zero on failure")
	tier := fs.String("tier", "direct", "storage tier for workload ranks: direct, bb (burst-buffer write-back), or nodelocal (per-node scratch)")
	_ = fs.Parse(os.Args[1:])

	if *doOracles {
		failed := false
		for _, r := range validate.RunOracles(cluster.Seed) {
			fmt.Println(r)
			if !r.Pass() {
				failed = true
				fmt.Printf("     %s\n", r.Detail)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	if fs.NArg() != 1 && !(*doValidate && fs.NArg() == 0) {
		log.Fatal("usage: simfs [flags] <workload.iol> (the script may be omitted with -validate)")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	src := []byte(defaultScenario)
	if fs.NArg() == 1 {
		var err error
		src, err = os.ReadFile(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	}
	wl, err := iolang.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	if *resilient || *faultSpec != "" {
		cfg.Resilience = pfs.DefaultResilience()
	}

	e := des.NewEngine(cluster.Seed)
	sim := pfs.New(e, cfg)
	var inv *validate.Invariants
	var col *trace.Collector
	if *doValidate {
		col = trace.NewCollector()
		col.SetLimit(1) // records flow through the invariant hook; retention is not needed
		inv = validate.Attach(e, sim, col)
	}
	var sampler *monitor.Sampler
	if *sample {
		sampler = monitor.NewSampler(e, sim, 10*des.Millisecond, des.Hour)
	}
	var campaign *faults.Scheduler
	if *faultSpec != "" {
		c, err := faults.ParseCampaign(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		if campaign, err = faults.Run(e, sim, c); err != nil {
			log.Fatal(err)
		}
	}
	var prov *storage.Provider
	if *tier != "direct" && *tier != "" {
		prov, err = storage.NewProvider(e, sim, *tier, storage.ProviderConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if inv != nil {
			inv.ObserveTier(prov)
		}
	}
	rep, err := iolang.RunOn(e, sim, wl, col, prov)
	if err != nil {
		log.Fatal(err)
	}
	if sampler != nil {
		sampler.Stop()
	}

	fmt.Printf("workload %q: %d ranks, makespan %v, read %s, wrote %s\n",
		rep.Name, rep.Ranks, rep.Makespan,
		cli.FormatSize(rep.BytesRead), cli.FormatSize(rep.BytesWritten))

	fmt.Println("\nOST counters:")
	fmt.Printf("  %-6s %-8s %12s %12s %8s\n", "ost", "oss", "read", "written", "util")
	for _, st := range sim.OSTStats() {
		fmt.Printf("  ost%-3d %-8s %12s %12s %7.1f%%\n",
			st.ID, st.OSSNode, cli.FormatSize(st.BytesRead), cli.FormatSize(st.BytesWritten), st.Utilization*100)
	}

	md := sim.MDSStats()
	fmt.Printf("\nMDS: %d ops total\n", md.TotalOps)
	ops := make([]string, 0, len(md.Ops))
	for op := range md.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("  %-10s %8d\n", op, md.Ops[op])
	}

	if prov != nil {
		switch prov.Tier() {
		case storage.TierBB:
			fmt.Println("\nburst buffers:")
			for _, bb := range prov.Buffers() {
				st := bb.Stats()
				fmt.Printf("  %-8s absorbed %s, drained %s, peak %s, %d stalls, reads %s staged / %s through\n",
					bb.Node(), cli.FormatSize(st.Absorbed), cli.FormatSize(st.Drained),
					cli.FormatSize(st.PeakUsed), st.Stalls,
					cli.FormatSize(st.BufReads), cli.FormatSize(st.MissReads))
				if st.DrainErrors > 0 {
					fmt.Printf("  %-8s DRAIN ERRORS: %d segments (%s) lost; last: %v\n",
						bb.Node(), st.DrainErrors, cli.FormatSize(st.LostBytes), st.LastDrainError)
				}
				if st.ReadErrors > 0 {
					fmt.Printf("  %-8s READ ERRORS: %d read-through failures; last: %v\n",
						bb.Node(), st.ReadErrors, st.LastReadError)
				}
			}
		case storage.TierNodeLocal:
			fmt.Println("\nnode-local scratch:")
			for _, nl := range prov.Locals() {
				st := nl.Stats()
				fmt.Printf("  %-10s read %s, wrote %s, %d files\n",
					st.Name, cli.FormatSize(st.BytesRead), cli.FormatSize(st.BytesWritten), st.Files)
			}
		}
	}

	if campaign != nil {
		fmt.Println("\nfault campaign:")
		for _, a := range campaign.Log() {
			if a.Err != nil {
				fmt.Printf("  %v (inject error: %v)\n", a.Event, a.Err)
			} else {
				fmt.Printf("  %v\n", a.Event)
			}
		}
		cs := sim.ClientStatsTotal()
		fmt.Printf("resilience: %d retries, %d timed-out RPCs, %d failed RPCs, %d degraded reads (%s missing)\n",
			cs.Retries, cs.TimedOutRPCs, cs.FailedRPCs, cs.DegradedReads, cli.FormatSize(cs.BytesMissing))
	}

	if sampler != nil {
		fmt.Println("\nsampled aggregate bandwidth (MB/s):")
		for _, r := range sampler.DeriveRates() {
			if r.ReadBps == 0 && r.WriteBps == 0 {
				continue
			}
			fmt.Printf("  t=%-12v read %10.1f  write %10.1f  imbalance %.2f\n",
				r.At, r.ReadBps/1e6, r.WriteBps/1e6, r.LoadImbalance)
		}
	}

	if inv != nil {
		vios := inv.Finish()
		st := inv.Stats()
		fmt.Printf("\nvalidation: %d dispatches, %d trace records, %d client ops, %d OST events checked\n",
			st.Dispatches, st.TraceRecords, st.ClientOps, st.OSTEvents)
		if len(vios) == 0 {
			fmt.Println("validation: all invariants held")
		} else {
			for _, v := range vios {
				fmt.Printf("validation: VIOLATION %s\n", v)
			}
			os.Exit(1)
		}
	}
}
