package pioeval_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"pioeval/internal/campaign"
)

// trajectorySpec is the perf-trajectory sweep recorded in
// BENCH_campaign.json: the same 48-point baseline grid cmd/campaign runs
// by default (devices x stripe counts x transfer sizes x patterns at two
// rank counts, three repetitions each).
func trajectorySpec() campaign.Spec {
	return campaign.Spec{
		Name:          "baseline-grid",
		Workload:      campaign.WorkloadIOR,
		Seed:          42,
		Reps:          3,
		Ranks:         []int{2, 4},
		Devices:       []string{"hdd", "ssd", "nvme"},
		StripeCounts:  []int{1, 4},
		BlockSizes:    []int64{4 << 20},
		TransferSizes: []int64{256 << 10, 1 << 20},
		Patterns:      []string{"sequential", "random"},
	}
}

// TestCampaignDeterminismAcrossWorkers is the acceptance check for the
// campaign runner's core guarantee: the full trajectory sweep aggregated
// at workers=1 and workers=8 produces byte-identical JSON, because every
// run's seed derives from (campaign seed, run index) and results are
// stored by index, never by completion order.
func TestCampaignDeterminismAcrossWorkers(t *testing.T) {
	var out [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		rep, err := campaign.Run(trajectorySpec(), campaign.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("workers=1 and workers=8 produced different aggregated JSON")
	}
}

// TestCampaignParallelSpeedup checks that the worker pool actually buys
// wall-clock time on parallel hardware: workers=8 must finish the sweep at
// least 3x faster than workers=1. The runs are independent simulations
// with no shared state, so the sweep is embarrassingly parallel; the test
// necessarily skips on machines without enough cores to express that.
func TestCampaignParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 CPUs for an 8-worker speedup measurement, have %d", runtime.NumCPU())
	}
	if procs := runtime.GOMAXPROCS(0); procs < 8 {
		t.Skipf("need GOMAXPROCS >= 8 for an 8-worker speedup measurement, have %d", procs)
	}
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	spec := trajectorySpec()
	spec.BlockSizes = []int64{16 << 20} // enough per-run work to dominate pool overhead
	elapsed := func(workers int) time.Duration {
		start := time.Now()
		if _, err := campaign.Run(spec, campaign.Options{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := elapsed(1)
	parallel := elapsed(8)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 3 {
		t.Errorf("speedup %.2fx at workers=8, want >= 3x", speedup)
	}
}

// BenchmarkCampaignSweep runs the 48-point, 144-run trajectory sweep and
// reports its scale and throughput plus a headline aggregate (the
// device-ordering sanity metric: mean sequential write bandwidth on nvme
// vs hdd at 4 ranks, 4-way striping, 1 MB transfers).
func BenchmarkCampaignSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rep, err := campaign.Run(trajectorySpec(), campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start)
		var hdd, nvme float64
		for _, ps := range rep.Points {
			p := ps.Point
			if p.Ranks == 4 && p.StripeCount == 4 && p.TransferSize == 1<<20 && p.Pattern == "sequential" {
				switch p.Device {
				case "hdd":
					hdd = ps.Metrics["write_MBps"].Mean
				case "nvme":
					nvme = ps.Metrics["write_MBps"].Mean
				}
			}
		}
		if hdd <= 0 || nvme <= hdd {
			b.Fatalf("device ordering violated: hdd %g MB/s, nvme %g MB/s", hdd, nvme)
		}
		b.ReportMetric(float64(len(rep.Points)), "points")
		b.ReportMetric(float64(len(rep.Runs)), "runs")
		b.ReportMetric(float64(len(rep.Runs))/wall.Seconds(), "runs/s")
		b.ReportMetric(hdd, "hdd_write_MBps")
		b.ReportMetric(nvme, "nvme_write_MBps")
	}
}

// BenchmarkResilienceFaultSweep routes the resilience what-if sweep
// through the campaign runner: a checkpoint workload swept over fault
// campaigns (none, an OST crash window, an OST straggler), three
// repetitions each, aggregated into distributions. Reported: nominal vs
// faulted effective bandwidth and the retry volume the fault windows
// induce.
func BenchmarkResilienceFaultSweep(b *testing.B) {
	spec := campaign.Spec{
		Name:          "resilience-sweep",
		Workload:      campaign.WorkloadCheckpoint,
		Seed:          501,
		Reps:          3,
		Steps:         6,
		Ranks:         []int{4},
		Devices:       []string{"ssd"},
		StripeCounts:  []int{8},
		BlockSizes:    []int64{4 << 20},
		TransferSizes: []int64{1 << 20},
		Faults: []string{
			"",
			"ostcrash:1@100ms; ostrecover:1@300ms",
			"slowdown:1x8@0ms",
		},
	}
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(spec, campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		nominal := rep.Points[0].Metrics
		crashed := rep.Points[1].Metrics
		straggler := rep.Points[2].Metrics
		if crashed["retries"].Mean == 0 {
			b.Fatal("crash window never exercised the retry path")
		}
		if crashed["io_errors"].Mean != 0 {
			b.Fatalf("crash window exceeded the retry budget: %g io errors", crashed["io_errors"].Mean)
		}
		b.ReportMetric(nominal["effective_MBps"].Mean, "nominal_MBps")
		b.ReportMetric(crashed["effective_MBps"].Mean, "crash_MBps")
		b.ReportMetric(straggler["effective_MBps"].Mean, "straggler_MBps")
		b.ReportMetric(crashed["retries"].Mean, "crash_retries")
		b.ReportMetric(crashed["worst_step_ms"].Mean, "crash_worst_step_ms")
	}
}
