package pioeval_test

import (
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/burstbuffer"
	"pioeval/internal/core"
	"pioeval/internal/corpus"
	"pioeval/internal/des"
	"pioeval/internal/facility"
	"pioeval/internal/hdf"
	"pioeval/internal/iolang"
	"pioeval/internal/mpi"
	"pioeval/internal/mpiio"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
	"pioeval/internal/workload"
)

// hddCluster returns the Figure-1 deployment with HDD-backed OSTs and no
// I/O-forwarding tier (flat network).
func hddCluster() pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	return cfg
}

// ssdCluster swaps the OSTs for SATA-SSD models.
func ssdCluster() pfs.Config {
	cfg := hddCluster()
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return cfg
}

// BenchmarkFig1BurstBuffer reproduces the Figure-1 architecture claim: the
// I/O-node SSD tier absorbs a bursty checkpoint far faster than the
// HDD-backed PFS, then drains asynchronously. Reported metrics:
// direct_ms, absorbed_ms, speedup.
func BenchmarkFig1BurstBuffer(b *testing.B) {
	const burst = 64 << 20
	for i := 0; i < b.N; i++ {
		// Direct to PFS.
		e1 := des.NewEngine(101)
		fs1 := pfs.New(e1, hddCluster())
		c := fs1.NewClient("cn0")
		var direct des.Time
		e1.Spawn("app", func(p *des.Proc) {
			h, _ := c.Create(p, "/ckpt", 0, 0)
			h.Write(p, 0, burst)
			h.Close(p)
			direct = p.Now()
		})
		e1.Run(des.MaxTime)

		// Through the burst buffer.
		e2 := des.NewEngine(101)
		fs2 := pfs.New(e2, hddCluster())
		bb := burstbuffer.New(e2, fs2, "bb0", burstbuffer.DefaultConfig())
		var absorbed des.Time
		e2.Spawn("app", func(p *des.Proc) {
			bb.Write(p, "/ckpt", 0, burst)
			absorbed = p.Now()
			bb.WaitDrained(p)
			bb.Shutdown()
		})
		e2.Run(des.MaxTime)

		if st := bb.Stats(); st.Drained != burst {
			b.Fatalf("drained %d of %d bytes", st.Drained, burst)
		}
		b.ReportMetric(direct.Seconds()*1e3, "direct_ms")
		b.ReportMetric(absorbed.Seconds()*1e3, "absorbed_ms")
		b.ReportMetric(float64(direct)/float64(absorbed), "speedup")
	}
}

// BenchmarkFig2LayeredPath reproduces Figure 2: an application write
// traverses HDF -> MPI-IO -> POSIX -> PFS, with the multi-level tracer
// capturing records at every layer. Reported metrics: layer record counts
// and end-to-end bandwidth.
func BenchmarkFig2LayeredPath(b *testing.B) {
	const ranks = 4
	dims := []int64{ranks, 4096} // 4096 x 8B per rank
	for i := 0; i < b.N; i++ {
		e := des.NewEngine(102)
		fs := pfs.New(e, ssdCluster())
		col := trace.NewCollector()
		w := mpi.NewWorld(e, ranks, mpi.DefaultOptions())
		envs := make([]*posixio.Env, ranks)
		for r := range envs {
			envs[r] = posixio.NewEnv(storage.Direct(fs.NewClient(nodeName("fig2", r))), r, col)
		}
		mf := mpiio.NewFile(w, envs, "/exp.h5", mpiio.Hints{CollNodes: 2}, col)
		hf := hdf.NewFile(mf, col)
		w.Spawn(func(r *mpi.Rank) {
			if err := hf.Create(r); err != nil {
				b.Errorf("create: %v", err)
				return
			}
			ds, err := hf.CreateDataset(r, "/state", dims, 8)
			if err != nil {
				b.Errorf("dataset: %v", err)
				return
			}
			_ = ds.WriteSlabAll(r, []int64{int64(r.ID()), 0}, []int64{1, dims[1]})
			_ = hf.Close(r)
		})
		end := e.Run(des.MaxTime)
		recs := col.Records()
		hdfN := len(trace.ByLayer(recs, trace.LayerHDF))
		mpiioN := len(trace.ByLayer(recs, trace.LayerMPIIO))
		posixN := len(trace.ByLayer(recs, trace.LayerPOSIX))
		if hdfN == 0 || mpiioN == 0 || posixN == 0 {
			b.Fatalf("layer records: hdf=%d mpiio=%d posix=%d", hdfN, mpiioN, posixN)
		}
		bytes := int64(ranks) * dims[1] * 8
		b.ReportMetric(float64(hdfN), "hdf_recs")
		b.ReportMetric(float64(mpiioN), "mpiio_recs")
		b.ReportMetric(float64(posixN), "posix_recs")
		b.ReportMetric(float64(bytes)/1e6/end.Seconds(), "MB/s")
	}
}

func nodeName(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// BenchmarkFig3CorpusDistribution regenerates Figure 3: the percentage
// distribution of the 51 surveyed papers over venue types and publishers.
func BenchmarkFig3CorpusDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if corpus.Count() != 51 {
			b.Fatal("corpus must contain the survey's 51 papers")
		}
		vt := corpus.ByVenueType()
		pub := corpus.ByPublisher()
		for _, s := range vt {
			switch s.Label {
			case "conference":
				b.ReportMetric(s.Percent, "conference_pct")
			case "journal":
				b.ReportMetric(s.Percent, "journal_pct")
			case "workshop":
				b.ReportMetric(s.Percent, "workshop_pct")
			}
		}
		for _, s := range pub {
			if s.Label == "IEEE" {
				b.ReportMetric(s.Percent, "ieee_pct")
			}
			if s.Label == "ACM" {
				b.ReportMetric(s.Percent, "acm_pct")
			}
		}
	}
}

// BenchmarkFig4EvalCycle runs the full three-phase evaluation cycle with
// feedback (Figure 4): measure on an SSD baseline, model, predict an HDD
// target, simulate, feed measurements back until the prediction converges.
// Reported metrics: iterations, first/last relative error.
func BenchmarkFig4EvalCycle(b *testing.B) {
	script := `
workload "fig4" {
    ranks 4
    loop 6 {
        compute 4ms
        write "/out" offset=rank*16MB size=4MB chunk=1MB
        read "/out" offset=rank*16MB size=1MB chunk=256KB
    }
}
`
	wl, err := iolang.Parse(script)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.RunCycle(core.CycleConfig{
			Seed:          104,
			Baseline:      ssdCluster(),
			Target:        hddCluster(),
			Source:        core.SyntheticSource{Workload: wl},
			MaxIterations: 4,
			Tolerance:     0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("cycle did not converge: %+v", res.Iterations)
		}
		b.ReportMetric(float64(len(res.Iterations)), "iterations")
		b.ReportMetric(res.Iterations[0].RelError, "first_err")
		b.ReportMetric(res.Iterations[len(res.Iterations)-1].RelError, "final_err")
		b.ReportMetric(res.SkeletonRatio, "skel_ratio")
	}
}

// BenchmarkAblationTraceCodec compares the binary and JSON trace codecs on
// the same record stream (a design-choice ablation from DESIGN.md).
func BenchmarkAblationTraceCodec(b *testing.B) {
	e := des.NewEngine(105)
	fs := pfs.New(e, ssdCluster())
	col := trace.NewCollector()
	h := workload.NewHarness(e, fs, 4, "codec", col)
	workload.RunIOR(h, workload.IORConfig{Ranks: 4, BlockSize: 8 << 20, TransferSize: 256 << 10, ReadBack: true})
	recs := col.Records()
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countWriter
			if err := trace.WriteBinary(&sink, recs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sink)/float64(len(recs)), "bytes/rec")
		}
	})
	b.Run("json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countWriter
			if err := trace.WriteJSON(&sink, recs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sink)/float64(len(recs)), "bytes/rec")
		}
	})
}

// countWriter counts bytes written.
type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

// BenchmarkFacilityMixedWorkloads runs the facility-scale simulation (the
// "storage system as a whole" view of §IV-B1): a scheduled job stream with
// a mixed workload over the shared PFS, analyzed from server-side logs
// alone. Reported: facility read fraction, scheduler utilization, and
// interference pairs found.
func BenchmarkFacilityMixedWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := facility.Run(facility.Config{
			Seed: 106, Cluster: ssdCluster(), Jobs: 12,
			Mix: map[facility.JobKind]float64{
				facility.Checkpoint: 1, facility.DLTraining: 1,
				facility.Analytics: 1, facility.MetaHeavy: 1,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != 12 {
			b.Fatalf("jobs = %d", len(res.Jobs))
		}
		b.ReportMetric(res.ReadFraction, "read_frac")
		b.ReportMetric(res.Utilization*100, "sched_util_pct")
		b.ReportMetric(float64(len(res.Interferences)), "interferences")
		b.ReportMetric(float64(res.MDSOps), "mds_ops")
	}
}
