package des

import (
	"math"
	"math/rand"
)

// StreamRNG provides named, independent, deterministic random streams.
// Each stream's seed is derived from the root seed and the stream name, so
// adding a new stream never perturbs existing ones — essential for
// reproducible simulation experiments.
type StreamRNG struct {
	seed    int64
	streams map[string]*rand.Rand
}

// NewStreamRNG creates a stream RNG rooted at seed.
func NewStreamRNG(seed int64) *StreamRNG {
	return &StreamRNG{seed: seed, streams: make(map[string]*rand.Rand)}
}

// fnv1a hashes s into a 64-bit value (FNV-1a).
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Stream returns the named stream, creating it on first use.
func (r *StreamRNG) Stream(name string) *rand.Rand {
	if rr, ok := r.streams[name]; ok {
		return rr
	}
	derived := int64(fnv1a(name) ^ uint64(r.seed)*0x9E3779B97F4A7C15)
	rr := rand.New(rand.NewSource(derived))
	r.streams[name] = rr
	return rr
}

// Seed returns the root seed.
func (r *StreamRNG) Seed() int64 { return r.seed }

// Exponential draws an exponentially distributed duration with the given
// mean from the named stream. Useful for arrival processes.
func (r *StreamRNG) Exponential(stream string, mean Time) Time {
	u := r.Stream(stream).Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Time(-math.Log(u) * float64(mean))
}

// Uniform draws a uniformly distributed duration in [lo, hi) from the named
// stream.
func (r *StreamRNG) Uniform(stream string, lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Stream(stream).Int63n(int64(hi-lo)))
}

// Normal draws a normally distributed duration (clamped at zero) from the
// named stream.
func (r *StreamRNG) Normal(stream string, mean, stddev Time) Time {
	v := float64(mean) + r.Stream(stream).NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return Time(v)
}
