package predict

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pioeval/internal/stats"
)

// makeLinear builds y = 5 + 2a - 3b (+noise).
func makeLinear(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64()*10, rng.Float64()*10
		X[i] = []float64{a, b}
		y[i] = 5 + 2*a - 3*b + rng.NormFloat64()*noise
	}
	return X, y
}

// makeNonlinear builds y = sin(a)*10 + b*b (+noise): linear models fail.
func makeNonlinear(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64()*6, rng.Float64()*4
		X[i] = []float64{a, b}
		y[i] = math.Sin(a)*10 + b*b + rng.NormFloat64()*noise
	}
	return X, y
}

func TestNNLearnsLinear(t *testing.T) {
	X, y := makeLinear(300, 0.1, 1)
	testX, testY := makeLinear(100, 0, 2)
	nn := NewNN(2, DefaultNNConfig())
	if err := nn.Train(X, y); err != nil {
		t.Fatal(err)
	}
	mae := MAE(nn.Predict, testX, testY)
	if mae > 2 {
		t.Errorf("NN MAE on linear data = %.3f, want < 2", mae)
	}
}

func TestNNBeatsLinearOnNonlinear(t *testing.T) {
	// The Schmid & Kunkel claim (C4): NN beats the linear model on
	// nonlinear response surfaces.
	X, y := makeNonlinear(500, 0.1, 3)
	testX, testY := makeNonlinear(200, 0, 4)

	nn := NewNN(2, DefaultNNConfig())
	if err := nn.Train(X, y); err != nil {
		t.Fatal(err)
	}
	lin, err := stats.MultipleRegression(X, y)
	if err != nil {
		t.Fatal(err)
	}
	nnMAE := MAE(nn.Predict, testX, testY)
	linMAE := MAE(lin.Predict, testX, testY)
	if nnMAE >= linMAE {
		t.Fatalf("NN MAE %.3f should beat linear MAE %.3f on nonlinear data", nnMAE, linMAE)
	}
	if linMAE/nnMAE < 1.5 {
		t.Errorf("NN advantage only %.2fx, want >= 1.5x", linMAE/nnMAE)
	}
}

func TestNNInputValidation(t *testing.T) {
	nn := NewNN(2, DefaultNNConfig())
	if err := nn.Train(nil, nil); err == nil {
		t.Error("empty training should error")
	}
	if err := nn.Train([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Error("dim mismatch should error")
	}
}

func TestActivations(t *testing.T) {
	if ReLU.apply(-1) != 0 || ReLU.apply(2) != 2 {
		t.Error("relu")
	}
	if ReLU.deriv(0) != 0 || ReLU.deriv(1) != 1 {
		t.Error("relu deriv")
	}
	if !approxEq(Tanh.apply(0), 0, 1e-12) || Tanh.apply(100) > 1 {
		t.Error("tanh")
	}
	if s := Sigmoid.apply(0); !approxEq(s, 0.5, 1e-12) {
		t.Error("sigmoid")
	}
	if d := Sigmoid.deriv(0.5); !approxEq(d, 0.25, 1e-12) {
		t.Error("sigmoid deriv")
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTreeFitsStepFunction(t *testing.T) {
	// y = 10 for x<5, else 20: a single split suffices.
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := float64(i) / 10
		X = append(X, []float64{x})
		if x < 5 {
			y = append(y, 10)
		} else {
			y = append(y, 20)
		}
	}
	tree, err := TrainTree(X, y, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{1}); got != 10 {
		t.Errorf("predict(1) = %v", got)
	}
	if got := tree.Predict([]float64{9}); got != 20 {
		t.Errorf("predict(9) = %v", got)
	}
	if tree.Depth() > 3 {
		t.Errorf("tree depth %d too deep for a step function", tree.Depth())
	}
}

func TestTreeMinLeafRespected(t *testing.T) {
	X, y := makeNonlinear(100, 0, 5)
	tree, err := TrainTree(X, y, TreeConfig{MaxDepth: 50, MinLeafSize: 25})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Errorf("large leaves should limit depth, got %d", tree.Depth())
	}
}

func TestForestBeatsLinearOnNonlinear(t *testing.T) {
	// The Sun et al. claim (C5): RF predicts nonlinear I/O response well.
	X, y := makeNonlinear(500, 0.1, 6)
	testX, testY := makeNonlinear(200, 0, 7)
	f, err := TrainForest(X, y, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := stats.MultipleRegression(X, y)
	fMAE := MAE(f.Predict, testX, testY)
	linMAE := MAE(lin.Predict, testX, testY)
	if fMAE >= linMAE {
		t.Fatalf("forest MAE %.3f should beat linear %.3f", fMAE, linMAE)
	}
}

func TestForestBeatsSingleTree(t *testing.T) {
	X, y := makeNonlinear(400, 2.0, 8) // noisy: bagging helps
	testX, testY := makeNonlinear(200, 0, 9)
	tree, _ := TrainTree(X, y, DefaultTreeConfig())
	forest, _ := TrainForest(X, y, DefaultForestConfig())
	if forest.NumTrees() != 50 {
		t.Errorf("trees = %d", forest.NumTrees())
	}
	tRMSE := RMSE(tree.Predict, testX, testY)
	fRMSE := RMSE(forest.Predict, testX, testY)
	if fRMSE >= tRMSE {
		t.Errorf("forest RMSE %.3f should beat tree %.3f on noisy data", fRMSE, tRMSE)
	}
}

func TestKNN(t *testing.T) {
	X := [][]float64{{0}, {1}, {10}, {11}}
	y := []float64{5, 5, 50, 50}
	m, err := NewKNN(2, X, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5}); got != 5 {
		t.Errorf("knn(0.5) = %v", got)
	}
	if got := m.Predict([]float64{10.5}); got != 50 {
		t.Errorf("knn(10.5) = %v", got)
	}
	if _, err := NewKNN(0, X, y); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewKNN(1, nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestErrorMetrics(t *testing.T) {
	pred := func(x []float64) float64 { return x[0] }
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{2, 2, 2}
	if got := MAE(pred, X, y); !approxEq(got, 2.0/3, 1e-12) {
		t.Errorf("MAE = %v", got)
	}
	if got := RMSE(pred, X, y); !approxEq(got, math.Sqrt(2.0/3), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
	if MAE(pred, nil, nil) != 0 || RMSE(pred, nil, nil) != 0 {
		t.Error("empty metrics")
	}
}

func TestGrammarRoundTrip(t *testing.T) {
	seq := []int{1, 2, 3, 1, 2, 3, 1, 2, 3, 4}
	g := InferGrammar(seq)
	if !reflect.DeepEqual(g.Expand(), seq) {
		t.Fatalf("expand mismatch: %v", g.Expand())
	}
	if g.Size() >= len(seq) {
		t.Errorf("grammar size %d should compress %d", g.Size(), len(seq))
	}
	if g.String() == "" {
		t.Error("empty grammar string")
	}
}

func TestGrammarCompressionOnLoops(t *testing.T) {
	// A checkpoint-like loop: (open write write close) x 64.
	var seq []int
	for i := 0; i < 64; i++ {
		seq = append(seq, 0, 1, 1, 2)
	}
	ratio := CompressionRatio(seq)
	if ratio < 8 {
		t.Errorf("loop compression ratio = %.1f, want >= 8", ratio)
	}
	// Random sequences compress poorly.
	rng := rand.New(rand.NewSource(10))
	var rnd []int
	for i := 0; i < 256; i++ {
		rnd = append(rnd, rng.Intn(50))
	}
	if rr := CompressionRatio(rnd); rr > ratio/2 {
		t.Errorf("random ratio %.1f should be far below loop ratio %.1f", rr, ratio)
	}
	if CompressionRatio(nil) != 1 {
		t.Error("empty ratio")
	}
}

// Property: InferGrammar round-trips any sequence.
func TestPropGrammarRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]int, len(raw))
		for i, v := range raw {
			seq[i] = int(v % 8)
		}
		g := InferGrammar(seq)
		got := g.Expand()
		if len(seq) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSeqPredictorPeriodicPattern(t *testing.T) {
	// Periodic I/O phase pattern: compute(0) write(1) barrier(2) repeated.
	var seq []int
	for i := 0; i < 50; i++ {
		seq = append(seq, 0, 1, 2)
	}
	sp := NewSeqPredictor(4)
	sp.Observe(seq)
	if got, ok := sp.Predict([]int{0, 1}); !ok || got != 2 {
		t.Errorf("predict after [0 1] = %v,%v want 2", got, ok)
	}
	if got, ok := sp.Predict([]int{2}); !ok || got != 0 {
		t.Errorf("predict after [2] = %v,%v want 0", got, ok)
	}
	if acc := sp.Accuracy(seq, 3); acc < 0.95 {
		t.Errorf("accuracy on periodic pattern = %.2f, want >= 0.95", acc)
	}
}

func TestSeqPredictorUnknownContext(t *testing.T) {
	sp := NewSeqPredictor(3)
	sp.Observe([]int{1, 2, 3})
	if _, ok := sp.Predict([]int{9}); ok {
		t.Error("unknown context should not predict")
	}
	if sp.Accuracy(nil, 1) != 0 {
		t.Error("empty accuracy")
	}
}

func TestSeqPredictorLongestContextWins(t *testing.T) {
	sp := NewSeqPredictor(3)
	// After [1], usually 2; but after [5 1], always 9.
	sp.Observe([]int{1, 2, 1, 2, 1, 2, 5, 1, 9, 5, 1, 9})
	if got, _ := sp.Predict([]int{1}); got != 2 {
		t.Errorf("short ctx = %d, want 2", got)
	}
	if got, _ := sp.Predict([]int{5, 1}); got != 9 {
		t.Errorf("long ctx = %d, want 9", got)
	}
}
