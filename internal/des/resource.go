package des

import "fmt"

// Resource models a server with fixed capacity and a FIFO wait queue:
// network links, disk queues, CPU slots. Acquire blocks the calling process
// until a unit is available; Release frees a unit and wakes the head waiter.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  waiterFIFO

	// Utilization accounting.
	busyTime   Time // integral of inUse over time, in unit-nanoseconds
	lastChange Time
	acquired   uint64 // total successful acquisitions
	peakQueue  int
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("des: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

func (r *Resource) account() {
	r.busyTime += Time(r.inUse) * (r.eng.now - r.lastChange)
	r.lastChange = r.eng.now
}

// Acquire obtains one unit of the resource, blocking in FIFO order.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.waiters.push(waiter{p: p})
		if r.waiters.len() > r.peakQueue {
			r.peakQueue = r.waiters.len()
		}
		p.block()
	}
	r.account()
	r.inUse++
	r.acquired++
}

// AcquireE is the continuation form of Acquire: when a unit is free, k
// runs synchronously (matching Acquire's no-yield fast path); otherwise
// the process joins the wait FIFO — shared with goroutine waiters, in
// strict arrival order — and re-checks on wake, re-entering at the back
// if a TryAcquire raced it (exactly the goroutine form's loop).
func (r *Resource) AcquireE(ep *EventProc, k func()) {
	if r.inUse >= r.capacity {
		ep.arm(func() { r.AcquireE(ep, k) })
		r.waiters.push(waiter{ep: ep})
		if r.waiters.len() > r.peakQueue {
			r.peakQueue = r.waiters.len()
		}
		return
	}
	r.account()
	r.inUse++
	r.acquired++
	k()
}

// TryAcquire obtains a unit without blocking; it reports whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.account()
	r.inUse++
	r.acquired++
	return true
}

// Release returns one unit and wakes the longest-waiting process, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("des: release of idle resource %q", r.name))
	}
	r.account()
	r.inUse--
	if w, ok := r.waiters.pop(); ok {
		w.wake()
	}
}

// Use acquires the resource, holds it for service time d, then releases it.
// This is the common pattern for queueing servers (disks, NICs).
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}

// UseE is the continuation form of Use: acquire, hold for service time d,
// release, then run k.
func (r *Resource) UseE(ep *EventProc, d Time, k func()) {
	r.AcquireE(ep, func() {
		ep.Wait(d, func() {
			r.Release()
			k()
		})
	})
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return r.waiters.len() }

// PeakQueueLen reports the maximum observed wait-queue length.
func (r *Resource) PeakQueueLen() int { return r.peakQueue }

// Acquisitions reports the total number of successful acquisitions.
func (r *Resource) Acquisitions() uint64 { return r.acquired }

// Utilization returns mean busy fraction of capacity over [0, now].
func (r *Resource) Utilization() float64 {
	now := r.eng.now
	if now == 0 {
		return 0
	}
	busy := r.busyTime + Time(r.inUse)*(now-r.lastChange)
	return float64(busy) / (float64(now) * float64(r.capacity))
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }
