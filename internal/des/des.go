// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is process-oriented and offers two execution forms for
// simulated entities, interchangeable on one Engine:
//
//   - Goroutine procs (Spawn): entities run as goroutines that block on
//     simulation primitives (Wait, Acquire, Get). Natural sequential code;
//     each entity costs a goroutine stack and a channel rendezvous per wake.
//   - Continuation procs (SpawnEvent): entities are state machines whose
//     blocking points pass an explicit continuation (WaitE-style methods:
//     Wait(d, k), Queue.GetE, Resource.AcquireE). No goroutine, stack, or
//     channel per entity — a wake is a pooled event dispatch calling a
//     function pointer, ~20x cheaper than a goroutine handoff — which is
//     what makes million-rank simulations affordable. A step that returns
//     without arming exactly one blocking point terminates the proc; arming
//     two panics.
//
// Both forms share every primitive: Queue, Resource, Signal, and WaitGroup
// keep one waiter FIFO, so mixed-form waiters wake in strict arrival order
// and the two forms are timing-equivalent on identical workloads. The
// engine executes exactly one process at a time and advances a virtual
// clock between events, so simulations are fully deterministic for a given
// seed and are not affected by wall-clock scheduling. ParallelGroup extends
// this across engines: conservative (CMB-style) lookahead windows let
// disjoint partitions run on concurrent workers with byte-identical results
// at any worker count.
//
// The package is the substrate for every simulator in this repository: the
// network fabric, the parallel file system, the MPI runtime, and the burst
// buffer are all built from des processes and resources.
//
// The event path is allocation-free in steady state: events live in an
// index-stable pooled slot array recycled through a freelist, ordered by an
// inlined 4-ary min-heap of slot indices, and events scheduled for the
// current timestamp during dispatch bypass the heap entirely through a FIFO
// ring. See DESIGN.md ("DES kernel internals" and "Execution forms") for
// the invariants.
package des

import (
	"fmt"
	"math"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts floating-point seconds into simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled occurrence in virtual time, stored in the engine's
// pooled slot array. Slots are index-stable: the heap and the immediate
// ring reference events by pool index, and freed slots are recycled
// through a freelist, so steady-state scheduling allocates nothing.
type event struct {
	at  Time
	seq uint64 // tie-breaker for determinism: FIFO among simultaneous events
	// Exactly one of fire/proc/eproc is set: fire is a callback, proc is a
	// blocked goroutine process the engine resumes directly, and eproc is
	// a blocked continuation process whose stored continuation the engine
	// invokes in place (no closure needed for either process form).
	fire  func()
	proc  *Proc
	eproc *EventProc
	// gen is bumped every time the slot is freed; cancel handles capture
	// (index, gen) so a stale cancel of a recycled slot is a no-op.
	gen uint32
	// canceled events stay queued but are skipped (and freed) when popped;
	// the heap is compacted once they outnumber live entries.
	canceled bool
}

// minCompact is the heap size below which lazy-canceled events are never
// compacted eagerly — popping them is cheaper than rebuilding.
const minCompact = 64

// heapEntry carries the ordering key next to the slot index so heap sifts
// compare within the heap array itself instead of chasing pool slots.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

// before reports heap ordering: earlier time first, then FIFO by sequence.
func (a heapEntry) before(b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine drives a single simulation. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now Time
	seq uint64

	pool []event     // index-stable event slots
	free []int32     // recycled slot indices
	heap []heapEntry // 4-ary min-heap ordered by (at, seq)

	// imm is the direct-dispatch FIFO for events scheduled at the current
	// timestamp while the engine is dispatching: they never touch the
	// heap. immHead indexes the next entry; the slice is reset when
	// drained so the backing array is reused.
	imm     []int32
	immHead int

	// canceled counts lazily-canceled events still queued (heap or imm).
	canceled int

	// Process scheduling: the engine hands control to one process goroutine
	// at a time and waits for it to yield back.
	yield chan struct{}

	running    bool
	procs      int // live process count (both forms), for leak detection
	nextPID    int
	dispatched uint64
	rng        *StreamRNG
	tracehook  func(at Time, what string)
}

// NewEngine returns an engine with its clock at zero and an attached
// deterministic RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   NewStreamRNG(seed),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic stream RNG.
func (e *Engine) RNG() *StreamRNG { return e.rng }

// SetTraceHook installs fn to be called on every event dispatch; used by
// tests and debug tooling. Pass nil to disable.
func (e *Engine) SetTraceHook(fn func(at Time, what string)) { e.tracehook = fn }

// alloc takes a slot from the freelist (or grows the pool) and stamps it
// with the next sequence number.
func (e *Engine) alloc(at Time, fn func(), p *Proc) int32 {
	var idx int32
	if n := len(e.free) - 1; n >= 0 {
		idx = e.free[n]
		e.free = e.free[:n]
	} else {
		e.pool = append(e.pool, event{})
		idx = int32(len(e.pool) - 1)
	}
	ev := &e.pool[idx]
	ev.at = at
	ev.seq = e.seq
	ev.fire = fn
	ev.proc = p
	e.seq++
	return idx
}

// freeSlot returns a slot to the freelist, dropping its references and
// invalidating any outstanding cancel handle.
func (e *Engine) freeSlot(idx int32) {
	ev := &e.pool[idx]
	ev.fire = nil
	ev.proc = nil
	ev.eproc = nil
	ev.canceled = false
	ev.gen++
	e.free = append(e.free, idx)
}

// schedule enqueues an occurrence at absolute time at — either callback fn
// or a direct resume of process p — and returns its slot index. Same-time
// events scheduled during dispatch take the heap-free immediate path.
func (e *Engine) schedule(at Time, fn func(), p *Proc) int32 {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: at=%v now=%v", at, e.now))
	}
	idx := e.alloc(at, fn, p)
	if e.running && at == e.now {
		e.imm = append(e.imm, idx)
	} else {
		e.heapPush(idx)
	}
	return idx
}

// scheduleEP enqueues a continuation-process wake at absolute time at. It
// is the EventProc analogue of a proc-carrying schedule: the slot carries
// the process handle and the engine invokes its stored continuation.
func (e *Engine) scheduleEP(at Time, ep *EventProc) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: at=%v now=%v", at, e.now))
	}
	idx := e.alloc(at, nil, nil)
	e.pool[idx].eproc = ep
	if e.running && at == e.now {
		e.imm = append(e.imm, idx)
	} else {
		e.heapPush(idx)
	}
}

// heapPush inserts slot idx into the 4-ary heap.
func (e *Engine) heapPush(idx int32) {
	ev := &e.pool[idx]
	e.heap = append(e.heap, heapEntry{at: ev.at, seq: ev.seq, idx: idx})
	e.siftUp(len(e.heap) - 1)
}

// heapPop removes and returns the minimum slot index.
func (e *Engine) heapPop() int32 {
	h := e.heap
	top := h[0].idx
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return top
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	item := h[i]
	for i > 0 {
		pi := (i - 1) >> 2
		if h[pi].before(item) {
			break
		}
		h[i] = h[pi]
		i = pi
	}
	h[i] = item
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	item := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		kids := h[first:last]
		best := 0
		bv := kids[0]
		for c := 1; c < len(kids); c++ {
			if kids[c].before(bv) {
				best, bv = c, kids[c]
			}
		}
		if item.before(bv) {
			break
		}
		h[i] = bv
		i = first + best
	}
	h[i] = item
}

// maybeCompact rebuilds the heap without canceled entries once they exceed
// half of it, bounding the memory and pop-skip cost of lazy cancellation.
func (e *Engine) maybeCompact() {
	if e.canceled < minCompact || e.canceled*2 <= len(e.heap) {
		return
	}
	kept := e.heap[:0]
	for _, he := range e.heap {
		if e.pool[he.idx].canceled {
			e.canceled--
			e.freeSlot(he.idx)
		} else {
			kept = append(kept, he)
		}
	}
	e.heap = kept
	if n := len(e.heap); n > 1 {
		for i := (n - 2) >> 2; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// After schedules fn to run after delay d. Callback-style scheduling; most
// code should prefer processes (Spawn) instead.
func (e *Engine) After(d Time, fn func()) {
	e.schedule(e.now+d, fn, nil)
}

// AfterCancel schedules fn after delay d and returns a cancel function
// (idempotent; a no-op once the event has fired). Timeout modeling.
// Cancellation is lazy — the slot stays queued and is skipped when popped
// — with heap compaction once canceled entries exceed half the heap.
func (e *Engine) AfterCancel(d Time, fn func()) (cancel func()) {
	idx := e.schedule(e.now+d, fn, nil)
	gen := e.pool[idx].gen
	return func() {
		ev := &e.pool[idx]
		if ev.gen != gen || ev.canceled {
			return // already fired, freed, or canceled
		}
		ev.canceled = true
		ev.fire = nil // release the closure now; the slot may linger
		e.canceled++
		e.maybeCompact()
	}
}

// next selects the lowest-(at, seq) pending event: the head of the
// immediate ring, unless an earlier-scheduled heap event shares the
// current timestamp. Time never advances while the immediate ring is
// non-empty, because its entries are always stamped at the current time.
func (e *Engine) next() (int32, bool) {
	if e.immHead < len(e.imm) {
		idx := e.imm[e.immHead]
		if len(e.heap) > 0 {
			if top := e.heap[0]; top.at == e.now && top.seq < e.pool[idx].seq {
				return e.heapPop(), true
			}
		}
		e.immHead++
		if e.immHead == len(e.imm) {
			e.imm = e.imm[:0]
			e.immHead = 0
		}
		return idx, true
	}
	if len(e.heap) > 0 {
		return e.heapPop(), true
	}
	return 0, false
}

// Run executes events until the event queue empties or until the clock
// exceeds horizon (use MaxTime for no limit). It returns the final time.
func (e *Engine) Run(horizon Time) Time {
	if e.running {
		panic("des: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		idx, ok := e.next()
		if !ok {
			break
		}
		ev := &e.pool[idx]
		if ev.canceled {
			e.canceled--
			e.freeSlot(idx)
			continue
		}
		if ev.at > horizon {
			// Put it back for a future Run call and stop.
			e.heapPush(idx)
			e.now = horizon
			return e.now
		}
		e.now = ev.at
		fire, proc, eproc := ev.fire, ev.proc, ev.eproc
		e.freeSlot(idx)
		e.dispatched++
		if e.tracehook != nil {
			e.tracehook(e.now, "event")
		}
		switch {
		case proc != nil:
			// Direct handoff: resume the blocked process goroutine and
			// wait for it to yield control back. One reusable rendezvous
			// per switch; no scheduled closure.
			proc.resume <- struct{}{}
			<-e.yield
		case eproc != nil:
			// Continuation dispatch: run the stored continuation in
			// place. No stack switch at all.
			eproc.enter()
		default:
			fire()
		}
	}
	return e.now
}

// NextEventTime returns the timestamp of the earliest pending event.
func (e *Engine) NextEventTime() (Time, bool) {
	for i := e.immHead; i < len(e.imm); i++ {
		if !e.pool[e.imm[i]].canceled {
			return e.pool[e.imm[i]].at, true
		}
	}
	for len(e.heap) > 0 {
		top := e.heap[0]
		if e.pool[top.idx].canceled {
			e.heapPop()
			e.canceled--
			e.freeSlot(top.idx)
			continue
		}
		return top.at, true
	}
	return 0, false
}

// AdvanceTo moves the clock forward to t without executing anything; used
// by the parallel runner to keep idle partitions in step. A t at or before
// the current time is an explicit no-op: the clock never moves backward.
// It panics if t would skip over a pending event.
func (e *Engine) AdvanceTo(t Time) {
	if t <= e.now {
		return
	}
	if at, ok := e.NextEventTime(); ok && at < t {
		panic(fmt.Sprintf("des: AdvanceTo(%v) would skip event at %v", t, at))
	}
	e.now = t
}

// Pending reports the number of scheduled (non-canceled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, he := range e.heap {
		if !e.pool[he.idx].canceled {
			n++
		}
	}
	for i := e.immHead; i < len(e.imm); i++ {
		if !e.pool[e.imm[i]].canceled {
			n++
		}
	}
	return n
}

// LiveProcs reports the number of spawned processes — goroutine Procs and
// continuation EventProcs — that have not finished. A non-zero value after
// Run returns with an empty queue indicates processes blocked forever
// (deadlock in the simulated system).
func (e *Engine) LiveProcs() int { return e.procs }

// Dispatches reports the total number of events dispatched by Run; scale
// tooling uses it to report events/sec.
func (e *Engine) Dispatches() uint64 { return e.dispatched }
