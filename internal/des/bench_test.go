package des

import "testing"

// BenchmarkEventThroughput measures raw event dispatch rate — the DES
// engine's fundamental cost (events/sec governs how large a simulated
// system is practical).
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(1, fire)
		}
	}
	b.ResetTimer()
	e.After(1, fire)
	e.Run(MaxTime)
}

// BenchmarkEngineEventChurn measures schedule+dispatch cost with a standing
// population of 256 timers, the realistic regime for cluster simulations
// where many devices and clients hold pending events simultaneously. This
// is the headline ns/event and allocs/event number for the kernel.
func BenchmarkEngineEventChurn(b *testing.B) {
	e := NewEngine(1)
	const standing = 256
	remaining := b.N
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < standing; i++ {
		period := Time(i%61 + 1)
		var fire func()
		fire = func() {
			if remaining > 0 {
				remaining--
				e.After(period, fire)
			}
		}
		e.After(period, fire)
	}
	e.Run(MaxTime)
}

// BenchmarkProcContextSwitch measures the goroutine-handoff cost of one
// process Wait — the price of the process-oriented (coroutine) API
// compared to raw callbacks.
func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkProcHandoff measures a full suspend/resume cycle of a simulated
// process including allocation accounting: every Wait schedules a wake,
// parks the goroutine, and hands control back to the engine loop.
func BenchmarkProcHandoff(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkEventProcHandoff measures a full suspend/resume cycle of a
// continuation-form process: every Wait stores the continuation, schedules
// an ep-carrying pooled event, and the engine loop invokes the
// continuation in place — no goroutine, no stack switch, no channel
// rendezvous. This is the ProcHandoff-equivalent number for the
// continuation execution form.
func BenchmarkEventProcHandoff(b *testing.B) {
	e := NewEngine(1)
	e.SpawnEvent("p", func(ep *EventProc) {
		n := 0
		var step func()
		step = func() {
			n++
			if n < b.N {
				ep.Wait(1, step)
			}
		}
		ep.Wait(1, step)
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkEventProcQueuePingPong is QueuePingPong in continuation form:
// two event procs exchange a token through a pair of queues with zero
// goroutine handoffs.
func BenchmarkEventProcQueuePingPong(b *testing.B) {
	e := NewEngine(1)
	ab := NewQueue[int](e, "ab")
	ba := NewQueue[int](e, "ba")
	e.SpawnEvent("a", func(ep *EventProc) {
		i := 0
		var step func(int)
		step = func(int) {
			i++
			if i < b.N {
				ab.Put(i)
				ba.GetE(ep, step)
			}
		}
		ab.Put(0)
		ba.GetE(ep, step)
	})
	e.SpawnEvent("b", func(ep *EventProc) {
		var step func(int)
		step = func(int) {
			ba.Put(0)
			ab.GetE(ep, step)
		}
		ab.GetE(ep, step)
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkEventProcResourceContention is ResourceContention in
// continuation form: 8 event procs cycle through a capacity-2 resource.
func BenchmarkEventProcResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 2)
	per := b.N / 8
	if per == 0 {
		per = 1
	}
	for i := 0; i < 8; i++ {
		e.SpawnEvent("u", func(ep *EventProc) {
			k := 0
			var step func()
			step = func() {
				k++
				if k < per {
					r.UseE(ep, 1, step)
				}
			}
			r.UseE(ep, 1, step)
		})
	}
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkResourceContention measures queued Acquire/Release cycles under
// contention.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 2)
	per := b.N / 8
	if per == 0 {
		per = 1
	}
	for i := 0; i < 8; i++ {
		e.Spawn("u", func(p *Proc) {
			for k := 0; k < per; k++ {
				r.Use(p, 1)
			}
		})
	}
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkShardedWindow measures the coupling layer itself: a token
// circles 4 shards through ParallelGroup.Send, so every hop is one full
// epoch — lane flush, safe-time computation, deterministic delivery merge,
// and window execution. Handlers are pre-bound, so the Send/deliver path
// must report 0 allocs/op in steady state.
func BenchmarkShardedWindow(b *testing.B) {
	const n = 4
	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = NewEngine(int64(i))
	}
	g := NewParallelGroup(100, engines...)
	g.SetWorkers(1)
	hops, target := 0, 64
	forward := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		next := (i + 1) % n
		forward[i] = func() {
			if hops < target {
				hops++
				g.Send(i, next, 100, forward[next])
			}
		}
	}
	// Warm the lane/pend/scratch buffers so the timed region is steady
	// state.
	engines[0].After(0, forward[0])
	g.Run(MaxTime)
	b.ReportAllocs()
	b.ResetTimer()
	hops, target = 0, b.N
	engines[0].After(0, forward[0])
	g.Run(MaxTime)
}

// BenchmarkShardedWindowWorkers is BenchmarkShardedWindow with the
// persistent worker pool engaged (4 workers): it adds the epoch-barrier
// channel wake and atomic countdown to every window, measuring the
// fixed synchronization cost a multi-core run pays per window.
func BenchmarkShardedWindowWorkers(b *testing.B) {
	const n = 4
	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = NewEngine(int64(i))
	}
	g := NewParallelGroup(100, engines...)
	g.SetWorkers(n)
	hops, target := 0, 64
	forward := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		next := (i + 1) % n
		forward[i] = func() {
			if hops < target {
				hops++
				g.Send(i, next, 100, forward[next])
			}
		}
	}
	engines[0].After(0, forward[0])
	g.Run(MaxTime)
	b.ResetTimer()
	hops, target = 0, b.N
	engines[0].After(0, forward[0])
	g.Run(MaxTime)
}

// BenchmarkQueuePingPong measures message-passing cost: two processes
// exchange a token through a pair of queues, the pattern under every
// simulated MPI point-to-point channel and server request queue.
func BenchmarkQueuePingPong(b *testing.B) {
	e := NewEngine(1)
	ab := NewQueue[int](e, "ab")
	ba := NewQueue[int](e, "ba")
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ab.Put(i)
			ba.Get(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ab.Get(p)
			ba.Put(i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(MaxTime)
}
