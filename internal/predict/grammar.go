package predict

import (
	"fmt"
	"strings"
)

// Grammar is a straight-line grammar inferred from a symbol sequence by
// iterative digram replacement (RePair, in the same grammar-compression
// family as the Sequitur algorithm Omnisc'IO builds on). Terminals are
// non-negative ints; nonterminals are negative.
type Grammar struct {
	// Root is the start production.
	Root []int
	// Rules maps nonterminal id (negative) to its right-hand side.
	Rules map[int][]int
}

// InferGrammar compresses seq by repeatedly replacing the most frequent
// digram with a fresh nonterminal until no digram occurs twice.
func InferGrammar(seq []int) *Grammar {
	g := &Grammar{Root: append([]int(nil), seq...), Rules: map[int][]int{}}
	next := -1
	for {
		// Count non-overlapping digrams.
		type digram [2]int
		counts := map[digram]int{}
		prevWasPair := false
		for i := 0; i+1 < len(g.Root); i++ {
			d := digram{g.Root[i], g.Root[i+1]}
			// Avoid counting overlapping occurrences of aa in aaa twice.
			if prevWasPair && i > 0 && g.Root[i-1] == g.Root[i] && g.Root[i] == g.Root[i+1] {
				prevWasPair = false
				continue
			}
			counts[d]++
			prevWasPair = true
		}
		best := digram{}
		bestN := 1
		for d, n := range counts {
			if n > bestN {
				best, bestN = d, n
			}
		}
		if bestN < 2 {
			break
		}
		nt := next
		next--
		g.Rules[nt] = []int{best[0], best[1]}
		// Replace left-to-right, non-overlapping.
		var out []int
		for i := 0; i < len(g.Root); {
			if i+1 < len(g.Root) && g.Root[i] == best[0] && g.Root[i+1] == best[1] {
				out = append(out, nt)
				i += 2
			} else {
				out = append(out, g.Root[i])
				i++
			}
		}
		g.Root = out
	}
	return g
}

// Expand reproduces the original sequence.
func (g *Grammar) Expand() []int {
	var out []int
	var expand func(sym int)
	expand = func(sym int) {
		if sym >= 0 {
			out = append(out, sym)
			return
		}
		for _, s := range g.Rules[sym] {
			expand(s)
		}
	}
	for _, s := range g.Root {
		expand(s)
	}
	return out
}

// Size returns the total number of symbols in the grammar (root plus all
// rule right-hand sides) — the compressed representation size.
func (g *Grammar) Size() int {
	n := len(g.Root)
	for _, rhs := range g.Rules {
		n += len(rhs)
	}
	return n
}

// CompressionRatio returns original length / grammar size for seq.
func CompressionRatio(seq []int) float64 {
	if len(seq) == 0 {
		return 1
	}
	g := InferGrammar(seq)
	return float64(len(seq)) / float64(g.Size())
}

// String renders the grammar for debugging.
func (g *Grammar) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "S -> %v\n", g.Root)
	for nt := -1; ; nt-- {
		rhs, ok := g.Rules[nt]
		if !ok {
			break
		}
		fmt.Fprintf(&b, "R%d -> %v\n", -nt, rhs)
	}
	return b.String()
}

// SeqPredictor predicts the next symbol of an I/O operation stream from
// variable-length context matching (the role Omnisc'IO's grammar model
// plays for I/O behavior prediction). Longer matched contexts win.
type SeqPredictor struct {
	maxCtx int
	counts map[string]map[int]int
}

// NewSeqPredictor creates a predictor using contexts up to maxCtx symbols.
func NewSeqPredictor(maxCtx int) *SeqPredictor {
	if maxCtx < 1 {
		maxCtx = 1
	}
	return &SeqPredictor{maxCtx: maxCtx, counts: map[string]map[int]int{}}
}

func ctxKey(ctx []int) string {
	var b strings.Builder
	for _, s := range ctx {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

// Observe trains on a full sequence.
func (sp *SeqPredictor) Observe(seq []int) {
	for i := 0; i < len(seq); i++ {
		for c := 1; c <= sp.maxCtx && c <= i; c++ {
			key := ctxKey(seq[i-c : i])
			m := sp.counts[key]
			if m == nil {
				m = map[int]int{}
				sp.counts[key] = m
			}
			m[seq[i]]++
		}
	}
}

// Predict returns the most likely next symbol after ctx, preferring the
// longest matching context. ok is false when no context matches.
func (sp *SeqPredictor) Predict(ctx []int) (next int, ok bool) {
	start := 0
	if len(ctx) > sp.maxCtx {
		start = len(ctx) - sp.maxCtx
	}
	for c := start; c < len(ctx); c++ { // longest context first
		m := sp.counts[ctxKey(ctx[c:])]
		if len(m) == 0 {
			continue
		}
		best, bestN := 0, 0
		for sym, n := range m {
			if n > bestN || (n == bestN && sym < best) {
				best, bestN = sym, n
			}
		}
		return best, true
	}
	return 0, false
}

// Accuracy replays seq, predicting each symbol from its prefix, and returns
// the fraction predicted correctly (skipping the first warm symbols).
func (sp *SeqPredictor) Accuracy(seq []int, warm int) float64 {
	if warm < 1 {
		warm = 1
	}
	total, correct := 0, 0
	for i := warm; i < len(seq); i++ {
		if got, ok := sp.Predict(seq[:i]); ok {
			total++
			if got == seq[i] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
