package des

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestMixedFormQueueFIFO checks that queue getters of both execution
// forms are served in strict arrival order: goroutine and continuation
// waiters share one FIFO, and each Put wakes exactly the longest-waiting
// getter regardless of its form.
func TestMixedFormQueueFIFO(t *testing.T) {
	run := func() []string {
		var log []string
		e := NewEngine(1)
		q := NewQueue[int](e, "q")
		// Getters arrive at 1ms, 2ms, 3ms, 4ms, alternating forms.
		e.Spawn("g0", func(p *Proc) {
			p.Wait(1 * Millisecond)
			v := q.Get(p)
			log = append(log, fmt.Sprintf("g0:%d", v))
		})
		e.SpawnEvent("e1", func(ep *EventProc) {
			ep.Wait(2*Millisecond, func() {
				q.GetE(ep, func(v int) {
					log = append(log, fmt.Sprintf("e1:%d", v))
				})
			})
		})
		e.Spawn("g2", func(p *Proc) {
			p.Wait(3 * Millisecond)
			v := q.Get(p)
			log = append(log, fmt.Sprintf("g2:%d", v))
		})
		e.SpawnEvent("e3", func(ep *EventProc) {
			ep.Wait(4*Millisecond, func() {
				q.GetE(ep, func(v int) {
					log = append(log, fmt.Sprintf("e3:%d", v))
				})
			})
		})
		e.After(10*Millisecond, func() {
			for i := 0; i < 4; i++ {
				q.Put(i)
			}
		})
		e.Run(MaxTime)
		if n := e.LiveProcs(); n != 0 {
			t.Fatalf("LiveProcs = %d after run, want 0", n)
		}
		return log
	}
	got := run()
	want := []string{"g0:0", "e1:1", "g2:2", "e3:3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wake order = %v, want %v", got, want)
	}
	if again := run(); !reflect.DeepEqual(again, got) {
		t.Errorf("mixed-form run not deterministic: %v vs %v", again, got)
	}
}

// TestMixedFormResourceFIFO checks that a contended resource grants units
// in strict arrival order across execution forms.
func TestMixedFormResourceFIFO(t *testing.T) {
	var order []string
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Wait(10 * Millisecond)
		r.Release()
	})
	hold := func(name string) {
		e.Spawn(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name)
			p.Wait(1 * Millisecond)
			r.Release()
		})
	}
	holdE := func(name string) {
		e.SpawnEvent(name, func(ep *EventProc) {
			r.AcquireE(ep, func() {
				order = append(order, name)
				ep.Wait(1*Millisecond, func() {
					r.Release()
				})
			})
		})
	}
	// Arrival order interleaves forms; spawn order is arrival order since
	// all contenders hit Acquire at time zero in spawn sequence.
	hold("g1")
	holdE("e2")
	hold("g3")
	holdE("e4")
	e.Run(MaxTime)
	want := []string{"g1", "e2", "g3", "e4"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("grant order = %v, want %v", order, want)
	}
}

// TestMixedFormSignalOrder checks that Fire wakes signal waiters of both
// forms in arrival order.
func TestMixedFormSignalOrder(t *testing.T) {
	var order []string
	e := NewEngine(1)
	s := NewSignal(e)
	e.Spawn("g0", func(p *Proc) {
		s.Wait(p)
		order = append(order, "g0")
	})
	e.SpawnEvent("e1", func(ep *EventProc) {
		s.WaitE(ep, func() {
			order = append(order, "e1")
		})
	})
	e.Spawn("g2", func(p *Proc) {
		s.Wait(p)
		order = append(order, "g2")
	})
	e.After(1*Millisecond, s.Fire)
	e.Run(MaxTime)
	want := []string{"g0", "e1", "g2"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("wake order = %v, want %v", order, want)
	}
}

// TestEventProcWaitGroup checks WaitE across both spawn forms: an event
// proc joins on work done by goroutine and event children.
func TestEventProcWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	var done Time
	e.SpawnEvent("parent", func(ep *EventProc) {
		for i := 1; i <= 3; i++ {
			i := i
			wg.Add(1)
			if i%2 == 0 {
				e.Spawn("gchild", func(p *Proc) {
					p.Wait(Time(i) * Millisecond)
					wg.Done()
				})
			} else {
				e.SpawnEvent("echild", func(c *EventProc) {
					c.Wait(Time(i)*Millisecond, wg.Done)
				})
			}
		}
		wg.WaitE(ep, func() {
			done = ep.Now()
		})
	})
	e.Run(MaxTime)
	if done != 3*Millisecond {
		t.Errorf("join completed at %v, want 3ms", done)
	}
	if n := e.LiveProcs(); n != 0 {
		t.Errorf("LiveProcs = %d, want 0", n)
	}
}

// TestEventProcAutoTerminate checks the lifecycle rule: a step that
// returns without arming a blocking point finishes the process, and
// LiveProcs tracks event procs exactly like goroutine procs.
func TestEventProcAutoTerminate(t *testing.T) {
	e := NewEngine(1)
	steps := 0
	e.SpawnEvent("p", func(ep *EventProc) {
		steps++
		ep.Wait(1*Millisecond, func() {
			steps++
			// No blocking call: the proc terminates here.
		})
	})
	if n := e.LiveProcs(); n != 1 {
		t.Fatalf("LiveProcs before run = %d, want 1", n)
	}
	e.Run(MaxTime)
	if steps != 2 {
		t.Errorf("steps = %d, want 2", steps)
	}
	if n := e.LiveProcs(); n != 0 {
		t.Errorf("LiveProcs after run = %d, want 0", n)
	}
}

// TestEventProcDoubleArmPanics checks that arming two blocking points in
// one step — which would corrupt the single-continuation invariant — is
// rejected loudly.
func TestEventProcDoubleArmPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from double arm")
		}
		if !strings.Contains(fmt.Sprint(r), "blocked twice") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e := NewEngine(1)
	e.SpawnEvent("p", func(ep *EventProc) {
		ep.Wait(1*Millisecond, func() {})
		ep.Wait(2*Millisecond, func() {})
	})
	e.Run(MaxTime)
}

// TestEventProcWaitUntil checks the synchronous past-deadline fast path.
func TestEventProcWaitUntil(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.SpawnEvent("p", func(ep *EventProc) {
		ep.WaitUntil(0, func() { // already due: runs synchronously
			ep.WaitUntil(5*Millisecond, func() {
				at = ep.Now()
			})
		})
	})
	e.Run(MaxTime)
	if at != 5*Millisecond {
		t.Errorf("resumed at %v, want 5ms", at)
	}
}
