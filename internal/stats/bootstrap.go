package stats

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// BootstrapCI estimates a percentile-bootstrap confidence interval for the
// mean of xs: it draws resamples with replacement, computes each resample
// mean, and returns the (1-level)/2 and 1-(1-level)/2 quantiles of the
// resample-mean distribution. The resampling PRNG is self-contained and
// seeded, so the interval is bit-identical across runs and Go versions —
// the property the campaign runner's determinism guarantee rests on.
//
// Degenerate inputs collapse gracefully: an empty sample yields {0, 0} and
// a single observation yields {x, x}.
func BootstrapCI(xs []float64, resamples int, level float64, seed int64) CI {
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	ci := CI{Level: level}
	switch len(xs) {
	case 0:
		return ci
	case 1:
		ci.Lo, ci.Hi = xs[0], xs[0]
		return ci
	}
	if resamples <= 0 {
		resamples = 1000
	}
	state := uint64(seed)
	means := make([]float64, resamples)
	n := len(xs)
	for i := range means {
		var s float64
		for j := 0; j < n; j++ {
			s += xs[splitmix64(&state)%uint64(n)]
		}
		means[i] = s / float64(n)
	}
	alpha := (1 - level) / 2
	ci.Lo = Quantile(means, alpha)
	ci.Hi = Quantile(means, 1-alpha)
	return ci
}

// splitmix64 advances a SplitMix64 state and returns the next output, a
// tiny deterministic PRNG independent of math/rand's algorithm choices.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
