package validate

import (
	"fmt"
	"strings"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/trace"
)

// maxRetained caps the violations kept verbatim; further ones are only
// counted, so a systematically broken run cannot exhaust memory.
const maxRetained = 64

// Invariants is a runtime checker wired into one simulation run. Create
// it with Attach before spawning workload processes, drive the engine to
// completion, then call Finish for the verdict.
//
// Checked while the simulation runs:
//
//   - time-monotonic: the engine's dispatch clock never goes backwards.
//   - record-time: every trace record has 0 <= Start <= End.
//   - record-causality: per (rank, layer), POSIX and MPI-IO records do
//     not overlap — each rank issues these ops sequentially, so the next
//     op must start at or after the previous one ended.
//   - op-time: every PFS client op event has 0 <= Start <= End.
//
// Checked at Finish:
//
//   - deadlock-free: no live processes remain after the engine drains.
//   - shutdown-balance: no pending events, empty MDS and OST queues,
//     device utilizations within [0, 1].
//   - write-conservation: bytes written at the PFS client boundary equal
//     bytes arriving at the OSTs (armed only on fault-free runs — lost
//     RPCs legitimately break equality — and catches leaked write-behind
//     buffers, double writes, and striping/accounting bugs).
//   - read-conservation: client-read bytes equal OST-read bytes (armed
//     only on fault-free runs with readahead disabled, since readahead
//     legitimately over-fetches and cache hits under-fetch).
//   - layer-ordering: MPI-IO requested bytes never exceed POSIX bytes,
//     and POSIX bytes never exceed PFS-client bytes (aggregation hole
//     padding and data sieving only ever inflate the lower layer).
type Invariants struct {
	eng *des.Engine
	fs  *pfs.FS

	lastDispatch des.Time
	dispatches   uint64
	records      uint64
	clientOps    uint64
	ostEvents    uint64

	// Byte tallies per layer boundary.
	mpiioRead, mpiioWrite   int64
	posixRead, posixWrite   int64
	clientRead, clientWrite int64
	ostRead, ostWrite       int64

	// Per-(rank, layer) last record end, for causality.
	lastEnd map[[2]int]des.Time

	vios     []Violation
	dropped  uint64
	finished bool

	// ostSkew is a test-only fault: it is added to the observed OST write
	// tally before the conservation check, simulating an accounting bug so
	// tests can prove the checker catches one. Never set outside tests.
	ostSkew int64
}

// Attach installs invariant hooks on the engine, the file system, and the
// collector (col may be nil when no trace-layer checks are wanted). It
// claims the engine trace hook, the PFS op/OST observers, and the
// collector hook; callers needing additional observers should compose
// them around OnRecord with trace.Hooks.
func Attach(e *des.Engine, fs *pfs.FS, col *trace.Collector) *Invariants {
	inv := &Invariants{eng: e, fs: fs, lastEnd: map[[2]int]des.Time{}}
	e.SetTraceHook(inv.onDispatch)
	fs.SetOpObserver(inv.onClientOp)
	fs.SetOSTObserver(inv.onOSTEvent)
	if col != nil {
		col.SetHook(inv.OnRecord)
	}
	return inv
}

// violatef records one violation, keeping at most maxRetained verbatim.
func (inv *Invariants) violatef(invariant, format string, args ...interface{}) {
	if len(inv.vios) >= maxRetained {
		inv.dropped++
		return
	}
	inv.vios = append(inv.vios, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// onDispatch checks engine-clock monotonicity on every dispatched event.
func (inv *Invariants) onDispatch(at des.Time, what string) {
	inv.dispatches++
	if at < inv.lastDispatch {
		inv.violatef("time-monotonic", "dispatch %q at %v after %v", what, at, inv.lastDispatch)
	}
	inv.lastDispatch = at
}

// OnRecord checks one trace record; it is installed as the collector hook
// by Attach and exported so callers can recompose it with other hooks via
// trace.Hooks.
func (inv *Invariants) OnRecord(r trace.Record) {
	inv.records++
	if r.Start < 0 || r.End < r.Start {
		inv.violatef("record-time", "rank %d %s %s %q: start %v end %v", r.Rank, r.Layer, r.Op, r.Path, r.Start, r.End)
	}
	switch r.Layer {
	case trace.LayerPOSIX, trace.LayerMPIIO:
		k := [2]int{r.Rank, int(r.Layer)}
		if prev, ok := inv.lastEnd[k]; ok && r.Start < prev {
			inv.violatef("record-causality", "rank %d %s %s %q starts %v before previous op ended %v",
				r.Rank, r.Layer, r.Op, r.Path, r.Start, prev)
		}
		if r.End > inv.lastEnd[k] {
			inv.lastEnd[k] = r.End
		}
	}
	switch {
	case r.Layer == trace.LayerPOSIX && r.Op == "write":
		inv.posixWrite += r.Size
	case r.Layer == trace.LayerPOSIX && r.Op == "read":
		inv.posixRead += r.Size
	// MPI-IO data ops: mpi_file_write, mpi_file_write_at, mpi_file_write_all
	// (collective records carry the rank's own contribution) and the read
	// equivalents. Open/close records carry no payload.
	case r.Layer == trace.LayerMPIIO && strings.HasPrefix(r.Op, "mpi_file_write"):
		inv.mpiioWrite += r.Size
	case r.Layer == trace.LayerMPIIO && strings.HasPrefix(r.Op, "mpi_file_read"):
		inv.mpiioRead += r.Size
	}
}

// onClientOp tallies the PFS-client boundary.
func (inv *Invariants) onClientOp(ev pfs.OpEvent) {
	inv.clientOps++
	if ev.Start < 0 || ev.End < ev.Start {
		inv.violatef("op-time", "client %s %s %q: start %v end %v", ev.Client, ev.Op, ev.Path, ev.Start, ev.End)
	}
	switch ev.Op {
	case "write":
		inv.clientWrite += ev.Size
	case "read":
		inv.clientRead += ev.Size
	}
}

// onOSTEvent tallies the OST boundary.
func (inv *Invariants) onOSTEvent(ev pfs.OSTEvent) {
	inv.ostEvents++
	if ev.Size < 0 {
		inv.violatef("op-time", "ost%d negative access size %d", ev.OST, ev.Size)
	}
	if ev.Write {
		inv.ostWrite += ev.Size
	} else {
		inv.ostRead += ev.Size
	}
}

// faultFree reports whether the run saw no injected faults and no client
// retries/timeouts/degradation — the condition under which byte equality
// across layer boundaries must hold exactly.
func (inv *Invariants) faultFree() bool {
	if len(inv.fs.FaultLog()) != 0 {
		return false
	}
	cs := inv.fs.ClientStatsTotal()
	return cs.Retries == 0 && cs.TimedOutRPCs == 0 && cs.FailedRPCs == 0 && cs.DegradedReads == 0
}

// Finish runs the end-of-simulation checks and returns every violation
// observed during the run. Call it after the engine has drained (for
// workloads driven by iolang.Run, after it returns). Finish is
// idempotent: the shutdown checks run once.
func (inv *Invariants) Finish() []Violation {
	if inv.finished {
		return inv.vios
	}
	inv.finished = true

	if n := inv.eng.LiveProcs(); n != 0 {
		inv.violatef("deadlock-free", "%d live processes after engine drain", n)
	}
	if n := inv.eng.Pending(); n != 0 {
		inv.violatef("shutdown-balance", "%d events still pending", n)
	}
	if md := inv.fs.MDSStats(); md.QueueLen != 0 {
		inv.violatef("shutdown-balance", "MDS queue length %d at shutdown", md.QueueLen)
	}
	for _, st := range inv.fs.OSTStats() {
		if st.QueueLen != 0 {
			inv.violatef("shutdown-balance", "ost%d queue length %d at shutdown", st.ID, st.QueueLen)
		}
		if st.Utilization < 0 || st.Utilization > 1.000001 {
			inv.violatef("shutdown-balance", "ost%d utilization %.6f outside [0, 1]", st.ID, st.Utilization)
		}
		if st.BytesRead < 0 || st.BytesWritten < 0 {
			inv.violatef("shutdown-balance", "ost%d negative byte counters: read %d written %d", st.ID, st.BytesRead, st.BytesWritten)
		}
	}

	ostWrite := inv.ostWrite + inv.ostSkew
	ff := inv.faultFree()
	if ff {
		if inv.clientWrite != ostWrite {
			inv.violatef("write-conservation", "client wrote %d bytes but OSTs received %d (Δ %d; leaked write-behind buffer or accounting bug)",
				inv.clientWrite, ostWrite, inv.clientWrite-ostWrite)
		}
		if inv.fs.Config().ClientReadahead == 0 && inv.clientRead != inv.ostRead {
			inv.violatef("read-conservation", "client read %d bytes but OSTs served %d (Δ %d)",
				inv.clientRead, inv.ostRead, inv.clientRead-inv.ostRead)
		}
		if inv.mpiioWrite > inv.posixWrite {
			inv.violatef("layer-ordering", "MPI-IO wrote %d bytes but POSIX only %d (aggregation must not lose bytes)",
				inv.mpiioWrite, inv.posixWrite)
		}
		if inv.mpiioRead > inv.posixRead {
			inv.violatef("layer-ordering", "MPI-IO read %d bytes but POSIX only %d (sieving must not lose bytes)",
				inv.mpiioRead, inv.posixRead)
		}
		if inv.posixWrite > inv.clientWrite {
			inv.violatef("layer-ordering", "POSIX wrote %d bytes but PFS clients only %d", inv.posixWrite, inv.clientWrite)
		}
		if inv.posixRead > inv.clientRead {
			inv.violatef("layer-ordering", "POSIX read %d bytes but PFS clients only %d", inv.posixRead, inv.clientRead)
		}
	} else {
		// With faults, bytes may legitimately be lost between the client
		// and the OSTs, but never invented.
		if ostWrite > inv.clientWrite {
			inv.violatef("write-conservation", "OSTs received %d bytes but clients only wrote %d", ostWrite, inv.clientWrite)
		}
	}
	if inv.dropped > 0 {
		// Appended directly: the summary line must not itself be dropped.
		inv.vios = append(inv.vios, Violation{
			Invariant: "checker",
			Detail:    fmt.Sprintf("%d further violations dropped (cap %d)", inv.dropped, maxRetained),
		})
	}
	return inv.vios
}

// Violations returns what has been recorded so far without running the
// shutdown checks.
func (inv *Invariants) Violations() []Violation { return inv.vios }

// CheckStats reports how much evidence the checker saw; a run that checks
// zero records validates nothing, so callers should surface these counts.
type CheckStats struct {
	Dispatches   uint64
	TraceRecords uint64
	ClientOps    uint64
	OSTEvents    uint64
}

// Stats returns the evidence counters.
func (inv *Invariants) Stats() CheckStats {
	return CheckStats{
		Dispatches:   inv.dispatches,
		TraceRecords: inv.records,
		ClientOps:    inv.clientOps,
		OSTEvents:    inv.ostEvents,
	}
}
