package surveystats

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"pioeval/internal/io500"
)

// tinyGrid is a 2-device x 2-tier x 1-rank-count survey small enough
// for unit tests: four submissions.
func tinyGrid() Grid {
	return Grid{
		Devices: []string{"hdd", "ssd"},
		Tiers:   []string{"direct", "nodelocal"},
		Ranks:   []int{2},
		Base: io500.Config{
			EasyBlock: 1 << 20, EasyXfer: 256 << 10,
			HardXfer: 47008, HardOps: 4,
			EasyFiles: 8, HardFiles: 4,
		},
		Seed:    42,
		Workers: 1,
	}
}

func TestGridPointsOrderAndSeeds(t *testing.T) {
	g := tinyGrid()
	pts := g.Points()
	if len(pts) != 4 {
		t.Fatalf("grid expands to %d points, want 4", len(pts))
	}
	// Device-major, then tier, then ranks.
	want := []struct{ dev, tier string }{
		{"hdd", "direct"}, {"hdd", "nodelocal"}, {"ssd", "direct"}, {"ssd", "nodelocal"},
	}
	seeds := map[int64]bool{}
	for i, p := range pts {
		if p.Device != want[i].dev || p.Tier != want[i].tier {
			t.Errorf("point %d = %s/%s, want %s/%s", i, p.Device, p.Tier, want[i].dev, want[i].tier)
		}
		if seeds[p.Seed] {
			t.Errorf("point %d reuses seed %d", i, p.Seed)
		}
		seeds[p.Seed] = true
	}
}

func TestGridValidate(t *testing.T) {
	bad := []Grid{
		{},
		{Devices: []string{"hdd"}, Tiers: []string{"direct"}},
		{Devices: []string{"tape"}, Tiers: []string{"direct"}, Ranks: []int{2}},
		{Devices: []string{"hdd"}, Tiers: []string{"cloud"}, Ranks: []int{2}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("grid %d validated, want error", i)
		}
	}
	if err := tinyGrid().Validate(); err != nil {
		t.Errorf("tiny grid rejected: %v", err)
	}
}

func TestBuildCorpusDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		g := tinyGrid()
		g.Workers = workers
		c, err := BuildCorpus(g)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		rep := &Report{Corpus: c, Analysis: a}
		if err := rep.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := render(1)
	if got := render(4); got != base {
		t.Fatal("survey output differs between workers=1 and workers=4")
	}
}

func TestAnalyzeShapes(t *testing.T) {
	c, err := BuildCorpus(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	names := MetricNames()
	if len(names) != len(io500.PhaseOrder)+3 {
		t.Fatalf("metric names = %d, want %d", len(names), len(io500.PhaseOrder)+3)
	}
	if a.N != 4 || len(a.Metrics) != len(names) {
		t.Fatalf("analysis N=%d metrics=%d", a.N, len(a.Metrics))
	}
	if len(a.Pearson) != len(names) || len(a.Spearman) != len(names) {
		t.Fatalf("matrix rows = %d/%d, want %d", len(a.Pearson), len(a.Spearman), len(names))
	}
	for i := range names {
		if len(a.Pearson[i]) != len(names) {
			t.Fatalf("pearson row %d has %d cols", i, len(a.Pearson[i]))
		}
		// Self-correlation is exactly 1 for non-degenerate metrics.
		if math.Abs(a.Pearson[i][i]-1) > 1e-9 {
			t.Errorf("pearson[%d][%d] = %f, want 1", i, i, a.Pearson[i][i])
		}
		if math.Abs(a.Spearman[i][i]-1) > 1e-9 {
			t.Errorf("spearman[%d][%d] = %f, want 1", i, i, a.Spearman[i][i])
		}
		for j := range names {
			if math.Abs(a.Pearson[i][j]-a.Pearson[j][i]) > 1e-9 {
				t.Errorf("pearson asymmetric at (%d,%d)", i, j)
			}
		}
	}
	if len(a.Bottlenecks) != a.N {
		t.Fatalf("bottlenecks = %d, want %d", len(a.Bottlenecks), a.N)
	}
	// Every submission distribution must be populated.
	for _, m := range a.Metrics {
		if m.N != a.N {
			t.Errorf("metric %s summarized %d values, want %d", m.Metric, m.N, a.N)
		}
	}
}

// synthetic builds an io500.Result with uniform phase values except the
// named phase, which is depressed by the given factor.
func synthetic(weak string, factor float64) *io500.Result {
	r := &io500.Result{}
	r.Config.Device, r.Config.Tier, r.Config.Ranks = "hdd", "direct", 2
	for _, n := range io500.PhaseOrder {
		v := 10.0
		if n == weak {
			v = 10.0 * factor
		}
		r.Phases = append(r.Phases, io500.Phase{Name: n, Kind: io500.PhaseKind(n), Value: v})
	}
	r.BWScore, r.MDScore, r.Score = io500.Score(r.Values())
	return r
}

func TestBottleneckAttribution(t *testing.T) {
	// Three healthy sites and one crippled in ior-hard-write: the
	// analysis must attribute exactly that phase, and lifting it to the
	// corpus median must recover score.
	c := &Corpus{
		Grid: Grid{Devices: []string{"hdd"}, Tiers: []string{"direct"}, Ranks: []int{2}},
		Submissions: []*io500.Result{
			synthetic("", 1), synthetic("", 1), synthetic("", 1),
			synthetic(io500.IorHardWrite, 0.01),
		},
	}
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Bottlenecks[3]
	if b.Phase != io500.IorHardWrite {
		t.Fatalf("attributed %q, want %s", b.Phase, io500.IorHardWrite)
	}
	if b.Gain <= 0 || b.Lifted <= b.Score {
		t.Fatalf("lift gained %.4f (score %.4f -> %.4f), want positive", b.Gain, b.Score, b.Lifted)
	}
	// The healthy sites sit at the median everywhere: no attribution.
	for i := 0; i < 3; i++ {
		if a.Bottlenecks[i].Phase != "" {
			t.Errorf("healthy submission %d attributed %q", i, a.Bottlenecks[i].Phase)
		}
	}
	if len(a.BottleneckCounts) != 1 || a.BottleneckCounts[0] != (PhaseCount{io500.IorHardWrite, 1}) {
		t.Errorf("bottleneck tally = %+v", a.BottleneckCounts)
	}
}

func TestCSVWellFormed(t *testing.T) {
	c, err := BuildCorpus(tinyGrid())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := (&Report{Corpus: c, Analysis: a}).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(c.Submissions) {
		t.Fatalf("csv rows = %d, want %d", len(rows), 1+len(c.Submissions))
	}
	wantCols := 6 + len(MetricNames()) + 2
	for i, row := range rows {
		if len(row) != wantCols {
			t.Fatalf("csv row %d has %d cols, want %d", i, len(row), wantCols)
		}
	}
	if !strings.HasPrefix(strings.Join(rows[0], ","), "index,device,tier,compress,ranks,seed,ior-easy-write") {
		t.Errorf("csv header = %v", rows[0])
	}
}

func TestAnalyzeEmptyCorpus(t *testing.T) {
	if _, err := Analyze(&Corpus{}); err == nil {
		t.Error("empty corpus analyzed, want error")
	}
}
