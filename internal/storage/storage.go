// Package storage defines the pluggable storage-target seam between the
// POSIX layer and the backing store. A Target is the data-path surface
// extracted from pfs.Client — open/create/close, positional reads and
// writes, fsync, and the metadata operations — so everything above it
// (posixio, and transitively mpiio, hdf, iolang, the workload generators)
// programs against an interface instead of a concrete client. Three
// implementations ship: DirectPFS (every op straight to the parallel file
// system; behavior-identical to the pre-seam client path), TieredBB (a
// write-back I/O-node burst buffer in front of the PFS, the Figure-1
// tiering experiment), and NodeLocal (node-local scratch with no MDS
// round-trips). Provider mints per-compute-node Targets of one tier over
// a shared cluster, so harnesses select the backend with a single string.
// Stages (middleware implementing the Stage interface, e.g. the
// internal/reduce compressors) stack on top of any tier, turning the
// closed set of targets into a composable pipeline.
package storage

import (
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// Tier names understood by NewProvider, the campaign `tier` axis, and the
// cmd/simfs -tier flag.
const (
	TierDirect    = "direct"
	TierBB        = "bb"
	TierNodeLocal = "nodelocal"
)

// FileInfo and Layout alias the PFS metadata types: the seam changes who
// services an operation, not what file metadata looks like.
type (
	FileInfo = pfs.FileInfo
	Layout   = pfs.Layout
)

// Namespace and fault errors re-exported at the seam, so the layers above
// Target classify failures with errors.Is without importing the PFS client
// package. Identity is preserved (these are the same error values), so
// targets backed by the PFS need no translation.
var (
	ErrExist          = pfs.ErrExist
	ErrNotExist       = pfs.ErrNotExist
	ErrIsDir          = pfs.ErrIsDir
	ErrNotDir         = pfs.ErrNotDir
	ErrNotEmpty       = pfs.ErrNotEmpty
	ErrOSTDown        = pfs.ErrOSTDown
	ErrMDSUnavailable = pfs.ErrMDSUnavailable
	ErrTimeout        = pfs.ErrTimeout
	ErrClosedHandle   = pfs.ErrClosedHandle
)

// DegradedReadError aliases the PFS degraded-read error so POSIX-level
// short-read accounting works against any target without a pfs import.
type DegradedReadError = pfs.DegradedReadError

// Handle is an open file on some storage target. The simulation carries
// no payload bytes, so reads and writes take only geometry; they block in
// simulated time for however long the target's media and transport cost.
type Handle interface {
	// Path returns the path the handle was opened with.
	Path() string
	// Write writes size bytes at offset off.
	Write(p *des.Proc, off, size int64) error
	// Read reads size bytes at offset off.
	Read(p *des.Proc, off, size int64) error
	// Fsync makes previously written data durable on the target's terms
	// (for a tiered target that means drained to the backing store).
	Fsync(p *des.Proc) error
	// Close releases the handle, flushing any buffered writes.
	Close(p *des.Proc) error
}

// Stage is middleware in the storage pipeline: it wraps the Target below
// it (a tier, or another stage) and returns a Target with the stage's
// transformation applied, so filters and tiers compose —
// compress(bb(direct)), compress(nodelocal). One Stage instance is shared
// by every node's wrapped target, which lets it aggregate whole-run
// accounting; Wrap is called once per node at Target-mint time.
type Stage interface {
	// Name identifies the stage for stats and error messages.
	Name() string
	// Wrap returns the stage's view over the target below for one node.
	Wrap(node string, t Target) Target
	// Flush completes any work the stage buffered (called by
	// Provider.Finalize outermost-first, before the tier below drains).
	Flush(p *des.Proc) error
}

// StageStats is the logical-vs-physical accounting a stage exposes: bytes
// the application asked for versus bytes forwarded to the layer below,
// plus the simulated CPU time the transformation charged. Conservation
// across a stage boundary is LogicalWritten ≈ PhysicalWritten × ratio.
type StageStats struct {
	// LogicalWritten / LogicalRead are application-visible bytes.
	LogicalWritten int64
	LogicalRead    int64
	// PhysicalWritten / PhysicalRead are bytes forwarded below the stage.
	PhysicalWritten int64
	PhysicalRead    int64
	// WriteOps / ReadOps count successful data operations through the stage.
	WriteOps int64
	ReadOps  int64
	// CompressSeconds / DecompressSeconds are simulated CPU time charged.
	CompressSeconds   float64
	DecompressSeconds float64
}

// Ratio is the achieved reduction factor on the write path
// (logical / physical), or 1 when nothing was written.
func (s StageStats) Ratio() float64 {
	if s.PhysicalWritten <= 0 {
		return 1
	}
	return float64(s.LogicalWritten) / float64(s.PhysicalWritten)
}

// StageAccounting is implemented by stages that track logical-vs-physical
// byte flow; the validate invariants type-assert against it to check
// conservation across each stage boundary without importing the stage's
// package.
type StageAccounting interface {
	StageStats() StageStats
}

// Target is the data-path surface extracted from pfs.Client: file
// open/create with stripe hints, stat and the namespace operations. One
// Target belongs to one simulated compute node.
type Target interface {
	// Create creates path with the given stripe hints (0 selects the
	// target's defaults) and returns an open handle.
	Create(p *des.Proc, path string, stripeCount int, stripeSize int64) (Handle, error)
	// Open opens an existing file.
	Open(p *des.Proc, path string) (Handle, error)
	// Stat returns file metadata.
	Stat(p *des.Proc, path string) (FileInfo, error)
	// Mkdir creates a directory.
	Mkdir(p *des.Proc, path string) error
	// Rmdir removes an empty directory.
	Rmdir(p *des.Proc, path string) error
	// Unlink removes a file.
	Unlink(p *des.Proc, path string) error
	// Readdir lists directory entries in sorted order.
	Readdir(p *des.Proc, path string) ([]string, error)
}
