package pioeval_test

import (
	"reflect"
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/monitor"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

// resilientCluster is the SSD deployment with the default client
// resilience policy (timeouts, bounded retry with backoff, degraded
// reads) and full-width striping so every rank's checkpoint touches
// every OST — a crashed target is always on the I/O path.
func resilientCluster() pfs.Config {
	cfg := ssdCluster()
	cfg.DefaultStripeCount = 8
	cfg.Resilience = pfs.DefaultResilience()
	return cfg
}

// ckptOutcome is everything one fault-injected checkpoint run produces,
// for both benchmarking and determinism checks.
type ckptOutcome struct {
	Report   workload.CheckpointReport
	Stats    pfs.ClientStats
	FaultLog []pfs.FaultRecord
	Failure  monitor.FailureReport
}

// runCrashCheckpoint executes the checkpoint-under-OST-crash scenario:
// 4 ranks dump 4 MB each over 10 compute/checkpoint steps while OST 1
// crashes at 300 ms and recovers at 600 ms. The crash window (300 ms) is
// shorter than the per-RPC retry budget (~355 ms with the default
// policy), so a resilient client rides it out with zero failed RPCs.
func runCrashCheckpoint(seed int64, inject bool) ckptOutcome {
	e := des.NewEngine(seed)
	fs := pfs.New(e, resilientCluster())
	det := monitor.NewFailureDetector(e, fs, 10*des.Millisecond, 2, 1200*des.Millisecond)
	if inject {
		_, err := faults.Run(e, fs, faults.Campaign{Events: []faults.Event{
			{At: 300 * des.Millisecond, Kind: faults.OSTCrash, OST: 1},
			{At: 600 * des.Millisecond, Kind: faults.OSTRecover, OST: 1},
		}})
		if err != nil {
			panic(err)
		}
	}
	h := workload.NewHarness(e, fs, 4, "cn", nil)
	rep := workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks: 4, BytesPerRank: 4 << 20, Steps: 10,
		ComputeTime: 150 * des.Millisecond, TransferSize: 1 << 20,
		ReuseFile: true,
	})
	return ckptOutcome{
		Report:   rep,
		Stats:    fs.ClientStatsTotal(),
		FaultLog: fs.FaultLog(),
		Failure:  det.Report(),
	}
}

// BenchmarkResilienceOSTCrash measures a checkpoint workload riding out
// an OST crash/recovery window on the resilient client path. Reported
// metrics: nominal and faulted checkpoint bandwidth, the worst step
// stall, retry volume, and the monitor's detection/repair times.
func BenchmarkResilienceOSTCrash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runCrashCheckpoint(501, false)
		faulted := runCrashCheckpoint(501, true)
		worst := des.Time(0)
		for _, d := range faulted.Report.StepIOTime {
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(base.Report.EffectiveMBps, "nominal_MBps")
		b.ReportMetric(faulted.Report.EffectiveMBps, "faulted_MBps")
		b.ReportMetric(float64(worst)/1e6, "worst_step_ms")
		b.ReportMetric(float64(faulted.Stats.Retries), "retries")
		b.ReportMetric(float64(faulted.Stats.FailedRPCs), "failed_rpcs")
		b.ReportMetric(float64(faulted.Failure.MeanTTD)/1e6, "mttd_ms")
		b.ReportMetric(float64(faulted.Failure.MeanTTR)/1e6, "mttr_ms")
	}
}

// BenchmarkResilienceMDSBlips measures an mdtest-style metadata storm
// through two MDS unavailability windows: creates stall during the blips
// and the retry path absorbs them without failed operations.
func BenchmarkResilienceMDSBlips(b *testing.B) {
	run := func(inject bool) (workload.MDTestReport, pfs.ClientStats) {
		e := des.NewEngine(502)
		fs := pfs.New(e, resilientCluster())
		if inject {
			// Two short outages inside the ~8ms create phase; each is far
			// below the ~355ms meta retry budget, so ops stall but succeed.
			_, err := faults.Run(e, fs, faults.Campaign{Events: []faults.Event{
				{At: 2 * des.Millisecond, Kind: faults.MDSDown},
				{At: 4 * des.Millisecond, Kind: faults.MDSUp},
				{At: 6 * des.Millisecond, Kind: faults.MDSDown},
				{At: 7 * des.Millisecond, Kind: faults.MDSUp},
			}})
			if err != nil {
				b.Fatal(err)
			}
		}
		h := workload.NewHarness(e, fs, 4, "cn", nil)
		rep := workload.RunMDTest(h, workload.MDTestConfig{Ranks: 4, FilesPerRank: 256})
		return rep, fs.ClientStatsTotal()
	}
	for i := 0; i < b.N; i++ {
		base, _ := run(false)
		blip, st := run(true)
		b.ReportMetric(base.CreatesPerS, "nominal_creates/s")
		b.ReportMetric(blip.CreatesPerS, "blip_creates/s")
		b.ReportMetric(float64(st.Retries), "retries")
		b.ReportMetric(float64(st.FailedRPCs), "failed_rpcs")
	}
}

// TestResilienceDeterminism is the acceptance check for reproducible
// fault campaigns: two same-seed runs of the crash scenario produce
// identical step timelines, retry counts, fault logs, and MTTR.
func TestResilienceDeterminism(t *testing.T) {
	a := runCrashCheckpoint(77, true)
	b := runCrashCheckpoint(77, true)
	if !reflect.DeepEqual(a.Report.StepIOTime, b.Report.StepIOTime) {
		t.Errorf("step timelines diverged:\n%v\n%v", a.Report.StepIOTime, b.Report.StepIOTime)
	}
	if a.Stats != b.Stats {
		t.Errorf("client stats diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.FaultLog, b.FaultLog) {
		t.Errorf("fault logs diverged:\n%v\n%v", a.FaultLog, b.FaultLog)
	}
	if a.Failure != b.Failure {
		t.Errorf("failure reports diverged:\n%+v\n%+v", a.Failure, b.Failure)
	}
	if a.Stats.Retries == 0 {
		t.Error("crash scenario should have exercised the retry path")
	}
}

// TestResilienceOSTCrashRecovery is the acceptance check for the crash
// window's shape: checkpoint step time dips (stretches) while the OST is
// down, no RPC exhausts its retry budget, no step loses data, and
// post-recovery steps return to within 10% of nominal.
func TestResilienceOSTCrashRecovery(t *testing.T) {
	out := runCrashCheckpoint(501, true)
	rep := out.Report
	if rep.IOErrors != 0 || out.Stats.FailedRPCs != 0 {
		t.Fatalf("crash window exceeded the retry budget: %d io errors, %d failed rpcs",
			rep.IOErrors, out.Stats.FailedRPCs)
	}
	if out.Stats.Retries == 0 || out.Stats.TimedOutRPCs == 0 {
		t.Fatalf("expected retries and RPC timeouts during the window, got %+v", out.Stats)
	}
	nominal := rep.StepIOTime[0] // completes before the crash at 300ms
	worst := des.Time(0)
	for _, d := range rep.StepIOTime {
		if d > worst {
			worst = d
		}
	}
	if worst < 2*nominal {
		t.Errorf("crash window should stall a step: worst %v vs nominal %v", worst, nominal)
	}
	// Recovery: the last three steps run long after the OST returned.
	for i := len(rep.StepIOTime) - 3; i < len(rep.StepIOTime); i++ {
		d := rep.StepIOTime[i]
		if float64(d) > 1.1*float64(nominal) {
			t.Errorf("step %d = %v, want within 10%% of nominal %v after recovery", i, d, nominal)
		}
	}
	// The monitor saw exactly one incident and measured sane times.
	if out.Failure.Incidents != 1 || out.Failure.Unresolved != 0 {
		t.Fatalf("failure report = %+v, want one closed incident", out.Failure)
	}
	if out.Failure.MeanTTD <= 0 || out.Failure.MeanTTD > 20*des.Millisecond {
		t.Errorf("MTTD = %v, want within two 10ms heartbeats", out.Failure.MeanTTD)
	}
	if out.Failure.MeanTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", out.Failure.MeanTTR)
	}
	if len(out.FaultLog) != 2 {
		t.Errorf("fault log = %v, want crash + recover", out.FaultLog)
	}
}

// TestResilienceStochasticSoak drives a random crash/repair process over
// a long metadata+data workload and checks the invariants that matter:
// the run terminates (no deadlock), every injection applied cleanly, and
// the client never panics — failures surface as typed errors only.
func TestResilienceStochasticSoak(t *testing.T) {
	e := des.NewEngine(503)
	fs := pfs.New(e, resilientCluster())
	sched, err := faults.Run(e, fs, faults.Campaign{
		Name: "soak",
		Stochastic: &faults.Stochastic{
			MTBF: 400 * des.Millisecond, MTTR: 60 * des.Millisecond,
			Horizon: 2 * des.Second, OSTs: []int{1, 3, 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := workload.NewHarness(e, fs, 4, "cn", nil)
	rep := workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks: 4, BytesPerRank: 64 << 20, Steps: 12,
		ComputeTime: 50 * des.Millisecond, TransferSize: 4 << 20,
		ReuseFile: true,
	})
	if errs := sched.Errs(); len(errs) != 0 {
		t.Errorf("injection errors: %v", errs)
	}
	if len(sched.Log()) == 0 {
		t.Fatal("soak generated no fault events")
	}
	st := fs.ClientStatsTotal()
	if st.Retries == 0 && st.TimedOutRPCs == 0 {
		t.Error("soak never hit the fault windows; the scenario is too easy")
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	// Long overlapping outages may exhaust some budgets; that must show
	// up as accounted errors, never as lost accounting.
	if rep.IOErrors == 0 && st.FailedRPCs > 0 {
		t.Errorf("failed RPCs (%d) must surface in the checkpoint report", st.FailedRPCs)
	}
	t.Logf("soak: %d fault events, stats %+v, io errors %d over %d steps",
		len(sched.Log()), st, rep.IOErrors, len(rep.StepIOTime))
}
