package storage

import (
	"errors"
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/pfs"
)

// singleOST builds a one-OST cluster so fault injection is all-or-nothing
// per drain segment: a crashed OST fails every stripe of every write.
func singleOST(seed int64, resilient bool) (*des.Engine, *pfs.FS) {
	e := des.NewEngine(seed)
	cfg := pfs.DefaultConfig()
	cfg.NumOSS, cfg.OSTsPerOSS = 1, 1
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = 1
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultHDD() }
	if resilient {
		cfg.Resilience = pfs.DefaultResilience()
	}
	return e, pfs.New(e, cfg)
}

func inject(t *testing.T, e *des.Engine, fs *pfs.FS, spec string) {
	t.Helper()
	c, err := faults.ParseCampaign(spec)
	if err != nil {
		t.Fatalf("parse faults: %v", err)
	}
	if _, err := faults.Run(e, fs, c); err != nil {
		t.Fatalf("run faults: %v", err)
	}
}

// TestDrainErrorOnOSTCrash: the OST dies mid-drain with no resilience
// policy, so the remaining staged segments are lost. WaitDrained must
// report them as a typed *burstbuffer.DrainError wrapping ErrOSTDown, and
// the accounting must conserve bytes exactly: absorbed = drained + lost,
// nothing double-counted.
func TestDrainErrorOnOSTCrash(t *testing.T) {
	e, fs := singleOST(11, false)
	// The 32 MiB burst stages quickly onto NVMe; the HDD-backed drain is
	// still in flight at 50ms when the only OST crashes for good.
	inject(t, e, fs, "ostcrash:0@50ms")
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := pr.Target("cn0")
	var waitErr error
	e.Spawn("app", func(p *des.Proc) {
		h, cerr := tgt.Create(p, "/ckpt", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		for off := int64(0); off < 32<<20; off += 1 << 20 {
			_ = h.Write(p, off, 1<<20)
		}
		waitErr = h.Fsync(p) // = WaitDrained
		_ = h.Close(p)
		for _, bb := range pr.Buffers() {
			bb.Shutdown()
		}
	})
	e.Run(des.MaxTime)

	if waitErr == nil {
		t.Fatal("WaitDrained returned nil after losing segments")
	}
	var de *burstbuffer.DrainError
	if !errors.As(waitErr, &de) {
		t.Fatalf("WaitDrained error = %T %v, want *burstbuffer.DrainError", waitErr, waitErr)
	}
	if !errors.Is(waitErr, pfs.ErrOSTDown) {
		t.Errorf("drain error should unwrap to ErrOSTDown, got %v", waitErr)
	}
	st := pr.Buffers()[0].Stats()
	if st.DrainErrors == 0 || st.LostBytes == 0 {
		t.Fatalf("no loss recorded: %+v", st)
	}
	if st.Drained+st.LostBytes != st.Absorbed {
		t.Fatalf("byte conservation broken: drained %d + lost %d != absorbed %d",
			st.Drained, st.LostBytes, st.Absorbed)
	}
	if st.Used != 0 {
		t.Errorf("staging not emptied: %d bytes", st.Used)
	}
	if de.Bytes != st.LostBytes || de.Segments != st.DrainErrors {
		t.Errorf("DrainError %+v disagrees with stats %+v", de, st)
	}
	// Only the successfully drained bytes may appear on the PFS.
	if _, w := fs.TotalBytes(); w != st.Drained {
		t.Errorf("PFS received %d bytes, drain accounted %d", w, st.Drained)
	}
}

// TestDrainRecoversWithResilience: the OST crashes and recovers inside the
// drain client's retry budget, so WaitDrained returns nil, every byte
// drains exactly once, and nothing is double-counted.
func TestDrainRecoversWithResilience(t *testing.T) {
	e, fs := singleOST(12, true)
	inject(t, e, fs, "ostcrash:0@50ms; ostrecover:0@80ms")
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := pr.Target("cn0")
	var waitErr error
	e.Spawn("app", func(p *des.Proc) {
		h, cerr := tgt.Create(p, "/ckpt", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		for off := int64(0); off < 32<<20; off += 1 << 20 {
			_ = h.Write(p, off, 1<<20)
		}
		waitErr = h.Fsync(p)
		_ = h.Close(p)
		for _, bb := range pr.Buffers() {
			bb.Shutdown()
		}
	})
	e.Run(des.MaxTime)

	if waitErr != nil {
		t.Fatalf("WaitDrained after recovery = %v, want nil", waitErr)
	}
	st := pr.Buffers()[0].Stats()
	if st.Drained != st.Absorbed || st.Absorbed != 32<<20 {
		t.Fatalf("drain incomplete: %+v", st)
	}
	if st.DrainErrors != 0 || st.LostBytes != 0 {
		t.Fatalf("spurious loss: %+v", st)
	}
	if st.Used != 0 {
		t.Errorf("staging not emptied: %d bytes", st.Used)
	}
}

// TestReadThroughMissDuringMDSWindow: a read-through miss that needs a
// fresh MDS open during an MDS outage must surface ErrMDSUnavailable to
// the caller and be recorded in the buffer's read-error counters.
func TestReadThroughMissDuringMDSWindow(t *testing.T) {
	e, fs := singleOST(13, false)
	// MDS goes down at 200ms and comes back at 400ms.
	inject(t, e, fs, "mdsdown@200ms; mdsup@400ms")
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Seed "/data" on the PFS directly, outside the buffer, so the later
	// read-through miss has no cached drain handle.
	seedc := fs.NewClient("seed")
	e.Spawn("seed", func(p *des.Proc) {
		h, cerr := seedc.Create(p, "/data", 0, 0)
		if cerr != nil {
			t.Errorf("seed create: %v", cerr)
			return
		}
		_ = h.Write(p, 0, 4<<20)
		_ = h.Close(p)
	})

	tgt := pr.Target("cn0")
	var insideErr, afterErr error
	e.Spawn("app", func(p *des.Proc) {
		p.Wait(100 * des.Millisecond)   // let the seeding client finish first
		h, oerr := tgt.Open(p, "/data") // while the MDS is still up
		if oerr != nil {
			t.Errorf("open: %v", oerr)
			return
		}
		p.Wait(200 * des.Millisecond) // now inside the MDS window (t=300ms)
		insideErr = h.Read(p, 0, 1<<20)
		p.Wait(200 * des.Millisecond) // window over
		afterErr = h.Read(p, 0, 1<<20)
		_ = h.Close(p)
		for _, bb := range pr.Buffers() {
			bb.Shutdown()
		}
	})
	e.Run(des.MaxTime)

	if !errors.Is(insideErr, pfs.ErrMDSUnavailable) {
		t.Fatalf("read inside MDS window = %v, want ErrMDSUnavailable", insideErr)
	}
	if afterErr != nil {
		t.Fatalf("read after MDS recovery = %v, want nil", afterErr)
	}
	st := pr.Buffers()[0].Stats()
	if st.ReadErrors != 1 {
		t.Errorf("ReadErrors = %d, want 1", st.ReadErrors)
	}
	if !errors.Is(st.LastReadError, pfs.ErrMDSUnavailable) {
		t.Errorf("LastReadError = %v", st.LastReadError)
	}
	if st.MissReads != 2<<20 {
		t.Errorf("MissReads = %d, want both read-through attempts tallied", st.MissReads)
	}
}

// TestDrainErrorIsSticky: once segments are lost, every later WaitDrained
// keeps reporting the loss — recovery of the OST does not resurrect bytes
// that were dropped from staging.
func TestDrainErrorIsSticky(t *testing.T) {
	e, fs := singleOST(14, false)
	inject(t, e, fs, "ostcrash:0@50ms; ostrecover:0@5s")
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := pr.Target("cn0")
	var first, second error
	e.Spawn("app", func(p *des.Proc) {
		h, cerr := tgt.Create(p, "/ckpt", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		for off := int64(0); off < 32<<20; off += 1 << 20 {
			_ = h.Write(p, off, 1<<20)
		}
		first = h.Fsync(p)
		p.Wait(10 * des.Second) // OST long since recovered
		second = h.Fsync(p)
		_ = h.Close(p)
		for _, bb := range pr.Buffers() {
			bb.Shutdown()
		}
	})
	e.Run(des.MaxTime)

	if first == nil || second == nil {
		t.Fatalf("sticky drain error lost: first %v, second %v", first, second)
	}
	var de1, de2 *burstbuffer.DrainError
	if !errors.As(first, &de1) || !errors.As(second, &de2) {
		t.Fatalf("errors not typed: %T, %T", first, second)
	}
	if de2.Bytes != de1.Bytes {
		t.Errorf("loss changed between syncs: %d then %d bytes", de1.Bytes, de2.Bytes)
	}
}
