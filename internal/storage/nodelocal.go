package storage

import (
	"fmt"
	gopath "path"
	"sort"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
)

// NodeLocal models node-local scratch storage: a block device directly
// attached to one compute node with a private in-memory namespace. There
// are no MDS round-trips and no network hops — metadata operations cost
// zero simulated time and data operations pay only local device service
// time. It is the "scratch SSD per node" configuration emerging HPC
// workloads (DL training caches, staging directories) lean on.
type NodeLocal struct {
	name  string
	dev   *blockdev.Device
	files map[string]*localNode

	bytesRead    int64
	bytesWritten int64
}

type localNode struct {
	isDir  bool
	size   int64
	layout Layout
}

// NewNodeLocal creates a scratch target for compute node name backed by
// the given device model.
func NewNodeLocal(e *des.Engine, name string, model blockdev.Model, queueDepth int) *NodeLocal {
	return &NodeLocal{
		name:  name,
		dev:   blockdev.NewDevice(e, "scratch."+name, model, queueDepth),
		files: map[string]*localNode{"/": {isDir: true}},
	}
}

// cleanLocal normalizes a path to the absolute, slash-rooted form the
// namespace map is keyed by.
func cleanLocal(p string) string {
	if p == "" {
		return "/"
	}
	if p[0] != '/' {
		p = "/" + p
	}
	return gopath.Clean(p)
}

// parent verifies the parent directory of path exists.
func (t *NodeLocal) parent(path string) error {
	dir := gopath.Dir(path)
	n, ok := t.files[dir]
	if !ok {
		return fmt.Errorf("scratch %s: %s: %w", t.name, dir, ErrNotExist)
	}
	if !n.isDir {
		return fmt.Errorf("scratch %s: %s: %w", t.name, dir, ErrNotDir)
	}
	return nil
}

// Create creates path in the local namespace (zero simulated cost) and
// returns an open handle. The stripe hints are recorded in the layout for
// Stat fidelity but carry no striping semantics on a single local device.
func (t *NodeLocal) Create(p *des.Proc, path string, stripeCount int, stripeSize int64) (Handle, error) {
	path = cleanLocal(path)
	if _, ok := t.files[path]; ok {
		return nil, fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrExist)
	}
	if err := t.parent(path); err != nil {
		return nil, err
	}
	t.files[path] = &localNode{layout: Layout{StripeCount: stripeCount, StripeSize: stripeSize}}
	return &localHandle{t: t, path: path}, nil
}

// Open opens an existing local file.
func (t *NodeLocal) Open(p *des.Proc, path string) (Handle, error) {
	path = cleanLocal(path)
	n, ok := t.files[path]
	if !ok {
		return nil, fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotExist)
	}
	if n.isDir {
		return nil, fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrIsDir)
	}
	return &localHandle{t: t, path: path}, nil
}

// Stat returns local file metadata.
func (t *NodeLocal) Stat(p *des.Proc, path string) (FileInfo, error) {
	path = cleanLocal(path)
	n, ok := t.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotExist)
	}
	return FileInfo{Path: path, IsDir: n.isDir, Size: n.size, Layout: n.layout}, nil
}

// Mkdir creates a local directory.
func (t *NodeLocal) Mkdir(p *des.Proc, path string) error {
	path = cleanLocal(path)
	if _, ok := t.files[path]; ok {
		return fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrExist)
	}
	if err := t.parent(path); err != nil {
		return err
	}
	t.files[path] = &localNode{isDir: true}
	return nil
}

// Rmdir removes an empty local directory.
func (t *NodeLocal) Rmdir(p *des.Proc, path string) error {
	path = cleanLocal(path)
	n, ok := t.files[path]
	if !ok {
		return fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotExist)
	}
	if !n.isDir {
		return fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotDir)
	}
	for child := range t.files {
		if child != path && gopath.Dir(child) == path {
			return fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotEmpty)
		}
	}
	delete(t.files, path)
	return nil
}

// Unlink removes a local file.
func (t *NodeLocal) Unlink(p *des.Proc, path string) error {
	path = cleanLocal(path)
	n, ok := t.files[path]
	if !ok {
		return fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotExist)
	}
	if n.isDir {
		return fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrIsDir)
	}
	delete(t.files, path)
	return nil
}

// Readdir lists a local directory in sorted order (map iteration order
// must never leak into simulation behavior).
func (t *NodeLocal) Readdir(p *des.Proc, path string) ([]string, error) {
	path = cleanLocal(path)
	n, ok := t.files[path]
	if !ok {
		return nil, fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotExist)
	}
	if !n.isDir {
		return nil, fmt.Errorf("scratch %s: %s: %w", t.name, path, ErrNotDir)
	}
	var names []string
	for child := range t.files {
		if child != path && gopath.Dir(child) == path {
			names = append(names, gopath.Base(child))
		}
	}
	sort.Strings(names)
	return names, nil
}

// LocalStats is a snapshot of one NodeLocal target's counters.
type LocalStats struct {
	Name         string
	BytesRead    int64
	BytesWritten int64
	Files        int
}

// Stats returns the target's counters.
func (t *NodeLocal) Stats() LocalStats {
	return LocalStats{
		Name: t.name, BytesRead: t.bytesRead, BytesWritten: t.bytesWritten,
		Files: len(t.files) - 1, // exclude the root
	}
}

// localHandle is an open file on a NodeLocal target.
type localHandle struct {
	t      *NodeLocal
	path   string
	closed bool
}

// Path returns the handle's path.
func (h *localHandle) Path() string { return h.path }

// Write pays local device write time and extends the file size.
func (h *localHandle) Write(p *des.Proc, off, size int64) error {
	if h.closed {
		return fmt.Errorf("%w: write %s", ErrClosedHandle, h.path)
	}
	if size <= 0 {
		return nil
	}
	h.t.dev.Access(p, blockdev.Request{Offset: off, Size: size, Write: true})
	h.t.bytesWritten += size
	if n := h.t.files[h.path]; n != nil && off+size > n.size {
		n.size = off + size
	}
	return nil
}

// Read pays local device read time.
func (h *localHandle) Read(p *des.Proc, off, size int64) error {
	if h.closed {
		return fmt.Errorf("%w: read %s", ErrClosedHandle, h.path)
	}
	if size <= 0 {
		return nil
	}
	h.t.dev.Access(p, blockdev.Request{Offset: off, Size: size})
	h.t.bytesRead += size
	return nil
}

// Fsync is free: this model writes through to the local device, so there
// is no write-back cache to flush.
func (h *localHandle) Fsync(p *des.Proc) error {
	if h.closed {
		return fmt.Errorf("%w: fsync %s", ErrClosedHandle, h.path)
	}
	return nil
}

// Close marks the handle closed; later I/O returns ErrClosedHandle.
func (h *localHandle) Close(p *des.Proc) error {
	h.closed = true
	return nil
}
