package monitor

import (
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// Incident is one detected OST outage: when the target actually went
// down, when the detector noticed, and when it observed recovery.
type Incident struct {
	OST int
	// DownAt is the true crash time (from the file system's fault state).
	DownAt des.Time
	// DetectedAt is when the detector declared the OST failed, after
	// Threshold consecutive missed heartbeats.
	DetectedAt des.Time
	// RecoveredAt is when the detector first saw the OST healthy again;
	// zero while the outage is still open.
	RecoveredAt des.Time
}

// Open reports whether the incident is still in progress.
func (in Incident) Open() bool { return in.RecoveredAt == 0 }

// MTTD is this incident's time to detect.
func (in Incident) MTTD() des.Time { return in.DetectedAt - in.DownAt }

// MTTR is this incident's observed time to repair (detection to recovery).
func (in Incident) MTTR() des.Time {
	if in.Open() {
		return 0
	}
	return in.RecoveredAt - in.DetectedAt
}

// FailureDetector polls per-OST health like a missed-heartbeat watchdog:
// every Interval it "pings" each OST, and after Threshold consecutive
// missed beats it declares the target failed and opens an Incident. It is
// the monitoring half of a resilience experiment — the fault campaign
// creates outages, the detector measures how long they take to see and
// to clear.
type FailureDetector struct {
	fs        *pfs.FS
	interval  des.Time
	threshold int
	missed    map[int]int
	open      map[int]int // OST id -> index into incidents
	incidents []Incident
	stopped   bool
}

// NewFailureDetector starts a detector on fs that heartbeats every
// interval and declares failure after threshold consecutive misses
// (threshold <= 0 means 1: declare on the first missed beat). Like
// Sampler it must be bounded by `until` to let the event queue drain.
func NewFailureDetector(e *des.Engine, fs *pfs.FS, interval des.Time, threshold int, until des.Time) *FailureDetector {
	if interval <= 0 {
		panic("monitor: non-positive heartbeat interval")
	}
	if threshold <= 0 {
		threshold = 1
	}
	d := &FailureDetector{
		fs: fs, interval: interval, threshold: threshold,
		missed: map[int]int{}, open: map[int]int{},
	}
	e.Spawn("monitor.failuredetector", func(p *des.Proc) {
		for !d.stopped && p.Now() <= until {
			d.beat(p.Now())
			p.Wait(interval)
		}
	})
	return d
}

// beat is one heartbeat round over every OST.
func (d *FailureDetector) beat(now des.Time) {
	for _, st := range d.fs.OSTStats() {
		if st.Down {
			d.missed[st.ID]++
			if _, isOpen := d.open[st.ID]; !isOpen && d.missed[st.ID] >= d.threshold {
				downAt := now
				if since, ok := d.fs.OSTDownSince(st.ID); ok {
					downAt = since
				}
				d.open[st.ID] = len(d.incidents)
				d.incidents = append(d.incidents, Incident{OST: st.ID, DownAt: downAt, DetectedAt: now})
			}
			continue
		}
		d.missed[st.ID] = 0
		if idx, isOpen := d.open[st.ID]; isOpen {
			d.incidents[idx].RecoveredAt = now
			delete(d.open, st.ID)
		}
	}
}

// Stop ends heartbeating after the current interval.
func (d *FailureDetector) Stop() { d.stopped = true }

// Incidents returns every detected outage, in detection order.
func (d *FailureDetector) Incidents() []Incident { return d.incidents }

// FailureReport aggregates detector outcomes for a run.
type FailureReport struct {
	Incidents  int
	Unresolved int
	// MeanTTD is the mean detection delay (crash to declaration); the
	// heartbeat model bounds it by interval*threshold.
	MeanTTD des.Time
	// MeanTTR is the mean declared-to-recovered time over closed incidents.
	MeanTTR des.Time
}

// Report summarizes the incident log into MTTD/MTTR metrics.
func (d *FailureDetector) Report() FailureReport {
	r := FailureReport{Incidents: len(d.incidents)}
	var ttd, ttr des.Time
	closed := 0
	for _, in := range d.incidents {
		ttd += in.MTTD()
		if in.Open() {
			r.Unresolved++
			continue
		}
		ttr += in.MTTR()
		closed++
	}
	if len(d.incidents) > 0 {
		r.MeanTTD = ttd / des.Time(len(d.incidents))
	}
	if closed > 0 {
		r.MeanTTR = ttr / des.Time(closed)
	}
	return r
}

// IdentifyStraggler names the most likely straggler OST from a sample
// series: a degraded target stays busy longest for its share of the
// striped work, so it shows the highest utilization. Returns -1 when the
// sampler saw nothing.
func IdentifyStraggler(samples []Sample) int {
	if len(samples) == 0 {
		return -1
	}
	last := samples[len(samples)-1]
	best, bestU := -1, 0.0
	for _, st := range last.OSTs {
		if st.Utilization > bestU {
			best, bestU = st.ID, st.Utilization
		}
	}
	return best
}
