package pfs

import (
	"pioeval/internal/blockdev"
	"pioeval/internal/des"
)

// ost is one object storage target: a block device plus an object
// allocation map that lays objects out contiguously so that sequential
// logical access stays sequential on the media (important for the HDD
// model's seek behaviour).
type ost struct {
	id      int
	ossNode string
	dev     *blockdev.Device

	objBase  map[string]int64 // object key -> physical base offset
	allocPtr int64

	readOps, writeOps uint64

	// Crash state (fault injection): a down OST answers no requests.
	down      bool
	downSince des.Time
}

func newOST(id int, ossNode string, dev *blockdev.Device) *ost {
	return &ost{id: id, ossNode: ossNode, dev: dev, objBase: make(map[string]int64)}
}

// physOffset maps (object, logical offset) to a stable physical offset,
// allocating a generous contiguous region per object on first touch.
func (o *ost) physOffset(obj string, logical, size int64) int64 {
	base, ok := o.objBase[obj]
	if !ok {
		base = o.allocPtr
		o.objBase[obj] = base
		// Reserve 1 GiB of address space per object; the device model
		// only cares about contiguity, not capacity.
		o.allocPtr += 1 << 30
	}
	return base + logical
}

// access performs one object I/O on the backing device in simulated time.
func (o *ost) access(p *des.Proc, obj string, logical, size int64, write bool) {
	phys := o.physOffset(obj, logical, size)
	o.dev.Access(p, blockdev.Request{Offset: phys, Size: size, Write: write})
	if write {
		o.writeOps++
	} else {
		o.readOps++
	}
}

// accessE is the continuation form of access.
func (o *ost) accessE(ep *des.EventProc, obj string, logical, size int64, write bool, k func()) {
	phys := o.physOffset(obj, logical, size)
	o.dev.AccessE(ep, blockdev.Request{Offset: phys, Size: size, Write: write}, func() {
		if write {
			o.writeOps++
		} else {
			o.readOps++
		}
		k()
	})
}

// OSTStats is a snapshot of one OST's counters.
type OSTStats struct {
	ID           int
	OSSNode      string
	ReadOps      uint64
	WriteOps     uint64
	BytesRead    int64
	BytesWritten int64
	Utilization  float64
	QueueLen     int
	PeakQueue    int
	// Down reports the crash state; Slowdown the degradation factor
	// (1 = nominal). Failure detectors key off these.
	Down     bool
	Slowdown float64
}

func (o *ost) stats() OSTStats {
	st := o.dev.Stats()
	return OSTStats{
		ID:           o.id,
		OSSNode:      o.ossNode,
		ReadOps:      o.readOps,
		WriteOps:     o.writeOps,
		BytesRead:    st.BytesRead,
		BytesWritten: st.BytesWritten,
		Utilization:  o.dev.Utilization(),
		QueueLen:     st.QueueLen,
		PeakQueue:    st.PeakQueue,
		Down:         o.down,
		Slowdown:     o.dev.Slowdown(),
	}
}
