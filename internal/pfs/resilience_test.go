package pfs

import (
	"errors"
	"testing"

	"pioeval/internal/des"
)

// resilientConfig is fastConfig plus an aggressive retry policy.
func resilientConfig() Config {
	cfg := fastConfig()
	cfg.Resilience = ResiliencePolicy{
		RPCTimeout:    5 * des.Millisecond,
		MaxRetries:    4,
		BackoffBase:   2 * des.Millisecond,
		BackoffMax:    20 * des.Millisecond,
		JitterFrac:    0.2,
		DegradedReads: true,
	}
	return cfg
}

func TestClosedHandleReturnsTypedErrors(t *testing.T) {
	runClient(t, fastConfig(), func(p *des.Proc, c *Client) {
		h, err := c.Create(p, "/f", 1, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Write(p, 0, 4096); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := h.Close(p); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := h.Write(p, 0, 4096); !errors.Is(err, ErrClosedHandle) {
			t.Errorf("write on closed handle: err = %v, want ErrClosedHandle", err)
		}
		if err := h.Read(p, 0, 4096); !errors.Is(err, ErrClosedHandle) {
			t.Errorf("read on closed handle: err = %v, want ErrClosedHandle", err)
		}
		if err := h.Close(p); err != nil {
			t.Errorf("double close: err = %v, want nil", err)
		}
	})
}

func TestCrashedOSTFailsFastWithoutPolicy(t *testing.T) {
	cfg := fastConfig() // zero-value policy: fail fast, no retries
	e := des.NewEngine(5)
	fs := New(e, cfg)
	c := fs.NewClient("c0")
	e.Spawn("w", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 1, 1<<20)
		if err := fs.CrashOST(h.Layout().OSTs[0]); err != nil {
			t.Errorf("crash: %v", err)
		}
		if err := h.Write(p, 0, 1<<20); !errors.Is(err, ErrOSTDown) {
			t.Errorf("write to crashed OST: err = %v, want ErrOSTDown", err)
		}
		if err := h.Read(p, 0, 4096); !errors.Is(err, ErrOSTDown) {
			t.Errorf("read from crashed OST: err = %v, want ErrOSTDown", err)
		}
	})
	e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		t.Fatal("deadlock")
	}
	st := c.Stats()
	if st.Retries != 0 {
		t.Errorf("fail-fast policy retried %d times", st.Retries)
	}
	if st.FailedRPCs == 0 {
		t.Error("failed RPCs should be counted")
	}
}

func TestRetrySucceedsAfterRecovery(t *testing.T) {
	cfg := resilientConfig()
	e := des.NewEngine(6)
	fs := New(e, cfg)
	c := fs.NewClient("c0")
	var werr error
	e.Spawn("w", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 1, 1<<20)
		_ = fs.CrashOST(h.Layout().OSTs[0])
		// Recovery lands inside the retry budget (~5ms timeout + backoff).
		e.After(12*des.Millisecond, func() { _ = fs.RecoverOST(h.Layout().OSTs[0]) })
		werr = h.Write(p, 0, 1<<20)
		_ = h.Close(p)
	})
	e.Run(des.MaxTime)
	if werr != nil {
		t.Fatalf("write should succeed after recovery, got %v", werr)
	}
	st := c.Stats()
	if st.Retries == 0 || st.TimedOutRPCs == 0 {
		t.Errorf("expected retries and timeouts, got %+v", st)
	}
	if st.FailedRPCs != 0 {
		t.Errorf("no RPC should exhaust its budget, got %+v", st)
	}
	log := fs.FaultLog()
	if len(log) != 2 || log[0].Kind != "ost-crash" || log[1].Kind != "ost-recover" {
		t.Errorf("fault log = %+v", log)
	}
}

func TestDegradedReadAccountsPartialData(t *testing.T) {
	cfg := resilientConfig()
	cfg.Resilience.MaxRetries = 1 // exhaust quickly; the OST stays down
	e := des.NewEngine(7)
	fs := New(e, cfg)
	c := fs.NewClient("c0")
	e.Spawn("r", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 4, 1<<20)
		if err := h.Write(p, 0, 8<<20); err != nil {
			t.Fatalf("seed write: %v", err)
		}
		downOST := h.Layout().OSTs[1]
		_ = fs.CrashOST(downOST)
		err := h.Read(p, 0, 8<<20)
		var deg *DegradedReadError
		if !errors.As(err, &deg) {
			t.Fatalf("read = %v, want *DegradedReadError", err)
		}
		if !errors.Is(err, ErrOSTDown) {
			t.Error("degraded read should unwrap to ErrOSTDown")
		}
		// OST 1 of 4 holds 2MB of the 8MB request.
		if deg.Missing != 2<<20 || deg.Requested != 8<<20 {
			t.Errorf("degraded accounting: missing %d of %d", deg.Missing, deg.Requested)
		}
	})
	e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		t.Fatal("deadlock")
	}
	st := c.Stats()
	if st.DegradedReads != 1 || st.BytesMissing != 2<<20 {
		t.Errorf("client degraded counters = %+v", st)
	}
}

func TestMDSUnavailabilityWindow(t *testing.T) {
	cfg := resilientConfig()
	e := des.NewEngine(8)
	fs := New(e, cfg)
	c := fs.NewClient("c0")
	var early, late error
	e.Spawn("m", func(p *des.Proc) {
		fs.SetMDSAvailable(false)
		// Comes back inside the retry budget.
		e.After(10*des.Millisecond, func() { fs.SetMDSAvailable(true) })
		early = c.Mkdir(p, "/d1")
		late = c.Mkdir(p, "/d2")
	})
	e.Run(des.MaxTime)
	if early != nil || late != nil {
		t.Fatalf("mkdirs should succeed after MDS recovery: %v / %v", early, late)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Errorf("expected meta retries, got %+v", st)
	}
	// Exhausted budget surfaces ErrMDSUnavailable.
	fs2 := New(des.NewEngine(9), cfg)
	c2 := fs2.NewClient("c0")
	var err error
	fs2.Engine().Spawn("m", func(p *des.Proc) {
		fs2.SetMDSAvailable(false)
		err = c2.Mkdir(p, "/d")
	})
	fs2.Engine().Run(des.MaxTime)
	if !errors.Is(err, ErrMDSUnavailable) {
		t.Errorf("mkdir during outage: err = %v, want ErrMDSUnavailable", err)
	}
}

func TestTransientErrorsRetriedToSuccess(t *testing.T) {
	cfg := resilientConfig()
	cfg.Resilience.MaxRetries = 8 // 0.3^9 per RPC: budget exhaustion implausible
	e := des.NewEngine(10)
	fs := New(e, cfg)
	if err := fs.SetTransientErrorRate(1.5); err == nil {
		t.Error("rate > 1 should be rejected")
	}
	if err := fs.SetTransientErrorRate(0.3); err != nil {
		t.Fatal(err)
	}
	c := fs.NewClient("c0")
	failures := 0
	e.Spawn("w", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 2, 1<<20)
		for i := 0; i < 16; i++ {
			if err := h.Write(p, int64(i)<<20, 1<<20); err != nil {
				failures++
			}
		}
		_ = h.Close(p)
	})
	e.Run(des.MaxTime)
	st := c.Stats()
	if st.Retries == 0 {
		t.Error("30% transient error rate should force retries")
	}
	// With 8 retries per RPC, the chance of exhausting the budget is
	// 0.3^9 per RPC — all writes should have landed.
	if failures != 0 || st.FailedRPCs != 0 {
		t.Errorf("writes failed: %d (stats %+v)", failures, st)
	}
}

func TestResilienceDeterministicTimelines(t *testing.T) {
	run := func() (des.Time, ClientStats) {
		cfg := resilientConfig()
		e := des.NewEngine(77)
		fs := New(e, cfg)
		_ = fs.SetTransientErrorRate(0.2)
		c := fs.NewClient("c0")
		e.Spawn("w", func(p *des.Proc) {
			h, _ := c.Create(p, "/f", 4, 1<<20)
			_ = fs.CrashOST(2)
			e.After(30*des.Millisecond, func() { _ = fs.RecoverOST(2) })
			for i := 0; i < 8; i++ {
				_ = h.Write(p, int64(i)*(4<<20), 4<<20)
			}
			_ = h.Close(p)
		})
		end := e.Run(des.MaxTime)
		return end, c.Stats()
	}
	end1, st1 := run()
	end2, st2 := run()
	if end1 != end2 || st1 != st2 {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", end1, st1, end2, st2)
	}
	if st1.Retries == 0 {
		t.Error("scenario should have exercised retries")
	}
}
