package faults

import (
	"reflect"
	"testing"

	"pioeval/internal/des"
)

// fakeTarget records injections without a file system behind it.
type fakeTarget struct {
	osts      int
	down      map[int]bool
	mdsUp     bool
	transient float64
	link      float64
	slow      map[int]float64
	log       []string
}

func newFake(osts int) *fakeTarget {
	return &fakeTarget{osts: osts, down: map[int]bool{}, mdsUp: true, slow: map[int]float64{}}
}

func (f *fakeTarget) NumOSTs() int { return f.osts }
func (f *fakeTarget) CrashOST(id int) error {
	f.down[id] = true
	f.log = append(f.log, "crash")
	return nil
}
func (f *fakeTarget) RecoverOST(id int) error {
	f.down[id] = false
	f.log = append(f.log, "recover")
	return nil
}
func (f *fakeTarget) InjectOSTSlowdown(id int, factor float64) error {
	f.slow[id] = factor
	return nil
}
func (f *fakeTarget) SetMDSAvailable(up bool) { f.mdsUp = up }
func (f *fakeTarget) SetTransientErrorRate(rate float64) error {
	f.transient = rate
	return nil
}
func (f *fakeTarget) SetLinkDegradation(factor float64) error {
	f.link = factor
	return nil
}

func TestParseCampaign(t *testing.T) {
	c, err := ParseCampaign("ostcrash:1@100ms; ostrecover:1@700ms; slowdown:3x10@2s; mdsdown@1s; mdsup@1500ms; transient:0.01@0s; linkdegrade:4@3s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 100 * des.Millisecond, Kind: OSTCrash, OST: 1},
		{At: 700 * des.Millisecond, Kind: OSTRecover, OST: 1},
		{At: 2 * des.Second, Kind: OSTSlowdown, OST: 3, Factor: 10},
		{At: des.Second, Kind: MDSDown},
		{At: 1500 * des.Millisecond, Kind: MDSUp},
		{At: 0, Kind: TransientRate, Factor: 0.01},
		{At: 3 * des.Second, Kind: LinkDegrade, Factor: 4},
	}
	if !reflect.DeepEqual(c.Events, want) {
		t.Fatalf("parsed %+v\nwant %+v", c.Events, want)
	}
}

func TestParseCampaignErrors(t *testing.T) {
	for _, spec := range []string{
		"", "ostcrash:1", "ostcrash:x@1s", "slowdown:3@1s",
		"warp:1@1s", "ostcrash:1@-5s", "transient:abc@0s",
	} {
		if _, err := ParseCampaign(spec); err == nil {
			t.Errorf("ParseCampaign(%q) should fail", spec)
		}
	}
}

func TestScriptedCampaignFiresInOrder(t *testing.T) {
	e := des.NewEngine(7)
	tgt := newFake(4)
	s, err := Run(e, tgt, Campaign{Events: []Event{
		{At: 200 * des.Millisecond, Kind: OSTRecover, OST: 2},
		{At: 100 * des.Millisecond, Kind: OSTCrash, OST: 2},
		{At: 300 * des.Millisecond, Kind: MDSDown},
		{At: 400 * des.Millisecond, Kind: TransientRate, Factor: 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(des.MaxTime)
	log := s.Log()
	if len(log) != 4 {
		t.Fatalf("applied %d events, want 4", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].At < log[i-1].At {
			t.Fatalf("events fired out of order: %v", log)
		}
	}
	if tgt.down[2] {
		t.Error("ost2 should have recovered")
	}
	if tgt.mdsUp {
		t.Error("mds should be down")
	}
	if tgt.transient != 0.5 {
		t.Errorf("transient rate = %g, want 0.5", tgt.transient)
	}
	if errs := s.Errs(); len(errs) != 0 {
		t.Errorf("unexpected injection errors: %v", errs)
	}
}

func TestStochasticCampaignDeterministic(t *testing.T) {
	gen := func(seed int64) []Applied {
		e := des.NewEngine(seed)
		tgt := newFake(8)
		s, err := Run(e, tgt, Campaign{Name: "soak", Stochastic: &Stochastic{
			MTBF: 2 * des.Second, MTTR: 500 * des.Millisecond, Horizon: 20 * des.Second,
		}})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(des.MaxTime)
		return s.Log()
	}
	a, b := gen(42), gen(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed should produce identical stochastic timelines")
	}
	if len(a) == 0 {
		t.Fatal("stochastic campaign generated no events")
	}
	// Crash and recover must alternate per OST, starting with a crash.
	state := map[int]bool{}
	for _, ev := range a {
		switch ev.Kind {
		case OSTCrash:
			if state[ev.OST] {
				t.Fatalf("double crash of ost%d", ev.OST)
			}
			state[ev.OST] = true
		case OSTRecover:
			if !state[ev.OST] {
				t.Fatalf("recover of up ost%d", ev.OST)
			}
			state[ev.OST] = false
		}
	}
	if c := gen(43); reflect.DeepEqual(a, c) {
		t.Error("different seeds should produce different timelines")
	}
}

func TestStochasticValidation(t *testing.T) {
	e := des.NewEngine(1)
	if _, err := Run(e, newFake(2), Campaign{Stochastic: &Stochastic{}}); err == nil {
		t.Error("zero stochastic config should be rejected")
	}
	if _, err := Run(e, newFake(2), Campaign{Stochastic: &Stochastic{
		MTBF: des.Second, MTTR: des.Second, Horizon: des.Second, OSTs: []int{9},
	}}); err == nil {
		t.Error("out-of-range OST candidate should be rejected")
	}
}
