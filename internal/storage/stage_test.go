package storage

import (
	"errors"
	"strings"
	"testing"

	"pioeval/internal/des"
)

// markStage is a do-nothing stage that records how the pipeline uses it:
// which nodes it wrapped, the order Create calls traverse the stack, and
// when (and in what order) Flush ran.
type markStage struct {
	name     string
	flushErr error
	wrapped  []string
	events   *[]string // shared across stages: global traversal order
}

func (m *markStage) Name() string { return m.name }

func (m *markStage) Wrap(node string, t Target) Target {
	m.wrapped = append(m.wrapped, node)
	return &markTarget{st: m, inner: t}
}

func (m *markStage) Flush(p *des.Proc) error {
	*m.events = append(*m.events, "flush:"+m.name)
	return m.flushErr
}

type markTarget struct {
	st    *markStage
	inner Target
}

func (t *markTarget) Create(p *des.Proc, path string, sc int, ss int64) (Handle, error) {
	*t.st.events = append(*t.st.events, "create:"+t.st.name)
	return t.inner.Create(p, path, sc, ss)
}
func (t *markTarget) Open(p *des.Proc, path string) (Handle, error) { return t.inner.Open(p, path) }
func (t *markTarget) Stat(p *des.Proc, path string) (FileInfo, error) {
	return t.inner.Stat(p, path)
}
func (t *markTarget) Mkdir(p *des.Proc, path string) error  { return t.inner.Mkdir(p, path) }
func (t *markTarget) Rmdir(p *des.Proc, path string) error  { return t.inner.Rmdir(p, path) }
func (t *markTarget) Unlink(p *des.Proc, path string) error { return t.inner.Unlink(p, path) }
func (t *markTarget) Readdir(p *des.Proc, path string) ([]string, error) {
	return t.inner.Readdir(p, path)
}

// TestStageStackOrder: the last-pushed stage is outermost — application
// calls traverse it first — and every node's target gets the same stack.
func TestStageStackOrder(t *testing.T) {
	e, fs := singleOST(21, false)
	pr, err := NewProvider(e, fs, TierDirect, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	inner := &markStage{name: "inner", events: &events}
	outer := &markStage{name: "outer", events: &events}
	pr.Push(inner)
	pr.Push(outer)
	if !pr.NeedsFinalize() {
		t.Fatal("provider with stages must need finalize")
	}
	tgt0, tgt1 := pr.Target("cn0"), pr.Target("cn1")
	_ = tgt1
	e.Spawn("app", func(p *des.Proc) {
		h, cerr := tgt0.Create(p, "/f", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		_ = h.Close(p)
	})
	e.Run(des.MaxTime)

	if got := strings.Join(events, ","); got != "create:outer,create:inner" {
		t.Fatalf("traversal order %q, want outermost first", got)
	}
	for _, s := range []*markStage{inner, outer} {
		if len(s.wrapped) != 2 || s.wrapped[0] != "cn0" || s.wrapped[1] != "cn1" {
			t.Errorf("stage %s wrapped %v, want both nodes in mint order", s.name, s.wrapped)
		}
	}
}

// TestFinalizeFlushOrderAndFirstError: Finalize flushes outermost-first
// (a stage's flush may emit writes into the still-live layer below),
// keeps flushing after a failure, and returns the first error wrapped
// with the stage name.
func TestFinalizeFlushOrderAndFirstError(t *testing.T) {
	e, fs := singleOST(22, false)
	pr, err := NewProvider(e, fs, TierDirect, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	errOuter := errors.New("outer flush boom")
	errInner := errors.New("inner flush boom")
	inner := &markStage{name: "inner", flushErr: errInner, events: &events}
	outer := &markStage{name: "outer", flushErr: errOuter, events: &events}
	pr.Push(inner)
	pr.Push(outer)
	var finErr error
	e.Spawn("app", func(p *des.Proc) {
		finErr = pr.Finalize(p)
	})
	e.Run(des.MaxTime)

	if got := strings.Join(events, ","); got != "flush:outer,flush:inner" {
		t.Fatalf("flush order %q, want outermost first and all stages flushed", got)
	}
	if !errors.Is(finErr, errOuter) {
		t.Fatalf("Finalize = %v, want first (outermost) flush error", finErr)
	}
	if !strings.Contains(finErr.Error(), "stage outer") {
		t.Errorf("error %q does not name the failing stage", finErr)
	}
}

// TestFinalizeShutsDownBBAfterFailedFlush: a failed stage flush must not
// leave burst-buffer drain workers running — the buffer still drains and
// shuts down, and the flush error (not a drain complaint) comes back.
func TestFinalizeShutsDownBBAfterFailedFlush(t *testing.T) {
	e, fs := singleOST(23, false)
	pr, err := NewProvider(e, fs, TierBB, ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	errFlush := errors.New("flush boom")
	pr.Push(&markStage{name: "bad", flushErr: errFlush, events: &events})
	tgt := pr.Target("cn0")
	var finErr error
	e.Spawn("app", func(p *des.Proc) {
		h, cerr := tgt.Create(p, "/ckpt", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		for off := int64(0); off < 8<<20; off += 1 << 20 {
			_ = h.Write(p, off, 1<<20)
		}
		_ = h.Close(p)
		finErr = pr.Finalize(p)
	})
	e.Run(des.MaxTime) // deadlocks (and fails the run) if workers leak

	if !errors.Is(finErr, errFlush) {
		t.Fatalf("Finalize = %v, want the stage flush error", finErr)
	}
	st := pr.Buffers()[0].Stats()
	if st.Drained != st.Absorbed || st.Absorbed != 8<<20 {
		t.Fatalf("buffer not drained after failed flush: %+v", st)
	}
	if st.Used != 0 {
		t.Errorf("staging not emptied: %d bytes", st.Used)
	}
}
