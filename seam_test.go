package pioeval_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestIOStackStaysOffPFSClient pins the storage seam introduced with
// internal/storage: the layered I/O stack (posixio and everything above
// it) programs against storage.Target and must never regain a direct
// dependency on internal/pfs. Test files are exempt — they may build
// concrete clusters to drive the stack — but production code that needs
// PFS types goes through the aliases and re-exported sentinels in
// internal/storage, so a pfs import creeping back in here means the
// seam has been bypassed.
func TestIOStackStaysOffPFSClient(t *testing.T) {
	const forbidden = "pioeval/internal/pfs"
	guarded := []string{
		"internal/posixio",
		"internal/mpiio",
		"internal/hdf",
	}
	fset := token.NewFileSet()
	for _, dir := range guarded {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		checked := 0
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			checked++
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: bad import literal %s", path, imp.Path.Value)
				}
				if p == forbidden {
					t.Errorf("%s imports %q directly; the I/O stack must go through pioeval/internal/storage",
						path, forbidden)
				}
			}
		}
		if checked == 0 {
			t.Fatalf("no non-test Go files found under %s; guard is vacuous", dir)
		}
	}
}
