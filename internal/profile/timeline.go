package profile

import (
	"pioeval/internal/des"
	"pioeval/internal/trace"
)

// TimelineBin aggregates I/O activity within one time bin.
type TimelineBin struct {
	Start      des.Time
	ReadBytes  int64
	WriteBytes int64
	ReadOps    int
	WriteOps   int
	MetaOps    int
}

// Timeline is a Darshan-heatmap-style time-binned view of I/O activity:
// bytes and operations per fixed-width time bin, per layer.
type Timeline struct {
	Layer    trace.Layer
	binWidth des.Time
	bins     []TimelineBin
}

// NewTimeline creates a POSIX-layer timeline with the given bin width.
func NewTimeline(binWidth des.Time) *Timeline {
	if binWidth <= 0 {
		binWidth = des.Millisecond
	}
	return &Timeline{Layer: trace.LayerPOSIX, binWidth: binWidth}
}

// BinWidth returns the configured bin width.
func (tl *Timeline) BinWidth() des.Time { return tl.binWidth }

// Ingest adds one record (attributed to the bin containing its end time).
func (tl *Timeline) Ingest(r trace.Record) {
	if r.Layer != tl.Layer {
		return
	}
	idx := int(r.End / tl.binWidth)
	for len(tl.bins) <= idx {
		tl.bins = append(tl.bins, TimelineBin{Start: des.Time(len(tl.bins)) * tl.binWidth})
	}
	b := &tl.bins[idx]
	switch r.Op {
	case "read":
		b.ReadBytes += r.Size
		b.ReadOps++
	case "write":
		b.WriteBytes += r.Size
		b.WriteOps++
	default:
		b.MetaOps++
	}
}

// IngestAll adds a batch of records.
func (tl *Timeline) IngestAll(recs []trace.Record) {
	for _, r := range recs {
		tl.Ingest(r)
	}
}

// Bins returns the timeline (zero-activity bins included).
func (tl *Timeline) Bins() []TimelineBin { return tl.bins }

// PeakWriteBin returns the bin index with the most write bytes (-1 when
// empty) — where the burst is.
func (tl *Timeline) PeakWriteBin() int {
	best, bestB := -1, int64(0)
	for i, b := range tl.bins {
		if b.WriteBytes > bestB {
			best, bestB = i, b.WriteBytes
		}
	}
	return best
}

// Burstiness returns peak bin write bytes divided by mean nonzero bin
// write bytes (1 = perfectly smooth; large = bursty).
func (tl *Timeline) Burstiness() float64 {
	var sum int64
	var peak int64
	n := 0
	for _, b := range tl.bins {
		if b.WriteBytes > 0 {
			sum += b.WriteBytes
			n++
			if b.WriteBytes > peak {
				peak = b.WriteBytes
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(peak) / (float64(sum) / float64(n))
}
