package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// WFTask is one task of a scientific workflow DAG: it reads its input
// files, computes, and writes its output files. Dependencies are implied
// by file names: a task runs when all of its inputs exist.
type WFTask struct {
	Name       string
	Inputs     []string
	Outputs    []string
	OutputSize int64
	Compute    des.Time
}

// WorkflowConfig describes a workflow run.
type WorkflowConfig struct {
	Tasks []WFTask
	// Workers is the number of concurrent task executors.
	Workers int
	Path    string // working directory
}

// ChainWorkflow builds a linear pipeline of n stages, each producing
// fanout files of size bytes consumed by the next stage — the
// metadata-intensive, small-transaction shape of §V-C.
func ChainWorkflow(stages, fanout int, size int64) WorkflowConfig {
	var tasks []WFTask
	outputsOf := func(stage int) []string {
		var out []string
		for f := 0; f < fanout; f++ {
			out = append(out, fmt.Sprintf("/wf/s%d.f%d", stage, f))
		}
		return out
	}
	for s := 0; s < stages; s++ {
		t := WFTask{
			Name:       fmt.Sprintf("stage%d", s),
			Outputs:    outputsOf(s),
			OutputSize: size,
			Compute:    des.Millisecond,
		}
		if s > 0 {
			t.Inputs = outputsOf(s - 1)
		}
		tasks = append(tasks, t)
	}
	return WorkflowConfig{Tasks: tasks, Workers: 2, Path: "/wf"}
}

// DiamondWorkflow builds a fan-out/fan-in DAG: one producer, width
// parallel analyzers, one combiner.
func DiamondWorkflow(width int, size int64) WorkflowConfig {
	producer := WFTask{Name: "produce", Outputs: []string{"/wf/input"}, OutputSize: size, Compute: des.Millisecond}
	tasks := []WFTask{producer}
	var mids []string
	for i := 0; i < width; i++ {
		out := fmt.Sprintf("/wf/mid%d", i)
		mids = append(mids, out)
		tasks = append(tasks, WFTask{
			Name: fmt.Sprintf("analyze%d", i), Inputs: []string{"/wf/input"},
			Outputs: []string{out}, OutputSize: size / int64(width), Compute: des.Millisecond,
		})
	}
	tasks = append(tasks, WFTask{
		Name: "combine", Inputs: mids, Outputs: []string{"/wf/result"},
		OutputSize: size, Compute: des.Millisecond,
	})
	return WorkflowConfig{Tasks: tasks, Workers: width, Path: "/wf"}
}

// WorkflowReport summarizes a workflow run.
type WorkflowReport struct {
	TasksRun  int
	MetaOps   uint64 // MDS operations consumed by the workflow
	BytesRead int64
	BytesWrit int64
	Makespan  des.Time
	// MetaOpsPerMB characterizes metadata intensity (§V-C): MDS ops per
	// megabyte of data moved.
	MetaOpsPerMB float64
}

// RunWorkflow executes the DAG on fs with cfg.Workers concurrent executors.
// Each ready task (all inputs present) is claimed by an idle worker; tasks
// poll readiness via Stat — exactly the metadata chatter real workflow
// engines generate.
func RunWorkflow(e *des.Engine, fs *pfs.FS, cfg WorkflowConfig, col *trace.Collector) WorkflowReport {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Path == "" {
		cfg.Path = "/wf"
	}
	mdsBefore := fs.MDSStats().TotalOps
	rep := WorkflowReport{}

	// Ready-queue coordination in simulated time.
	done := map[string]bool{} // outputs produced
	var remaining = len(cfg.Tasks)
	taskReady := func(t WFTask) bool {
		for _, in := range t.Inputs {
			if !done[in] {
				return false
			}
		}
		return true
	}
	claimed := make([]bool, len(cfg.Tasks))
	wake := des.NewSignal(e)

	for w := 0; w < cfg.Workers; w++ {
		w := w
		env := posixio.NewEnv(storage.Direct(fs.NewClient(fmt.Sprintf("wfworker%d", w))), w, col)
		e.Spawn(fmt.Sprintf("wf.worker%d", w), func(p *des.Proc) {
			if w == 0 {
				_ = env.Mkdir(p, cfg.Path)
			}
			for remaining > 0 {
				// Find a ready unclaimed task.
				idx := -1
				for i, t := range cfg.Tasks {
					if !claimed[i] && taskReady(t) {
						idx = i
						break
					}
				}
				if idx < 0 {
					if remaining == 0 {
						return
					}
					wake.Wait(p)
					continue
				}
				claimed[idx] = true
				t := cfg.Tasks[idx]
				// Read inputs (workflow engines stat before reading).
				for _, in := range t.Inputs {
					fi, err := env.Stat(p, in)
					if err != nil {
						continue
					}
					fd, err := env.Open(p, in, 0)
					if err != nil {
						continue
					}
					_, _ = env.Pread(p, fd, 0, fi.Size)
					rep.BytesRead += fi.Size
					_ = env.Close(p, fd)
				}
				if t.Compute > 0 {
					p.Wait(t.Compute)
				}
				for _, out := range t.Outputs {
					fd, err := env.Open(p, out, posixio.OCreate)
					if err != nil {
						continue
					}
					_, _ = env.Pwrite(p, fd, 0, t.OutputSize)
					rep.BytesWrit += t.OutputSize
					_ = env.Close(p, fd)
					done[out] = true
				}
				rep.TasksRun++
				remaining--
				wake.Fire()
			}
		})
	}
	e.Run(des.MaxTime)
	rep.Makespan = e.Now()
	rep.MetaOps = fs.MDSStats().TotalOps - mdsBefore
	if mb := float64(rep.BytesRead+rep.BytesWrit) / 1e6; mb > 0 {
		rep.MetaOpsPerMB = float64(rep.MetaOps) / mb
	}
	return rep
}
