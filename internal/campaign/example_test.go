package campaign_test

import (
	"fmt"

	"pioeval/internal/campaign"
)

// ExampleSpec_Expand shows grid expansion: every axis list multiplies the
// point count, and unset axes collapse to a single default value.
func ExampleSpec_Expand() {
	spec := campaign.Spec{
		Ranks:         []int{2, 4},
		Devices:       []string{"hdd", "ssd"},
		TransferSizes: []int64{256 << 10, 1 << 20},
	}
	points := spec.Expand()
	fmt.Printf("%d points\n", len(points))
	fmt.Println(points[0].Label())
	fmt.Println(points[len(points)-1].Label())
	// Output:
	// 8 points
	// ranks=2 dev=hdd stripe=4x1048576 xfer=262144 pat=sequential
	// ranks=4 dev=ssd stripe=4x1048576 xfer=1048576 pat=sequential
}

// ExampleParseSpec parses the declarative campaign text format that
// cmd/campaign reads.
func ExampleParseSpec() {
	spec, err := campaign.ParseSpec(`
campaign "demo" {
    seed 7
    reps 2
    device hdd, nvme
    transfer-size 256KB, 1MB
}
`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d points x %d reps\n", spec.Name, len(spec.Expand()), spec.Reps)
	// Output:
	// demo: 4 points x 2 reps
}

// ExampleRun executes a tiny campaign end to end. Every number in the
// report derives from seeded simulation, so the output is reproducible.
func ExampleRun() {
	rep, err := campaign.Run(campaign.Spec{
		Name:          "demo",
		Seed:          42,
		Reps:          2,
		Ranks:         []int{2},
		Devices:       []string{"hdd", "nvme"},
		BlockSizes:    []int64{1 << 20},
		TransferSizes: []int64{256 << 10},
	}, campaign.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	hdd := rep.Points[0].Metrics["write_MBps"]
	nvme := rep.Points[1].Metrics["write_MBps"]
	fmt.Printf("%d points, %d runs\n", len(rep.Points), len(rep.Runs))
	fmt.Printf("nvme beats hdd: %v\n", nvme.Mean > hdd.Mean)
	// Output:
	// 2 points, 4 runs
	// nvme beats hdd: true
}

// ExampleRunSeed demonstrates the deterministic seed derivation: the
// mapping depends only on the campaign seed and the run index, never on
// worker count or scheduling.
func ExampleRunSeed() {
	fmt.Println(campaign.RunSeed(42, 3) == campaign.RunSeed(42, 3))
	fmt.Println(campaign.RunSeed(42, 3) == campaign.RunSeed(42, 4))
	// Output:
	// true
	// false
}
