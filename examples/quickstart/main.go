// Quickstart: build a simulated cluster, run an IOR-like workload on it,
// and print client- and server-side views of the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/profile"
	"pioeval/internal/trace"
	"pioeval/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. A deterministic simulation engine and a Lustre-like file system:
	//    4 OSS x 2 HDD OSTs, 1 MB stripes over 4 OSTs (Figure 1 topology,
	//    flat network for simplicity).
	engine := des.NewEngine(42)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	fsim := pfs.New(engine, cfg)

	// 2. Attach a tracer and a Darshan-like profiler.
	collector := trace.NewCollector()
	prof := profile.New()
	prof.Attach(collector)

	// 3. Run an IOR-like workload: 8 ranks write 16 MB each to a shared
	//    file and read it back.
	harness := workload.NewHarness(engine, fsim, 8, "cn", collector)
	report := workload.RunIOR(harness, workload.IORConfig{
		Ranks:        8,
		BlockSize:    16 << 20,
		TransferSize: 1 << 20,
		SharedFile:   true,
		ReadBack:     true,
	})

	// 4. The client view: bandwidth as IOR would print it.
	fmt.Printf("IOR-like run: %d MB total\n", report.TotalBytes>>20)
	fmt.Printf("  write %8.1f MB/s\n", report.WriteMBps)
	fmt.Printf("  read  %8.1f MB/s\n", report.ReadMBps)

	// 5. The middleware view: the multi-level trace.
	sum := trace.Summarize(collector.Records())
	fmt.Printf("trace: %d records over %d ranks, %d MB written, %d MB read\n",
		sum.Records, sum.Ranks, sum.BytesWritten>>20, sum.BytesRead>>20)

	// 6. The characterization view: Darshan-like counters.
	fmt.Printf("characterization: rw-ratio %.2f, sequential fraction %.2f, dominant access %s\n",
		prof.ReadWriteRatio(), prof.SequentialFraction(), prof.DominantAccessSize())

	// 7. The server view: per-OST utilization.
	fmt.Println("server-side OST counters:")
	for _, st := range fsim.OSTStats() {
		fmt.Printf("  ost%d on %s: wrote %3d MB, read %3d MB, util %4.1f%%\n",
			st.ID, st.OSSNode, st.BytesWritten>>20, st.BytesRead>>20, st.Utilization*100)
	}
}
