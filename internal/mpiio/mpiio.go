// Package mpiio simulates an MPI-IO middleware layer (ROMIO-like) above the
// POSIX layer: independent and collective reads/writes, strided file views,
// two-phase collective buffering with configurable aggregators, and data
// sieving for independent strided access. It is the middleware tier of the
// paper's Figure 2 and the subject of the collective-I/O experiment (C8).
package mpiio

import (
	"fmt"
	"sort"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/posixio"
	"pioeval/internal/trace"
)

// Hints mirror the ROMIO-style tunables.
type Hints struct {
	// CollNodes is the number of aggregator ranks for collective I/O
	// (cb_nodes). 0 selects max(1, P/4).
	CollNodes int
	// DataSieving enables read-modify-write style sieving for strided
	// independent access.
	DataSieving bool
	// SieveHoleThreshold is the largest gap (bytes) that sieving will
	// read through rather than splitting the request.
	SieveHoleThreshold int64
}

// withDefaults fills unset hint fields for a world of size p.
func (h Hints) withDefaults(p int) Hints {
	if h.CollNodes <= 0 {
		h.CollNodes = p / 4
		if h.CollNodes < 1 {
			h.CollNodes = 1
		}
	}
	if h.CollNodes > p {
		h.CollNodes = p
	}
	if h.SieveHoleThreshold <= 0 {
		h.SieveHoleThreshold = 64 << 10
	}
	return h
}

// Extent is a contiguous file byte range.
type Extent struct {
	Off  int64
	Size int64
}

// MergeExtents sorts and coalesces extents, merging ranges whose gap is at
// most maxGap (0 merges only touching/overlapping ranges).
func MergeExtents(exts []Extent, maxGap int64) []Extent {
	if len(exts) == 0 {
		return nil
	}
	sorted := make([]Extent, len(exts))
	copy(sorted, exts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	out := []Extent{sorted[0]}
	for _, e := range sorted[1:] {
		last := &out[len(out)-1]
		if e.Off <= last.Off+last.Size+maxGap {
			if end := e.Off + e.Size; end > last.Off+last.Size {
				last.Size = end - last.Off
			}
		} else {
			out = append(out, e)
		}
	}
	return out
}

// View is an interleaved-block file view (the common MPI_Type_vector
// pattern): the file is an infinite sequence of blocks of BlockElems
// elements of ElemSize bytes; rank r of P owns blocks r, r+P, r+2P, ...
// starting at displacement Disp.
type View struct {
	Disp       int64
	ElemSize   int64
	BlockElems int64
}

// contiguousView is the default view: rank-agnostic byte stream.
func contiguousView() View { return View{ElemSize: 1, BlockElems: 0} }

// Extents returns the file extents rank r (of p ranks) touches when
// accessing elems elements under the view.
func (v View) Extents(r, p int, elems int64) []Extent {
	if v.BlockElems <= 0 {
		// Contiguous view: a single run at Disp (caller supplies offsets
		// through At-style calls instead).
		return []Extent{{Off: v.Disp, Size: elems * v.ElemSize}}
	}
	blockBytes := v.BlockElems * v.ElemSize
	var out []Extent
	remaining := elems
	for k := int64(0); remaining > 0; k++ {
		blockIdx := int64(r) + k*int64(p)
		n := v.BlockElems
		if n > remaining {
			n = remaining
		}
		out = append(out, Extent{Off: v.Disp + blockIdx*blockBytes, Size: n * v.ElemSize})
		remaining -= n
	}
	return out
}

// File is an MPI-IO file shared by all ranks of a world. Construct it once
// (outside the rank functions) with NewFile; each rank then calls Open and
// the I/O methods from its own process. Collective calls must be made by
// every rank in the same order, as in MPI.
type File struct {
	world *mpi.World
	path  string
	hints Hints
	col   *trace.Collector

	envs  []*posixio.Env
	fds   []int
	views []View

	// Collective-call rendezvous state.
	collReqs  [][]Extent
	collGen   int
	collCount int
	collSig   *des.Signal
	doneCount int
	doneGen   int
	doneSig   *des.Signal

	// Statistics.
	IndependentOps uint64
	CollectiveOps  uint64
	SievedReads    uint64
}

// NewFile prepares an MPI-IO file over path. envs must hold one POSIX
// environment per rank. col may be nil.
func NewFile(w *mpi.World, envs []*posixio.Env, path string, hints Hints, col *trace.Collector) *File {
	if len(envs) != w.Size() {
		panic(fmt.Sprintf("mpiio: %d envs for %d ranks", len(envs), w.Size()))
	}
	f := &File{
		world: w, path: path, hints: hints.withDefaults(w.Size()), col: col,
		envs: envs, fds: make([]int, w.Size()), views: make([]View, w.Size()),
		collReqs: make([][]Extent, w.Size()),
		collSig:  des.NewSignal(w.Engine()),
		doneSig:  des.NewSignal(w.Engine()),
	}
	for i := range f.views {
		f.views[i] = contiguousView()
	}
	return f
}

// Path returns the file path.
func (f *File) Path() string { return f.path }

// Hints returns the effective hints.
func (f *File) Hints() Hints { return f.hints }

func (f *File) emit(r *mpi.Rank, op string, off, size int64, start des.Time) {
	f.col.Emit(trace.Record{
		Rank: r.ID(), Layer: trace.LayerMPIIO, Op: op, Path: f.path,
		Offset: off, Size: size, Start: start, End: r.Now(),
	})
}

// Open opens the file collectively: rank 0 creates it, others open after
// the barrier.
func (f *File) Open(r *mpi.Rank) error {
	start := r.Now()
	var err error
	if r.ID() == 0 {
		f.fds[0], err = f.envs[0].Open(r.Proc(), f.path, posixio.OCreate)
	}
	r.Barrier()
	if r.ID() != 0 {
		f.fds[r.ID()], err = f.envs[r.ID()].Open(r.Proc(), f.path, posixio.ORdwr)
	}
	f.emit(r, "mpi_file_open", 0, 0, start)
	return err
}

// Close closes the file collectively.
func (f *File) Close(r *mpi.Rank) error {
	start := r.Now()
	err := f.envs[r.ID()].Close(r.Proc(), f.fds[r.ID()])
	r.Barrier()
	f.emit(r, "mpi_file_close", 0, 0, start)
	return err
}

// SetView installs an interleaved-block view for the calling rank.
// Collective in MPI; here each rank records its own view and synchronizes.
func (f *File) SetView(r *mpi.Rank, v View) {
	if v.ElemSize <= 0 {
		v.ElemSize = 1
	}
	f.views[r.ID()] = v
	r.Barrier()
}

// WriteAt writes size bytes at absolute offset off, independently.
func (f *File) WriteAt(r *mpi.Rank, off, size int64) error {
	start := r.Now()
	_, err := f.envs[r.ID()].Pwrite(r.Proc(), f.fds[r.ID()], off, size)
	f.IndependentOps++
	f.emit(r, "mpi_file_write_at", off, size, start)
	return err
}

// ReadAt reads size bytes at absolute offset off, independently.
func (f *File) ReadAt(r *mpi.Rank, off, size int64) error {
	start := r.Now()
	_, err := f.envs[r.ID()].Pread(r.Proc(), f.fds[r.ID()], off, size)
	f.IndependentOps++
	f.emit(r, "mpi_file_read_at", off, size, start)
	return err
}

// WriteView writes elems elements under the rank's view, independently
// (one POSIX op per extent, or sieved when hints enable it — sieving a
// write degenerates to per-extent writes since we cannot read-modify-write
// remote data cheaply, matching ROMIO's default).
func (f *File) WriteView(r *mpi.Rank, elems int64) error {
	if elems <= 0 {
		return nil
	}
	start := r.Now()
	exts := f.views[r.ID()].Extents(r.ID(), r.Size(), elems)
	env, fd := f.envs[r.ID()], f.fds[r.ID()]
	for _, e := range exts {
		if _, err := env.Pwrite(r.Proc(), fd, e.Off, e.Size); err != nil {
			return err
		}
	}
	f.IndependentOps++
	f.emit(r, "mpi_file_write", exts[0].Off, elems*f.views[r.ID()].ElemSize, start)
	return nil
}

// ReadView reads elems elements under the rank's view, independently,
// applying data sieving when enabled.
func (f *File) ReadView(r *mpi.Rank, elems int64) error {
	if elems <= 0 {
		return nil
	}
	start := r.Now()
	exts := f.views[r.ID()].Extents(r.ID(), r.Size(), elems)
	env, fd := f.envs[r.ID()], f.fds[r.ID()]
	if f.hints.DataSieving {
		merged := MergeExtents(exts, f.hints.SieveHoleThreshold)
		if len(merged) < len(exts) {
			f.SievedReads++
		}
		exts = merged
	}
	for _, e := range exts {
		if _, err := env.Pread(r.Proc(), fd, e.Off, e.Size); err != nil {
			return err
		}
	}
	f.IndependentOps++
	f.emit(r, "mpi_file_read", exts[0].Off, elems*f.views[r.ID()].ElemSize, start)
	return nil
}

// WriteViewAll writes elems elements under the rank's view using two-phase
// collective buffering.
func (f *File) WriteViewAll(r *mpi.Rank, elems int64) error {
	exts := f.views[r.ID()].Extents(r.ID(), r.Size(), elems)
	return f.collective(r, exts, true)
}

// ReadViewAll reads elems elements under the rank's view collectively.
func (f *File) ReadViewAll(r *mpi.Rank, elems int64) error {
	exts := f.views[r.ID()].Extents(r.ID(), r.Size(), elems)
	return f.collective(r, exts, false)
}

// WriteExtentsAll collectively writes an arbitrary per-rank extent list
// (used by higher-level libraries such as the HDF layer for hyperslabs).
func (f *File) WriteExtentsAll(r *mpi.Rank, exts []Extent) error {
	return f.collective(r, exts, true)
}

// ReadExtentsAll collectively reads an arbitrary per-rank extent list.
func (f *File) ReadExtentsAll(r *mpi.Rank, exts []Extent) error {
	return f.collective(r, exts, false)
}

// WriteExtents independently writes an extent list.
func (f *File) WriteExtents(r *mpi.Rank, exts []Extent) error {
	start := r.Now()
	env, fd := f.envs[r.ID()], f.fds[r.ID()]
	var total int64
	for _, e := range exts {
		if _, err := env.Pwrite(r.Proc(), fd, e.Off, e.Size); err != nil {
			return err
		}
		total += e.Size
	}
	f.IndependentOps++
	if len(exts) > 0 {
		f.emit(r, "mpi_file_write", exts[0].Off, total, start)
	}
	return nil
}

// ReadExtents independently reads an extent list, applying sieving when
// enabled.
func (f *File) ReadExtents(r *mpi.Rank, exts []Extent) error {
	start := r.Now()
	if f.hints.DataSieving {
		merged := MergeExtents(exts, f.hints.SieveHoleThreshold)
		if len(merged) < len(exts) {
			f.SievedReads++
		}
		exts = merged
	}
	env, fd := f.envs[r.ID()], f.fds[r.ID()]
	var total int64
	for _, e := range exts {
		if _, err := env.Pread(r.Proc(), fd, e.Off, e.Size); err != nil {
			return err
		}
		total += e.Size
	}
	f.IndependentOps++
	if len(exts) > 0 {
		f.emit(r, "mpi_file_read", exts[0].Off, total, start)
	}
	return nil
}

// WriteAtAll is a collective write of a contiguous per-rank range.
func (f *File) WriteAtAll(r *mpi.Rank, off, size int64) error {
	return f.collective(r, []Extent{{off, size}}, true)
}

// ReadAtAll is a collective read of a contiguous per-rank range.
func (f *File) ReadAtAll(r *mpi.Rank, off, size int64) error {
	return f.collective(r, []Extent{{off, size}}, false)
}

// aggDomain splits [lo,hi) into n contiguous domains; returns domain i.
func aggDomain(lo, hi int64, n, i int) (int64, int64) {
	span := hi - lo
	step := span / int64(n)
	dLo := lo + int64(i)*step
	dHi := dLo + step
	if i == n-1 {
		dHi = hi
	}
	return dLo, dHi
}

// overlap returns the byte count of e within [lo,hi).
func overlap(e Extent, lo, hi int64) int64 {
	a, b := e.Off, e.Off+e.Size
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// collective implements two-phase I/O. Every rank calls it with its own
// extent list.
func (f *File) collective(r *mpi.Rank, exts []Extent, write bool) error {
	start := r.Now()
	p := r.Size()
	// Phase 0: deposit requests, metadata allgather cost, rendezvous.
	f.collReqs[r.ID()] = exts
	r.Allgather(int64(len(exts)) * 16)
	f.rendezvous(r, &f.collCount, &f.collGen, f.collSig)

	// All ranks now see all requests. Compute the global file domain.
	lo, hi := int64(1<<62), int64(-1)
	for _, re := range f.collReqs {
		for _, e := range re {
			if e.Size <= 0 {
				continue
			}
			if e.Off < lo {
				lo = e.Off
			}
			if end := e.Off + e.Size; end > hi {
				hi = end
			}
		}
	}
	if hi < 0 {
		// Nothing to do anywhere.
		f.rendezvous(r, &f.doneCount, &f.doneGen, f.doneSig)
		return nil
	}
	nAgg := f.hints.CollNodes

	// Phase 1: data exchange. Each rank ships each aggregator the bytes of
	// its extents overlapping that aggregator's domain (for writes), or
	// the reverse (for reads). Aggregator ranks are 0..nAgg-1.
	myID := r.ID()
	isAgg := myID < nAgg

	if write {
		for a := 0; a < nAgg; a++ {
			dLo, dHi := aggDomain(lo, hi, nAgg, a)
			var n int64
			for _, e := range f.collReqs[myID] {
				n += overlap(e, dLo, dHi)
			}
			if n > 0 && a != myID {
				r.Send(a, collTag, n)
			}
		}
		if isAgg {
			dLo, dHi := aggDomain(lo, hi, nAgg, myID)
			for src := 0; src < p; src++ {
				if src == myID {
					continue
				}
				var n int64
				for _, e := range f.collReqs[src] {
					n += overlap(e, dLo, dHi)
				}
				if n > 0 {
					r.Recv(src, collTag)
				}
			}
			// Phase 2: aggregator writes the coalesced union of its domain.
			f.aggregatorIO(r, dLo, dHi, true)
		}
	} else {
		if isAgg {
			dLo, dHi := aggDomain(lo, hi, nAgg, myID)
			// Phase 1 (read): aggregator reads its domain union first.
			f.aggregatorIO(r, dLo, dHi, false)
			// Phase 2: scatter to requesting ranks.
			for dst := 0; dst < p; dst++ {
				if dst == myID {
					continue
				}
				var n int64
				for _, e := range f.collReqs[dst] {
					n += overlap(e, dLo, dHi)
				}
				if n > 0 {
					r.Send(dst, collTag, n)
				}
			}
		}
		for a := 0; a < nAgg; a++ {
			if a == myID {
				continue
			}
			dLo, dHi := aggDomain(lo, hi, nAgg, a)
			var n int64
			for _, e := range f.collReqs[myID] {
				n += overlap(e, dLo, dHi)
			}
			if n > 0 {
				r.Recv(a, collTag)
			}
		}
	}

	// Completion rendezvous before anyone reuses the request slots.
	f.rendezvous(r, &f.doneCount, &f.doneGen, f.doneSig)
	f.CollectiveOps++
	op := "mpi_file_read_all"
	if write {
		op = "mpi_file_write_all"
	}
	var mine int64
	for _, e := range exts {
		mine += e.Size
	}
	var off0 int64
	if len(exts) > 0 {
		off0 = exts[0].Off
	}
	f.emit(r, op, off0, mine, start)
	return nil
}

const collTag = 0x7fff0001

// aggregatorIO performs the aggregator's file access: the coalesced union
// of all requested extents within [dLo, dHi).
func (f *File) aggregatorIO(r *mpi.Rank, dLo, dHi int64, write bool) {
	var within []Extent
	for _, re := range f.collReqs {
		for _, e := range re {
			n := overlap(e, dLo, dHi)
			if n <= 0 {
				continue
			}
			off := e.Off
			if off < dLo {
				off = dLo
			}
			within = append(within, Extent{Off: off, Size: n})
		}
	}
	// Coalesce aggressively: the collective buffer absorbs small holes.
	runs := MergeExtents(within, f.hints.SieveHoleThreshold)
	env, fd := f.envs[r.ID()], f.fds[r.ID()]
	for _, run := range runs {
		if write {
			_, _ = env.Pwrite(r.Proc(), fd, run.Off, run.Size)
		} else {
			_, _ = env.Pread(r.Proc(), fd, run.Off, run.Size)
		}
	}
}

// rendezvous is a reusable full-world barrier over shared deposit state.
func (f *File) rendezvous(r *mpi.Rank, count, gen *int, sig *des.Signal) {
	*count++
	if *count == r.Size() {
		*count = 0
		*gen++
		sig.Fire()
		return
	}
	g := *gen
	for *gen == g {
		sig.Wait(r.Proc())
	}
}
