// Package workload implements the synthetic and application workload
// generators the paper's taxonomy names: IOR-like parameterized bulk I/O,
// mdtest-like metadata stress, HACC-IO-like checkpoint phases, DLIO-like
// deep-learning training input pipelines, analytics scan/shuffle patterns,
// and data-intensive workflow DAGs. Every generator runs against the
// simulated file system and reports the metrics the corresponding real
// benchmark prints.
package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// Harness bundles the per-rank environments a generator needs.
type Harness struct {
	Eng   *des.Engine
	FS    *pfs.FS
	World *mpi.World
	Envs  []*posixio.Env
	Col   *trace.Collector

	// Provider is the storage provider the rank environments were minted
	// from (nil means every rank talks straight to the PFS).
	Provider *storage.Provider
	// FinalizeErr records the provider finalize (burst-buffer drain) error
	// from the last Run, nil when clean.
	FinalizeErr error
}

// NewHarness creates ranks clients named <prefix>N with a shared collector
// (col may be nil to disable tracing). Every rank talks straight to the
// PFS; use NewHarnessOn to route the ranks through a storage provider.
func NewHarness(e *des.Engine, fs *pfs.FS, ranks int, prefix string, col *trace.Collector) *Harness {
	return NewHarnessOn(e, fs, ranks, prefix, col, nil)
}

// NewHarnessOn is NewHarness with an explicit storage provider: each
// rank's environment is bound to pr.Target (burst-buffer tier, node-local
// scratch, ...). A nil provider means direct PFS access.
func NewHarnessOn(e *des.Engine, fs *pfs.FS, ranks int, prefix string, col *trace.Collector, pr *storage.Provider) *Harness {
	h := &Harness{
		Eng: e, FS: fs,
		World:    mpi.NewWorld(e, ranks, mpi.DefaultOptions()),
		Col:      col,
		Provider: pr,
	}
	for i := 0; i < ranks; i++ {
		node := fmt.Sprintf("%s%d", prefix, i)
		var t storage.Target
		if pr != nil {
			t = pr.Target(node)
		} else {
			t = storage.Direct(fs.NewClient(node))
		}
		h.Envs = append(h.Envs, posixio.NewEnv(t, i, col))
	}
	return h
}

// Run spawns fn per rank and drives the engine to completion, returning
// the makespan. When the harness's provider owns background drain workers
// (the burst-buffer tier), rank 0 finalizes them after a barrier — the
// drain tail lands inside the reported makespan, and any drain error is
// stored in FinalizeErr. It panics on simulated deadlock, which always
// indicates a generator bug.
func (h *Harness) Run(fn func(r *mpi.Rank, env *posixio.Env)) des.Time {
	h.World.Spawn(func(r *mpi.Rank) {
		fn(r, h.Envs[r.ID()])
		if h.Provider != nil && h.Provider.NeedsFinalize() {
			r.Barrier()
			if r.ID() == 0 {
				h.FinalizeErr = h.Provider.Finalize(r.Proc())
			}
		}
	})
	end := h.Eng.Run(des.MaxTime)
	if h.Eng.LiveProcs() != 0 {
		panic(fmt.Sprintf("workload: deadlock with %d live procs", h.Eng.LiveProcs()))
	}
	return end
}

// bwMBps converts bytes over a duration to MB/s.
func bwMBps(bytes int64, d des.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// opsPerSec converts an op count over a duration to ops/s.
func opsPerSec(n int, d des.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
