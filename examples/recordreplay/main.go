// Record-and-replay with extrapolation: trace a 4-rank run, compress it to
// a skeleton, extrapolate the trace to 16 ranks, and replay it — comparing
// the extrapolated replay against a real 16-rank run (the ScalaIOExtrap
// validation loop).
//
//	go run ./examples/recordreplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/replay"
	"pioeval/internal/skeleton"
	"pioeval/internal/trace"
	"pioeval/internal/workload"
)

func cluster() pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return cfg
}

func record(ranks int) ([]trace.Record, des.Time) {
	e := des.NewEngine(3)
	fsim := pfs.New(e, cluster())
	col := trace.NewCollector()
	h := workload.NewHarness(e, fsim, ranks, "app", col)
	rep := workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks: ranks, BytesPerRank: 8 << 20, Steps: 4,
		SharedFile: true, ReuseFile: true, ComputeTime: 10 * des.Millisecond,
	})
	return col.Records(), rep.Makespan
}

func main() {
	log.SetFlags(0)

	// Record at small scale.
	recs, smallMakespan := record(4)
	fmt.Printf("recorded 4-rank checkpoint: %d trace records, makespan %v\n", len(recs), smallMakespan)

	// The trace on disk: binary vs JSON.
	var bin, js bytes.Buffer
	if err := trace.WriteBinary(&bin, recs); err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteJSON(&js, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace size: %d B binary vs %d B JSON (%.1fx smaller)\n",
		bin.Len(), js.Len(), float64(js.Len())/float64(bin.Len()))

	// Skeletonize rank 0.
	toks := skeleton.TokenizeQ(trace.ByRank(recs, 0), 0)
	prog := skeleton.Fold(toks)
	fmt.Printf("rank-0 skeleton: %d ops -> %d nodes (%.1fx compression)\n",
		len(toks), prog.Size(), prog.CompressionRatio())

	// Extrapolate to 16 ranks and replay.
	small := replay.FromTrace(recs)
	big, err := replay.Extrapolate(small, 16)
	if err != nil {
		log.Fatal(err)
	}
	e := des.NewEngine(4)
	res, err := replay.Run(e, pfs.New(e, cluster()), big, replay.Options{Timed: true})
	if err != nil {
		log.Fatal(err)
	}

	// Validate against a direct 16-rank run.
	_, directMakespan := record(16)
	fmt.Printf("extrapolated 16-rank replay: makespan %v\n", res.Makespan)
	fmt.Printf("direct 16-rank run:          makespan %v\n", directMakespan)
	fmt.Printf("extrapolation error: %.1f%%\n",
		100*abs(float64(res.Makespan)-float64(directMakespan))/float64(directMakespan))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
