// Package faults implements deterministic fault-injection campaigns for
// the simulated I/O stack: scripted and stochastic timelines of fault
// events — OST crash/recovery, MDS unavailability windows, transient
// per-request I/O errors, network link degradation, and the classic
// slowdown/straggler model — applied to any Target (the parallel file
// system implements it) on a seeded discrete-event engine. Two runs of
// the same campaign on the same seed produce identical fault timelines,
// which is what makes what-if resilience experiments reproducible.
package faults

import (
	"fmt"
	"sort"

	"pioeval/internal/des"
)

// Kind enumerates fault event types.
type Kind int

// Fault event kinds.
const (
	// OSTCrash takes an object storage target out of service.
	OSTCrash Kind = iota
	// OSTRecover returns a crashed OST to service.
	OSTRecover
	// OSTSlowdown degrades one OST's service times by Factor (straggler).
	OSTSlowdown
	// MDSDown starts a metadata-server unavailability window.
	MDSDown
	// MDSUp ends a metadata-server unavailability window.
	MDSUp
	// TransientRate sets the per-request transient I/O error probability.
	TransientRate
	// LinkDegrade multiplies network transfer times by Factor.
	LinkDegrade
	numKinds
)

var kindNames = [...]string{"ost-crash", "ost-recover", "ost-slowdown", "mds-down", "mds-up", "transient-rate", "link-degrade"}

// String returns the event kind name.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault transition.
type Event struct {
	At   des.Time
	Kind Kind
	// OST targets OSTCrash/OSTRecover/OSTSlowdown.
	OST int
	// Factor parameterizes OSTSlowdown and LinkDegrade (>= 1), and
	// TransientRate (probability in [0,1]).
	Factor float64
}

// String renders the event for logs.
func (ev Event) String() string {
	switch ev.Kind {
	case OSTCrash, OSTRecover:
		return fmt.Sprintf("%v %s ost%d", ev.At, ev.Kind, ev.OST)
	case OSTSlowdown:
		return fmt.Sprintf("%v %s ost%d x%g", ev.At, ev.Kind, ev.OST, ev.Factor)
	case MDSDown, MDSUp:
		return fmt.Sprintf("%v %s", ev.At, ev.Kind)
	default:
		return fmt.Sprintf("%v %s %g", ev.At, ev.Kind, ev.Factor)
	}
}

// Target is the fault surface a campaign drives. pfs.FS satisfies it.
type Target interface {
	NumOSTs() int
	CrashOST(id int) error
	RecoverOST(id int) error
	InjectOSTSlowdown(id int, factor float64) error
	SetMDSAvailable(up bool)
	SetTransientErrorRate(rate float64) error
	SetLinkDegradation(factor float64) error
}

// Stochastic describes a random crash/repair process: each candidate OST
// independently alternates up/down with exponentially distributed times
// (mean MTBF up, mean MTTR down) until Horizon. Event times are drawn
// from the engine's seeded RNG at schedule time, so the expansion is
// deterministic per seed.
type Stochastic struct {
	// MTBF is the mean up time between crashes.
	MTBF des.Time
	// MTTR is the mean repair (down) time.
	MTTR des.Time
	// Horizon bounds the generated timeline.
	Horizon des.Time
	// OSTs are the crash candidates; empty selects every OST.
	OSTs []int
}

// Campaign is a fault timeline: scripted events, a stochastic generator,
// or both.
type Campaign struct {
	Name       string
	Events     []Event
	Stochastic *Stochastic
}

// Applied is one campaign event as it fired, with the injection outcome.
type Applied struct {
	Event
	Err error
}

// Scheduler is a campaign bound to an engine and target; it records every
// applied event for timelines and determinism checks.
type Scheduler struct {
	target  Target
	applied []Applied
}

// Log returns the chronological record of fired events.
func (s *Scheduler) Log() []Applied { return s.applied }

// Errs returns the injection errors encountered, if any.
func (s *Scheduler) Errs() []error {
	var out []error
	for _, a := range s.applied {
		if a.Err != nil {
			out = append(out, a.Err)
		}
	}
	return out
}

// Run schedules campaign c against t on engine e. Events with At in the
// past (before e.Now()) fire immediately. The returned Scheduler exposes
// the applied-event log after the simulation runs.
func Run(e *des.Engine, t Target, c Campaign) (*Scheduler, error) {
	s := &Scheduler{target: t}
	events := append([]Event(nil), c.Events...)
	if c.Stochastic != nil {
		expanded, err := expand(e, t, c.Name, *c.Stochastic)
		if err != nil {
			return nil, err
		}
		events = append(events, expanded...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	now := e.Now()
	for _, ev := range events {
		ev := ev
		delay := ev.At - now
		if delay < 0 {
			delay = 0
		}
		e.After(delay, func() { s.apply(ev) })
	}
	return s, nil
}

// apply fires one event against the target.
func (s *Scheduler) apply(ev Event) {
	var err error
	switch ev.Kind {
	case OSTCrash:
		err = s.target.CrashOST(ev.OST)
	case OSTRecover:
		err = s.target.RecoverOST(ev.OST)
	case OSTSlowdown:
		err = s.target.InjectOSTSlowdown(ev.OST, ev.Factor)
	case MDSDown:
		s.target.SetMDSAvailable(false)
	case MDSUp:
		s.target.SetMDSAvailable(true)
	case TransientRate:
		err = s.target.SetTransientErrorRate(ev.Factor)
	case LinkDegrade:
		err = s.target.SetLinkDegradation(ev.Factor)
	default:
		err = fmt.Errorf("faults: unknown event kind %v", ev.Kind)
	}
	s.applied = append(s.applied, Applied{Event: ev, Err: err})
}

// expand turns a stochastic spec into concrete crash/recover events using
// per-OST seeded RNG streams.
func expand(e *des.Engine, t Target, name string, st Stochastic) ([]Event, error) {
	if st.MTBF <= 0 || st.MTTR <= 0 || st.Horizon <= 0 {
		return nil, fmt.Errorf("faults: stochastic campaign needs positive MTBF, MTTR, and Horizon")
	}
	osts := st.OSTs
	if len(osts) == 0 {
		for i := 0; i < t.NumOSTs(); i++ {
			osts = append(osts, i)
		}
	}
	rng := e.RNG()
	var out []Event
	for _, id := range osts {
		if id < 0 || id >= t.NumOSTs() {
			return nil, fmt.Errorf("faults: stochastic candidate ost%d out of range", id)
		}
		stream := fmt.Sprintf("faults.%s.ost%d", name, id)
		at := e.Now()
		for {
			at += rng.Exponential(stream, st.MTBF)
			if at > st.Horizon {
				break
			}
			out = append(out, Event{At: at, Kind: OSTCrash, OST: id})
			at += rng.Exponential(stream, st.MTTR)
			up := at
			if up > st.Horizon {
				up = st.Horizon
			}
			out = append(out, Event{At: up, Kind: OSTRecover, OST: id})
			if at > st.Horizon {
				break
			}
		}
	}
	return out, nil
}
