package mpi

import (
	"fmt"

	"pioeval/internal/des"
)

// This file is the continuation-form (goroutine-free) port of the rank
// API: EventRank mirrors Rank method-for-method with blocking points as
// continuation callbacks, so a million ranks cost a million small structs
// instead of a million goroutine stacks. The cost models are shared with
// the blocking forms — only the suspension mechanism differs.

// SpawnEvent launches fn once per rank as continuation-form event
// processes (des.EventProc). Call once; then run the engine. Event ranks
// and goroutine ranks may coexist in one World and exchange messages.
func (w *World) SpawnEvent(fn func(r *EventRank)) {
	for i := 0; i < w.size; i++ {
		i := i
		w.eng.SpawnEvent(fmt.Sprintf("rank%d", i), func(ep *des.EventProc) {
			fn(&EventRank{w: w, id: i, ep: ep})
		})
	}
}

// EventRank is one MPI process in continuation form: the pairing of a
// rank id with its event process. All methods must be called from the
// rank's own event process, and each blocking method may be the rank's
// only pending blocking point (see des.EventProc).
type EventRank struct {
	w  *World
	id int
	ep *des.EventProc
}

// ID returns the rank number.
func (r *EventRank) ID() int { return r.id }

// Size returns the communicator size.
func (r *EventRank) Size() int { return r.w.size }

// Proc returns the underlying event process.
func (r *EventRank) Proc() *des.EventProc { return r.ep }

// Now returns the current simulated time.
func (r *EventRank) Now() des.Time { return r.ep.Now() }

// Compute advances simulated time by d (models computation), then runs k.
func (r *EventRank) Compute(d des.Time, k func()) { r.ep.Wait(d, k) }

// Send transmits size bytes to dst with tag; the sender blocks for the
// transfer cost (eager protocol), after which the message is available at
// the destination and k runs.
func (r *EventRank) Send(dst, tag int, size int64, k func()) {
	if dst < 0 || dst >= r.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	r.ep.Wait(r.w.opts.xferCost(size), func() {
		r.w.msgs++
		r.w.bytesSent += size
		r.w.queue(chanKey{r.id, dst, tag}).Put(Message{Src: r.id, Tag: tag, Size: size})
		k()
	})
}

// Recv blocks until a message with the given source and tag arrives, then
// hands it to k.
func (r *EventRank) Recv(src, tag int, k func(Message)) {
	if src < 0 || src >= r.w.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	r.w.queue(chanKey{src, r.id, tag}).GetE(r.ep, k)
}

// Sendrecv exchanges messages with a partner without deadlocking: the send
// completes, then the receive blocks.
func (r *EventRank) Sendrecv(dst, sendTag int, size int64, src, recvTag int, k func(Message)) {
	r.Send(dst, sendTag, size, func() {
		r.Recv(src, recvTag, k)
	})
}

// Barrier synchronizes all ranks (of either execution form) and then runs
// k; the cost model adds a log2(P) latency term to the release.
func (r *EventRank) Barrier(k func()) {
	w := r.w
	w.barCount++
	if w.barCount == w.size {
		w.barCount = 0
		w.barGen++
		// Dissemination barrier cost: ceil(log2 P) rounds of alpha.
		r.ep.Wait(w.opts.Alpha*des.Time(ceilLog2(w.size)), func() {
			w.barSignal.Fire()
			k()
		})
		return
	}
	gen := w.barGen
	var await func()
	await = func() {
		if w.barGen != gen {
			k()
			return
		}
		w.barSignal.WaitE(r.ep, await)
	}
	await()
}

// Bcast models a binomial-tree broadcast of size bytes from root. Every
// rank blocks for the modeled completion cost; no payload is exchanged.
func (r *EventRank) Bcast(root int, size int64, k func()) {
	rounds := ceilLog2(r.w.size)
	r.ep.Wait(des.Time(rounds)*r.w.opts.xferCost(size), func() {
		r.Barrier(k)
	})
}

// Allreduce models a recursive-doubling allreduce over size bytes.
func (r *EventRank) Allreduce(size int64, k func()) {
	rounds := ceilLog2(r.w.size)
	r.ep.Wait(des.Time(rounds)*r.w.opts.xferCost(size), func() {
		r.Barrier(k)
	})
}

// Reduce models a binomial-tree reduction to root.
func (r *EventRank) Reduce(root int, size int64, k func()) {
	rounds := ceilLog2(r.w.size)
	r.ep.Wait(des.Time(rounds)*r.w.opts.xferCost(size), func() {
		r.Barrier(k)
	})
}
