// The full evaluation cycle (Figure 4) as a program: record a workload on
// one cluster, characterize and model it, generate an I/O skeleton, and
// validate predictions against a different cluster via the feedback loop —
// the closed loop the paper's taxonomy describes.
//
//	go run ./examples/evalcycle
package main

import (
	"fmt"
	"log"

	"pioeval/internal/blockdev"
	"pioeval/internal/core"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
)

const script = `
# A mixed read/write workload with regular phases.
workload "phased-app" {
    ranks 8
    stripe count=4 size=1MB
    loop 5 {
        compute 10ms
        write "/snap" offset=rank*32MB size=8MB chunk=2MB
        barrier
        read "/snap" offset=rank*32MB size=2MB chunk=512KB
    }
}
`

func main() {
	log.SetFlags(0)
	wl, err := iolang.Parse(script)
	if err != nil {
		log.Fatal(err)
	}

	ssd := pfs.DefaultConfig()
	ssd.NumIONodes = 0
	ssd.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	hdd := pfs.DefaultConfig()
	hdd.NumIONodes = 0

	res, err := core.RunCycle(core.CycleConfig{
		Seed:          1,
		Baseline:      ssd, // the testbed we can measure
		Target:        hdd, // the production system we must predict
		Source:        core.SyntheticSource{Workload: wl},
		MaxIterations: 5,
		Tolerance:     0.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure-4 evaluation cycle: SSD testbed -> HDD production prediction")
	fmt.Printf("phase 1 — measure:  %d trace records, baseline makespan %v\n",
		res.TraceRecords, res.BaselineMakespan)
	fmt.Printf("                    rw-ratio %.2f, seq %.2f, dominant %s\n",
		res.ReadWriteRatio, res.SeqFraction, res.DominantSize)
	fmt.Printf("phase 2 — model:    skeleton compression %.1fx\n", res.SkeletonRatio)
	fmt.Println("phase 3 — simulate + feedback:")
	for _, it := range res.Iterations {
		fmt.Printf("   iteration %d: predicted %v  measured %v  error %.1f%%\n",
			it.Index, it.PredictedMakespan, it.MeasuredMakespan, it.RelError*100)
	}
	if res.Converged {
		fmt.Println("converged: the model now predicts the production system.")
	} else {
		fmt.Println("not converged; more iterations or richer features needed.")
	}
}
