package pioeval_test

import (
	"fmt"
	"testing"

	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/sched"
	"pioeval/internal/workload"
)

// BenchmarkAblationAggregators sweeps the collective-buffering aggregator
// count (cb_nodes) for an 8-rank strided write — the key ROMIO tunable.
func BenchmarkAblationAggregators(b *testing.B) {
	for _, agg := range []int{1, 2, 4, 8} {
		agg := agg
		b.Run(fmt.Sprintf("cb_nodes=%d", agg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(301)
				h := workload.NewHarness(e, pfs.New(e, hddCluster()), 8, "agg", nil)
				// Collective path is exercised through mpiio hints via the
				// IOR generator's Collective mode; override hints by
				// running the generator with a custom-stripe config and
				// reporting bandwidth per aggregator count.
				rep := runCollectiveIOR(e, h, agg)
				b.ReportMetric(rep, "MB/s")
			}
		})
	}
}

// runCollectiveIOR runs a strided collective write with cbNodes aggregators
// and returns the write bandwidth. It reimplements the IOR collective path
// so the hint can vary.
func runCollectiveIOR(e *des.Engine, h *workload.Harness, cbNodes int) float64 {
	rep := workload.RunIORWithHints(h, workload.IORConfig{
		Ranks: 8, BlockSize: 2 << 20, TransferSize: 32 << 10,
		SharedFile: true, Pattern: workload.Strided, Collective: true,
	}, cbNodes)
	return rep.WriteMBps
}

// BenchmarkAblationBurstBufferCapacity sweeps the burst-buffer capacity
// against a fixed 64 MB burst: an undersized buffer stalls the producer and
// erodes the absorption advantage.
func BenchmarkAblationBurstBufferCapacity(b *testing.B) {
	const burst = 64 << 20
	for _, capMB := range []int64{8, 32, 128} {
		capMB := capMB
		b.Run(fmt.Sprintf("cap=%dMB", capMB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(302)
				fs := pfs.New(e, hddCluster())
				cfg := burstbuffer.DefaultConfig()
				cfg.Capacity = capMB << 20
				bb := burstbuffer.New(e, fs, "bb0", cfg)
				var absorbed des.Time
				e.Spawn("app", func(p *des.Proc) {
					for off := int64(0); off < burst; off += 4 << 20 {
						bb.Write(p, "/ckpt", off, 4<<20)
					}
					absorbed = p.Now()
					bb.WaitDrained(p)
					bb.Shutdown()
				})
				e.Run(des.MaxTime)
				st := bb.Stats()
				b.ReportMetric(absorbed.Seconds()*1e3, "absorb_ms")
				b.ReportMetric(float64(st.Stalls), "stalls")
			}
		})
	}
}

// BenchmarkAblationStripeCount sweeps the stripe count for two workload
// shapes: a bulk checkpoint (wants wide stripes) and DL-style random small
// reads (insensitive or worse with width due to per-OST latency).
func BenchmarkAblationStripeCount(b *testing.B) {
	for _, stripes := range []int{1, 4, 8} {
		stripes := stripes
		b.Run(fmt.Sprintf("checkpoint/stripes=%d", stripes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(303)
				h := workload.NewHarness(e, pfs.New(e, hddCluster()), 4, "st", nil)
				rep := workload.RunIOR(h, workload.IORConfig{
					Ranks: 4, BlockSize: 16 << 20, TransferSize: 4 << 20,
					SharedFile: false, StripeCount: stripes, StripeSize: 1 << 20,
				})
				b.ReportMetric(rep.WriteMBps, "MB/s")
			}
		})
		b.Run(fmt.Sprintf("dlrandom/stripes=%d", stripes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(304)
				cfg := hddCluster()
				cfg.DefaultStripeCount = stripes
				fs := pfs.New(e, cfg)
				h := workload.NewHarness(e, fs, 4, "dl", nil)
				rep := workload.RunDL(h, workload.DLConfig{
					Workers: 4, Samples: 256, SampleSize: 64 << 10,
					SamplesPerFile: 64, Epochs: 1, Shuffle: true,
				})
				b.ReportMetric(rep.ReadMBps, "MB/s")
			}
		})
	}
}

// BenchmarkAblationSchedulerPolicy compares FCFS and EASY backfill on a
// mixed job stream — the workload-manager substrate's design choice.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	mkJobs := func() []sched.Job {
		var jobs []sched.Job
		for i := 0; i < 40; i++ {
			nodes := 1 << (i % 5)
			rt := des.Time(5+i%37) * des.Minute
			jobs = append(jobs, sched.Job{
				ID:       fmt.Sprintf("j%d", i),
				Submit:   des.Time(i%13) * 7 * des.Minute,
				Nodes:    nodes,
				Walltime: rt,
				Runtime:  rt,
			})
		}
		return jobs
	}
	for _, pol := range []sched.Policy{sched.FCFS, sched.EASYBackfill} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				log := sched.Simulate(mkJobs(), 16, pol)
				b.ReportMetric(sched.Makespan(log).Seconds()/3600, "makespan_h")
				b.ReportMetric(sched.AvgWait(log).Seconds()/60, "avgwait_min")
				b.ReportMetric(sched.Utilization(log, 16)*100, "util_pct")
			}
		})
	}
}

// BenchmarkPFSWriteScaling reports aggregate write bandwidth as client
// count grows — the baseline scaling series any storage paper plots.
func BenchmarkPFSWriteScaling(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16} {
		clients := clients
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(305)
				h := workload.NewHarness(e, pfs.New(e, hddCluster()), clients, "sc", nil)
				rep := workload.RunIOR(h, workload.IORConfig{
					Ranks: clients, BlockSize: 8 << 20, TransferSize: 1 << 20,
					SharedFile: false,
				})
				b.ReportMetric(rep.WriteMBps, "MB/s")
			}
		})
	}
}

// BenchmarkAblationLayoutPolicy compares round-robin and least-loaded OST
// allocation under a skewed file-size distribution, reporting the resulting
// load imbalance (max/mean OST bytes; 1.0 is perfect).
func BenchmarkAblationLayoutPolicy(b *testing.B) {
	imbalance := func(policy pfs.LayoutPolicy) float64 {
		e := des.NewEngine(306)
		cfg := hddCluster()
		cfg.Layout = policy
		fs := pfs.New(e, cfg)
		c := fs.NewClient("cn0")
		e.Spawn("app", func(p *des.Proc) {
			for i := 0; i < 64; i++ {
				size := int64(256 << 10)
				if i%8 == 0 {
					size = 16 << 20
				}
				h, err := c.Create(p, fmt.Sprintf("/f%d", i), 1, 1<<20)
				if err != nil {
					return
				}
				h.Write(p, 0, size)
				h.Close(p)
			}
		})
		e.Run(des.MaxTime)
		var max, sum float64
		n := 0
		for _, st := range fs.OSTStats() {
			bw := float64(st.BytesWritten)
			if bw > max {
				max = bw
			}
			sum += bw
			n++
		}
		return max / (sum / float64(n))
	}
	for i := 0; i < b.N; i++ {
		rr := imbalance(pfs.RoundRobin)
		ll := imbalance(pfs.LeastLoaded)
		if ll >= rr {
			b.Fatalf("least-loaded imbalance %.2f should beat round-robin %.2f", ll, rr)
		}
		b.ReportMetric(rr, "roundrobin_imbal")
		b.ReportMetric(ll, "leastloaded_imbal")
	}
}

// BenchmarkParallelDES measures the conservative parallel runner on a
// partitioned simulation (wall-clock ns/op; simulated results are identical
// to sequential execution by construction).
func BenchmarkParallelDES(b *testing.B) {
	build := func() *des.ParallelGroup {
		engines := make([]*des.Engine, 4)
		for i := range engines {
			engines[i] = des.NewEngine(int64(i))
			r := des.NewResource(engines[i], "disk", 1)
			for j := 0; j < 200; j++ {
				e := engines[i]
				e.Spawn("u", func(p *des.Proc) {
					p.Wait(e.RNG().Uniform("arr", 0, des.Millisecond))
					r.Use(p, e.RNG().Exponential("svc", 50*des.Microsecond))
				})
			}
		}
		return des.NewParallelGroup(10*des.Microsecond, engines...)
	}
	for i := 0; i < b.N; i++ {
		g := build()
		end := g.Run(des.MaxTime)
		if end <= 0 {
			b.Fatal("no progress")
		}
	}
}

// BenchmarkAblationReadahead sweeps client readahead for two access shapes:
// interleaved sequential streams (benefits) and random access (amplifies).
func BenchmarkAblationReadahead(b *testing.B) {
	interleaved := func(ra int64) des.Time {
		cfg := hddCluster()
		cfg.NumOSS, cfg.OSTsPerOSS = 1, 1
		cfg.ClientReadahead = ra
		e := des.NewEngine(307)
		fs := pfs.New(e, cfg)
		for i := 0; i < 2; i++ {
			i := i
			c := fs.NewClient(fmt.Sprintf("ra%d", i))
			e.Spawn("rd", func(p *des.Proc) {
				h, _ := c.Create(p, fmt.Sprintf("/f%d", i), 1, 1<<20)
				h.Write(p, 0, 8<<20)
				for off := int64(0); off < 8<<20; off += 64 << 10 {
					h.Read(p, off, 64<<10)
				}
				h.Close(p)
			})
		}
		return e.Run(des.MaxTime)
	}
	random := func(ra int64) des.Time {
		cfg := hddCluster()
		cfg.ClientReadahead = ra
		e := des.NewEngine(308)
		fs := pfs.New(e, cfg)
		c := fs.NewClient("ra")
		e.Spawn("rd", func(p *des.Proc) {
			h, _ := c.Create(p, "/f", 1, 1<<20)
			h.Write(p, 0, 16<<20)
			rng := e.RNG().Stream("r")
			for i := 0; i < 64; i++ {
				h.Read(p, rng.Int63n(16<<20-64<<10), 64<<10)
			}
			h.Close(p)
		})
		return e.Run(des.MaxTime)
	}
	for i := 0; i < b.N; i++ {
		seqOff, seqOn := interleaved(0), interleaved(4<<20)
		rndOff, rndOn := random(0), random(4<<20)
		if seqOn >= seqOff {
			b.Fatalf("readahead should help interleaved streams: %v vs %v", seqOn, seqOff)
		}
		if rndOn <= rndOff {
			b.Fatalf("readahead should hurt random access: %v vs %v", rndOn, rndOff)
		}
		b.ReportMetric(float64(seqOff)/float64(seqOn), "seq_speedup")
		b.ReportMetric(float64(rndOn)/float64(rndOff), "rnd_slowdown")
	}
}

// BenchmarkFailureInjectionStraggler degrades one of eight OSTs and
// measures the striped-write tail-latency amplification, plus whether the
// server-side utilization stats identify the culprit.
func BenchmarkFailureInjectionStraggler(b *testing.B) {
	run := func(slowdown float64) (des.Time, int) {
		cfg := ssdCluster()
		e := des.NewEngine(309)
		fs := pfs.New(e, cfg)
		if slowdown > 1 {
			fs.InjectOSTSlowdown(3, slowdown)
		}
		c := fs.NewClient("cn0")
		var d des.Time
		e.Spawn("w", func(p *des.Proc) {
			h, _ := c.Create(p, "/f", 8, 1<<20)
			s := p.Now()
			h.Write(p, 0, 64<<20)
			d = p.Now() - s
			h.Close(p)
		})
		e.Run(des.MaxTime)
		worst, worstU := -1, 0.0
		for _, st := range fs.OSTStats() {
			if st.Utilization > worstU {
				worst, worstU = st.ID, st.Utilization
			}
		}
		return d, worst
	}
	for i := 0; i < b.N; i++ {
		healthy, _ := run(1)
		degraded, culprit := run(8)
		if degraded <= healthy {
			b.Fatal("straggler had no effect")
		}
		if culprit != 3 {
			b.Fatalf("server stats blamed OST %d, want 3", culprit)
		}
		b.ReportMetric(float64(degraded)/float64(healthy), "slowdown_x")
		b.ReportMetric(1, "culprit_found")
	}
}

// BenchmarkMDSThreadScaling sweeps metadata-server concurrency under an
// mdtest load — the metadata-bottleneck series behind §IV-A1's "metadata
// performance can be a limiting factor".
func BenchmarkMDSThreadScaling(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8, 16} {
		threads := threads
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(310)
				cfg := ssdCluster()
				cfg.MDSThreads = threads
				h := workload.NewHarness(e, pfs.New(e, cfg), 8, "md", nil)
				rep := workload.RunMDTest(h, workload.MDTestConfig{Ranks: 8, FilesPerRank: 64})
				b.ReportMetric(rep.CreatesPerS, "creates/s")
				b.ReportMetric(rep.StatsPerS, "stats/s")
			}
		})
	}
}

// BenchmarkDLWorkerScaling sweeps data-loader workers for the shuffled DL
// input pipeline: random small reads saturate the HDD OSTs quickly, so
// adding workers yields diminishing samples/s — the §V-B story again, seen
// as a scaling curve.
func BenchmarkDLWorkerScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := des.NewEngine(311)
				h := workload.NewHarness(e, pfs.New(e, hddCluster()), workers, "dls", nil)
				rep := workload.RunDL(h, workload.DLConfig{
					Workers: workers, Samples: 512, SampleSize: 64 << 10,
					SamplesPerFile: 128, Epochs: 1, Shuffle: true,
				})
				b.ReportMetric(rep.SamplesPerSec, "samples/s")
			}
		})
	}
}
