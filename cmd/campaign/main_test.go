package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden outputs")

// checkGolden compares got against the named testdata file byte for byte,
// rewriting it under -update-golden, and reports the first diverging line
// on mismatch.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("output diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("output length differs: got %d lines, want %d", len(gl), len(wl))
}

// TestGoldenTinyGrid pins the full CLI output — summary table plus CSV —
// for a 4-point, 2-rep grid, byte for byte. The campaign runner promises
// bit-identical reports at any worker count; this is the end-to-end check
// of that promise plus the formatting layer. Regenerate deliberately with
//
//	go test ./cmd/campaign -update-golden
func TestGoldenTinyGrid(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-quiet", "-csv", "-", "testdata/tiny.campaign"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if errb.Len() != 0 {
		t.Errorf("-quiet run wrote to stderr: %q", errb.String())
	}
	checkGolden(t, "testdata/tiny_golden.txt", out.String())
}

// TestGoldenTinyGridStableAcrossRuns guards the golden file itself: two
// in-process runs must already agree, so a future divergence against
// testdata is a determinism break, not flakiness.
func TestGoldenTinyGridStableAcrossRuns(t *testing.T) {
	runOnce := func(workers string) string {
		var out, errb bytes.Buffer
		if err := run(context.Background(), []string{"-quiet", "-workers", workers, "-csv", "-", "testdata/tiny.campaign"}, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if runOnce("1") != runOnce("4") {
		t.Fatal("same-spec campaign output differs between worker counts")
	}
}

// TestPointsListing covers the -points dry-run path: the tiny grid must
// expand to exactly 4 points and run nothing.
func TestPointsListing(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-points", "testdata/tiny.campaign"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "4 points x 2 reps = 8 runs") {
		t.Fatalf("unexpected -points summary:\n%s", out.String())
	}
}

// TestBadSpecErrors checks that an invalid spec surfaces as an error from
// run rather than an exit.
func TestBadSpecErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"does-not-exist.campaign"}, &out, &errb); err == nil {
		t.Fatal("run succeeded on a missing spec file")
	}
}

// TestInterruptEmitsPartialResults: with the context already cancelled,
// the command must still emit whole (never truncated) summary + CSV
// output for the runs that completed — here zero — and exit non-zero via
// an error, with the partial-results notice on stderr.
func TestInterruptEmitsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	err := run(ctx, []string{"-quiet", "-csv", "-", "testdata/tiny.campaign"}, &out, &errb)
	if err == nil {
		t.Fatal("interrupted campaign exited zero")
	}
	if !strings.Contains(err.Error(), "partial results") {
		t.Fatalf("error %q does not mention partial results", err)
	}
	if !strings.Contains(errb.String(), "interrupted: emitting partial results") {
		t.Fatalf("stderr missing interrupt notice:\n%s", errb.String())
	}
	// The CSV must be complete: header plus one whole row per point.
	csvStart := strings.Index(out.String(), "point,ranks")
	if csvStart < 0 {
		t.Fatalf("no CSV emitted on interrupt:\n%s", out.String())
	}
	csv := strings.TrimRight(out.String()[csvStart:], "\n")
	if rows := strings.Split(csv, "\n"); len(rows) != 1+4 {
		t.Fatalf("partial CSV has %d rows, want header + 4 points:\n%s", len(rows), csv)
	}
}
