package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/hdf"
	"pioeval/internal/mpi"
	"pioeval/internal/mpiio"
	"pioeval/internal/posixio"
)

// BTIOConfig models the NPB BT-IO pattern: a 3D cell array decomposed over
// ranks, written collectively through the high-level library every few
// timesteps — the classic nested-strided multi-dimensional HPC output the
// paper contrasts against emerging workloads.
type BTIOConfig struct {
	Ranks int
	// Dims is the global cell grid (decomposed over ranks along dim 0).
	Dims [3]int64
	// ElemSize is bytes per cell (BT-IO uses 5 doubles = 40).
	ElemSize int64
	Steps    int
	// Collective uses two-phase MPI-IO; otherwise each rank writes its
	// slab independently.
	Collective bool
	// ComputePerStep models the solver time between dumps.
	ComputePerStep des.Time
	Path           string
}

func (c BTIOConfig) withDefaults() BTIOConfig {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.Dims == [3]int64{} {
		c.Dims = [3]int64{64, 64, 64}
	}
	if c.Dims[0] < int64(c.Ranks) {
		c.Dims[0] = int64(c.Ranks)
	}
	if c.ElemSize <= 0 {
		c.ElemSize = 40
	}
	if c.Steps <= 0 {
		c.Steps = 4
	}
	if c.Path == "" {
		c.Path = "/btio.h5"
	}
	return c
}

// BTIOReport summarizes a BT-IO run.
type BTIOReport struct {
	Config     BTIOConfig
	TotalBytes int64
	WriteMBps  float64
	Makespan   des.Time
	StepTime   []des.Time
}

// RunBTIO executes the BT-IO-like workload through the full HDF -> MPI-IO
// -> POSIX -> PFS stack.
func RunBTIO(h *Harness, cfg BTIOConfig) BTIOReport {
	cfg = cfg.withDefaults()
	rep := BTIOReport{Config: cfg, StepTime: make([]des.Time, cfg.Steps)}
	cells := cfg.Dims[0] * cfg.Dims[1] * cfg.Dims[2]
	rep.TotalBytes = cells * cfg.ElemSize * int64(cfg.Steps)

	mf := mpiio.NewFile(h.World, h.Envs, cfg.Path, mpiio.Hints{}, h.Col)
	hf := hdf.NewFile(mf, h.Col)

	// Block decomposition of dim 0 over ranks.
	slabOf := func(rank int) (start, count []int64) {
		per := cfg.Dims[0] / int64(cfg.Ranks)
		lo := int64(rank) * per
		n := per
		if rank == cfg.Ranks-1 {
			n = cfg.Dims[0] - lo
		}
		return []int64{lo, 0, 0}, []int64{n, cfg.Dims[1], cfg.Dims[2]}
	}

	stepStart := make([]des.Time, cfg.Steps)
	var ioTime des.Time
	end := h.Run(func(r *mpi.Rank, env *posixio.Env) {
		if err := hf.Create(r); err != nil {
			panic(fmt.Sprintf("btio: create: %v", err))
		}
		ds, err := hf.CreateDataset(r, "/cells", cfg.Dims[:], cfg.ElemSize)
		if err != nil {
			panic(fmt.Sprintf("btio: dataset: %v", err))
		}
		start, count := slabOf(r.ID())
		for step := 0; step < cfg.Steps; step++ {
			if cfg.ComputePerStep > 0 {
				r.Compute(cfg.ComputePerStep)
			}
			r.Barrier()
			if r.ID() == 0 {
				stepStart[step] = r.Now()
			}
			if cfg.Collective {
				err = ds.WriteSlabAll(r, start, count)
			} else {
				err = ds.WriteSlab(r, start, count)
			}
			if err != nil {
				panic(fmt.Sprintf("btio: write: %v", err))
			}
			r.Barrier()
			if r.ID() == 0 {
				rep.StepTime[step] = r.Now() - stepStart[step]
				ioTime += rep.StepTime[step]
			}
		}
		_ = hf.Close(r)
	})
	rep.Makespan = end
	rep.WriteMBps = bwMBps(rep.TotalBytes, ioTime)
	return rep
}
