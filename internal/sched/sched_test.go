package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pioeval/internal/des"
)

const minute = des.Minute

func TestFCFSSerializesOnContention(t *testing.T) {
	jobs := []Job{
		{ID: "a", Submit: 0, Nodes: 4, Walltime: 10 * minute, Runtime: 10 * minute},
		{ID: "b", Submit: 0, Nodes: 4, Walltime: 10 * minute, Runtime: 10 * minute},
	}
	log := Simulate(jobs, 4, FCFS)
	if log[0].Start != 0 || log[1].Start != 10*minute {
		t.Fatalf("starts = %v, %v", log[0].Start, log[1].Start)
	}
	if Makespan(log) != 20*minute {
		t.Errorf("makespan = %v", Makespan(log))
	}
}

func TestFCFSParallelWhenFits(t *testing.T) {
	jobs := []Job{
		{ID: "a", Submit: 0, Nodes: 2, Walltime: minute, Runtime: minute},
		{ID: "b", Submit: 0, Nodes: 2, Walltime: minute, Runtime: minute},
	}
	log := Simulate(jobs, 4, FCFS)
	if log[0].Start != 0 || log[1].Start != 0 {
		t.Fatalf("both should start immediately: %v %v", log[0].Start, log[1].Start)
	}
}

func TestFCFSHeadBlocking(t *testing.T) {
	// Narrow job c sits behind wide job b under FCFS even though it fits.
	jobs := []Job{
		{ID: "a", Submit: 0, Nodes: 3, Walltime: 10 * minute, Runtime: 10 * minute},
		{ID: "b", Submit: minute, Nodes: 4, Walltime: 10 * minute, Runtime: 10 * minute},
		{ID: "c", Submit: minute, Nodes: 1, Walltime: 2 * minute, Runtime: 2 * minute},
	}
	log := Simulate(jobs, 4, FCFS)
	byID := map[string]Record{}
	for _, r := range log {
		byID[r.ID] = r
	}
	if byID["c"].Start < byID["b"].Start {
		t.Fatalf("FCFS must not let c jump b: c=%v b=%v", byID["c"].Start, byID["b"].Start)
	}
}

func TestEASYBackfillsNarrowJob(t *testing.T) {
	// Same workload: EASY lets c run in a's shadow because c finishes
	// before b's reservation.
	jobs := []Job{
		{ID: "a", Submit: 0, Nodes: 3, Walltime: 10 * minute, Runtime: 10 * minute},
		{ID: "b", Submit: minute, Nodes: 4, Walltime: 10 * minute, Runtime: 10 * minute},
		{ID: "c", Submit: minute, Nodes: 1, Walltime: 2 * minute, Runtime: 2 * minute},
	}
	log := Simulate(jobs, 4, EASYBackfill)
	byID := map[string]Record{}
	for _, r := range log {
		byID[r.ID] = r
	}
	if byID["c"].Start != minute {
		t.Fatalf("c should backfill at 1min, started %v", byID["c"].Start)
	}
	// b must not be delayed past a's end.
	if byID["b"].Start != 10*minute {
		t.Fatalf("b delayed to %v by backfill", byID["b"].Start)
	}
}

func TestEASYDoesNotDelayHead(t *testing.T) {
	// A long narrow job must NOT backfill if it would outlast the shadow
	// and eat the head's nodes.
	jobs := []Job{
		{ID: "a", Submit: 0, Nodes: 3, Walltime: 10 * minute, Runtime: 10 * minute},
		{ID: "b", Submit: minute, Nodes: 4, Walltime: 10 * minute, Runtime: 10 * minute},
		{ID: "c", Submit: minute, Nodes: 1, Walltime: 60 * minute, Runtime: 60 * minute},
	}
	log := Simulate(jobs, 4, EASYBackfill)
	byID := map[string]Record{}
	for _, r := range log {
		byID[r.ID] = r
	}
	if byID["b"].Start != 10*minute {
		t.Fatalf("b should start at a's end (10min), got %v", byID["b"].Start)
	}
	if byID["c"].Start < byID["b"].Start {
		t.Fatalf("c must not delay b's reservation (c at %v)", byID["c"].Start)
	}
}

func TestBackfillImprovesUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var jobs []Job
	for i := 0; i < 60; i++ {
		nodes := 1 << rng.Intn(5) // 1..16
		rt := des.Time(rng.Intn(50)+5) * minute
		jobs = append(jobs, Job{
			ID:       string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Submit:   des.Time(rng.Intn(120)) * minute,
			Nodes:    nodes,
			Walltime: rt,
			Runtime:  rt,
		})
	}
	fcfs := Simulate(jobs, 16, FCFS)
	easy := Simulate(jobs, 16, EASYBackfill)
	if Makespan(easy) > Makespan(fcfs) {
		t.Errorf("backfill makespan %v worse than FCFS %v", Makespan(easy), Makespan(fcfs))
	}
	if AvgWait(easy) >= AvgWait(fcfs) {
		t.Errorf("backfill wait %v should beat FCFS %v", AvgWait(easy), AvgWait(fcfs))
	}
	if Utilization(easy, 16) < Utilization(fcfs, 16) {
		t.Errorf("backfill util %.2f < FCFS %.2f", Utilization(easy, 16), Utilization(fcfs, 16))
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("oversized job", func() {
		Simulate([]Job{{ID: "x", Nodes: 10, Runtime: minute, Walltime: minute}}, 4, FCFS)
	})
	mustPanic("zero runtime", func() {
		Simulate([]Job{{ID: "x", Nodes: 1, Walltime: minute}}, 4, FCFS)
	})
	mustPanic("zero pool", func() {
		Simulate(nil, 0, FCFS)
	})
}

func TestEmptyWorkload(t *testing.T) {
	log := Simulate(nil, 8, EASYBackfill)
	if len(log) != 0 || Makespan(log) != 0 || AvgWait(log) != 0 {
		t.Error("empty workload should produce empty log")
	}
	if Utilization(log, 8) != 0 {
		t.Error("empty utilization")
	}
}

// Properties that must hold for every policy and any workload:
// 1. every job runs exactly once, not before submit;
// 2. node capacity is never exceeded;
// 3. duration equals the job's runtime.
func TestPropSchedulerInvariants(t *testing.T) {
	check := func(policy Policy) func(seed int64, nRaw uint8) bool {
		return func(seed int64, nRaw uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			n := int(nRaw%20) + 1
			pool := rng.Intn(15) + 2
			var jobs []Job
			for i := 0; i < n; i++ {
				rt := des.Time(rng.Intn(100)+1) * des.Second
				jobs = append(jobs, Job{
					ID:       "j" + string(rune('A'+i%26)) + string(rune('0'+i/26)),
					Submit:   des.Time(rng.Intn(300)) * des.Second,
					Nodes:    rng.Intn(pool) + 1,
					Walltime: rt + des.Time(rng.Intn(60))*des.Second,
					Runtime:  rt,
				})
			}
			log := Simulate(jobs, pool, policy)
			if len(log) != len(jobs) {
				return false
			}
			var edges []capEdge
			seen := map[string]bool{}
			for _, r := range log {
				if seen[r.ID] || r.Start < r.Submit || r.End-r.Start != r.Runtime {
					return false
				}
				seen[r.ID] = true
				edges = append(edges, capEdge{r.Start, r.Nodes}, capEdge{r.End, -r.Nodes})
			}
			// Sweep: capacity never exceeded (ends release before starts at
			// the same instant).
			sortEdges(edges)
			used := 0
			for _, e := range edges {
				used += e.delta
				if used > pool {
					return false
				}
			}
			return true
		}
	}
	if err := quick.Check(check(FCFS), &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("FCFS: %v", err)
	}
	if err := quick.Check(check(EASYBackfill), &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("EASY: %v", err)
	}
}

type capEdge struct {
	at    des.Time
	delta int
}

func sortEdges(edges []capEdge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j-1], edges[j]
			if b.at < a.at || (b.at == a.at && b.delta < a.delta) {
				edges[j-1], edges[j] = b, a
			} else {
				break
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || EASYBackfill.String() != "easy-backfill" {
		t.Error("policy names")
	}
}
