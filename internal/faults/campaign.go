package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pioeval/internal/des"
)

// ParseCampaign parses a compact scripted-campaign spec, the format the
// --faults command-line flag accepts. Events are semicolon-separated
// `kind[:args]@time` terms, with times in Go duration syntax:
//
//	ostcrash:1@100ms        crash OST 1 at t=100ms
//	ostrecover:1@700ms      bring OST 1 back at t=700ms
//	slowdown:3x10@2s        degrade OST 3 by 10x at t=2s
//	mdsdown@1s  mdsup@1.5s  MDS unavailability window
//	transient:0.01@0s       1% transient I/O error rate from t=0
//	linkdegrade:4@3s        4x slower network from t=3s
func ParseCampaign(spec string) (Campaign, error) {
	c := Campaign{Name: "scripted"}
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		ev, err := parseEvent(term)
		if err != nil {
			return Campaign{}, err
		}
		c.Events = append(c.Events, ev)
	}
	if len(c.Events) == 0 {
		return Campaign{}, fmt.Errorf("faults: empty campaign spec %q", spec)
	}
	return c, nil
}

func parseEvent(term string) (Event, error) {
	head, at, ok := strings.Cut(term, "@")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q missing @time", term)
	}
	d, err := time.ParseDuration(strings.TrimSpace(at))
	if err != nil || d < 0 {
		return Event{}, fmt.Errorf("faults: bad event time in %q: %v", term, err)
	}
	ev := Event{At: des.Time(d.Nanoseconds())}
	kind, args, _ := strings.Cut(strings.TrimSpace(head), ":")
	switch strings.ToLower(kind) {
	case "ostcrash":
		ev.Kind = OSTCrash
		ev.OST, err = strconv.Atoi(args)
	case "ostrecover":
		ev.Kind = OSTRecover
		ev.OST, err = strconv.Atoi(args)
	case "slowdown":
		ev.Kind = OSTSlowdown
		id, factor, found := strings.Cut(args, "x")
		if !found {
			return Event{}, fmt.Errorf("faults: slowdown %q wants ID x FACTOR (e.g. slowdown:3x10)", term)
		}
		if ev.OST, err = strconv.Atoi(id); err == nil {
			ev.Factor, err = strconv.ParseFloat(factor, 64)
		}
	case "mdsdown":
		ev.Kind = MDSDown
	case "mdsup":
		ev.Kind = MDSUp
	case "transient":
		ev.Kind = TransientRate
		ev.Factor, err = strconv.ParseFloat(args, 64)
	case "linkdegrade":
		ev.Kind = LinkDegrade
		ev.Factor, err = strconv.ParseFloat(args, 64)
	default:
		return Event{}, fmt.Errorf("faults: unknown event kind %q in %q", kind, term)
	}
	if err != nil {
		return Event{}, fmt.Errorf("faults: bad arguments in %q: %v", term, err)
	}
	return ev, nil
}
