package reduce

import (
	"errors"
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/pfs"
	"pioeval/internal/storage"
)

// TestOSTCrashUnderCompressedBB: the OST dies while the burst buffer is
// still draining a compressed checkpoint. Everything below the stage —
// absorption, drain, loss — is accounted in physical (compressed) bytes,
// while the stage's own books keep the logical view. The two ledgers must
// reconcile exactly: stage physical == bb absorbed == drained + lost, and
// the reported DrainError counts physical bytes, not logical ones.
func TestOSTCrashUnderCompressedBB(t *testing.T) {
	e := des.NewEngine(31)
	cfg := pfs.DefaultConfig()
	cfg.NumOSS, cfg.OSTsPerOSS = 1, 1
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = 1
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultHDD() }
	fs := pfs.New(e, cfg)
	fc, err := faults.ParseCampaign("ostcrash:0@50ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faults.Run(e, fs, fc); err != nil {
		t.Fatal(err)
	}

	pr, err := storage.NewProvider(e, fs, storage.TierBB, storage.ProviderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := New("lz")
	if err != nil {
		t.Fatal(err)
	}
	pr.Push(comp)

	const logical = int64(32 << 20)
	tgt := pr.Target("cn0")
	var waitErr, finErr error
	e.Spawn("app", func(p *des.Proc) {
		h, cerr := tgt.Create(p, "/ckpt", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		for off := int64(0); off < logical; off += 1 << 20 {
			if werr := h.Write(p, off, 1<<20); werr != nil {
				t.Errorf("write at %d: %v", off, werr)
			}
		}
		waitErr = h.Fsync(p) // = WaitDrained under the stage
		_ = h.Close(p)
		finErr = pr.Finalize(p)
	})
	e.Run(des.MaxTime)

	if waitErr == nil {
		t.Fatal("fsync returned nil after losing drain segments")
	}
	var de *burstbuffer.DrainError
	if !errors.As(waitErr, &de) {
		t.Fatalf("fsync error = %T %v, want *burstbuffer.DrainError", waitErr, waitErr)
	}
	if !errors.Is(waitErr, pfs.ErrOSTDown) {
		t.Errorf("drain error should unwrap to ErrOSTDown, got %v", waitErr)
	}
	if finErr == nil {
		t.Error("Finalize swallowed the sticky drain error")
	}

	st := comp.StageStats()
	if st.LogicalWritten != logical {
		t.Fatalf("stage logical books = %d, want %d", st.LogicalWritten, logical)
	}
	if st.PhysicalWritten >= logical {
		t.Fatalf("nothing compressed: %d physical for %d logical", st.PhysicalWritten, logical)
	}
	bb := pr.Buffers()[0].Stats()
	// The buffer sits below the stage: it only ever saw physical bytes.
	if bb.Absorbed != st.PhysicalWritten {
		t.Fatalf("bb absorbed %d bytes, stage forwarded %d", bb.Absorbed, st.PhysicalWritten)
	}
	if bb.LostBytes == 0 || bb.Drained+bb.LostBytes != bb.Absorbed {
		t.Fatalf("physical ledger broken: drained %d + lost %d != absorbed %d",
			bb.Drained, bb.LostBytes, bb.Absorbed)
	}
	// The loss report is physical too — smaller than any logical figure.
	if de.Bytes != bb.LostBytes {
		t.Errorf("DrainError.Bytes = %d, bb lost %d", de.Bytes, bb.LostBytes)
	}
	if de.Bytes >= logical {
		t.Errorf("loss %d >= logical write %d: loss must be reported in physical bytes", de.Bytes, logical)
	}
	// Only successfully drained physical bytes may appear on the PFS.
	if _, w := fs.TotalBytes(); w != bb.Drained {
		t.Errorf("PFS received %d bytes, drain accounted %d", w, bb.Drained)
	}
}
