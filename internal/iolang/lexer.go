// Package iolang implements a small domain-specific language for
// describing synthetic I/O workloads, in the role of the CODES I/O
// language: scripted open/read/write/metadata operations with loops,
// per-rank parameterization, and size/duration literals. Scripts can be
// interpreted directly against the simulated file system or compiled to
// concrete op streams for the replayer — the two "workload consumer" paths
// of the IOWA abstraction.
//
// Example:
//
//	workload "checkpoint" {
//	    ranks 8
//	    stripe count=4 size=1MB
//	    loop 5 {
//	        compute 100ms
//	        barrier
//	        write "/ckpt" offset=rank*16MB size=16MB chunk=4MB
//	    }
//	}
package iolang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // integer with optional size/duration suffix, already scaled
	tokString
	tokLBrace
	tokRBrace
	tokEquals
	tokStar
	tokPlus
)

// token is one lexeme.
type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// unit multipliers for sizes (bytes) and durations (nanoseconds).
var unitScale = map[string]int64{
	"B": 1, "KB": 1 << 10, "MB": 1 << 20, "GB": 1 << 30,
	"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000,
}

// lex tokenizes src. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{kind: tokLBrace, text: "{", line: line})
			i++
		case c == '}':
			toks = append(toks, token{kind: tokRBrace, text: "}", line: line})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokEquals, text: "=", line: line})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, text: "*", line: line})
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, text: "+", line: line})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("iolang:%d: unterminated string", line)
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("iolang:%d: unterminated string", line)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], line: line})
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			numEnd := j
			for j < len(src) && unicode.IsLetter(rune(src[j])) {
				j++
			}
			var n int64
			for _, d := range src[i:numEnd] {
				n = n*10 + int64(d-'0')
			}
			if suffix := src[numEnd:j]; suffix != "" {
				scale, ok := unitScale[suffix]
				if !ok {
					return nil, fmt.Errorf("iolang:%d: unknown unit %q", line, suffix)
				}
				n *= scale
			}
			toks = append(toks, token{kind: tokNumber, num: n, line: line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], line: line})
			i = j
		default:
			return nil, fmt.Errorf("iolang:%d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

// substitute expands ${rank} and ${iter} in path strings.
func substitute(path string, rank, iter int) string {
	path = strings.ReplaceAll(path, "${rank}", fmt.Sprintf("%d", rank))
	path = strings.ReplaceAll(path, "${iter}", fmt.Sprintf("%d", iter))
	return path
}
