package reduce

import (
	"math"
	"strings"
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/storage"
)

// recTarget is a zero-cost in-memory Target that records every data
// extent forwarded to it, so tests can inspect exactly what a stage
// emits below itself.
type recTarget struct {
	writes [][2]int64 // {off, size} in call order
	reads  [][2]int64
	sizes  map[string]int64 // path -> max physical end position
}

func newRecTarget() *recTarget { return &recTarget{sizes: map[string]int64{}} }

func (r *recTarget) Create(p *des.Proc, path string, sc int, ss int64) (storage.Handle, error) {
	return &recHandle{t: r, path: path}, nil
}
func (r *recTarget) Open(p *des.Proc, path string) (storage.Handle, error) {
	return &recHandle{t: r, path: path}, nil
}
func (r *recTarget) Stat(p *des.Proc, path string) (storage.FileInfo, error) {
	return storage.FileInfo{Path: path, Size: r.sizes[path]}, nil
}
func (r *recTarget) Mkdir(p *des.Proc, path string) error  { return nil }
func (r *recTarget) Rmdir(p *des.Proc, path string) error  { return nil }
func (r *recTarget) Unlink(p *des.Proc, path string) error { return nil }
func (r *recTarget) Readdir(p *des.Proc, path string) ([]string, error) {
	return nil, nil
}

type recHandle struct {
	t    *recTarget
	path string
}

func (h *recHandle) Path() string { return h.path }
func (h *recHandle) Write(p *des.Proc, off, size int64) error {
	h.t.writes = append(h.t.writes, [2]int64{off, size})
	if end := off + size; end > h.t.sizes[h.path] {
		h.t.sizes[h.path] = end
	}
	return nil
}
func (h *recHandle) Read(p *des.Proc, off, size int64) error {
	h.t.reads = append(h.t.reads, [2]int64{off, size})
	return nil
}
func (h *recHandle) Fsync(p *des.Proc) error { return nil }
func (h *recHandle) Close(p *des.Proc) error { return nil }

// drive runs fn as a single simulated process to completion.
func drive(t *testing.T, fn func(p *des.Proc)) {
	t.Helper()
	e := des.NewEngine(1)
	e.Spawn("test", fn)
	e.Run(des.MaxTime)
}

func TestPresetsAndLookup(t *testing.T) {
	want := []string{"deflate", "lz", "sz", "zfp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (sorted)", got, want)
		}
	}
	for _, n := range want {
		m, ok := Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missed", n)
		}
		if m.Name != n || m.Ratio < 1 || m.CompressMBps <= 0 || m.DecompressMBps <= 0 {
			t.Errorf("preset %q malformed: %+v", n, m)
		}
		if (n == "zfp" || n == "sz") != m.Lossy {
			t.Errorf("preset %q lossy = %v", n, m.Lossy)
		}
	}
	if _, err := New("brotli"); err == nil || !strings.Contains(err.Error(), "unknown compressor") {
		t.Errorf("New(brotli) = %v, want unknown-compressor error", err)
	}
}

func TestNewStageClampsModel(t *testing.T) {
	s := NewStage(Model{Name: "x", Ratio: 0.25, CompressMBps: -1, DecompressMBps: 0, RampBytes: -5})
	m := s.Model()
	if m.Ratio != 1 || m.CompressMBps != 1 || m.DecompressMBps != 1 || m.RampBytes != 0 {
		t.Fatalf("clamped model = %+v", m)
	}
}

// TestPhysExtentMonotoneContiguous: sequential logical chunks must map to
// exactly contiguous physical extents — no gaps and no overlaps — or the
// device model below would charge phantom seeks for a sequential stream.
func TestPhysExtentMonotoneContiguous(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		const chunk = 47008 // deliberately not a multiple of anything
		var nextPhys int64
		var logical, physical int64
		for i := int64(0); i < 64; i++ {
			lo, n := s.physExtent(i*chunk, chunk)
			if i == 0 && lo != 0 {
				t.Fatalf("%s: first extent starts at %d", name, lo)
			}
			if i > 0 && lo != nextPhys {
				t.Fatalf("%s: chunk %d starts at %d, previous ended at %d", name, i, lo, nextPhys)
			}
			if n < 1 {
				t.Fatalf("%s: chunk %d shrank to %d bytes", name, i, n)
			}
			nextPhys = lo + n
			logical += chunk
			physical += n
		}
		// The boundary map rounds up, so physical*ratio covers logical.
		if float64(physical)*s.ModelRatio() < float64(logical) {
			t.Errorf("%s: physical %d x ratio %.2f < logical %d", name, physical, s.ModelRatio(), logical)
		}
		// And the achieved ratio is within one rounding step of the model.
		if got := float64(logical) / float64(physical); math.Abs(got-s.ModelRatio()) > 0.02*s.ModelRatio() {
			t.Errorf("%s: achieved ratio %.4f, model %.4f", name, got, s.ModelRatio())
		}
	}
}

func TestZeroAndTinyTransfers(t *testing.T) {
	s, err := New("sz") // highest ratio: most aggressive shrink
	if err != nil {
		t.Fatal(err)
	}
	if _, n := s.physExtent(100, 0); n != 0 {
		t.Errorf("zero-size transfer forwarded %d bytes", n)
	}
	if _, n := s.physExtent(0, 1); n != 1 {
		t.Errorf("1-byte transfer forwarded %d bytes, want 1 (never vanish)", n)
	}
}

// TestStageAccounting drives writes and reads through the stage over a
// recording target and checks the logical/physical books and the
// CPU-time charges.
func TestStageAccounting(t *testing.T) {
	s, err := New("lz")
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecTarget()
	tgt := s.Wrap("cn0", rec)
	const chunk, nops = int64(1 << 20), 8
	var elapsed des.Time
	drive(t, func(p *des.Proc) {
		h, cerr := tgt.Create(p, "/f", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		start := p.Now()
		for i := int64(0); i < nops; i++ {
			if werr := h.Write(p, i*chunk, chunk); werr != nil {
				t.Errorf("write: %v", werr)
			}
		}
		for i := int64(0); i < nops/2; i++ {
			if rerr := h.Read(p, i*chunk, chunk); rerr != nil {
				t.Errorf("read: %v", rerr)
			}
		}
		elapsed = p.Now() - start
		_ = h.Close(p)
	})

	st := s.StageStats()
	if st.LogicalWritten != nops*chunk || st.WriteOps != nops {
		t.Fatalf("write books: %+v", st)
	}
	if st.LogicalRead != nops/2*chunk || st.ReadOps != nops/2 {
		t.Fatalf("read books: %+v", st)
	}
	var phys int64
	for _, w := range rec.writes {
		phys += w[1]
	}
	if phys != st.PhysicalWritten {
		t.Fatalf("stage says %d physical written, target received %d", st.PhysicalWritten, phys)
	}
	if r := st.Ratio(); math.Abs(r-s.ModelRatio()) > 0.02*s.ModelRatio() {
		t.Errorf("achieved ratio %.4f, model %.4f", r, s.ModelRatio())
	}
	// The recording target is free, so all elapsed time is codec CPU.
	if st.CompressSeconds <= 0 || st.DecompressSeconds <= 0 {
		t.Fatalf("no CPU charged: %+v", st)
	}
	if want := st.CompressSeconds + st.DecompressSeconds; math.Abs(elapsed.Seconds()-want) > 1e-6 {
		t.Errorf("elapsed %.6fs, codec books say %.6fs", elapsed.Seconds(), want)
	}
	m := s.Model()
	wantCompress := float64(nops) * float64(chunk+m.RampBytes) / (m.CompressMBps * 1e6)
	if math.Abs(st.CompressSeconds-wantCompress) > 0.01*wantCompress {
		t.Errorf("compress CPU %.6fs, model says %.6fs", st.CompressSeconds, wantCompress)
	}
}

// TestStatScalesToLogical: files written through the stage must stat at
// (at least) their logical size, so size-threshold scans above the stage
// — the io500 find predicate — keep working.
func TestStatScalesToLogical(t *testing.T) {
	s, err := New("deflate")
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecTarget()
	tgt := s.Wrap("cn0", rec)
	const logical = int64(3901) // mdtest-hard payload: small and odd
	drive(t, func(p *des.Proc) {
		h, cerr := tgt.Create(p, "/f", 0, 0)
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		_ = h.Write(p, 0, logical)
		_ = h.Close(p)
		st, serr := tgt.Stat(p, "/f")
		if serr != nil {
			t.Errorf("stat: %v", serr)
			return
		}
		if st.Size < logical {
			t.Errorf("stat size %d < logical %d", st.Size, logical)
		}
		if st.Size > logical+int64(s.ModelRatio())+1 {
			t.Errorf("stat size %d overshoots logical %d by more than rounding", st.Size, logical)
		}
	})
}

func TestRatioOnEmptyStats(t *testing.T) {
	var st storage.StageStats
	if st.Ratio() != 1 {
		t.Fatalf("empty-stats ratio = %f, want 1", st.Ratio())
	}
}
