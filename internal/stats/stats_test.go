package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := Variance(xs); !approx(got, 32.0/7, 1e-12) {
		t.Errorf("variance = %v", got)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("stddev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("edge cases")
	}
}

func TestCoeffVar(t *testing.T) {
	if got := CoeffVar([]float64{10, 10, 10}); got != 0 {
		t.Errorf("constant CV = %v", got)
	}
	if CoeffVar(nil) != 0 {
		t.Error("empty CV")
	}
	spread := CoeffVar([]float64{1, 100})
	tight := CoeffVar([]float64{50, 51})
	if spread <= tight {
		t.Error("CV should reflect relative spread")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Q(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !approx(got, 1.5, 1e-12) {
		t.Errorf("interpolated median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.P95 <= s.P75 {
		t.Error("quantiles not ordered")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !approx(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !approx(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	r, err = Pearson(xs, []float64{5, 5, 5, 5, 5})
	if err != nil || r != 0 {
		t.Errorf("constant series = %v, %v", r, err)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample should error")
	}
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // monotone but nonlinear
	}
	rho, err := Spearman(xs, ys)
	if err != nil || !approx(rho, 1, 1e-12) {
		t.Errorf("spearman = %v, %v (want 1)", rho, err)
	}
	pear, _ := Pearson(xs, ys)
	if pear >= rho {
		t.Errorf("pearson (%v) should undershoot spearman (%v) on nonlinear data", pear, rho)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestLinearRegression(t *testing.T) {
	// y = 3 + 2x with noise-free data.
	var xs, ys []float64
	for x := 0.0; x < 10; x++ {
		xs = append(xs, x)
		ys = append(ys, 3+2*x)
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2, 1e-9) || !approx(fit.Intercept, 3, 1e-9) || !approx(fit.R2, 1, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if got := fit.Predict(100); !approx(got, 203, 1e-9) {
		t.Errorf("predict = %v", got)
	}
	if _, err := LinearRegression([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestMultipleRegression(t *testing.T) {
	// y = 1 + 2a + 3b
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		X = append(X, []float64{a, b})
		y = append(y, 1+2*a+3*b)
	}
	fit, err := MultipleRegression(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if !approx(fit.Coef[i], w, 1e-6) {
			t.Errorf("coef[%d] = %v, want %v", i, fit.Coef[i], w)
		}
	}
	if got := fit.Predict([]float64{1, 1}); !approx(got, 6, 1e-6) {
		t.Errorf("predict = %v", got)
	}
	if _, err := MultipleRegression(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := MultipleRegression([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix should error")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !approx(got, c.want, 1e-12) {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if NewECDF(nil).At(1) != 0 {
		t.Error("empty ECDF")
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("shape = %d edges %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d", total)
	}
	if e, c := Histogram(nil, 3); e != nil || c != nil {
		t.Error("empty histogram")
	}
}

func TestWelchTTest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	same1, same2, shifted := make([]float64, 200), make([]float64, 200), make([]float64, 200)
	for i := range same1 {
		same1[i] = rng.NormFloat64()
		same2[i] = rng.NormFloat64()
		shifted[i] = rng.NormFloat64() + 2
	}
	r, err := WelchTTest(same1, same2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant {
		t.Errorf("same-distribution test significant: %+v", r)
	}
	r, _ = WelchTTest(same1, shifted)
	if !r.Significant {
		t.Errorf("shifted-mean test not significant: %+v", r)
	}
	if _, err := WelchTTest([]float64{1}, same1); err == nil {
		t.Error("tiny sample should error")
	}
	// Zero-variance identical samples.
	r, _ = WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if r.Significant {
		t.Error("identical constants significant")
	}
}

func TestKSTest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, c := make([]float64, 300), make([]float64, 300), make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		c[i] = rng.Float64() * 10 // very different distribution
	}
	r, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant {
		t.Errorf("same-distribution KS significant: %+v", r)
	}
	r, _ = KSTest(a, c)
	if !r.Significant {
		t.Errorf("different-distribution KS not significant: %+v", r)
	}
	if _, err := KSTest(nil, a); err == nil {
		t.Error("empty sample should error")
	}
}

func TestMarkovChain(t *testing.T) {
	// Sequence 0,1,0,1,... : deterministic alternation.
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = i % 2
	}
	m := FitMarkov(seq, 2)
	if p := m.Prob(0, 1); !approx(p, 1, 1e-12) {
		t.Errorf("P(1|0) = %v", p)
	}
	if m.Predict(0) != 1 || m.Predict(1) != 0 {
		t.Error("predictions wrong")
	}
	if m.Predict(5) != -1 || m.Prob(5, 0) != 0 {
		t.Error("out-of-range state handling")
	}
	pi := m.Stationary(100)
	if !approx(pi[0], 0.5, 1e-6) || !approx(pi[1], 0.5, 1e-6) {
		t.Errorf("stationary = %v", pi)
	}
}

func TestMarkovUnobservedState(t *testing.T) {
	m := NewMarkovChain(3)
	m.Observe(0, 1)
	if m.Prob(2, 0) != 0 || m.Predict(2) != -1 {
		t.Error("unobserved state should have no predictions")
	}
}

// Property: Pearson is within [-1, 1] for any non-degenerate paired data.
func TestPropPearsonBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestPropQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly periodic square wave, period 4.
	var xs []float64
	for i := 0; i < 64; i++ {
		if i%4 < 2 {
			xs = append(xs, 1)
		} else {
			xs = append(xs, -1)
		}
	}
	if r := Autocorrelation(xs, 0); !approx(r, 1, 1e-12) {
		t.Errorf("lag-0 = %v", r)
	}
	if r := Autocorrelation(xs, 4); r < 0.8 {
		t.Errorf("lag-4 = %v, want high", r)
	}
	if r := Autocorrelation(xs, 2); r > -0.8 {
		t.Errorf("lag-2 = %v, want strongly negative", r)
	}
	if Autocorrelation(xs, -1) != 0 || Autocorrelation(xs, 1000) != 0 {
		t.Error("out-of-range lags")
	}
	if Autocorrelation([]float64{5, 5, 5}, 1) != 0 {
		t.Error("constant series")
	}
}

func TestDetectPeriod(t *testing.T) {
	var xs []float64
	for i := 0; i < 120; i++ {
		v := 0.0
		if i%10 == 0 {
			v = 100 // a burst every 10 samples
		}
		xs = append(xs, v)
	}
	period, strength := DetectPeriod(xs, 2, 40, 0.3)
	if period != 10 {
		t.Fatalf("period = %d (strength %.2f), want 10", period, strength)
	}
	// White noise: no period.
	rng := rand.New(rand.NewSource(4))
	var noise []float64
	for i := 0; i < 200; i++ {
		noise = append(noise, rng.NormFloat64())
	}
	if p, _ := DetectPeriod(noise, 2, 50, 0.5); p != 0 {
		t.Errorf("noise period = %d, want 0", p)
	}
}
