package pioeval_test

import (
	"bytes"
	"os"
	"testing"
	"time"

	"pioeval/internal/campaign"
)

// tierSpec is the direct-vs-tiered checkpoint sweep recorded in
// BENCH_tier.json (testdata/tiers.campaign is the cmd/campaign form of
// the same grid): the three storage tiers crossed with a slow and a fast
// OST device at two rank counts, three repetitions each.
func tierSpec() campaign.Spec {
	return campaign.Spec{
		Name:          "tier-sweep",
		Workload:      campaign.WorkloadCheckpoint,
		Seed:          77,
		Reps:          3,
		Steps:         6,
		Ranks:         []int{4, 8},
		Devices:       []string{"hdd", "nvme"},
		StripeCounts:  []int{4},
		BlockSizes:    []int64{4 << 20},
		TransferSizes: []int64{1 << 20},
		Tiers:         []string{"direct", "bb", "nodelocal"},
	}
}

// TestTierSpecFileMatchesBench keeps testdata/tiers.campaign (the
// reproduction recipe printed in BENCH_tier.json's runbook) in lockstep
// with tierSpec: if either drifts, the recorded JSON no longer describes
// what the benchmark measures.
func TestTierSpecFileMatchesBench(t *testing.T) {
	src, err := os.ReadFile("testdata/tiers.campaign")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := campaign.ParseSpec(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	for _, pt := range parsed.Expand() {
		a.WriteString(pt.Label() + "\n")
	}
	for _, pt := range tierSpec().Expand() {
		b.WriteString(pt.Label() + "\n")
	}
	if a.String() != b.String() {
		t.Errorf("testdata/tiers.campaign expands differently from tierSpec():\nfile:\n%sbench:\n%s", a.String(), b.String())
	}
	if parsed.Seed != tierSpec().Seed || parsed.Reps != tierSpec().Reps || parsed.Steps != tierSpec().Steps {
		t.Errorf("scalar drift: file seed/reps/steps %d/%d/%d, bench %d/%d/%d",
			parsed.Seed, parsed.Reps, parsed.Steps, tierSpec().Seed, tierSpec().Reps, tierSpec().Steps)
	}
}

// TestTierCampaignDeterminismAcrossWorkers extends the campaign runner's
// determinism guarantee across the storage-tier axis: burst-buffer drain
// workers and node-local scratch devices live inside each run's private
// engine, so aggregating the tier sweep at workers=1 and workers=8 must
// produce byte-identical JSON.
func TestTierCampaignDeterminismAcrossWorkers(t *testing.T) {
	var out [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		rep, err := campaign.Run(tierSpec(), campaign.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("workers=1 and workers=8 produced different aggregated JSON for the tier sweep")
	}
}

// BenchmarkTierSweep runs the 12-point, 36-run tier sweep and reports the
// headline comparison behind BENCH_tier.json: effective checkpoint
// bandwidth through the direct, burst-buffer, and node-local tiers on an
// HDD-backed cluster at 4 ranks. The write-back buffer absorbs dumps at
// NVMe speed and drains behind compute, so its perceived bandwidth must
// beat the direct path on a slow backing store; if it ever fails to, the
// tiering seam has stopped doing its job.
func BenchmarkTierSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rep, err := campaign.Run(tierSpec(), campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start)
		tiers := map[string]float64{}
		var bbPeak, bbStalls float64
		for _, ps := range rep.Points {
			p := ps.Point
			if p.Ranks != 4 || p.Device != "hdd" {
				continue
			}
			name := p.Tier
			if name == "" {
				name = "direct"
			}
			tiers[name] = ps.Metrics["effective_MBps"].Mean
			if p.Tier == "bb" {
				bbPeak = ps.Metrics["bb_peak_used_MB"].Mean
				bbStalls = ps.Metrics["bb_stalls"].Mean
			}
		}
		direct, bb := tiers["direct"], tiers["bb"]
		if direct <= 0 || bb <= direct {
			b.Fatalf("burst-buffer tier does not beat direct on hdd: direct %g MB/s, bb %g MB/s", direct, bb)
		}
		b.ReportMetric(float64(len(rep.Points)), "points")
		b.ReportMetric(float64(len(rep.Runs))/wall.Seconds(), "runs/s")
		b.ReportMetric(direct, "direct_MBps")
		b.ReportMetric(bb, "bb_MBps")
		b.ReportMetric(tiers["nodelocal"], "nodelocal_MBps")
		b.ReportMetric(bb/direct, "bb_speedup")
		b.ReportMetric(bbPeak, "bb_peak_used_MB")
		b.ReportMetric(bbStalls, "bb_stalls")
	}
}
