// Command replayer replays a recorded trace against a (possibly different)
// simulated cluster, optionally extrapolating the rank count first — the
// ScalaIOExtrap workflow.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/replay"
	"pioeval/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replayer: ")
	fs := flag.NewFlagSet("replayer", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	timed := fs.Bool("timed", false, "preserve recorded inter-op compute time")
	extrapolate := fs.Int("extrapolate", 0, "extrapolate the trace to this many ranks before replay")
	_ = fs.Parse(os.Args[1:])

	if fs.NArg() != 1 {
		log.Fatal("usage: replayer [flags] <trace file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var recs []trace.Record
	if strings.HasSuffix(fs.Arg(0), ".json") {
		recs, err = trace.ReadJSON(f)
	} else {
		recs, err = trace.ReadBinary(f)
	}
	if err != nil {
		log.Fatal(err)
	}

	rankOps := replay.FromTrace(recs)
	fmt.Printf("loaded %d records (%d ranks)\n", len(recs), len(rankOps))
	if *extrapolate > 0 {
		rankOps, err = replay.Extrapolate(rankOps, *extrapolate)
		if err != nil {
			log.Fatalf("extrapolation failed: %v", err)
		}
		fmt.Printf("extrapolated to %d ranks\n", *extrapolate)
	}

	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	e := des.NewEngine(cluster.Seed)
	res, err := replay.Run(e, pfs.New(e, cfg), rankOps, replay.Options{Timed: *timed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d ops: read %s, wrote %s\n",
		res.Ops, cli.FormatSize(res.BytesRead), cli.FormatSize(res.BytesWritten))
	fmt.Printf("makespan %v, aggregate bandwidth %.2f MB/s\n",
		res.Makespan, res.Bandwidth()/1e6)
}
