// Scientific workflow + burst buffer: the §V-C scenario. A multi-stage
// workflow DAG runs against the PFS, showing its metadata intensity; then a
// bursty checkpoint is absorbed by the Figure-1 burst-buffer tier.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

func main() {
	log.SetFlags(0)

	// Part 1: a diamond workflow (produce -> 4x analyze -> combine).
	engine := des.NewEngine(11)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	fsim := pfs.New(engine, cfg)
	wf := workload.RunWorkflow(engine, fsim, workload.DiamondWorkflow(4, 32<<20), nil)
	fmt.Println("diamond workflow (1 producer, 4 analyzers, 1 combiner):")
	fmt.Printf("  tasks %d, makespan %v\n", wf.TasksRun, wf.Makespan)
	fmt.Printf("  data: read %d MB, wrote %d MB\n", wf.BytesRead>>20, wf.BytesWrit>>20)
	fmt.Printf("  metadata: %d MDS ops (%.2f ops per MB moved)\n", wf.MetaOps, wf.MetaOpsPerMB)

	// Part 2: a chain workflow with small files is far more
	// metadata-intensive per byte.
	engine2 := des.NewEngine(11)
	fsim2 := pfs.New(engine2, cfg)
	chain := workload.RunWorkflow(engine2, fsim2, workload.ChainWorkflow(8, 16, 128<<10), nil)
	fmt.Println("\nchain workflow (8 stages x 16 small files):")
	fmt.Printf("  metadata intensity: %.2f MDS ops per MB (vs %.2f for the diamond)\n",
		chain.MetaOpsPerMB, wf.MetaOpsPerMB)

	// Part 3: checkpoint through the burst buffer vs direct.
	engine3 := des.NewEngine(11)
	fsim3 := pfs.New(engine3, cfg)
	bb := burstbuffer.New(engine3, fsim3, "bb0", burstbuffer.DefaultConfig())
	h := workload.NewHarness(engine3, fsim3, 4, "cn", nil)
	buffered := workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks: 4, BytesPerRank: 16 << 20, Steps: 3, ComputeTime: 50 * des.Millisecond,
		Buffer: bb,
	})

	engine4 := des.NewEngine(11)
	fsim4 := pfs.New(engine4, cfg)
	h4 := workload.NewHarness(engine4, fsim4, 4, "cn", nil)
	direct := workload.RunCheckpoint(h4, workload.CheckpointConfig{
		Ranks: 4, BytesPerRank: 16 << 20, Steps: 3, ComputeTime: 50 * des.Millisecond,
	})

	fmt.Println("\ncheckpoint (4 ranks x 16MB x 3 steps):")
	fmt.Printf("  direct to PFS:      perceived %8.1f MB/s, I/O fraction %.2f\n",
		direct.EffectiveMBps, direct.IOFraction)
	fmt.Printf("  via burst buffer:   perceived %8.1f MB/s, I/O fraction %.2f\n",
		buffered.EffectiveMBps, buffered.IOFraction)
	st := bb.Stats()
	fmt.Printf("  buffer absorbed %d MB (peak occupancy %d MB, stalls %d)\n",
		st.Absorbed>>20, st.PeakUsed>>20, st.Stalls)
}
