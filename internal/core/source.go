// Package core implements the paper's primary contribution as executable
// structure: the three-phase iterative I/O evaluation cycle of Figure 4
// (measurement & statistics collection → modeling & prediction →
// simulation, with a feedback loop), plus an IOWA-style workload
// abstraction in which interchangeable workload sources (traces, synthetic
// descriptions, characterization profiles) feed interchangeable consumers
// (replay, simulation).
package core

import (
	"errors"
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/profile"
	"pioeval/internal/replay"
	"pioeval/internal/skeleton"
	"pioeval/internal/trace"
)

// ErrEmptySource indicates a workload source with no operations.
var ErrEmptySource = errors.New("core: workload source produced no operations")

// Source is the IOWA-like workload abstraction: anything that can produce
// per-rank concrete operation streams.
type Source interface {
	// Name identifies the source kind for reports.
	Name() string
	// Ops materializes the workload.
	Ops() ([][]skeleton.ConcreteOp, error)
}

// TraceSource derives a workload from recorded trace records (the
// replay-based path).
type TraceSource struct {
	Records []trace.Record
}

// Name implements Source.
func (s TraceSource) Name() string { return "trace" }

// Ops implements Source.
func (s TraceSource) Ops() ([][]skeleton.ConcreteOp, error) {
	ops := replay.FromTrace(s.Records)
	if len(ops) == 0 {
		return nil, ErrEmptySource
	}
	return ops, nil
}

// SyntheticSource derives a workload from an iolang script (the
// synthetic-description path, like the CODES I/O language).
type SyntheticSource struct {
	Workload *iolang.Workload
}

// Name implements Source.
func (s SyntheticSource) Name() string { return "synthetic" }

// Ops implements Source.
func (s SyntheticSource) Ops() ([][]skeleton.ConcreteOp, error) {
	if s.Workload == nil {
		return nil, ErrEmptySource
	}
	ops := iolang.Compile(s.Workload)
	if len(ops) == 0 {
		return nil, ErrEmptySource
	}
	return ops, nil
}

// ProfileSource synthesizes a representative workload from Darshan-like
// characterization counters — the technique Snyder et al. propose for
// generating workloads from profiles rather than full traces. The
// synthesized stream reproduces each file's op counts, access-size
// histogram, and sequential fraction, but not exact offsets or timing.
type ProfileSource struct {
	Files []*profile.FileCounters
	// Ranks splits the synthesized ops over this many ranks (default 1).
	Ranks int
}

// Name implements Source.
func (s ProfileSource) Name() string { return "profile" }

// bucketRepresentative returns a representative access size per histogram
// bucket (geometric-ish midpoint).
var bucketRepresentative = []int64{
	64, 512, 4 << 10, 32 << 10, 512 << 10, 2 << 20, 8 << 20, 32 << 20, 128 << 20,
}

// Ops implements Source.
func (s ProfileSource) Ops() ([][]skeleton.ConcreteOp, error) {
	if len(s.Files) == 0 {
		return nil, ErrEmptySource
	}
	ranks := s.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	var all []skeleton.ConcreteOp
	for _, f := range s.Files {
		all = append(all, synthesizeFile(f)...)
	}
	if len(all) == 0 {
		return nil, ErrEmptySource
	}
	// Round-robin ops over ranks, preserving per-file order within a rank
	// as well as possible (ops for one file stay on one rank).
	out := make([][]skeleton.ConcreteOp, ranks)
	byFile := map[string]int{}
	nextRank := 0
	for _, op := range all {
		r, ok := byFile[op.Path]
		if !ok {
			r = nextRank % ranks
			byFile[op.Path] = r
			nextRank++
		}
		out[r] = append(out[r], op)
	}
	return out, nil
}

// synthesizeFile generates ops reproducing one file's counters.
func synthesizeFile(f *profile.FileCounters) []skeleton.ConcreteOp {
	var ops []skeleton.ConcreteOp
	ops = append(ops, skeleton.ConcreteOp{Op: "open", Path: f.Path})

	seqFrac := func(seq, total uint64) float64 {
		if total <= 1 {
			return 1
		}
		return float64(seq) / float64(total-1)
	}

	emit := func(kind string, hist [profile.NumBuckets]uint64, frac float64) {
		// Start past offset 0 so that backward jumps (to 0) register as
		// non-sequential in re-characterization.
		cursor := int64(1 << 20)
		var emitted uint64
		for b, count := range hist {
			size := bucketRepresentative[b]
			for k := uint64(0); k < count; k++ {
				off := cursor
				// The first frac fraction of ops continue sequentially;
				// the rest jump backward (offset below the previous end),
				// which Darshan-style counters classify as non-sequential.
				if frac < 1 && emitted > 0 {
					pos := float64(emitted)
					if pos/float64(max64(1, totalOps(hist)-1)) >= frac {
						off = 0
					}
				}
				ops = append(ops, skeleton.ConcreteOp{Op: kind, Path: f.Path, Offset: off, Size: size})
				cursor = off + size + 1 // +1 keeps even resumed runs non-consecutive after a jump
				emitted++
			}
		}
	}
	emit("write", f.WriteHist, seqFrac(f.SeqWrites, f.Writes))
	emit("read", f.ReadHist, seqFrac(f.SeqReads, f.Reads))
	for i := uint64(0); i < f.Fsyncs; i++ {
		ops = append(ops, skeleton.ConcreteOp{Op: "fsync", Path: f.Path})
	}
	ops = append(ops, skeleton.ConcreteOp{Op: "close", Path: f.Path})
	return ops
}

func totalOps(h [profile.NumBuckets]uint64) uint64 {
	var n uint64
	for _, v := range h {
		n += v
	}
	return n
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Consumer is the other half of the IOWA abstraction: anything that can
// execute a materialized workload against a file-system deployment.
type Consumer interface {
	Name() string
	Consume(e *des.Engine, fs *pfs.FS, ops [][]skeleton.ConcreteOp) (replay.Result, error)
}

// ReplayConsumer replays the ops directly (replay-tool path).
type ReplayConsumer struct {
	Options replay.Options
}

// Name implements Consumer.
func (c ReplayConsumer) Name() string { return "replay" }

// Consume implements Consumer.
func (c ReplayConsumer) Consume(e *des.Engine, fs *pfs.FS, ops [][]skeleton.ConcreteOp) (replay.Result, error) {
	return replay.Run(e, fs, ops, c.Options)
}

// SkeletonConsumer first compresses each rank's stream into a skeleton
// program, then replays the skeleton's expansion — validating that the
// compact benchmark reproduces the original I/O (the Skel/Hao et al.
// path). The compression ratio is reported through the pointer.
type SkeletonConsumer struct {
	Options replay.Options
	// MeanCompressionRatio, when non-nil, receives the mean per-rank
	// skeleton compression ratio.
	MeanCompressionRatio *float64
}

// Name implements Consumer.
func (c SkeletonConsumer) Name() string { return "skeleton" }

// Consume implements Consumer.
func (c SkeletonConsumer) Consume(e *des.Engine, fs *pfs.FS, ops [][]skeleton.ConcreteOp) (replay.Result, error) {
	folded := make([][]skeleton.ConcreteOp, len(ops))
	var ratioSum float64
	for r, rankOps := range ops {
		toks := opsToTokens(rankOps)
		prog := skeleton.Fold(toks)
		ratioSum += prog.CompressionRatio()
		folded[r] = prog.Ops()
	}
	if c.MeanCompressionRatio != nil && len(ops) > 0 {
		*c.MeanCompressionRatio = ratioSum / float64(len(ops))
	}
	return replay.Run(e, fs, folded, c.Options)
}

// opsToTokens converts concrete ops back into gap-encoded tokens so the
// folder can find loops.
func opsToTokens(ops []skeleton.ConcreteOp) []skeleton.Token {
	lastEnd := map[string]int64{}
	toks := make([]skeleton.Token, 0, len(ops))
	for _, op := range ops {
		tok := skeleton.Token{Op: op.Op, Path: op.Path, Size: op.Size, Think: op.Think}
		if op.Op == "read" || op.Op == "write" {
			if prev, ok := lastEnd[op.Path]; ok {
				tok.Gap = op.Offset - prev
			} else {
				tok.First = true
				tok.Abs = op.Offset
			}
			lastEnd[op.Path] = op.Offset + op.Size
		}
		toks = append(toks, tok)
	}
	return toks
}

var _ = fmt.Sprintf
