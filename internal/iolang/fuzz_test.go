package iolang_test

import (
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/reduce"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
	"pioeval/internal/validate"
)

// Fuzz execution bounds: whatever program the fuzzer finds, the
// interpreted run must stay small enough to finish in microseconds.
const (
	fuzzMaxRanks   = 3
	fuzzMaxLoop    = 3
	fuzzMaxDepth   = 3
	fuzzMaxStmts   = 64
	fuzzMaxSize    = int64(4 << 20)
	fuzzMinChunk   = int64(64 << 10) // floor, so a max-size write splits into at most 64 chunks
	fuzzMaxOffset  = int64(1 << 30)
	fuzzMaxCompute = int64(des.Second)
)

// clampExpr bounds a fuzzer-controlled expression at evaluation time,
// after rank/iter substitution — static inspection cannot bound products
// of rank and iter.
type clampExpr struct {
	e      iolang.Expr
	lo, hi int64
}

func (c clampExpr) Eval(rank, iter int) int64 {
	v := c.e.Eval(rank, iter)
	if v < c.lo {
		return c.lo
	}
	if v > c.hi {
		return c.hi
	}
	return v
}

// sanitize bounds a parsed workload in place so fuzzed programs cannot
// explode the simulation: rank count, loop counts and nesting, statement
// counts, and every I/O size/offset/duration are clamped.
func sanitize(w *iolang.Workload) {
	if w.Ranks > fuzzMaxRanks {
		w.Ranks = fuzzMaxRanks
	}
	if w.StripeCount > 8 {
		w.StripeCount = 8
	}
	if w.StripeSize < 0 || w.StripeSize > fuzzMaxSize {
		w.StripeSize = 1 << 20
	}
	w.Body = sanitizeBody(w.Body, 0)
}

func sanitizeBody(body []iolang.Stmt, depth int) []iolang.Stmt {
	if len(body) > fuzzMaxStmts {
		body = body[:fuzzMaxStmts]
	}
	for i := range body {
		s := &body[i]
		if s.Kind == "loop" {
			if s.Count > fuzzMaxLoop || depth >= fuzzMaxDepth {
				s.Count = 1
			}
			if s.Count < 0 {
				s.Count = 0
			}
			s.Body = sanitizeBody(s.Body, depth+1)
			continue
		}
		if s.Offset != nil {
			s.Offset = clampExpr{s.Offset, 0, fuzzMaxOffset}
		}
		if s.Size != nil {
			s.Size = clampExpr{s.Size, 0, fuzzMaxSize}
		}
		if s.Chunk != nil {
			s.Chunk = clampExpr{s.Chunk, fuzzMinChunk, fuzzMaxSize}
		}
		if s.Dur != nil {
			s.Dur = clampExpr{s.Dur, 0, fuzzMaxCompute}
		}
	}
	return body
}

// FuzzInterp fuzzes the whole front half of the simulator: lexer, parser,
// and interpreter against a live cluster with the full invariant checker
// armed. Any panic is a bug; any invariant violation on a run that
// completes without error is a bug. Runs that end in an error (including
// deadlocks from rank-divergent open failures the fuzzer discovers) only
// assert panic-freedom.
func FuzzInterp(f *testing.F) {
	for _, s := range []string{
		"workload \"w\" {\n\tranks 2\n\twrite \"/a\" offset=rank*65536 size=65536\n}\n",
		"workload \"w\" {\n\tranks 2\n\tstripe count=2 size=65536\n\tloop 2 {\n\t\twrite \"/a\" offset=iter*4096 size=4096 chunk=1024\n\t\tbarrier\n\t}\n\tread \"/a\" offset=0 size=8192\n}\n",
		"workload \"w\" {\n\tmkdir \"/d\"\n\twrite \"/d/f-${rank}\" size=4096\n\tstat \"/d/f-${rank}\"\n\tunlink \"/d/f-${rank}\"\n\trmdir \"/d\"\n}\n",
		"workload \"w\" {\n\tcompute 1000\n\topen \"/f\" create\n\tfsync \"/f\"\n\tclose \"/f\"\n}\n",
		"workload \"broken\" {",
		"workload \"w\" {\n\tranks 9999\n\twrite \"/a\" size=99999999999\n}\n",
		"workload \"comp\" {\n\tranks 2\n\twrite \"/c\" offset=rank*1048576 size=1048576 chunk=262144\n\tbarrier\n\tread \"/c\" offset=rank*1048576 size=1048576\n}\n",
		"workload \"comp2\" {\n\tloop 2 {\n\t\twrite \"/z\" offset=iter*65536 size=65536\n\t\tfsync \"/z\"\n\t}\n\tstat \"/z\"\n}\n",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		w, err := iolang.Parse(src)
		if err != nil {
			return
		}
		sanitize(w)
		run := func(compressed bool) {
			cfg := pfs.DefaultConfig()
			cfg.NumOSS, cfg.OSTsPerOSS = 2, 1
			cfg.NumIONodes = 0
			e := des.NewEngine(1)
			sim := pfs.New(e, cfg)
			var col *trace.Collector
			var pr *storage.Provider
			if compressed {
				// The stage-conservation checks reconcile against the POSIX
				// trace tallies, so the compressed arm needs a collector.
				col = trace.NewCollector()
			}
			inv := validate.Attach(e, sim, col)
			if compressed {
				pr, err = storage.NewProvider(e, sim, storage.TierDirect, storage.ProviderConfig{})
				if err != nil {
					t.Fatal(err)
				}
				comp, err := reduce.New("lz")
				if err != nil {
					t.Fatal(err)
				}
				pr.Push(comp)
				inv.ObserveTier(pr)
			}
			_, rerr := iolang.RunOn(e, sim, w, col, pr)
			vios := inv.Finish()
			if rerr != nil {
				return
			}
			for _, v := range vios {
				t.Errorf("invariant violation on clean run (compressed=%v): %s\nprogram:\n%s", compressed, v, src)
			}
		}
		// Every program runs twice: straight to the PFS, and again through
		// a compress-stage provider with the stage-conservation and
		// stage-ratio checkers armed.
		run(false)
		run(true)
	})
}
