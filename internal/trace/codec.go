package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"pioeval/internal/des"
)

// Binary trace format:
//
//	magic "PIOT" | version u16 | record count u64
//	string table: count u32, then len-prefixed strings
//	records: rank varint | layer u8 | opIdx varint | pathIdx varint |
//	         offset varint | size varint | start varint | end varint
//
// Strings (op names, paths) are interned in the table, which is what makes
// the binary form compact for the highly repetitive traces HPC apps emit.

const (
	binMagic   = "PIOT"
	binVersion = 1
)

func toTime(v int64) des.Time { return des.Time(v) }

// WriteBinary encodes recs to w in the compact binary trace format.
func WriteBinary(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], binVersion)
	binary.LittleEndian.PutUint64(hdr[2:10], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	// Build the string table.
	index := map[string]uint64{}
	var table []string
	intern := func(s string) uint64 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint64(len(table))
		index[s] = i
		table = append(table, s)
		return i
	}
	type encRec struct{ op, path uint64 }
	enc := make([]encRec, len(recs))
	for i, r := range recs {
		enc[i] = encRec{intern(r.Op), intern(r.Path)}
	}

	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}

	if err := putUvarint(uint64(len(table))); err != nil {
		return err
	}
	for _, s := range table {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	for i, r := range recs {
		if err := putVarint(int64(r.Rank)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Layer)); err != nil {
			return err
		}
		if err := putUvarint(enc[i].op); err != nil {
			return err
		}
		if err := putUvarint(enc[i].path); err != nil {
			return err
		}
		if err := putVarint(r.Offset); err != nil {
			return err
		}
		if err := putVarint(r.Size); err != nil {
			return err
		}
		if err := putVarint(int64(r.Start)); err != nil {
			return err
		}
		if err := putVarint(int64(r.End)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	hdr := make([]byte, 10)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != binVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[2:10])

	nstr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	table := make([]string, nstr)
	for i := range table {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		table[i] = string(b)
	}
	lookup := func(i uint64) (string, error) {
		if i >= uint64(len(table)) {
			return "", fmt.Errorf("trace: string index %d out of range", i)
		}
		return table[i], nil
	}

	recs := make([]Record, 0, count)
	for n := uint64(0); n < count; n++ {
		var rec Record
		rank, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		rec.Rank = int(rank)
		layer, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.Layer = Layer(layer)
		opIdx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if rec.Op, err = lookup(opIdx); err != nil {
			return nil, err
		}
		pathIdx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if rec.Path, err = lookup(pathIdx); err != nil {
			return nil, err
		}
		if rec.Offset, err = binary.ReadVarint(br); err != nil {
			return nil, err
		}
		if rec.Size, err = binary.ReadVarint(br); err != nil {
			return nil, err
		}
		s, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		e2, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		rec.Start, rec.End = toTime(s), toTime(e2)
		recs = append(recs, rec)
	}
	return recs, nil
}

// jsonRecord mirrors Record with friendly field names for the JSON codec.
type jsonRecord struct {
	Rank   int    `json:"rank"`
	Layer  string `json:"layer"`
	Op     string `json:"op"`
	Path   string `json:"path,omitempty"`
	Offset int64  `json:"offset"`
	Size   int64  `json:"size"`
	Start  int64  `json:"start_ns"`
	End    int64  `json:"end_ns"`
}

// WriteJSON encodes recs as a JSON array (one record per element).
func WriteJSON(w io.Writer, recs []Record) error {
	out := make([]jsonRecord, len(recs))
	for i, r := range recs {
		out[i] = jsonRecord{
			Rank: r.Rank, Layer: r.Layer.String(), Op: r.Op, Path: r.Path,
			Offset: r.Offset, Size: r.Size, Start: int64(r.Start), End: int64(r.End),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON decodes a JSON trace written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var in []jsonRecord
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	recs := make([]Record, len(in))
	for i, jr := range in {
		layer, err := ParseLayer(jr.Layer)
		if err != nil {
			return nil, err
		}
		recs[i] = Record{
			Rank: jr.Rank, Layer: layer, Op: jr.Op, Path: jr.Path,
			Offset: jr.Offset, Size: jr.Size, Start: toTime(jr.Start), End: toTime(jr.End),
		}
	}
	return recs, nil
}
