// Command surveyfig regenerates the paper's Figure 3 from the encoded
// survey corpus: the percentage distribution of the 51 included papers over
// venue types, publishers, years, and taxonomy categories.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pioeval/internal/corpus"
)

func main() {
	fs := flag.NewFlagSet("surveyfig", flag.ExitOnError)
	listPapers := fs.Bool("papers", false, "list the full corpus")
	_ = fs.Parse(os.Args[1:])

	fmt.Printf("Survey corpus: %d included papers (Figure 3)\n\n", corpus.Count())
	section := func(title string, shares []corpus.Share) {
		fmt.Printf("%s\n", title)
		for _, s := range shares {
			bar := strings.Repeat("#", int(s.Percent/2+0.5))
			fmt.Printf("  %-26s %5.1f%% (%2d) %s\n", s.Label, s.Percent, s.Count, bar)
		}
		fmt.Println()
	}
	section("By venue type:", corpus.ByVenueType())
	section("By publisher:", corpus.ByPublisher())
	section("By year:", corpus.ByYear())
	section("By taxonomy category (multi-label):", corpus.ByCategory())

	if *listPapers {
		fmt.Println("Included papers:")
		for _, p := range corpus.Papers() {
			fmt.Printf("  [%s] %s (%s %d, %s/%s)\n", p.Key, p.Title, p.Venue, p.Year, p.Type, p.Publisher)
		}
	}
}
