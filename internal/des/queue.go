package des

// Queue is an unbounded FIFO message store for inter-process communication
// in simulated time: Put never blocks, Get blocks until an item is present.
// It is the building block for MPI point-to-point channels and server
// request queues.
type Queue struct {
	eng     *Engine
	name    string
	items   []interface{}
	getters []*Proc

	puts    uint64
	peakLen int
}

// NewQueue creates an empty queue bound to engine e.
func NewQueue(e *Engine, name string) *Queue {
	return &Queue{eng: e, name: name}
}

// Put appends an item and wakes one waiting getter, if any.
// Safe to call from process or event context.
func (q *Queue) Put(v interface{}) {
	q.items = append(q.items, v)
	q.puts++
	if len(q.items) > q.peakLen {
		q.peakLen = len(q.items)
	}
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wakeNow()
	}
}

// Get removes and returns the oldest item, blocking until one is available.
func (q *Queue) Get(p *Proc) interface{} {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue) TryGet() (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// PeakLen reports the maximum observed queue length.
func (q *Queue) PeakLen() int { return q.peakLen }

// Puts reports the total number of items ever enqueued.
func (q *Queue) Puts() uint64 { return q.puts }

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }
