package mpiio

import (
	"reflect"
	"testing"
	"testing/quick"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// harness builds an engine, FS, world, and per-rank POSIX envs.
type harness struct {
	eng  *des.Engine
	fs   *pfs.FS
	w    *mpi.World
	envs []*posixio.Env
	col  *trace.Collector
}

func newHarness(ranks int, dev func() blockdev.Model) *harness {
	e := des.NewEngine(17)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	if dev != nil {
		cfg.OSTDevice = dev
	} else {
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	}
	fs := pfs.New(e, cfg)
	w := mpi.NewWorld(e, ranks, mpi.DefaultOptions())
	col := trace.NewCollector()
	envs := make([]*posixio.Env, ranks)
	for i := range envs {
		envs[i] = posixio.NewEnv(storage.Direct(fs.NewClient(nodeName(i))), i, col)
	}
	return &harness{eng: e, fs: fs, w: w, envs: envs, col: col}
}

func nodeName(i int) string {
	return "cn" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func (h *harness) run(t *testing.T, fn func(r *mpi.Rank)) des.Time {
	t.Helper()
	h.w.Spawn(fn)
	end := h.eng.Run(des.MaxTime)
	if h.eng.LiveProcs() != 0 {
		t.Fatalf("deadlock: %d live procs", h.eng.LiveProcs())
	}
	return end
}

func TestMergeExtents(t *testing.T) {
	in := []Extent{{100, 50}, {0, 50}, {50, 50}, {300, 10}}
	got := MergeExtents(in, 0)
	want := []Extent{{0, 150}, {300, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeExtents = %v, want %v", got, want)
	}
	// With a gap threshold the hole at 150..300 is absorbed.
	got = MergeExtents(in, 150)
	want = []Extent{{0, 310}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeExtents(gap) = %v, want %v", got, want)
	}
	if MergeExtents(nil, 0) != nil {
		t.Error("empty input should return nil")
	}
	// Overlapping extents collapse.
	got = MergeExtents([]Extent{{0, 100}, {50, 100}}, 0)
	want = []Extent{{0, 150}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overlap merge = %v", got)
	}
}

// Property: MergeExtents output is sorted, non-adjacent (beyond gap), and
// covers exactly the union of input bytes when gap is 0.
func TestPropMergeExtents(t *testing.T) {
	f := func(raw []uint16) bool {
		var in []Extent
		for i := 0; i+1 < len(raw); i += 2 {
			in = append(in, Extent{Off: int64(raw[i]), Size: int64(raw[i+1]%100) + 1})
		}
		if len(in) == 0 {
			return true
		}
		out := MergeExtents(in, 0)
		// Sorted and disjoint.
		for i := 1; i < len(out); i++ {
			if out[i].Off <= out[i-1].Off+out[i-1].Size {
				return false
			}
		}
		// Union coverage check via bitmap.
		cover := map[int64]bool{}
		for _, e := range in {
			for b := e.Off; b < e.Off+e.Size; b++ {
				cover[b] = true
			}
		}
		var outBytes int64
		for _, e := range out {
			outBytes += e.Size
			for b := e.Off; b < e.Off+e.Size; b++ {
				if !cover[b] {
					return false
				}
			}
		}
		return outBytes == int64(len(cover))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestViewExtents(t *testing.T) {
	v := View{Disp: 1000, ElemSize: 8, BlockElems: 4}
	// Rank 1 of 4, 10 elems: blocks 1, 5, 9 → extents at 1000+32, 1000+160, 1000+288.
	exts := v.Extents(1, 4, 10)
	want := []Extent{{1032, 32}, {1160, 32}, {1288, 16}}
	if !reflect.DeepEqual(exts, want) {
		t.Fatalf("Extents = %v, want %v", exts, want)
	}
	// Contiguous view.
	cv := contiguousView()
	if got := cv.Extents(0, 4, 100); got[0].Size != 100 {
		t.Errorf("contiguous extents = %v", got)
	}
}

// Property: view extents across all ranks partition the element space with
// no overlap and full coverage.
func TestPropViewPartition(t *testing.T) {
	f := func(pRaw, blockRaw uint8, elemsRaw uint16) bool {
		p := int(pRaw%8) + 1
		v := View{ElemSize: 4, BlockElems: int64(blockRaw%16) + 1}
		elems := int64(elemsRaw%256) + 1
		seen := map[int64]int{}
		for r := 0; r < p; r++ {
			for _, e := range v.Extents(r, p, elems) {
				if e.Size%v.ElemSize != 0 || e.Off%v.ElemSize != 0 {
					return false
				}
				for b := e.Off; b < e.Off+e.Size; b += v.ElemSize {
					seen[b]++
					if seen[b] > 1 {
						return false // overlap between ranks
					}
				}
			}
		}
		return int64(len(seen)) == elems*int64(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHintsDefaults(t *testing.T) {
	h := Hints{}.withDefaults(16)
	if h.CollNodes != 4 {
		t.Errorf("CollNodes = %d, want 4", h.CollNodes)
	}
	if h.SieveHoleThreshold <= 0 {
		t.Error("SieveHoleThreshold default missing")
	}
	if got := (Hints{CollNodes: 99}).withDefaults(8); got.CollNodes != 8 {
		t.Errorf("CollNodes clamp = %d", got.CollNodes)
	}
	if got := (Hints{}).withDefaults(2); got.CollNodes != 1 {
		t.Errorf("small world CollNodes = %d", got.CollNodes)
	}
}

func TestIndependentWriteRead(t *testing.T) {
	h := newHarness(4, nil)
	f := NewFile(h.w, h.envs, "/shared", Hints{}, h.col)
	h.run(t, func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		off := int64(r.ID()) * (1 << 20)
		if err := f.WriteAt(r, off, 1<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		r.Barrier()
		if err := f.ReadAt(r, off, 1<<20); err != nil {
			t.Errorf("read: %v", err)
		}
		if err := f.Close(r); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	read, written := h.fs.TotalBytes()
	if written != 4<<20 || read != 4<<20 {
		t.Fatalf("bytes = r%d w%d, want 4MB each", read, written)
	}
	if f.IndependentOps == 0 {
		t.Error("IndependentOps not counted")
	}
}

func TestCollectiveWriteMovesAllBytes(t *testing.T) {
	h := newHarness(8, nil)
	f := NewFile(h.w, h.envs, "/coll", Hints{CollNodes: 2}, h.col)
	v := View{ElemSize: 8, BlockElems: 16} // 128-byte blocks, interleaved
	elems := int64(1024)
	h.run(t, func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		f.SetView(r, v)
		if err := f.WriteViewAll(r, elems); err != nil {
			t.Errorf("writeall: %v", err)
		}
		_ = f.Close(r)
	})
	_, written := h.fs.TotalBytes()
	want := elems * 8 * 8 // elems * elemsize * ranks
	if written != want {
		t.Fatalf("OST bytes written = %d, want %d", written, want)
	}
	if f.CollectiveOps == 0 {
		t.Error("CollectiveOps not counted")
	}
}

func TestCollectiveReadMovesAllBytes(t *testing.T) {
	h := newHarness(4, nil)
	f := NewFile(h.w, h.envs, "/coll", Hints{CollNodes: 2}, h.col)
	v := View{ElemSize: 4, BlockElems: 64}
	elems := int64(512)
	h.run(t, func(r *mpi.Rank) {
		_ = f.Open(r)
		f.SetView(r, v)
		_ = f.WriteViewAll(r, elems)
		r.Barrier()
		if err := f.ReadViewAll(r, elems); err != nil {
			t.Errorf("readall: %v", err)
		}
		_ = f.Close(r)
	})
	read, _ := h.fs.TotalBytes()
	// Aggregators read coalesced domains covering all requested bytes;
	// coalescing may round up over small holes but never down.
	want := elems * 4 * 4
	if read < want {
		t.Fatalf("OST bytes read = %d, want >= %d", read, want)
	}
}

func TestCollectiveBeatsIndependentOnStridedSmallBlocks(t *testing.T) {
	// The C8 experiment shape: fine-grained interleaved access on HDD
	// OSTs. Two-phase collective buffering should win clearly.
	hdd := func() blockdev.Model { return blockdev.DefaultHDD() }
	elems := int64(2048)
	v := View{ElemSize: 64, BlockElems: 1} // 64-byte interleaved pieces

	runMode := func(collective bool) des.Time {
		h := newHarness(8, hdd)
		f := NewFile(h.w, h.envs, "/f", Hints{CollNodes: 2}, h.col)
		return h.run(t, func(r *mpi.Rank) {
			_ = f.Open(r)
			f.SetView(r, v)
			if collective {
				_ = f.WriteViewAll(r, elems)
			} else {
				_ = f.WriteView(r, elems)
			}
			_ = f.Close(r)
		})
	}
	ind, coll := runMode(false), runMode(true)
	if coll >= ind {
		t.Fatalf("collective (%v) should beat independent (%v) on strided small blocks", coll, ind)
	}
	if speedup := float64(ind) / float64(coll); speedup < 2 {
		t.Errorf("collective speedup = %.1fx, want >= 2x", speedup)
	}
}

func TestDataSievingReducesOps(t *testing.T) {
	v := View{ElemSize: 512, BlockElems: 1}
	elems := int64(256)
	runMode := func(sieve bool) (des.Time, uint64) {
		h := newHarness(4, func() blockdev.Model { return blockdev.DefaultHDD() })
		f := NewFile(h.w, h.envs, "/f", Hints{DataSieving: sieve, SieveHoleThreshold: 1 << 20}, h.col)
		end := h.run(t, func(r *mpi.Rank) {
			_ = f.Open(r)
			f.SetView(r, v)
			_ = f.WriteViewAll(r, elems) // populate
			r.Barrier()
			_ = f.ReadView(r, elems)
			_ = f.Close(r)
		})
		return end, f.SievedReads
	}
	plainT, plainSieved := runMode(false)
	sieveT, sieved := runMode(true)
	if plainSieved != 0 {
		t.Error("sieving counted while disabled")
	}
	if sieved == 0 {
		t.Error("sieving should have coalesced reads")
	}
	if sieveT >= plainT {
		t.Fatalf("sieved reads (%v) should beat per-piece reads (%v)", sieveT, plainT)
	}
}

func TestCollectiveTraceEmitted(t *testing.T) {
	h := newHarness(4, nil)
	f := NewFile(h.w, h.envs, "/f", Hints{}, h.col)
	h.run(t, func(r *mpi.Rank) {
		_ = f.Open(r)
		_ = f.WriteAtAll(r, int64(r.ID())*4096, 4096)
		_ = f.Close(r)
	})
	mpiioRecs := trace.ByLayer(h.col.Records(), trace.LayerMPIIO)
	if len(trace.ByOp(mpiioRecs, "mpi_file_write_all")) != 4 {
		t.Errorf("expected 4 write_all records, got %d", len(trace.ByOp(mpiioRecs, "mpi_file_write_all")))
	}
	// POSIX-layer records must exist beneath the MPI-IO ones (multi-level).
	if len(trace.ByLayer(h.col.Records(), trace.LayerPOSIX)) == 0 {
		t.Error("no POSIX records under collective I/O")
	}
}

func TestAggDomainPartition(t *testing.T) {
	lo, hi := int64(100), int64(1100)
	n := 3
	var covered int64
	prevHi := lo
	for i := 0; i < n; i++ {
		dLo, dHi := aggDomain(lo, hi, n, i)
		if dLo != prevHi {
			t.Fatalf("domain %d starts at %d, want %d", i, dLo, prevHi)
		}
		covered += dHi - dLo
		prevHi = dHi
	}
	if prevHi != hi || covered != hi-lo {
		t.Fatalf("domains cover %d..%d (%d bytes), want %d..%d", lo, prevHi, covered, lo, hi)
	}
}

func TestZeroSizeCollective(t *testing.T) {
	// Ranks collectively "write" nothing: must not deadlock or panic.
	h := newHarness(4, nil)
	f := NewFile(h.w, h.envs, "/f", Hints{}, h.col)
	h.run(t, func(r *mpi.Rank) {
		_ = f.Open(r)
		_ = f.WriteAtAll(r, 0, 0)
		_ = f.Close(r)
	})
}

// Property: collective and independent view writes move exactly the same
// payload to the OSTs, for randomized view geometries and rank counts.
func TestPropCollectiveIndependentByteEquality(t *testing.T) {
	f := func(pRaw, blockRaw, elemRaw, elemsRaw uint8) bool {
		ranks := int(pRaw%6) + 2
		v := View{
			ElemSize:   int64(elemRaw%64) + 1,
			BlockElems: int64(blockRaw%8) + 1,
		}
		elems := int64(elemsRaw%64) + 1
		run := func(collective bool) int64 {
			h := newHarness(ranks, nil)
			f := NewFile(h.w, h.envs, "/prop", Hints{CollNodes: 2}, nil)
			h.w.Spawn(func(r *mpi.Rank) {
				_ = f.Open(r)
				f.SetView(r, v)
				if collective {
					_ = f.WriteViewAll(r, elems)
				} else {
					_ = f.WriteView(r, elems)
				}
				_ = f.Close(r)
			})
			h.eng.Run(des.MaxTime)
			if h.eng.LiveProcs() != 0 {
				t.Fatal("deadlock")
			}
			_, w := h.fs.TotalBytes()
			return w
		}
		want := elems * v.ElemSize * int64(ranks)
		ind := run(false)
		coll := run(true)
		if ind != want {
			return false
		}
		// Collective coalescing may absorb small holes (over-write) but
		// never drops payload.
		return coll >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
