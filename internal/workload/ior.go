package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/mpiio"
	"pioeval/internal/posixio"
)

// Pattern selects the IOR access pattern.
type Pattern int

// IOR access patterns.
const (
	Sequential Pattern = iota
	Strided            // segment-interleaved across ranks
	Random
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// IORConfig mirrors the core IOR parameter space.
type IORConfig struct {
	Ranks        int
	BlockSize    int64 // per-rank bytes per segment
	TransferSize int64 // bytes per I/O call
	Segments     int
	SharedFile   bool // -F inverse: one shared file vs file-per-process
	Pattern      Pattern
	ReadBack     bool // read phase after write phase
	Collective   bool // use two-phase collective MPI-IO (shared file only)
	StripeCount  int
	StripeSize   int64
	Path         string // base path (default /ior)
}

// withDefaults fills unset fields.
func (c IORConfig) withDefaults() IORConfig {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 16 << 20
	}
	if c.TransferSize <= 0 {
		c.TransferSize = 1 << 20
	}
	if c.TransferSize > c.BlockSize {
		c.TransferSize = c.BlockSize
	}
	if c.Segments <= 0 {
		c.Segments = 1
	}
	if c.Path == "" {
		c.Path = "/ior"
	}
	return c
}

// IORReport is the generator's result, mirroring IOR's summary line.
type IORReport struct {
	Config     IORConfig
	WriteTime  des.Time
	ReadTime   des.Time
	WriteMBps  float64
	ReadMBps   float64
	TotalBytes int64
	Makespan   des.Time
}

// RunIOR executes the IOR-like workload on a fresh harness over fs.
func RunIOR(h *Harness, cfg IORConfig) IORReport {
	return RunIORWithHints(h, cfg, 0)
}

// RunIORWithHints is RunIOR with an explicit collective-buffering
// aggregator count (cb_nodes); 0 selects the MPI-IO default.
func RunIORWithHints(h *Harness, cfg IORConfig, cbNodes int) IORReport {
	cfg = cfg.withDefaults()
	rep := IORReport{Config: cfg}
	perRank := cfg.BlockSize * int64(cfg.Segments)
	rep.TotalBytes = perRank * int64(cfg.Ranks)

	var mf *mpiio.File
	if cfg.SharedFile && cfg.Collective {
		mf = mpiio.NewFile(h.World, h.Envs, cfg.Path, mpiio.Hints{CollNodes: cbNodes}, h.Col)
	}

	var wStart, wEnd, rStart, rEnd des.Time
	end := h.Run(func(r *mpi.Rank, env *posixio.Env) {
		env.StripeCount = cfg.StripeCount
		env.StripeSize = cfg.StripeSize
		rng := h.Eng.RNG().Stream(fmt.Sprintf("ior.rank%d", r.ID()))

		// offsets computes this rank's I/O offsets for one phase.
		offsets := func(emit func(off int64)) {
			for seg := 0; seg < cfg.Segments; seg++ {
				var segBase int64
				if cfg.SharedFile {
					switch cfg.Pattern {
					case Strided:
						// Transfers interleave across ranks within the segment.
						segBase = int64(seg) * cfg.BlockSize * int64(cfg.Ranks)
						n := cfg.BlockSize / cfg.TransferSize
						for i := int64(0); i < n; i++ {
							emit(segBase + (i*int64(cfg.Ranks)+int64(r.ID()))*cfg.TransferSize)
						}
						continue
					default:
						segBase = (int64(seg)*int64(cfg.Ranks) + int64(r.ID())) * cfg.BlockSize
					}
				} else {
					segBase = int64(seg) * cfg.BlockSize
				}
				n := cfg.BlockSize / cfg.TransferSize
				for i := int64(0); i < n; i++ {
					off := segBase + i*cfg.TransferSize
					if cfg.Pattern == Random {
						off = segBase + rng.Int63n(cfg.BlockSize-cfg.TransferSize+1)
					}
					emit(off)
				}
			}
		}

		path := cfg.Path
		if !cfg.SharedFile {
			path = fmt.Sprintf("%s.%d", cfg.Path, r.ID())
		}

		// Write phase.
		r.Barrier()
		if r.ID() == 0 {
			wStart = r.Now()
		}
		if mf != nil {
			_ = mf.Open(r)
			mf.SetView(r, mpiio.View{ElemSize: cfg.TransferSize, BlockElems: 1})
			// Collective path writes the same volume via interleaved view.
			elems := perRank / cfg.TransferSize
			_ = mf.WriteViewAll(r, elems)
			_ = mf.Close(r)
		} else {
			fd, _ := env.Open(r.Proc(), path, posixio.OCreate)
			offsets(func(off int64) { _, _ = env.Pwrite(r.Proc(), fd, off, cfg.TransferSize) })
			_ = env.Fsync(r.Proc(), fd)
			_ = env.Close(r.Proc(), fd)
		}
		r.Barrier()
		if r.ID() == 0 {
			wEnd = r.Now()
		}

		// Read phase.
		if cfg.ReadBack {
			if r.ID() == 0 {
				rStart = r.Now()
			}
			if mf != nil {
				mf2 := mf // reuse same file object collectively
				_ = mf2.Open(r)
				elems := perRank / cfg.TransferSize
				_ = mf2.ReadViewAll(r, elems)
				_ = mf2.Close(r)
			} else {
				fd, _ := env.Open(r.Proc(), path, 0)
				offsets(func(off int64) { _, _ = env.Pread(r.Proc(), fd, off, cfg.TransferSize) })
				_ = env.Close(r.Proc(), fd)
			}
			r.Barrier()
			if r.ID() == 0 {
				rEnd = r.Now()
			}
		}
	})
	rep.Makespan = end
	rep.WriteTime = wEnd - wStart
	rep.WriteMBps = bwMBps(rep.TotalBytes, rep.WriteTime)
	if cfg.ReadBack {
		rep.ReadTime = rEnd - rStart
		rep.ReadMBps = bwMBps(rep.TotalBytes, rep.ReadTime)
	}
	return rep
}
