package validate

import (
	"fmt"
	"math"

	"pioeval/internal/blockdev"
	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/mpiio"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/reduce"
	"pioeval/internal/storage"
)

// OracleResult compares one simulated metric against its closed-form
// expectation.
type OracleResult struct {
	// Name identifies the oracle scenario.
	Name string
	// Unit labels Expected/Simulated (e.g. "MB/s", "bytes", "s").
	Unit string
	// Expected is the analytic prediction, derived from the same model
	// parameters the simulator uses (never hardcoded constants).
	Expected float64
	// Simulated is what the DES produced.
	Simulated float64
	// Tol is the relative tolerance; 0 demands exact equality.
	Tol float64
	// Detail explains the expectation's derivation.
	Detail string
}

// RelError returns |simulated-expected| / |expected| (0 when both are 0).
func (r OracleResult) RelError() float64 {
	if r.Expected == 0 {
		if r.Simulated == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(r.Simulated-r.Expected) / math.Abs(r.Expected)
}

// Pass reports whether the simulated value is within tolerance.
func (r OracleResult) Pass() bool { return r.RelError() <= r.Tol }

// String renders one oracle line for reports.
func (r OracleResult) String() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s %-28s simulated %.4g %s, expected %.4g %s (err %.2f%%, tol %.0f%%)",
		verdict, r.Name, r.Simulated, r.Unit, r.Expected, r.Unit, r.RelError()*100, r.Tol*100)
}

// RunOracles executes the full analytic oracle suite with the given engine
// seed. The fault-free scenarios are deterministic, so the seed only
// matters for reproducing reports.
func RunOracles(seed int64) []OracleResult {
	return []OracleResult{
		OracleSingleStream(seed),
		OracleStripedAggregate(seed),
		OracleCollectiveVolume(seed),
		OracleBurstBufferDrain(seed),
		OracleTieredDrain(seed),
		OracleCompressedStream(seed),
	}
}

// devSecPerByte extracts a model's marginal per-byte transfer cost by
// differencing two sequential service times, cancelling the latency term.
// Model-agnostic: works for any Model whose transfer cost is linear in
// size, which all shipped models are.
func devSecPerByte(m blockdev.Model, write bool) float64 {
	const probe = 1 << 20
	t1 := blockdev.ServiceTime(m, blockdev.Request{Offset: 0, Size: probe, Write: write}, 0)
	t2 := blockdev.ServiceTime(m, blockdev.Request{Offset: 0, Size: 2 * probe, Write: write}, 0)
	return (t2 - t1).Seconds() / float64(probe)
}

// OracleSingleStream checks that one client writing a large sequential
// stream to a single-OST file achieves the bandwidth of the serialized
// network+device pipeline: the client blocks on each RPC, so per byte it
// pays 1/linkBW + 1/deviceBW. Sequential offsets mean the device model
// charges no seeks after the first access.
func OracleSingleStream(seed int64) OracleResult {
	const (
		total = int64(64 << 20)
		chunk = int64(4 << 20)
	)
	cfg := pfs.DefaultConfig()
	cfg.NumOSS, cfg.OSTsPerOSS = 1, 1
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = 1

	e := des.NewEngine(seed)
	fs := pfs.New(e, cfg)
	c := fs.NewClient("cn0")
	var elapsed des.Time
	e.Spawn("oracle.single-stream", func(p *des.Proc) {
		h, err := c.Create(p, "/stream", 1, cfg.DefaultStripeSize)
		if err != nil {
			panic(fmt.Sprintf("validate: oracle create: %v", err))
		}
		start := p.Now()
		for off := int64(0); off < total; off += chunk {
			if err := h.Write(p, off, chunk); err != nil {
				panic(fmt.Sprintf("validate: oracle write: %v", err))
			}
		}
		elapsed = p.Now() - start
		_ = h.Close(p)
	})
	e.Run(des.MaxTime)

	dcfg := fs.Config()
	perByte := 1/float64(dcfg.ComputeFabric.LinkBandwidth) + devSecPerByte(dcfg.OSTDevice(), true)
	return OracleResult{
		Name:      "single-stream-bandwidth",
		Unit:      "MB/s",
		Expected:  1 / perByte / 1e6,
		Simulated: float64(total) / elapsed.Seconds() / 1e6,
		Tol:       0.05,
		Detail: fmt.Sprintf("1 rank, %d MiB sequential to a 1-OST file; expected bw = 1/(1/link + devPerByte) with per-RPC metadata overhead inside the tolerance",
			total>>20),
	}
}

// OracleStripedAggregate checks linear scaling: N ranks each writing their
// own single-OST file, with files round-robined onto N distinct OSTs on N
// distinct OSS nodes, must deliver N times the single-stream bandwidth —
// there is no shared bottleneck.
func OracleStripedAggregate(seed int64) OracleResult {
	const (
		ranks   = 4
		perRank = int64(32 << 20)
		chunk   = int64(4 << 20)
	)
	cfg := pfs.DefaultConfig()
	cfg.NumOSS, cfg.OSTsPerOSS = ranks, 1
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = 1

	e := des.NewEngine(seed)
	fs := pfs.New(e, cfg)
	var makespan des.Time
	for i := 0; i < ranks; i++ {
		c := fs.NewClient(fmt.Sprintf("cn%d", i))
		path := fmt.Sprintf("/rank%d", i)
		e.Spawn("oracle.striped", func(p *des.Proc) {
			h, err := c.Create(p, path, 1, cfg.DefaultStripeSize)
			if err != nil {
				panic(fmt.Sprintf("validate: oracle create: %v", err))
			}
			for off := int64(0); off < perRank; off += chunk {
				if err := h.Write(p, off, chunk); err != nil {
					panic(fmt.Sprintf("validate: oracle write: %v", err))
				}
			}
			_ = h.Close(p)
			if p.Now() > makespan {
				makespan = p.Now()
			}
		})
	}
	e.Run(des.MaxTime)

	dcfg := fs.Config()
	perByte := 1/float64(dcfg.ComputeFabric.LinkBandwidth) + devSecPerByte(dcfg.OSTDevice(), true)
	return OracleResult{
		Name:      "striped-aggregate-bandwidth",
		Unit:      "MB/s",
		Expected:  float64(ranks) / perByte / 1e6,
		Simulated: float64(ranks) * float64(perRank) / makespan.Seconds() / 1e6,
		Tol:       0.05,
		Detail: fmt.Sprintf("%d independent ranks on %d disjoint OSTs/OSS; aggregate must scale linearly over the single-stream rate",
			ranks, ranks),
	}
}

// OracleCollectiveVolume checks that two-phase collective aggregation
// conserves I/O volume exactly: with hole-free interleaved extents, the
// coalesced aggregator writes must deliver precisely the requested bytes
// to the OSTs — no loss, no inflation (holes would legitimately inflate).
func OracleCollectiveVolume(seed int64) OracleResult {
	const (
		ranks   = 4
		slice   = int64(256 << 10)
		nSlices = 16
	)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }

	e := des.NewEngine(seed)
	fs := pfs.New(e, cfg)
	w := mpi.NewWorld(e, ranks, mpi.DefaultOptions())
	envs := make([]*posixio.Env, ranks)
	for i := range envs {
		envs[i] = posixio.NewEnv(storage.Direct(fs.NewClient(fmt.Sprintf("cn%d", i))), i, nil)
	}
	f := mpiio.NewFile(w, envs, "/coll", mpiio.Hints{CollNodes: 2}, nil)
	w.Spawn(func(r *mpi.Rank) {
		if err := f.Open(r); err != nil {
			panic(fmt.Sprintf("validate: oracle mpiio open: %v", err))
		}
		// Rank r writes slices r, r+ranks, r+2*ranks, ... of a fully
		// covered [0, ranks*nSlices*slice) region: interleaved, hole-free.
		exts := make([]mpiio.Extent, nSlices)
		for j := 0; j < nSlices; j++ {
			exts[j] = mpiio.Extent{
				Off:  int64(j)*int64(ranks)*slice + int64(r.ID())*slice,
				Size: slice,
			}
		}
		if err := f.WriteExtentsAll(r, exts); err != nil {
			panic(fmt.Sprintf("validate: oracle collective write: %v", err))
		}
		if err := f.Close(r); err != nil {
			panic(fmt.Sprintf("validate: oracle mpiio close: %v", err))
		}
	})
	e.Run(des.MaxTime)

	_, written := fs.TotalBytes()
	return OracleResult{
		Name:      "collective-volume-conservation",
		Unit:      "bytes",
		Expected:  float64(ranks * nSlices * int(slice)),
		Simulated: float64(written),
		Tol:       0,
		Detail: fmt.Sprintf("%d ranks × %d interleaved %d KiB slices, hole-free; OST bytes must equal requested bytes exactly",
			ranks, nSlices, slice>>10),
	}
}

// OracleBurstBufferDrain checks the drain pipeline: once a burst is staged,
// a single drain worker moves it to the PFS one segment at a time, paying
// SSD read + network + backing-device write serially per segment. Total
// time to fully drained is therefore the first segment's staging time plus
// the burst size times the summed per-byte costs.
func OracleBurstBufferDrain(seed int64) OracleResult {
	const (
		total = int64(32 << 20)
		seg   = int64(1 << 20)
	)
	cfg := pfs.DefaultConfig()
	cfg.NumOSS, cfg.OSTsPerOSS = 1, 1
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = 1

	e := des.NewEngine(seed)
	fs := pfs.New(e, cfg)
	bbCfg := burstbuffer.DefaultConfig()
	bbCfg.DrainWorkers = 1
	bb := burstbuffer.New(e, fs, "bb0", bbCfg)
	var drained des.Time
	e.Spawn("oracle.bb-drain", func(p *des.Proc) {
		for off := int64(0); off < total; off += seg {
			bb.Write(p, "/ckpt", off, seg)
		}
		bb.WaitDrained(p)
		drained = p.Now()
	})
	e.Run(des.MaxTime)
	if st := bb.Stats(); st.DrainErrors != 0 || st.Drained != total {
		panic(fmt.Sprintf("validate: oracle drain lost data: %+v", st))
	}

	dcfg := fs.Config()
	stage := bbCfg.Device()
	firstSeg := blockdev.ServiceTime(stage, blockdev.Request{Offset: 0, Size: seg, Write: true}, 0).Seconds()
	perByte := devSecPerByte(stage, false) +
		1/float64(dcfg.ComputeFabric.LinkBandwidth) +
		devSecPerByte(dcfg.OSTDevice(), true)
	return OracleResult{
		Name:      "burst-buffer-drain-time",
		Unit:      "s",
		Expected:  firstSeg + float64(total)*perByte,
		Simulated: drained.Seconds(),
		Tol:       0.05,
		Detail: fmt.Sprintf("%d MiB burst in %d KiB segments, 1 drain worker; drain = first-segment staging + bytes × (ssdRead + link + devWrite)",
			total>>20, seg>>10),
	}
}

// OracleCompressedStream checks the data-reduction stage's cost model:
// one rank streaming through a compressor over the direct tier pays, per
// chunk, the compression CPU time plus the shrunken physical transfer
// (ceil(chunk/ratio) bytes through the serialized network+device
// pipeline). Elapsed time must match that closed form — the stage may
// add only per-RPC metadata noise inside the tolerance.
func OracleCompressedStream(seed int64) OracleResult {
	const (
		total = int64(64 << 20)
		chunk = int64(4 << 20)
	)
	cfg := pfs.DefaultConfig()
	cfg.NumOSS, cfg.OSTsPerOSS = 1, 1
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = 1

	e := des.NewEngine(seed)
	fs := pfs.New(e, cfg)
	pr, err := storage.NewProvider(e, fs, storage.TierDirect, storage.ProviderConfig{})
	if err != nil {
		panic(fmt.Sprintf("validate: oracle provider: %v", err))
	}
	comp, err := reduce.New("lz")
	if err != nil {
		panic(fmt.Sprintf("validate: oracle compressor: %v", err))
	}
	pr.Push(comp)
	env := posixio.NewEnv(pr.Target("cn0"), 0, nil)
	var elapsed des.Time
	e.Spawn("oracle.compressed-stream", func(p *des.Proc) {
		fd, err := env.Open(p, "/stream", posixio.OCreate)
		if err != nil {
			panic(fmt.Sprintf("validate: oracle compressed open: %v", err))
		}
		start := p.Now()
		for off := int64(0); off < total; off += chunk {
			if _, werr := env.Pwrite(p, fd, off, chunk); werr != nil {
				panic(fmt.Sprintf("validate: oracle compressed write: %v", werr))
			}
		}
		elapsed = p.Now() - start
		_ = env.Close(p, fd)
	})
	e.Run(des.MaxTime)

	m := comp.Model()
	st := comp.StageStats()
	if st.LogicalWritten != total {
		panic(fmt.Sprintf("validate: oracle compressed stage accounted %d of %d bytes", st.LogicalWritten, total))
	}
	physPerOp := math.Ceil(float64(chunk) / m.Ratio)
	cpuPerOp := (float64(chunk) + float64(m.RampBytes)) / (m.CompressMBps * 1e6)
	dcfg := fs.Config()
	perByte := 1/float64(dcfg.ComputeFabric.LinkBandwidth) + devSecPerByte(dcfg.OSTDevice(), true)
	perOp := cpuPerOp + physPerOp*perByte
	return OracleResult{
		Name:      "compressed-stream-bandwidth",
		Unit:      "MB/s",
		Expected:  float64(chunk) / perOp / 1e6,
		Simulated: float64(total) / elapsed.Seconds() / 1e6,
		Tol:       0.05,
		Detail: fmt.Sprintf("1 rank, %d MiB sequential through the %s stage (ratio %.2g) over direct; per chunk = compress CPU + ceil(chunk/ratio) x (1/link + devPerByte)",
			total>>20, m.Name, m.Ratio),
	}
}

// OracleTieredDrain checks the same drain pipeline as
// OracleBurstBufferDrain, but driven through the full layered path — a
// posixio.Env on a burst-buffer-tier storage.Target instead of direct
// Buffer calls. The POSIX fsync maps to WaitDrained, so time-to-fsync must
// match the closed-form drain expectation; the seam itself may add only
// metadata-RPC noise inside the tolerance.
func OracleTieredDrain(seed int64) OracleResult {
	const (
		total = int64(32 << 20)
		seg   = int64(1 << 20)
	)
	cfg := pfs.DefaultConfig()
	cfg.NumOSS, cfg.OSTsPerOSS = 1, 1
	cfg.NumIONodes = 0
	cfg.DefaultStripeCount = 1

	e := des.NewEngine(seed)
	fs := pfs.New(e, cfg)
	pcfg := storage.ProviderConfig{BB: burstbuffer.DefaultConfig()}
	pcfg.BB.DrainWorkers = 1
	pr, err := storage.NewProvider(e, fs, storage.TierBB, pcfg)
	if err != nil {
		panic(fmt.Sprintf("validate: oracle provider: %v", err))
	}
	env := posixio.NewEnv(pr.Target("cn0"), 0, nil)
	var drained des.Time
	e.Spawn("oracle.tiered-drain", func(p *des.Proc) {
		fd, err := env.Open(p, "/ckpt", posixio.OCreate)
		if err != nil {
			panic(fmt.Sprintf("validate: oracle tiered open: %v", err))
		}
		for off := int64(0); off < total; off += seg {
			if _, werr := env.Pwrite(p, fd, off, seg); werr != nil {
				panic(fmt.Sprintf("validate: oracle tiered write: %v", werr))
			}
		}
		if err := env.Fsync(p, fd); err != nil {
			panic(fmt.Sprintf("validate: oracle tiered fsync: %v", err))
		}
		drained = p.Now()
		_ = env.Close(p, fd)
	})
	e.Run(des.MaxTime)
	bb := pr.Buffers()[0]
	if st := bb.Stats(); st.DrainErrors != 0 || st.Drained != total || st.Used != 0 {
		panic(fmt.Sprintf("validate: oracle tiered drain lost data: %+v", st))
	}

	dcfg := fs.Config()
	stage := pcfg.BB.Device()
	firstSeg := blockdev.ServiceTime(stage, blockdev.Request{Offset: 0, Size: seg, Write: true}, 0).Seconds()
	perByte := devSecPerByte(stage, false) +
		1/float64(dcfg.ComputeFabric.LinkBandwidth) +
		devSecPerByte(dcfg.OSTDevice(), true)
	return OracleResult{
		Name:      "tiered-drain-time",
		Unit:      "s",
		Expected:  firstSeg + float64(total)*perByte,
		Simulated: drained.Seconds(),
		Tol:       0.05,
		Detail: fmt.Sprintf("%d MiB burst in %d KiB writes through posixio on the bb tier, 1 drain worker; fsync = WaitDrained must equal the analytic drain time",
			total>>20, seg>>10),
	}
}
