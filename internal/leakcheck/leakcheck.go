// Package leakcheck is a test helper that fails a test when goroutines
// started during it outlive it. Long-running server components (the
// serve daemon's workers, campaign pools, burst-buffer drain procs) must
// be leak-free or a daemon slowly strangles itself; these tests make
// that a regression instead of a production incident.
//
// Usage, first line of the test:
//
//	leakcheck.Check(t)
//
// Check snapshots the goroutine count and registers a cleanup that
// allows a settle window (goroutine exit is asynchronous with the events
// tests observe), then fails with a full stack dump if extra goroutines
// remain.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settle is how long a cleanup waits for stragglers to exit before
// declaring a leak. Generous relative to any in-repo shutdown path, tiny
// relative to a test-suite run.
const settle = 5 * time.Second

// Check arms leak detection for the test. Call it before starting any
// component under test so the baseline excludes the test's own work.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(settle)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutines before the test, %d after (waited %v)\n%s",
			before, now, settle, Dump())
	})
}

// Dump returns the current all-goroutine stack dump, trimmed to a
// readable length.
func Dump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	dump := string(buf[:n])
	const maxLines = 400
	lines := strings.Split(dump, "\n")
	if len(lines) > maxLines {
		dump = strings.Join(lines[:maxLines], "\n") +
			fmt.Sprintf("\n... (%d more lines)", len(lines)-maxLines)
	}
	return dump
}
