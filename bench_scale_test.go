package pioeval_test

import (
	"fmt"
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

// Scale benchmarks: the continuation-form rank path that makes
// million-rank simulations affordable. Rank counts here are capped for CI
// (bench-smoke runs with -benchtime 1x); the EXPERIMENTS.md scale runbook
// records full 100k- and 1M-rank runs through `simfs -ranks`.

// BenchmarkScaleCheckpoint10k reports the host-side cost of simulating a
// 10k-rank file-per-process checkpoint in continuation form. Metrics:
// simulated events per benchmark op and events/sec on the host.
func BenchmarkScaleCheckpoint10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := des.NewEngine(11)
		fs := pfs.New(e, pfs.DefaultConfig())
		rep := workload.RunScaleCheckpoint(e, fs, workload.ScaleConfig{
			Ranks: 10_000, BytesPerRank: 1 << 20, Steps: 1,
			TransferSize: 1 << 20, RanksPerNode: 64, StripeCount: 1,
		})
		if rep.IOErrors != 0 {
			b.Fatalf("I/O errors: %d", rep.IOErrors)
		}
		b.ReportMetric(float64(rep.Events), "events/op")
	}
}

// BenchmarkScaleRankMemory reports retained heap bytes per simulated rank
// after a continuation-form run: the per-rank footprint that bounds the
// maximum rank count in a fixed memory budget.
func BenchmarkScaleRankMemory(b *testing.B) {
	const ranks = 10_000
	for i := 0; i < b.N; i++ {
		e := des.NewEngine(12)
		fs := pfs.New(e, pfs.DefaultConfig())
		workload.RunScaleCheckpoint(e, fs, workload.ScaleConfig{
			Ranks: ranks, BytesPerRank: 256 << 10, Steps: 1,
			TransferSize: 256 << 10, RanksPerNode: 64, StripeCount: 1,
		})
	}
}

// BenchmarkShardedCheckpoint reports the cost of the same workload split
// across 4 ParallelGroup shards at the default worker count. Output is
// byte-identical to the sequential (Workers=1) execution by contract.
func BenchmarkShardedCheckpoint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := workload.RunShardedCheckpoint(workload.ShardedConfig{
			Scale: workload.ScaleConfig{
				Ranks: 10_000, BytesPerRank: 1 << 20, Steps: 1,
				TransferSize: 1 << 20, RanksPerNode: 64, StripeCount: 1,
			},
			Shards: 4,
			Seed:   13,
		})
		if rep.IOErrors != 0 {
			b.Fatalf("I/O errors: %d", rep.IOErrors)
		}
		b.ReportMetric(float64(rep.Events), "events/op")
	}
}

// BenchmarkShardedScale is the single-simulation multi-core scaling curve:
// the same 8-shard checkpoint at 1, 2, 4, 8, and 16 persistent workers.
// Wall-clock per op across the sub-benchmarks is the speedup curve (flat
// when the host exposes fewer cores than workers); output is identical at
// every point by the ParallelGroup contract. Rank count is CI-capped; the
// EXPERIMENTS.md runbook records the 100k-rank sweep via
// `simfs -workers-sweep`.
func BenchmarkShardedScale(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var windows uint64
			for i := 0; i < b.N; i++ {
				rep := workload.RunShardedCheckpoint(workload.ShardedConfig{
					Scale: workload.ScaleConfig{
						Ranks: 10_000, BytesPerRank: 1 << 20, Steps: 1,
						TransferSize: 1 << 20, RanksPerNode: 64, StripeCount: 1,
					},
					Shards:  8,
					Workers: workers,
					Seed:    13,
				})
				if rep.IOErrors != 0 {
					b.Fatalf("I/O errors: %d", rep.IOErrors)
				}
				windows = rep.Windows
			}
			b.ReportMetric(float64(windows), "windows/op")
		})
	}
}
