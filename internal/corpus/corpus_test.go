package corpus

import (
	"math"
	"testing"
)

func TestCorpusHas51Papers(t *testing.T) {
	if Count() != 51 {
		t.Fatalf("corpus = %d papers, the survey includes 51", Count())
	}
}

func TestCorpusWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Papers() {
		if p.Key == "" || p.Title == "" || p.FirstAuthor == "" || p.Venue == "" {
			t.Errorf("incomplete paper: %+v", p)
		}
		if seen[p.Key] {
			t.Errorf("duplicate key %q", p.Key)
		}
		seen[p.Key] = true
		if p.Year < 2013 || p.Year > 2020 {
			t.Errorf("%s: year %d outside survey range", p.Key, p.Year)
		}
		switch p.Type {
		case Journal, Conference, Workshop:
		default:
			t.Errorf("%s: bad venue type %q", p.Key, p.Type)
		}
		switch p.Publisher {
		case IEEE, ACM, Springer, Elsevier, USENIX, Other:
		default:
			t.Errorf("%s: bad publisher %q", p.Key, p.Publisher)
		}
		if len(p.Categories) == 0 {
			t.Errorf("%s: no taxonomy category", p.Key)
		}
	}
}

func sumPercent(shares []Share) float64 {
	var s float64
	for _, sh := range shares {
		s += sh.Percent
	}
	return s
}

func TestDistributionsSumTo100(t *testing.T) {
	for name, shares := range map[string][]Share{
		"venue":     ByVenueType(),
		"publisher": ByPublisher(),
		"year":      ByYear(),
		"category":  ByCategory(),
	} {
		if s := sumPercent(shares); math.Abs(s-100) > 1e-9 {
			t.Errorf("%s distribution sums to %.4f%%", name, s)
		}
		// Sorted descending by count.
		for i := 1; i < len(shares); i++ {
			if shares[i].Count > shares[i-1].Count {
				t.Errorf("%s distribution not sorted", name)
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	// The survey's qualitative shape: conference papers dominate, and
	// IEEE + ACM together publish the majority.
	vt := ByVenueType()
	if vt[0].Label != string(Conference) {
		t.Errorf("dominant venue type = %s, want conference", vt[0].Label)
	}
	var ieeeAcm float64
	for _, s := range ByPublisher() {
		if s.Label == string(IEEE) || s.Label == string(ACM) {
			ieeeAcm += s.Percent
		}
	}
	if ieeeAcm < 50 {
		t.Errorf("IEEE+ACM share = %.1f%%, want majority", ieeeAcm)
	}
}

func TestWindowFilter(t *testing.T) {
	in := InWindow(2015, 2020)
	// The survey focuses on 2015-2020; only the two pre-window
	// foundational papers (Luu 2013 CLUSTER, plus none other) fall out.
	if len(in) < Count()-2 {
		t.Errorf("window 2015-2020 keeps %d of %d", len(in), Count())
	}
	for _, p := range in {
		if p.Year < 2015 || p.Year > 2020 {
			t.Errorf("window leak: %+v", p)
		}
	}
}

func TestFind(t *testing.T) {
	p, ok := Find("patel19")
	if !ok || p.FirstAuthor != "Patel" {
		t.Errorf("Find(patel19) = %+v, %v", p, ok)
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

func TestEmergingCategoryPresence(t *testing.T) {
	// Section V exists because emerging-workload papers are a visible
	// minority of the corpus.
	var emerging int
	for _, p := range Papers() {
		for _, c := range p.Categories {
			if c == CatEmerging {
				emerging++
			}
		}
	}
	if emerging < 5 {
		t.Errorf("emerging papers = %d, want >= 5", emerging)
	}
	if emerging > Count()/2 {
		t.Errorf("emerging papers = %d, should be a minority", emerging)
	}
}
