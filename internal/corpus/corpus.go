// Package corpus encodes the survey corpus behind the paper's Figure 3:
// the 51 research articles (2013–2020, centered on the 2015–2020 window)
// that the survey includes, with venue type, publisher, year, and the
// taxonomy categories each paper falls into. The percentage distributions
// Figure 3 plots are regenerated from this dataset.
package corpus

import (
	"fmt"
	"sort"
)

// VenueType classifies publication venues.
type VenueType string

// Venue types.
const (
	Journal    VenueType = "journal"
	Conference VenueType = "conference"
	Workshop   VenueType = "workshop"
)

// Publisher identifies the publishing body.
type Publisher string

// Publishers.
const (
	IEEE     Publisher = "IEEE"
	ACM      Publisher = "ACM"
	Springer Publisher = "Springer"
	Elsevier Publisher = "Elsevier"
	USENIX   Publisher = "USENIX"
	Other    Publisher = "Other"
)

// Category maps a paper into the taxonomy of Figure 4.
type Category string

// Taxonomy categories (Section IV/V of the paper).
const (
	CatWorkloads   Category = "measurement/workloads"  // benchmarks, proxy apps, skeletons
	CatMonitoring  Category = "measurement/monitoring" // tracing, profiling, server-side stats
	CatStatistics  Category = "modeling/statistics"    // systematic analysis studies
	CatPredictive  Category = "modeling/predictive"    // ML / analytical prediction
	CatReplay      Category = "modeling/replay"        // replay-based modeling
	CatWorkloadGen Category = "modeling/workload-gen"  // workload generation
	CatSimulation  Category = "simulation"             // DES / trace / execution driven
	CatEmerging    Category = "emerging-workloads"     // AI / analytics / workflows
)

// Paper is one surveyed article.
type Paper struct {
	Key         string // short citation key
	Title       string
	FirstAuthor string
	Year        int
	Venue       string
	Type        VenueType
	Publisher   Publisher
	Categories  []Category
}

// Papers returns the encoded 51-article corpus.
func Papers() []Paper { return append([]Paper(nil), corpus...) }

// Count returns the corpus size.
func Count() int { return len(corpus) }

var corpus = []Paper{
	{"messer18", "MiniApps derived from production HPC applications", "Messer", 2018, "IJHPCA", Journal, Other, []Category{CatWorkloads}},
	{"herbein16", "Performance characterization of irregular I/O at the extreme scale", "Herbein", 2016, "Parallel Computing", Journal, Elsevier, []Category{CatStatistics}},
	{"dickson16", "Replicating HPC I/O workloads with proxy applications", "Dickson", 2016, "PDSW-DISCS", Workshop, IEEE, []Category{CatWorkloads, CatReplay}},
	{"dickson17", "Enabling portable I/O analysis of commercially sensitive HPC applications", "Dickson", 2017, "CUG", Conference, Other, []Category{CatWorkloads, CatReplay}},
	{"logan17", "Extending Skel to support next generation I/O systems", "Logan", 2017, "CLUSTER", Conference, IEEE, []Category{CatWorkloads}},
	{"hao19", "Automatic generation of benchmarks for I/O-intensive parallel applications", "Hao", 2019, "JPDC", Journal, Elsevier, []Category{CatReplay, CatWorkloadGen}},
	{"luo15", "HPC I/O trace extrapolation", "Luo", 2015, "ESPT", Workshop, ACM, []Category{CatMonitoring, CatReplay}},
	{"luo17", "ScalaIOExtrap: elastic I/O tracing and extrapolation", "Luo", 2017, "IPDPS", Conference, IEEE, []Category{CatMonitoring, CatReplay}},
	{"haghdoost17fast", "On the accuracy and scalability of intensive I/O workload replay", "Haghdoost", 2017, "FAST", Conference, USENIX, []Category{CatReplay}},
	{"haghdoost17tos", "hfplayer: scalable replay for intensive block I/O workloads", "Haghdoost", 2017, "TOS", Journal, ACM, []Category{CatReplay}},
	{"snyder15", "Techniques for modeling large-scale HPC I/O workloads", "Snyder", 2015, "PMBS", Workshop, ACM, []Category{CatWorkloadGen, CatSimulation}},
	{"carothers17", "Durango: scalable synthetic workload generation", "Carothers", 2017, "SIGSIM-PADS", Conference, ACM, []Category{CatWorkloadGen, CatSimulation}},
	{"xu17", "DXT: Darshan eXtended tracing", "Xu", 2017, "CUG", Conference, Other, []Category{CatMonitoring}},
	{"chien20", "tf-Darshan: fine-grained I/O in ML workloads", "Chien", 2020, "CLUSTER", Conference, IEEE, []Category{CatMonitoring, CatEmerging}},
	{"luu13", "A multi-level approach for understanding I/O activity", "Luu", 2013, "CLUSTER", Conference, IEEE, []Category{CatMonitoring}},
	{"wang20", "Recorder 2.0: efficient parallel I/O tracing and analysis", "Wang", 2020, "IPDPSW", Workshop, IEEE, []Category{CatMonitoring}},
	{"paul17pdsw", "Toward scalable monitoring on large-scale storage", "Paul", 2017, "PDSW-DISCS", Workshop, ACM, []Category{CatMonitoring}},
	{"paul19", "FSMonitor: scalable file system monitoring", "Paul", 2019, "CLUSTER", Conference, IEEE, []Category{CatMonitoring}},
	{"paul17bigdata", "I/O load balancing for big data HPC applications", "Paul", 2017, "BigData", Conference, IEEE, []Category{CatMonitoring, CatEmerging}},
	{"luu15", "A multiplatform study of I/O behavior on petascale supercomputers", "Luu", 2015, "HPDC", Conference, ACM, []Category{CatMonitoring, CatStatistics}},
	{"snyder16", "Modular HPC I/O characterization with Darshan", "Snyder", 2016, "ESPT", Workshop, IEEE, []Category{CatMonitoring}},
	{"rodrigo17", "Towards understanding HPC users and systems: a NERSC case study", "Rodrigo", 2017, "JPDC", Journal, Elsevier, []Category{CatStatistics}},
	{"khetawat19", "Evaluating burst buffer placement in HPC systems", "Khetawat", 2019, "CLUSTER", Conference, IEEE, []Category{CatSimulation, CatStatistics}},
	{"saif18", "IOscope: a flexible I/O tracer", "Saif", 2018, "ISC Workshops", Workshop, Springer, []Category{CatMonitoring}},
	{"he15", "PIONEER: parallel I/O workload characterization and generation", "He", 2015, "CCGrid", Conference, IEEE, []Category{CatMonitoring, CatWorkloadGen}},
	{"sangaiah18", "SynchroTrace: synchronization-aware architecture-agnostic traces", "Sangaiah", 2018, "TACO", Journal, ACM, []Category{CatSimulation, CatReplay}},
	{"azevedo19", "Improving fairness in a large scale HTC system", "Azevedo", 2019, "Euro-Par", Conference, Springer, []Category{CatSimulation, CatReplay}},
	{"vazhkudai17", "GUIDE: a scalable information directory service", "Vazhkudai", 2017, "SC", Conference, ACM, []Category{CatMonitoring, CatStatistics}},
	{"yildiz16", "On the root causes of cross-application I/O interference", "Yildiz", 2016, "IPDPS", Conference, IEEE, []Category{CatStatistics}},
	{"di17", "LOGAIDER: mining potential correlations of HPC log events", "Di", 2017, "CCGRID", Conference, IEEE, []Category{CatMonitoring}},
	{"lockwood18tokio", "TOKIO on ClusterStor: holistic I/O performance analysis", "Lockwood", 2018, "CUG", Conference, Other, []Category{CatMonitoring}},
	{"park17", "Big data meets HPC log analytics", "Park", 2017, "CLUSTER", Conference, IEEE, []Category{CatMonitoring, CatEmerging}},
	{"lockwood17umami", "UMAMI: meaningful metrics through holistic I/O analysis", "Lockwood", 2017, "PDSW-DISCS", Workshop, ACM, []Category{CatMonitoring}},
	{"yang19", "End-to-end I/O monitoring on a leading supercomputer", "Yang", 2019, "NSDI", Conference, USENIX, []Category{CatMonitoring}},
	{"wadhwa19", "iez: resource contention aware load balancing", "Wadhwa", 2019, "IPDPS", Conference, IEEE, []Category{CatMonitoring}},
	{"lockwood18year", "A year in the life of a parallel file system", "Lockwood", 2018, "SC", Conference, IEEE, []Category{CatStatistics}},
	{"luettgau18", "Toward understanding I/O behavior in HPC workflows", "Luettgau", 2018, "PDSW-DISCS", Workshop, IEEE, []Category{CatStatistics, CatEmerging}},
	{"wang18", "IOMiner: large-scale analytics framework for I/O logs", "Wang", 2018, "CLUSTER", Conference, IEEE, []Category{CatStatistics}},
	{"xie17", "Predicting output performance of a petascale supercomputer", "Xie", 2017, "HPDC", Conference, ACM, []Category{CatPredictive}},
	{"obaida18", "Parallel application performance prediction using analysis based models", "Obaida", 2018, "SIGSIM-PADS", Conference, ACM, []Category{CatPredictive, CatSimulation}},
	{"gunasekaran15", "Comparative I/O workload characterization of two leadership class storage clusters", "Gunasekaran", 2015, "PDSW", Workshop, ACM, []Category{CatStatistics}},
	{"patel19", "Revisiting I/O behavior in large-scale storage systems", "Patel", 2019, "SC", Conference, ACM, []Category{CatStatistics, CatEmerging}},
	{"paul20", "Understanding HPC application I/O behavior using system level statistics", "Paul", 2020, "HiPC", Conference, IEEE, []Category{CatStatistics, CatMonitoring}},
	{"dorier16", "Omnisc'IO: grammar-based I/O prediction", "Dorier", 2016, "TPDS", Journal, IEEE, []Category{CatPredictive}},
	{"schmid16", "Predicting I/O performance in HPC using artificial neural networks", "Schmid", 2016, "SFI", Journal, Other, []Category{CatPredictive}},
	{"sun20", "Automated performance modeling of HPC applications using machine learning", "Sun", 2020, "TC", Journal, IEEE, []Category{CatPredictive}},
	{"chowdhury20", "Emulating I/O behavior in scientific workflows", "Chowdhury", 2020, "PDSW", Workshop, IEEE, []Category{CatPredictive, CatEmerging}},
	{"liu17", "Performance evaluation and modeling of HPC I/O on non-volatile memory", "Liu", 2017, "NAS", Conference, IEEE, []Category{CatSimulation, CatStatistics}},
	{"xenopoulos16", "Big data analytics on HPC architectures", "Xenopoulos", 2016, "BigData", Conference, IEEE, []Category{CatEmerging}},
	{"xuan17", "Accelerating big data analytics on HPC clusters using two-level storage", "Xuan", 2017, "Parallel Computing", Journal, Elsevier, []Category{CatEmerging}},
	{"chowdhury19", "I/O characterization and performance evaluation of BeeGFS for deep learning", "Chowdhury", 2019, "ICPP", Conference, ACM, []Category{CatEmerging, CatStatistics}},
}

// Share is one slice of a percentage distribution.
type Share struct {
	Label   string
	Count   int
	Percent float64
}

// distribution tallies keys and converts to sorted percentage shares.
func distribution(keys []string) []Share {
	counts := map[string]int{}
	for _, k := range keys {
		counts[k]++
	}
	total := len(keys)
	out := make([]Share, 0, len(counts))
	for k, n := range counts {
		out = append(out, Share{Label: k, Count: n, Percent: 100 * float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// ByVenueType returns the Figure-3 distribution over venue types.
func ByVenueType() []Share {
	keys := make([]string, len(corpus))
	for i, p := range corpus {
		keys[i] = string(p.Type)
	}
	return distribution(keys)
}

// ByPublisher returns the Figure-3 distribution over publishers.
func ByPublisher() []Share {
	keys := make([]string, len(corpus))
	for i, p := range corpus {
		keys[i] = string(p.Publisher)
	}
	return distribution(keys)
}

// ByYear returns the publication-year distribution.
func ByYear() []Share {
	keys := make([]string, len(corpus))
	for i, p := range corpus {
		keys[i] = fmt.Sprintf("%d", p.Year)
	}
	return distribution(keys)
}

// ByCategory returns the taxonomy-category distribution. Papers may fall
// into several categories, so percentages are over category assignments.
func ByCategory() []Share {
	var keys []string
	for _, p := range corpus {
		for _, c := range p.Categories {
			keys = append(keys, string(c))
		}
	}
	return distribution(keys)
}

// InWindow returns the papers published within [from, to].
func InWindow(from, to int) []Paper {
	var out []Paper
	for _, p := range corpus {
		if p.Year >= from && p.Year <= to {
			out = append(out, p)
		}
	}
	return out
}

// Find returns the paper with the given key.
func Find(key string) (Paper, bool) {
	for _, p := range corpus {
		if p.Key == key {
			return p, true
		}
	}
	return Paper{}, false
}
