// Package trace implements multi-level I/O tracing in the style of
// Recorder: every layer of the simulated I/O stack (application, HDF,
// MPI-IO, POSIX, PFS) emits timestamped records into a Collector. Traces
// are the raw material for characterization (internal/profile), replay
// (internal/replay), skeleton generation (internal/skeleton), and modeling
// (internal/predict).
package trace

import (
	"fmt"
	"sort"

	"pioeval/internal/des"
)

// Layer identifies which level of the I/O stack produced a record.
type Layer uint8

// I/O stack layers, top to bottom (Figure 2 of the paper).
const (
	LayerApp Layer = iota
	LayerHDF
	LayerMPIIO
	LayerPOSIX
	LayerPFS
	numLayers
)

var layerNames = [...]string{"app", "hdf", "mpiio", "posix", "pfs"}

// String returns the layer name.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// ParseLayer converts a layer name back to a Layer.
func ParseLayer(s string) (Layer, error) {
	for i, n := range layerNames {
		if n == s {
			return Layer(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown layer %q", s)
}

// Record is one traced I/O operation.
type Record struct {
	Rank   int
	Layer  Layer
	Op     string
	Path   string
	Offset int64
	Size   int64
	Start  des.Time
	End    des.Time
}

// Duration returns the record's elapsed simulated time.
func (r Record) Duration() des.Time { return r.End - r.Start }

// Collector accumulates records from one run. It is not safe for concurrent
// use; the DES engine is single-threaded by construction.
type Collector struct {
	recs    []Record
	enabled bool
	dropped uint64
	limit   int // 0 = unlimited
	hook    func(Record)
}

// SetHook installs fn to observe every record as it is emitted (even when
// over the retention limit). Live profilers attach here. Pass nil to
// remove.
func (c *Collector) SetHook(fn func(Record)) { c.hook = fn }

// Hooks combines several record observers into one, for attaching multiple
// live consumers (profiler + timeline + ...) to a single collector.
func Hooks(fns ...func(Record)) func(Record) {
	return func(r Record) {
		for _, fn := range fns {
			fn(r)
		}
	}
}

// NewCollector returns an enabled collector with no record limit.
func NewCollector() *Collector { return &Collector{enabled: true} }

// SetLimit caps the number of retained records (0 = unlimited); further
// records are counted as dropped.
func (c *Collector) SetLimit(n int) { c.limit = n }

// SetEnabled toggles collection.
func (c *Collector) SetEnabled(on bool) { c.enabled = on }

// Emit appends a record if collection is enabled.
func (c *Collector) Emit(r Record) {
	if c == nil || !c.enabled {
		return
	}
	if c.hook != nil {
		c.hook(r)
	}
	if c.limit > 0 && len(c.recs) >= c.limit {
		c.dropped++
		return
	}
	c.recs = append(c.recs, r)
}

// Records returns the collected records in emission order.
func (c *Collector) Records() []Record { return c.recs }

// Len reports the number of collected records.
func (c *Collector) Len() int { return len(c.recs) }

// Dropped reports records lost to the limit.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Reset clears the collector.
func (c *Collector) Reset() { c.recs = nil; c.dropped = 0 }

// Filter returns the records matching pred, preserving order.
func Filter(recs []Record, pred func(Record) bool) []Record {
	var out []Record
	for _, r := range recs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// ByLayer returns only the records from layer l.
func ByLayer(recs []Record, l Layer) []Record {
	return Filter(recs, func(r Record) bool { return r.Layer == l })
}

// ByRank returns only the records from rank.
func ByRank(recs []Record, rank int) []Record {
	return Filter(recs, func(r Record) bool { return r.Rank == rank })
}

// ByOp returns only records whose Op equals op.
func ByOp(recs []Record, op string) []Record {
	return Filter(recs, func(r Record) bool { return r.Op == op })
}

// SortByStart orders records by start time (stable), as required for
// time-ordered merge of per-rank streams.
func SortByStart(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
}

// Merge combines multiple record streams into one time-ordered stream.
func Merge(streams ...[]Record) []Record {
	var out []Record
	for _, s := range streams {
		out = append(out, s...)
	}
	SortByStart(out)
	return out
}

// Summary aggregates a record set.
type Summary struct {
	Records      int
	Ranks        int
	BytesRead    int64
	BytesWritten int64
	ReadOps      int
	WriteOps     int
	MetaOps      int
	Span         des.Time // last end - first start
	IOTime       des.Time // summed op durations
}

// Summarize computes aggregate statistics over recs.
func Summarize(recs []Record) Summary {
	var s Summary
	s.Records = len(recs)
	if len(recs) == 0 {
		return s
	}
	ranks := map[int]bool{}
	first, last := recs[0].Start, recs[0].End
	for _, r := range recs {
		ranks[r.Rank] = true
		if r.Start < first {
			first = r.Start
		}
		if r.End > last {
			last = r.End
		}
		s.IOTime += r.Duration()
		switch r.Op {
		case "read":
			s.ReadOps++
			s.BytesRead += r.Size
		case "write":
			s.WriteOps++
			s.BytesWritten += r.Size
		default:
			s.MetaOps++
		}
	}
	s.Ranks = len(ranks)
	s.Span = last - first
	return s
}
