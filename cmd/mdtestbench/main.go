// Command mdtestbench runs the mdtest-like metadata benchmark against a
// simulated parallel file system and prints per-phase operation rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdtestbench: ")
	fs := flag.NewFlagSet("mdtestbench", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	ranks := fs.Int("ranks", 4, "client ranks")
	files := fs.Int("files", 256, "files per rank")
	writeStr := fs.String("write", "0B", "bytes written into each file (mdtest -w)")
	_ = fs.Parse(os.Args[1:])

	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	writeBytes, err := cli.ParseSize(*writeStr)
	if err != nil {
		log.Fatal(err)
	}

	e := des.NewEngine(cluster.Seed)
	sim := pfs.New(e, cfg)
	h := workload.NewHarness(e, sim, *ranks, "cn", nil)
	rep := workload.RunMDTest(h, workload.MDTestConfig{
		Ranks: *ranks, FilesPerRank: *files, WriteBytes: writeBytes,
	})

	fmt.Printf("mdtest-like benchmark: %d ranks x %d files (MDS threads: %d)\n",
		*ranks, *files, cfg.MDSThreads)
	fmt.Printf("  %-10s %12s %14s\n", "phase", "time", "ops/sec")
	fmt.Printf("  %-10s %12v %14.0f\n", "create", rep.CreateTime, rep.CreatesPerS)
	fmt.Printf("  %-10s %12v %14.0f\n", "stat", rep.StatTime, rep.StatsPerS)
	fmt.Printf("  %-10s %12v %14.0f\n", "remove", rep.RemoveTime, rep.RemovesPerS)
	st := sim.MDSStats()
	fmt.Printf("  MDS total ops: %d\n", st.TotalOps)
}
