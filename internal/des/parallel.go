package des

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ParallelGroup executes several independent engines (logical partitions)
// concurrently under conservative synchronization: time advances in
// windows of the group's lookahead, and cross-partition interactions must
// carry at least one lookahead of latency — the classic conservative
// parallel-discrete-event-simulation contract (CMB-style, with barrier
// windows instead of null messages). Within a window every partition runs
// in its own goroutine; results are bit-identical to a sequential
// execution because no cross event can land inside the window that emits
// it.
type ParallelGroup struct {
	engines   []*Engine
	lookahead Time
	workers   int

	mu      sync.Mutex
	inbox   []crossEvent
	nextSeq uint64
}

// crossEvent is a pending cross-partition event.
type crossEvent struct {
	at   Time
	to   int
	from int
	seq  uint64
	fn   func()
}

// NewParallelGroup couples engines with the given lookahead (> 0).
func NewParallelGroup(lookahead Time, engines ...*Engine) *ParallelGroup {
	if lookahead <= 0 {
		panic("des: parallel lookahead must be positive")
	}
	if len(engines) == 0 {
		panic("des: parallel group needs at least one engine")
	}
	return &ParallelGroup{engines: engines, lookahead: lookahead}
}

// Engine returns partition i's engine.
func (g *ParallelGroup) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the group lookahead.
func (g *ParallelGroup) Lookahead() Time { return g.lookahead }

// SetWorkers bounds how many partitions execute concurrently within a
// window: n == 1 runs partitions sequentially in index order, n <= 0 or
// n >= len(engines) uses one goroutine per partition (the default). The
// choice never affects results — windows are barrier-synchronized and
// partitions within a window are independent — so any worker count must
// produce identical output; tests and the -race shard smoke rely on that.
func (g *ParallelGroup) SetWorkers(n int) { g.workers = n }

// Send schedules fn to run on partition `to` after delay `delay` measured
// from partition `from`'s current time. The delay must be at least the
// group lookahead — that is what makes conservative windowed execution
// correct. Safe to call from inside partition event handlers and
// processes.
func (g *ParallelGroup) Send(from, to int, delay Time, fn func()) {
	if delay < g.lookahead {
		panic(fmt.Sprintf("des: cross-partition delay %v below lookahead %v", delay, g.lookahead))
	}
	if to < 0 || to >= len(g.engines) || from < 0 || from >= len(g.engines) {
		panic("des: cross-partition index out of range")
	}
	at := g.engines[from].Now() + delay
	g.mu.Lock()
	g.inbox = append(g.inbox, crossEvent{at: at, to: to, from: from, seq: g.nextSeq, fn: fn})
	g.nextSeq++
	g.mu.Unlock()
}

// Run executes all partitions until no events remain anywhere or the
// horizon is reached, and returns the latest partition clock.
func (g *ParallelGroup) Run(horizon Time) Time {
	for {
		// Find the earliest work item anywhere.
		earliest := MaxTime
		for _, e := range g.engines {
			if at, ok := e.NextEventTime(); ok && at < earliest {
				earliest = at
			}
		}
		g.mu.Lock()
		for _, ce := range g.inbox {
			if ce.at < earliest {
				earliest = ce.at
			}
		}
		g.mu.Unlock()
		if earliest == MaxTime || earliest > horizon {
			break
		}
		windowEnd := earliest + g.lookahead
		if windowEnd > horizon {
			windowEnd = horizon
		}

		// Deliver cross events that fall inside this window. Sorting by
		// (at, from, seq) keeps delivery deterministic regardless of
		// goroutine interleaving in earlier windows.
		g.mu.Lock()
		var deliver []crossEvent
		keep := g.inbox[:0]
		for _, ce := range g.inbox {
			if ce.at <= windowEnd {
				deliver = append(deliver, ce)
			} else {
				keep = append(keep, ce)
			}
		}
		g.inbox = keep
		g.mu.Unlock()
		sort.Slice(deliver, func(i, j int) bool {
			if deliver[i].at != deliver[j].at {
				return deliver[i].at < deliver[j].at
			}
			if deliver[i].from != deliver[j].from {
				return deliver[i].from < deliver[j].from
			}
			return deliver[i].seq < deliver[j].seq
		})
		for _, ce := range deliver {
			g.engines[ce.to].schedule(ce.at, ce.fn, nil)
		}

		// Execute the window with up to `workers` partitions in flight
		// (one goroutine per partition by default, strictly sequential
		// when workers == 1).
		w := g.workers
		if w <= 0 || w > len(g.engines) {
			w = len(g.engines)
		}
		if w == 1 {
			for _, e := range g.engines {
				e.Run(windowEnd)
				e.AdvanceTo(windowEnd)
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(g.engines) {
							return
						}
						e := g.engines[i]
						e.Run(windowEnd)
						e.AdvanceTo(windowEnd)
					}
				}()
			}
			wg.Wait()
		}
	}
	var last Time
	for _, e := range g.engines {
		if e.Now() > last {
			last = e.Now()
		}
	}
	return last
}
