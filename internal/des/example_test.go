package des_test

import (
	"fmt"

	"pioeval/internal/des"
)

// ExampleEngine shows the process-oriented style every simulator in this
// repository is built from: spawned processes block on Wait while the
// engine advances virtual time deterministically between events.
func ExampleEngine() {
	e := des.NewEngine(1)
	e.Spawn("writer", func(p *des.Proc) {
		p.Wait(10 * des.Millisecond)
		fmt.Printf("%v writer done\n", p.Now())
	})
	e.Spawn("reader", func(p *des.Proc) {
		p.Wait(4 * des.Millisecond)
		fmt.Printf("%v reader done\n", p.Now())
	})
	end := e.Run(des.MaxTime)
	fmt.Printf("makespan %v\n", end)
	// Output:
	// 4ms reader done
	// 10ms writer done
	// makespan 10ms
}

// ExampleEngine_After demonstrates callback-style scheduling, the style
// the fault injector uses to fire campaign events at absolute times.
func ExampleEngine_After() {
	e := des.NewEngine(1)
	e.After(2*des.Millisecond, func() { fmt.Printf("%v first\n", e.Now()) })
	e.After(5*des.Millisecond, func() { fmt.Printf("%v second\n", e.Now()) })
	e.Run(des.MaxTime)
	// Output:
	// 2ms first
	// 5ms second
}

// ExampleStreamRNG shows named random streams: each stream's sequence
// depends only on the root seed and the stream name, so adding a new
// stream never perturbs existing ones.
func ExampleStreamRNG() {
	a := des.NewStreamRNG(7)
	b := des.NewStreamRNG(7)
	fmt.Println(a.Stream("ost0").Int63n(100) == b.Stream("ost0").Int63n(100))
	// Output:
	// true
}
