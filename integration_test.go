package pioeval_test

import (
	"bytes"
	"fmt"
	"testing"

	"pioeval/internal/core"
	"pioeval/internal/des"
	"pioeval/internal/iolang"
	"pioeval/internal/monitor"
	"pioeval/internal/pfs"
	"pioeval/internal/predict"
	"pioeval/internal/profile"
	"pioeval/internal/replay"
	"pioeval/internal/stats"
	"pioeval/internal/trace"
	"pioeval/internal/workload"
)

// TestIOWASourceConsumerMatrix exercises the core abstraction end to end:
// every workload source feeding every consumer must move the same bytes.
func TestIOWASourceConsumerMatrix(t *testing.T) {
	script := `
workload "matrix" {
    ranks 4
    loop 3 {
        write "/data" offset=rank*4MB size=1MB chunk=256KB
        read "/data" offset=rank*4MB size=512KB
    }
}
`
	wl, err := iolang.Parse(script)
	if err != nil {
		t.Fatal(err)
	}

	// Materialize a trace source by running the synthetic source once.
	synthOps, err := core.SyntheticSource{Workload: wl}.Ops()
	if err != nil {
		t.Fatal(err)
	}
	eRec := des.NewEngine(81)
	colRec := trace.NewCollector()
	if _, err := replay.RunTraced(eRec, pfs.New(eRec, ssdCluster()), synthOps, replay.Options{}, colRec); err != nil {
		t.Fatal(err)
	}

	// Materialize a profile source from the recorded trace.
	prof := profile.New()
	prof.IngestAll(colRec.Records())

	sources := []core.Source{
		core.SyntheticSource{Workload: wl},
		core.TraceSource{Records: colRec.Records()},
		core.ProfileSource{Files: prof.PerFile(), Ranks: 4},
	}
	consumers := []core.Consumer{
		core.ReplayConsumer{},
		core.SkeletonConsumer{},
	}

	wantWritten := int64(4 * 3 << 20) // 4 ranks x 3 x 1MB
	for _, src := range sources {
		ops, err := src.Ops()
		if err != nil {
			t.Fatalf("%s: %v", src.Name(), err)
		}
		for _, con := range consumers {
			e := des.NewEngine(82)
			res, err := con.Consume(e, pfs.New(e, ssdCluster()), ops)
			if err != nil {
				t.Fatalf("%s->%s: %v", src.Name(), con.Name(), err)
			}
			if src.Name() == "profile" {
				// Profile-derived workloads use bucket-representative
				// access sizes, so volumes match only within the bucket
				// ratio (documented 2x bound).
				if ratio := float64(res.BytesWritten) / float64(wantWritten); ratio < 0.5 || ratio > 2 {
					t.Errorf("%s->%s wrote %d, want within 2x of %d", src.Name(), con.Name(), res.BytesWritten, wantWritten)
				}
			} else if res.BytesWritten != wantWritten {
				t.Errorf("%s->%s wrote %d, want %d", src.Name(), con.Name(), res.BytesWritten, wantWritten)
			}
		}
	}
}

// TestProfileSynthesisApproximatesOriginal closes the Snyder-et-al loop:
// characterize a run, synthesize a workload from the profile alone, run it,
// and re-characterize — op counts and byte volumes must match, and the
// sequentiality classification must be preserved.
func TestProfileSynthesisApproximatesOriginal(t *testing.T) {
	e := des.NewEngine(83)
	fs := pfs.New(e, ssdCluster())
	col := trace.NewCollector()
	h := workload.NewHarness(e, fs, 4, "orig", col)
	workload.RunIOR(h, workload.IORConfig{
		Ranks: 4, BlockSize: 8 << 20, TransferSize: 512 << 10,
		SharedFile: true, ReadBack: true,
	})
	prof := profile.New()
	prof.IngestAll(col.Records())
	origFiles := prof.PerFile()

	ops, err := core.ProfileSource{Files: origFiles, Ranks: 4}.Ops()
	if err != nil {
		t.Fatal(err)
	}
	e2 := des.NewEngine(84)
	col2 := trace.NewCollector()
	if _, err := replay.RunTraced(e2, pfs.New(e2, ssdCluster()), ops, replay.Options{}, col2); err != nil {
		t.Fatal(err)
	}
	prof2 := profile.New()
	prof2.IngestAll(col2.Records())
	reFiles := prof2.PerFile()

	var origW, reW, origR, reR int64
	for _, f := range origFiles {
		origW += f.BytesWritten
		origR += f.BytesRead
	}
	for _, f := range reFiles {
		reW += f.BytesWritten
		reR += f.BytesRead
	}
	// Bucket-representative sizes mean volumes match within ~2x.
	if ratio := float64(reW) / float64(origW); ratio < 0.5 || ratio > 2 {
		t.Errorf("synthesized write volume ratio %.2f", ratio)
	}
	if ratio := float64(reR) / float64(origR); ratio < 0.5 || ratio > 2 {
		t.Errorf("synthesized read volume ratio %.2f", ratio)
	}
	if orig, re := prof.SequentialFraction(), prof2.SequentialFraction(); orig > 0.9 && re < 0.7 {
		t.Errorf("sequentiality not preserved: %.2f -> %.2f", orig, re)
	}
}

// TestGrammarPredictsPhasedWorkload applies the Omnisc'IO-style sequence
// predictor to a real recorded trace of a periodic workload: after
// observing the pattern, it predicts the next operation with high accuracy.
func TestGrammarPredictsPhasedWorkload(t *testing.T) {
	e := des.NewEngine(85)
	fs := pfs.New(e, ssdCluster())
	col := trace.NewCollector()
	h := workload.NewHarness(e, fs, 1, "app", col)
	workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks: 1, BytesPerRank: 4 << 20, Steps: 12, TransferSize: 1 << 20, ReuseFile: true,
	})
	// Encode ops as symbols: op kind + size bucket.
	var seq []int
	symbols := map[string]int{}
	for _, r := range trace.ByRank(col.Records(), 0) {
		key := fmt.Sprintf("%s/%d", r.Op, r.Size>>20)
		id, ok := symbols[key]
		if !ok {
			id = len(symbols)
			symbols[key] = id
		}
		seq = append(seq, id)
	}
	sp := predict.NewSeqPredictor(6)
	sp.Observe(seq)
	acc := sp.Accuracy(seq, len(seq)/4)
	if acc < 0.9 {
		t.Errorf("grammar predictor accuracy on periodic checkpoint = %.2f, want >= 0.9", acc)
	}
	// The grammar itself compresses the op stream.
	if ratio := predict.CompressionRatio(seq); ratio < 4 {
		t.Errorf("grammar compression = %.1f", ratio)
	}
}

// TestMonitoredMixedWorkloads runs DL + checkpoint jobs concurrently under
// a server-side sampler and checks the §V storyline: the sampler sees both
// read and write phases, and the system is not write-dominated.
func TestMonitoredMixedWorkloads(t *testing.T) {
	e := des.NewEngine(86)
	fs := pfs.New(e, ssdCluster())
	sampler := monitor.NewSampler(e, fs, 10*des.Millisecond, 30*des.Second)
	watcher := monitor.Watch(fs)

	hDL := workload.NewHarness(e, fs, 2, "dl", nil)
	workload.RunDL(hDL, workload.DLConfig{
		Workers: 2, Samples: 512, SampleSize: 64 << 10, SamplesPerFile: 128,
		Epochs: 2, Shuffle: true, Path: "/ds",
	})
	hCk := workload.NewHarness(e, fs, 2, "ck", nil)
	workload.RunCheckpoint(hCk, workload.CheckpointConfig{
		Ranks: 2, BytesPerRank: 8 << 20, Steps: 2, Path: "/ck",
	})
	sampler.Stop()

	read, written := fs.TotalBytes()
	if read == 0 || written == 0 {
		t.Fatal("mixed workload should read and write")
	}
	frac := float64(read) / float64(read+written)
	if frac < 0.3 {
		t.Errorf("read fraction %.2f: emerging mix should not be write-dominated", frac)
	}
	var sawRead, sawWrite bool
	for _, r := range sampler.DeriveRates() {
		if r.ReadBps > 0 {
			sawRead = true
		}
		if r.WriteBps > 0 {
			sawWrite = true
		}
	}
	if !sawRead || !sawWrite {
		t.Error("sampler missed a phase")
	}
	if len(watcher.Events()) == 0 {
		t.Error("FS watcher saw no metadata events")
	}
}

// TestTraceFileRoundTripThroughReplay writes a trace to the binary codec,
// reads it back, and replays it — the full tracer/replayer tool pipeline in
// process.
func TestTraceFileRoundTripThroughReplay(t *testing.T) {
	wl, err := iolang.Parse(`
workload "rt" {
    ranks 2
    loop 2 {
        write "/f.${rank}" offset=iter*1MB size=1MB
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	e := des.NewEngine(87)
	col := trace.NewCollector()
	if _, err := iolang.Run(e, pfs.New(e, ssdCluster()), wl, col); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, col.Records()); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e2 := des.NewEngine(88)
	res, err := replay.Run(e2, pfs.New(e2, ssdCluster()), replay.FromTrace(recs), replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != 2*2<<20 {
		t.Fatalf("replayed %d bytes", res.BytesWritten)
	}
}

// TestEndToEndFig2WithBurstBufferAndMonitor is the kitchen-sink check: the
// full Figure-1 topology (I/O-forwarding tier enabled) under an HDF
// workload, with monitoring attached, terminates and accounts every byte.
func TestEndToEndFig2WithBurstBufferAndMonitor(t *testing.T) {
	cfg := pfs.DefaultConfig() // includes 2 I/O nodes and both fabrics
	e := des.NewEngine(89)
	fs := pfs.New(e, cfg)
	sampler := monitor.NewSampler(e, fs, 50*des.Millisecond, des.Minute)
	col := trace.NewCollector()
	h := workload.NewHarness(e, fs, 4, "cn", col)
	rep := workload.RunIOR(h, workload.IORConfig{
		Ranks: 4, BlockSize: 4 << 20, TransferSize: 1 << 20, SharedFile: true,
	})
	sampler.Stop()
	if rep.WriteMBps <= 0 {
		t.Fatal("no bandwidth through the forwarding tier")
	}
	if _, w := fs.TotalBytes(); w != 16<<20 {
		t.Fatalf("OST bytes = %d", w)
	}
	if len(sampler.Samples()) == 0 {
		t.Error("no samples collected")
	}
}

// TestPeriodicityDetectionOnServerRates closes another §IV-B1 loop: sample
// the storage servers during a periodic checkpoint application and recover
// the checkpoint period from the bandwidth series alone.
func TestPeriodicityDetectionOnServerRates(t *testing.T) {
	e := des.NewEngine(90)
	fs := pfs.New(e, ssdCluster())
	sampler := monitor.NewSampler(e, fs, 10*des.Millisecond, 10*des.Second)
	h := workload.NewHarness(e, fs, 2, "per", nil)
	workload.RunCheckpoint(h, workload.CheckpointConfig{
		Ranks: 2, BytesPerRank: 4 << 20, Steps: 10,
		ComputeTime: 200 * des.Millisecond, ReuseFile: true,
	})
	sampler.Stop()
	var series []float64
	for _, r := range sampler.DeriveRates() {
		series = append(series, r.WriteBps)
	}
	// One checkpoint cycle = compute (200ms) + write; at 10ms sampling the
	// period should be ~20-26 bins.
	period, strength := stats.DetectPeriod(series, 5, 60, 0.2)
	if period < 15 || period > 35 {
		t.Fatalf("detected period %d bins (strength %.2f), want ~20-26", period, strength)
	}
}
