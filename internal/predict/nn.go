// Package predict implements the predictive-analytics models the paper's
// §IV-B2 surveys for I/O performance prediction: a feed-forward neural
// network trained with minibatch SGD (Schmid & Kunkel's approach to file
// access-time prediction), CART regression trees and random forests (Sun et
// al.'s approach to execution/I-O time prediction), a k-nearest-neighbor
// baseline, and a Sequitur-style grammar model for I/O sequence prediction
// (the Omnisc'IO approach). Pure stdlib.
package predict

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadInput is returned for malformed training data.
var ErrBadInput = errors.New("predict: bad input")

// Activation selects the hidden-layer nonlinearity.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	Tanh
	Sigmoid
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	default:
		return 1 / (1 + math.Exp(-x))
	}
}

func (a Activation) deriv(y float64) float64 {
	// Derivative expressed in terms of the activated output y.
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	default:
		return y * (1 - y)
	}
}

// NNConfig configures network shape and training.
type NNConfig struct {
	Hidden     []int // hidden layer widths
	Activation Activation
	LearnRate  float64
	Epochs     int
	BatchSize  int
	Seed       int64
	// L2 is the weight-decay coefficient.
	L2 float64
}

// DefaultNNConfig returns a small regression network: two hidden layers of
// 32 ReLU units, 200 epochs.
func DefaultNNConfig() NNConfig {
	return NNConfig{
		Hidden: []int{32, 32}, Activation: ReLU,
		LearnRate: 0.01, Epochs: 200, BatchSize: 16, Seed: 1,
	}
}

// NN is a feed-forward regression network (single output).
type NN struct {
	cfg    NNConfig
	sizes  []int // input, hidden..., 1
	w      [][][]float64
	b      [][]float64
	inMean []float64
	inStd  []float64
	outMu  float64
	outSd  float64
}

// NewNN creates an untrained network for inputDim features.
func NewNN(inputDim int, cfg NNConfig) *NN {
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	sizes := append([]int{inputDim}, cfg.Hidden...)
	sizes = append(sizes, 1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &NN{cfg: cfg, sizes: sizes}
	for l := 1; l < len(sizes); l++ {
		wl := make([][]float64, sizes[l])
		scale := math.Sqrt(2 / float64(sizes[l-1]))
		for j := range wl {
			wl[j] = make([]float64, sizes[l-1])
			for k := range wl[j] {
				wl[j][k] = rng.NormFloat64() * scale
			}
		}
		n.w = append(n.w, wl)
		n.b = append(n.b, make([]float64, sizes[l]))
	}
	return n
}

// normalize computes and applies feature standardization.
func (n *NN) fitNorm(X [][]float64, y []float64) {
	d := len(X[0])
	n.inMean = make([]float64, d)
	n.inStd = make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for _, row := range X {
			s += row[j]
		}
		n.inMean[j] = s / float64(len(X))
		var v float64
		for _, row := range X {
			dlt := row[j] - n.inMean[j]
			v += dlt * dlt
		}
		n.inStd[j] = math.Sqrt(v / float64(len(X)))
		if n.inStd[j] == 0 {
			n.inStd[j] = 1
		}
	}
	var mu float64
	for _, v := range y {
		mu += v
	}
	n.outMu = mu / float64(len(y))
	var sd float64
	for _, v := range y {
		sd += (v - n.outMu) * (v - n.outMu)
	}
	n.outSd = math.Sqrt(sd / float64(len(y)))
	if n.outSd == 0 {
		n.outSd = 1
	}
}

func (n *NN) norm(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - n.inMean[j]) / n.inStd[j]
	}
	return out
}

// forward returns activations per layer (layer 0 = input).
func (n *NN) forward(x []float64) [][]float64 {
	acts := [][]float64{x}
	cur := x
	for l := 0; l < len(n.w); l++ {
		next := make([]float64, n.sizes[l+1])
		last := l == len(n.w)-1
		for j := range next {
			z := n.b[l][j]
			for k, wv := range n.w[l][j] {
				z += wv * cur[k]
			}
			if last {
				next[j] = z // linear output
			} else {
				next[j] = n.cfg.Activation.apply(z)
			}
		}
		acts = append(acts, next)
		cur = next
	}
	return acts
}

// Train fits the network on (X, y) with minibatch SGD and MSE loss.
func (n *NN) Train(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return ErrBadInput
	}
	for _, row := range X {
		if len(row) != n.sizes[0] {
			return fmt.Errorf("predict: feature dim %d, want %d", len(row), n.sizes[0])
		}
	}
	n.fitNorm(X, y)
	Xn := make([][]float64, len(X))
	yn := make([]float64, len(y))
	for i := range X {
		Xn[i] = n.norm(X[i])
		yn[i] = (y[i] - n.outMu) / n.outSd
	}
	rng := rand.New(rand.NewSource(n.cfg.Seed + 7))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += n.cfg.BatchSize {
			e := s + n.cfg.BatchSize
			if e > len(idx) {
				e = len(idx)
			}
			n.step(Xn, yn, idx[s:e])
		}
	}
	return nil
}

// step applies one minibatch gradient update.
func (n *NN) step(X [][]float64, y []float64, batch []int) {
	L := len(n.w)
	// Accumulate gradients.
	gw := make([][][]float64, L)
	gb := make([][]float64, L)
	for l := 0; l < L; l++ {
		gw[l] = make([][]float64, n.sizes[l+1])
		for j := range gw[l] {
			gw[l][j] = make([]float64, n.sizes[l])
		}
		gb[l] = make([]float64, n.sizes[l+1])
	}
	for _, i := range batch {
		acts := n.forward(X[i])
		// Output delta (MSE, linear output).
		deltas := make([][]float64, L)
		out := acts[L][0]
		deltas[L-1] = []float64{out - y[i]}
		for l := L - 2; l >= 0; l-- {
			deltas[l] = make([]float64, n.sizes[l+1])
			for j := range deltas[l] {
				var s float64
				for k := range deltas[l+1] {
					s += n.w[l+1][k][j] * deltas[l+1][k]
				}
				deltas[l][j] = s * n.cfg.Activation.deriv(acts[l+1][j])
			}
		}
		for l := 0; l < L; l++ {
			for j := range gw[l] {
				for k := range gw[l][j] {
					gw[l][j][k] += deltas[l][j] * acts[l][k]
				}
				gb[l][j] += deltas[l][j]
			}
		}
	}
	lr := n.cfg.LearnRate / float64(len(batch))
	for l := 0; l < L; l++ {
		for j := range n.w[l] {
			for k := range n.w[l][j] {
				n.w[l][j][k] -= lr * (gw[l][j][k] + n.cfg.L2*n.w[l][j][k])
			}
			n.b[l][j] -= lr * gb[l][j]
		}
	}
}

// Predict evaluates the network at x.
func (n *NN) Predict(x []float64) float64 {
	acts := n.forward(n.norm(x))
	return acts[len(acts)-1][0]*n.outSd + n.outMu
}

// MAE computes mean absolute error of a predictor over a dataset.
func MAE(pred func([]float64) float64, X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	var s float64
	for i := range X {
		s += math.Abs(pred(X[i]) - y[i])
	}
	return s / float64(len(X))
}

// RMSE computes root-mean-square error of a predictor over a dataset.
func RMSE(pred func([]float64) float64, X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	var s float64
	for i := range X {
		d := pred(X[i]) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(X)))
}
