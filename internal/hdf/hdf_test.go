package hdf

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/mpiio"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

type harness struct {
	eng *des.Engine
	fs  *pfs.FS
	w   *mpi.World
	col *trace.Collector
	mf  *mpiio.File
	hf  *File
}

func newHarness(ranks int) *harness {
	e := des.NewEngine(23)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	fs := pfs.New(e, cfg)
	w := mpi.NewWorld(e, ranks, mpi.DefaultOptions())
	col := trace.NewCollector()
	envs := make([]*posixio.Env, ranks)
	for i := range envs {
		envs[i] = posixio.NewEnv(storage.Direct(fs.NewClient(node(i))), i, col)
	}
	mf := mpiio.NewFile(w, envs, "/exp.h5", mpiio.Hints{CollNodes: 2}, col)
	return &harness{eng: e, fs: fs, w: w, col: col, mf: mf, hf: NewFile(mf, col)}
}

func node(i int) string { return "hn" + string(rune('0'+i)) }

func (h *harness) run(t *testing.T, fn func(r *mpi.Rank)) des.Time {
	t.Helper()
	h.w.Spawn(fn)
	end := h.eng.Run(des.MaxTime)
	if h.eng.LiveProcs() != 0 {
		t.Fatalf("deadlock: %d live procs", h.eng.LiveProcs())
	}
	return end
}

func TestCleanAndParentName(t *testing.T) {
	if cleanName("g1/") != "/g1" || cleanName("/") != "/" || cleanName("a/b") != "/a/b" {
		t.Error("cleanName broken")
	}
	if parentName("/a/b") != "/a" || parentName("/a") != "/" {
		t.Error("parentName broken")
	}
}

func TestContiguousSlabExtents(t *testing.T) {
	ds := &Dataset{dims: []int64{4, 6}, elemSize: 8, offset: 1000}
	// Rows 1..2, cols 2..4 of a 4x6 matrix.
	exts, err := ds.SlabExtents([]int64{1, 2}, []int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []mpiio.Extent{
		{Off: 1000 + (1*6+2)*8, Size: 24},
		{Off: 1000 + (2*6+2)*8, Size: 24},
	}
	if !reflect.DeepEqual(exts, want) {
		t.Fatalf("extents = %v, want %v", exts, want)
	}
}

func TestSlabExtentsFullRowIsSingleRun(t *testing.T) {
	ds := &Dataset{dims: []int64{10}, elemSize: 4, offset: 0}
	exts, err := ds.SlabExtents([]int64{0}, []int64{10})
	if err != nil || len(exts) != 1 || exts[0].Size != 40 {
		t.Fatalf("exts = %v, %v", exts, err)
	}
}

func TestSlabBoundsChecking(t *testing.T) {
	ds := &Dataset{dims: []int64{4, 4}, elemSize: 1}
	if _, err := ds.SlabExtents([]int64{0}, []int64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("rank mismatch err = %v", err)
	}
	if _, err := ds.SlabExtents([]int64{3, 0}, []int64{2, 1}); !errors.Is(err, ErrBadSlab) {
		t.Errorf("oob err = %v", err)
	}
	if _, err := ds.SlabExtents([]int64{0, 0}, []int64{0, 1}); !errors.Is(err, ErrBadSlab) {
		t.Errorf("zero count err = %v", err)
	}
}

func TestChunkedSlabExtents(t *testing.T) {
	// 4x4 dataset, 2x2 chunks, elemSize 1. Chunks are laid out linearly:
	// chunk (0,0) at 0, (0,1) at 4, (1,0) at 8, (1,1) at 12.
	ds := &Dataset{dims: []int64{4, 4}, elemSize: 1, chunks: []int64{2, 2}, offset: 0}
	// Row 1, cols 0..3 crosses two chunks.
	exts, err := ds.SlabExtents([]int64{1, 0}, []int64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []mpiio.Extent{
		{Off: 0*4 + 2, Size: 2}, // chunk (0,0), local row 1
		{Off: 1*4 + 2, Size: 2}, // chunk (0,1), local row 1
	}
	if !reflect.DeepEqual(exts, want) {
		t.Fatalf("chunked extents = %v, want %v", exts, want)
	}
}

// Property: slab extents cover exactly count-product elements with no
// overlap, in both contiguous and chunked layouts.
func TestPropSlabCoverage(t *testing.T) {
	f := func(d0, d1, s0, s1, c0, c1, ch0, ch1 uint8, chunked bool) bool {
		dims := []int64{int64(d0%6) + 1, int64(d1%6) + 1}
		start := []int64{int64(s0) % dims[0], int64(s1) % dims[1]}
		count := []int64{
			int64(c0)%(dims[0]-start[0]) + 1,
			int64(c1)%(dims[1]-start[1]) + 1,
		}
		ds := &Dataset{dims: dims, elemSize: 1, offset: 0}
		if chunked {
			ds.chunks = []int64{int64(ch0%4) + 1, int64(ch1%4) + 1}
		}
		exts, err := ds.SlabExtents(start, count)
		if err != nil {
			return false
		}
		seen := map[int64]bool{}
		var total int64
		for _, e := range exts {
			if e.Size <= 0 {
				return false
			}
			total += e.Size
			for b := e.Off; b < e.Off+e.Size; b++ {
				if seen[b] {
					return false
				}
				seen[b] = true
			}
		}
		return total == count[0]*count[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEndToEndLayeredWrite(t *testing.T) {
	// The Figure-2 experiment in miniature: app -> HDF -> MPI-IO -> POSIX
	// -> PFS, with the trace showing records at every layer.
	h := newHarness(4)
	dims := []int64{4, 1024} // one row per rank
	h.run(t, func(r *mpi.Rank) {
		if err := h.hf.Create(r); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		ds, err := h.hf.CreateDataset(r, "/temps", dims, 8)
		if err != nil {
			t.Errorf("dataset: %v", err)
			return
		}
		if err := ds.WriteSlabAll(r, []int64{int64(r.ID()), 0}, []int64{1, 1024}); err != nil {
			t.Errorf("writeslab: %v", err)
		}
		if err := h.hf.Close(r); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	recs := h.col.Records()
	for _, layer := range []trace.Layer{trace.LayerHDF, trace.LayerMPIIO, trace.LayerPOSIX} {
		if len(trace.ByLayer(recs, layer)) == 0 {
			t.Errorf("no records at layer %v", layer)
		}
	}
	// All dataset bytes must reach the OSTs (4 rows x 1024 x 8B), plus
	// metadata (superblock + headers).
	_, written := h.fs.TotalBytes()
	if want := int64(4 * 1024 * 8); written < want {
		t.Errorf("OST bytes = %d, want >= %d", written, want)
	}
}

func TestGroupAndDatasetNamespace(t *testing.T) {
	h := newHarness(2)
	h.run(t, func(r *mpi.Rank) {
		_ = h.hf.Create(r)
		if err := h.hf.CreateGroup(r, "/g1"); err != nil {
			t.Errorf("group: %v", err)
		}
		if err := h.hf.CreateGroup(r, "/g1"); !errors.Is(err, ErrExist) && r.ID() == 0 {
			t.Errorf("dup group err = %v", err)
		}
		if err := h.hf.CreateGroup(r, "/nope/g2"); !errors.Is(err, ErrNotExist) && r.ID() == 0 {
			t.Errorf("orphan group err = %v", err)
		}
		ds, err := h.hf.CreateDataset(r, "/g1/d", []int64{16}, 4)
		if err != nil {
			t.Errorf("dataset: %v", err)
		}
		if ds != nil && ds.Name() != "/g1/d" {
			t.Errorf("name = %q", ds.Name())
		}
		if _, err := h.hf.OpenDataset("/g1/d"); err != nil {
			t.Errorf("open dataset: %v", err)
		}
		if _, err := h.hf.OpenDataset("/missing"); !errors.Is(err, ErrNotExist) {
			t.Errorf("open missing = %v", err)
		}
		_ = h.hf.WriteAttribute(r, "/g1/d", "units")
		_ = h.hf.Close(r)
	})
	if h.hf.Objects() != 3 { // "/", "/g1", "/g1/d"
		t.Errorf("objects = %d, want 3", h.hf.Objects())
	}
}

func TestChunkAlignedAccessFasterThanMisaligned(t *testing.T) {
	// Chunk-aligned hyperslabs produce fewer, larger runs than slabs that
	// cut across chunks — the standard HDF5 chunking advice.
	dims := []int64{64, 64}
	aligned := &Dataset{dims: dims, elemSize: 8, chunks: []int64{1, 64}, offset: 0}
	crossing := &Dataset{dims: dims, elemSize: 8, chunks: []int64{64, 1}, offset: 0}
	aExts, err := aligned.SlabExtents([]int64{0, 0}, []int64{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	cExts, err := crossing.SlabExtents([]int64{0, 0}, []int64{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(aExts) != 1 {
		t.Errorf("aligned slab runs = %d, want 1", len(aExts))
	}
	if len(cExts) != 64 {
		t.Errorf("crossing slab runs = %d, want 64", len(cExts))
	}
}

func TestDatasetValidation(t *testing.T) {
	h := newHarness(1)
	h.run(t, func(r *mpi.Rank) {
		_ = h.hf.Create(r)
		if _, err := h.hf.CreateDataset(r, "/d", nil, 8); !errors.Is(err, ErrDimension) {
			t.Errorf("empty dims err = %v", err)
		}
		if _, err := h.hf.CreateDataset(r, "/d", []int64{4}, 0); !errors.Is(err, ErrDimension) {
			t.Errorf("zero elem err = %v", err)
		}
		if _, err := h.hf.CreateChunkedDataset(r, "/d", []int64{4}, 8, []int64{2, 2}); !errors.Is(err, ErrDimension) {
			t.Errorf("chunk rank err = %v", err)
		}
		if _, err := h.hf.CreateChunkedDataset(r, "/d", []int64{4}, 8, []int64{0}); !errors.Is(err, ErrDimension) {
			t.Errorf("zero chunk err = %v", err)
		}
		_ = h.hf.Close(r)
	})
}

func TestIndependentVsCollectiveSlab(t *testing.T) {
	// Both paths must move the same bytes.
	bytesMoved := func(collective bool) int64 {
		h := newHarness(4)
		h.run(t, func(r *mpi.Rank) {
			_ = h.hf.Create(r)
			ds, _ := h.hf.CreateDataset(r, "/d", []int64{4, 256}, 8)
			var err error
			if collective {
				err = ds.WriteSlabAll(r, []int64{int64(r.ID()), 0}, []int64{1, 256})
			} else {
				err = ds.WriteSlab(r, []int64{int64(r.ID()), 0}, []int64{1, 256})
			}
			if err != nil {
				t.Errorf("write: %v", err)
			}
			_ = h.hf.Close(r)
		})
		_, w := h.fs.TotalBytes()
		return w
	}
	ind, coll := bytesMoved(false), bytesMoved(true)
	// Collective coalescing may write slightly more (hole absorption) but
	// both must cover the dataset payload.
	want := int64(4 * 256 * 8)
	if ind < want || coll < want {
		t.Fatalf("bytes: ind=%d coll=%d, want >= %d", ind, coll, want)
	}
}

func TestChunkedDatasetEndToEnd(t *testing.T) {
	// Chunked 2D dataset written collectively by row-slabs: all payload
	// bytes reach the OSTs and reads complete.
	h := newHarness(4)
	dims := []int64{8, 256}
	h.run(t, func(r *mpi.Rank) {
		_ = h.hf.Create(r)
		ds, err := h.hf.CreateChunkedDataset(r, "/chunked", dims, 8, []int64{2, 64})
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if !ds.Chunked() {
			t.Error("dataset should report chunked layout")
		}
		start := []int64{int64(r.ID()) * 2, 0}
		count := []int64{2, 256}
		if err := ds.WriteSlabAll(r, start, count); err != nil {
			t.Errorf("write: %v", err)
		}
		r.Barrier()
		if err := ds.ReadSlab(r, start, count); err != nil {
			t.Errorf("read: %v", err)
		}
		_ = h.hf.Close(r)
	})
	_, written := h.fs.TotalBytes()
	if want := int64(8 * 256 * 8); written < want {
		t.Errorf("OST bytes = %d, want >= %d", written, want)
	}
}

func TestDatasetDims(t *testing.T) {
	ds := &Dataset{dims: []int64{3, 4}}
	d := ds.Dims()
	d[0] = 99 // must not alias internal state
	if ds.dims[0] != 3 {
		t.Error("Dims leaked internal slice")
	}
}
