package burstbuffer

import (
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/leakcheck"
	"pioeval/internal/pfs"
)

// newSim builds an engine + HDD-backed FS + one burst buffer.
func newSim(capacity int64) (*des.Engine, *pfs.FS, *Buffer) {
	e := des.NewEngine(5)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	fs := pfs.New(e, cfg) // HDD OSTs: slow backing store
	bcfg := DefaultConfig()
	if capacity > 0 {
		bcfg.Capacity = capacity
	}
	bb := New(e, fs, "bb0", bcfg)
	return e, fs, bb
}

func TestWriteStagesAndDrains(t *testing.T) {
	e, fs, bb := newSim(0)
	var stagedAt des.Time
	e.Spawn("app", func(p *des.Proc) {
		for i := int64(0); i < 8; i++ {
			bb.Write(p, "/ckpt", i*(1<<20), 1<<20)
		}
		stagedAt = p.Now()
		bb.WaitDrained(p)
	})
	e.Run(des.MaxTime)
	st := bb.Stats()
	if st.Absorbed != 8<<20 || st.Drained != 8<<20 || st.Used != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// All data must have landed on the PFS.
	if _, w := fs.TotalBytes(); w != 8<<20 {
		t.Fatalf("PFS bytes = %d, want 8MB", w)
	}
	// Staging must complete before the drain finishes (asynchrony).
	if stagedAt >= e.Now() {
		t.Errorf("staging (%v) should finish before drain completes (%v)", stagedAt, e.Now())
	}
}

func TestBurstAbsorption(t *testing.T) {
	// The Figure-1 claim: a bursty checkpoint completes much faster into
	// the burst buffer than directly into the HDD-backed PFS.
	burst := int64(32 << 20)

	// Direct-to-PFS time.
	e1 := des.NewEngine(5)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	fs1 := pfs.New(e1, cfg)
	c := fs1.NewClient("cn0")
	var direct des.Time
	e1.Spawn("app", func(p *des.Proc) {
		h, _ := c.Create(p, "/ckpt", 0, 0)
		h.Write(p, 0, burst)
		h.Close(p)
		direct = p.Now()
	})
	e1.Run(des.MaxTime)

	// Through the burst buffer.
	e2, _, bb := newSim(0)
	var buffered des.Time
	e2.Spawn("app", func(p *des.Proc) {
		bb.Write(p, "/ckpt", 0, burst)
		buffered = p.Now()
	})
	e2.Run(des.MaxTime)

	if buffered >= direct {
		t.Fatalf("burst buffer (%v) should absorb faster than direct PFS (%v)", buffered, direct)
	}
	if ratio := float64(direct) / float64(buffered); ratio < 2 {
		t.Errorf("absorption speedup = %.1fx, want >= 2x", ratio)
	}
}

func TestCapacityBackpressure(t *testing.T) {
	// A buffer smaller than the burst forces stalls but still completes.
	e, fs, bb := newSim(4 << 20)
	e.Spawn("app", func(p *des.Proc) {
		for i := int64(0); i < 16; i++ {
			bb.Write(p, "/ckpt", i*(1<<20), 1<<20)
		}
		bb.WaitDrained(p)
	})
	e.Run(des.MaxTime)
	st := bb.Stats()
	if st.Stalls == 0 {
		t.Error("expected backpressure stalls with a small buffer")
	}
	if st.PeakUsed > 4<<20 {
		t.Errorf("peak usage %d exceeded capacity", st.PeakUsed)
	}
	if _, w := fs.TotalBytes(); w != 16<<20 {
		t.Fatalf("PFS bytes = %d, want 16MB", w)
	}
}

func TestReadHitFromStaging(t *testing.T) {
	e, _, bb := newSim(0)
	e.Spawn("app", func(p *des.Proc) {
		bb.Write(p, "/f", 0, 1<<20)
		// Data not drained yet (probably): read should hit staging.
		bb.Read(p, "/f", 0, 1<<20)
		bb.WaitDrained(p)
		// After drain, reads go to the PFS.
		bb.Read(p, "/f", 0, 1<<20)
	})
	e.Run(des.MaxTime)
	st := bb.Stats()
	if st.BufReads == 0 {
		t.Error("expected a staged read hit")
	}
	if st.MissReads == 0 {
		t.Error("expected a post-drain PFS read")
	}
}

func TestShutdownStopsWorkers(t *testing.T) {
	// Drain workers are real goroutines (des.Engine.Spawn); a missed
	// shutdown sentinel would leave them parked forever.
	leakcheck.Check(t)
	e, _, bb := newSim(0)
	e.Spawn("app", func(p *des.Proc) {
		bb.Write(p, "/f", 0, 1<<10)
		bb.WaitDrained(p)
		bb.Shutdown()
	})
	e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		t.Fatalf("%d workers still alive after shutdown", e.LiveProcs())
	}
}

func TestZeroSizeWriteIgnored(t *testing.T) {
	e, _, bb := newSim(0)
	e.Spawn("app", func(p *des.Proc) {
		bb.Write(p, "/f", 0, 0)
		bb.Read(p, "/f", 0, 0)
	})
	e.Run(des.MaxTime)
	if st := bb.Stats(); st.Absorbed != 0 {
		t.Errorf("zero write absorbed %d", st.Absorbed)
	}
}

func TestConfigDefaults(t *testing.T) {
	var zero Config
	c := zero.withDefaults()
	if c.Device == nil || c.QueueDepth <= 0 || c.Capacity <= 0 || c.DrainWorkers <= 0 {
		t.Errorf("defaults missing: %+v", c)
	}
}

func TestDrainWorkersParallelism(t *testing.T) {
	// More drain workers finish the drain sooner.
	drainTime := func(workers int) des.Time {
		e := des.NewEngine(5)
		cfg := pfs.DefaultConfig()
		cfg.NumIONodes = 0
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
		fs := pfs.New(e, cfg)
		bcfg := DefaultConfig()
		bcfg.DrainWorkers = workers
		bb := New(e, fs, "bb0", bcfg)
		e.Spawn("app", func(p *des.Proc) {
			for i := int64(0); i < 16; i++ {
				bb.Write(p, "/f", i*(1<<20), 1<<20)
			}
			bb.WaitDrained(p)
		})
		return e.Run(des.MaxTime)
	}
	if one, four := drainTime(1), drainTime(4); four >= one {
		t.Errorf("4 drainers (%v) should beat 1 (%v)", four, one)
	}
}
