package pioeval_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"pioeval/internal/io500"
	"pioeval/internal/surveystats"
)

// surveyGrid is the submission-corpus sweep recorded in BENCH_io500.json:
// every device model crossed with every storage tier at three rank
// counts — 27 simulated "sites", each running the full composite suite.
// Regenerate the record with
//
//	go run ./cmd/io500 -survey -json > BENCH_io500.json
func surveyGrid() surveystats.Grid {
	return surveystats.Grid{
		Devices: []string{"hdd", "ssd", "nvme"},
		Tiers:   []string{"direct", "bb", "nodelocal"},
		Ranks:   []int{2, 4, 8},
		Seed:    1,
	}
}

// TestSurveyRecordMatchesGrid keeps BENCH_io500.json in lockstep with
// surveyGrid (the cmd/io500 -survey defaults): if the recorded corpus
// was built from a different grid or has drifted from what a fresh run
// produces, the JSON no longer describes the benchmark.
func TestSurveyRecordMatchesGrid(t *testing.T) {
	src, err := os.ReadFile("BENCH_io500.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec surveystats.Report
	if err := json.Unmarshal(src, &rec); err != nil {
		t.Fatal(err)
	}
	g := surveyGrid()
	want := g.Points()
	if len(rec.Corpus.Submissions) != len(want) {
		t.Fatalf("recorded corpus has %d submissions, grid expands to %d", len(rec.Corpus.Submissions), len(want))
	}
	for i, s := range rec.Corpus.Submissions {
		w := want[i]
		if s.Config.Device != w.Device || s.Config.Tier != w.Tier || s.Config.Ranks != w.Ranks || s.Config.Seed != w.Seed {
			t.Errorf("submission %d is %s/%s/r%d seed %d, grid says %s/%s/r%d seed %d",
				i, s.Config.Device, s.Config.Tier, s.Config.Ranks, s.Config.Seed,
				w.Device, w.Tier, w.Ranks, w.Seed)
		}
		if s.Score <= 0 {
			t.Errorf("submission %d recorded score %.6f, want > 0", i, s.Score)
		}
	}
	if rec.Analysis == nil || rec.Analysis.N != len(want) {
		t.Fatal("recorded analysis missing or wrong size")
	}
}

// BenchmarkIO500Suite runs one full-size composite suite (default
// sizing, 4 ranks, hdd direct) end to end and reports the headline
// scores — the suite-level cost and score trajectory point behind
// BENCH_io500.json.
func BenchmarkIO500Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res, err := io500.Run(io500.Config{Ranks: 4, Seed: 1, Check: true})
		if err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start)
		if len(res.Violations) > 0 {
			b.Fatalf("invariant violations: %v", res.Violations)
		}
		if res.Score <= 0 {
			b.Fatalf("suite score %.6f, want > 0", res.Score)
		}
		b.ReportMetric(float64(len(res.Phases))/wall.Seconds(), "phases/s")
		b.ReportMetric(res.BWScore, "bw_GiBps")
		b.ReportMetric(res.MDScore, "md_kIOPS")
		b.ReportMetric(res.Score, "score")
	}
}

// BenchmarkIO500Survey runs the full 27-point corpus build + analysis —
// the exact work behind BENCH_io500.json — and reports corpus-level
// throughput.
func BenchmarkIO500Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		g := surveyGrid()
		corpus, err := surveystats.BuildCorpus(g)
		if err != nil {
			b.Fatal(err)
		}
		a, err := surveystats.Analyze(corpus)
		if err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start)
		b.ReportMetric(float64(a.N)/wall.Seconds(), "submissions/s")
		b.ReportMetric(a.Metrics[len(a.Metrics)-1].Median, "median_score")
	}
}
