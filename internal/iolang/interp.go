package iolang

import (
	"fmt"
	"sort"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/skeleton"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

// Report summarizes an interpreted run.
type Report struct {
	Name         string
	Ranks        int
	BytesRead    int64
	BytesWritten int64
	Ops          int
	Makespan     des.Time
}

// Run interprets the workload against fs, spawning one MPI rank per
// configured rank, and drives the engine to completion. Every rank talks
// straight to the PFS (the direct tier); use RunOn to route the ranks
// through a storage provider instead.
func Run(e *des.Engine, fs *pfs.FS, w *Workload, col *trace.Collector) (Report, error) {
	return RunOn(e, fs, w, col, nil)
}

// RunOn is Run with an explicit storage provider: each rank's POSIX
// environment is bound to pr.Target (burst-buffer tier, node-local
// scratch, ...). A nil provider means direct PFS access. When the
// provider owns background drain workers, RunOn finalizes them (waits
// for the drain, then stops them) after the ranks finish, so the
// reported makespan includes the tail drain — the honest cost of
// write-back tiering.
func RunOn(e *des.Engine, fs *pfs.FS, w *Workload, col *trace.Collector, pr *storage.Provider) (Report, error) {
	rep := Report{Name: w.Name, Ranks: w.Ranks}
	world := mpi.NewWorld(e, w.Ranks, mpi.DefaultOptions())
	envs := make([]*posixio.Env, w.Ranks)
	for i := range envs {
		node := fmt.Sprintf("iolang%d", i)
		var t storage.Target
		if pr != nil {
			t = pr.Target(node)
		} else {
			t = storage.Direct(fs.NewClient(node))
		}
		envs[i] = posixio.NewEnv(t, i, col)
		envs[i].StripeCount = w.StripeCount
		envs[i].StripeSize = w.StripeSize
	}
	var execErr error
	var wg *des.WaitGroup
	if pr != nil && pr.NeedsFinalize() {
		wg = des.NewWaitGroup(e)
		wg.Add(w.Ranks)
	}
	world.Spawn(func(r *mpi.Rank) {
		ex := &executor{w: w, r: r, env: envs[r.ID()], rep: &rep, fds: map[string]int{}}
		if err := ex.run(w.Body, 0); err != nil && execErr == nil {
			execErr = err
		}
		// Close any leaked descriptors at workload end, in open (fd)
		// order: map iteration order is random and would make same-seed
		// runs diverge.
		fds := make([]int, 0, len(ex.fds))
		for _, fd := range ex.fds {
			fds = append(fds, fd)
		}
		sort.Ints(fds)
		for _, fd := range fds {
			_ = ex.env.Close(r.Proc(), fd)
		}
		clear(ex.fds)
		if wg != nil {
			wg.Done()
		}
	})
	var drainErr error
	if wg != nil {
		e.Spawn("iolang.drain", func(p *des.Proc) {
			wg.Wait(p)
			drainErr = pr.Finalize(p)
		})
	}
	e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		return rep, fmt.Errorf("iolang: deadlock with %d live procs", e.LiveProcs())
	}
	rep.Makespan = e.Now()
	if execErr == nil && drainErr != nil {
		execErr = drainErr
	}
	return rep, execErr
}

// executor runs statements for one rank.
type executor struct {
	w   *Workload
	r   *mpi.Rank
	env *posixio.Env
	rep *Report
	fds map[string]int
}

func (ex *executor) fd(p *des.Proc, path string, create bool) (int, error) {
	if fd, ok := ex.fds[path]; ok {
		return fd, nil
	}
	flags := 0
	if create {
		flags = posixio.OCreate
	}
	fd, err := ex.env.Open(p, path, flags)
	if err != nil && !create {
		// Auto-create on first write to an unopened file.
		fd, err = ex.env.Open(p, path, posixio.OCreate)
	}
	if err != nil {
		return -1, err
	}
	ex.fds[path] = fd
	return fd, nil
}

func (ex *executor) run(body []Stmt, iter int) error {
	p := ex.r.Proc()
	rank := ex.r.ID()
	for _, s := range body {
		path := substitute(s.Path, rank, iter)
		switch s.Kind {
		case "barrier":
			ex.r.Barrier()
		case "compute":
			p.Wait(des.Time(s.Dur.Eval(rank, iter)))
		case "loop":
			for i := 0; i < s.Count; i++ {
				if err := ex.run(s.Body, i); err != nil {
					return err
				}
			}
		case "open":
			if _, err := ex.fd(p, path, s.Create || true); err != nil {
				return err
			}
		case "close":
			if fd, ok := ex.fds[path]; ok {
				_ = ex.env.Close(p, fd)
				delete(ex.fds, path)
			}
		case "fsync":
			if fd, ok := ex.fds[path]; ok {
				_ = ex.env.Fsync(p, fd)
			}
		case "stat":
			_, _ = ex.env.Stat(p, path)
		case "readdir":
			_, _ = ex.env.Readdir(p, path)
		case "mkdir":
			_ = ex.env.Mkdir(p, path)
		case "rmdir":
			_ = ex.env.Rmdir(p, path)
		case "unlink":
			delete(ex.fds, path)
			_ = ex.env.Unlink(p, path)
		case "read", "write":
			fd, err := ex.fd(p, path, true)
			if err != nil {
				return err
			}
			off := s.Offset.Eval(rank, iter)
			size := s.Size.Eval(rank, iter)
			chunk := size
			if s.Chunk != nil {
				if c := s.Chunk.Eval(rank, iter); c > 0 {
					chunk = c
				}
			}
			for done := int64(0); done < size; done += chunk {
				n := chunk
				if done+n > size {
					n = size - done
				}
				if s.Kind == "write" {
					_, _ = ex.env.Pwrite(p, fd, off+done, n)
					ex.rep.BytesWritten += n
				} else {
					_, _ = ex.env.Pread(p, fd, off+done, n)
					ex.rep.BytesRead += n
				}
			}
		default:
			return fmt.Errorf("iolang: unknown statement kind %q", s.Kind)
		}
		ex.rep.Ops++
	}
	return nil
}

// Compile lowers the workload to per-rank concrete op streams without
// executing it — the trace-shaped "workload source" for the replayer.
// Compute statements become think time on the next op.
func Compile(w *Workload) [][]skeleton.ConcreteOp {
	out := make([][]skeleton.ConcreteOp, w.Ranks)
	for rank := 0; rank < w.Ranks; rank++ {
		var ops []skeleton.ConcreteOp
		var pendingThink des.Time
		emit := func(op skeleton.ConcreteOp) {
			op.Think = pendingThink
			pendingThink = 0
			ops = append(ops, op)
		}
		var walk func(body []Stmt, iter int)
		walk = func(body []Stmt, iter int) {
			for _, s := range body {
				path := substitute(s.Path, rank, iter)
				switch s.Kind {
				case "compute":
					pendingThink += des.Time(s.Dur.Eval(rank, iter))
				case "barrier":
					// No-op in compiled form: replay is per-rank.
				case "loop":
					for i := 0; i < s.Count; i++ {
						walk(s.Body, i)
					}
				case "open", "close", "fsync", "stat", "mkdir", "rmdir", "unlink":
					emit(skeleton.ConcreteOp{Op: s.Kind, Path: path})
				case "readdir":
					// The replayer has no readdir op; model it as a stat.
					emit(skeleton.ConcreteOp{Op: "stat", Path: path})
				case "read", "write":
					off := s.Offset.Eval(rank, iter)
					size := s.Size.Eval(rank, iter)
					chunk := size
					if s.Chunk != nil {
						if c := s.Chunk.Eval(rank, iter); c > 0 {
							chunk = c
						}
					}
					for done := int64(0); done < size; done += chunk {
						n := chunk
						if done+n > size {
							n = size - done
						}
						emit(skeleton.ConcreteOp{Op: s.Kind, Path: path, Offset: off + done, Size: n})
					}
				}
			}
		}
		walk(w.Body, 0)
		out[rank] = ops
	}
	return out
}
