// Package blockdev models storage devices (HDD, SSD, NVMe) as queueing
// servers with per-request service times. Devices are the bottom of the
// simulated I/O path: object storage targets and burst-buffer media are
// built on them.
package blockdev

import (
	"fmt"

	"pioeval/internal/des"
)

// Request describes one device access.
type Request struct {
	Offset int64
	Size   int64
	Write  bool
}

// Model computes the raw service cost of a request, excluding queueing.
// The cost has two parts: a latency component (seek, rotational delay,
// flash access) that can overlap across queued requests, and a transfer
// component that serializes on the media's bandwidth.
type Model interface {
	// Cost returns the latency and transfer components for the request,
	// given the previous request's end offset (for sequentiality
	// detection).
	Cost(req Request, prevEnd int64) (latency, transfer des.Time)
	// Name identifies the model for reports.
	Name() string
}

// ServiceTime returns the total un-queued service time under m.
func ServiceTime(m Model, req Request, prevEnd int64) des.Time {
	lat, xfer := m.Cost(req, prevEnd)
	return lat + xfer
}

// HDDModel is a rotational disk: seek + rotational latency on
// non-sequential access plus transfer at sustained bandwidth.
type HDDModel struct {
	SeekTime      des.Time // average seek
	RotationalLat des.Time // average rotational latency (half revolution)
	BandwidthBps  float64  // sustained media transfer rate
}

// DefaultHDD returns a 7.2k-rpm-class disk: 8ms seek, 4.16ms rotational,
// 180 MB/s sustained.
func DefaultHDD() *HDDModel {
	return &HDDModel{
		SeekTime:      8 * des.Millisecond,
		RotationalLat: 4160 * des.Microsecond,
		BandwidthBps:  180e6,
	}
}

// Cost implements Model.
func (m *HDDModel) Cost(req Request, prevEnd int64) (latency, transfer des.Time) {
	if req.Offset != prevEnd {
		latency = m.SeekTime + m.RotationalLat
	}
	transfer = des.Time(float64(req.Size) / m.BandwidthBps * float64(des.Second))
	return latency, transfer
}

// Name implements Model.
func (m *HDDModel) Name() string { return "hdd" }

// SSDModel is a flash device: fixed per-op latency plus transfer time, with
// an optional write penalty factor.
type SSDModel struct {
	ReadLatency  des.Time
	WriteLatency des.Time
	ReadBps      float64
	WriteBps     float64
}

// DefaultSSD returns a SATA-SSD-class device: 60us read / 30us write
// latency, 500/450 MB/s.
func DefaultSSD() *SSDModel {
	return &SSDModel{
		ReadLatency:  60 * des.Microsecond,
		WriteLatency: 30 * des.Microsecond,
		ReadBps:      500e6,
		WriteBps:     450e6,
	}
}

// DefaultNVMe returns an NVMe-class device: 15us latency, 3.2/2.8 GB/s.
func DefaultNVMe() *SSDModel {
	return &SSDModel{
		ReadLatency:  15 * des.Microsecond,
		WriteLatency: 15 * des.Microsecond,
		ReadBps:      3.2e9,
		WriteBps:     2.8e9,
	}
}

// Cost implements Model.
func (m *SSDModel) Cost(req Request, prevEnd int64) (latency, transfer des.Time) {
	if req.Write {
		return m.WriteLatency, des.Time(float64(req.Size) / m.WriteBps * float64(des.Second))
	}
	return m.ReadLatency, des.Time(float64(req.Size) / m.ReadBps * float64(des.Second))
}

// Name implements Model.
func (m *SSDModel) Name() string { return "ssd" }

// Device is a queued storage device: a Model behind a fixed-depth service
// queue. All accesses funnel through Access, which blocks the calling
// process for queueing plus service time.
type Device struct {
	eng     *des.Engine
	name    string
	model   Model
	queue   *des.Resource // admission slots (NCQ depth)
	media   *des.Resource // serial media bandwidth
	prevEnd int64

	// Statistics.
	reads, writes           uint64
	bytesRead, bytesWritten int64
	busy                    des.Time

	// iostat-style %util accounting: time with >= 1 request in service.
	inflight  int
	busySince des.Time
	busyAccum des.Time

	// slowdown > 1 degrades the device (failure/straggler injection).
	slowdown float64
}

// SetSlowdown injects degradation: every subsequent request's service time
// is multiplied by factor (>= 1). Factor 1 restores nominal speed. Models
// failing media, RAID rebuilds, and straggler servers. Factors below 1
// (including non-positive values, which would corrupt or invert service
// times) are rejected with an error.
func (d *Device) SetSlowdown(factor float64) error {
	if factor < 1 {
		return fmt.Errorf("blockdev: %s: slowdown factor %g invalid, must be >= 1", d.name, factor)
	}
	d.slowdown = factor
	return nil
}

// Slowdown returns the current degradation factor (1 = nominal).
func (d *Device) Slowdown() float64 {
	if d.slowdown < 1 {
		return 1
	}
	return d.slowdown
}

// NewDevice creates a device with the given queue depth: up to queueDepth
// requests may be in flight (their latency components overlap), but data
// transfer serializes on the media bandwidth.
func NewDevice(e *des.Engine, name string, model Model, queueDepth int) *Device {
	if queueDepth < 1 {
		queueDepth = 1
	}
	return &Device{
		eng:   e,
		name:  name,
		model: model,
		queue: des.NewResource(e, "dev."+name, queueDepth),
		media: des.NewResource(e, "media."+name, 1),
	}
}

// Access performs the request in simulated time, blocking the caller.
func (d *Device) Access(p *des.Proc, req Request) {
	if req.Size < 0 || req.Offset < 0 {
		panic(fmt.Sprintf("blockdev: bad request %+v", req))
	}
	d.queue.Acquire(p)
	if d.inflight == 0 {
		d.busySince = p.Now()
	}
	d.inflight++
	lat, xfer := d.model.Cost(req, d.prevEnd)
	if d.slowdown > 1 {
		lat = des.Time(float64(lat) * d.slowdown)
		xfer = des.Time(float64(xfer) * d.slowdown)
	}
	d.prevEnd = req.Offset + req.Size
	if lat > 0 {
		p.Wait(lat)
	}
	if xfer > 0 {
		d.media.Use(p, xfer)
	}
	d.inflight--
	if d.inflight == 0 {
		d.busyAccum += p.Now() - d.busySince
	}
	d.queue.Release()
	d.busy += lat + xfer
	if req.Write {
		d.writes++
		d.bytesWritten += req.Size
	} else {
		d.reads++
		d.bytesRead += req.Size
	}
}

// AccessE is the continuation form of Access: it performs the request in
// simulated time on the calling EventProc and runs k on completion. Cost
// model, queueing, and accounting are identical to Access.
func (d *Device) AccessE(ep *des.EventProc, req Request, k func()) {
	if req.Size < 0 || req.Offset < 0 {
		panic(fmt.Sprintf("blockdev: bad request %+v", req))
	}
	d.queue.AcquireE(ep, func() {
		if d.inflight == 0 {
			d.busySince = ep.Now()
		}
		d.inflight++
		lat, xfer := d.model.Cost(req, d.prevEnd)
		if d.slowdown > 1 {
			lat = des.Time(float64(lat) * d.slowdown)
			xfer = des.Time(float64(xfer) * d.slowdown)
		}
		d.prevEnd = req.Offset + req.Size
		fin := func() {
			d.inflight--
			if d.inflight == 0 {
				d.busyAccum += ep.Now() - d.busySince
			}
			d.queue.Release()
			d.busy += lat + xfer
			if req.Write {
				d.writes++
				d.bytesWritten += req.Size
			} else {
				d.reads++
				d.bytesRead += req.Size
			}
			k()
		}
		media := func() {
			if xfer > 0 {
				d.media.UseE(ep, xfer, fin)
			} else {
				fin()
			}
		}
		if lat > 0 {
			ep.Wait(lat, media)
		} else {
			media()
		}
	})
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Model returns the underlying service-time model.
func (d *Device) Model() Model { return d.model }

// Stats reports cumulative counters.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		Reads:        d.reads,
		Writes:       d.writes,
		BytesRead:    d.bytesRead,
		BytesWritten: d.bytesWritten,
		BusyTime:     d.busy,
		QueueLen:     d.queue.QueueLen(),
		PeakQueue:    d.queue.PeakQueueLen(),
	}
}

// DeviceStats is a snapshot of device counters.
type DeviceStats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    int64
	BytesWritten int64
	BusyTime     des.Time
	QueueLen     int
	PeakQueue    int
}

// Utilization returns the iostat-style %util: the fraction of elapsed time
// the device had at least one request in service.
func (d *Device) Utilization() float64 {
	now := d.eng.Now()
	if now == 0 {
		return 0
	}
	busy := d.busyAccum
	if d.inflight > 0 {
		busy += now - d.busySince
	}
	return float64(busy) / float64(now)
}
