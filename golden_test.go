package pioeval_test

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden transcripts")

// goldenScript is a deliberately mixed workload: striped shared-file
// writes, chunked transfers, per-rank files, and read-back, so the
// transcript exercises the MDS path, OST striping, the I/O-forwarding
// fabric, and queued contention on every device resource.
const goldenScript = `
workload "golden" {
    ranks 4
    loop 3 {
        write "/shared" offset=rank*3MB+iter*1MB size=1MB chunk=256KB
        write "/rank.${rank}" offset=iter*512KB size=512KB
        read "/shared" offset=rank*1MB size=512KB
    }
}
`

// goldenFaults crashes an OST mid-workload and recovers it, with the
// default resilience policy active, so the transcript also pins the
// timeout/retry/backoff event sequences (cancelable timers) of the
// resilient client path.
const goldenFaults = "ostcrash:1@2ms; ostrecover:1@40ms"

// simfsTranscript runs the golden workload on a fixed seed and formats
// every observable of the run — each traced operation with nanosecond
// start/end times, final OST counters, the MDS operation mix, and client
// resilience counters — as one deterministic text transcript.
func simfsTranscript(t *testing.T) string {
	t.Helper()
	wl, err := iolang.Parse(goldenScript)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := faults.ParseCampaign(goldenFaults)
	if err != nil {
		t.Fatal(err)
	}
	e := des.NewEngine(1234)
	cfg := pfs.DefaultConfig()
	cfg.Resilience = pfs.DefaultResilience()
	fs := pfs.New(e, cfg)
	if _, err := faults.Run(e, fs, camp); err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	rep, err := iolang.Run(e, fs, wl, col)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "workload %s ranks %d makespan %d read %d written %d\n",
		rep.Name, rep.Ranks, int64(rep.Makespan), rep.BytesRead, rep.BytesWritten)
	for _, r := range col.Records() {
		fmt.Fprintf(&b, "op %d %s %s %s %d %d %d %d\n",
			r.Rank, r.Layer, r.Op, r.Path, r.Offset, r.Size, int64(r.Start), int64(r.End))
	}
	for _, st := range fs.OSTStats() {
		fmt.Fprintf(&b, "ost %d %s read %d written %d\n", st.ID, st.OSSNode, st.BytesRead, st.BytesWritten)
	}
	md := fs.MDSStats()
	ops := make([]string, 0, len(md.Ops))
	for op := range md.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(&b, "mds total %d\n", md.TotalOps)
	for _, op := range ops {
		fmt.Fprintf(&b, "mds %s %d\n", op, md.Ops[op])
	}
	cs := fs.ClientStatsTotal()
	fmt.Fprintf(&b, "resilience retries %d timedout %d failed %d degraded %d missing %d\n",
		cs.Retries, cs.TimedOutRPCs, cs.FailedRPCs, cs.DegradedReads, cs.BytesMissing)
	fmt.Fprintf(&b, "end %d pending %d liveprocs %d\n", int64(e.Now()), e.Pending(), e.LiveProcs())
	return b.String()
}

// TestGoldenSimfsTranscript pins same-seed simulation output byte for
// byte. Any change to event ordering, timing, RNG consumption, or the
// engine's dispatch rules shows up here as a diff — this is the
// acceptance gate for DES kernel rewrites: optimizations must reproduce
// this transcript exactly. Regenerate deliberately with
//
//	go test -run TestGoldenSimfsTranscript . -update-golden
func TestGoldenSimfsTranscript(t *testing.T) {
	got := simfsTranscript(t)
	const path = "testdata/simfs_golden.txt"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("transcript diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("transcript length differs: got %d lines, want %d", len(gl), len(wl))
}

// TestGoldenTranscriptStableAcrossRuns guards the golden file itself: two
// in-process runs must already agree, so any future divergence against
// testdata is a determinism break, not test flakiness.
func TestGoldenTranscriptStableAcrossRuns(t *testing.T) {
	if simfsTranscript(t) != simfsTranscript(t) {
		t.Fatal("same-seed transcript differs between in-process runs")
	}
}
