package monitor

import (
	"testing"

	"pioeval/internal/des"
)

func TestFailureDetectorMeasuresMTTDAndMTTR(t *testing.T) {
	e := des.NewEngine(4)
	fs := newFS(e)
	interval := 10 * des.Millisecond
	d := NewFailureDetector(e, fs, interval, 2, des.Second)
	crashAt := 105 * des.Millisecond
	recoverAt := 400 * des.Millisecond
	e.After(crashAt, func() {
		if err := fs.CrashOST(3); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	e.After(recoverAt, func() {
		if err := fs.RecoverOST(3); err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	e.Run(des.MaxTime)

	incidents := d.Incidents()
	if len(incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly 1", incidents)
	}
	in := incidents[0]
	if in.OST != 3 {
		t.Errorf("incident OST = %d, want 3", in.OST)
	}
	if in.DownAt != crashAt {
		t.Errorf("DownAt = %v, want true crash time %v", in.DownAt, crashAt)
	}
	// Two missed 10ms heartbeats after a crash at 105ms: detection at the
	// second down poll, t=120ms.
	if in.DetectedAt != 120*des.Millisecond {
		t.Errorf("DetectedAt = %v, want 120ms", in.DetectedAt)
	}
	if in.Open() {
		t.Fatal("incident should have closed after recovery")
	}
	// First healthy poll after recovery at 400ms is t=400ms (poll grid).
	if in.RecoveredAt < recoverAt || in.RecoveredAt > recoverAt+interval {
		t.Errorf("RecoveredAt = %v, want within one beat of %v", in.RecoveredAt, recoverAt)
	}
	rep := d.Report()
	if rep.Incidents != 1 || rep.Unresolved != 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.MeanTTD != in.MTTD() || rep.MeanTTR != in.MTTR() {
		t.Errorf("report means %v/%v, incident %v/%v", rep.MeanTTD, rep.MeanTTR, in.MTTD(), in.MTTR())
	}
	// The heartbeat model bounds detection delay by interval*threshold.
	if rep.MeanTTD <= 0 || rep.MeanTTD > 2*interval {
		t.Errorf("MTTD = %v, want in (0, %v]", rep.MeanTTD, 2*interval)
	}
}

func TestFailureDetectorLeavesOpenIncidentUnresolved(t *testing.T) {
	e := des.NewEngine(5)
	fs := newFS(e)
	d := NewFailureDetector(e, fs, 10*des.Millisecond, 1, 200*des.Millisecond)
	e.After(50*des.Millisecond, func() { _ = fs.CrashOST(0) })
	e.Run(des.MaxTime)
	rep := d.Report()
	if rep.Incidents != 1 || rep.Unresolved != 1 {
		t.Fatalf("report = %+v, want one open incident", rep)
	}
	if rep.MeanTTR != 0 {
		t.Errorf("MTTR over zero closed incidents = %v, want 0", rep.MeanTTR)
	}
}

// Satellite check: under a mixed read/write workload with one degraded
// OST, the monitor's sample series names the correct culprit.
func TestMonitorNamesStragglerCulprit(t *testing.T) {
	e := des.NewEngine(6)
	fs := newFS(e)
	const culprit = 2
	if err := fs.InjectOSTSlowdown(culprit, 15); err != nil {
		t.Fatal(err)
	}
	s := NewSampler(e, fs, 5*des.Millisecond, 2*des.Second)
	for i := 0; i < 3; i++ {
		name := clientID(i)
		c := fs.NewClient(name)
		e.Spawn("app", func(p *des.Proc) {
			h, _ := c.Create(p, "/f-"+name, 8, 1<<20)
			for step := int64(0); step < 4; step++ {
				if err := h.Write(p, step*(8<<20), 8<<20); err != nil {
					t.Errorf("write: %v", err)
				}
				if err := h.Read(p, step*(8<<20), 4<<20); err != nil {
					t.Errorf("read: %v", err)
				}
			}
			_ = h.Close(p)
			s.Stop()
		})
	}
	e.Run(des.MaxTime)
	if got := IdentifyStraggler(s.Samples()); got != culprit {
		t.Errorf("IdentifyStraggler = ost%d, want ost%d", got, culprit)
	}
	if IdentifyStraggler(nil) != -1 {
		t.Error("no samples should yield -1")
	}
}

func clientID(i int) string { return "c" + string(rune('0'+i)) }
