package des

import (
	"sync"
	"testing"
)

func TestParallelGroupValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead", func() { NewParallelGroup(0, NewEngine(1)) })
	mustPanic("no engines", func() { NewParallelGroup(10) })
	g := NewParallelGroup(100, NewEngine(1), NewEngine(2))
	mustPanic("short delay", func() { g.Send(0, 1, 50, func() {}) })
	mustPanic("bad index", func() { g.Send(0, 5, 100, func() {}) })
}

func TestParallelGroupIndependentPartitions(t *testing.T) {
	e0, e1 := NewEngine(1), NewEngine(2)
	var done0, done1 Time
	e0.Spawn("a", func(p *Proc) {
		p.Wait(250)
		done0 = p.Now()
	})
	e1.Spawn("b", func(p *Proc) {
		p.Wait(999)
		done1 = p.Now()
	})
	g := NewParallelGroup(100, e0, e1)
	end := g.Run(MaxTime)
	if done0 != 250 || done1 != 999 {
		t.Fatalf("done = %v, %v", done0, done1)
	}
	if end < 999 {
		t.Fatalf("group end = %v", end)
	}
}

func TestParallelGroupCrossEvents(t *testing.T) {
	// Ping-pong between two partitions with 100ns link latency
	// (lookahead). Each bounce adds exactly the latency.
	e0, e1 := NewEngine(1), NewEngine(2)
	g := NewParallelGroup(100, e0, e1)
	var arrivals []Time
	var bounce func(side int, hops int)
	bounce = func(side int, hops int) {
		if hops == 0 {
			return
		}
		other := 1 - side
		g.Send(side, other, 100, func() {
			arrivals = append(arrivals, g.Engine(other).Now())
			bounce(other, hops-1)
		})
	}
	e0.After(0, func() { bounce(0, 5) })
	g.Run(MaxTime)
	want := []Time{100, 200, 300, 400, 500}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestParallelMatchesSequentialSemantics(t *testing.T) {
	// The same coupled workload run under the parallel group and computed
	// analytically: partition i processes a job stream and forwards a
	// completion token to partition (i+1), with latency = lookahead.
	const parts = 4
	const lookahead = 1000
	engines := make([]*Engine, parts)
	for i := range engines {
		engines[i] = NewEngine(int64(i))
	}
	g := NewParallelGroup(lookahead, engines...)
	var tokens []Time
	var forward func(from int)
	forward = func(from int) {
		if from == parts-1 {
			return
		}
		g.Send(from, from+1, lookahead, func() {
			// Local processing: 500ns of work, then forward.
			g.Engine(from+1).After(500, func() {
				tokens = append(tokens, g.Engine(from+1).Now())
				forward(from + 1)
			})
		})
	}
	engines[0].After(500, func() {
		tokens = append(tokens, engines[0].Now())
		forward(0)
	})
	g.Run(MaxTime)
	// token i appears at 500 + i*(lookahead+500).
	if len(tokens) != parts {
		t.Fatalf("tokens = %v", tokens)
	}
	for i, at := range tokens {
		want := Time(500 + i*(lookahead+500))
		if at != want {
			t.Fatalf("token %d at %v, want %v", i, at, want)
		}
	}
}

func TestParallelGroupDeterminism(t *testing.T) {
	run := func() []Time {
		engines := make([]*Engine, 3)
		for i := range engines {
			engines[i] = NewEngine(int64(i) + 10)
		}
		g := NewParallelGroup(50, engines...)
		var mu sync.Mutex
		var log []Time
		// Every partition fires messages to every other at jittered times.
		for i := range engines {
			i := i
			for k := 0; k < 5; k++ {
				d := engines[i].RNG().Uniform("jit", 0, 200)
				engines[i].After(d, func() {
					for j := range engines {
						if j != i {
							g.Send(i, j, 50+engines[i].RNG().Uniform("lat", 0, 100), func() {})
						}
					}
					at := engines[i].Now()
					mu.Lock()
					log = append(log, at)
					mu.Unlock()
				})
			}
		}
		g.Run(MaxTime)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	// The multiset of event times must match across runs (per-partition
	// execution order is deterministic; cross-partition log interleaving
	// within one wall window is not, so compare sorted).
	sortTimes(a)
	sortTimes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic times: %v vs %v", a, b)
		}
	}
}

func sortTimes(ts []Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestParallelGroupHorizon(t *testing.T) {
	e0, e1 := NewEngine(1), NewEngine(2)
	fired := 0
	e0.After(10, func() { fired++ })
	e1.After(5000, func() { fired++ })
	g := NewParallelGroup(100, e0, e1)
	g.Run(1000)
	if fired != 1 {
		t.Fatalf("fired = %d before horizon", fired)
	}
	g.Run(MaxTime)
	if fired != 2 {
		t.Fatalf("fired = %d after full run", fired)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine(1)
	e.AdvanceTo(100)
	if e.Now() != 100 {
		t.Fatalf("now = %v", e.Now())
	}
	e.AdvanceTo(50) // backwards: no-op
	if e.Now() != 100 {
		t.Fatal("AdvanceTo went backwards")
	}
	e.After(10, func() {})
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo past a pending event should panic")
		}
	}()
	e.AdvanceTo(500)
}
