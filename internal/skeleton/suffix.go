package skeleton

import "sort"

// SuffixArray builds the suffix array of an integer sequence in
// O(n log^2 n) (prefix-doubling). It backs the repeated-phrase analysis
// that motivates trace folding — the role the suffix tree plays in Hao et
// al.'s trace compressor.
func SuffixArray(seq []int) []int {
	n := len(seq)
	sa := make([]int, n)
	rank := make([]int, n)
	tmp := make([]int, n)
	for i := range sa {
		sa[i] = i
		rank[i] = seq[i]
	}
	for k := 1; ; k *= 2 {
		cmp := func(a, b int) bool {
			if rank[a] != rank[b] {
				return rank[a] < rank[b]
			}
			ra, rb := -1, -1
			if a+k < n {
				ra = rank[a+k]
			}
			if b+k < n {
				rb = rank[b+k]
			}
			return ra < rb
		}
		sort.Slice(sa, func(i, j int) bool { return cmp(sa[i], sa[j]) })
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			tmp[sa[i]] = tmp[sa[i-1]]
			if cmp(sa[i-1], sa[i]) {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if n == 0 || rank[sa[n-1]] == n-1 {
			break
		}
	}
	return sa
}

// LCPArray computes the longest-common-prefix array via Kasai's algorithm:
// lcp[i] is the LCP length of suffixes sa[i] and sa[i-1] (lcp[0] = 0).
func LCPArray(seq []int, sa []int) []int {
	n := len(seq)
	lcp := make([]int, n)
	inv := make([]int, n)
	for i, s := range sa {
		inv[s] = i
	}
	h := 0
	for i := 0; i < n; i++ {
		if inv[i] > 0 {
			j := sa[inv[i]-1]
			for i+h < n && j+h < n && seq[i+h] == seq[j+h] {
				h++
			}
			lcp[inv[i]] = h
			if h > 0 {
				h--
			}
		} else {
			h = 0
		}
	}
	return lcp
}

// LongestRepeat returns the longest substring occurring at least twice
// (start offset and length; length 0 when none exists).
func LongestRepeat(seq []int) (start, length int) {
	if len(seq) < 2 {
		return 0, 0
	}
	sa := SuffixArray(seq)
	lcp := LCPArray(seq, sa)
	for i, l := range lcp {
		if l > length {
			length = l
			start = sa[i]
		}
	}
	return start, length
}

// TokensToSymbols interns tokens to integer symbols for suffix analysis.
func TokensToSymbols(toks []Token) []int {
	index := map[Token]int{}
	out := make([]int, len(toks))
	for i, t := range toks {
		id, ok := index[t]
		if !ok {
			id = len(index)
			index[t] = id
		}
		out[i] = id
	}
	return out
}
