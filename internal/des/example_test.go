package des_test

import (
	"fmt"

	"pioeval/internal/des"
)

// ExampleEngine shows the process-oriented style every simulator in this
// repository is built from: spawned processes block on Wait while the
// engine advances virtual time deterministically between events.
func ExampleEngine() {
	e := des.NewEngine(1)
	e.Spawn("writer", func(p *des.Proc) {
		p.Wait(10 * des.Millisecond)
		fmt.Printf("%v writer done\n", p.Now())
	})
	e.Spawn("reader", func(p *des.Proc) {
		p.Wait(4 * des.Millisecond)
		fmt.Printf("%v reader done\n", p.Now())
	})
	end := e.Run(des.MaxTime)
	fmt.Printf("makespan %v\n", end)
	// Output:
	// 4ms reader done
	// 10ms writer done
	// makespan 10ms
}

// ExampleEngine_After demonstrates callback-style scheduling, the style
// the fault injector uses to fire campaign events at absolute times.
func ExampleEngine_After() {
	e := des.NewEngine(1)
	e.After(2*des.Millisecond, func() { fmt.Printf("%v first\n", e.Now()) })
	e.After(5*des.Millisecond, func() { fmt.Printf("%v second\n", e.Now()) })
	e.Run(des.MaxTime)
	// Output:
	// 2ms first
	// 5ms second
}

// ExampleEngine_SpawnEvent shows the continuation (goroutine-free)
// execution form: each blocking point passes an explicit continuation,
// and a step that returns without arming one terminates the process.
// Both forms coexist on one engine and share queues and resources; a
// rank in this form costs one small struct plus a pooled event slot,
// which is what makes million-rank simulations affordable.
func ExampleEngine_SpawnEvent() {
	e := des.NewEngine(1)
	q := des.NewQueue[string](e, "mailbox")
	e.SpawnEvent("producer", func(ep *des.EventProc) {
		ep.Wait(3*des.Millisecond, func() {
			q.Put("ping")
		})
	})
	e.SpawnEvent("consumer", func(ep *des.EventProc) {
		q.GetE(ep, func(msg string) {
			fmt.Printf("%v got %q\n", ep.Now(), msg)
		})
	})
	end := e.Run(des.MaxTime)
	fmt.Printf("makespan %v\n", end)
	// Output:
	// 3ms got "ping"
	// makespan 3ms
}

// ExampleStreamRNG shows named random streams: each stream's sequence
// depends only on the root seed and the stream name, so adding a new
// stream never perturbs existing ones.
func ExampleStreamRNG() {
	a := des.NewStreamRNG(7)
	b := des.NewStreamRNG(7)
	fmt.Println(a.Stream("ost0").Int63n(100) == b.Stream("ost0").Int63n(100))
	// Output:
	// true
}
