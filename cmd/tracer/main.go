// Command tracer interprets an iolang workload script against a simulated
// cluster with multi-level tracing enabled and writes the trace to a file
// (binary by default, JSON with -json). It is the record half of the
// record-and-replay workflow; feed the output to replayer or skelgen.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/profile"
	"pioeval/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracer: ")
	fs := flag.NewFlagSet("tracer", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	out := fs.String("o", "trace.piot", "output trace file")
	asJSON := fs.Bool("json", false, "write JSON instead of binary")
	report := fs.Bool("report", false, "also print a Darshan-like characterization report")
	_ = fs.Parse(os.Args[1:])

	if fs.NArg() != 1 {
		log.Fatal("usage: tracer [flags] <workload.iol>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	wl, err := iolang.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}

	e := des.NewEngine(cluster.Seed)
	sim := pfs.New(e, cfg)
	col := trace.NewCollector()
	prof := profile.New()
	prof.Attach(col)
	rep, err := iolang.Run(e, sim, wl, col)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if *asJSON {
		err = trace.WriteJSON(f, col.Records())
	} else {
		err = trace.WriteBinary(f, col.Records())
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %q: %d ranks, %d ops, read %s, wrote %s, makespan %v\n",
		rep.Name, rep.Ranks, rep.Ops,
		cli.FormatSize(rep.BytesRead), cli.FormatSize(rep.BytesWritten), rep.Makespan)
	fmt.Printf("trace: %d records -> %s\n", col.Len(), *out)
	if *report {
		if err := prof.WriteReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
