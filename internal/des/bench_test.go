package des

import "testing"

// BenchmarkEventThroughput measures raw event dispatch rate — the DES
// engine's fundamental cost (events/sec governs how large a simulated
// system is practical).
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(1, fire)
		}
	}
	b.ResetTimer()
	e.After(1, fire)
	e.Run(MaxTime)
}

// BenchmarkProcContextSwitch measures the goroutine-handoff cost of one
// process Wait — the price of the process-oriented (coroutine) API
// compared to raw callbacks.
func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkResourceContention measures queued Acquire/Release cycles under
// contention.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 2)
	per := b.N / 8
	if per == 0 {
		per = 1
	}
	for i := 0; i < 8; i++ {
		e.Spawn("u", func(p *Proc) {
			for k := 0; k < per; k++ {
				r.Use(p, 1)
			}
		})
	}
	b.ResetTimer()
	e.Run(MaxTime)
}
