package campaign

import (
	"bytes"
	"strings"
	"testing"
)

func TestExpandCartesian(t *testing.T) {
	s := Spec{
		Ranks:         []int{2, 4},
		Devices:       []string{"hdd", "ssd"},
		TransferSizes: []int64{1 << 20, 4 << 20},
	}
	pts := s.Expand()
	if len(pts) != 8 {
		t.Fatalf("expanded %d points, want 8", len(pts))
	}
	for i, p := range pts {
		if p.ID != i {
			t.Errorf("point %d has ID %d", i, p.ID)
		}
		// Defaulted axes must be filled in.
		if p.StripeCount != 4 || p.StripeSize != 1<<20 || p.Pattern != "sequential" {
			t.Errorf("point %d missing defaults: %+v", i, p)
		}
	}
	// Axis order is fixed: ranks outermost, faults innermost.
	if pts[0].Ranks != 2 || pts[4].Ranks != 4 {
		t.Errorf("ranks axis not outermost: %+v", pts)
	}
	if pts[0].TransferSize != 1<<20 || pts[1].TransferSize != 4<<20 {
		t.Errorf("transfer axis not innermost of the three: %+v", pts[:2])
	}
}

func TestRunSeedStability(t *testing.T) {
	// The derivation is part of the BENCH_*.json contract: changing it
	// invalidates recorded trajectories, so pin a few values.
	if s := RunSeed(42, 0); s != RunSeed(42, 0) {
		t.Fatal("RunSeed not deterministic")
	}
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := RunSeed(42, i)
		if s < 0 {
			t.Fatalf("RunSeed(42, %d) = %d, want non-negative", i, s)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("seed collision between runs %d and %d", i, j)
		}
		seen[s] = i
	}
	if RunSeed(1, 5) == RunSeed(2, 5) {
		t.Error("different campaign seeds should disperse")
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Workload: "nope"},
		{Ranks: []int{0}},
		{Devices: []string{"floppy"}},
		{Patterns: []string{"zigzag"}},
		{Faults: []string{"explode@1s"}},
		{Workload: WorkloadIOR, BurstBuffer: []bool{true}},
		{Workload: WorkloadCheckpoint, Collective: []bool{true}},
		{Workload: WorkloadCheckpoint, Patterns: []string{"random"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation: %+v", i, s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec should validate: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	src := `
# stripe sweep over two devices
campaign "stripe-sweep" {
    workload ior
    seed 7
    reps 2
    ranks 2, 4
    device hdd, ssd      # device axis
    stripe-count 1, 4
    stripe-size 1MB
    transfer-size 256KB, 1MB
    pattern sequential, random
    faults "", "ostcrash:1@5ms; ostrecover:1@40ms"
}
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "stripe-sweep" || s.Seed != 7 || s.Reps != 2 {
		t.Fatalf("scalars wrong: %+v", s)
	}
	if len(s.Ranks) != 2 || len(s.Devices) != 2 || len(s.StripeCounts) != 2 ||
		len(s.TransferSizes) != 2 || len(s.Patterns) != 2 || len(s.Faults) != 2 {
		t.Fatalf("axes wrong: %+v", s)
	}
	if s.TransferSizes[0] != 256<<10 {
		t.Errorf("size suffix not parsed: %v", s.TransferSizes)
	}
	if s.Faults[0] != "" || !strings.Contains(s.Faults[1], "ostcrash") {
		t.Errorf("faults axis wrong: %q", s.Faults)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Expand()); got != 2*2*2*2*2*2 {
		t.Errorf("expanded %d points, want 64", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`campaign "x" {`,
		`campaign x { }`,
		"campaign \"x\" {\n  ranks\n}",
		"campaign \"x\" {\n  ranks two\n}",
		"campaign \"x\" {\n  warp-factor 9\n}",
		"campaign \"x\" {\n  faults ostcrash:1@5ms\n}",
		"campaign \"x\" {\n}\nleftover",
	} {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("spec %q should fail to parse", src)
		}
	}
}

// smallSpec is a cheap multi-point campaign with per-rep variance (random
// pattern) used by the execution tests.
func smallSpec() Spec {
	return Spec{
		Name:          "unit",
		Seed:          11,
		Reps:          3,
		Ranks:         []int{2},
		Devices:       []string{"hdd"},
		BlockSizes:    []int64{4 << 20},
		TransferSizes: []int64{256 << 10},
		Patterns:      []string{"sequential", "random"},
	}
}

func TestRunAggregates(t *testing.T) {
	rep, err := Run(smallSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 || len(rep.Runs) != 6 {
		t.Fatalf("got %d points / %d runs", len(rep.Points), len(rep.Runs))
	}
	for _, ps := range rep.Points {
		d, ok := ps.Metrics["write_MBps"]
		if !ok {
			t.Fatalf("point %d missing write_MBps: %v", ps.Point.ID, ps.Metrics)
		}
		if d.N != 3 || d.Mean <= 0 {
			t.Errorf("point %d write_MBps = %+v", ps.Point.ID, d)
		}
		if d.CILo > d.Mean || d.CIHi < d.Mean {
			t.Errorf("point %d CI [%g, %g] does not bracket mean %g",
				ps.Point.ID, d.CILo, d.CIHi, d.Mean)
		}
	}
	// Random-pattern repetitions must actually differ (distinct seeds).
	var rnd PointSummary
	for _, ps := range rep.Points {
		if ps.Point.Pattern == "random" {
			rnd = ps
		}
	}
	if rnd.Metrics["read_MBps"].StdDev == 0 {
		t.Error("random-pattern reps are identical; per-run seeds not applied")
	}
	// Runs are recorded in (point, rep) order regardless of scheduling.
	for i, r := range rep.Runs {
		if r.Point != i/3 || r.Rep != i%3 {
			t.Fatalf("run %d recorded as point %d rep %d", i, r.Point, r.Rep)
		}
		if r.Seed != RunSeed(11, i) {
			t.Fatalf("run %d seed %d, want %d", i, r.Seed, RunSeed(11, i))
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var out [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		rep, err := Run(smallSpec(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("workers=1 and workers=8 produced different JSON")
	}
}

func TestCheckpointWorkload(t *testing.T) {
	rep, err := Run(Spec{
		Name:          "ckpt",
		Workload:      WorkloadCheckpoint,
		Seed:          5,
		Steps:         2,
		Ranks:         []int{2},
		Devices:       []string{"hdd"},
		BlockSizes:    []int64{4 << 20},
		TransferSizes: []int64{1 << 20},
		BurstBuffer:   []bool{false, true},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points", len(rep.Points))
	}
	direct := rep.Points[0].Metrics["effective_MBps"].Mean
	buffered := rep.Points[1].Metrics["effective_MBps"].Mean
	if direct <= 0 || buffered <= 0 {
		t.Fatalf("bad bandwidths: direct %g, buffered %g", direct, buffered)
	}
	// The burst buffer's NVMe staging must beat the HDD-backed PFS.
	if buffered < 2*direct {
		t.Errorf("burst buffer absorbed %g MB/s vs direct %g MB/s; expected a clear win", buffered, direct)
	}
}

func TestFaultAxis(t *testing.T) {
	rep, err := Run(Spec{
		Name:          "faulted",
		Workload:      WorkloadCheckpoint,
		Seed:          9,
		Steps:         3,
		Ranks:         []int{2},
		Devices:       []string{"ssd"},
		BlockSizes:    []int64{2 << 20},
		TransferSizes: []int64{512 << 10},
		Faults:        []string{"", "ostcrash:1@5ms; ostrecover:1@60ms"},
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	nominal := rep.Points[0].Metrics
	faulted := rep.Points[1].Metrics
	if faulted["retries"].Mean == 0 && faulted["timed_out_rpcs"].Mean == 0 {
		t.Error("fault campaign never exercised the resilience path")
	}
	if nominal["retries"].Mean != 0 {
		t.Error("nominal point should not retry")
	}
	if faulted["worst_step_ms"].Mean <= nominal["worst_step_ms"].Mean {
		t.Error("crash window should stretch the worst checkpoint step")
	}
}

func TestProgressReporting(t *testing.T) {
	var last Progress
	calls := 0
	_, err := Run(smallSpec(), Options{Workers: 2, OnProgress: func(p Progress) {
		calls++
		last = p
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("progress called %d times, want one per run (6)", calls)
	}
	if last.Done != 6 || last.Total != 6 || last.ETA != 0 {
		t.Errorf("final progress = %+v", last)
	}
}

func TestWriteCSV(t *testing.T) {
	rep, err := Run(smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(rep.Points) {
		t.Fatalf("CSV has %d lines, want header + %d points", len(lines), len(rep.Points))
	}
	if !strings.Contains(lines[0], "write_MBps_mean") {
		t.Errorf("header missing metric columns: %s", lines[0])
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	rep, err := Run(smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if rep.Name != back.Name || len(back.Points) != len(rep.Points) || len(back.Runs) != len(rep.Runs) {
		t.Fatalf("round trip lost structure: %+v", back)
	}
}
