package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pioeval/internal/des"
)

func sampleRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	ops := []string{"read", "write", "open", "close", "stat"}
	paths := []string{"/a", "/b/c", "/data/ckpt.0"}
	recs := make([]Record, n)
	t := des.Time(0)
	for i := range recs {
		d := des.Time(rng.Intn(1000) + 1)
		recs[i] = Record{
			Rank:   rng.Intn(8),
			Layer:  Layer(rng.Intn(int(numLayers))),
			Op:     ops[rng.Intn(len(ops))],
			Path:   paths[rng.Intn(len(paths))],
			Offset: int64(rng.Intn(1 << 20)),
			Size:   int64(rng.Intn(1 << 16)),
			Start:  t,
			End:    t + d,
		}
		t += d
	}
	return recs
}

func TestLayerString(t *testing.T) {
	if LayerMPIIO.String() != "mpiio" || LayerPFS.String() != "pfs" {
		t.Error("layer names wrong")
	}
	l, err := ParseLayer("posix")
	if err != nil || l != LayerPOSIX {
		t.Errorf("ParseLayer = %v, %v", l, err)
	}
	if _, err := ParseLayer("bogus"); err == nil {
		t.Error("ParseLayer should reject unknown names")
	}
}

func TestCollectorBasics(t *testing.T) {
	c := NewCollector()
	c.Emit(Record{Op: "read"})
	c.Emit(Record{Op: "write"})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.SetEnabled(false)
	c.Emit(Record{Op: "read"})
	if c.Len() != 2 {
		t.Fatal("disabled collector should not record")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset should clear")
	}
	var nilC *Collector
	nilC.Emit(Record{}) // must not panic
}

func TestCollectorLimit(t *testing.T) {
	c := NewCollector()
	c.SetLimit(3)
	for i := 0; i < 10; i++ {
		c.Emit(Record{})
	}
	if c.Len() != 3 || c.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", c.Len(), c.Dropped())
	}
}

func TestFilters(t *testing.T) {
	recs := []Record{
		{Rank: 0, Layer: LayerPOSIX, Op: "read"},
		{Rank: 1, Layer: LayerMPIIO, Op: "write"},
		{Rank: 0, Layer: LayerMPIIO, Op: "write"},
	}
	if got := len(ByLayer(recs, LayerMPIIO)); got != 2 {
		t.Errorf("ByLayer = %d", got)
	}
	if got := len(ByRank(recs, 0)); got != 2 {
		t.Errorf("ByRank = %d", got)
	}
	if got := len(ByOp(recs, "read")); got != 1 {
		t.Errorf("ByOp = %d", got)
	}
}

func TestMergeOrdering(t *testing.T) {
	a := []Record{{Op: "a1", Start: 10}, {Op: "a2", Start: 30}}
	b := []Record{{Op: "b1", Start: 20}}
	m := Merge(a, b)
	want := []string{"a1", "b1", "a2"}
	for i, r := range m {
		if r.Op != want[i] {
			t.Fatalf("merge order = %v", m)
		}
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Rank: 0, Op: "write", Size: 100, Start: 0, End: 10},
		{Rank: 1, Op: "read", Size: 50, Start: 5, End: 25},
		{Rank: 0, Op: "open", Start: 25, End: 30},
	}
	s := Summarize(recs)
	if s.Records != 3 || s.Ranks != 2 {
		t.Errorf("records/ranks = %d/%d", s.Records, s.Ranks)
	}
	if s.BytesWritten != 100 || s.BytesRead != 50 {
		t.Errorf("bytes = w%d r%d", s.BytesWritten, s.BytesRead)
	}
	if s.MetaOps != 1 || s.ReadOps != 1 || s.WriteOps != 1 {
		t.Errorf("ops = %+v", s)
	}
	if s.Span != 30 || s.IOTime != 35 {
		t.Errorf("span=%v iotime=%v", s.Span, s.IOTime)
	}
	if z := Summarize(nil); z.Records != 0 {
		t.Error("empty summarize")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords(500, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE00000000000000"))); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	recs := sampleRecords(100, 2)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	recs := sampleRecords(2000, 3)
	var bin, js bytes.Buffer
	if err := WriteBinary(&bin, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&js, recs); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Errorf("binary (%d B) should be smaller than JSON (%d B)", bin.Len(), js.Len())
	}
}

// Property: binary codec round-trips arbitrary records (with valid layers
// and op/path strings).
func TestPropBinaryRoundTrip(t *testing.T) {
	f := func(rank int16, layer uint8, opPick uint8, off, size int32, start, end uint32) bool {
		ops := []string{"read", "write", "", "weird op/with=chars"}
		r := Record{
			Rank:   int(rank),
			Layer:  Layer(layer % uint8(numLayers)),
			Op:     ops[int(opPick)%len(ops)],
			Path:   "/p",
			Offset: int64(off),
			Size:   int64(size),
			Start:  des.Time(start),
			End:    des.Time(end),
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, []Record{r}); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0] == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
