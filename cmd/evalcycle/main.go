// Command evalcycle runs the paper's Figure-4 iterative evaluation loop:
// measure a workload on a baseline cluster, model it, predict and simulate
// a target cluster, and feed measurements back until the prediction
// converges.
//
// With -sweep, it instead runs the loop for every ordered (baseline,
// target) device pair, with repetitions, in parallel on the campaign
// runner's worker pool, and reports per-pair convergence statistics —
// the what-if exploration mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"

	"pioeval/internal/blockdev"
	"pioeval/internal/campaign"
	"pioeval/internal/core"
	"pioeval/internal/iolang"
	"pioeval/internal/pfs"
	"pioeval/internal/stats"
)

const defaultScript = `
workload "default" {
    ranks 4
    loop 6 {
        compute 4ms
        write "/out" offset=rank*16MB size=4MB chunk=1MB
        read "/out" offset=rank*16MB size=1MB chunk=256KB
    }
}
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalcycle: ")
	// First SIGINT/SIGTERM cancels a running sweep; completed pairs are
	// discarded and the command exits non-zero. A second signal kills the
	// process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags come from args,
// all output goes to the supplied writers, and failures return as errors
// instead of exiting. The golden test drives it with a bytes.Buffer.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("evalcycle", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseDev := fs.String("baseline", "ssd", "baseline OST device: hdd, ssd, nvme")
	targetDev := fs.String("target", "hdd", "target OST device: hdd, ssd, nvme")
	iters := fs.Int("iterations", 4, "max feedback iterations")
	tol := fs.Float64("tolerance", 0.25, "relative error tolerance")
	seed := fs.Int64("seed", 42, "simulation seed")
	sweep := fs.String("sweep", "", "comma-separated device list: run every ordered (baseline, target) pair in parallel")
	sweepReps := fs.Int("sweep-reps", 3, "repetitions per device pair in sweep mode")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	script := defaultScript
	if fs.NArg() == 1 {
		b, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		script = string(b)
	}
	wl, err := iolang.Parse(script)
	if err != nil {
		return err
	}

	if *sweep != "" {
		return runSweep(ctx, stdout, stderr, wl, strings.Split(*sweep, ","), *sweepReps, *iters, *tol, *seed, *workers)
	}

	base, err := mkCfg(*baseDev)
	if err != nil {
		return err
	}
	target, err := mkCfg(*targetDev)
	if err != nil {
		return err
	}
	res, err := core.RunCycle(core.CycleConfig{
		Seed:          *seed,
		Baseline:      base,
		Target:        target,
		Source:        core.SyntheticSource{Workload: wl},
		MaxIterations: *iters,
		Tolerance:     *tol,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "Phase 1 (measurement, %s baseline): %d trace records, makespan %v\n",
		*baseDev, res.TraceRecords, res.BaselineMakespan)
	fmt.Fprintf(stdout, "  characterization: rw-ratio %.2f, seq-fraction %.2f, dominant access %s\n",
		res.ReadWriteRatio, res.SeqFraction, res.DominantSize)
	fmt.Fprintf(stdout, "Phase 2 (modeling): skeleton compression %.1fx, write fit latency(ns) = %.3g + %.3g*size\n",
		res.SkeletonRatio, res.WriteFit.Intercept, res.WriteFit.Slope)
	fmt.Fprintf(stdout, "Phase 3 (simulation of %s target, with feedback):\n", *targetDev)
	for _, it := range res.Iterations {
		fmt.Fprintf(stdout, "  iter %d: predicted %v, measured %v, rel.err %.3f (%d training samples)\n",
			it.Index, it.PredictedMakespan, it.MeasuredMakespan, it.RelError, it.TrainingSamples)
	}
	if res.Converged {
		fmt.Fprintf(stdout, "converged within tolerance %.2f\n", *tol)
	} else {
		fmt.Fprintf(stdout, "did not converge within %d iterations\n", *iters)
	}
	return nil
}

// mkCfg builds the flat-network deployment for one OST device model.
func mkCfg(dev string) (pfs.Config, error) {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	switch dev {
	case "hdd":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultHDD() }
	case "ssd":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	case "nvme":
		cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultNVMe() }
	default:
		return pfs.Config{}, fmt.Errorf("unknown device %q", dev)
	}
	return cfg, nil
}

// pairOutcome is one evaluation-cycle run in sweep mode.
type pairOutcome struct {
	baseline, target string
	firstErr         float64
	finalErr         float64
	iterations       int
	converged        bool
}

// runSweep executes the Figure-4 loop for every ordered (baseline, target)
// device pair, reps times each, on the campaign worker pool, and prints
// per-pair convergence distributions. Per-run seeds derive from
// (seed, run index) exactly as in a grid campaign, so the sweep is
// reproducible at any worker count.
func runSweep(ctx context.Context, stdout, stderr io.Writer, wl *iolang.Workload, devices []string, reps, iters int, tol float64, seed int64, workers int) error {
	var pairs [][2]string
	for _, b := range devices {
		for _, t := range devices {
			b, t = strings.TrimSpace(b), strings.TrimSpace(t)
			if b != t {
				pairs = append(pairs, [2]string{b, t})
			}
		}
	}
	if len(pairs) == 0 {
		return fmt.Errorf("sweep needs at least two distinct devices")
	}
	cfgs := make(map[string]pfs.Config, len(devices))
	for _, pair := range pairs {
		for _, d := range pair {
			if _, ok := cfgs[d]; !ok {
				cfg, err := mkCfg(d)
				if err != nil {
					return err
				}
				cfgs[d] = cfg
			}
		}
	}
	outcomes := make([]pairOutcome, len(pairs)*reps)
	errs := make([]error, len(outcomes))
	pr := campaign.PoolContext(ctx, len(outcomes), campaign.Options{Workers: workers, OnProgress: func(p campaign.Progress) {
		fmt.Fprintf(stderr, "\rcycle %d/%d elapsed %v eta %v   ", p.Done, p.Total,
			p.Elapsed.Round(10_000_000), p.ETA.Round(10_000_000))
		if p.Done == p.Total {
			fmt.Fprintln(stderr)
		}
	}}, func(i int) {
		pair := pairs[i/reps]
		res, err := core.RunCycle(core.CycleConfig{
			Seed:          campaign.RunSeed(seed, i),
			Baseline:      cfgs[pair[0]],
			Target:        cfgs[pair[1]],
			Source:        core.SyntheticSource{Workload: wl},
			MaxIterations: iters,
			Tolerance:     tol,
		})
		if err != nil {
			errs[i] = err
			return
		}
		outcomes[i] = pairOutcome{
			baseline: pair[0], target: pair[1],
			firstErr:   res.Iterations[0].RelError,
			finalErr:   res.Iterations[len(res.Iterations)-1].RelError,
			iterations: len(res.Iterations),
			converged:  res.Converged,
		}
	})
	if pr.Err != nil {
		return fmt.Errorf("sweep interrupted after %d/%d cycles", pr.Completed, len(outcomes))
	}
	for _, p := range pr.Panicked {
		return fmt.Errorf("cycle %d panicked: %v", p.Index, p.Value)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "baseline\ttarget\tfirst err (mean)\tfinal err (mean)\titerations (mean)\tconverged\n")
	for pi, pair := range pairs {
		var first, final, its []float64
		conv := 0
		for r := 0; r < reps; r++ {
			o := outcomes[pi*reps+r]
			first = append(first, o.firstErr)
			final = append(final, o.finalErr)
			its = append(its, float64(o.iterations))
			if o.converged {
				conv++
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.1f\t%d/%d\n",
			pair[0], pair[1], stats.Mean(first), stats.Mean(final), stats.Mean(its), conv, reps)
	}
	return tw.Flush()
}
