// Package campaign implements a parallel experiment-campaign runner: a
// declarative Spec describes a cartesian grid over simulation parameters
// (ranks, device model, stripe geometry, transfer/block sizes, access
// pattern, collective vs. independent MPI-IO, burst-buffer staging, fault
// campaigns) plus a repetition count; Run expands the grid into independent
// simulation runs, executes them on a bounded worker pool, and aggregates
// per-run metrics into per-point distribution summaries (mean, median,
// p95, stddev, bootstrap confidence intervals via internal/stats).
//
// Every run gets a seed derived deterministically from the campaign seed
// and the run index, and results are stored by run index, so the
// aggregated Report — including its JSON serialization — is bit-identical
// regardless of worker count or goroutine scheduling. Key types: Spec
// (the grid), Point (one expanded configuration), RunResult (one
// simulation's metrics), Report (the aggregate). cmd/campaign is the CLI
// front end, cmd/evalcycle routes its device sweeps through Pool, and the
// bench harness (bench_campaign_test.go) uses Run for the perf
// trajectory.
package campaign

import (
	"fmt"
	"strings"

	"pioeval/internal/des"
	"pioeval/internal/faults"
	"pioeval/internal/reduce"
)

// Workload kinds a campaign can sweep.
const (
	// WorkloadIOR is the IOR-like bulk-I/O generator (write + read-back,
	// shared file). Pattern and Collective apply; BurstBuffer does not.
	WorkloadIOR = "ior"
	// WorkloadCheckpoint is the HACC-IO-like bulk-synchronous checkpoint
	// generator. BurstBuffer applies; Pattern and Collective do not.
	WorkloadCheckpoint = "checkpoint"
)

// Spec declares a campaign: a workload kind, scalar settings, and one
// list per swept axis. Empty axes default to a single representative
// value, so the zero Spec is a valid one-point campaign.
type Spec struct {
	Name     string
	Workload string // WorkloadIOR (default) or WorkloadCheckpoint
	Seed     int64  // campaign seed; per-run seeds derive from it
	Reps     int    // repetitions per grid point (default 1)
	Steps    int    // checkpoint steps (checkpoint workload only, default 4)

	// Grid axes, expanded as a cartesian product in this order.
	Ranks         []int
	Devices       []string // hdd, ssd, nvme
	StripeCounts  []int
	StripeSizes   []int64
	BlockSizes    []int64 // per-rank bytes (IOR block / checkpoint dump)
	TransferSizes []int64
	Patterns      []string // sequential, strided, random (IOR only)
	Collective    []bool   // two-phase collective MPI-IO (IOR only)
	BurstBuffer   []bool   // stage writes through a burst buffer (checkpoint only)
	Tiers         []string // storage tiers: direct (default), bb, nodelocal
	Compress      []string // data-reduction stage: none (default), or a reduce preset (lz, deflate, zfp, sz)
	Faults        []string // fault-campaign specs (faults.ParseCampaign syntax); "" = none
}

// Point is one fully concrete configuration from the expanded grid.
type Point struct {
	ID           int    `json:"id"`
	Ranks        int    `json:"ranks"`
	Device       string `json:"device"`
	StripeCount  int    `json:"stripe_count"`
	StripeSize   int64  `json:"stripe_size"`
	BlockSize    int64  `json:"block_size"`
	TransferSize int64  `json:"transfer_size"`
	Pattern      string `json:"pattern,omitempty"`
	Collective   bool   `json:"collective,omitempty"`
	BurstBuffer  bool   `json:"burst_buffer,omitempty"`
	Tier         string `json:"tier,omitempty"`     // "" = direct
	Compress     string `json:"compress,omitempty"` // "" = none
	Faults       string `json:"faults,omitempty"`
}

// Label renders the point compactly for progress lines and CSV rows.
func (p Point) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ranks=%d dev=%s stripe=%dx%d xfer=%d", p.Ranks, p.Device, p.StripeCount, p.StripeSize, p.TransferSize)
	if p.Pattern != "" {
		fmt.Fprintf(&b, " pat=%s", p.Pattern)
	}
	if p.Collective {
		b.WriteString(" collective")
	}
	if p.BurstBuffer {
		b.WriteString(" bb")
	}
	if p.Tier != "" {
		fmt.Fprintf(&b, " tier=%s", p.Tier)
	}
	if p.Compress != "" {
		fmt.Fprintf(&b, " comp=%s", p.Compress)
	}
	if p.Faults != "" {
		b.WriteString(" faults")
	}
	return b.String()
}

// withDefaults fills unset scalar fields and empty axes.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Workload == "" {
		s.Workload = WorkloadIOR
	}
	if s.Reps <= 0 {
		s.Reps = 1
	}
	if s.Steps <= 0 {
		s.Steps = 4
	}
	if len(s.Ranks) == 0 {
		s.Ranks = []int{4}
	}
	if len(s.Devices) == 0 {
		s.Devices = []string{"hdd"}
	}
	if len(s.StripeCounts) == 0 {
		s.StripeCounts = []int{4}
	}
	if len(s.StripeSizes) == 0 {
		s.StripeSizes = []int64{1 << 20}
	}
	if len(s.BlockSizes) == 0 {
		s.BlockSizes = []int64{16 << 20}
	}
	if len(s.TransferSizes) == 0 {
		s.TransferSizes = []int64{1 << 20}
	}
	if len(s.Patterns) == 0 {
		s.Patterns = []string{"sequential"}
	}
	if len(s.Collective) == 0 {
		s.Collective = []bool{false}
	}
	if len(s.BurstBuffer) == 0 {
		s.BurstBuffer = []bool{false}
	}
	if len(s.Tiers) == 0 {
		s.Tiers = []string{""}
	}
	if len(s.Compress) == 0 {
		s.Compress = []string{""}
	}
	if len(s.Faults) == 0 {
		s.Faults = []string{""}
	}
	// Canonical spellings: "direct" is the "" tier and "none" the ""
	// compressor. Normalizing here — inside Canonical — keeps equivalent
	// spec texts hashing equal, so a result cache keyed on the canonical
	// digest (siod's) never stores the same campaign twice.
	s.Tiers = canonicalAxis(s.Tiers, "direct")
	s.Compress = canonicalAxis(s.Compress, "none")
	return s
}

// canonicalAxis rewrites an axis's verbose default spelling to the
// canonical "" without mutating the caller's slice.
func canonicalAxis(vals []string, verbose string) []string {
	changed := false
	for _, v := range vals {
		if v == verbose {
			changed = true
			break
		}
	}
	if !changed {
		return vals
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		if v == verbose {
			v = ""
		}
		out[i] = v
	}
	return out
}

// Canonical returns the spec in normal form — every unset scalar and axis
// replaced by its default — so two spec texts that describe the same
// campaign compare (and hash) equal. Servers key result caches and
// single-flight deduplication on a digest of the canonical form; the
// report they get back is deterministic per canonical spec, so cache hits
// are exact.
func (s Spec) Canonical() Spec { return s.withDefaults() }

// Validate rejects specs that would expand into meaningless or unrunnable
// runs. It is called by Run; callers constructing specs by hand can call
// it early for better error locality.
func (s Spec) Validate() error {
	s = s.withDefaults()
	switch s.Workload {
	case WorkloadIOR:
		for _, bb := range s.BurstBuffer {
			if bb {
				return fmt.Errorf("campaign: the burst-buffer axis requires the checkpoint workload")
			}
		}
	case WorkloadCheckpoint:
		for _, c := range s.Collective {
			if c {
				return fmt.Errorf("campaign: the collective axis requires the ior workload")
			}
		}
		for _, p := range s.Patterns {
			if p != "sequential" {
				return fmt.Errorf("campaign: the pattern axis requires the ior workload")
			}
		}
	default:
		return fmt.Errorf("campaign: unknown workload %q (want %s or %s)", s.Workload, WorkloadIOR, WorkloadCheckpoint)
	}
	for _, r := range s.Ranks {
		if r <= 0 {
			return fmt.Errorf("campaign: ranks must be positive, got %d", r)
		}
	}
	for _, sc := range s.StripeCounts {
		if sc <= 0 {
			return fmt.Errorf("campaign: stripe-count must be positive, got %d", sc)
		}
	}
	for _, ss := range s.StripeSizes {
		if ss <= 0 {
			return fmt.Errorf("campaign: stripe-size must be positive, got %d", ss)
		}
	}
	for _, bs := range s.BlockSizes {
		if bs <= 0 {
			return fmt.Errorf("campaign: block-size must be positive, got %d", bs)
		}
	}
	for _, ts := range s.TransferSizes {
		if ts <= 0 {
			return fmt.Errorf("campaign: transfer-size must be positive, got %d", ts)
		}
	}
	for _, d := range s.Devices {
		switch d {
		case "hdd", "ssd", "nvme":
		default:
			return fmt.Errorf("campaign: unknown device %q (want hdd, ssd, or nvme)", d)
		}
	}
	for _, p := range s.Patterns {
		switch p {
		case "sequential", "strided", "random":
		default:
			return fmt.Errorf("campaign: unknown pattern %q (want sequential, strided, or random)", p)
		}
	}
	for _, tier := range s.Tiers {
		switch tier {
		case "", "direct", "bb", "nodelocal":
		default:
			return fmt.Errorf("campaign: unknown tier %q (want direct, bb, or nodelocal)", tier)
		}
		if tier == "bb" {
			for _, bb := range s.BurstBuffer {
				if bb {
					return fmt.Errorf("campaign: the bb tier and the legacy burstbuffer axis cannot combine (pick one)")
				}
			}
		}
	}
	// The compress axis is checked after tiers so a spec that botches both
	// reports the tier first — one coherent error path, not two competing
	// messages for what is usually a single malformed stanza.
	for _, c := range s.Compress {
		switch c {
		case "", "none":
		default:
			if _, ok := reduce.Lookup(c); !ok {
				return fmt.Errorf("campaign: unknown compressor %q (want none or one of %v)", c, reduce.Names())
			}
		}
	}
	for _, f := range s.Faults {
		if f == "" {
			continue
		}
		if _, err := faults.ParseCampaign(f); err != nil {
			return fmt.Errorf("campaign: bad fault spec %q: %w", f, err)
		}
	}
	return nil
}

// Expand returns the cartesian product of the spec's axes in a fixed
// deterministic order; Point.ID is the index into the returned slice.
func (s Spec) Expand() []Point {
	s = s.withDefaults()
	var out []Point
	for _, ranks := range s.Ranks {
		for _, dev := range s.Devices {
			for _, sc := range s.StripeCounts {
				for _, ss := range s.StripeSizes {
					for _, bs := range s.BlockSizes {
						for _, ts := range s.TransferSizes {
							for _, pat := range s.Patterns {
								for _, coll := range s.Collective {
									for _, bb := range s.BurstBuffer {
										// Spellings are already canonical here:
										// withDefaults rewrote direct/none to "".
										for _, tier := range s.Tiers {
											for _, comp := range s.Compress {
												for _, f := range s.Faults {
													out = append(out, Point{
														ID:           len(out),
														Ranks:        ranks,
														Device:       dev,
														StripeCount:  sc,
														StripeSize:   ss,
														BlockSize:    bs,
														TransferSize: ts,
														Pattern:      pat,
														Collective:   coll,
														BurstBuffer:  bb,
														Tier:         tier,
														Compress:     comp,
														Faults:       f,
													})
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// RunSeed derives the simulation seed for run index i of a campaign with
// the given seed. The derivation is a SplitMix64 mix of both inputs, so
// neighboring run indices get well-dispersed, independent seeds and the
// mapping depends only on (seed, i) — never on worker count or timing.
func RunSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // keep it non-negative for readability in reports
}

// stepDuration is the checkpoint compute time between dumps; fixed rather
// than swept so the I/O fraction stays comparable across grid points.
const stepDuration = 20 * des.Millisecond
