// Package hdf simulates an HDF5-like hierarchical data library on top of
// the MPI-IO layer: files hold groups and N-dimensional datasets; datasets
// support hyperslab selection and optional chunked layout; dataset creation
// and attribute writes produce the small metadata I/O that real HDF5 emits.
// It is the top library tier of the paper's Figure 2.
package hdf

import (
	"errors"
	"fmt"
	"strings"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/mpiio"
	"pioeval/internal/trace"
)

// Package errors.
var (
	ErrExist     = errors.New("hdf: object exists")
	ErrNotExist  = errors.New("hdf: object does not exist")
	ErrBadSlab   = errors.New("hdf: hyperslab out of bounds")
	ErrDimension = errors.New("hdf: dimension mismatch")
)

// headerRegion reserves file space for the superblock and object headers.
const (
	superblockSize   = 2048
	objectHeaderSize = 512
	attributeSize    = 256
)

// File is an HDF container over one MPI-IO file, shared by all ranks.
// Construct it once with NewFile (outside the rank functions), then have
// every rank call Create collectively.
type File struct {
	mf  *mpiio.File
	col *trace.Collector

	objects  map[string]bool // groups
	dsets    map[string]*Dataset
	allocPtr int64
	headers  int64 // next object-header offset
}

// NewFile prepares an HDF container over mf. col may be nil.
func NewFile(mf *mpiio.File, col *trace.Collector) *File {
	return &File{
		mf: mf, col: col,
		objects:  map[string]bool{"/": true},
		dsets:    map[string]*Dataset{},
		allocPtr: superblockSize + 1024*objectHeaderSize,
		headers:  superblockSize,
	}
}

// Create collectively creates the HDF file. Every rank must call it; rank 0
// writes the superblock — the first metadata I/O of every HDF5 file.
func (f *File) Create(r *mpi.Rank) error {
	start := r.Now()
	if err := f.mf.Open(r); err != nil {
		return err
	}
	if r.ID() == 0 {
		if err := f.mf.WriteAt(r, 0, superblockSize); err != nil {
			return err
		}
	}
	r.Barrier()
	f.emit(r, "h5f_create", f.mf.Path(), 0, superblockSize, start)
	return nil
}

// Close collectively closes the file.
func (f *File) Close(r *mpi.Rank) error {
	start := r.Now()
	err := f.mf.Close(r)
	f.emit(r, "h5f_close", f.mf.Path(), 0, 0, start)
	return err
}

func (f *File) emit(r *mpi.Rank, op, path string, off, size int64, start des.Time) {
	f.col.Emit(trace.Record{
		Rank: r.ID(), Layer: trace.LayerHDF, Op: op, Path: path,
		Offset: off, Size: size, Start: start, End: r.Now(),
	})
}

// CreateGroup collectively creates a group (rank 0 writes its header).
func (f *File) CreateGroup(r *mpi.Rank, name string) error {
	start := r.Now()
	name = cleanName(name)
	var err error
	if r.ID() == 0 {
		if f.objects[name] || f.dsets[name] != nil {
			err = ErrExist
		} else if !f.objects[parentName(name)] {
			err = ErrNotExist
		} else {
			f.objects[name] = true
			hdr := f.headers
			f.headers += objectHeaderSize
			err = f.mf.WriteAt(r, hdr, objectHeaderSize)
		}
	}
	r.Barrier()
	f.emit(r, "h5g_create", name, 0, 0, start)
	return err
}

// Dataset is an N-dimensional array stored in the file.
type Dataset struct {
	f        *File
	name     string
	dims     []int64
	elemSize int64
	chunks   []int64 // nil = contiguous layout
	offset   int64   // data region start
}

// CreateDataset collectively creates a contiguous-layout dataset.
func (f *File) CreateDataset(r *mpi.Rank, name string, dims []int64, elemSize int64) (*Dataset, error) {
	return f.createDataset(r, name, dims, elemSize, nil)
}

// CreateChunkedDataset collectively creates a dataset with chunked layout.
// chunks must have the same rank as dims; chunk extents need not divide the
// dims evenly.
func (f *File) CreateChunkedDataset(r *mpi.Rank, name string, dims []int64, elemSize int64, chunks []int64) (*Dataset, error) {
	if len(chunks) != len(dims) {
		return nil, ErrDimension
	}
	for _, c := range chunks {
		if c <= 0 {
			return nil, ErrDimension
		}
	}
	return f.createDataset(r, name, dims, elemSize, chunks)
}

func (f *File) createDataset(r *mpi.Rank, name string, dims []int64, elemSize int64, chunks []int64) (*Dataset, error) {
	start := r.Now()
	name = cleanName(name)
	if len(dims) == 0 || elemSize <= 0 {
		return nil, ErrDimension
	}
	var err error
	if r.ID() == 0 {
		switch {
		case f.objects[name] || f.dsets[name] != nil:
			err = ErrExist
		case !f.objects[parentName(name)]:
			err = ErrNotExist
		default:
			total := elemSize
			for _, d := range dims {
				if d <= 0 {
					err = ErrDimension
				}
				total *= d
			}
			if err == nil {
				ds := &Dataset{
					f: f, name: name,
					dims: append([]int64(nil), dims...), elemSize: elemSize,
					offset: f.allocPtr,
				}
				if chunks != nil {
					ds.chunks = append([]int64(nil), chunks...)
					total = ds.numChunks() * ds.chunkBytes()
				}
				f.allocPtr += total
				f.dsets[name] = ds
				hdr := f.headers
				f.headers += objectHeaderSize
				err = f.mf.WriteAt(r, hdr, objectHeaderSize)
			}
		}
	}
	r.Barrier()
	f.emit(r, "h5d_create", name, 0, 0, start)
	if err != nil {
		return nil, err
	}
	ds := f.dsets[name]
	if ds == nil {
		return nil, ErrNotExist
	}
	return ds, nil
}

// OpenDataset returns an existing dataset (local operation; layout is
// already cached file-wide).
func (f *File) OpenDataset(name string) (*Dataset, error) {
	ds := f.dsets[cleanName(name)]
	if ds == nil {
		return nil, ErrNotExist
	}
	return ds, nil
}

// WriteAttribute writes a small attribute on the named object (rank 0).
func (f *File) WriteAttribute(r *mpi.Rank, object, attr string) error {
	start := r.Now()
	var err error
	if r.ID() == 0 {
		hdr := f.headers
		f.headers += attributeSize
		err = f.mf.WriteAt(r, hdr, attributeSize)
	}
	r.Barrier()
	f.emit(r, "h5a_write", object+"@"+attr, 0, attributeSize, start)
	return err
}

// Name returns the dataset's path name.
func (ds *Dataset) Name() string { return ds.name }

// Dims returns the dataset dimensions.
func (ds *Dataset) Dims() []int64 { return append([]int64(nil), ds.dims...) }

// Chunked reports whether the dataset uses chunked layout.
func (ds *Dataset) Chunked() bool { return ds.chunks != nil }

func (ds *Dataset) numChunks() int64 {
	n := int64(1)
	for i, d := range ds.dims {
		n *= ceilDiv(d, ds.chunks[i])
	}
	return n
}

func (ds *Dataset) chunkBytes() int64 {
	n := ds.elemSize
	for _, c := range ds.chunks {
		n *= c
	}
	return n
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// SlabExtents computes the file extents of hyperslab [start, start+count)
// in each dimension, honoring contiguous or chunked layout. Runs are
// contiguous along the last dimension.
func (ds *Dataset) SlabExtents(start, count []int64) ([]mpiio.Extent, error) {
	n := len(ds.dims)
	if len(start) != n || len(count) != n {
		return nil, ErrDimension
	}
	for i := range start {
		if start[i] < 0 || count[i] <= 0 || start[i]+count[i] > ds.dims[i] {
			return nil, ErrBadSlab
		}
	}
	var out []mpiio.Extent
	idx := make([]int64, n)
	copy(idx, start)
	// Iterate over every row (all dims but the last fixed), emitting the
	// run along the last dimension.
	for {
		ds.rowExtents(idx, start[n-1], count[n-1], &out)
		// Advance the prefix odometer.
		d := n - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < start[d]+count[d] {
				break
			}
			idx[d] = start[d]
		}
		if d < 0 {
			break
		}
	}
	return out, nil
}

// rowExtents emits the extents of a single row run [lastStart, lastStart+lastCount)
// with the prefix coordinates fixed from idx.
func (ds *Dataset) rowExtents(idx []int64, lastStart, lastCount int64, out *[]mpiio.Extent) {
	n := len(ds.dims)
	if ds.chunks == nil {
		// Contiguous row-major.
		lin := int64(0)
		for d := 0; d < n-1; d++ {
			lin = lin*ds.dims[d] + idx[d]
		}
		lin = lin*ds.dims[n-1] + lastStart
		*out = append(*out, mpiio.Extent{
			Off:  ds.offset + lin*ds.elemSize,
			Size: lastCount * ds.elemSize,
		})
		return
	}
	// Chunked: split the row run at chunk boundaries in the last dim.
	cLast := ds.chunks[n-1]
	pos := lastStart
	endPos := lastStart + lastCount
	for pos < endPos {
		chunkEnd := (pos/cLast + 1) * cLast
		if chunkEnd > endPos {
			chunkEnd = endPos
		}
		runLen := chunkEnd - pos
		// Chunk coordinates and linear chunk index.
		chunkLin := int64(0)
		for d := 0; d < n; d++ {
			coord := idx[d]
			if d == n-1 {
				coord = pos
			}
			chunkLin = chunkLin*ceilDiv(ds.dims[d], ds.chunks[d]) + coord/ds.chunks[d]
		}
		// Local (within-chunk) row-major offset.
		local := int64(0)
		for d := 0; d < n; d++ {
			coord := idx[d]
			if d == n-1 {
				coord = pos
			}
			local = local*ds.chunks[d] + coord%ds.chunks[d]
		}
		*out = append(*out, mpiio.Extent{
			Off:  ds.offset + chunkLin*ds.chunkBytes() + local*ds.elemSize,
			Size: runLen * ds.elemSize,
		})
		pos = chunkEnd
	}
}

// WriteSlab writes the hyperslab independently.
func (ds *Dataset) WriteSlab(r *mpi.Rank, start, count []int64) error {
	return ds.slabIO(r, start, count, true, false)
}

// ReadSlab reads the hyperslab independently.
func (ds *Dataset) ReadSlab(r *mpi.Rank, start, count []int64) error {
	return ds.slabIO(r, start, count, false, false)
}

// WriteSlabAll writes the hyperslab with collective I/O.
func (ds *Dataset) WriteSlabAll(r *mpi.Rank, start, count []int64) error {
	return ds.slabIO(r, start, count, true, true)
}

// ReadSlabAll reads the hyperslab with collective I/O.
func (ds *Dataset) ReadSlabAll(r *mpi.Rank, start, count []int64) error {
	return ds.slabIO(r, start, count, false, true)
}

func (ds *Dataset) slabIO(r *mpi.Rank, start, count []int64, write, collective bool) error {
	t0 := r.Now()
	exts, err := ds.SlabExtents(start, count)
	if err != nil {
		return err
	}
	switch {
	case collective && write:
		err = ds.f.mf.WriteExtentsAll(r, exts)
	case collective:
		err = ds.f.mf.ReadExtentsAll(r, exts)
	case write:
		err = ds.f.mf.WriteExtents(r, exts)
	default:
		err = ds.f.mf.ReadExtents(r, exts)
	}
	var bytes int64
	for _, e := range exts {
		bytes += e.Size
	}
	op := map[[2]bool]string{
		{true, true}:   "h5d_write_all",
		{true, false}:  "h5d_write",
		{false, true}:  "h5d_read_all",
		{false, false}: "h5d_read",
	}[[2]bool{write, collective}]
	ds.f.emit(r, op, ds.name, 0, bytes, t0)
	return err
}

func cleanName(name string) string {
	if !strings.HasPrefix(name, "/") {
		name = "/" + name
	}
	name = strings.TrimRight(name, "/")
	if name == "" {
		return "/"
	}
	return name
}

func parentName(name string) string {
	i := strings.LastIndexByte(name, '/')
	if i <= 0 {
		return "/"
	}
	return name[:i]
}

// Objects returns the number of groups plus datasets (for tests).
func (f *File) Objects() int { return len(f.objects) + len(f.dsets) }

var _ = fmt.Sprintf // keep fmt for future diagnostics
