package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"pioeval/internal/campaign"
)

// specKey digests the canonical (defaults-applied) form of a spec, so
// every textual spelling of the same campaign maps to one cache slot and
// one single-flight. Campaign reports are deterministic per canonical
// spec — identical points per seed — so serving a cached body is exact,
// not approximate.
func specKey(spec campaign.Spec) string {
	b, err := json.Marshal(spec.Canonical())
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic("serve: marshal canonical spec: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// resultCache is a bounded LRU over finished report payloads, keyed by
// specKey. Values are the exact response bodies, so a hit costs one map
// lookup and zero re-serialization.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key     string
	payload []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

func (c *resultCache) put(key string, payload []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).payload = payload
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, payload: payload})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
