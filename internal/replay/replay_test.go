package replay

import (
	"errors"
	"fmt"
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/skeleton"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
)

func fastFS(e *des.Engine) *pfs.FS {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return pfs.New(e, cfg)
}

// recordRun runs an SPMD workload at `ranks` ranks and returns the POSIX
// trace plus the wall-clock makespan.
func recordRun(ranks int, perRankMB int64) ([]trace.Record, des.Time) {
	e := des.NewEngine(31)
	fs := fastFS(e)
	col := trace.NewCollector()
	for r := 0; r < ranks; r++ {
		r := r
		env := posixio.NewEnv(storage.Direct(fs.NewClient(fmt.Sprintf("orig%d", r))), r, col)
		e.Spawn("app", func(p *des.Proc) {
			fd, _ := env.Open(p, "/shared", posixio.OCreate)
			for i := int64(0); i < perRankMB; i++ {
				off := int64(r)*(perRankMB<<20) + i*(1<<20)
				_, _ = env.Pwrite(p, fd, off, 1<<20)
				p.Wait(des.Millisecond) // compute phase
			}
			_ = env.Close(p, fd)
		})
	}
	end := e.Run(des.MaxTime)
	return col.Records(), end
}

func TestFromTraceGroupsByRank(t *testing.T) {
	recs, _ := recordRun(4, 2)
	rankOps := FromTrace(recs)
	if len(rankOps) != 4 {
		t.Fatalf("ranks = %d", len(rankOps))
	}
	for r, ops := range rankOps {
		if len(ops) != 4 { // open + 2 writes + close
			t.Fatalf("rank %d ops = %d", r, len(ops))
		}
		if ops[0].Op != "open" || ops[len(ops)-1].Op != "close" {
			t.Fatalf("rank %d op shape: %v...%v", r, ops[0].Op, ops[len(ops)-1].Op)
		}
	}
}

func TestReplayMovesSameBytes(t *testing.T) {
	recs, _ := recordRun(4, 4)
	rankOps := FromTrace(recs)
	e := des.NewEngine(32)
	fs := fastFS(e)
	res, err := Run(e, fs, rankOps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 4 << 20)
	if res.BytesWritten != want {
		t.Fatalf("replayed bytes = %d, want %d", res.BytesWritten, want)
	}
	_, fsW := fs.TotalBytes()
	if fsW != want {
		t.Fatalf("FS bytes = %d, want %d", fsW, want)
	}
	if res.Bandwidth() <= 0 {
		t.Error("bandwidth should be positive")
	}
}

func TestTimedReplayApproximatesOriginal(t *testing.T) {
	recs, origEnd := recordRun(4, 4)
	rankOps := FromTrace(recs)

	eT := des.NewEngine(33)
	resT, err := Run(eT, fastFS(eT), rankOps, Options{Timed: true})
	if err != nil {
		t.Fatal(err)
	}
	eF := des.NewEngine(34)
	resF, err := Run(eF, fastFS(eF), rankOps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Timed replay should be close to the original makespan (same
	// simulated cluster); AFAP replay must be faster (no compute).
	ratio := float64(resT.Makespan) / float64(origEnd)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("timed replay %v vs original %v (ratio %.2f), want within 20%%", resT.Makespan, origEnd, ratio)
	}
	if resF.Makespan >= resT.Makespan {
		t.Errorf("AFAP (%v) should beat timed (%v)", resF.Makespan, resT.Makespan)
	}
}

func TestReplayEmptyErrors(t *testing.T) {
	e := des.NewEngine(1)
	if _, err := Run(e, fastFS(e), nil, Options{}); !errors.Is(err, ErrNoRanks) {
		t.Errorf("err = %v", err)
	}
}

func TestExtrapolateSharedFileBlockPattern(t *testing.T) {
	recs, _ := recordRun(4, 2)
	rankOps := FromTrace(recs)
	big, err := Extrapolate(rankOps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != 8 {
		t.Fatalf("extrapolated ranks = %d", len(big))
	}
	// Rank 6's first write should land at 6 * 2MB (the affine pattern).
	var firstWrite *skeleton.ConcreteOp
	for i := range big[6] {
		if big[6][i].Op == "write" {
			firstWrite = &big[6][i]
			break
		}
	}
	if firstWrite == nil || firstWrite.Offset != 6*(2<<20) {
		t.Fatalf("rank-6 first write = %+v, want offset %d", firstWrite, 6*(2<<20))
	}
	// Replaying the extrapolated trace moves 8 ranks' worth of bytes.
	e := des.NewEngine(35)
	fs := fastFS(e)
	res, err := Run(e, fs, big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != 8*(2<<20) {
		t.Fatalf("extrapolated bytes = %d", res.BytesWritten)
	}
}

func TestExtrapolateFilePerProcess(t *testing.T) {
	mk := func(rank int) []skeleton.ConcreteOp {
		path := fmt.Sprintf("/out/rank%d.dat", rank)
		return []skeleton.ConcreteOp{
			{Op: "open", Path: path},
			{Op: "write", Path: path, Offset: 0, Size: 4096},
			{Op: "close", Path: path},
		}
	}
	src := [][]skeleton.ConcreteOp{mk(0), mk(1), mk(2)}
	big, err := Extrapolate(src, 6)
	if err != nil {
		t.Fatal(err)
	}
	if big[5][0].Path != "/out/rank5.dat" {
		t.Fatalf("rank-5 path = %q", big[5][0].Path)
	}
	if big[5][1].Offset != 0 || big[5][1].Size != 4096 {
		t.Fatalf("rank-5 write = %+v", big[5][1])
	}
}

func TestExtrapolateRejectsNonSPMD(t *testing.T) {
	a := []skeleton.ConcreteOp{{Op: "write", Path: "/f", Size: 10}}
	b := []skeleton.ConcreteOp{{Op: "write", Path: "/f", Size: 10}, {Op: "close", Path: "/f"}}
	if _, err := Extrapolate([][]skeleton.ConcreteOp{a, b}, 4); !errors.Is(err, ErrNotSPMD) {
		t.Errorf("uneven streams err = %v", err)
	}
	c := []skeleton.ConcreteOp{{Op: "read", Path: "/f", Size: 10}}
	if _, err := Extrapolate([][]skeleton.ConcreteOp{a, c}, 4); !errors.Is(err, ErrNotUniformOp) {
		t.Errorf("kind mismatch err = %v", err)
	}
	if _, err := Extrapolate(nil, 4); !errors.Is(err, ErrNoRanks) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Extrapolate([][]skeleton.ConcreteOp{a}, 4); !errors.Is(err, ErrNotSPMD) {
		t.Errorf("single rank err = %v", err)
	}
}

func TestExtrapolateRejectsIrregularOffsets(t *testing.T) {
	mk := func(off int64) []skeleton.ConcreteOp {
		return []skeleton.ConcreteOp{{Op: "write", Path: "/f", Offset: off, Size: 10}}
	}
	// Offsets 0, 100, 999: not affine.
	_, err := Extrapolate([][]skeleton.ConcreteOp{mk(0), mk(100), mk(999)}, 6)
	if err == nil {
		t.Error("non-affine offsets should error")
	}
}

// The C7 experiment shape: extrapolated replay approximates a direct run at
// the target scale.
func TestExtrapolationValidatesAgainstDirectRun(t *testing.T) {
	recsSmall, _ := recordRun(4, 2)
	small := FromTrace(recsSmall)
	big, err := Extrapolate(small, 16)
	if err != nil {
		t.Fatal(err)
	}
	eX := des.NewEngine(36)
	resX, err := Run(eX, fastFS(eX), big, Options{Timed: true})
	if err != nil {
		t.Fatal(err)
	}
	_, directEnd := recordRun(16, 2)
	ratio := float64(resX.Makespan) / float64(directEnd)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("extrapolated makespan %v vs direct %v (ratio %.2f), want within 2x", resX.Makespan, directEnd, ratio)
	}
}

func TestThinkScaleAcceleratesReplay(t *testing.T) {
	recs, _ := recordRun(2, 4)
	ops := FromTrace(recs)
	dur := func(scale float64) des.Time {
		e := des.NewEngine(99)
		res, err := Run(e, fastFS(e), ops, Options{Timed: true, ThinkScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	full, half, double := dur(1), dur(0.5), dur(2)
	if !(half < full && full < double) {
		t.Fatalf("think scaling broken: half=%v full=%v double=%v", half, full, double)
	}
}
