// Package stats provides the statistical toolbox the paper's §IV-B1 lists
// for I/O data analysis: summary statistics, coefficient of variation,
// correlation (Pearson and Spearman), linear and multiple regression,
// empirical distributions (PDF/CDF/quantiles), Markov-chain fitting, and
// hypothesis tests (Welch's t, Kolmogorov–Smirnov). Pure stdlib, no
// external numerics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more samples.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoeffVar returns the coefficient of variation (stddev/mean); 0 when the
// mean is 0.
func CoeffVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// MinMax returns the extrema; zeros for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary bundles the standard descriptive statistics.
type Summary struct {
	N                  int
	Mean, StdDev, CV   float64
	Min, Median, Max   float64
	P25, P75, P95, P99 float64
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.CV = CoeffVar(xs)
	s.Min, s.Max = MinMax(xs)
	s.Median = Quantile(xs, 0.5)
	s.P25 = Quantile(xs, 0.25)
	s.P75 = Quantile(xs, 0.75)
	s.P95 = Quantile(xs, 0.95)
	s.P99 = Quantile(xs, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient of paired samples.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation of paired samples.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (ties share the mean rank).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// LinearFit is y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
}

// LinearRegression fits ordinary least squares on paired samples.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit, nil
}

// Predict evaluates the fit at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// MultiFit is y = Coef[0] + Coef[1]*x1 + ... (Coef[0] is the intercept).
type MultiFit struct {
	Coef []float64
}

// MultipleRegression fits OLS with k features via the normal equations
// solved by Gaussian elimination with partial pivoting.
func MultipleRegression(X [][]float64, y []float64) (MultiFit, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return MultiFit{}, ErrInsufficientData
	}
	k := len(X[0])
	for _, row := range X {
		if len(row) != k {
			return MultiFit{}, errors.New("stats: ragged feature matrix")
		}
	}
	d := k + 1 // with intercept column
	if n < d {
		return MultiFit{}, ErrInsufficientData
	}
	// Build normal equations A w = b where A = Z'Z, b = Z'y, Z = [1 X].
	A := make([][]float64, d)
	b := make([]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	zrow := make([]float64, d)
	for r := 0; r < n; r++ {
		zrow[0] = 1
		copy(zrow[1:], X[r])
		for i := 0; i < d; i++ {
			b[i] += zrow[i] * y[r]
			for j := 0; j < d; j++ {
				A[i][j] += zrow[i] * zrow[j]
			}
		}
	}
	// Ridge epsilon for numerical safety on collinear features.
	for i := 0; i < d; i++ {
		A[i][i] += 1e-9
	}
	w, err := solve(A, b)
	if err != nil {
		return MultiFit{}, err
	}
	return MultiFit{Coef: w}, nil
}

// Predict evaluates the multiple regression at feature vector x.
func (f MultiFit) Predict(x []float64) float64 {
	y := f.Coef[0]
	for i, v := range x {
		if i+1 < len(f.Coef) {
			y += f.Coef[i+1] * v
		}
	}
	return y
}

// solve performs Gaussian elimination with partial pivoting.
func solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[best][col]) {
				best = r
			}
		}
		if math.Abs(A[best][col]) < 1e-12 {
			return nil, errors.New("stats: singular system")
		}
		A[col], A[best] = A[best], A[col]
		b[col], b[best] = b[best], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, nil
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Histogram bins xs into n equal-width bins over [min, max] and returns bin
// edges (n+1) and counts (n).
func Histogram(xs []float64, n int) (edges []float64, counts []int) {
	if n <= 0 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := MinMax(xs)
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, n+1)
	counts = make([]int, n)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
