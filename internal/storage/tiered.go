package storage

import (
	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// TieredBB places an I/O-node burst buffer on the data path (the paper's
// Figure-1 tier): writes stage onto the buffer's SSD at staging speed and
// drain to the parallel file system asynchronously; reads hit the staging
// area while data is hot and fall through to the PFS otherwise. The
// namespace stays on the MDS — create, stat, and the directory operations
// pass through the compute node's own PFS client, so tiered and direct
// runs see the same metadata behavior.
//
// Durability semantics: Fsync maps to the buffer's WaitDrained, so a file
// is durable only once its staged bytes have reached the PFS, and drain
// failures (typed PFS errors that survived the resilience policy's retry
// budget) surface from Fsync as a *burstbuffer.DrainError.
type TieredBB struct {
	c  *pfs.Client
	bb *burstbuffer.Buffer
}

// NewTiered builds a tiered target for client c staging through bb. The
// buffer is typically shared by every client on the same I/O node; use
// Provider to get that wiring for free.
func NewTiered(c *pfs.Client, bb *burstbuffer.Buffer) *TieredBB {
	return &TieredBB{c: c, bb: bb}
}

// Client returns the metadata-path PFS client.
func (t *TieredBB) Client() *pfs.Client { return t.c }

// Buffer returns the burst buffer this target stages through.
func (t *TieredBB) Buffer() *burstbuffer.Buffer { return t.bb }

// Create creates path on the PFS namespace (so the drainer and read-through
// path can open it) and returns a handle whose data ops ride the buffer.
func (t *TieredBB) Create(p *des.Proc, path string, stripeCount int, stripeSize int64) (Handle, error) {
	h, err := t.c.Create(p, path, stripeCount, stripeSize)
	if err != nil {
		return nil, err
	}
	return &tieredHandle{t: t, ph: h}, nil
}

// Open opens an existing PFS file for tiered access.
func (t *TieredBB) Open(p *des.Proc, path string) (Handle, error) {
	h, err := t.c.Open(p, path)
	if err != nil {
		return nil, err
	}
	return &tieredHandle{t: t, ph: h}, nil
}

// Stat returns PFS metadata. Note that file sizes lag staged writes until
// the drainer lands them — an honest property of write-back tiering.
func (t *TieredBB) Stat(p *des.Proc, path string) (FileInfo, error) {
	return t.c.Stat(p, path)
}

// Mkdir creates a directory on the PFS namespace.
func (t *TieredBB) Mkdir(p *des.Proc, path string) error { return t.c.Mkdir(p, path) }

// Rmdir removes an empty PFS directory.
func (t *TieredBB) Rmdir(p *des.Proc, path string) error { return t.c.Rmdir(p, path) }

// Unlink removes a PFS file.
func (t *TieredBB) Unlink(p *des.Proc, path string) error { return t.c.Unlink(p, path) }

// Readdir lists a PFS directory.
func (t *TieredBB) Readdir(p *des.Proc, path string) ([]string, error) {
	return t.c.Readdir(p, path)
}

// tieredHandle is an open file on a TieredBB target: data ops go to the
// burst buffer, metadata sticks with the wrapped PFS handle.
type tieredHandle struct {
	t  *TieredBB
	ph *pfs.Handle
}

// Path returns the handle's path.
func (h *tieredHandle) Path() string { return h.ph.Path() }

// Write stages the bytes at the burst buffer (SSD speed, backpressure when
// full) and returns as soon as they are staged; the drain to the PFS is
// asynchronous. Drain failures surface later, from Fsync.
func (h *tieredHandle) Write(p *des.Proc, off, size int64) error {
	h.t.bb.Write(p, h.ph.Path(), off, size)
	return nil
}

// Read serves from the staging SSD while staged data is hot, else reads
// through to the PFS via the buffer's I/O-node client.
func (h *tieredHandle) Read(p *des.Proc, off, size int64) error {
	return h.t.bb.Read(p, h.ph.Path(), off, size)
}

// Fsync waits until every staged byte has drained to the PFS, returning
// the accumulated drain errors if any writebacks failed for good.
func (h *tieredHandle) Fsync(p *des.Proc) error {
	return h.t.bb.WaitDrained(p)
}

// Close closes the metadata handle. Staged data keeps draining in the
// background; call Fsync first when durability is required.
func (h *tieredHandle) Close(p *des.Proc) error {
	return h.ph.Close(p)
}
